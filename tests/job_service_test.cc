// Tests for the multi-tenant guidance job service: the tenant-fair
// bounded queue (per-tenant lanes, round-robin pop, starvation freedom),
// registry-derived validation (app/engine pairs and graph requirements
// reject at Submit), the shared-provider amortization (N tenants x M jobs
// on K graphs must pay exactly K generations), per-tenant accounting that
// sums to the totals, per-tenant store budgets enforced by the
// maintenance loop, in-flight pinning, and the graceful-shutdown drain.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <algorithm>

#include "slfe/api/app_registry.h"
#include "slfe/core/guidance_cache.h"
#include "slfe/graph/generators.h"
#include "slfe/service/job_queue.h"
#include "slfe/service/job_service.h"

namespace slfe::service {
namespace {

Graph Rmat(VertexId n, EdgeId m, uint64_t seed) {
  RmatOptions opt;
  opt.num_vertices = n;
  opt.num_edges = m;
  opt.weighted = true;
  opt.seed = seed;
  EdgeList e = GenerateRmat(opt);
  e.Deduplicate();
  return Graph::FromEdges(e);
}

std::string StoreDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + name;
  GuidanceStore wipe(dir);  // create + drop leftovers from previous runs
  wipe.RemoveAll();
  return dir;
}

// ------------------------------------------------------------- JobQueue

TEST(JobQueueTest, BoundedFifoRejectsWhenFull) {
  JobQueue<int> queue(2);
  EXPECT_TRUE(queue.TryPush("t", 1));
  EXPECT_TRUE(queue.TryPush("t", 2));
  EXPECT_FALSE(queue.TryPush("t", 3));   // full: reject, never block
  EXPECT_FALSE(queue.TryPush("u", 3));   // capacity bounds the TOTAL
  int out = 0;
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 1);  // FIFO within a tenant lane
  EXPECT_TRUE(queue.TryPush("t", 3));
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 2);
}

TEST(JobQueueTest, RoundRobinAcrossTenantLanes) {
  // Tenant a floods before b and c enqueue one job each: pops must
  // alternate lanes (a b c a a ...), not drain a's burst first.
  JobQueue<int> queue(16);
  ASSERT_TRUE(queue.TryPush("a", 1));
  ASSERT_TRUE(queue.TryPush("a", 2));
  ASSERT_TRUE(queue.TryPush("a", 3));
  ASSERT_TRUE(queue.TryPush("b", 100));
  ASSERT_TRUE(queue.TryPush("c", 200));
  EXPECT_EQ(queue.active_lanes(), 3u);
  std::vector<int> order;
  int out = 0;
  while (queue.size() > 0) {
    ASSERT_TRUE(queue.Pop(&out));
    order.push_back(out);
  }
  EXPECT_EQ(order, (std::vector<int>{1, 100, 200, 2, 3}));
  EXPECT_EQ(queue.active_lanes(), 0u);  // drained lanes are erased
}

TEST(JobQueueTest, LateTenantIsServedNextNotAfterTheBurst) {
  // b arrives AFTER a's burst is queued; the very next pops still
  // alternate a/b — the head-of-line-blocking regression this queue
  // exists to prevent.
  JobQueue<int> queue(16);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(queue.TryPush("a", i));
  int out = 0;
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 0);
  ASSERT_TRUE(queue.TryPush("b", 100));
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 1);  // a's lane was already at the rotation head
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 100);  // b served before a's remaining backlog
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 2);
}

TEST(JobQueueTest, CloseDrainsThenSignalsExit) {
  JobQueue<int> queue(8);
  ASSERT_TRUE(queue.TryPush("t", 7));
  ASSERT_TRUE(queue.TryPush("t", 8));
  queue.Close();
  EXPECT_FALSE(queue.TryPush("t", 9));  // no admissions after close
  int out = 0;
  EXPECT_TRUE(queue.Pop(&out));  // ...but queued items drain
  EXPECT_EQ(out, 7);
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 8);
  EXPECT_FALSE(queue.Pop(&out));  // closed + empty = consumer exit
}

TEST(JobQueueTest, CloseWakesBlockedConsumer) {
  JobQueue<int> queue(4);
  std::atomic<bool> exited{false};
  std::thread consumer([&] {
    int out;
    while (queue.Pop(&out)) {
    }
    exited.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  queue.Close();
  consumer.join();
  EXPECT_TRUE(exited.load());
}

// ----------------------------------------------------------- JobService

TEST(JobServiceTest, ValidatesRequestsAndCountsRejections) {
  JobService service;
  ASSERT_TRUE(service.RegisterGraph("g", Rmat(200, 1500, 5)).ok());
  EXPECT_TRUE(service.HasGraph("g"));
  EXPECT_FALSE(service.HasGraph("nope"));
  // Re-registering would swap data under queued jobs.
  EXPECT_EQ(service.RegisterGraph("g", Rmat(100, 700, 6)).code(),
            StatusCode::kFailedPrecondition);

  JobRequest request;
  request.graph = "nope";
  EXPECT_EQ(service.Submit(request).status().code(), StatusCode::kNotFound);
  request.graph = "g";
  request.engine = "quantum";
  EXPECT_EQ(service.Submit(request).status().code(),
            StatusCode::kInvalidArgument);
  request.engine = "gas";
  request.app = "mst";  // the registry declares mst on dist only
  Status undeclared = service.Submit(request).status();
  EXPECT_EQ(undeclared.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(undeclared.message().find("dist"), std::string::npos)
      << "rejection should cite the registry's declared engines: "
      << undeclared.ToString();
  request.engine = "dist";
  request.app = "nosuchapp";
  Status unknown = service.Submit(request).status();
  EXPECT_EQ(unknown.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(unknown.message().find("sssp"), std::string::npos)
      << "rejection should list the registered apps: " << unknown.ToString();
  request.app = "sssp";
  request.root = 100000;  // out of range
  EXPECT_EQ(service.Submit(request).status().code(),
            StatusCode::kInvalidArgument);

  JobServiceStats stats = service.Stats();
  EXPECT_EQ(stats.rejected, 5u);
  EXPECT_EQ(stats.submitted, 0u);
  EXPECT_EQ(stats.tenants.at("default").jobs_rejected, 5u);
}

// Every (app, engine) pair the registry declares must be submittable and
// run clean through the service — including the pairs no surface exposed
// before the Session facade (gas:wp, ooc:pr, shm:cc, ...).
TEST(JobServiceTest, RunsEveryRegistryDeclaredPair) {
  JobServiceOptions options;
  options.queue_capacity = 128;
  JobService service(options);
  ASSERT_TRUE(service.RegisterGraph("g", Rmat(300, 2400, 7)).ok());
  std::vector<JobTicket> tickets;
  size_t pairs = 0;
  for (const api::AppDescriptor* app : api::AppRegistry::Global().Apps()) {
    for (api::Engine engine : app->engines()) {
      JobRequest request;
      request.app = app->name;
      request.engine = api::EngineName(engine);
      request.graph = "g";
      request.max_iters = 10;
      auto ticket = service.Submit(request);
      ASSERT_TRUE(ticket.ok())
          << request.engine << "/" << request.app << ": "
          << ticket.status().ToString();
      tickets.push_back(std::move(ticket).value());
      ++pairs;
    }
  }
  EXPECT_GE(pairs, 20u);  // 13 apps, several multi-engine
  for (const JobTicket& ticket : tickets) {
    const JobResult& result = ticket->Wait();
    EXPECT_TRUE(result.status.ok())
        << result.engine << "/" << result.app << ": "
        << result.status.ToString();
    EXPECT_GT(result.supersteps, 0u)
        << result.engine << "/" << result.app;
  }
  JobServiceStats stats = service.Stats();
  EXPECT_EQ(stats.completed, tickets.size());
  EXPECT_EQ(stats.failed, 0u);
}

// The acceptance pairs called out in the ISSUE: ooc:pr and gas:sssp were
// unreachable through any surface before the registry; both must now run
// through the service with sane results.
TEST(JobServiceTest, PreviouslyUnreachablePairsRunViaService) {
  JobService service;
  ASSERT_TRUE(service.RegisterGraph("g", Rmat(300, 2400, 7)).ok());

  JobRequest ooc_pr;
  ooc_pr.app = "pr";
  ooc_pr.engine = "ooc";
  ooc_pr.graph = "g";
  ooc_pr.max_iters = 15;
  auto ooc_ticket = service.Submit(ooc_pr);
  ASSERT_TRUE(ooc_ticket.ok()) << ooc_ticket.status().ToString();

  JobRequest gas_sssp;
  gas_sssp.app = "sssp";
  gas_sssp.engine = "gas";
  gas_sssp.graph = "g";
  auto gas_ticket = service.Submit(gas_sssp);
  ASSERT_TRUE(gas_ticket.ok()) << gas_ticket.status().ToString();

  // Reference runs on the dist engine: cross-engine fixpoints must agree
  // on the summary scalar (reached vertices for sssp).
  JobRequest dist_sssp = gas_sssp;
  dist_sssp.engine = "dist";
  auto dist_ticket = service.Submit(dist_sssp);
  ASSERT_TRUE(dist_ticket.ok());

  const JobResult& ooc_result = ooc_ticket.value()->Wait();
  EXPECT_TRUE(ooc_result.status.ok()) << ooc_result.status.ToString();
  EXPECT_TRUE(ooc_result.guidance_acquired);
  EXPECT_GT(ooc_result.supersteps, 0u);

  const JobResult& gas_result = gas_ticket.value()->Wait();
  const JobResult& dist_result = dist_ticket.value()->Wait();
  EXPECT_TRUE(gas_result.status.ok()) << gas_result.status.ToString();
  EXPECT_TRUE(dist_result.status.ok());
  EXPECT_EQ(gas_result.summary, dist_result.summary)
      << "gas and dist sssp disagree on reached-vertex count";
}

// Graph-requirement checks live in the AppDescriptor and reject at
// Submit: a needs_weights app on a unit-weight graph bounces with a
// registry-derived message instead of burning a worker.
TEST(JobServiceTest, RejectsRequirementViolatingJobsUpFront) {
  JobService service;
  RmatOptions opt;
  opt.num_vertices = 200;
  opt.num_edges = 1500;
  opt.weighted = false;  // unit weights
  opt.seed = 11;
  EdgeList edges = GenerateRmat(opt);
  edges.Deduplicate();
  ASSERT_TRUE(service.RegisterGraph("unweighted",
                                    Graph::FromEdges(edges)).ok());

  JobRequest request;
  request.app = "sssp";
  request.graph = "unweighted";
  Status rejected = service.Submit(request).status();
  EXPECT_EQ(rejected.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(rejected.message().find("weight"), std::string::npos)
      << rejected.ToString();

  // bfs has no weight requirement: same graph, accepted and clean.
  request.app = "bfs";
  auto ticket = service.Submit(request);
  ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
  EXPECT_TRUE(ticket.value()->Wait().status.ok());

  JobServiceStats stats = service.Stats();
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.failed, 0u);
}

// With auto-symmetrize off, a needs_symmetric app (cc) on a directed
// graph is a Submit-time rejection; with it on (the default), the session
// derives the undirected closure and the job runs.
TEST(JobServiceTest, SymmetryRequirementHonorsAutoSymmetrizeOption) {
  JobRequest request;
  request.app = "cc";
  request.graph = "g";

  JobServiceOptions strict;
  strict.auto_symmetrize = false;
  {
    JobService service(strict);
    ASSERT_TRUE(service.RegisterGraph("g", Rmat(200, 1500, 12)).ok());
    Status rejected = service.Submit(request).status();
    EXPECT_EQ(rejected.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(rejected.message().find("symmetric"), std::string::npos)
        << rejected.ToString();
  }
  {
    JobService service;  // default: auto_symmetrize
    ASSERT_TRUE(service.RegisterGraph("g", Rmat(200, 1500, 12)).ok());
    auto ticket = service.Submit(request);
    ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
    EXPECT_TRUE(ticket.value()->Wait().status.ok());
  }
}

// The starvation bar from the ROADMAP's fair-scheduling item: tenant A
// floods the (single-worker) service, tenant B submits a handful of jobs
// afterwards — round-robin popping must interleave B's jobs into A's
// burst instead of making B wait for the whole flood.
TEST(JobServiceTest, FloodingTenantCannotStarveAnotherTenant) {
  constexpr int kFlood = 60;
  constexpr int kVictim = 3;
  JobServiceOptions options;
  options.workers = 1;  // completion order == pop order
  options.queue_capacity = 256;
  JobService service(options);
  ASSERT_TRUE(service.RegisterGraph("g", Rmat(300, 2400, 13)).ok());

  std::vector<JobTicket> flood_tickets, victim_tickets;
  for (int i = 0; i < kFlood; ++i) {
    JobRequest request;
    request.tenant = "flooder";
    request.app = "pr";
    request.graph = "g";
    request.max_iters = 10;
    auto ticket = service.Submit(request);
    ASSERT_TRUE(ticket.ok());
    flood_tickets.push_back(std::move(ticket).value());
  }
  for (int i = 0; i < kVictim; ++i) {
    JobRequest request;
    request.tenant = "victim";
    request.app = "sssp";
    request.graph = "g";
    auto ticket = service.Submit(request);
    ASSERT_TRUE(ticket.ok());
    victim_tickets.push_back(std::move(ticket).value());
  }

  uint64_t victim_last = 0;
  for (const JobTicket& ticket : victim_tickets) {
    const JobResult& result = ticket->Wait();
    ASSERT_TRUE(result.status.ok());
    victim_last = std::max(victim_last, result.sequence);
  }
  size_t flood_after_victim = 0;
  for (const JobTicket& ticket : flood_tickets) {
    const JobResult& result = ticket->Wait();
    ASSERT_TRUE(result.status.ok());
    if (result.sequence > victim_last) ++flood_after_victim;
  }
  // Round-robin guarantees the victim's 3 jobs complete within ~6 pops
  // of entering the queue; with a 60-job flood, a large share of the
  // flood MUST still be pending when the victim finishes. (A FIFO queue
  // would leave flood_after_victim == 0.)
  EXPECT_GE(flood_after_victim, 10u)
      << "victim tenant waited out the flood (victim_last=" << victim_last
      << ")";
  JobServiceStats stats = service.Stats();
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.completed,
            static_cast<uint64_t>(kFlood + kVictim));
}

TEST(JobServiceTest, BaselineJobsSkipGuidanceEntirely) {
  JobService service;
  ASSERT_TRUE(service.RegisterGraph("g", Rmat(200, 1500, 8)).ok());
  JobRequest request;
  request.graph = "g";
  request.enable_rr = false;
  auto ticket = service.Submit(request);
  ASSERT_TRUE(ticket.ok());
  const JobResult& result = ticket.value()->Wait();
  EXPECT_TRUE(result.status.ok());
  EXPECT_FALSE(result.guidance_acquired);
  JobServiceStats stats = service.Stats();
  EXPECT_EQ(stats.provider.generations, 0u);
  EXPECT_EQ(stats.tenants.at("default").guidance_hits, 0u);
  EXPECT_EQ(stats.tenants.at("default").guidance_misses, 0u);
}

// The tentpole acceptance test: N tenants x M jobs on K graphs, submitted
// from concurrent threads, must coalesce to exactly K generations
// (singleflight + cache inside ONE shared provider), and the per-tenant
// counters must sum to the service totals.
TEST(JobServiceTest, MultiTenantConcurrentJobsAmortizeToOneGenerationPerGraph) {
  constexpr int kTenants = 4;
  constexpr int kJobsPerTenantPerGraph = 3;
  constexpr int kGraphs = 3;

  JobServiceOptions options;
  options.workers = 4;
  options.queue_capacity = 256;
  JobService service(options);
  std::vector<std::string> names;
  for (int g = 0; g < kGraphs; ++g) {
    names.push_back("g" + std::to_string(g));
    ASSERT_TRUE(
        service
            .RegisterGraph(names.back(),
                           Rmat(200 + 50 * g, 1500 + 300 * g, 20 + g))
            .ok());
  }

  std::vector<std::vector<JobTicket>> tickets(kTenants);
  std::vector<std::thread> submitters;
  std::atomic<int> failures{0};
  for (int t = 0; t < kTenants; ++t) {
    submitters.emplace_back([&, t] {
      for (int j = 0; j < kJobsPerTenantPerGraph; ++j) {
        for (const std::string& name : names) {
          JobRequest request;
          request.tenant = "tenant" + std::to_string(t);
          request.app = "sssp";
          request.graph = name;
          request.root = 0;
          auto ticket = service.Submit(request);
          if (!ticket.ok()) {
            ++failures;
            continue;
          }
          tickets[t].push_back(std::move(ticket).value());
        }
      }
    });
  }
  for (std::thread& thread : submitters) thread.join();
  ASSERT_EQ(failures.load(), 0);

  size_t total_jobs = 0;
  for (const auto& per_tenant : tickets) {
    for (const JobTicket& ticket : per_tenant) {
      const JobResult& result = ticket->Wait();
      EXPECT_TRUE(result.status.ok()) << result.status.ToString();
      EXPECT_TRUE(result.guidance_acquired);
      ++total_jobs;
    }
  }
  EXPECT_EQ(total_jobs,
            static_cast<size_t>(kTenants * kJobsPerTenantPerGraph * kGraphs));

  JobServiceStats stats = service.Stats();
  // THE amortization claim: one O(|E|) sweep per distinct graph, no
  // matter how many tenants and jobs piled on concurrently.
  EXPECT_EQ(stats.provider.generations, static_cast<uint64_t>(kGraphs));
  EXPECT_EQ(stats.completed, total_jobs);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.submitted, total_jobs);

  uint64_t tenant_jobs = 0, tenant_hits = 0, tenant_misses = 0;
  uint64_t tenant_bytes = 0;
  for (const auto& [name, tenant] : stats.tenants) {
    EXPECT_EQ(tenant.jobs_submitted, tenant.jobs_completed) << name;
    EXPECT_EQ(tenant.jobs_failed, 0u) << name;
    tenant_jobs += tenant.jobs_completed;
    tenant_hits += tenant.guidance_hits;
    tenant_misses += tenant.guidance_misses;
    tenant_bytes += tenant.guidance_bytes;
  }
  EXPECT_EQ(tenant_jobs, stats.completed);
  // Every job acquired guidance; the misses are exactly the generation
  // leaders, everything else rode the cache or a flight.
  EXPECT_EQ(tenant_hits + tenant_misses, total_jobs);
  EXPECT_EQ(tenant_misses, stats.provider.generations);
  EXPECT_GT(tenant_bytes, 0u);
}

TEST(JobServiceTest, MaintenanceLoopEnforcesPerTenantBudgets) {
  // Two tenants over their store budgets, one unbudgeted: after the jobs
  // drain, the maintenance loop's sweep must trim alpha to 1 entry and
  // beta to 2 while gamma keeps everything (the ISSUE acceptance bar).
  JobServiceOptions options;
  options.workers = 2;
  options.provider.store_dir = StoreDir("slfe_service_budgets");
  options.tenant_budgets["alpha"] = GuidanceTenantBudget{0, 1};
  options.tenant_budgets["beta"] = GuidanceTenantBudget{0, 2};
  options.maintenance_interval_seconds = 0.005;
  JobService service(options);

  // Distinct graphs -> distinct store entries, attributed per tenant.
  struct TenantGraphs {
    std::string tenant;
    std::vector<std::string> graphs;
  };
  std::vector<TenantGraphs> plan = {
      {"alpha", {"a0", "a1", "a2"}},
      {"beta", {"b0", "b1", "b2"}},
      {"gamma", {"c0", "c1", "c2"}},
  };
  uint64_t seed = 40;
  std::vector<JobTicket> tickets;
  for (const TenantGraphs& tg : plan) {
    for (const std::string& name : tg.graphs) {
      ASSERT_TRUE(service.RegisterGraph(name, Rmat(150, 1000, ++seed)).ok());
      JobRequest request;
      request.tenant = tg.tenant;
      request.app = "sssp";
      request.graph = name;
      auto ticket = service.Submit(request);
      ASSERT_TRUE(ticket.ok());
      tickets.push_back(std::move(ticket).value());
    }
  }
  for (const JobTicket& ticket : tickets) {
    ASSERT_TRUE(ticket->Wait().status.ok());
  }

  // All jobs finished -> their graphs are unpinned; the maintenance timer
  // (5ms cadence) must bring both over-budget tenants within budget.
  GuidanceStore* store = service.provider().store();
  ASSERT_NE(store, nullptr);
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  GuidanceStoreSweepStats last{};
  while (std::chrono::steady_clock::now() < deadline) {
    last = service.SweepNow();
    if (last.remaining_entries == 1 + 2 + 3) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(last.remaining_entries, 6u);  // alpha 1 + beta 2 + gamma 3
  JobServiceStats stats = service.Stats();
  EXPECT_GT(stats.maintenance_sweeps, 0u);
  EXPECT_GE(stats.sweep_removed, 3u);  // 2 alpha + 1 beta

  service.Shutdown();
}

TEST(JobServiceTest, MidRunSweepNeverEvictsInFlightGuidance) {
  // Aggressive budgets that would evict EVERYTHING (1 byte global, zero
  // entries for the tenant) plus a fast maintenance timer, while jobs on
  // the pinned graphs are continuously in flight: no job may fail, and
  // after shutdown every pin must be released. The deterministic
  // mechanism (pinned entries spared by every sweep phase) is covered in
  // guidance_store_gc_test; this exercises it end-to-end under load.
  JobServiceOptions options;
  options.workers = 3;
  options.queue_capacity = 256;
  options.provider.store_dir = StoreDir("slfe_service_pins");
  options.provider.store_gc.max_bytes = 1;
  options.tenant_budgets["hammer"] = GuidanceTenantBudget{1, 0};
  options.maintenance_interval_seconds = 0.001;
  JobService service(options);
  ASSERT_TRUE(service.RegisterGraph("g0", Rmat(200, 1500, 60)).ok());
  ASSERT_TRUE(service.RegisterGraph("g1", Rmat(250, 1800, 61)).ok());

  std::vector<JobTicket> tickets;
  for (int round = 0; round < 10; ++round) {
    for (const char* name : {"g0", "g1"}) {
      JobRequest request;
      request.tenant = "hammer";
      request.app = round % 2 == 0 ? "sssp" : "cc";
      request.graph = name;
      auto ticket = service.Submit(request);
      ASSERT_TRUE(ticket.ok());
      tickets.push_back(std::move(ticket).value());
      // A manual sweep racing the in-flight jobs, on top of the timer's.
      service.SweepNow();
    }
  }
  for (const JobTicket& ticket : tickets) {
    const JobResult& result = ticket->Wait();
    EXPECT_TRUE(result.status.ok()) << result.status.ToString();
  }
  service.Shutdown();

  GuidanceStore* store = service.provider().store();
  ASSERT_NE(store, nullptr);
  // Every submit-time pin was matched by a completion-time unpin.
  EXPECT_EQ(store->pinned_graphs(), 0u);
  JobServiceStats stats = service.Stats();
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.completed, tickets.size());
  // With the budgets this hostile, the final (unpinned) sweep clears the
  // store entirely.
  EXPECT_EQ(store->Sweep().remaining_entries, 0u);
}

TEST(JobServiceTest, GracefulShutdownDrainsAcceptedJobs) {
  JobServiceOptions options;
  options.workers = 1;  // force a backlog
  options.queue_capacity = 64;
  JobService service(options);
  ASSERT_TRUE(service.RegisterGraph("g", Rmat(300, 2400, 70)).ok());

  std::vector<JobTicket> tickets;
  for (int i = 0; i < 6; ++i) {
    JobRequest request;
    request.graph = "g";
    request.app = i % 2 == 0 ? "sssp" : "pr";
    auto ticket = service.Submit(request);
    ASSERT_TRUE(ticket.ok());
    tickets.push_back(std::move(ticket).value());
  }
  service.Shutdown();  // must drain all 6, not drop them

  for (const JobTicket& ticket : tickets) {
    ASSERT_TRUE(ticket->done());  // Shutdown returned => all complete
    EXPECT_TRUE(ticket->Wait().status.ok());
  }
  EXPECT_FALSE(service.accepting());
  JobRequest late;
  late.graph = "g";
  EXPECT_EQ(service.Submit(late).status().code(),
            StatusCode::kFailedPrecondition);
  JobServiceStats stats = service.Stats();
  EXPECT_EQ(stats.completed, 6u);
  EXPECT_EQ(stats.rejected, 1u);
  service.Shutdown();  // idempotent
}

TEST(JobServiceTest, QueueFullRejectsInsteadOfBlocking) {
  // One worker + capacity 1: burst-submit from the test thread; at least
  // one job must be accepted, and any rejection must be the retryable
  // queue-full status with the submitted/rejected counters consistent.
  JobServiceOptions options;
  options.workers = 1;
  options.queue_capacity = 1;
  JobService service(options);
  ASSERT_TRUE(service.RegisterGraph("g", Rmat(400, 3200, 80)).ok());

  size_t accepted = 0, rejected = 0;
  std::vector<JobTicket> tickets;
  for (int i = 0; i < 32; ++i) {
    JobRequest request;
    request.graph = "g";
    request.app = "pr";
    auto ticket = service.Submit(request);
    if (ticket.ok()) {
      ++accepted;
      tickets.push_back(std::move(ticket).value());
    } else {
      EXPECT_EQ(ticket.status().code(), StatusCode::kFailedPrecondition);
      ++rejected;
    }
  }
  EXPECT_GT(accepted, 0u);
  for (const JobTicket& ticket : tickets) {
    EXPECT_TRUE(ticket->Wait().status.ok());
  }
  JobServiceStats stats = service.Stats();
  EXPECT_EQ(stats.submitted, accepted);
  EXPECT_EQ(stats.rejected, rejected);
  EXPECT_EQ(stats.completed, accepted);
}

// ------------------------------------------------------- graph mutations

TEST(JobServiceMutationTest, MutationJobsRunThroughTheQueueAndCount) {
  JobService service;
  ASSERT_TRUE(
      service.RegisterGraph("c", Graph::FromEdges(GenerateChain(40))).ok());

  // An effective mutation: sever the chain at (19,20).
  MutationRequest mutation;
  mutation.tenant = "t";
  mutation.graph = "c";
  mutation.delta.erase.emplace_back(19, 20);
  auto ticket = service.SubmitMutation(mutation);
  ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
  const JobResult& result = ticket.value()->Wait();
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.app, "mutate");
  EXPECT_EQ(result.summary, 2u);  // version now served
  EXPECT_EQ(result.updates, 1u);  // one edge deleted

  // Queries submitted after the mutation see the new topology: bfs from 0
  // on the severed chain tops out at level 19 instead of 39.
  JobRequest query;
  query.tenant = "t";
  query.app = "bfs";
  query.graph = "c";
  auto query_ticket = service.Submit(query);
  ASSERT_TRUE(query_ticket.ok());
  EXPECT_EQ(query_ticket.value()->Wait().summary, 19u);

  // A no-op mutation (the pair is already gone) completes ok but is not
  // an effective mutation: no version bump, no mutations count.
  auto noop_ticket = service.SubmitMutation(mutation);
  ASSERT_TRUE(noop_ticket.ok());
  const JobResult& noop = noop_ticket.value()->Wait();
  EXPECT_TRUE(noop.status.ok());
  EXPECT_EQ(noop.summary, 2u);  // version unchanged
  EXPECT_EQ(noop.updates, 0u);

  // An invalid delta is accepted at submit and fails at execution.
  MutationRequest bad;
  bad.tenant = "t";
  bad.graph = "c";
  bad.delta.erase.emplace_back(0, 4000);
  auto bad_ticket = service.SubmitMutation(bad);
  ASSERT_TRUE(bad_ticket.ok());
  EXPECT_EQ(bad_ticket.value()->Wait().status.code(),
            StatusCode::kInvalidArgument);

  MutationRequest unknown;
  unknown.graph = "nope";
  EXPECT_EQ(service.SubmitMutation(unknown).status().code(),
            StatusCode::kNotFound);

  JobServiceStats stats = service.Stats();
  EXPECT_EQ(stats.mutations, 1u);  // only the effective one
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.tenants.at("t").mutations, 1u);
  EXPECT_EQ(stats.tenants.at("t").jobs_failed, 1u);
  // Mutations are jobs: 2 ok mutations + 1 query (the failed one counts
  // in jobs_failed only).
  EXPECT_EQ(stats.tenants.at("t").jobs_completed, 3u);
  EXPECT_EQ(service.session().GraphVersions("c").back().version, 2u);
}

TEST(JobServiceMutationTest, QueriesExecuteOnTheirSubmitTimeVersion) {
  // One worker; a slow job occupies it while a mutation AND a query are
  // queued behind it. The query resolved its graph at submit time —
  // before the mutation executed — so it MUST run on version 1 even
  // though version 2 is published by the time the worker reaches it.
  JobServiceOptions options;
  options.workers = 1;
  options.queue_capacity = 64;
  JobService service(options);
  ASSERT_TRUE(service.RegisterGraph("busy", Rmat(1000, 8000, 91)).ok());
  ASSERT_TRUE(
      service.RegisterGraph("c", Graph::FromEdges(GenerateChain(40))).ok());

  JobRequest blocker;
  blocker.tenant = "z";
  blocker.app = "pr";
  blocker.graph = "busy";
  blocker.max_iters = 50;
  auto blocker_ticket = service.Submit(blocker);
  ASSERT_TRUE(blocker_ticket.ok());

  MutationRequest mutation;
  mutation.tenant = "m";
  mutation.graph = "c";
  mutation.delta.erase.emplace_back(19, 20);
  auto mutation_ticket = service.SubmitMutation(mutation);
  ASSERT_TRUE(mutation_ticket.ok());

  JobRequest pinned;
  pinned.tenant = "q";
  pinned.app = "bfs";
  pinned.graph = "c";
  auto pinned_ticket = service.Submit(pinned);  // resolves version 1 NOW
  ASSERT_TRUE(pinned_ticket.ok());

  // Lane rotation pops z, m, q: the mutation completes before the pinned
  // query runs.
  ASSERT_TRUE(blocker_ticket.value()->Wait().status.ok());
  const JobResult& mutated = mutation_ticket.value()->Wait();
  ASSERT_TRUE(mutated.status.ok());
  EXPECT_EQ(mutated.summary, 2u);
  const JobResult& pinned_result = pinned_ticket.value()->Wait();
  ASSERT_TRUE(pinned_result.status.ok());
  EXPECT_EQ(pinned_result.summary, 39u)
      << "job submitted against version 1 must run on version 1";

  // A query submitted after the mutation drained sees version 2.
  auto fresh_ticket = service.Submit(pinned);
  ASSERT_TRUE(fresh_ticket.ok());
  EXPECT_EQ(fresh_ticket.value()->Wait().summary, 19u);
}

TEST(JobServiceMutationTest, PostMutationMissesAreServedByRepair) {
  JobServiceOptions options;
  options.workers = 1;
  JobService service(options);
  ASSERT_TRUE(
      service.RegisterGraph("c", Graph::FromEdges(GenerateChain(40))).ok());

  JobRequest query;
  query.tenant = "r";
  query.app = "bfs";
  query.graph = "c";
  auto first = service.Submit(query);
  ASSERT_TRUE(first.ok());
  const JobResult& generated = first.value()->Wait();
  ASSERT_TRUE(generated.status.ok());
  EXPECT_TRUE(generated.guidance_acquired);
  EXPECT_FALSE(generated.guidance_repaired);

  MutationRequest mutation;
  mutation.tenant = "r";
  mutation.graph = "c";
  mutation.delta.erase.emplace_back(38, 39);
  auto mutated = service.SubmitMutation(mutation);
  ASSERT_TRUE(mutated.ok());
  ASSERT_TRUE(mutated.value()->Wait().status.ok());

  auto second = service.Submit(query);
  ASSERT_TRUE(second.ok());
  const JobResult& repaired = second.value()->Wait();
  ASSERT_TRUE(repaired.status.ok());
  EXPECT_TRUE(repaired.guidance_acquired);
  EXPECT_TRUE(repaired.guidance_repaired)
      << "the version-2 miss should patch version 1's guidance";
  EXPECT_EQ(repaired.summary, 38u);

  JobServiceStats stats = service.Stats();
  EXPECT_EQ(stats.provider.repairs, 1u);
  EXPECT_EQ(stats.provider.repair_fallbacks, 0u);
  EXPECT_EQ(stats.provider.generations, 1u);
  const TenantStats& tenant = stats.tenants.at("r");
  EXPECT_EQ(tenant.mutations, 1u);
  EXPECT_EQ(tenant.guidance_repaired, 1u);
  EXPECT_EQ(tenant.guidance_misses, 2u);  // both queries missed the cache
  EXPECT_EQ(tenant.guidance_hits, 0u);
}

TEST(JobServiceMutationTest, MutationNeverEvictsTheOldVersionsStoreEntry) {
  // The satellite-4 guarantee: repairing version N+1 must not clobber or
  // invalidate version N's persisted guidance — both fingerprints' store
  // entries coexist (in-flight jobs and the repair lineage still read the
  // old one; GC ages it out later).
  JobServiceOptions options;
  options.workers = 1;
  options.provider.store_dir = StoreDir("slfe_service_versions");
  JobService service(options);
  ASSERT_TRUE(
      service.RegisterGraph("c", Graph::FromEdges(GenerateChain(40))).ok());

  JobRequest query;
  query.tenant = "t";
  query.app = "bfs";
  query.graph = "c";
  ASSERT_TRUE(service.Submit(query).value()->Wait().status.ok());

  MutationRequest mutation;
  mutation.graph = "c";
  mutation.delta.insert.push_back(Edge{0, 20, 1.0f});
  ASSERT_TRUE(service.SubmitMutation(mutation).value()->Wait().status.ok());

  const JobResult& after = service.Submit(query).value()->Wait();
  ASSERT_TRUE(after.status.ok());
  EXPECT_TRUE(after.guidance_repaired);

  // Both versions' guidance entries are on disk: nothing was invalidated
  // by the mutation, and the default GC policy keeps both.
  GuidanceStoreSweepStats sweep = service.SweepNow();
  EXPECT_EQ(sweep.remaining_entries, 2u)
      << "version 1's entry must survive the mutation and the repair";
}

TEST(JobServiceMutationTest, ConcurrentMutateAndQueryTrafficStaysConsistent) {
  // Query tenants hammer a graph while a mutation tenant rewires it: no
  // job may fail (version pinning shields in-flight queries), and the
  // per-tenant counters must sum to the service totals.
  JobServiceOptions options;
  options.workers = 4;
  options.queue_capacity = 256;
  JobService service(options);
  ASSERT_TRUE(service.RegisterGraph("g", Rmat(300, 2400, 95)).ok());

  constexpr int kQueriesPerTenant = 25;
  constexpr int kMutations = 12;
  std::vector<JobTicket> tickets;
  std::mutex tickets_mu;
  std::atomic<int> failures{0};
  std::vector<std::thread> traffic;
  for (const char* tenant : {"qa", "qb"}) {
    traffic.emplace_back([&, tenant] {
      for (int i = 0; i < kQueriesPerTenant; ++i) {
        JobRequest request;
        request.tenant = tenant;
        request.app = i % 2 == 0 ? "bfs" : "cc";
        request.graph = "g";
        request.root = static_cast<VertexId>(i % 200);
        auto ticket = service.Submit(request);
        if (!ticket.ok()) {
          ++failures;
          continue;
        }
        std::lock_guard<std::mutex> lock(tickets_mu);
        tickets.push_back(std::move(ticket).value());
      }
    });
  }
  traffic.emplace_back([&] {
    for (int i = 0; i < kMutations; ++i) {
      MutationRequest request;
      request.tenant = "mut";
      request.graph = "g";
      // Alternate inserting an edge and deleting it one step later so
      // versions keep changing.
      if (i % 2 == 0) {
        request.delta.insert.push_back(
            Edge{static_cast<VertexId>(i), static_cast<VertexId>(250 + i),
                 1.0f});
      } else {
        request.delta.erase.emplace_back(static_cast<VertexId>(i - 1),
                                         static_cast<VertexId>(249 + i));
      }
      auto ticket = service.SubmitMutation(request);
      if (!ticket.ok()) {
        ++failures;
        continue;
      }
      std::lock_guard<std::mutex> lock(tickets_mu);
      tickets.push_back(std::move(ticket).value());
    }
  });
  for (std::thread& thread : traffic) thread.join();
  ASSERT_EQ(failures.load(), 0);

  uint64_t effective_mutations = 0;
  for (const JobTicket& ticket : tickets) {
    const JobResult& result = ticket->Wait();
    EXPECT_TRUE(result.status.ok())
        << result.app << " on " << result.graph << ": "
        << result.status.ToString();
    if (result.app == "mutate" && result.updates > 0) ++effective_mutations;
  }

  JobServiceStats stats = service.Stats();
  EXPECT_EQ(stats.completed, tickets.size());
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.mutations, effective_mutations);
  EXPECT_GT(stats.mutations, 0u);
  uint64_t tenant_jobs = 0, tenant_mutations = 0, tenant_repaired = 0;
  for (const auto& [name, tenant] : stats.tenants) {
    EXPECT_EQ(tenant.jobs_submitted, tenant.jobs_completed) << name;
    tenant_jobs += tenant.jobs_completed;
    tenant_mutations += tenant.mutations;
    tenant_repaired += tenant.guidance_repaired;
  }
  EXPECT_EQ(tenant_jobs, stats.completed);
  EXPECT_EQ(tenant_mutations, stats.mutations);
  EXPECT_EQ(tenant_repaired, stats.provider.repairs);
  // The version chain all those mutations built is fully recorded.
  EXPECT_EQ(service.session().GraphVersions("g").back().version,
            1 + service.session().graphs_mutated());
}

// -------------------------------------------------------- Observability

TEST(JobServiceObservabilityTest, TraceSpansTileTheEndToEndLatency) {
  JobServiceOptions options;
  options.workers = 2;
  JobService service(options);
  ASSERT_TRUE(service.RegisterGraph("g", Rmat(300, 2500, 11)).ok());

  std::vector<JobTicket> tickets;
  for (int i = 0; i < 6; ++i) {
    JobRequest request;
    request.tenant = "acme";
    request.app = "sssp";
    request.graph = "g";
    request.root = 0;
    auto ticket = service.Submit(request);
    ASSERT_TRUE(ticket.ok());
    tickets.push_back(std::move(ticket).value());
  }
  for (const auto& ticket : tickets) {
    const JobResult& result = ticket->Wait();
    ASSERT_TRUE(result.status.ok());
    ASSERT_NE(result.trace, nullptr);
    const obs::JobTrace& trace = *result.trace;
    EXPECT_TRUE(trace.completed());
    EXPECT_TRUE(trace.ok());
    double e2e = trace.completed_at();
    ASSERT_GT(e2e, 0.0);
    double queue = trace.SpanSecondsWithPrefix("queue_wait");
    double guidance = trace.SpanSecondsWithPrefix("guidance_acquire");
    double engine = trace.SpanSecondsWithPrefix("engine_execute");
    EXPECT_GT(queue, 0.0);
    EXPECT_GT(engine, 0.0);
    // The instrumented phases tile submit -> completion: their sum must
    // account for (almost) all of the end-to-end latency. The slack
    // covers the un-instrumented glue between pop, run, and completion.
    double sum = queue + guidance + engine;
    EXPECT_LE(sum, e2e * 1.01 + 0.002);
    EXPECT_GE(sum, e2e - 0.050);
  }

  // Every completed job landed in the flight recorder, and the latency
  // histogram's count agrees with the service's completed counter.
  EXPECT_EQ(service.flight_recorder().Recent().size(), tickets.size());
  std::string metrics = service.RenderMetricsText();
  EXPECT_NE(metrics.find("slfe_job_latency_seconds_count 6"),
            std::string::npos);
  EXPECT_NE(metrics.find("slfe_tenant_job_latency_seconds_count"
                         "{tenant=\"acme\"} 6"),
            std::string::npos);
  std::string traces = service.RenderTraceJson("recent");
  EXPECT_NE(traces.find("\"queue_wait\""), std::string::npos);
  EXPECT_NE(traces.find("\"engine_execute\""), std::string::npos);
  // Lookup by id returns the single trace; bogus selectors error cleanly.
  std::string by_id = service.RenderTraceJson(
      std::to_string(tickets.front()->Wait().trace->job_id));
  EXPECT_NE(by_id.find("\"spans\""), std::string::npos);
  EXPECT_NE(service.RenderTraceJson("bogus").find("\"error\""),
            std::string::npos);
}

TEST(JobServiceObservabilityTest, TracingDisabledStillFeedsHistograms) {
  JobServiceOptions options;
  options.tracing = false;
  JobService service(options);
  ASSERT_TRUE(service.RegisterGraph("g", Rmat(200, 1500, 12)).ok());
  JobRequest request;
  request.app = "sssp";
  request.graph = "g";
  request.root = 0;
  auto ticket = service.Submit(request);
  ASSERT_TRUE(ticket.ok());
  const JobResult& result = ticket.value()->Wait();
  EXPECT_TRUE(result.status.ok());
  EXPECT_EQ(result.trace, nullptr);
  EXPECT_TRUE(service.flight_recorder().Recent().empty());
  // Histograms key off submit timestamps, not traces: still recording.
  std::string metrics = service.RenderMetricsText();
  EXPECT_NE(metrics.find("slfe_job_latency_seconds_count 1"),
            std::string::npos);
}

// --------------------------------------------------------- Demand sketch

TEST(JobServiceSketchTest, StreamsEveryRequestAndRanksHotGraphs) {
  JobService service;
  ASSERT_TRUE(service.RegisterGraph("hotg", Rmat(200, 1500, 31)).ok());
  ASSERT_TRUE(service.RegisterGraph("coldg", Rmat(150, 900, 32)).ok());

  auto run = [&](const std::string& tenant, const std::string& graph) {
    JobRequest request;
    request.tenant = tenant;
    request.app = "sssp";
    request.graph = graph;
    request.root = 0;
    auto ticket = service.Submit(request);
    ASSERT_TRUE(ticket.ok());
    EXPECT_TRUE(ticket.value()->Wait().status.ok());
  };
  for (int i = 0; i < 5; ++i) run("acme", "hotg");
  for (int i = 0; i < 2; ++i) run("globex", "coldg");

  JobServiceStats stats = service.Stats();
  EXPECT_EQ(stats.sketch_observations, 7u);
  EXPECT_EQ(stats.sketch_decays, 0u);
  EXPECT_EQ(stats.tenants_tracked, 2u);
  EXPECT_EQ(stats.tenants_sketched, 0u);
  EXPECT_GE(service.hotness().EstimateTenant("acme"), 5u);
  EXPECT_GE(service.hotness().EstimateApp("sssp"), 7u);

  // The `hot` surface: ranked, named, counted.
  std::string hot = service.RenderHot(3);
  EXPECT_EQ(hot.find("hot: k=3 observations=7"), 0u) << hot;
  size_t first = hot.find("hot 1 graph=hotg");
  size_t second = hot.find("hot 2 graph=coldg");
  ASSERT_NE(first, std::string::npos) << hot;
  ASSERT_NE(second, std::string::npos) << hot;
  EXPECT_LT(first, second);
  EXPECT_NE(hot.find("est=5"), std::string::npos) << hot;

  // A rejected submit still feeds the tenant marginal (fingerprint 0:
  // no graph marginal, so the ranking above is untouched).
  JobRequest bad;
  bad.tenant = "initech";
  bad.graph = "nope";
  EXPECT_FALSE(service.Submit(bad).ok());
  EXPECT_EQ(service.Stats().sketch_observations, 8u);
  EXPECT_GE(service.hotness().EstimateTenant("initech"), 1u);

  // And the registry mirrors it all as metrics.
  std::string metrics = service.RenderMetricsText();
  EXPECT_NE(metrics.find("slfe_sketch_observations_total 8"),
            std::string::npos);
  EXPECT_NE(metrics.find("slfe_hot_graph_estimate{graph=\"hotg\"}"),
            std::string::npos)
      << metrics;
}

TEST(JobServiceSketchTest, TenantCapSplitsExactRowsFromSketchedTail) {
  JobServiceOptions options;
  options.max_tracked_tenants = 2;
  JobService service(options);
  ASSERT_TRUE(service.RegisterGraph("g", Rmat(200, 1500, 33)).ok());

  const char* kTenants[] = {"t1", "t2", "t3", "t4"};
  for (const char* tenant : kTenants) {
    JobRequest request;
    request.tenant = tenant;
    request.app = "sssp";
    request.graph = "g";
    auto ticket = service.Submit(request);
    ASSERT_TRUE(ticket.ok());
    EXPECT_TRUE(ticket.value()->Wait().status.ok());
  }

  JobServiceStats stats = service.Stats();
  EXPECT_EQ(stats.completed, 4u);
  // First two tenants got exact rows; t3/t4 folded into the tail.
  EXPECT_EQ(stats.tenants_tracked, 2u);
  ASSERT_EQ(stats.tenants.size(), 2u);
  EXPECT_EQ(stats.tenants_sketched, 2u);
  EXPECT_EQ(stats.sketched_tail.jobs_submitted, 2u);
  EXPECT_EQ(stats.sketched_tail.jobs_completed, 2u);
  uint64_t row_sum = stats.sketched_tail.jobs_completed;
  for (const auto& [name, t] : stats.tenants) {
    EXPECT_NE(std::string(name), "t3");
    EXPECT_NE(std::string(name), "t4");
    row_sum += t.jobs_completed;
  }
  EXPECT_EQ(row_sum, stats.completed);  // rows + tail still sum to totals
  // The spilled tenants stay readable through the sketch.
  EXPECT_GE(service.hotness().EstimateTenant("t3"), 1u);
  EXPECT_GE(service.hotness().EstimateTenant("t4"), 1u);

  // A tenant that spilled once never flips back to an exact row.
  JobRequest again;
  again.tenant = "t3";
  again.app = "sssp";
  again.graph = "g";
  auto ticket = service.Submit(again);
  ASSERT_TRUE(ticket.ok());
  ticket.value()->Wait();
  stats = service.Stats();
  EXPECT_EQ(stats.tenants.size(), 2u);
  EXPECT_EQ(stats.tenants_sketched, 2u);  // t3 was already counted
  EXPECT_EQ(stats.sketched_tail.jobs_submitted, 3u);
}

TEST(JobServiceSketchTest, HotAdmitThresholdGatesAndPromotesStoreWrites) {
  JobServiceOptions options;
  options.provider.store_dir = StoreDir("slfe_sketch_admit");
  options.hot_admit_threshold = 2;
  JobService service(options);
  ASSERT_TRUE(service.RegisterGraph("hotg", Rmat(200, 1500, 34)).ok());
  ASSERT_TRUE(service.RegisterGraph("oneshot", Rmat(150, 900, 35)).ok());

  auto run = [&](const std::string& graph) {
    JobRequest request;
    request.app = "sssp";
    request.graph = graph;
    auto ticket = service.Submit(request);
    ASSERT_TRUE(ticket.ok());
    EXPECT_TRUE(ticket.value()->Wait().status.ok());
  };

  // First sight of each graph: estimated demand 1 < threshold 2, so the
  // freshly generated guidance stays memory-only.
  run("hotg");
  run("oneshot");
  JobServiceStats stats = service.Stats();
  EXPECT_EQ(stats.cache.admission_skips, 2u);
  EXPECT_EQ(stats.cache.admission_promotions, 0u);

  // hotg comes back: demand hits the threshold, and although the job is
  // a pure memory hit (no insert runs), the hit path persists it.
  run("hotg");
  stats = service.Stats();
  EXPECT_EQ(stats.cache.hits, 1u);
  EXPECT_EQ(stats.cache.admission_promotions, 1u);
  EXPECT_EQ(stats.cache.admission_skips, 2u);  // oneshot stays cold

  // Promotion happens once; further hits don't re-save.
  run("hotg");
  stats = service.Stats();
  EXPECT_EQ(stats.cache.admission_promotions, 1u);
  EXPECT_EQ(stats.provider.generations, 2u);  // gate never forced a resweep
}

}  // namespace
}  // namespace slfe::service
