// Tests for the RR guidance preprocessing (paper Algorithm 1) and root
// selection: lastIter must equal 1 + the maximum BFS level among a
// vertex's in-neighbors, the sweep must be O(E)-cheap, and the guidance
// must be reusable.

#include <gtest/gtest.h>

#include <queue>
#include <vector>

#include "slfe/apps/reference.h"
#include "slfe/core/roots.h"
#include "slfe/core/rr_guidance.h"
#include "slfe/graph/generators.h"

namespace slfe {
namespace {

// Multi-source BFS levels (reference for the guidance invariant).
std::vector<uint32_t> MultiSourceBfs(const Graph& g,
                                     const std::vector<VertexId>& roots) {
  std::vector<uint32_t> level(g.num_vertices(), UINT32_MAX);
  std::queue<VertexId> q;
  for (VertexId r : roots) {
    if (level[r] == UINT32_MAX) {
      level[r] = 0;
      q.push(r);
    }
  }
  while (!q.empty()) {
    VertexId v = q.front();
    q.pop();
    g.out().ForEachNeighbor(v, [&](VertexId u, Weight) {
      if (level[u] == UINT32_MAX) {
        level[u] = level[v] + 1;
        q.push(u);
      }
    });
  }
  return level;
}

void CheckGuidanceInvariant(const Graph& g,
                            const std::vector<VertexId>& roots) {
  RRGuidance rrg = RRGuidance::Generate(g, roots);
  std::vector<uint32_t> level = MultiSourceBfs(g, roots);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    // visited == reachable from the root set.
    bool reachable = level[v] != UINT32_MAX;
    EXPECT_EQ(rrg.visited(v), reachable) << "v=" << v;

    // lastIter(v) == 1 + max BFS level over reachable in-neighbors
    // (0 when no in-neighbor is reachable).
    uint32_t want = 0;
    g.in().ForEachNeighbor(v, [&](VertexId u, Weight) {
      if (level[u] != UINT32_MAX) want = std::max(want, level[u] + 1);
    });
    EXPECT_EQ(rrg.last_iter(v), want) << "v=" << v;
  }
}

TEST(RRGuidanceTest, MatchesBfsInvariantOnChain) {
  Graph g = Graph::FromEdges(GenerateChain(20));
  CheckGuidanceInvariant(g, {0});
}

TEST(RRGuidanceTest, MatchesBfsInvariantOnGrid) {
  Graph g = Graph::FromEdges(GenerateGrid(8, 9));
  CheckGuidanceInvariant(g, {0});
}

TEST(RRGuidanceTest, MatchesBfsInvariantOnRmat) {
  RmatOptions opt;
  opt.num_vertices = 512;
  opt.num_edges = 3000;
  Graph g = Graph::FromEdges(GenerateRmat(opt));
  CheckGuidanceInvariant(g, {0});
}

TEST(RRGuidanceTest, MultiRootInvariant) {
  RmatOptions opt;
  opt.num_vertices = 256;
  opt.num_edges = 1200;
  opt.seed = 5;
  Graph g = Graph::FromEdges(GenerateRmat(opt));
  CheckGuidanceInvariant(g, {0, 17, 99});
}

TEST(RRGuidanceTest, ChainHasMaximalDepth) {
  Graph g = Graph::FromEdges(GenerateChain(50));
  RRGuidance rrg = RRGuidance::Generate(g, {0});
  EXPECT_EQ(rrg.depth(), 49u);
  EXPECT_EQ(rrg.last_iter(49), 49u);
  EXPECT_EQ(rrg.last_iter(1), 1u);
}

TEST(RRGuidanceTest, StarIsDepthOneFromHub) {
  Graph g = Graph::FromEdges(GenerateStar(8));
  RRGuidance rrg = RRGuidance::Generate(g, {0});
  for (VertexId v = 1; v <= 8; ++v) EXPECT_EQ(rrg.last_iter(v), 1u);
  // Hub's lastIter is 2: spokes (level 1) point back at it.
  EXPECT_EQ(rrg.last_iter(0), 2u);
}

TEST(RRGuidanceTest, UnreachableVerticesStayUnvisited) {
  EdgeList e(6);
  e.Add(0, 1);
  e.Add(1, 2);
  e.Add(4, 5);  // island
  Graph g = Graph::FromEdges(e);
  RRGuidance rrg = RRGuidance::Generate(g, {0});
  EXPECT_FALSE(rrg.visited(4));
  EXPECT_FALSE(rrg.visited(5));
  EXPECT_EQ(rrg.last_iter(5), 0u);
}

TEST(RRGuidanceTest, EmptyRootsYieldEmptySweep) {
  Graph g = Graph::FromEdges(GenerateChain(5));
  RRGuidance rrg = RRGuidance::Generate(g, {});
  EXPECT_EQ(rrg.depth(), 0u);
  for (VertexId v = 0; v < 5; ++v) EXPECT_FALSE(rrg.visited(v));
}

TEST(RRGuidanceTest, GenerationTimeRecorded) {
  RmatOptions opt;
  opt.num_vertices = 1024;
  opt.num_edges = 8000;
  Graph g = Graph::FromEdges(GenerateRmat(opt));
  RRGuidance rrg = RRGuidance::Generate(g, {0});
  EXPECT_GT(rrg.generation_seconds(), 0.0);
}

TEST(RRGuidanceTest, OverheadIsSmallRelativeToGraphSize) {
  // The preprocessing is one O(E) sweep; generating guidance for a
  // 100k-edge graph must take well under a second even on modest hardware
  // (paper: "negligible overhead").
  RmatOptions opt;
  opt.num_vertices = 16384;
  opt.num_edges = 100000;
  Graph g = Graph::FromEdges(GenerateRmat(opt));
  RRGuidance rrg = RRGuidance::Generate(g, {0});
  EXPECT_LT(rrg.generation_seconds(), 1.0);
}

// ------------------------------------------------------------------ Roots

TEST(RootsTest, SourceRootsAreZeroInDegree) {
  EdgeList e(5);
  e.Add(0, 2);
  e.Add(1, 2);
  e.Add(2, 3);
  e.Add(3, 4);
  Graph g = Graph::FromEdges(e);
  auto roots = SelectSourceRoots(g);
  EXPECT_EQ(roots, (std::vector<VertexId>{0, 1}));
}

TEST(RootsTest, SourceRootsFallBackToVertexZeroOnCycle) {
  EdgeList e(3);
  e.Add(0, 1);
  e.Add(1, 2);
  e.Add(2, 0);
  Graph g = Graph::FromEdges(e);
  auto roots = SelectSourceRoots(g);
  EXPECT_EQ(roots, (std::vector<VertexId>{0}));
}

TEST(RootsTest, LocalMinimaIncludeComponentMinimum) {
  RmatOptions opt;
  opt.num_vertices = 128;
  opt.num_edges = 700;
  opt.seed = 13;
  EdgeList e = GenerateRmat(opt);
  e.Symmetrize();
  e.Deduplicate();
  Graph g = Graph::FromEdges(e);
  auto roots = SelectLocalMinimaRoots(g);
  auto labels = ReferenceCc(g);
  // Every component's minimum label vertex must appear among the roots.
  std::set<VertexId> root_set(roots.begin(), roots.end());
  std::set<uint32_t> component_minima(labels.begin(), labels.end());
  for (uint32_t m : component_minima) {
    EXPECT_TRUE(root_set.count(m)) << "component min " << m;
  }
}

TEST(RootsTest, VertexZeroIsAlwaysALocalMinimum) {
  Graph g = Graph::FromEdges(GenerateStar(5));
  auto roots = SelectLocalMinimaRoots(g);
  ASSERT_FALSE(roots.empty());
  EXPECT_EQ(roots.front(), 0u);
}

}  // namespace
}  // namespace slfe
