// Integration/property tests: every application must produce values that
// match the sequential reference, for every engine configuration — the
// operational form of the paper's Theorem 1 (delayed computation converges
// to the original output).

#include <gtest/gtest.h>

#include <cmath>

#include "slfe/apps/bfs.h"
#include "slfe/apps/cc.h"
#include "slfe/apps/numpaths.h"
#include "slfe/apps/pr.h"
#include "slfe/apps/reference.h"
#include "slfe/apps/spmv.h"
#include "slfe/apps/sssp.h"
#include "slfe/apps/tr.h"
#include "slfe/apps/wp.h"
#include "slfe/graph/generators.h"

namespace slfe {
namespace {

// Cluster/RR configurations swept by every equivalence test.
struct Config {
  int nodes;
  int threads;
  bool rr;
};

std::vector<Config> Configs() {
  return {{1, 1, false}, {1, 1, true},  {1, 2, true},
          {4, 1, false}, {4, 1, true},  {4, 2, true},
          {8, 1, true},  {2, 2, false}, {3, 2, true}};
}

std::string Describe(const Config& c) {
  return "nodes=" + std::to_string(c.nodes) +
         " threads=" + std::to_string(c.threads) +
         " rr=" + std::to_string(c.rr);
}

// Graph fixtures exercising different topology classes.
Graph RmatGraph() {
  RmatOptions opt;
  opt.num_vertices = 512;
  opt.num_edges = 4096;
  opt.weighted = true;
  opt.seed = 7;
  EdgeList edges = GenerateRmat(opt);
  edges.Deduplicate();
  return Graph::FromEdges(edges);
}

Graph GridGraph() {
  return Graph::FromEdges(GenerateGrid(16, 24, /*weighted=*/true, 3));
}

Graph ChainGraph() {
  return Graph::FromEdges(GenerateChain(64, /*weighted=*/true, 5));
}

Graph SymmetricRmatGraph() {
  RmatOptions opt;
  opt.num_vertices = 256;
  opt.num_edges = 1500;
  opt.seed = 11;
  EdgeList edges = GenerateRmat(opt);
  edges.Symmetrize();
  edges.Deduplicate();
  return Graph::FromEdges(edges);
}

class AppsEquivalenceTest : public ::testing::Test {};

TEST(AppsEquivalenceTest, SsspMatchesDijkstraOnRmat) {
  Graph g = RmatGraph();
  auto ref = ReferenceSssp(g, 0);
  for (const Config& c : Configs()) {
    AppConfig cfg;
    cfg.num_nodes = c.nodes;
    cfg.threads_per_node = c.threads;
    cfg.enable_rr = c.rr;
    cfg.root = 0;
    SsspResult r = RunSssp(g, cfg);
    ASSERT_EQ(r.dist.size(), ref.size());
    for (size_t v = 0; v < ref.size(); ++v) {
      EXPECT_FLOAT_EQ(r.dist[v], ref[v]) << Describe(c) << " v=" << v;
    }
  }
}

TEST(AppsEquivalenceTest, SsspMatchesDijkstraOnGrid) {
  Graph g = GridGraph();
  auto ref = ReferenceSssp(g, 5);
  for (const Config& c : Configs()) {
    AppConfig cfg;
    cfg.num_nodes = c.nodes;
    cfg.threads_per_node = c.threads;
    cfg.enable_rr = c.rr;
    cfg.root = 5;
    SsspResult r = RunSssp(g, cfg);
    for (size_t v = 0; v < ref.size(); ++v) {
      EXPECT_FLOAT_EQ(r.dist[v], ref[v]) << Describe(c) << " v=" << v;
    }
  }
}

TEST(AppsEquivalenceTest, BfsMatchesReferenceOnChain) {
  Graph g = ChainGraph();
  auto ref = ReferenceBfs(g, 0);
  for (const Config& c : Configs()) {
    AppConfig cfg;
    cfg.num_nodes = c.nodes;
    cfg.threads_per_node = c.threads;
    cfg.enable_rr = c.rr;
    BfsResult r = RunBfs(g, cfg);
    for (size_t v = 0; v < ref.size(); ++v) {
      EXPECT_EQ(r.levels[v], ref[v]) << Describe(c) << " v=" << v;
    }
  }
}

TEST(AppsEquivalenceTest, CcMatchesReferenceOnSymmetricRmat) {
  Graph g = SymmetricRmatGraph();
  auto ref = ReferenceCc(g);
  for (const Config& c : Configs()) {
    AppConfig cfg;
    cfg.num_nodes = c.nodes;
    cfg.threads_per_node = c.threads;
    cfg.enable_rr = c.rr;
    CcResult r = RunCc(g, cfg);
    for (size_t v = 0; v < ref.size(); ++v) {
      EXPECT_EQ(r.labels[v], ref[v]) << Describe(c) << " v=" << v;
    }
  }
}

TEST(AppsEquivalenceTest, WpMatchesReferenceOnRmat) {
  Graph g = RmatGraph();
  auto ref = ReferenceWp(g, 0);
  for (const Config& c : Configs()) {
    AppConfig cfg;
    cfg.num_nodes = c.nodes;
    cfg.threads_per_node = c.threads;
    cfg.enable_rr = c.rr;
    WpResult r = RunWp(g, cfg);
    for (size_t v = 0; v < ref.size(); ++v) {
      EXPECT_FLOAT_EQ(r.width[v], ref[v]) << Describe(c) << " v=" << v;
    }
  }
}

TEST(AppsEquivalenceTest, PrMatchesReferenceBaseline) {
  Graph g = RmatGraph();
  auto ref = ReferencePr(g, 20);
  AppConfig cfg;
  cfg.max_iters = 20;
  cfg.epsilon = 0.0;  // run all iterations
  PrResult r = RunPr(g, cfg);
  for (size_t v = 0; v < ref.size(); ++v) {
    EXPECT_NEAR(r.ranks[v], ref[v], 1e-4) << "v=" << v;
  }
}

TEST(AppsEquivalenceTest, PrWithRrStaysCloseToReference) {
  // "Finish early" freezes stabilized vertices; values must stay within a
  // small tolerance of the exact power iteration (paper §3.7: SLFE always
  // provides accurate results for EC-based bypassing).
  Graph g = RmatGraph();
  auto ref = ReferencePr(g, 50);
  AppConfig cfg;
  cfg.max_iters = 50;
  cfg.epsilon = 0.0;
  cfg.enable_rr = true;
  cfg.num_nodes = 2;
  PrResult r = RunPr(g, cfg);
  for (size_t v = 0; v < ref.size(); ++v) {
    EXPECT_NEAR(r.ranks[v], ref[v], 5e-3) << "v=" << v;
  }
}

TEST(AppsEquivalenceTest, TrMatchesReferenceBaseline) {
  Graph g = RmatGraph();
  auto ref = ReferenceTr(g, 15);
  AppConfig cfg;
  cfg.max_iters = 15;
  cfg.epsilon = 0.0;
  TrResult r = RunTr(g, cfg);
  for (size_t v = 0; v < ref.size(); ++v) {
    EXPECT_NEAR(r.influence[v], ref[v], 1e-3) << "v=" << v;
  }
}

TEST(AppsEquivalenceTest, SpmvMatchesReference) {
  Graph g = RmatGraph();
  std::vector<float> x(g.num_vertices());
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<float>(i % 7) * 0.25f;
  }
  auto ref = ReferenceSpmv(g, x, 1);
  AppConfig cfg;
  cfg.num_nodes = 2;
  SpmvResult r = RunSpmv(g, x, cfg, 1);
  for (size_t v = 0; v < ref.size(); ++v) {
    EXPECT_NEAR(r.y[v], ref[v], 1e-3) << "v=" << v;
  }
}

TEST(AppsEquivalenceTest, NumPathsMatchesReferenceOnChain) {
  Graph g = ChainGraph();
  auto ref = ReferenceNumPaths(g, 0, 10);
  AppConfig cfg;
  NumPathsResult r = RunNumPaths(g, cfg, 10);
  for (size_t v = 0; v < ref.size(); ++v) {
    EXPECT_DOUBLE_EQ(r.paths[v], ref[v]) << "v=" << v;
  }
}

TEST(AppsEquivalenceTest, RrSkipsWorkAndLowersRampCurve) {
  // Paper Fig. 9a/9b: with RR the per-iteration computation curve during
  // the ramp-up sits below the baseline's, because delayed vertices are
  // bypassed ("start late"). Compare the peak per-iteration computation
  // count and require bypassed work to be recorded.
  Graph g = RmatGraph();
  AppConfig base;
  AppConfig rr = base;
  rr.enable_rr = true;
  SsspResult r0 = RunSssp(g, base);
  SsspResult r1 = RunSssp(g, rr);
  auto ramp = [](const std::vector<uint64_t>& s) {
    uint64_t total = 0;
    for (size_t i = 0; i < s.size() && i < 4; ++i) total += s[i];
    return total;
  };
  EXPECT_LT(ramp(r1.info.stats.per_iter_computations),
            ramp(r0.info.stats.per_iter_computations));
  EXPECT_GT(r1.info.stats.skipped, 0u);
}

TEST(AppsEquivalenceTest, RrReducesTotalComputationsOnDeepGraph) {
  // On high-redundancy topologies (many updates per vertex — the paper's
  // Table 2 regime) RR reduces even the total computation count.
  Graph g = Graph::FromEdges(
      GenerateGrid(48, 48, /*weighted=*/true, 3, /*max_weight=*/256.0f));
  AppConfig base;
  AppConfig rr = base;
  rr.enable_rr = true;
  SsspResult r0 = RunSssp(g, base);
  SsspResult r1 = RunSssp(g, rr);
  EXPECT_LT(r1.info.stats.computations, r0.info.stats.computations);
  EXPECT_LT(r1.info.stats.updates, r0.info.stats.updates);
}

}  // namespace
}  // namespace slfe
