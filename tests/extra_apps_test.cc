// Tests for the extended application set (paper Table 1): triangle
// counting, heat simulation, belief propagation, and minimum spanning
// forest — reference equivalence plus behavioral invariants, across
// cluster configurations.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "slfe/apps/belief_propagation.h"
#include "slfe/apps/heat_simulation.h"
#include "slfe/apps/mst.h"
#include "slfe/apps/reference.h"
#include "slfe/apps/triangle_count.h"
#include "slfe/graph/generators.h"

namespace slfe {
namespace {

Graph WeightedRmat(VertexId n, EdgeId m, uint64_t seed, bool symmetric) {
  RmatOptions opt;
  opt.num_vertices = n;
  opt.num_edges = m;
  opt.weighted = true;
  opt.seed = seed;
  EdgeList e = GenerateRmat(opt);
  if (symmetric) e.Symmetrize();
  e.Deduplicate();
  return Graph::FromEdges(e);
}

// ------------------------------------------------------------- Triangles

class TriangleConfigTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TriangleConfigTest, MatchesBruteForce) {
  auto [nodes, threads] = GetParam();
  Graph g = WeightedRmat(256, 2000, 17, /*symmetric=*/false);
  AppConfig cfg;
  cfg.num_nodes = nodes;
  cfg.threads_per_node = threads;
  auto result = RunTriangleCount(g, cfg);
  EXPECT_EQ(result.triangles, ReferenceTriangleCount(g));
}

INSTANTIATE_TEST_SUITE_P(Sweep, TriangleConfigTest,
                         ::testing::Combine(::testing::Values(1, 3, 8),
                                            ::testing::Values(1, 2)));

TEST(TriangleCountTest, KnownSmallGraphs) {
  // A single triangle.
  EdgeList tri(3);
  tri.Add(0, 1);
  tri.Add(1, 2);
  tri.Add(2, 0);
  AppConfig cfg;
  EXPECT_EQ(RunTriangleCount(Graph::FromEdges(tri), cfg).triangles, 1u);

  // Complete graph K5: C(5,3) = 10 triangles.
  EXPECT_EQ(RunTriangleCount(Graph::FromEdges(GenerateComplete(5)), cfg)
                .triangles,
            10u);

  // A star has none.
  EXPECT_EQ(
      RunTriangleCount(Graph::FromEdges(GenerateStar(10)), cfg).triangles,
      0u);

  // A grid (no diagonals) has none.
  EXPECT_EQ(
      RunTriangleCount(Graph::FromEdges(GenerateGrid(5, 5)), cfg).triangles,
      0u);
}

TEST(TriangleCountTest, DirectionInsensitive) {
  // Counting treats the graph as undirected: symmetrizing must not change
  // the triangle count.
  Graph g = WeightedRmat(128, 800, 23, false);
  Graph gs = WeightedRmat(128, 800, 23, true);
  AppConfig cfg;
  EXPECT_EQ(RunTriangleCount(g, cfg).triangles,
            RunTriangleCount(gs, cfg).triangles);
}

// ------------------------------------------------------------------ Heat

TEST(HeatSimulationTest, MatchesReferenceBaseline) {
  Graph g = WeightedRmat(512, 4000, 29, false);
  std::vector<float> initial(g.num_vertices(), 0.0f);
  for (VertexId v = 0; v < g.num_vertices(); v += 17) initial[v] = 100.0f;
  AppConfig cfg;
  cfg.num_nodes = 2;
  cfg.max_iters = 15;
  cfg.epsilon = 0.0;
  auto result = RunHeatSimulation(g, initial, cfg, 0.5f);
  auto ref = ReferenceHeatSimulation(g, initial, 15, 0.5f);
  for (size_t v = 0; v < ref.size(); ++v) {
    EXPECT_NEAR(result.heat[v], ref[v], 1e-3) << "v=" << v;
  }
}

TEST(HeatSimulationTest, RrStaysCloseAndFreezes) {
  Graph g = WeightedRmat(512, 4000, 29, false);
  std::vector<float> initial(g.num_vertices(), 0.0f);
  initial[0] = 1000.0f;
  AppConfig cfg;
  cfg.max_iters = 150;
  cfg.epsilon = 0.0;
  auto base = RunHeatSimulation(g, initial, cfg, 0.5f);
  cfg.enable_rr = true;
  auto rr = RunHeatSimulation(g, initial, cfg, 0.5f);
  for (size_t v = 0; v < base.heat.size(); ++v) {
    EXPECT_NEAR(rr.heat[v], base.heat[v], 1e-2) << "v=" << v;
  }
  EXPECT_GT(rr.info.ec_vertices, 0u);
}

TEST(HeatSimulationTest, IsolatedSourceHoldsTemperature) {
  EdgeList e(4);
  e.Add(0, 1);
  e.Add(1, 2);
  Graph g = Graph::FromEdges(e);
  std::vector<float> initial = {50.0f, 0.0f, 0.0f, 7.0f};
  AppConfig cfg;
  cfg.max_iters = 20;
  cfg.epsilon = 0.0;
  auto result = RunHeatSimulation(g, initial, cfg, 0.5f);
  EXPECT_FLOAT_EQ(result.heat[0], 50.0f);  // in-degree 0: source
  EXPECT_FLOAT_EQ(result.heat[3], 7.0f);   // isolated vertex
  EXPECT_GT(result.heat[1], 0.0f);         // heat propagated
  EXPECT_GT(result.heat[1], result.heat[2]);
}

// -------------------------------------------------------------------- BP

TEST(BeliefPropagationTest, MatchesReferenceBaseline) {
  Graph g = WeightedRmat(512, 4000, 37, true);
  std::vector<float> prior(g.num_vertices(), 0.0f);
  for (VertexId v = 0; v < g.num_vertices(); v += 11) prior[v] = 2.0f;
  for (VertexId v = 5; v < g.num_vertices(); v += 13) prior[v] = -2.0f;
  AppConfig cfg;
  cfg.num_nodes = 4;
  cfg.max_iters = 12;
  cfg.epsilon = 0.0;
  auto result = RunBeliefPropagation(g, prior, cfg);
  auto ref = ReferenceBeliefPropagation(g, prior, 12, 0.2f, 0.5f);
  for (size_t v = 0; v < ref.size(); ++v) {
    EXPECT_NEAR(result.belief[v], ref[v], 1e-3) << "v=" << v;
  }
}

TEST(BeliefPropagationTest, EvidencePropagatesToNeighbors) {
  // A chain with strong positive evidence at the head: downstream beliefs
  // must pick up positive log-odds, decaying with distance.
  Graph g = Graph::FromEdges(GenerateChain(10));
  std::vector<float> prior(10, 0.0f);
  prior[0] = 4.0f;
  AppConfig cfg;
  cfg.max_iters = 50;
  cfg.epsilon = 0.0;
  auto result = RunBeliefPropagation(g, prior, cfg, 0.5f, 0.5f);
  EXPECT_GT(result.belief[1], result.belief[2]);
  EXPECT_GT(result.belief[2], 0.0f);
}

TEST(BeliefPropagationTest, RrMatchesBaselineWithinTolerance) {
  Graph g = WeightedRmat(256, 2000, 39, true);
  std::vector<float> prior(g.num_vertices(), 0.0f);
  prior[1] = 3.0f;
  AppConfig cfg;
  cfg.max_iters = 120;
  cfg.epsilon = 0.0;
  auto base = RunBeliefPropagation(g, prior, cfg);
  cfg.enable_rr = true;
  auto rr = RunBeliefPropagation(g, prior, cfg);
  for (size_t v = 0; v < base.belief.size(); ++v) {
    EXPECT_NEAR(rr.belief[v], base.belief[v], 1e-2) << "v=" << v;
  }
}

// ------------------------------------------------------------------- MST

class MstConfigTest : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(MstConfigTest, WeightMatchesKruskal) {
  auto [nodes, threads] = GetParam();
  Graph g = WeightedRmat(256, 1600, 41, /*symmetric=*/true);
  AppConfig cfg;
  cfg.num_nodes = nodes;
  cfg.threads_per_node = threads;
  MstResult result = RunMst(g, cfg);
  EXPECT_DOUBLE_EQ(result.total_weight, ReferenceMstWeight(g));
}

INSTANTIATE_TEST_SUITE_P(Sweep, MstConfigTest,
                         ::testing::Combine(::testing::Values(1, 2, 8),
                                            ::testing::Values(1, 2)));

TEST(MstTest, ForestEdgeCountMatchesComponents) {
  Graph g = WeightedRmat(200, 600, 43, /*symmetric=*/true);
  AppConfig cfg;
  MstResult result = RunMst(g, cfg);
  // A spanning forest has |V| - #components edges.
  auto labels = ReferenceCc(g);
  std::set<uint32_t> components(labels.begin(), labels.end());
  EXPECT_EQ(result.tree_edges, g.num_vertices() - components.size());
}

TEST(MstTest, ChainMstIsWholeChain) {
  EdgeList e = GenerateChain(20, /*weighted=*/true, 3);
  e.Symmetrize();
  Graph g = Graph::FromEdges(e);
  AppConfig cfg;
  MstResult result = RunMst(g, cfg);
  EXPECT_EQ(result.tree_edges, 19u);
  EXPECT_DOUBLE_EQ(result.total_weight, ReferenceMstWeight(g));
}

TEST(MstTest, EmptyGraph) {
  Graph g;
  AppConfig cfg;
  MstResult result = RunMst(g, cfg);
  EXPECT_EQ(result.tree_edges, 0u);
  EXPECT_EQ(result.total_weight, 0.0);
}

TEST(MstTest, BoruvkaRoundsLogarithmic) {
  // Boruvka halves the number of components per round: rounds should be
  // O(log V), far below V.
  Graph g = WeightedRmat(1024, 8000, 47, /*symmetric=*/true);
  AppConfig cfg;
  MstResult result = RunMst(g, cfg);
  EXPECT_LE(result.rounds, 16u);
}

}  // namespace
}  // namespace slfe
