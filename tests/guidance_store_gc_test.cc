// Tests for GuidanceStore garbage collection: the TTL and LRU-by-mtime
// budget sweeps must remove exactly the entries outside policy — never a
// live, in-budget one — whether triggered at construction or via the
// manual Sweep() hook; and the whole provider/cache/store stack must stay
// consistent while N threads hammer it concurrently with GC sweeps.

#include <fcntl.h>
#include <gtest/gtest.h>
#include <sys/stat.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <ctime>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "slfe/core/guidance_cache.h"
#include "slfe/core/guidance_provider.h"
#include "slfe/core/guidance_store.h"
#include "slfe/core/rr_guidance.h"
#include "slfe/graph/generators.h"

namespace slfe {
namespace {

std::string StoreDir(const std::string& name) {
  return ::testing::TempDir() + name;
}

/// Rewrites a file's mtime (and atime) to `age_seconds` in the past, so
/// tests can stage arbitrary LRU orders and TTL-expired entries without
/// sleeping.
void SetAge(const std::string& path, double age_seconds) {
  struct ::timespec now;
  ASSERT_EQ(::clock_gettime(CLOCK_REALTIME, &now), 0);
  struct ::timespec times[2];
  times[0] = now;
  times[0].tv_sec -= static_cast<time_t>(age_seconds);
  times[1] = times[0];
  ASSERT_EQ(::utimensat(AT_FDCWD, path.c_str(), times, 0), 0) << path;
}

bool FileExists(const std::string& path) {
  struct ::stat st;
  return ::stat(path.c_str(), &st) == 0;
}

/// A store over a clean directory plus `count` saved entries for one
/// chain graph, keyed by distinct single roots. The chain's sweep depths
/// all fit in a byte and generated guidance carries its levels plane, so
/// Save negotiates the packed-with-levels codec and every entry file is
/// 56 + 3 * |V| bytes (here |V| = 20 → 116).
struct GcFixture {
  static constexpr uint64_t kEntryBytes = 56 + 3 * 20;

  explicit GcFixture(const std::string& name, size_t count)
      : graph(Graph::FromEdges(GenerateChain(20))), store(StoreDir(name)) {
    EXPECT_TRUE(store.RemoveAll().ok());
    for (size_t i = 0; i < count; ++i) {
      std::vector<VertexId> roots = {static_cast<VertexId>(i)};
      GuidanceKey key = GuidanceCache::MakeKey(graph.fingerprint(), roots);
      EXPECT_TRUE(
          store.Save(key, RRGuidance::GenerateSerial(graph, roots)).ok());
      keys.push_back(key);
      paths.push_back(store.EntryPath(key));
    }
  }

  Graph graph;
  GuidanceStore store;
  std::vector<GuidanceKey> keys;
  std::vector<std::string> paths;
};

TEST(GuidanceStoreGcTest, NoLimitsSweepRemovesNothing) {
  GcFixture fx("slfe_gc_nolimits", 3);
  for (const std::string& p : fx.paths) SetAge(p, 1e6);  // ancient
  GuidanceStoreSweepStats sweep = fx.store.Sweep();
  EXPECT_EQ(sweep.scanned, 3u);
  EXPECT_EQ(sweep.ttl_removed, 0u);
  EXPECT_EQ(sweep.budget_removed, 0u);
  EXPECT_EQ(sweep.remaining_entries, 3u);
  EXPECT_EQ(sweep.remaining_bytes, 3 * GcFixture::kEntryBytes);
  for (const GuidanceKey& k : fx.keys) EXPECT_TRUE(fx.store.Contains(k));
}

TEST(GuidanceStoreGcTest, TtlRemovesExactlyTheExpired) {
  GuidanceStoreGcOptions gc;
  gc.ttl_seconds = 50;
  gc.sweep_on_construction = false;
  Graph graph = Graph::FromEdges(GenerateChain(20));
  GuidanceStore store(StoreDir("slfe_gc_ttl"), gc);
  ASSERT_TRUE(store.RemoveAll().ok());

  std::vector<GuidanceKey> keys;
  for (VertexId r = 0; r < 4; ++r) {
    std::vector<VertexId> roots = {r};
    GuidanceKey key = GuidanceCache::MakeKey(graph.fingerprint(), roots);
    ASSERT_TRUE(
        store.Save(key, RRGuidance::GenerateSerial(graph, roots)).ok());
    keys.push_back(key);
  }
  // Entries 0 and 2 are past the TTL; 1 and 3 are comfortably inside.
  SetAge(store.EntryPath(keys[0]), 100);
  SetAge(store.EntryPath(keys[2]), 400);
  SetAge(store.EntryPath(keys[1]), 10);

  GuidanceStoreSweepStats sweep = store.Sweep();
  EXPECT_EQ(sweep.scanned, 4u);
  EXPECT_EQ(sweep.ttl_removed, 2u);
  EXPECT_EQ(sweep.budget_removed, 0u);
  EXPECT_EQ(sweep.bytes_reclaimed, 2 * GcFixture::kEntryBytes);
  EXPECT_EQ(sweep.remaining_entries, 2u);
  EXPECT_FALSE(store.Contains(keys[0]));
  EXPECT_TRUE(store.Contains(keys[1]));
  EXPECT_FALSE(store.Contains(keys[2]));
  EXPECT_TRUE(store.Contains(keys[3]));
  // The survivors still load — the sweep never corrupts what it keeps.
  EXPECT_TRUE(store.Load(keys[1]).ok());
  EXPECT_TRUE(store.Load(keys[3]).ok());
}

TEST(GuidanceStoreGcTest, EntryBudgetEvictsOldestFirst) {
  GuidanceStoreGcOptions gc;
  gc.max_entries = 2;
  gc.sweep_on_construction = false;
  Graph graph = Graph::FromEdges(GenerateChain(20));
  GuidanceStore store(StoreDir("slfe_gc_entries"), gc);
  ASSERT_TRUE(store.RemoveAll().ok());

  std::vector<GuidanceKey> keys;
  for (VertexId r = 0; r < 5; ++r) {
    std::vector<VertexId> roots = {r};
    GuidanceKey key = GuidanceCache::MakeKey(graph.fingerprint(), roots);
    ASSERT_TRUE(
        store.Save(key, RRGuidance::GenerateSerial(graph, roots)).ok());
    keys.push_back(key);
    // Strictly decreasing age by index: key 0 is the stalest.
    SetAge(store.EntryPath(key), 500.0 - 100.0 * r);
  }

  GuidanceStoreSweepStats sweep = store.Sweep();
  EXPECT_EQ(sweep.budget_removed, 3u);
  EXPECT_EQ(sweep.ttl_removed, 0u);
  EXPECT_EQ(sweep.remaining_entries, 2u);
  EXPECT_FALSE(store.Contains(keys[0]));
  EXPECT_FALSE(store.Contains(keys[1]));
  EXPECT_FALSE(store.Contains(keys[2]));
  EXPECT_TRUE(store.Contains(keys[3]));  // the two youngest survive
  EXPECT_TRUE(store.Contains(keys[4]));
}

TEST(GuidanceStoreGcTest, ByteBudgetEvictsOldestFirst) {
  GuidanceStoreGcOptions gc;
  gc.max_bytes = 2 * GcFixture::kEntryBytes + 10;  // room for two entries
  gc.sweep_on_construction = false;
  Graph graph = Graph::FromEdges(GenerateChain(20));
  GuidanceStore store(StoreDir("slfe_gc_bytes"), gc);
  ASSERT_TRUE(store.RemoveAll().ok());

  std::vector<GuidanceKey> keys;
  for (VertexId r = 0; r < 4; ++r) {
    std::vector<VertexId> roots = {r};
    GuidanceKey key = GuidanceCache::MakeKey(graph.fingerprint(), roots);
    ASSERT_TRUE(
        store.Save(key, RRGuidance::GenerateSerial(graph, roots)).ok());
    keys.push_back(key);
    SetAge(store.EntryPath(key), 400.0 - 100.0 * r);
  }

  GuidanceStoreSweepStats sweep = store.Sweep();
  EXPECT_EQ(sweep.budget_removed, 2u);
  EXPECT_EQ(sweep.bytes_reclaimed, 2 * GcFixture::kEntryBytes);
  EXPECT_EQ(sweep.remaining_bytes, 2 * GcFixture::kEntryBytes);
  EXPECT_FALSE(store.Contains(keys[0]));
  EXPECT_FALSE(store.Contains(keys[1]));
  EXPECT_TRUE(store.Contains(keys[2]));
  EXPECT_TRUE(store.Contains(keys[3]));
}

TEST(GuidanceStoreGcTest, ConstructionSweepEnforcesBudget) {
  // A store opened over a stale directory starts within budget — the
  // multi-tenant "opened months later" case.
  std::string dir = StoreDir("slfe_gc_ctor");
  std::vector<GuidanceKey> keys;
  Graph graph = Graph::FromEdges(GenerateChain(20));
  {
    GuidanceStore staging(dir);
    ASSERT_TRUE(staging.RemoveAll().ok());
    for (VertexId r = 0; r < 3; ++r) {
      std::vector<VertexId> roots = {r};
      GuidanceKey key = GuidanceCache::MakeKey(graph.fingerprint(), roots);
      ASSERT_TRUE(
          staging.Save(key, RRGuidance::GenerateSerial(graph, roots)).ok());
      keys.push_back(key);
      SetAge(staging.EntryPath(key), 300.0 - 100.0 * r);
    }
  }

  GuidanceStoreGcOptions gc;
  gc.max_entries = 1;
  GuidanceStore store(dir, gc);
  EXPECT_EQ(store.stats().sweeps, 1u);
  EXPECT_EQ(store.stats().gc_removed, 2u);
  EXPECT_FALSE(store.Contains(keys[0]));
  EXPECT_FALSE(store.Contains(keys[1]));
  EXPECT_TRUE(store.Contains(keys[2]));

  // Opting out: same directory, sweep_on_construction = false.
  GuidanceStoreGcOptions lazy = gc;
  lazy.sweep_on_construction = false;
  GuidanceStore lazy_store(dir, lazy);
  EXPECT_EQ(lazy_store.stats().sweeps, 0u);
  EXPECT_TRUE(lazy_store.Contains(keys[2]));
}

TEST(GuidanceStoreGcTest, LoadRefreshesRecency) {
  // LRU means *used*, not just written: loading an entry must shield it
  // from a budget sweep that removes an untouched sibling of equal age.
  GuidanceStoreGcOptions gc;
  gc.max_entries = 1;
  gc.sweep_on_construction = false;
  Graph graph = Graph::FromEdges(GenerateChain(20));
  GuidanceStore store(StoreDir("slfe_gc_touch"), gc);
  ASSERT_TRUE(store.RemoveAll().ok());

  std::vector<GuidanceKey> keys;
  for (VertexId r = 0; r < 2; ++r) {
    std::vector<VertexId> roots = {r};
    GuidanceKey key = GuidanceCache::MakeKey(graph.fingerprint(), roots);
    ASSERT_TRUE(
        store.Save(key, RRGuidance::GenerateSerial(graph, roots)).ok());
    keys.push_back(key);
    SetAge(store.EntryPath(key), 1000);
  }
  ASSERT_TRUE(store.Load(keys[0]).ok());  // touches entry 0

  GuidanceStoreSweepStats sweep = store.Sweep();
  EXPECT_EQ(sweep.budget_removed, 1u);
  EXPECT_TRUE(store.Contains(keys[0]));
  EXPECT_FALSE(store.Contains(keys[1]));
}

TEST(GuidanceStoreGcTest, SweepIgnoresForeignFiles) {
  GcFixture fx("slfe_gc_foreign", 2);
  std::string foreign = fx.store.dir() + "/notes.txt";
  std::FILE* f = std::fopen(foreign.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not an rrg entry", f);
  std::fclose(f);

  GuidanceStoreGcOptions gc;
  gc.max_entries = 1;
  gc.sweep_on_construction = false;
  GuidanceStore limited(fx.store.dir(), gc);
  for (const std::string& p : fx.paths) SetAge(p, 100);
  SetAge(fx.paths[0], 200);
  GuidanceStoreSweepStats sweep = limited.Sweep();
  EXPECT_EQ(sweep.scanned, 2u);  // the .txt is not an entry
  EXPECT_EQ(sweep.budget_removed, 1u);
  EXPECT_TRUE(FileExists(foreign)) << "GC must never touch foreign files";
  std::remove(foreign.c_str());
}

TEST(GuidanceStoreGcTest, StatsAccumulateAcrossSweeps) {
  GuidanceStoreGcOptions gc;
  gc.ttl_seconds = 50;
  gc.sweep_on_construction = false;
  Graph graph = Graph::FromEdges(GenerateChain(20));
  GuidanceStore store(StoreDir("slfe_gc_stats"), gc);
  ASSERT_TRUE(store.RemoveAll().ok());

  for (int round = 1; round <= 2; ++round) {
    std::vector<VertexId> roots = {0};
    GuidanceKey key = GuidanceCache::MakeKey(graph.fingerprint(), roots);
    ASSERT_TRUE(
        store.Save(key, RRGuidance::GenerateSerial(graph, roots)).ok());
    SetAge(store.EntryPath(key), 100);
    store.Sweep();
    EXPECT_EQ(store.stats().sweeps, static_cast<uint64_t>(round));
    EXPECT_EQ(store.stats().gc_removed, static_cast<uint64_t>(round));
    EXPECT_EQ(store.stats().gc_bytes_reclaimed,
              round * GcFixture::kEntryBytes);
  }
}

// ---------------------------------------------------------------------------
// Concurrency: N threads hammering one provider across two graphs while GC
// sweeps run. Live graphs must never lose guidance (every acquisition is
// non-null and bit-identical to the serial reference) and the layered stats
// must stay consistent with each other.
// ---------------------------------------------------------------------------

TEST(GuidanceStoreGcTest, TenantBudgetsEvictOnlyThatTenant) {
  // Two tenants over budget, one under, one unattributed: phase 2 must
  // trim exactly the over-budget tenants' stalest entries and leave
  // everyone else alone (the JobService maintenance-loop contract).
  GuidanceStoreGcOptions gc;
  gc.sweep_on_construction = false;
  gc.tenant_budgets["alpha"] = GuidanceTenantBudget{0, 1};  // keep 1 entry
  gc.tenant_budgets["beta"] = GuidanceTenantBudget{0, 2};   // keep 2
  Graph a = Graph::FromEdges(GenerateChain(20));
  Graph b = Graph::FromEdges(GenerateChain(30));
  Graph c = Graph::FromEdges(GenerateChain(40));
  GuidanceStore store(StoreDir("slfe_gc_tenant"), gc);
  ASSERT_TRUE(store.RemoveAll().ok());
  store.AssignGraphTenant(a.fingerprint(), "alpha");
  store.AssignGraphTenant(b.fingerprint(), "beta");
  // c stays unattributed.

  auto save = [&](const Graph& g, VertexId root,
                  double age) -> GuidanceKey {
    std::vector<VertexId> roots = {root};
    GuidanceKey key = GuidanceCache::MakeKey(g.fingerprint(), roots);
    EXPECT_TRUE(store.Save(key, RRGuidance::GenerateSerial(g, roots)).ok());
    SetAge(store.EntryPath(key), age);
    return key;
  };
  // alpha: 3 entries (keep newest = a2); beta: 3 (keep a[1],a[2]); c: 1.
  GuidanceKey a0 = save(a, 0, 300), a1 = save(a, 1, 200), a2 = save(a, 2, 100);
  GuidanceKey b0 = save(b, 0, 300), b1 = save(b, 1, 200), b2 = save(b, 2, 100);
  GuidanceKey c0 = save(c, 0, 1000);  // ancient, but nobody budgets it

  GuidanceStoreSweepStats sweep = store.Sweep();
  EXPECT_EQ(sweep.scanned, 7u);
  EXPECT_EQ(sweep.ttl_removed, 0u);
  EXPECT_EQ(sweep.tenant_removed, 3u);  // 2 from alpha + 1 from beta
  EXPECT_EQ(sweep.budget_removed, 0u);
  EXPECT_EQ(sweep.remaining_entries, 4u);
  EXPECT_FALSE(store.Contains(a0));
  EXPECT_FALSE(store.Contains(a1));
  EXPECT_TRUE(store.Contains(a2));
  EXPECT_FALSE(store.Contains(b0));
  EXPECT_TRUE(store.Contains(b1));
  EXPECT_TRUE(store.Contains(b2));
  EXPECT_TRUE(store.Contains(c0));
}

TEST(GuidanceStoreGcTest, TenantByteBudgetAndRuntimeSetters) {
  // SetTenantBudget after construction (the JobService reconfiguration
  // path) and byte-denominated budgets: 20-vertex entries are 116 bytes
  // (packed-with-levels codec), so a 250-byte budget keeps exactly the
  // two newest.
  Graph g = Graph::FromEdges(GenerateChain(20));
  GuidanceStore store(StoreDir("slfe_gc_tenant_bytes"),
                      GuidanceStoreGcOptions{});
  ASSERT_TRUE(store.RemoveAll().ok());
  store.AssignGraphTenant(g.fingerprint(), "gamma");
  EXPECT_EQ(store.GraphTenant(g.fingerprint()), "gamma");
  store.SetTenantBudget("gamma", GuidanceTenantBudget{250, 0});

  std::vector<GuidanceKey> keys;
  for (VertexId r = 0; r < 4; ++r) {
    std::vector<VertexId> roots = {r};
    GuidanceKey key = GuidanceCache::MakeKey(g.fingerprint(), roots);
    ASSERT_TRUE(
        store.Save(key, RRGuidance::GenerateSerial(g, roots)).ok());
    SetAge(store.EntryPath(key), 400 - 100 * r);  // r=3 newest
    keys.push_back(key);
  }
  GuidanceStoreSweepStats sweep = store.Sweep();
  EXPECT_EQ(sweep.tenant_removed, 2u);
  EXPECT_FALSE(store.Contains(keys[0]));
  EXPECT_FALSE(store.Contains(keys[1]));
  EXPECT_TRUE(store.Contains(keys[2]));
  EXPECT_TRUE(store.Contains(keys[3]));

  // Clearing the budget (no limits) makes the next sweep a no-op.
  store.SetTenantBudget("gamma", GuidanceTenantBudget{});
  sweep = store.Sweep();
  EXPECT_EQ(sweep.tenant_removed, 0u);
  EXPECT_EQ(sweep.remaining_entries, 2u);
}

TEST(GuidanceStoreGcTest, PinnedGraphSurvivesEveryPhase) {
  // The in-flight protection: a pinned graph's entries are immune to TTL,
  // tenant, and global budget phases; each spared would-be victim is
  // reported; unpinning re-exposes them.
  GuidanceStoreGcOptions gc;
  gc.sweep_on_construction = false;
  gc.ttl_seconds = 50;
  gc.max_entries = 1;
  gc.tenant_budgets["alpha"] = GuidanceTenantBudget{0, 1};
  Graph a = Graph::FromEdges(GenerateChain(20));
  Graph b = Graph::FromEdges(GenerateChain(30));
  GuidanceStore store(StoreDir("slfe_gc_pin"), gc);
  ASSERT_TRUE(store.RemoveAll().ok());
  store.AssignGraphTenant(a.fingerprint(), "alpha");

  auto save = [&](const Graph& g, VertexId root, double age) -> GuidanceKey {
    std::vector<VertexId> roots = {root};
    GuidanceKey key = GuidanceCache::MakeKey(g.fingerprint(), roots);
    EXPECT_TRUE(store.Save(key, RRGuidance::GenerateSerial(g, roots)).ok());
    SetAge(store.EntryPath(key), age);
    return key;
  };
  // All of a's entries are TTL-expired AND over both budgets; b's single
  // entry is expired and unpinned.
  GuidanceKey a0 = save(a, 0, 400), a1 = save(a, 1, 300), a2 = save(a, 2, 200);
  GuidanceKey b0 = save(b, 0, 1000);

  store.PinGraph(a.fingerprint());
  EXPECT_EQ(store.pinned_graphs(), 1u);
  GuidanceStoreSweepStats sweep = store.Sweep();
  // b0 went to TTL; every a-entry was spared in the TTL phase, then the
  // tenant and global phases spared them again.
  EXPECT_EQ(sweep.ttl_removed, 1u);
  EXPECT_EQ(sweep.tenant_removed, 0u);
  EXPECT_EQ(sweep.budget_removed, 0u);
  EXPECT_GE(sweep.pinned_spared, 3u);
  EXPECT_EQ(sweep.remaining_entries, 3u);
  EXPECT_TRUE(store.Contains(a0));
  EXPECT_TRUE(store.Contains(a1));
  EXPECT_TRUE(store.Contains(a2));
  EXPECT_FALSE(store.Contains(b0));

  // Refcounted: one pin still held -> still protected.
  store.PinGraph(a.fingerprint());
  store.UnpinGraph(a.fingerprint());
  sweep = store.Sweep();
  EXPECT_EQ(sweep.remaining_entries, 3u);

  // Fully unpinned: TTL finally claims all three.
  store.UnpinGraph(a.fingerprint());
  EXPECT_EQ(store.pinned_graphs(), 0u);
  sweep = store.Sweep();
  EXPECT_EQ(sweep.ttl_removed, 3u);
  EXPECT_EQ(sweep.remaining_entries, 0u);
}

// ---------------------------------------------------- Hotness eviction

TEST(GuidanceStoreGcTest, StaleButHotSurvivesBudgetSweep) {
  // With a hotness oracle the budget phase evicts coldest-first: the
  // stalest entry survives because it is the hottest, while fresher but
  // colder entries go — the opposite of the historic mtime-LRU verdict.
  GuidanceStoreGcOptions gc;
  gc.sweep_on_construction = false;
  gc.max_entries = 1;
  Graph a = Graph::FromEdges(GenerateChain(20));
  Graph b = Graph::FromEdges(GenerateChain(21));
  Graph c = Graph::FromEdges(GenerateChain(22));
  std::unordered_map<uint64_t, uint64_t> demand = {
      {a.fingerprint(), 100}, {b.fingerprint(), 2}, {c.fingerprint(), 1}};
  gc.hotness = [&demand](uint64_t fp) {
    auto it = demand.find(fp);
    return it == demand.end() ? uint64_t{0} : it->second;
  };
  GuidanceStore store(StoreDir("slfe_gc_hotness"), gc);
  ASSERT_TRUE(store.RemoveAll().ok());

  auto save = [&](const Graph& g, double age) -> GuidanceKey {
    std::vector<VertexId> roots = {0};
    GuidanceKey key = GuidanceCache::MakeKey(g.fingerprint(), roots);
    EXPECT_TRUE(store.Save(key, RRGuidance::GenerateSerial(g, roots)).ok());
    SetAge(store.EntryPath(key), age);
    return key;
  };
  GuidanceKey ka = save(a, 500);  // stalest, hottest
  GuidanceKey kb = save(b, 300);
  GuidanceKey kc = save(c, 100);  // freshest, coldest

  GuidanceStoreSweepStats sweep = store.Sweep();
  EXPECT_EQ(sweep.budget_removed, 2u);
  EXPECT_TRUE(store.Contains(ka));
  EXPECT_FALSE(store.Contains(kb));
  EXPECT_FALSE(store.Contains(kc));
}

TEST(GuidanceStoreGcTest, EqualHotnessFallsBackToMtimeLru) {
  // A constant oracle must reproduce the historic LRU verdict exactly —
  // hotness refines the order, it never scrambles the tie-break.
  GuidanceStoreGcOptions gc;
  gc.sweep_on_construction = false;
  gc.max_entries = 1;
  gc.hotness = [](uint64_t) { return uint64_t{5}; };
  Graph a = Graph::FromEdges(GenerateChain(20));
  Graph b = Graph::FromEdges(GenerateChain(21));
  GuidanceStore store(StoreDir("slfe_gc_hot_tie"), gc);
  ASSERT_TRUE(store.RemoveAll().ok());

  GuidanceKey ka = GuidanceCache::MakeKey(a.fingerprint(), {0});
  ASSERT_TRUE(store.Save(ka, RRGuidance::GenerateSerial(a, {0})).ok());
  SetAge(store.EntryPath(ka), 500);
  GuidanceKey kb = GuidanceCache::MakeKey(b.fingerprint(), {0});
  ASSERT_TRUE(store.Save(kb, RRGuidance::GenerateSerial(b, {0})).ok());
  SetAge(store.EntryPath(kb), 100);

  store.Sweep();
  EXPECT_FALSE(store.Contains(ka));  // stalest loses, as without an oracle
  EXPECT_TRUE(store.Contains(kb));
}

TEST(GuidanceStoreGcTest, PinBeatsColdnessAndTtlIgnoresHotness) {
  // Pinning still wins over the coldest-first verdict, and the TTL phase
  // stays purely age-based: an expired entry dies however hot it is.
  GuidanceStoreGcOptions gc;
  gc.sweep_on_construction = false;
  gc.ttl_seconds = 200;
  gc.max_entries = 1;
  Graph a = Graph::FromEdges(GenerateChain(20));
  Graph b = Graph::FromEdges(GenerateChain(21));
  Graph c = Graph::FromEdges(GenerateChain(22));
  gc.hotness = [&](uint64_t fp) {
    return fp == a.fingerprint() ? uint64_t{1000} : uint64_t{1};
  };
  GuidanceStore store(StoreDir("slfe_gc_hot_pin"), gc);
  ASSERT_TRUE(store.RemoveAll().ok());

  auto save = [&](const Graph& g, double age) -> GuidanceKey {
    GuidanceKey key = GuidanceCache::MakeKey(g.fingerprint(), {0});
    EXPECT_TRUE(store.Save(key, RRGuidance::GenerateSerial(g, {0})).ok());
    SetAge(store.EntryPath(key), age);
    return key;
  };
  GuidanceKey ka = save(a, 500);  // hottest, but TTL-expired
  GuidanceKey kb = save(b, 100);  // cold: budget victim unless pinned
  GuidanceKey kc = save(c, 50);   // cold

  store.PinGraph(b.fingerprint());
  GuidanceStoreSweepStats sweep = store.Sweep();
  store.UnpinGraph(b.fingerprint());
  EXPECT_EQ(sweep.ttl_removed, 1u);
  EXPECT_FALSE(store.Contains(ka));  // hotness does not veto TTL
  EXPECT_TRUE(store.Contains(kb));   // pinned: spared from the budget phase
  EXPECT_FALSE(store.Contains(kc));  // the one eviction the budget needed
  EXPECT_GE(sweep.pinned_spared, 1u);
}

TEST(GuidanceStoreGcTest, EqualMtimeEvictionIsDeterministicByName) {
  // Same-second saves are common on coarse-mtime filesystems; the LRU
  // comparator breaks the tie by entry name so repeated sweeps over
  // identical directories always pick the same victims.
  GuidanceStoreGcOptions gc;
  gc.sweep_on_construction = false;
  gc.max_entries = 1;
  Graph graph = Graph::FromEdges(GenerateChain(20));
  GuidanceStore store(StoreDir("slfe_gc_mtime_tie"), gc);
  ASSERT_TRUE(store.RemoveAll().ok());

  std::vector<GuidanceKey> keys;
  std::vector<std::string> names;
  for (VertexId r = 0; r < 3; ++r) {
    GuidanceKey key = GuidanceCache::MakeKey(graph.fingerprint(), {r});
    ASSERT_TRUE(store.Save(key, RRGuidance::GenerateSerial(graph, {r})).ok());
    SetAge(store.EntryPath(key), 100);  // identical mtime for all three
    keys.push_back(key);
    names.push_back(store.EntryPath(key));
  }
  GuidanceStoreSweepStats sweep = store.Sweep();
  EXPECT_EQ(sweep.budget_removed, 2u);
  // (mtime, name) ascending: the lexicographically-largest name is the
  // "youngest" of the tie and must be the survivor, every time.
  size_t survivor =
      std::max_element(names.begin(), names.end()) - names.begin();
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(store.Contains(keys[i]), i == survivor) << names[i];
  }
}

TEST(GuidanceStoreGcConcurrencyTest, HammerTwoGraphsWhileSweeping) {
  constexpr size_t kThreads = 8;
  constexpr int kItersGentle = 25;
  constexpr int kItersAggressive = 15;

  Graph graph_a = Graph::FromEdges(GenerateChain(300));
  RmatOptions opt;
  opt.num_vertices = 256;
  opt.num_edges = 1200;
  opt.seed = 21;
  Graph graph_b = Graph::FromEdges(GenerateRmat(opt));
  RRGuidance ref_a = RRGuidance::GenerateSerial(graph_a, {0});
  RRGuidance ref_b = RRGuidance::GenerateSerial(graph_b, {0});

  auto matches = [](const RRGuidance& ref, const RRGuidance& got) {
    if (ref.num_vertices() != got.num_vertices()) return false;
    if (ref.depth() != got.depth()) return false;
    for (VertexId v = 0; v < ref.num_vertices(); ++v) {
      if (ref.last_iter(v) != got.last_iter(v)) return false;
      if (ref.visited(v) != got.visited(v)) return false;
    }
    return true;
  };

  // gtest assertions are awkward off the main thread; collect violations
  // in atomics and assert once after the join.
  auto hammer = [&](GuidanceProvider& provider, int iters,
                    std::atomic<uint64_t>& lost,
                    std::atomic<uint64_t>& wrong) {
    std::vector<std::thread> threads;
    std::atomic<bool> stop{false};
    std::thread sweeper([&] {
      while (!stop.load()) {
        provider.store()->Sweep();
        std::this_thread::yield();
      }
    });
    for (size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < iters; ++i) {
          bool use_a = (t + i) % 2 == 0;
          const Graph& g = use_a ? graph_a : graph_b;
          const RRGuidance& ref = use_a ? ref_a : ref_b;
          GuidanceAcquisition a = provider.AcquireForRoots(g, {0});
          if (!a) {
            ++lost;
          } else if (!matches(ref, *a.guidance)) {
            ++wrong;
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    stop.store(true);
    sweeper.join();
  };

  // Phase 1 — gentle: budgets that never evict the two live entries. With
  // the cache big enough, singleflight guarantees exactly one generation
  // per graph no matter how the 8 threads interleave.
  std::string dir = StoreDir("slfe_gc_hammer");
  {
    GuidanceStore wipe(dir);
    ASSERT_TRUE(wipe.RemoveAll().ok());
  }
  GuidanceProviderOptions opts;
  opts.cache_capacity = 8;
  opts.generation_threads = 2;
  opts.store_dir = dir;
  opts.store_gc.max_entries = 64;
  GuidanceProvider gentle(opts);
  std::atomic<uint64_t> lost{0}, wrong{0};
  hammer(gentle, kItersGentle, lost, wrong);

  EXPECT_EQ(lost.load(), 0u) << "an acquisition came back null";
  EXPECT_EQ(wrong.load(), 0u) << "an acquisition came back corrupted";
  EXPECT_EQ(gentle.stats().generations, 2u)
      << "singleflight must coalesce every concurrent miss";
  GuidanceCacheStats cs = gentle.cache_stats();
  uint64_t total = kThreads * kItersGentle;
  EXPECT_EQ(cs.hits + cs.misses + cs.store_hits, total)
      << "every acquisition does exactly one two-level lookup";
  EXPECT_EQ(cs.evictions, 0u);
  // Both live graphs still have their entries on disk after all sweeps.
  GuidanceKey key_a = GuidanceCache::MakeKey(graph_a.fingerprint(), {0});
  GuidanceKey key_b = GuidanceCache::MakeKey(graph_b.fingerprint(), {0});
  EXPECT_TRUE(gentle.store()->Contains(key_a));
  EXPECT_TRUE(gentle.store()->Contains(key_b));

  // Phase 2 — aggressive: a 1-entry cache and a 1-entry disk budget force
  // continuous eviction, reload, regeneration, and GC interference. The
  // system may do redundant work but must never serve a wrong or null
  // result, and the lookup identity must still hold.
  GuidanceProviderOptions tight;
  tight.cache_capacity = 1;
  tight.generation_threads = 2;
  tight.store_dir = dir;
  tight.store_gc.max_entries = 1;
  GuidanceProvider aggressive(tight);
  std::atomic<uint64_t> lost2{0}, wrong2{0};
  hammer(aggressive, kItersAggressive, lost2, wrong2);

  EXPECT_EQ(lost2.load(), 0u);
  EXPECT_EQ(wrong2.load(), 0u);
  GuidanceCacheStats cs2 = aggressive.cache_stats();
  uint64_t total2 = kThreads * kItersAggressive;
  EXPECT_EQ(cs2.hits + cs2.misses + cs2.store_hits, total2);
  EXPECT_GT(cs2.evictions, 0u) << "a 1-entry cache over 2 keys must evict";
  GuidanceProviderStats ps = aggressive.stats();
  // The construction sweep (max_entries = 1) kept one of the gentle
  // phase's two entries, so the evicted key must regenerate at least
  // once; the surviving key MAY be served from disk for the whole phase
  // (store loads refresh mtime, shielding it from the sweeper), so 1 is a
  // legitimate floor — not 2.
  EXPECT_GE(ps.generations, 1u);
  // Misses are exactly the acquisitions that ended in a generation or a
  // coalesced wait (plus the rare flight-just-finished Peek path, which
  // re-reads memory without a new lookup).
  EXPECT_GE(cs2.misses, ps.generations);
  GuidanceStoreStats ss = aggressive.store()->stats();
  EXPECT_EQ(ss.loads, cs2.store_hits)
      << "every store hit the cache reports is a load the store served";
  EXPECT_GT(ss.sweeps, 0u);
}

}  // namespace
}  // namespace slfe
