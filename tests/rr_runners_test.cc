// Focused tests of the SLFE core API layer: the three delayed-update
// recovery variants of MinMaxRunner, the ArithRunner's early-convergence
// (EC) semantics, and the runtime-function invariants (Algorithm 2/3):
// skipped work is recorded, verification cost is reclassified, and all
// variants agree with the baseline fixpoint.

#include <gtest/gtest.h>

#include <limits>
#include <numeric>
#include <vector>

#include "slfe/apps/reference.h"
#include "slfe/core/roots.h"
#include "slfe/core/rr_runners.h"
#include "slfe/engine/atomic_ops.h"
#include "slfe/graph/generators.h"
#include "slfe/sim/cluster.h"

namespace slfe {
namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();

struct SsspRun {
  std::vector<float> dist;
  typename MinMaxRunner<float>::RunResult result;
};

SsspRun RunSsspVariant(const Graph& g, int nodes, int threads,
                       const RRGuidance* guidance, RRVariant variant) {
  SsspRun out;
  out.dist.assign(g.num_vertices(), kInf);
  out.dist[0] = 0.0f;
  std::vector<float>& dist = out.dist;
  DistGraph dg = DistGraph::Build(g, nodes);
  DistEngine<float> engine(dg, EngineOptions{});
  MinMaxRunner<float> runner(&engine, guidance, variant);
  auto gather = [&dist](float acc, VertexId src, Weight w) {
    float c = AtomicLoad(&dist[src]) + w;
    return c < acc ? c : acc;
  };
  auto apply = [&dist](VertexId dst, float acc) {
    if (acc < dist[dst]) {
      dist[dst] = acc;
      return true;
    }
    return false;
  };
  auto scatter = [&dist](VertexId src, VertexId dst, Weight w) {
    return AtomicMin(&dist[dst], AtomicLoad(&dist[src]) + w);
  };
  sim::Cluster cluster(nodes, threads);
  cluster.Run([&](sim::NodeContext& ctx) {
    auto r = runner.Run(ctx, {0}, kInf, gather, apply, scatter);
    if (ctx.rank == 0) out.result = r;
  });
  return out;
}

Graph TestGraph(uint64_t seed, float max_weight = 256.0f) {
  RmatOptions opt;
  opt.num_vertices = 1024;
  opt.num_edges = 8000;
  opt.weighted = true;
  opt.max_weight = max_weight;
  opt.seed = seed;
  EdgeList e = GenerateRmat(opt);
  e.Deduplicate();
  return Graph::FromEdges(e);
}

class RRVariantTest : public ::testing::TestWithParam<RRVariant> {};

TEST_P(RRVariantTest, MatchesDijkstraOnRmat) {
  Graph g = TestGraph(31);
  RRGuidance guidance = RRGuidance::Generate(g, {0});
  auto run = RunSsspVariant(g, 4, 1, &guidance, GetParam());
  auto ref = ReferenceSssp(g, 0);
  for (size_t v = 0; v < ref.size(); ++v) {
    EXPECT_FLOAT_EQ(run.dist[v], ref[v]) << "v=" << v;
  }
}

TEST_P(RRVariantTest, MatchesDijkstraOnDeepGrid) {
  Graph g = Graph::FromEdges(GenerateGrid(24, 24, true, 8, 128.0f));
  RRGuidance guidance = RRGuidance::Generate(g, {0});
  auto run = RunSsspVariant(g, 3, 2, &guidance, GetParam());
  auto ref = ReferenceSssp(g, 0);
  for (size_t v = 0; v < ref.size(); ++v) {
    EXPECT_FLOAT_EQ(run.dist[v], ref[v]) << "v=" << v;
  }
}

TEST_P(RRVariantTest, SkipsWorkDuringDelay) {
  Graph g = TestGraph(32);
  RRGuidance guidance = RRGuidance::Generate(g, {0});
  auto run = RunSsspVariant(g, 2, 1, &guidance, GetParam());
  EXPECT_GT(run.result.stats.skipped, 0u);
}

INSTANTIATE_TEST_SUITE_P(Variants, RRVariantTest,
                         ::testing::Values(RRVariant::kGatherAllAtStart,
                                           RRVariant::kDirtyPush,
                                           RRVariant::kAllPush));

TEST(MinMaxRunnerTest, BaselineRunHasNoSkipsOrSweep) {
  Graph g = TestGraph(33);
  auto run = RunSsspVariant(g, 2, 1, /*guidance=*/nullptr,
                            RRVariant::kGatherAllAtStart);
  EXPECT_EQ(run.result.stats.skipped, 0u);
  EXPECT_EQ(run.result.safety_sweep_updates, 0u);
  EXPECT_EQ(run.result.verification_computations, 0u);
}

TEST(MinMaxRunnerTest, CleanSweepCostReclassified) {
  // With guidance rooted at the true source, the terminal sweep should
  // find nothing, and its edge evaluations must be reported as
  // verification rather than algorithm computations.
  Graph g = TestGraph(34);
  RRGuidance guidance = RRGuidance::Generate(g, {0});
  auto run = RunSsspVariant(g, 2, 1, &guidance, RRVariant::kGatherAllAtStart);
  EXPECT_EQ(run.result.safety_sweep_updates, 0u);
}

TEST(MinMaxRunnerTest, WrongRootGuidanceStillConverges) {
  // Guidance generated from a different root misclassifies propagation
  // levels; the verification sweep must still drive the run to the exact
  // fixpoint (Theorem 1 made unconditional).
  Graph g = TestGraph(35);
  RRGuidance guidance = RRGuidance::Generate(g, {g.num_vertices() / 2});
  auto run = RunSsspVariant(g, 2, 1, &guidance, RRVariant::kGatherAllAtStart);
  auto ref = ReferenceSssp(g, 0);
  for (size_t v = 0; v < ref.size(); ++v) {
    EXPECT_FLOAT_EQ(run.dist[v], ref[v]) << "v=" << v;
  }
}

TEST(MinMaxRunnerTest, EmptyGuidanceStillConverges) {
  // Degenerate guidance (no roots swept, lastIter == 0 everywhere) makes
  // every vertex unlocked from iteration 1 — equivalent to the baseline.
  Graph g = TestGraph(36);
  RRGuidance guidance = RRGuidance::Generate(g, {});
  auto run = RunSsspVariant(g, 2, 1, &guidance, RRVariant::kGatherAllAtStart);
  auto ref = ReferenceSssp(g, 0);
  for (size_t v = 0; v < ref.size(); ++v) {
    EXPECT_FLOAT_EQ(run.dist[v], ref[v]) << "v=" << v;
  }
}

// --------------------------------------------------------------- Arith/EC

struct PrRun {
  std::vector<float> contrib;
  typename ArithRunner<float>::RunResult result;
};

PrRun RunPrKernel(const Graph& g, int nodes, const RRGuidance* guidance,
                  uint32_t iters) {
  PrRun out;
  VertexId n = g.num_vertices();
  std::vector<float> ranks(n, 1.0f);
  out.contrib.resize(n);
  for (VertexId v = 0; v < n; ++v) {
    VertexId od = g.out_degree(v);
    out.contrib[v] = od > 0 ? 1.0f / static_cast<float>(od) : 1.0f;
  }
  DistGraph dg = DistGraph::Build(g, nodes);
  DistEngine<float> engine(dg, EngineOptions{});
  ArithRunner<float> runner(&engine, guidance);
  std::vector<float>* contrib = &out.contrib;
  auto gather = [contrib](float acc, VertexId src, Weight) {
    return acc + (*contrib)[src];
  };
  auto vertex_fn = [&g, &ranks](VertexId v, float acc) {
    float rank = 0.15f + 0.85f * acc;
    ranks[v] = rank;
    VertexId od = g.out_degree(v);
    return od > 0 ? rank / static_cast<float>(od) : rank;
  };
  sim::Cluster cluster(nodes, 1);
  cluster.Run([&](sim::NodeContext& ctx) {
    auto r = runner.Run(ctx, contrib, 0.0f, gather, vertex_fn, iters,
                        /*epsilon=*/0.0);
    if (ctx.rank == 0) out.result = r;
  });
  return out;
}

TEST(ArithRunnerTest, EcCountMonotonicallyNondecreasing) {
  Graph g = TestGraph(41);
  RRGuidance guidance = RRGuidance::Generate(g, SelectSourceRoots(g));
  PrRun run = RunPrKernel(g, 2, &guidance, 120);
  uint64_t prev = 0;
  for (uint64_t ec : run.result.ec_history) {
    EXPECT_GE(ec, prev);
    prev = ec;
  }
  EXPECT_EQ(run.result.ec_vertices, prev);
}

TEST(ArithRunnerTest, FrozenVerticesReduceLaterIterationWork) {
  Graph g = TestGraph(42);
  RRGuidance guidance = RRGuidance::Generate(g, SelectSourceRoots(g));
  PrRun run = RunPrKernel(g, 2, &guidance, 150);
  const auto& series = run.result.stats.per_iter_computations;
  ASSERT_GE(series.size(), 10u);
  // Once EC freezing has set in, late iterations must cost strictly less
  // than the first (full) iteration.
  EXPECT_LT(series.back(), series.front());
  EXPECT_GT(run.result.ec_vertices, 0u);
}

TEST(ArithRunnerTest, BaselineProcessesEveryVertexEveryIteration) {
  Graph g = TestGraph(43);
  PrRun run = RunPrKernel(g, 2, /*guidance=*/nullptr, 10);
  const auto& series = run.result.stats.per_iter_computations;
  ASSERT_EQ(series.size(), 10u);
  for (uint64_t c : series) EXPECT_EQ(c, series.front());
  EXPECT_EQ(run.result.ec_vertices, 0u);
}

TEST(ArithRunnerTest, EcValuesStayWithinToleranceOfExact) {
  Graph g = TestGraph(44);
  RRGuidance guidance = RRGuidance::Generate(g, SelectSourceRoots(g));
  PrRun rr = RunPrKernel(g, 2, &guidance, 150);
  PrRun base = RunPrKernel(g, 2, nullptr, 150);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(rr.contrib[v], base.contrib[v], 5e-3) << "v=" << v;
  }
}

TEST(ArithRunnerTest, UnvisitedVerticesNeverFreeze) {
  // Island vertices unreachable from the guidance roots must keep being
  // processed (conservative EffectiveLastIter = infinity).
  EdgeList e(8);
  e.Add(0, 1);
  e.Add(1, 2);
  e.Add(5, 6);  // island pair, unreachable from vertex 0's sweep
  e.Add(6, 5);
  Graph g = Graph::FromEdges(e);
  RRGuidance guidance = RRGuidance::Generate(g, {0});
  ASSERT_FALSE(guidance.visited(5));
  PrRun run = RunPrKernel(g, 1, &guidance, 30);
  // EC set may include visited vertices but never 5 or 6; the strongest
  // cheap check: ec count < |V| despite 30 stable iterations.
  EXPECT_LT(run.result.ec_vertices, g.num_vertices());
}

}  // namespace
}  // namespace slfe
