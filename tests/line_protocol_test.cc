// Tests for the transport-independent line protocol: the strict vertex-id
// grammar (fractional ids reject instead of silently truncating, oversized
// roots reject instead of wrapping through the VertexId cast), the
// always-terminated reject lines (EOF-without-newline input), and the
// served= tag precedence in result formatting — a protocol contract the
// TCP and stdin front ends both inherit.

#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "slfe/service/line_protocol.h"

namespace slfe::service {
namespace {

using Kind = ParsedCommand::Kind;

// ---------------------------------------------------------- ParseVertexId

TEST(ParseVertexIdTest, AcceptsPlainDecimals) {
  EXPECT_EQ(ParseVertexId("0").value(), 0u);
  EXPECT_EQ(ParseVertexId("7").value(), 7u);
  EXPECT_EQ(ParseVertexId("4294967295").value(),
            std::numeric_limits<VertexId>::max());
}

TEST(ParseVertexIdTest, RejectsFractionalIds) {
  // Regression: strtoul("1.5") silently truncates to 1 — a `del 1.5 2`
  // deleted edge (1,2) instead of rejecting. Pure digits only.
  EXPECT_FALSE(ParseVertexId("1.5").ok());
  EXPECT_FALSE(ParseVertexId(".5").ok());
  EXPECT_FALSE(ParseVertexId("1.").ok());
  EXPECT_FALSE(ParseVertexId("1e3").ok());
}

TEST(ParseVertexIdTest, RejectsSignsWhitespaceAndEmpty) {
  EXPECT_FALSE(ParseVertexId("").ok());
  EXPECT_FALSE(ParseVertexId("-1").ok());   // strtoul would wrap to 2^32-1
  EXPECT_FALSE(ParseVertexId("+1").ok());
  EXPECT_FALSE(ParseVertexId(" 1").ok());
  EXPECT_FALSE(ParseVertexId("0x10").ok());
}

TEST(ParseVertexIdTest, RejectsOutOfRangeInsteadOfWrapping) {
  // Regression: an unchecked strtoul result was cast to VertexId, so
  // 4294967296 wrapped to 0 and 4294967297 to 1 — bogus but in-range ids.
  EXPECT_FALSE(ParseVertexId("4294967296").ok());
  EXPECT_FALSE(ParseVertexId("4294967297").ok());
  // Past even unsigned long long: strtoull reports ERANGE.
  EXPECT_FALSE(ParseVertexId("99999999999999999999999").ok());
}

// -------------------------------------------------------- ParseCommandLine

TEST(ParseCommandLineTest, ParsesSubmitFields) {
  ParsedCommand cmd =
      ParseCommandLine("submit acme sssp PK 7 gas norr\n");
  ASSERT_EQ(cmd.kind, Kind::kSubmit);
  EXPECT_EQ(cmd.submit.tenant, "acme");
  EXPECT_EQ(cmd.submit.app, "sssp");
  EXPECT_EQ(cmd.submit.graph, "PK");
  EXPECT_EQ(cmd.submit.root, 7u);
  EXPECT_EQ(cmd.submit.engine, "gas");
  EXPECT_FALSE(cmd.submit.enable_rr);
}

TEST(ParseCommandLineTest, SubmitRootOutOfRangeRejects) {
  // 2^32 would wrap to root=0 via the narrowing cast; must reject.
  ParsedCommand cmd = ParseCommandLine("submit acme sssp PK 4294967296\n");
  ASSERT_EQ(cmd.kind, Kind::kError);
  EXPECT_NE(cmd.error.find("out of range"), std::string::npos);
  EXPECT_EQ(cmd.error.back(), '\n');

  // ERANGE-range value (overflows unsigned long long too).
  cmd = ParseCommandLine("submit acme sssp PK 99999999999999999999999\n");
  ASSERT_EQ(cmd.kind, Kind::kError);
  EXPECT_NE(cmd.error.find("out of range"), std::string::npos);
}

TEST(ParseCommandLineTest, SubmitMaxRootParses) {
  ParsedCommand cmd = ParseCommandLine("submit acme sssp PK 4294967295\n");
  ASSERT_EQ(cmd.kind, Kind::kSubmit);
  EXPECT_EQ(cmd.submit.root, std::numeric_limits<VertexId>::max());
}

TEST(ParseCommandLineTest, ParsesMutateInsAndDel) {
  ParsedCommand cmd =
      ParseCommandLine("mutate acme PK ins 1 2 0.5 del 3 4\n");
  ASSERT_EQ(cmd.kind, Kind::kMutate);
  EXPECT_EQ(cmd.mutate.tenant, "acme");
  EXPECT_EQ(cmd.mutate.graph, "PK");
  ASSERT_EQ(cmd.mutate.delta.insert.size(), 1u);
  EXPECT_EQ(cmd.mutate.delta.insert[0].src, 1u);
  EXPECT_EQ(cmd.mutate.delta.insert[0].dst, 2u);
  EXPECT_FLOAT_EQ(cmd.mutate.delta.insert[0].weight, 0.5f);
  ASSERT_EQ(cmd.mutate.delta.erase.size(), 1u);
  EXPECT_EQ(cmd.mutate.delta.erase[0].first, 3u);
  EXPECT_EQ(cmd.mutate.delta.erase[0].second, 4u);
}

TEST(ParseCommandLineTest, MutateFractionalIdRejectsNotTruncates) {
  // Regression: number() accepted '.' so `del 1.5 2` ran strtoul("1.5")
  // and deleted edge (1,2). The fractional id must produce a reject line.
  ParsedCommand cmd = ParseCommandLine("mutate acme PK del 1.5 2\n");
  ASSERT_EQ(cmd.kind, Kind::kError);
  EXPECT_NE(cmd.error.find("1.5"), std::string::npos);
  EXPECT_EQ(cmd.error.back(), '\n');

  cmd = ParseCommandLine("mutate acme PK ins 1 2.5 1.0\n");
  ASSERT_EQ(cmd.kind, Kind::kError);
  EXPECT_NE(cmd.error.find("2.5"), std::string::npos);
}

TEST(ParseCommandLineTest, MutateWeightStaysFractionalButStrict) {
  // Weights are the one place '.' belongs; partially-consumed or
  // overflowing tokens still reject.
  ParsedCommand ok = ParseCommandLine("mutate acme PK ins 1 2 1.25\n");
  ASSERT_EQ(ok.kind, Kind::kMutate);
  EXPECT_FLOAT_EQ(ok.mutate.delta.insert[0].weight, 1.25f);

  EXPECT_EQ(ParseCommandLine("mutate acme PK ins 1 2 1.5x\n").kind,
            Kind::kError);
  EXPECT_EQ(ParseCommandLine("mutate acme PK ins 1 2 1e9999\n").kind,
            Kind::kError);
}

TEST(ParseCommandLineTest, UnrecognizedLineRejectIsAlwaysTerminated) {
  // Regression: the reject echoed the raw line, so input that ended at
  // EOF without a newline produced an unterminated reject that glued onto
  // the next output line.
  ParsedCommand cmd = ParseCommandLine("frobnicate the server");  // no '\n'
  ASSERT_EQ(cmd.kind, Kind::kError);
  EXPECT_EQ(cmd.error, "reject: unrecognized line: frobnicate the server\n");

  // Input WITH a terminator must not pick up a second one (or echo '\r').
  cmd = ParseCommandLine("frobnicate the server\r\n");
  ASSERT_EQ(cmd.kind, Kind::kError);
  EXPECT_EQ(cmd.error, "reject: unrecognized line: frobnicate the server\n");
}

TEST(ParseCommandLineTest, CommentsAndBlanksAreEmpty) {
  EXPECT_EQ(ParseCommandLine("").kind, Kind::kEmpty);
  EXPECT_EQ(ParseCommandLine("   \n").kind, Kind::kEmpty);
  EXPECT_EQ(ParseCommandLine("# a comment\n").kind, Kind::kEmpty);
}

TEST(ParseCommandLineTest, AuthAndShutdownParse) {
  ParsedCommand cmd = ParseCommandLine("auth acme sekrit\n");
  ASSERT_EQ(cmd.kind, Kind::kAuth);
  EXPECT_EQ(cmd.auth_tenant, "acme");
  EXPECT_EQ(cmd.auth_token, "sekrit");

  cmd = ParseCommandLine("auth acme\n");
  ASSERT_EQ(cmd.kind, Kind::kAuth);
  EXPECT_EQ(cmd.auth_token, "");

  EXPECT_EQ(ParseCommandLine("shutdown\n").kind, Kind::kShutdown);
  EXPECT_EQ(ParseCommandLine("shutdown now\n").kind, Kind::kError);
}

TEST(ParseCommandLineTest, HotParsesOptionalCount) {
  ParsedCommand cmd = ParseCommandLine("hot\n");
  ASSERT_EQ(cmd.kind, Kind::kHot);
  EXPECT_EQ(cmd.hot_k, 10u);  // the documented default

  cmd = ParseCommandLine("hot 3\n");
  ASSERT_EQ(cmd.kind, Kind::kHot);
  EXPECT_EQ(cmd.hot_k, 3u);

  // Strictness matches the rest of the grammar: non-numeric, zero,
  // absurd, and extra-token forms all reject rather than guess.
  EXPECT_EQ(ParseCommandLine("hot three\n").kind, Kind::kError);
  EXPECT_EQ(ParseCommandLine("hot -1\n").kind, Kind::kError);
  EXPECT_EQ(ParseCommandLine("hot 0\n").kind, Kind::kError);
  EXPECT_EQ(ParseCommandLine("hot 99999\n").kind, Kind::kError);
  EXPECT_EQ(ParseCommandLine("hot 3 4\n").kind, Kind::kError);
}

// ------------------------------------------------------------ FormatResult

JobResult BaseResult() {
  JobResult r;
  r.job_id = 9;
  r.tenant = "acme";
  r.app = "sssp";
  r.engine = "dist";
  r.graph = "PK";
  return r;
}

std::string ServedTag(const JobResult& r) {
  std::string line = FormatResult(r);
  size_t pos = line.find("served=");
  EXPECT_NE(pos, std::string::npos) << line;
  size_t end = line.find(' ', pos);
  return line.substr(pos + 7, end - pos - 7);
}

TEST(FormatResultTest, ServedTagPrecedenceIsPinned) {
  // Protocol contract: cache > coalesced > repaired > generate, "none"
  // when no guidance was acquired. One case per tag.
  JobResult r = BaseResult();
  EXPECT_EQ(ServedTag(r), "none");  // not acquired

  r.guidance_acquired = true;
  EXPECT_EQ(ServedTag(r), "generate");  // acquired, no cheaper path

  r.guidance_repaired = true;
  EXPECT_EQ(ServedTag(r), "repaired");

  r.guidance_coalesced = true;  // coalesced outranks repaired
  EXPECT_EQ(ServedTag(r), "coalesced");

  r.guidance_cache_hit = true;  // cache outranks everything
  EXPECT_EQ(ServedTag(r), "cache");
}

TEST(FormatResultTest, ReqTagAppendsWithoutBreakingTermination) {
  JobResult r = BaseResult();
  std::string plain = FormatResult(r);
  EXPECT_EQ(plain.back(), '\n');
  std::string tagged = FormatResult(r, 42);
  EXPECT_EQ(tagged.back(), '\n');
  EXPECT_NE(tagged.find(" req=42\n"), std::string::npos);
  // The req tag is appended, not spliced: everything before it matches.
  EXPECT_EQ(tagged.substr(0, plain.size() - 1), plain.substr(0, plain.size() - 1));
}

TEST(FormatResultTest, FailedStatusIsReported) {
  JobResult r = BaseResult();
  r.status = Status::NotFound("graph 'nope' not registered");
  std::string line = FormatResult(r);
  EXPECT_NE(line.find("status="), std::string::npos);
  EXPECT_NE(line.find("nope"), std::string::npos);
  EXPECT_EQ(line.find("status=ok"), std::string::npos);
}

TEST(FormatStatsTest, SketchLineAndTailRowRenderOnlyWhenPresent) {
  JobServiceStats stats;
  stats.sketch_observations = 17;
  stats.tenants_tracked = 2;
  std::string block = FormatStats(stats);
  EXPECT_NE(block.find("sketch: observations=17 decays=0 tenants_tracked=2 "
                       "tenants_sketched=0\n"),
            std::string::npos)
      << block;
  EXPECT_NE(block.find("admission_skips=0 admission_promotions=0"),
            std::string::npos);
  // No spilled tenants: no tail row cluttering the table.
  EXPECT_EQ(block.find("(sketched"), std::string::npos);

  stats.tenants_sketched = 3;
  stats.sketched_tail.jobs_submitted = 9;
  stats.sketched_tail.jobs_completed = 8;
  block = FormatStats(stats);
  EXPECT_NE(block.find("tenant (sketched 3): jobs=8/9"), std::string::npos)
      << block;
}

}  // namespace
}  // namespace slfe::service
