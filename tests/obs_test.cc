// Tests for the observability layer: log-bucketed histograms (bucket
// boundary exactness, quantile reconstruction against exact samples,
// concurrent recording), the flight-recorder rings, and the Prometheus /
// JSON renderer formats the scrape tooling depends on.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "slfe/obs/flight_recorder.h"
#include "slfe/obs/metrics.h"
#include "slfe/obs/trace.h"

namespace slfe::obs {
namespace {

TEST(Histogram, BucketBoundariesAreExact) {
  Histogram h(1e-6);
  // le-semantics: a value exactly on Bound(i) belongs to bucket i; the
  // next representable double above it belongs to bucket i+1. The binary
  // search over the precomputed bounds table makes this exact — a
  // float-log implementation would be off by one near boundaries.
  for (size_t i = 0; i < Histogram::kFiniteBounds; ++i) {
    double bound = h.Bound(i);
    EXPECT_EQ(h.BucketIndex(bound), i) << "bound " << bound;
    double above = std::nextafter(bound, 1e300);
    EXPECT_EQ(h.BucketIndex(above), i + 1) << "just above bound " << bound;
  }
  EXPECT_EQ(h.BucketIndex(0.0), 0u);
  EXPECT_EQ(h.BucketIndex(1e300), Histogram::kNumBuckets - 1);

  h.Observe(h.Bound(10));
  EXPECT_EQ(h.BucketCount(10), 1u);
  EXPECT_EQ(h.BucketCount(11), 0u);
  h.Observe(std::nextafter(h.Bound(10), 1e300));
  EXPECT_EQ(h.BucketCount(11), 1u);
}

TEST(Histogram, BoundsGrowBySqrt2) {
  Histogram h(1e-3);
  EXPECT_DOUBLE_EQ(h.Bound(0), 1e-3);
  for (size_t i = 1; i < Histogram::kFiniteBounds; ++i) {
    EXPECT_NEAR(h.Bound(i) / h.Bound(i - 1), std::sqrt(2.0), 1e-12);
  }
}

TEST(Histogram, QuantilesMatchExactSamplesWithinBucketFactor) {
  // A bucketed quantile can never be exact, but it is guaranteed to land
  // in the same bucket as the true rank sample — so the two agree within
  // one bucket's width, a factor of sqrt(2).
  std::mt19937 rng(20180807);
  std::uniform_real_distribution<double> log_u(std::log(1e-5), std::log(10.0));
  Histogram h(1e-6);
  std::vector<double> samples;
  for (int i = 0; i < 5000; ++i) {
    double v = std::exp(log_u(rng));
    samples.push_back(v);
    h.Observe(v);
  }
  std::sort(samples.begin(), samples.end());
  const double slack = std::sqrt(2.0) * (1.0 + 1e-9);
  for (double q : {0.50, 0.90, 0.99}) {
    auto rank = static_cast<size_t>(
        std::ceil(q * static_cast<double>(samples.size())));
    double exact = samples[rank - 1];
    double approx = h.Quantile(q);
    EXPECT_LE(approx, exact * slack) << "q=" << q;
    EXPECT_GE(approx, exact / slack) << "q=" << q;
  }
  EXPECT_LE(h.Quantile(0.50), h.Quantile(0.99));
}

TEST(Histogram, ConcurrentRecordingLosesNothing) {
  Histogram h(1e-6);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) {
        // Integer-valued observations so the CAS-loop sum is exact.
        h.Observe(static_cast<double>(i % 7 + 1));
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(h.Count(), static_cast<uint64_t>(kThreads) * kPerThread);
  double expected_sum = 0;
  for (int i = 0; i < kPerThread; ++i) expected_sum += i % 7 + 1;
  EXPECT_DOUBLE_EQ(h.Sum(), expected_sum * kThreads);
  uint64_t bucket_total = 0;
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    bucket_total += h.BucketCount(i);
  }
  EXPECT_EQ(bucket_total, h.Count());
}

TEST(Histogram, NegativeClampsAndNanIsDropped) {
  Histogram h;
  h.Observe(-5.0);  // clamps to 0 -> bucket 0
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_EQ(h.BucketCount(0), 1u);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.0);
  h.Observe(std::nan(""));
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0 + (h.Bound(0) - 0.0) * 1.0);
}

TEST(Histogram, EmptyQuantileIsZero) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 0.0);
}

TEST(MetricsRegistry, ReturnsStablePointers) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("jobs_total", "jobs");
  Counter* b = reg.GetCounter("jobs_total", "jobs");
  EXPECT_EQ(a, b);
  Counter* labeled =
      reg.GetCounter("jobs_total", "jobs", {{"tenant", "acme"}});
  EXPECT_NE(a, labeled);
  EXPECT_EQ(labeled,
            reg.GetCounter("jobs_total", "jobs", {{"tenant", "acme"}}));
  Histogram* h = reg.GetHistogram("latency_seconds", "lat");
  EXPECT_EQ(h, reg.GetHistogram("latency_seconds", "lat"));
}

TEST(MetricsRegistry, PrometheusTextFormatIsPinned) {
  MetricsRegistry reg;
  reg.GetCounter("slfe_jobs_total", "Completed jobs.")->Inc(5);
  reg.GetCounter("slfe_tenant_jobs_total", "Per-tenant jobs.",
                 {{"tenant", "acme"}})
      ->Inc(2);
  reg.GetGauge("slfe_queue_depth", "Queue depth.")->Set(3);
  Histogram* h = reg.GetHistogram("slfe_latency_seconds", "Job latency.");
  h->Observe(0.5);
  h->Observe(2.0);

  std::string text = reg.RenderPrometheusText();
  EXPECT_NE(text.find("# HELP slfe_jobs_total Completed jobs.\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE slfe_jobs_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("slfe_jobs_total 5\n"), std::string::npos);
  EXPECT_NE(text.find("slfe_tenant_jobs_total{tenant=\"acme\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE slfe_queue_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("slfe_queue_depth 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE slfe_latency_seconds histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("slfe_latency_seconds_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("slfe_latency_seconds_sum 2.5\n"), std::string::npos);
  EXPECT_NE(text.find("slfe_latency_seconds_count 2\n"), std::string::npos);
  // The scrape end marker TCP clients read until.
  ASSERT_GE(text.size(), 6u);
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");

  // Cumulative bucket counts: every le line's count is monotone and the
  // largest finite bound's cumulative count equals the total.
  uint64_t last = 0;
  size_t pos = 0;
  while ((pos = text.find("slfe_latency_seconds_bucket{le=\"", pos)) !=
         std::string::npos) {
    size_t value_at = text.find("} ", pos);
    ASSERT_NE(value_at, std::string::npos);
    uint64_t cum = std::strtoull(text.c_str() + value_at + 2, nullptr, 10);
    EXPECT_GE(cum, last);
    last = cum;
    ++pos;
  }
  EXPECT_EQ(last, 2u);
}

TEST(MetricsRegistry, JsonFormatIsPinned) {
  MetricsRegistry reg;
  reg.GetCounter("slfe_jobs_total", "jobs")->Inc(7);
  Histogram* h = reg.GetHistogram("slfe_latency_seconds", "lat");
  for (int i = 0; i < 100; ++i) h->Observe(0.01);

  std::string json = reg.RenderJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_EQ(json.find('\n'), std::string::npos) << "must stay single-line";
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("\"slfe_jobs_total\":7"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\":{"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":{"), std::string::npos);
  EXPECT_NE(json.find("\"slfe_latency_seconds\":{\"count\":100,"),
            std::string::npos);
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"p90\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
}

std::shared_ptr<JobTrace> MakeTrace(uint64_t id, bool ok = true) {
  auto trace = std::make_shared<JobTrace>();
  trace->job_id = id;
  trace->tenant = "t1";
  trace->app = "sssp";
  trace->graph = "PK";
  trace->AddSpan("queue_wait", 0.0, 0.001);
  trace->MarkCompleted(ok);
  return trace;
}

TEST(FlightRecorder, RingWrapsOldestOut) {
  FlightRecorder recorder(/*capacity=*/4, /*slow_capacity=*/2);
  for (uint64_t id = 1; id <= 10; ++id) {
    recorder.Record(MakeTrace(id), /*slow=*/false);
  }
  std::vector<std::shared_ptr<JobTrace>> recent = recorder.Recent();
  ASSERT_EQ(recent.size(), 4u);
  // Oldest-to-newest: 7, 8, 9, 10.
  for (size_t i = 0; i < recent.size(); ++i) {
    EXPECT_EQ(recent[i]->job_id, 7 + i);
  }
  EXPECT_EQ(recorder.recorded(), 10u);
  EXPECT_EQ(recorder.Find(10)->job_id, 10u);
  EXPECT_EQ(recorder.Find(3), nullptr);  // evicted
}

TEST(FlightRecorder, SlowRingPinsAgainstFastBursts) {
  FlightRecorder recorder(/*capacity=*/4, /*slow_capacity=*/2);
  recorder.Record(MakeTrace(1), /*slow=*/true);
  // A burst of fast jobs large enough to evict id=1 from the recent ring.
  for (uint64_t id = 2; id <= 20; ++id) {
    recorder.Record(MakeTrace(id), /*slow=*/false);
  }
  ASSERT_EQ(recorder.Slow().size(), 1u);
  EXPECT_EQ(recorder.Slow()[0]->job_id, 1u);
  // Still findable through the slow ring.
  ASSERT_NE(recorder.Find(1), nullptr);
  EXPECT_EQ(recorder.slow_recorded(), 1u);
}

TEST(JobTrace, SpansAndJson) {
  JobTrace trace;
  trace.job_id = 42;
  trace.tenant = "acme";
  trace.app = "sssp";
  trace.engine = "dist";
  trace.graph = "PK";
  trace.AddSpan("queue_wait", 0.0, 0.010);
  trace.AddSpan("guidance_acquire.cache", 0.010, 0.002);
  trace.AddSpan("engine_execute", 0.012, 0.100);
  EXPECT_NEAR(trace.SpanSecondsWithPrefix("guidance_acquire"), 0.002, 1e-12);
  EXPECT_FALSE(trace.completed());
  trace.MarkCompleted(true);
  EXPECT_TRUE(trace.completed());
  EXPECT_TRUE(trace.ok());
  EXPECT_GE(trace.completed_at(), 0.0);

  std::string json = trace.ToJson();
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_NE(json.find("\"job\":42"), std::string::npos);
  EXPECT_NE(json.find("\"tenant\":\"acme\""), std::string::npos);
  EXPECT_NE(json.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(json.find("\"spans\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"queue_wait\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"engine_execute\""), std::string::npos);

  std::string summary = trace.SpanSummary();
  EXPECT_NE(summary.find("queue_wait="), std::string::npos);
  EXPECT_NE(summary.find("guidance_acquire.cache="), std::string::npos);
}

}  // namespace
}  // namespace slfe::obs
