// Equivalence and behavior tests for the comparator systems: the
// PowerGraph/PowerLyra-style GAS engine, the Ligra-style shared-memory
// engine, and the GraphChi-style out-of-core engine. All must reach the
// same fixpoints as the sequential references; their cost profiles must
// differ in the ways the paper's comparisons rely on.

#include <gtest/gtest.h>

#include <cstdio>

#include "slfe/apps/reference.h"
#include "slfe/engine/dist_graph.h"
#include "slfe/gas/gas_apps.h"
#include "slfe/graph/generators.h"
#include "slfe/ooc/ooc_engine.h"
#include "slfe/shm/shm_engine.h"

namespace slfe {
namespace {

Graph WeightedRmat(VertexId n, EdgeId m, uint64_t seed) {
  RmatOptions opt;
  opt.num_vertices = n;
  opt.num_edges = m;
  opt.weighted = true;
  opt.seed = seed;
  EdgeList e = GenerateRmat(opt);
  e.Deduplicate();
  return Graph::FromEdges(e);
}

Graph SymmetricRmat(VertexId n, EdgeId m, uint64_t seed) {
  RmatOptions opt;
  opt.num_vertices = n;
  opt.num_edges = m;
  opt.seed = seed;
  EdgeList e = GenerateRmat(opt);
  e.Symmetrize();
  e.Deduplicate();
  return Graph::FromEdges(e);
}

// ------------------------------------------------------------------- GAS

class GasPlacementTest : public ::testing::TestWithParam<gas::Placement> {};

TEST_P(GasPlacementTest, SsspMatchesDijkstra) {
  Graph g = WeightedRmat(512, 4000, 7);
  gas::GasOptions opt;
  opt.num_nodes = 8;
  opt.placement = GetParam();
  auto result = gas::RunGasSssp(g, 0, opt);
  auto ref = ReferenceSssp(g, 0);
  for (size_t v = 0; v < ref.size(); ++v) {
    EXPECT_FLOAT_EQ(result.dist[v], ref[v]) << "v=" << v;
  }
}

TEST_P(GasPlacementTest, CcMatchesReference) {
  Graph g = SymmetricRmat(256, 1500, 11);
  gas::GasOptions opt;
  opt.num_nodes = 4;
  opt.placement = GetParam();
  auto result = gas::RunGasCc(g, opt);
  auto ref = ReferenceCc(g);
  for (size_t v = 0; v < ref.size(); ++v) {
    EXPECT_EQ(result.labels[v], ref[v]) << "v=" << v;
  }
}

TEST_P(GasPlacementTest, WpMatchesReference) {
  Graph g = WeightedRmat(512, 4000, 7);
  gas::GasOptions opt;
  opt.num_nodes = 8;
  opt.placement = GetParam();
  auto result = gas::RunGasWp(g, 0, opt);
  auto ref = ReferenceWp(g, 0);
  for (size_t v = 0; v < ref.size(); ++v) {
    EXPECT_FLOAT_EQ(result.width[v], ref[v]) << "v=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Placements, GasPlacementTest,
                         ::testing::Values(gas::Placement::kRandomVertexCut,
                                           gas::Placement::kHybridCut));

TEST(GasGuidedTest, GuidedCcMatchesBaselineAndSkipsWork) {
  Graph g = SymmetricRmat(256, 1500, 11);
  gas::GasOptions opt;
  opt.num_nodes = 4;
  auto baseline = gas::RunGasCc(g, opt);
  GuidanceProvider provider;
  auto guided = gas::RunGasCcGuided(g, opt, &provider);
  EXPECT_EQ(guided.labels, baseline.labels);
  EXPECT_GT(guided.stats.skipped, 0u);  // "start late" deferred gathers
  EXPECT_EQ(provider.cache_stats().misses, 1u);
  // A repeat run shares the provider's cached guidance (§4.4 amortization
  // now spans the GAS comparator too).
  auto repeat = gas::RunGasCcGuided(g, opt, &provider);
  EXPECT_EQ(repeat.labels, baseline.labels);
  EXPECT_EQ(provider.cache_stats().hits, 1u);
}

TEST(GasGuidedTest, GuidedSsspMatchesBaseline) {
  Graph g = WeightedRmat(512, 4000, 7);
  gas::GasOptions opt;
  opt.num_nodes = 8;
  auto baseline = gas::RunGasSssp(g, 0, opt);
  GuidanceProvider provider;
  auto guided = gas::RunGasSsspGuided(g, 0, opt, &provider);
  ASSERT_EQ(guided.dist.size(), baseline.dist.size());
  for (size_t v = 0; v < baseline.dist.size(); ++v) {
    EXPECT_EQ(guided.dist[v], baseline.dist[v]) << "v=" << v;
  }
  EXPECT_GT(guided.stats.skipped, 0u);
}

TEST(GasEngineTest, PrMatchesReference) {
  Graph g = WeightedRmat(512, 4000, 7);
  gas::GasOptions opt;
  opt.num_nodes = 8;
  auto result = gas::RunGasPr(g, 20, opt);
  auto ref = ReferencePr(g, 20);
  for (size_t v = 0; v < ref.size(); ++v) {
    EXPECT_NEAR(result.ranks[v], ref[v], 1e-4) << "v=" << v;
  }
}

TEST(GasEngineTest, TrMatchesReference) {
  Graph g = WeightedRmat(512, 4000, 7);
  gas::GasOptions opt;
  opt.num_nodes = 8;
  auto result = gas::RunGasTr(g, 15, opt);
  auto ref = ReferenceTr(g, 15);
  for (size_t v = 0; v < ref.size(); ++v) {
    EXPECT_NEAR(result.influence[v], ref[v], 1e-3) << "v=" << v;
  }
}

TEST(GasEngineTest, HybridCutReducesReplication) {
  // PowerLyra's core claim: hybrid placement lowers the replication factor
  // on skewed graphs, hence less communication than PowerGraph.
  Graph g = WeightedRmat(2048, 30000, 21);
  gas::GasOptions pg;
  pg.num_nodes = 8;
  pg.placement = gas::Placement::kRandomVertexCut;
  gas::GasOptions pl = pg;
  pl.placement = gas::Placement::kHybridCut;
  gas::GasEngine<float> eng_pg(g, pg);
  gas::GasEngine<float> eng_pl(g, pl);
  uint64_t rep_pg = 0, rep_pl = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    rep_pg += eng_pg.replication(v);
    rep_pl += eng_pl.replication(v);
  }
  EXPECT_LT(rep_pl, rep_pg);
}

TEST(GasEngineTest, HybridCutLowersCommBytes) {
  Graph g = WeightedRmat(2048, 30000, 21);
  gas::GasOptions pg;
  pg.num_nodes = 8;
  pg.placement = gas::Placement::kRandomVertexCut;
  gas::GasOptions pl = pg;
  pl.placement = gas::Placement::kHybridCut;
  auto r_pg = gas::RunGasPr(g, 5, pg);
  auto r_pl = gas::RunGasPr(g, 5, pl);
  EXPECT_LT(r_pl.stats.bytes, r_pg.stats.bytes);
}

TEST(GasEngineTest, IterationCapStopsRun) {
  Graph g = WeightedRmat(256, 2000, 5);
  gas::GasOptions opt;
  opt.num_nodes = 2;
  auto result = gas::RunGasPr(g, 3, opt);
  EXPECT_EQ(result.stats.supersteps, 3u);
}

// ------------------------------------------------------------------- SHM

class ShmThreadsTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ShmThreadsTest, SsspMatchesDijkstra) {
  Graph g = WeightedRmat(512, 4000, 7);
  std::vector<float> dist;
  shm::ShmSssp(g, 0, GetParam(), &dist);
  auto ref = ReferenceSssp(g, 0);
  for (size_t v = 0; v < ref.size(); ++v) {
    EXPECT_FLOAT_EQ(dist[v], ref[v]) << "v=" << v;
  }
}

TEST_P(ShmThreadsTest, CcMatchesReference) {
  Graph g = SymmetricRmat(256, 1500, 11);
  std::vector<uint32_t> labels;
  shm::ShmCc(g, GetParam(), &labels);
  auto ref = ReferenceCc(g);
  for (size_t v = 0; v < ref.size(); ++v) {
    EXPECT_EQ(labels[v], ref[v]) << "v=" << v;
  }
}

TEST_P(ShmThreadsTest, PrMatchesReference) {
  Graph g = WeightedRmat(512, 4000, 7);
  std::vector<float> ranks;
  shm::ShmPr(g, 20, GetParam(), &ranks);
  auto ref = ReferencePr(g, 20);
  for (size_t v = 0; v < ref.size(); ++v) {
    EXPECT_NEAR(ranks[v], ref[v], 1e-3) << "v=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ShmThreadsTest,
                         ::testing::Values(1, 2, 4));

TEST(ShmEngineTest, RangesMatchDistGraphBuildRanges) {
  // Preprocessing/execution pinning (ROADMAP "extend the partition-aware
  // path end-to-end"): the engine's per-worker slices must be the exact
  // ranges DistGraph::BuildRanges cuts — the same ones the partitioned
  // guidance generator sweeps — so a vertex is always handled by the
  // worker that owns its range in both phases.
  Graph g = WeightedRmat(300, 2400, 11);
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
    shm::ShmEngine engine(g, threads);
    std::vector<VertexRange> want =
        DistGraph::BuildRanges(g, static_cast<int>(threads));
    ASSERT_EQ(engine.ranges().size(), want.size()) << threads;
    ASSERT_EQ(want.size(), threads);
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(engine.ranges()[i].begin, want[i].begin);
      EXPECT_EQ(engine.ranges()[i].end, want[i].end);
    }
    // The ranges tile [0, |V|) exactly.
    EXPECT_EQ(engine.ranges().front().begin, 0u);
    EXPECT_EQ(engine.ranges().back().end, g.num_vertices());
  }
}

TEST(ShmEngineTest, DirectionOptimizationUsesBothModes) {
  // BFS-like frontier growth on a grid should start sparse (push) and the
  // stats must show edge evaluations bounded by |E| per superstep.
  Graph g = Graph::FromEdges(GenerateGrid(20, 20, true));
  std::vector<float> dist;
  shm::ShmStats stats = shm::ShmSssp(g, 0, 2, &dist);
  EXPECT_GT(stats.supersteps, 10u);  // grid diameter forces many steps
  EXPECT_GT(stats.computations, 0u);
}

// ------------------------------------------------------------------- OOC

TEST(OocEngineTest, BuildCreatesShardsAndStreamsAllEdges) {
  Graph g = WeightedRmat(256, 2000, 9);
  std::string dir = ::testing::TempDir() + "slfe_ooc_t1";
  auto engine = ooc::OocEngine::Build(g, dir, 4);
  ASSERT_TRUE(engine.ok());
  uint64_t edges_seen = 0;
  ooc::OocStats stats;
  ASSERT_TRUE(engine.value()
                  .RunIteration([&](VertexId, VertexId, Weight) { ++edges_seen; },
                                &stats)
                  .ok());
  EXPECT_EQ(edges_seen, g.num_edges());
  EXPECT_EQ(stats.computations, g.num_edges());
  EXPECT_EQ(stats.bytes_read, g.num_edges() * 12u);  // 12-byte records
  EXPECT_GT(stats.io_seconds, 0.0);
  engine.value().RemoveFiles();
}

TEST(OocEngineTest, ShardsPartitionByDestinationInterval) {
  Graph g = WeightedRmat(256, 2000, 9);
  std::string dir = ::testing::TempDir() + "slfe_ooc_t2";
  auto engine = ooc::OocEngine::Build(g, dir, 4).value();
  VertexId span = (g.num_vertices() + 3) / 4;
  VertexId prev_interval = 0;
  bool ordered = true;
  engine.RunIteration(
      [&](VertexId, VertexId dst, Weight) {
        VertexId interval = dst / span;
        if (interval < prev_interval) ordered = false;
        prev_interval = interval;
      },
      nullptr);
  EXPECT_TRUE(ordered);
  engine.RemoveFiles();
}

TEST(OocEngineTest, PrMatchesReference) {
  Graph g = WeightedRmat(512, 4000, 7);
  std::string dir = ::testing::TempDir() + "slfe_ooc_t3";
  auto engine = ooc::OocEngine::Build(g, dir, 3).value();
  std::vector<float> ranks;
  ooc::OocPr(engine, g, 20, &ranks);
  auto ref = ReferencePr(g, 20);
  for (size_t v = 0; v < ref.size(); ++v) {
    EXPECT_NEAR(ranks[v], ref[v], 1e-4) << "v=" << v;
  }
  engine.RemoveFiles();
}

TEST(OocEngineTest, CcMatchesReference) {
  Graph g = SymmetricRmat(256, 1500, 11);
  std::string dir = ::testing::TempDir() + "slfe_ooc_t4";
  auto engine = ooc::OocEngine::Build(g, dir, 4).value();
  std::vector<uint32_t> labels;
  ooc::OocCc(engine, &labels);
  auto ref = ReferenceCc(g);
  for (size_t v = 0; v < ref.size(); ++v) {
    EXPECT_EQ(labels[v], ref[v]) << "v=" << v;
  }
  engine.RemoveFiles();
}

TEST(OocEngineTest, GuidedCcMatchesBaselineAndSkipsWork) {
  Graph g = SymmetricRmat(256, 1500, 11);
  std::string dir = ::testing::TempDir() + "slfe_ooc_t4g";
  auto engine = ooc::OocEngine::Build(g, dir, 4).value();
  std::vector<uint32_t> baseline, guided;
  ooc::OocCc(engine, &baseline);
  GuidanceProvider provider;
  ooc::OocStats stats = ooc::OocCcGuided(engine, g, &guided, &provider);
  EXPECT_EQ(guided, baseline);
  EXPECT_GT(stats.skipped, 0u);  // "start late" bypassed some updates
  EXPECT_EQ(provider.cache_stats().misses, 1u);
  // A second guided run retrieves the guidance from the provider's cache.
  ooc::OocCcGuided(engine, g, &guided, &provider);
  EXPECT_EQ(guided, baseline);
  EXPECT_EQ(provider.cache_stats().hits, 1u);
  engine.RemoveFiles();
}

TEST(OocEngineTest, GuidedPrMatchesBaselineAndSkipsWork) {
  // A deep chain makes early convergence deterministic: vertex v's rank is
  // exact (and float-stable) once the sweep count passes its depth, so low
  // vertices freeze long before the run ends while high ones keep going.
  Graph g = Graph::FromEdges(GenerateChain(40));
  std::string dir = ::testing::TempDir() + "slfe_ooc_prg";
  auto engine = ooc::OocEngine::Build(g, dir, 3).value();
  constexpr uint32_t kIters = 60;
  std::vector<float> baseline, guided;
  ooc::OocPr(engine, g, kIters, &baseline);

  GuidanceProvider provider;
  ooc::OocStats stats =
      ooc::OocPrGuided(engine, g, kIters, &guided, &provider);
  ASSERT_EQ(guided.size(), baseline.size());
  for (size_t v = 0; v < baseline.size(); ++v) {
    EXPECT_NEAR(guided[v], baseline[v], 1e-6f) << "v=" << v;
  }
  EXPECT_GT(stats.skipped, 0u);  // early-converged vertices bypassed edges
  EXPECT_EQ(provider.cache_stats().misses, 1u);
  // A second guided run retrieves the guidance from the provider's cache.
  ooc::OocPrGuided(engine, g, kIters, &guided, &provider);
  EXPECT_EQ(provider.cache_stats().hits, 1u);
  engine.RemoveFiles();
}

TEST(OocEngineTest, GuidedPrMatchesBaselineOnRmat) {
  Graph g = WeightedRmat(512, 4000, 7);
  std::string dir = ::testing::TempDir() + "slfe_ooc_prg2";
  auto engine = ooc::OocEngine::Build(g, dir, 3).value();
  std::vector<float> baseline, guided;
  ooc::OocPr(engine, g, 20, &baseline);
  GuidanceProvider provider;
  ooc::OocPrGuided(engine, g, 20, &guided, &provider);
  for (size_t v = 0; v < baseline.size(); ++v) {
    EXPECT_NEAR(guided[v], baseline[v], 1e-5f) << "v=" << v;
  }
  engine.RemoveFiles();
}

TEST(OocEngineTest, ZeroShardsRejected) {
  Graph g = WeightedRmat(64, 300, 2);
  auto engine = ooc::OocEngine::Build(g, ::testing::TempDir() + "x", 0);
  EXPECT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kInvalidArgument);
}

TEST(OocEngineTest, MissingShardIsIOError) {
  Graph g = WeightedRmat(64, 300, 2);
  std::string dir = ::testing::TempDir() + "slfe_ooc_t5";
  auto engine = ooc::OocEngine::Build(g, dir, 2).value();
  engine.RemoveFiles();
  EXPECT_EQ(
      engine.RunIteration([](VertexId, VertexId, Weight) {}, nullptr).code(),
      StatusCode::kIOError);
}

}  // namespace
}  // namespace slfe
