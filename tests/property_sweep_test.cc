// Randomized property sweeps: for a spread of generator seeds (each a
// distinct topology) and graph families, the SLFE engine with RR must
// agree exactly with the sequential references, and core structural
// invariants must hold. These parameterized suites are the repository's
// broad-coverage safety net.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "slfe/apps/belief_propagation.h"
#include "slfe/apps/bfs.h"
#include "slfe/apps/cc.h"
#include "slfe/apps/heat_simulation.h"
#include "slfe/apps/numpaths.h"
#include "slfe/apps/pr.h"
#include "slfe/apps/reference.h"
#include "slfe/apps/spmv.h"
#include "slfe/apps/sssp.h"
#include "slfe/apps/tr.h"
#include "slfe/apps/wp.h"
#include "slfe/core/guidance_provider.h"
#include "slfe/core/rr_guidance.h"
#include "slfe/graph/degree_stats.h"
#include "slfe/graph/generators.h"
#include "slfe/graph/partitioner.h"

namespace slfe {
namespace {

enum class Family { kRmat, kErdosRenyi, kGrid };

struct SweepParam {
  Family family;
  uint64_t seed;
};

std::string ParamName(const ::testing::TestParamInfo<SweepParam>& info) {
  const char* family = info.param.family == Family::kRmat ? "Rmat"
                       : info.param.family == Family::kErdosRenyi
                           ? "ER"
                           : "Grid";
  return std::string(family) + "_seed" + std::to_string(info.param.seed);
}

Graph MakeGraph(const SweepParam& p, bool symmetric) {
  EdgeList edges;
  switch (p.family) {
    case Family::kRmat: {
      RmatOptions opt;
      opt.num_vertices = 384;
      opt.num_edges = 2600;
      opt.weighted = true;
      opt.max_weight = 128.0f;
      opt.seed = p.seed;
      edges = GenerateRmat(opt);
      break;
    }
    case Family::kErdosRenyi:
      edges = GenerateErdosRenyi(384, 2600, p.seed, /*weighted=*/true,
                                 /*max_weight=*/128.0f);
      break;
    case Family::kGrid:
      edges = GenerateGrid(16, 20, /*weighted=*/true, p.seed,
                           /*max_weight=*/64.0f);
      break;
  }
  if (symmetric) edges.Symmetrize();
  edges.Deduplicate();
  return Graph::FromEdges(edges);
}

class RandomTopologyTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(RandomTopologyTest, SsspWithRrMatchesDijkstra) {
  Graph g = MakeGraph(GetParam(), /*symmetric=*/false);
  AppConfig cfg;
  cfg.num_nodes = 3;
  cfg.enable_rr = true;
  SsspResult r = RunSssp(g, cfg);
  auto ref = ReferenceSssp(g, 0);
  for (size_t v = 0; v < ref.size(); ++v) {
    ASSERT_FLOAT_EQ(r.dist[v], ref[v]) << "v=" << v;
  }
}

TEST_P(RandomTopologyTest, WpWithRrMatchesReference) {
  Graph g = MakeGraph(GetParam(), /*symmetric=*/false);
  AppConfig cfg;
  cfg.num_nodes = 2;
  cfg.enable_rr = true;
  WpResult r = RunWp(g, cfg);
  auto ref = ReferenceWp(g, 0);
  for (size_t v = 0; v < ref.size(); ++v) {
    ASSERT_FLOAT_EQ(r.width[v], ref[v]) << "v=" << v;
  }
}

TEST_P(RandomTopologyTest, CcWithRrMatchesReference) {
  Graph g = MakeGraph(GetParam(), /*symmetric=*/true);
  AppConfig cfg;
  cfg.num_nodes = 4;
  cfg.enable_rr = true;
  CcResult r = RunCc(g, cfg);
  auto ref = ReferenceCc(g);
  for (size_t v = 0; v < ref.size(); ++v) {
    ASSERT_EQ(r.labels[v], ref[v]) << "v=" << v;
  }
}

TEST_P(RandomTopologyTest, CcLabelsAreComponentMinima) {
  // Structural invariant independent of the reference: every label is the
  // minimum vertex id of its label class, and neighbors share labels.
  Graph g = MakeGraph(GetParam(), /*symmetric=*/true);
  AppConfig cfg;
  cfg.enable_rr = true;
  CcResult r = RunCc(g, cfg);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_LE(r.labels[v], v);
    EXPECT_EQ(r.labels[r.labels[v]], r.labels[v]);
    g.out().ForEachNeighbor(v, [&](VertexId u, Weight) {
      EXPECT_EQ(r.labels[v], r.labels[u]);
    });
  }
}

TEST_P(RandomTopologyTest, GuidanceLastIterBoundsBfsLevel) {
  // lastIter(v) >= BFS level of v for reachable non-root vertices: a
  // vertex cannot receive its last update before it is first reached.
  Graph g = MakeGraph(GetParam(), /*symmetric=*/false);
  RRGuidance rrg = RRGuidance::Generate(g, {0});
  auto level = ReferenceBfs(g, 0);
  for (VertexId v = 1; v < g.num_vertices(); ++v) {
    if (level[v] == UINT32_MAX) continue;
    EXPECT_GE(rrg.last_iter(v), level[v]) << "v=" << v;
  }
}

TEST_P(RandomTopologyTest, PartitionValidAcrossNodeCounts) {
  Graph g = MakeGraph(GetParam(), /*symmetric=*/false);
  ChunkPartitioner partitioner;
  for (size_t parts : {1u, 2u, 5u, 8u}) {
    auto ranges = partitioner.Partition(g, parts);
    EXPECT_TRUE(
        ChunkPartitioner::ValidatePartition(ranges, g.num_vertices()).ok());
  }
}

TEST_P(RandomTopologyTest, DegreeStatsConsistent) {
  Graph g = MakeGraph(GetParam(), /*symmetric=*/false);
  DegreeStats s = ComputeDegreeStats(g);
  EXPECT_EQ(s.num_vertices, g.num_vertices());
  EXPECT_EQ(s.num_edges, g.num_edges());
  EXPECT_LE(s.top1pct_edge_share, 1.0);
  EXPECT_GE(s.top1pct_edge_share, 0.0);
  EXPECT_LE(s.avg_out_degree, static_cast<double>(s.max_out_degree));
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, RandomTopologyTest,
    ::testing::Values(SweepParam{Family::kRmat, 1},
                      SweepParam{Family::kRmat, 2},
                      SweepParam{Family::kRmat, 3},
                      SweepParam{Family::kRmat, 4},
                      SweepParam{Family::kErdosRenyi, 1},
                      SweepParam{Family::kErdosRenyi, 2},
                      SweepParam{Family::kErdosRenyi, 3},
                      SweepParam{Family::kGrid, 1},
                      SweepParam{Family::kGrid, 2}),
    ParamName);

// ---------------------------------------------------------------------------
// Guidance strategy cross: every guidance-using app, run guided vs
// unguided, across (engine shape x generation strategy) on the same seeded
// random topologies. Min/max apps must agree exactly; arithmetic apps
// within the tolerances their finish-early freezing is specified to keep
// (the same bars apps_equivalence_test holds the defaults to). Because all
// three strategies produce bit-identical guidance, any strategy-dependent
// result difference here is an engine-integration bug, not a sweep bug.
// ---------------------------------------------------------------------------

/// (topology seed) x (generation strategy): the engine shapes are crossed
/// inside the test body, one cluster size per app class.
struct CrossParam {
  SweepParam topology;
  GuidanceGenerationStrategy strategy;
};

std::string CrossParamName(
    const ::testing::TestParamInfo<CrossParam>& info) {
  ::testing::TestParamInfo<SweepParam> inner(info.param.topology, 0);
  return ParamName(inner) + "_" +
         GuidanceGenerationStrategyName(info.param.strategy);
}

class GuidanceStrategyCrossTest
    : public ::testing::TestWithParam<CrossParam> {
 protected:
  /// A private provider pinned to the strategy under test, so the run
  /// cannot hit guidance generated by another strategy (or another test)
  /// through the global provider.
  AppConfig GuidedConfig(int num_nodes) {
    GuidanceProviderOptions opt;
    opt.generation_threads = 3;
    opt.generation_strategy = GetParam().strategy;
    provider_ = std::make_unique<GuidanceProvider>(opt);
    AppConfig cfg;
    cfg.num_nodes = num_nodes;
    cfg.enable_rr = true;
    cfg.guidance_provider = provider_.get();
    return cfg;
  }

  static AppConfig BaselineConfig(int num_nodes) {
    AppConfig cfg;
    cfg.num_nodes = num_nodes;
    cfg.enable_rr = false;
    return cfg;
  }

  std::unique_ptr<GuidanceProvider> provider_;
};

TEST_P(GuidanceStrategyCrossTest, MinMaxAppsExactAcrossEngines) {
  Graph g = MakeGraph(GetParam().topology, /*symmetric=*/false);
  Graph gsym = MakeGraph(GetParam().topology, /*symmetric=*/true);
  for (int nodes : {1, 3}) {
    SCOPED_TRACE("nodes=" + std::to_string(nodes));
    {  // SSSP
      SsspResult guided = RunSssp(g, GuidedConfig(nodes));
      SsspResult base = RunSssp(g, BaselineConfig(nodes));
      for (size_t v = 0; v < base.dist.size(); ++v) {
        ASSERT_FLOAT_EQ(guided.dist[v], base.dist[v]) << "sssp v=" << v;
      }
    }
    {  // BFS
      BfsResult guided = RunBfs(g, GuidedConfig(nodes));
      BfsResult base = RunBfs(g, BaselineConfig(nodes));
      for (size_t v = 0; v < base.levels.size(); ++v) {
        ASSERT_EQ(guided.levels[v], base.levels[v]) << "bfs v=" << v;
      }
    }
    {  // WP
      WpResult guided = RunWp(g, GuidedConfig(nodes));
      WpResult base = RunWp(g, BaselineConfig(nodes));
      for (size_t v = 0; v < base.width.size(); ++v) {
        ASSERT_FLOAT_EQ(guided.width[v], base.width[v]) << "wp v=" << v;
      }
    }
    {  // CC (undirected closure)
      CcResult guided = RunCc(gsym, GuidedConfig(nodes));
      CcResult base = RunCc(gsym, BaselineConfig(nodes));
      for (size_t v = 0; v < base.labels.size(); ++v) {
        ASSERT_EQ(guided.labels[v], base.labels[v]) << "cc v=" << v;
      }
    }
    {  // NumPaths (sum aggregation, but exact: bounded-length DP)
      NumPathsResult guided = RunNumPaths(g, GuidedConfig(nodes), 12);
      NumPathsResult base = RunNumPaths(g, BaselineConfig(nodes), 12);
      for (size_t v = 0; v < base.paths.size(); ++v) {
        ASSERT_DOUBLE_EQ(guided.paths[v], base.paths[v])
            << "numpaths v=" << v;
      }
    }
  }
}

TEST_P(GuidanceStrategyCrossTest, ArithmeticAppsWithinToleranceAcrossEngines) {
  Graph g = MakeGraph(GetParam().topology, /*symmetric=*/false);
  VertexId n = g.num_vertices();
  std::vector<float> ones(n, 1.0f);
  std::vector<float> hotspots(n, 0.0f);
  for (VertexId v = 0; v < n; v += 37) hotspots[v] = 100.0f;
  for (int nodes : {1, 3}) {
    SCOPED_TRACE("nodes=" + std::to_string(nodes));
    {  // PageRank (finish-early freezing: 5e-3, the apps_equivalence bar)
      PrResult guided = RunPr(g, GuidedConfig(nodes));
      PrResult base = RunPr(g, BaselineConfig(nodes));
      for (size_t v = 0; v < base.ranks.size(); ++v) {
        ASSERT_NEAR(guided.ranks[v], base.ranks[v], 5e-3) << "pr v=" << v;
      }
    }
    {  // TunkRank (same finish-early bound as PR: on random topologies
       //  the freeze point can land a few 1e-3 from the unfrozen run)
      TrResult guided = RunTr(g, GuidedConfig(nodes));
      TrResult base = RunTr(g, BaselineConfig(nodes));
      for (size_t v = 0; v < base.influence.size(); ++v) {
        ASSERT_NEAR(guided.influence[v], base.influence[v], 5e-3)
            << "tr v=" << v;
      }
    }
    {  // SpMV chain
      SpmvResult guided = RunSpmv(g, ones, GuidedConfig(nodes), 3);
      SpmvResult base = RunSpmv(g, ones, BaselineConfig(nodes), 3);
      for (size_t v = 0; v < base.y.size(); ++v) {
        ASSERT_NEAR(guided.y[v], base.y[v], 1e-3) << "spmv v=" << v;
      }
    }
    {  // Heat simulation
      HeatSimulationResult guided =
          RunHeatSimulation(g, hotspots, GuidedConfig(nodes));
      HeatSimulationResult base =
          RunHeatSimulation(g, hotspots, BaselineConfig(nodes));
      for (size_t v = 0; v < base.heat.size(); ++v) {
        ASSERT_NEAR(guided.heat[v], base.heat[v], 1e-2) << "heat v=" << v;
      }
    }
    {  // Belief propagation
      BeliefPropagationResult guided =
          RunBeliefPropagation(g, hotspots, GuidedConfig(nodes));
      BeliefPropagationResult base =
          RunBeliefPropagation(g, hotspots, BaselineConfig(nodes));
      for (size_t v = 0; v < base.belief.size(); ++v) {
        ASSERT_NEAR(guided.belief[v], base.belief[v], 1e-2)
            << "bp v=" << v;
      }
    }
  }
}

std::vector<CrossParam> CrossParams() {
  std::vector<CrossParam> params;
  for (SweepParam topology :
       {SweepParam{Family::kRmat, 1}, SweepParam{Family::kRmat, 2},
        SweepParam{Family::kErdosRenyi, 1}, SweepParam{Family::kGrid, 1}}) {
    for (GuidanceGenerationStrategy strategy :
         {GuidanceGenerationStrategy::kSerial,
          GuidanceGenerationStrategy::kUniformParallel,
          GuidanceGenerationStrategy::kPartitionedParallel}) {
      params.push_back(CrossParam{topology, strategy});
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(StrategyCross, GuidanceStrategyCrossTest,
                         ::testing::ValuesIn(CrossParams()),
                         CrossParamName);

}  // namespace
}  // namespace slfe
