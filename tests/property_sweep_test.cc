// Randomized property sweeps: for a spread of generator seeds (each a
// distinct topology) and graph families, the SLFE engine with RR must
// agree exactly with the sequential references, and core structural
// invariants must hold. These parameterized suites are the repository's
// broad-coverage safety net.

#include <gtest/gtest.h>

#include <set>

#include "slfe/apps/cc.h"
#include "slfe/apps/reference.h"
#include "slfe/apps/sssp.h"
#include "slfe/apps/wp.h"
#include "slfe/core/rr_guidance.h"
#include "slfe/graph/degree_stats.h"
#include "slfe/graph/generators.h"
#include "slfe/graph/partitioner.h"

namespace slfe {
namespace {

enum class Family { kRmat, kErdosRenyi, kGrid };

struct SweepParam {
  Family family;
  uint64_t seed;
};

std::string ParamName(const ::testing::TestParamInfo<SweepParam>& info) {
  const char* family = info.param.family == Family::kRmat ? "Rmat"
                       : info.param.family == Family::kErdosRenyi
                           ? "ER"
                           : "Grid";
  return std::string(family) + "_seed" + std::to_string(info.param.seed);
}

Graph MakeGraph(const SweepParam& p, bool symmetric) {
  EdgeList edges;
  switch (p.family) {
    case Family::kRmat: {
      RmatOptions opt;
      opt.num_vertices = 384;
      opt.num_edges = 2600;
      opt.weighted = true;
      opt.max_weight = 128.0f;
      opt.seed = p.seed;
      edges = GenerateRmat(opt);
      break;
    }
    case Family::kErdosRenyi:
      edges = GenerateErdosRenyi(384, 2600, p.seed, /*weighted=*/true,
                                 /*max_weight=*/128.0f);
      break;
    case Family::kGrid:
      edges = GenerateGrid(16, 20, /*weighted=*/true, p.seed,
                           /*max_weight=*/64.0f);
      break;
  }
  if (symmetric) edges.Symmetrize();
  edges.Deduplicate();
  return Graph::FromEdges(edges);
}

class RandomTopologyTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(RandomTopologyTest, SsspWithRrMatchesDijkstra) {
  Graph g = MakeGraph(GetParam(), /*symmetric=*/false);
  AppConfig cfg;
  cfg.num_nodes = 3;
  cfg.enable_rr = true;
  SsspResult r = RunSssp(g, cfg);
  auto ref = ReferenceSssp(g, 0);
  for (size_t v = 0; v < ref.size(); ++v) {
    ASSERT_FLOAT_EQ(r.dist[v], ref[v]) << "v=" << v;
  }
}

TEST_P(RandomTopologyTest, WpWithRrMatchesReference) {
  Graph g = MakeGraph(GetParam(), /*symmetric=*/false);
  AppConfig cfg;
  cfg.num_nodes = 2;
  cfg.enable_rr = true;
  WpResult r = RunWp(g, cfg);
  auto ref = ReferenceWp(g, 0);
  for (size_t v = 0; v < ref.size(); ++v) {
    ASSERT_FLOAT_EQ(r.width[v], ref[v]) << "v=" << v;
  }
}

TEST_P(RandomTopologyTest, CcWithRrMatchesReference) {
  Graph g = MakeGraph(GetParam(), /*symmetric=*/true);
  AppConfig cfg;
  cfg.num_nodes = 4;
  cfg.enable_rr = true;
  CcResult r = RunCc(g, cfg);
  auto ref = ReferenceCc(g);
  for (size_t v = 0; v < ref.size(); ++v) {
    ASSERT_EQ(r.labels[v], ref[v]) << "v=" << v;
  }
}

TEST_P(RandomTopologyTest, CcLabelsAreComponentMinima) {
  // Structural invariant independent of the reference: every label is the
  // minimum vertex id of its label class, and neighbors share labels.
  Graph g = MakeGraph(GetParam(), /*symmetric=*/true);
  AppConfig cfg;
  cfg.enable_rr = true;
  CcResult r = RunCc(g, cfg);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_LE(r.labels[v], v);
    EXPECT_EQ(r.labels[r.labels[v]], r.labels[v]);
    g.out().ForEachNeighbor(v, [&](VertexId u, Weight) {
      EXPECT_EQ(r.labels[v], r.labels[u]);
    });
  }
}

TEST_P(RandomTopologyTest, GuidanceLastIterBoundsBfsLevel) {
  // lastIter(v) >= BFS level of v for reachable non-root vertices: a
  // vertex cannot receive its last update before it is first reached.
  Graph g = MakeGraph(GetParam(), /*symmetric=*/false);
  RRGuidance rrg = RRGuidance::Generate(g, {0});
  auto level = ReferenceBfs(g, 0);
  for (VertexId v = 1; v < g.num_vertices(); ++v) {
    if (level[v] == UINT32_MAX) continue;
    EXPECT_GE(rrg.last_iter(v), level[v]) << "v=" << v;
  }
}

TEST_P(RandomTopologyTest, PartitionValidAcrossNodeCounts) {
  Graph g = MakeGraph(GetParam(), /*symmetric=*/false);
  ChunkPartitioner partitioner;
  for (size_t parts : {1u, 2u, 5u, 8u}) {
    auto ranges = partitioner.Partition(g, parts);
    EXPECT_TRUE(
        ChunkPartitioner::ValidatePartition(ranges, g.num_vertices()).ok());
  }
}

TEST_P(RandomTopologyTest, DegreeStatsConsistent) {
  Graph g = MakeGraph(GetParam(), /*symmetric=*/false);
  DegreeStats s = ComputeDegreeStats(g);
  EXPECT_EQ(s.num_vertices, g.num_vertices());
  EXPECT_EQ(s.num_edges, g.num_edges());
  EXPECT_LE(s.top1pct_edge_share, 1.0);
  EXPECT_GE(s.top1pct_edge_share, 0.0);
  EXPECT_LE(s.avg_out_degree, static_cast<double>(s.max_out_degree));
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, RandomTopologyTest,
    ::testing::Values(SweepParam{Family::kRmat, 1},
                      SweepParam{Family::kRmat, 2},
                      SweepParam{Family::kRmat, 3},
                      SweepParam{Family::kRmat, 4},
                      SweepParam{Family::kErdosRenyi, 1},
                      SweepParam{Family::kErdosRenyi, 2},
                      SweepParam{Family::kErdosRenyi, 3},
                      SweepParam{Family::kGrid, 1},
                      SweepParam{Family::kGrid, 2}),
    ParamName);

}  // namespace
}  // namespace slfe
