// Tests for the persistent guidance spill layer: on-disk round-trip
// fidelity, and — the part that matters for a durable artifact — that
// every corrupted, truncated, mislabeled, or stale file is rejected
// cleanly (an error Status, never a partial RRGuidance) and that the
// cache above it degrades such a rejection to a regeneration, not a
// failure.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "slfe/core/guidance_cache.h"
#include "slfe/core/guidance_store.h"
#include "slfe/core/rr_guidance.h"
#include "slfe/graph/generators.h"

namespace slfe {
namespace {

std::string StoreDir(const std::string& name) {
  return ::testing::TempDir() + name;
}

/// Reads a whole file into bytes.
std::vector<unsigned char> ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::vector<unsigned char> bytes;
  unsigned char buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + got);
  }
  std::fclose(f);
  return bytes;
}

void WriteFile(const std::string& path,
               const std::vector<unsigned char>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

struct StoreFixture {
  explicit StoreFixture(const std::string& name)
      : graph(Graph::FromEdges(GenerateChain(20))), store(StoreDir(name)) {
    EXPECT_TRUE(store.RemoveAll().ok());
    roots = {0};
    key = GuidanceCache::MakeKey(graph.fingerprint(), roots);
    guidance = RRGuidance::GenerateSerial(graph, roots);
  }

  Graph graph;
  GuidanceStore store;
  std::vector<VertexId> roots;
  GuidanceKey key;
  RRGuidance guidance;
};

TEST(GuidanceStoreTest, SaveLoadRoundTrip) {
  StoreFixture fx("slfe_gs_roundtrip");
  ASSERT_TRUE(fx.store.Save(fx.key, fx.guidance).ok());
  ASSERT_TRUE(fx.store.Contains(fx.key));

  Result<RRGuidance> loaded = fx.store.Load(fx.key);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const RRGuidance& g = loaded.value();
  ASSERT_EQ(g.num_vertices(), fx.guidance.num_vertices());
  EXPECT_EQ(g.depth(), fx.guidance.depth());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(g.last_iter(v), fx.guidance.last_iter(v)) << "v=" << v;
    ASSERT_EQ(g.visited(v), fx.guidance.visited(v)) << "v=" << v;
  }
  GuidanceStoreStats stats = fx.store.stats();
  EXPECT_EQ(stats.saves, 1u);
  EXPECT_EQ(stats.loads, 1u);
  EXPECT_EQ(stats.load_errors, 0u);
}

TEST(GuidanceStoreTest, AbsentEntryIsNotFound) {
  StoreFixture fx("slfe_gs_absent");
  Result<RRGuidance> loaded = fx.store.Load(fx.key);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(fx.store.stats().load_misses, 1u);
}

TEST(GuidanceStoreTest, FlippedPayloadByteIsRejected) {
  StoreFixture fx("slfe_gs_corrupt");
  ASSERT_TRUE(fx.store.Save(fx.key, fx.guidance).ok());
  std::string path = fx.store.EntryPath(fx.key);
  std::vector<unsigned char> bytes = ReadFile(path);
  ASSERT_GT(bytes.size(), 60u);
  bytes[60] ^= 0xff;  // one payload byte (header is 56 bytes)
  WriteFile(path, bytes);

  Result<RRGuidance> loaded = fx.store.Load(fx.key);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  EXPECT_EQ(fx.store.stats().load_errors, 1u);
}

TEST(GuidanceStoreTest, CorruptedHeaderFieldIsRejected) {
  // depth (offset 36) is validated by nothing but the checksum — a
  // flipped depth that loaded "valid" would silently change guided-run
  // iteration bounds (OocCcGuided loops while iter < depth).
  StoreFixture fx("slfe_gs_header");
  ASSERT_TRUE(fx.store.Save(fx.key, fx.guidance).ok());
  std::string path = fx.store.EntryPath(fx.key);
  std::vector<unsigned char> bytes = ReadFile(path);
  bytes[36] ^= 0x01;
  WriteFile(path, bytes);

  Result<RRGuidance> loaded = fx.store.Load(fx.key);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST(GuidanceStoreTest, OversizedHeaderClaimIsRejectedBeforeAllocation) {
  // A self-consistent but absurd header (huge num_vertices with matching
  // payload_bytes) must fail the file-size check, not trigger a multi-GB
  // allocation.
  StoreFixture fx("slfe_gs_oversize");
  ASSERT_TRUE(fx.store.Save(fx.key, fx.guidance).ok());
  std::string path = fx.store.EntryPath(fx.key);
  std::vector<unsigned char> bytes = ReadFile(path);
  uint32_t huge_vertices = 0xFFFFFFFFu;
  uint64_t huge_payload = 5ull * huge_vertices;
  std::memcpy(bytes.data() + 32, &huge_vertices, sizeof(huge_vertices));
  std::memcpy(bytes.data() + 40, &huge_payload, sizeof(huge_payload));
  WriteFile(path, bytes);

  Result<RRGuidance> loaded = fx.store.Load(fx.key);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST(GuidanceStoreTest, OrphanedTempFilesAreSweptOnConstruction) {
  StoreFixture fx("slfe_gs_orphan");
  std::string orphan = fx.store.dir() + "/gdead_rbeef_n01.rrg.tmp.1234.0";
  WriteFile(orphan, {0x00, 0x01, 0x02});
  GuidanceStore reopened(fx.store.dir());  // "next process" over the dir
  std::FILE* f = std::fopen(orphan.c_str(), "rb");
  EXPECT_EQ(f, nullptr) << "orphaned temp file should have been swept";
  if (f != nullptr) std::fclose(f);
}

TEST(GuidanceStoreTest, TruncatedFileIsRejected) {
  StoreFixture fx("slfe_gs_trunc");
  ASSERT_TRUE(fx.store.Save(fx.key, fx.guidance).ok());
  std::string path = fx.store.EntryPath(fx.key);
  std::vector<unsigned char> bytes = ReadFile(path);

  // Truncation anywhere — inside the header or inside the payload — must
  // be rejected, never read as a short-but-valid entry.
  for (size_t keep : {size_t{10}, size_t{56}, bytes.size() - 3}) {
    WriteFile(path, std::vector<unsigned char>(bytes.begin(),
                                               bytes.begin() + keep));
    Result<RRGuidance> loaded = fx.store.Load(fx.key);
    EXPECT_FALSE(loaded.ok()) << "kept " << keep << " bytes";
    EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  }
}

TEST(GuidanceStoreTest, TrailingGarbageIsRejected) {
  StoreFixture fx("slfe_gs_trailing");
  ASSERT_TRUE(fx.store.Save(fx.key, fx.guidance).ok());
  std::string path = fx.store.EntryPath(fx.key);
  std::vector<unsigned char> bytes = ReadFile(path);
  bytes.push_back(0x00);
  WriteFile(path, bytes);
  Result<RRGuidance> loaded = fx.store.Load(fx.key);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST(GuidanceStoreTest, WrongMagicIsRejected) {
  StoreFixture fx("slfe_gs_magic");
  ASSERT_TRUE(fx.store.Save(fx.key, fx.guidance).ok());
  std::string path = fx.store.EntryPath(fx.key);
  std::vector<unsigned char> bytes = ReadFile(path);
  bytes[0] ^= 0xff;
  WriteFile(path, bytes);
  Result<RRGuidance> loaded = fx.store.Load(fx.key);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST(GuidanceStoreTest, MislabeledKeyIsRejected) {
  // A file copied (or hash-collided) onto another key's path must fail the
  // embedded-key check rather than serve the wrong graph's guidance.
  StoreFixture fx("slfe_gs_mislabel");
  ASSERT_TRUE(fx.store.Save(fx.key, fx.guidance).ok());
  GuidanceKey other = GuidanceCache::MakeKey(fx.graph.fingerprint(), {1});
  WriteFile(fx.store.EntryPath(other), ReadFile(fx.store.EntryPath(fx.key)));

  Result<RRGuidance> loaded = fx.store.Load(other);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST(GuidanceStoreTest, RemoveGraphDropsOnlyThatGraphsEntries) {
  StoreFixture fx("slfe_gs_removegraph");
  Graph other = Graph::FromEdges(GenerateStar(6));
  GuidanceKey other_key = GuidanceCache::MakeKey(other.fingerprint(), {0});
  RRGuidance other_guidance = RRGuidance::GenerateSerial(other, {0});

  ASSERT_TRUE(fx.store.Save(fx.key, fx.guidance).ok());
  ASSERT_TRUE(fx.store.Save(other_key, other_guidance).ok());

  Result<size_t> removed = fx.store.RemoveGraph(fx.graph.fingerprint());
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(removed.value(), 1u);
  EXPECT_FALSE(fx.store.Contains(fx.key));
  EXPECT_TRUE(fx.store.Contains(other_key));
}

TEST(GuidanceStoreTest, CacheDegradesCorruptionToRegeneration) {
  // The two-level contract seen from above: a bad file costs one resweep
  // (and a warning), never an error or wrong guidance, and the
  // write-through replaces the bad file.
  StoreFixture fx("slfe_gs_degrade");
  auto store = std::make_shared<GuidanceStore>(StoreDir("slfe_gs_degrade"));
  GuidanceCache cache(4);
  cache.AttachStore(store);

  cache.Insert(fx.key, std::make_shared<const RRGuidance>(fx.guidance));
  std::string path = store->EntryPath(fx.key);
  std::vector<unsigned char> bytes = ReadFile(path);
  bytes[60] ^= 0xff;
  WriteFile(path, bytes);
  cache.Clear();  // force the next lookup to the (corrupted) store

  EXPECT_EQ(cache.Lookup(fx.key), nullptr);  // a miss, not a crash
  GuidanceCacheStats stats = cache.stats();
  EXPECT_EQ(stats.store_errors, 1u);
  EXPECT_EQ(stats.misses, 1u);

  cache.Insert(fx.key, std::make_shared<const RRGuidance>(fx.guidance));
  cache.Clear();
  EXPECT_NE(cache.Lookup(fx.key), nullptr);  // rewritten file loads again
  EXPECT_EQ(cache.stats().store_hits, 1u);
}

TEST(GuidanceStoreTest, EmptyGuidanceRoundTrips) {
  // Zero-vertex payloads are legal (guidance for an empty graph) and must
  // survive the trip like any other entry.
  StoreFixture fx("slfe_gs_empty");
  RRGuidance empty;
  GuidanceKey key = GuidanceCache::MakeKey(0x1234, {});
  ASSERT_TRUE(fx.store.Save(key, empty).ok());
  Result<RRGuidance> loaded = fx.store.Load(key);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().num_vertices(), 0u);
  EXPECT_EQ(loaded.value().depth(), 0u);
}

TEST(GuidanceStoreTest, ShallowGuidancePacksToThreeBytesPerVertex) {
  // Every last_iter in the chain-of-20 fixture fits a byte and the
  // guidance carries its levels plane, so Save must negotiate
  // kPackedU8Levels: 56-byte header + 3 bytes/vertex on disk.
  StoreFixture fx("slfe_gs_packed");
  ASSERT_TRUE(fx.guidance.has_levels());
  ASSERT_TRUE(fx.store.Save(fx.key, fx.guidance).ok());
  std::vector<unsigned char> bytes = ReadFile(fx.store.EntryPath(fx.key));
  EXPECT_EQ(bytes.size(), 56u + 3u * fx.guidance.num_vertices());

  Result<RRGuidance> loaded = fx.store.Load(fx.key);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_TRUE(loaded.value().has_levels());
  for (VertexId v = 0; v < fx.guidance.num_vertices(); ++v) {
    ASSERT_EQ(loaded.value().last_iter(v), fx.guidance.last_iter(v));
    ASSERT_EQ(loaded.value().level(v), fx.guidance.level(v)) << "v=" << v;
  }
}

TEST(GuidanceStoreTest, DeepGuidanceFallsBackToRawCodec) {
  // A 300-vertex chain drives last_iter past the packed range, so Save
  // must fall back to raw u32 with a raw levels plane (9 B/vertex)
  // without losing a single level.
  StoreFixture fx("slfe_gs_deep");
  Graph deep = Graph::FromEdges(GenerateChain(300));
  std::vector<VertexId> roots = {0};
  GuidanceKey key = GuidanceCache::MakeKey(deep.fingerprint(), roots);
  RRGuidance guidance = RRGuidance::GenerateSerial(deep, roots);
  ASSERT_GT(guidance.depth(), 255u) << "fixture must exceed the u8 range";
  ASSERT_TRUE(fx.store.Save(key, guidance).ok());
  std::vector<unsigned char> bytes = ReadFile(fx.store.EntryPath(key));
  EXPECT_EQ(bytes.size(), 56u + 9u * guidance.num_vertices());

  Result<RRGuidance> loaded = fx.store.Load(key);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_TRUE(loaded.value().has_levels());
  for (VertexId v = 0; v < guidance.num_vertices(); ++v) {
    ASSERT_EQ(loaded.value().last_iter(v), guidance.last_iter(v)) << v;
    ASSERT_EQ(loaded.value().level(v), guidance.level(v)) << v;
  }
}

TEST(GuidanceStoreTest, LevelslessGuidanceKeepsTheHistoricalCodec) {
  // Guidance without a levels plane (reassembled from a pre-levels file)
  // must save with the original two-plane codec — old readers stay
  // compatible, and the round-trip keeps has_levels() == false so a
  // repair attempt on it falls back instead of inventing levels.
  StoreFixture fx("slfe_gs_nolevels");
  std::vector<VertexGuidance> records(fx.guidance.raw());
  RRGuidance levelless =
      RRGuidance::FromParts(std::move(records), fx.guidance.depth());
  ASSERT_FALSE(levelless.has_levels());
  ASSERT_TRUE(fx.store.Save(fx.key, levelless).ok());
  std::vector<unsigned char> bytes = ReadFile(fx.store.EntryPath(fx.key));
  EXPECT_EQ(bytes.size(), 56u + 2u * levelless.num_vertices());

  Result<RRGuidance> loaded = fx.store.Load(fx.key);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_FALSE(loaded.value().has_levels());
  for (VertexId v = 0; v < levelless.num_vertices(); ++v) {
    ASSERT_EQ(loaded.value().last_iter(v), levelless.last_iter(v)) << v;
    ASSERT_EQ(loaded.value().visited(v), levelless.visited(v)) << v;
  }
}

TEST(GuidanceStoreTest, UnreachableLevelsSurviveThePackedSentinel) {
  // The packed levels plane encodes kUnreachableLevel as 0xFF; a graph
  // with unreached vertices must round-trip the sentinel, not turn
  // unreachable into level 255.
  StoreFixture fx("slfe_gs_sentinel");
  EdgeList e(10);
  for (VertexId v = 0; v < 4; ++v) e.Add(v, v + 1);
  e.set_num_vertices(10);  // 5..9 unreachable from 0
  Graph g = Graph::FromEdges(e);
  GuidanceKey key = GuidanceCache::MakeKey(g.fingerprint(), {0});
  RRGuidance guidance = RRGuidance::GenerateSerial(g, {0});
  ASSERT_TRUE(fx.store.Save(key, guidance).ok());
  Result<RRGuidance> loaded = fx.store.Load(key);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_TRUE(loaded.value().has_levels());
  for (VertexId v = 5; v < 10; ++v) {
    EXPECT_EQ(loaded.value().level(v), RRGuidance::kUnreachableLevel)
        << "v=" << v;
    EXPECT_FALSE(loaded.value().visited(v));
  }
  for (VertexId v = 0; v < 5; ++v) {
    EXPECT_EQ(loaded.value().level(v), guidance.level(v)) << "v=" << v;
  }
}

TEST(GuidanceStoreTest, UnknownCodecByteIsRejectedAsCodecError) {
  StoreFixture fx("slfe_gs_codec");
  ASSERT_TRUE(fx.store.Save(fx.key, fx.guidance).ok());
  std::string path = fx.store.EntryPath(fx.key);
  std::vector<unsigned char> bytes = ReadFile(path);
  bytes[6] = 9;  // version bits 16-23: a codec this build does not know
  WriteFile(path, bytes);

  // Rejected like corruption (no partial guidance), but ALSO counted in
  // the distinct codec_errors stat — the operator's signal to upgrade
  // readers rather than delete entries.
  Result<RRGuidance> loaded = fx.store.Load(fx.key);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  EXPECT_NE(loaded.status().message().find("codec"), std::string::npos);
  GuidanceStoreStats stats = fx.store.stats();
  EXPECT_EQ(stats.codec_errors, 1u);
  EXPECT_EQ(stats.load_errors, 1u);
}

}  // namespace
}  // namespace slfe
