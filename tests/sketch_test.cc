// Differential tests for the sketch subsystem: every estimator is run
// against an exact hash-map counter over the same stream, on three
// stream shapes — zipf (the service's expected skew), uniform (worst
// case for top-k), and adversarial (one elephant behind a wall of
// singletons) — and the (epsilon, delta) contract is checked literally:
// count-min never underestimates, overshoot beyond epsilon*N happens on
// at most a delta fraction of keys, top-k recall on skewed streams stays
// >= 0.9, decay halves every structure in lockstep, and a multi-threaded
// hammer preserves the never-underestimate invariant.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <random>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "slfe/sketch/decay.h"
#include "slfe/sketch/hotness.h"
#include "slfe/sketch/sketch.h"
#include "slfe/sketch/topk.h"

namespace slfe {
namespace {

// Zipf-ish sampler over [0, num_keys): weight of rank r is 1/(r+1)^s.
// discrete_distribution + a fixed mt19937 seed keeps every run identical.
std::vector<uint64_t> ZipfStream(size_t num_keys, size_t n, double s,
                                 uint32_t seed) {
  std::vector<double> weights(num_keys);
  for (size_t r = 0; r < num_keys; ++r) {
    weights[r] = 1.0 / std::pow(static_cast<double>(r + 1), s);
  }
  std::discrete_distribution<size_t> dist(weights.begin(), weights.end());
  std::mt19937 rng(seed);
  std::vector<uint64_t> stream(n);
  for (size_t i = 0; i < n; ++i) {
    // Spread ranks over the key space so key value and rank are unrelated.
    stream[i] = SketchMix64(dist(rng));
  }
  return stream;
}

std::vector<uint64_t> UniformStream(size_t num_keys, size_t n, uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<size_t> dist(0, num_keys - 1);
  std::vector<uint64_t> stream(n);
  for (size_t i = 0; i < n; ++i) stream[i] = SketchMix64(dist(rng));
  return stream;
}

// One elephant carrying half the stream, the rest all-distinct
// singletons: maximum table pollution per unit of elephant weight.
std::vector<uint64_t> AdversarialStream(size_t n) {
  std::vector<uint64_t> stream;
  stream.reserve(n);
  const uint64_t elephant = SketchMix64(0xe1e9);
  for (size_t i = 0; i < n; ++i) {
    stream.push_back(i % 2 == 0 ? elephant : SketchMix64(0x51000000 + i));
  }
  return stream;
}

std::unordered_map<uint64_t, uint64_t> ExactCounts(
    const std::vector<uint64_t>& stream) {
  std::unordered_map<uint64_t, uint64_t> exact;
  for (uint64_t key : stream) ++exact[key];
  return exact;
}

// The differential check shared by every stream shape: feed sketch and
// exact map the same stream, then demand (a) estimate >= exact for every
// key — the conservative-update invariant, deterministic, no slack — and
// (b) overshoot > epsilon*N on at most a delta fraction of keys.
void CheckCountMinContract(const std::vector<uint64_t>& stream,
                           const SketchOptions& options) {
  CountMinSketch sketch(options);
  auto exact = ExactCounts(stream);
  for (uint64_t key : stream) sketch.Update(key);

  const uint64_t n = sketch.TotalWeight();
  ASSERT_EQ(n, stream.size());
  const double bound = options.epsilon * static_cast<double>(n);
  size_t violations = 0;
  for (const auto& [key, count] : exact) {
    uint64_t est = sketch.Estimate(key);
    ASSERT_GE(est, count) << "count-min underestimated key " << key;
    if (static_cast<double>(est - count) > bound) ++violations;
  }
  EXPECT_LE(static_cast<double>(violations),
            options.delta * static_cast<double>(exact.size()))
      << violations << " of " << exact.size() << " keys overshot epsilon*N="
      << bound;
}

TEST(SketchOptions, SizesFromEpsilonDelta) {
  SketchOptions opt;
  opt.epsilon = 0.001;
  opt.delta = 0.01;
  // width = ceil(e / epsilon), depth = ceil(ln(1 / delta)).
  EXPECT_EQ(opt.ResolveWidth(), static_cast<size_t>(std::ceil(M_E / 0.001)));
  EXPECT_EQ(opt.ResolveDepth(), static_cast<size_t>(std::ceil(std::log(100.0))));

  SketchOptions explicit_opt;
  explicit_opt.width = 77;
  explicit_opt.depth = 3;
  EXPECT_EQ(explicit_opt.ResolveWidth(), 77u);
  EXPECT_EQ(explicit_opt.ResolveDepth(), 3u);

  SketchOptions tiny;
  tiny.delta = 1e-30;  // would be depth 70; clamped inside the sketches
  CountMinSketch sketch(tiny);
  EXPECT_LE(sketch.depth(), 16u);
  EXPECT_GE(sketch.depth(), 2u);
  EXPECT_EQ(sketch.MemoryBytes(), sketch.width() * sketch.depth() * 8);
}

TEST(CountMinDifferential, ZipfStream) {
  CheckCountMinContract(ZipfStream(5000, 100000, 1.1, 20180808),
                        SketchOptions());
}

TEST(CountMinDifferential, UniformStream) {
  CheckCountMinContract(UniformStream(5000, 100000, 20180809),
                        SketchOptions());
}

TEST(CountMinDifferential, AdversarialStream) {
  // 50k singletons try to pollute the table under a 50k-count elephant.
  std::vector<uint64_t> stream = AdversarialStream(100000);
  CheckCountMinContract(stream, SketchOptions());

  // The elephant itself must sit essentially exact: conservative update
  // never raises a cell past the running row minimum + count, so
  // singleton collisions barely move it.
  CountMinSketch sketch;
  for (uint64_t key : stream) sketch.Update(key);
  const uint64_t elephant = SketchMix64(0xe1e9);
  uint64_t est = sketch.Estimate(elephant);
  EXPECT_GE(est, 50000u);
  EXPECT_LE(est, 50000u + static_cast<uint64_t>(
                              SketchOptions().epsilon * 100000.0));
}

TEST(CountMinDifferential, TinySketchStillNeverUnderestimates) {
  // Deliberately undersized (64 cells for 5000 keys): estimates are
  // garbage-high, but the one-sided invariant must survive saturation.
  SketchOptions opt;
  opt.width = 16;
  opt.depth = 4;
  std::vector<uint64_t> stream = ZipfStream(5000, 20000, 1.1, 7);
  CountMinSketch sketch(opt);
  auto exact = ExactCounts(stream);
  for (uint64_t key : stream) sketch.Update(key);
  for (const auto& [key, count] : exact) {
    EXPECT_GE(sketch.Estimate(key), count);
  }
}

TEST(CountMin, UpdateReturnsPostUpdateEstimate) {
  CountMinSketch sketch;
  EXPECT_EQ(sketch.Update(42, 3), 3u);
  EXPECT_EQ(sketch.Update(42, 2), 5u);
  EXPECT_EQ(sketch.Estimate(42), 5u);
  EXPECT_EQ(sketch.TotalWeight(), 5u);
}

TEST(CountMin, HalveDecaysEstimatesAndTotal) {
  CountMinSketch sketch;
  sketch.Update(1, 1000);
  sketch.Update(2, 11);
  sketch.Halve();
  EXPECT_EQ(sketch.Estimate(1), 500u);
  EXPECT_EQ(sketch.Estimate(2), 5u);  // floor halving
  EXPECT_EQ(sketch.TotalWeight(), 505u);
}

TEST(CountSketchDifferential, MedianIsAccurateAndUnbiased) {
  std::vector<uint64_t> stream = ZipfStream(2000, 100000, 1.1, 20180810);
  auto exact = ExactCounts(stream);
  CountSketch sketch;
  for (uint64_t key : stream) sketch.Update(key);

  // Per-key: one count-sketch row has stddev sqrt(F2 / width) where F2
  // is the stream's second frequency moment (heavy keys dominate what a
  // collision can contribute); 6 sigma over the median-of-rows estimator
  // is generous.
  double f2 = 0;
  for (const auto& [key, count] : exact) {
    f2 += static_cast<double>(count) * static_cast<double>(count);
  }
  const double sigma = std::sqrt(f2 / static_cast<double>(sketch.width()));
  double signed_error_sum = 0;
  for (const auto& [key, count] : exact) {
    int64_t est = sketch.Estimate(key);
    double err = static_cast<double>(est) - static_cast<double>(count);
    EXPECT_LE(std::abs(err), 6.0 * sigma + 1.0) << "key " << key;
    signed_error_sum += err;
  }
  // Unbiasedness: signed errors cancel, so the mean signed error stays a
  // fraction of one sigma even though individual errors reach several.
  EXPECT_LE(std::abs(signed_error_sum / static_cast<double>(exact.size())),
            sigma);
}

TEST(TopK, TracksUpdatesInPlaceAndEvictsMin) {
  TopK topk(3);
  topk.Offer(1, 10);
  topk.Offer(2, 20);
  topk.Offer(3, 30);
  topk.Offer(4, 5);  // loses to the current min (10) -> rejected
  std::vector<HeavyHitter> items = topk.Items();
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0].key, 3u);
  EXPECT_EQ(items[2].key, 1u);

  topk.Offer(1, 40);  // tracked: raised in place, now the max
  topk.Offer(4, 25);  // now beats the min (20) -> evicts key 2
  items = topk.Items();
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0].key, 1u);
  EXPECT_EQ(items[0].estimate, 40u);
  EXPECT_EQ(items[1].key, 3u);
  EXPECT_EQ(items[2].key, 4u);

  topk.Halve();
  items = topk.Items(2);
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0].estimate, 20u);
  EXPECT_EQ(items[1].estimate, 15u);

  // Decay can lower a tracked key's estimate; the in-place update must
  // sift it down, not just up.
  topk.Offer(1, 1);
  items = topk.Items();
  EXPECT_EQ(items.back().key, 1u);
  EXPECT_EQ(items.back().estimate, 1u);
}

TEST(TopKDifferential, ZipfRecallAtLeastNinetyPercent) {
  const size_t kTrueTop = 20;
  std::vector<uint64_t> stream = ZipfStream(2000, 100000, 1.2, 20180811);
  auto exact = ExactCounts(stream);

  // The tracker's exact feeding pattern: every update offers the fresh
  // count-min estimate to the heap.
  CountMinSketch sketch;
  TopK topk(32);
  for (uint64_t key : stream) topk.Offer(key, sketch.Update(key));

  std::vector<std::pair<uint64_t, uint64_t>> ranked(exact.begin(),
                                                    exact.end());
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::vector<HeavyHitter> tracked = topk.Items();
  size_t hits = 0;
  for (size_t r = 0; r < kTrueTop; ++r) {
    for (const HeavyHitter& h : tracked) {
      if (h.key == ranked[r].first) {
        ++hits;
        break;
      }
    }
  }
  EXPECT_GE(static_cast<double>(hits) / static_cast<double>(kTrueTop), 0.9)
      << "recall " << hits << "/" << kTrueTop;
}

TEST(DecayingCountMin, HalvesOnScheduleExactly) {
  DecayingCountMin decayed(SketchOptions(), /*decay_interval=*/1000);
  const uint64_t key = SketchMix64(99);
  for (int i = 0; i < 1000; ++i) decayed.Update(key);
  // The 1000th update itself triggers the halving: 1000 -> 500.
  EXPECT_EQ(decayed.Decays(), 1u);
  EXPECT_EQ(decayed.Estimate(key), 500u);
  for (int i = 0; i < 1000; ++i) decayed.Update(key);
  EXPECT_EQ(decayed.Decays(), 2u);
  EXPECT_EQ(decayed.Estimate(key), 750u);  // (500 + 1000) / 2
  EXPECT_EQ(decayed.TotalWeight(), 750u);
}

TEST(DecayingCountMin, ZeroIntervalNeverDecays) {
  DecayingCountMin decayed;  // interval 0 = off
  for (int i = 0; i < 5000; ++i) decayed.Update(7);
  EXPECT_EQ(decayed.Decays(), 0u);
  EXPECT_EQ(decayed.Estimate(7), 5000u);
}

TEST(DecayingCountMin, OnDecayCallbackFiresPerHalving) {
  std::atomic<int> fired{0};
  DecayingCountMin decayed(SketchOptions(), 100, [&fired] { ++fired; });
  for (int i = 0; i < 350; ++i) decayed.Update(1);
  EXPECT_EQ(fired.load(), 3);
  EXPECT_EQ(decayed.Decays(), 3u);
}

TEST(CountMinConcurrency, HammerPreservesNeverUnderestimate) {
  // 8 threads x 64 keys x 500 updates of weight (key_index + 1): every
  // per-key exact total is known, and the striped-lock + CAS-max design
  // must never let a racing pair of updates lose an increment.
  const size_t kThreads = 8;
  const size_t kKeys = 64;
  const size_t kRounds = 500;
  CountMinSketch sketch;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&sketch] {
      for (size_t round = 0; round < kRounds; ++round) {
        for (size_t k = 0; k < kKeys; ++k) {
          sketch.Update(SketchMix64(k), k + 1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  uint64_t n = sketch.TotalWeight();
  EXPECT_EQ(n, kThreads * kRounds * (kKeys * (kKeys + 1) / 2));
  const double bound = SketchOptions().epsilon * static_cast<double>(n);
  for (size_t k = 0; k < kKeys; ++k) {
    uint64_t exact = kThreads * kRounds * (k + 1);
    uint64_t est = sketch.Estimate(SketchMix64(k));
    EXPECT_GE(est, exact) << "key index " << k;
    EXPECT_LE(static_cast<double>(est - exact), bound) << "key index " << k;
  }
}

TEST(HotnessTracker, MarginalsMatchRawSketchFedSameKeys) {
  HotnessTracker tracker;
  CountMinSketch mirror;
  auto record = [&](const std::string& tenant, uint64_t fp,
                    const std::string& app) {
    tracker.Record(tenant, fp, app);
    mirror.Update(HotnessTracker::TenantKey(tenant));
    mirror.Update(HotnessTracker::AppKey(app));
    mirror.Update(HotnessTracker::TripleKey(tenant, fp, app));
    if (fp != 0) mirror.Update(HotnessTracker::GraphKey(fp));
  };
  for (int i = 0; i < 5; ++i) record("acme", 0x1111, "sssp");
  for (int i = 0; i < 3; ++i) record("globex", 0x2222, "bfs");
  record("acme", 0, "bfs");  // unresolved graph: no graph marginal

  EXPECT_EQ(tracker.Observations(), 9u);
  EXPECT_EQ(tracker.EstimateTenant("acme"),
            mirror.Estimate(HotnessTracker::TenantKey("acme")));
  EXPECT_EQ(tracker.EstimateGraph(0x1111),
            mirror.Estimate(HotnessTracker::GraphKey(0x1111)));
  EXPECT_EQ(tracker.EstimateApp("bfs"),
            mirror.Estimate(HotnessTracker::AppKey("bfs")));
  EXPECT_GE(tracker.EstimateTenant("acme"), 6u);
  EXPECT_GE(tracker.EstimateGraph(0x2222), 3u);
  EXPECT_EQ(tracker.EstimateTenant("initech"), 0u);
  EXPECT_GE(tracker.UnbiasedGraph(0x1111), 4);  // unbiased, not one-sided

  std::vector<HotGraph> top = tracker.TopGraphs();
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].fingerprint, 0x1111u);
  EXPECT_GE(top[0].estimate, 5u);
  EXPECT_EQ(top[1].fingerprint, 0x2222u);
}

TEST(HotnessTracker, FirstTenantDetectsGenuinelyNewTenants) {
  HotnessTracker tracker;
  EXPECT_TRUE(tracker.Record("acme", 1, "sssp").first_tenant);
  EXPECT_FALSE(tracker.Record("acme", 1, "sssp").first_tenant);
  EXPECT_TRUE(tracker.Record("globex", 1, "sssp").first_tenant);
  EXPECT_FALSE(tracker.Record("globex", 2, "bfs").first_tenant);
}

TEST(HotnessTracker, DecayHalvesAllStructuresTogether) {
  HotnessOptions opt;
  opt.decay_interval = 10;
  HotnessTracker tracker(opt);
  for (int i = 0; i < 10; ++i) tracker.Record("acme", 0xabc, "sssp");
  EXPECT_EQ(tracker.Decays(), 1u);
  EXPECT_EQ(tracker.EstimateGraph(0xabc), 5u);
  EXPECT_EQ(tracker.EstimateTenant("acme"), 5u);
  std::vector<HotGraph> top = tracker.TopGraphs();
  ASSERT_EQ(top.size(), 1u);
  // The heap decayed in the same step as the count-min, so the listed
  // estimate agrees with the point estimate instead of lagging 2x high.
  EXPECT_EQ(top[0].estimate, 5u);
}

TEST(HotnessTracker, GeometryKnobsAreHonored) {
  HotnessOptions opt;
  opt.sketch.width = 128;
  opt.sketch.depth = 3;
  opt.topk = 2;
  HotnessTracker tracker(opt);
  EXPECT_EQ(tracker.SketchWidth(), 128u);
  EXPECT_EQ(tracker.SketchDepth(), 3u);
  EXPECT_EQ(tracker.TopKCapacity(), 2u);
  tracker.Record("t", 1, "a");
  tracker.Record("t", 2, "a");
  tracker.Record("t", 2, "a");
  tracker.Record("t", 3, "a");
  tracker.Record("t", 3, "a");
  tracker.Record("t", 3, "a");
  std::vector<HotGraph> top = tracker.TopGraphs();
  ASSERT_EQ(top.size(), 2u);  // capacity 2: fingerprint 1 evicted
  EXPECT_EQ(top[0].fingerprint, 3u);
  EXPECT_EQ(top[1].fingerprint, 2u);
}

}  // namespace
}  // namespace slfe
