// Tests for the distributed engine layer: DistGraph mirror accounting,
// mode selection, activation semantics, counters, the transition
// reactivation rules, and communication accounting.

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "slfe/engine/atomic_ops.h"
#include "slfe/engine/dist_engine.h"
#include "slfe/engine/dist_graph.h"
#include "slfe/graph/generators.h"
#include "slfe/sim/cluster.h"

namespace slfe {
namespace {

// ------------------------------------------------------------ AtomicOps

TEST(AtomicOpsTest, AtomicMinOnlyDecreases) {
  float x = 10.0f;
  EXPECT_TRUE(AtomicMin(&x, 5.0f));
  EXPECT_EQ(x, 5.0f);
  EXPECT_FALSE(AtomicMin(&x, 7.0f));
  EXPECT_EQ(x, 5.0f);
  EXPECT_FALSE(AtomicMin(&x, 5.0f));  // equal is not an improvement
}

TEST(AtomicOpsTest, AtomicMaxOnlyIncreases) {
  uint32_t x = 3;
  EXPECT_TRUE(AtomicMax(&x, 9u));
  EXPECT_FALSE(AtomicMax(&x, 4u));
  EXPECT_EQ(x, 9u);
}

TEST(AtomicOpsTest, AtomicAddFloatUnderContention) {
  double total = 0;
  ThreadPool pool(4);
  pool.ParallelRun([&](size_t) {
    for (int i = 0; i < 1000; ++i) AtomicAdd(&total, 1.0);
  });
  EXPECT_DOUBLE_EQ(total, 4000.0);
}

TEST(AtomicOpsTest, AtomicMinUnderContentionKeepsMinimum) {
  float x = std::numeric_limits<float>::infinity();
  ThreadPool pool(4);
  pool.ParallelRun([&](size_t w) {
    for (int i = 1000; i > 0; --i) {
      AtomicMin(&x, static_cast<float>(i + static_cast<int>(w)));
    }
  });
  EXPECT_EQ(x, 1.0f);
}

// ------------------------------------------------------------- DistGraph

TEST(DistGraphTest, SingleNodeHasNoMirrors) {
  Graph g = Graph::FromEdges(GenerateErdosRenyi(100, 500, 3));
  DistGraph dg = DistGraph::Build(g, 1);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(dg.MirrorNodeCount(v), 0);
  }
}

TEST(DistGraphTest, MirrorCountBounds) {
  Graph g = Graph::FromEdges(GenerateErdosRenyi(256, 2000, 4));
  int nodes = 4;
  DistGraph dg = DistGraph::Build(g, nodes);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_LE(dg.MirrorNodeCount(v), nodes - 1);
    // A vertex with out-degree 0 has no mirrors.
    if (g.out_degree(v) == 0) EXPECT_EQ(dg.MirrorNodeCount(v), 0);
  }
}

TEST(DistGraphTest, ChainMirrorsOnlyAtBoundaries) {
  // In a chain partitioned into contiguous ranges, only the last vertex of
  // each range has a remote successor.
  Graph g = Graph::FromEdges(GenerateChain(100));
  DistGraph dg = DistGraph::Build(g, 4);
  int mirrored = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (dg.MirrorNodeCount(v) > 0) ++mirrored;
  }
  EXPECT_LE(mirrored, 3);  // at most one per internal boundary
}

TEST(DistGraphTest, NodeEdgeTotalsSumToGraph) {
  Graph g = Graph::FromEdges(GenerateErdosRenyi(300, 2500, 5));
  DistGraph dg = DistGraph::Build(g, 5);
  EdgeId out_total = 0, in_total = 0;
  for (int p = 0; p < dg.num_nodes(); ++p) {
    out_total += dg.NodeOutEdges(p);
    in_total += dg.NodeInEdges(p);
  }
  EXPECT_EQ(out_total, g.num_edges());
  EXPECT_EQ(in_total, g.num_edges());
}

TEST(DistGraphTest, OwnerLookupConsistentWithRanges) {
  Graph g = Graph::FromEdges(GenerateErdosRenyi(200, 1000, 9));
  DistGraph dg = DistGraph::Build(g, 3);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    int owner = dg.OwnerOf(v);
    EXPECT_TRUE(dg.range(owner).Contains(v));
  }
}

// ------------------------------------------------------------ DistEngine

// Minimal BFS over the engine to exercise collectives deterministically.
struct EngineHarness {
  explicit EngineHarness(const Graph& graph, int nodes, int threads,
                         EngineOptions options = {})
      : dg(DistGraph::Build(graph, nodes)),
        engine(dg, options),
        cluster(nodes, threads) {}

  DistGraph dg;
  DistEngine<uint32_t> engine;
  sim::Cluster cluster;
};

TEST(DistEngineTest, BfsViaProcessEdges) {
  Graph g = Graph::FromEdges(GenerateGrid(10, 10));
  EngineHarness h(g, 4, 1);
  std::vector<uint32_t> level(g.num_vertices(), UINT32_MAX);
  level[0] = 0;

  h.cluster.Run([&](sim::NodeContext& ctx) {
    h.engine.BeginRun(ctx);
    h.engine.ActivateSeed(ctx, 0);
    uint64_t active = h.engine.PromoteActiveSet(ctx);
    while (active > 0) {
      active = h.engine.ProcessEdges(
          ctx, UINT32_MAX,
          [&level](uint32_t acc, VertexId src, Weight) {
            uint32_t lv = AtomicLoad(&level[src]);
            return lv == UINT32_MAX ? acc : std::min(acc, lv + 1);
          },
          [&level](VertexId dst, uint32_t acc) {
            if (acc < level[dst]) {
              level[dst] = acc;
              return true;
            }
            return false;
          },
          [&level](VertexId src, VertexId dst, Weight) {
            uint32_t lv = AtomicLoad(&level[src]);
            if (lv == UINT32_MAX) return false;
            return AtomicMin(&level[dst], lv + 1);
          });
    }
    h.engine.FinishRun(ctx);
  });
  // Grid BFS levels = Manhattan distance from corner (0,0).
  for (VertexId r = 0; r < 10; ++r) {
    for (VertexId c = 0; c < 10; ++c) {
      EXPECT_EQ(level[r * 10 + c], r + c) << "r=" << r << " c=" << c;
    }
  }
}

TEST(DistEngineTest, AlwaysPushPolicyNeverPulls) {
  Graph g = Graph::FromEdges(GenerateChain(40));
  EngineOptions opt;
  opt.mode_policy = ModePolicy::kAlwaysPush;
  EngineHarness h(g, 2, 1, opt);
  std::vector<uint32_t> level(g.num_vertices(), UINT32_MAX);
  level[0] = 0;
  h.cluster.Run([&](sim::NodeContext& ctx) {
    h.engine.BeginRun(ctx);
    h.engine.ActivateSeed(ctx, 0);
    uint64_t active = h.engine.PromoteActiveSet(ctx);
    while (active > 0) {
      active = h.engine.ProcessEdges(
          ctx, UINT32_MAX, nullptr, nullptr,
          [&level](VertexId src, VertexId dst, Weight) {
            return AtomicMin(&level[dst], AtomicLoad(&level[src]) + 1);
          });
    }
    h.engine.FinishRun(ctx);
  });
  for (Mode m : h.engine.stats().per_iter_mode) {
    EXPECT_EQ(m, Mode::kPush);
  }
  EXPECT_EQ(level[39], 39u);
}

TEST(DistEngineTest, AlwaysPullPolicyNeverPushes) {
  Graph g = Graph::FromEdges(GenerateChain(10));
  EngineOptions opt;
  opt.mode_policy = ModePolicy::kAlwaysPull;
  EngineHarness h(g, 1, 1, opt);
  std::vector<uint32_t> level(g.num_vertices(), UINT32_MAX);
  level[0] = 0;
  h.cluster.Run([&](sim::NodeContext& ctx) {
    h.engine.BeginRun(ctx);
    h.engine.ActivateSeed(ctx, 0);
    uint64_t active = h.engine.PromoteActiveSet(ctx);
    while (active > 0) {
      active = h.engine.ProcessEdges(
          ctx, UINT32_MAX,
          [&level](uint32_t acc, VertexId src, Weight) {
            uint32_t lv = AtomicLoad(&level[src]);
            return lv == UINT32_MAX ? acc : std::min(acc, lv + 1);
          },
          [&level](VertexId dst, uint32_t acc) {
            if (acc < level[dst]) {
              level[dst] = acc;
              return true;
            }
            return false;
          },
          nullptr);
    }
    h.engine.FinishRun(ctx);
  });
  for (Mode m : h.engine.stats().per_iter_mode) {
    EXPECT_EQ(m, Mode::kPull);
  }
  EXPECT_EQ(level[9], 9u);
}

TEST(DistEngineTest, AdaptiveSwitchesWithFrontierSize) {
  // Star graph: first superstep (hub active) covers all edges -> pull;
  // once only leaves are active with tiny out-degree -> push.
  Graph g = Graph::FromEdges(GenerateStar(2000));
  EngineOptions opt;
  opt.dense_fraction = 0.05;
  EngineHarness h(g, 1, 1, opt);
  std::vector<uint32_t> level(g.num_vertices(), UINT32_MAX);
  level[0] = 0;
  h.cluster.Run([&](sim::NodeContext& ctx) {
    h.engine.BeginRun(ctx);
    h.engine.ActivateSeed(ctx, 0);
    uint64_t active = h.engine.PromoteActiveSet(ctx);
    while (active > 0) {
      active = h.engine.ProcessEdges(
          ctx, UINT32_MAX,
          [&level](uint32_t acc, VertexId src, Weight) {
            uint32_t lv = AtomicLoad(&level[src]);
            return lv == UINT32_MAX ? acc : std::min(acc, lv + 1);
          },
          [&level](VertexId dst, uint32_t acc) {
            if (acc < level[dst]) {
              level[dst] = acc;
              return true;
            }
            return false;
          },
          [&level](VertexId src, VertexId dst, Weight) {
            uint32_t lv = AtomicLoad(&level[src]);
            if (lv == UINT32_MAX) return false;
            return AtomicMin(&level[dst], lv + 1);
          });
    }
    h.engine.FinishRun(ctx);
  });
  const auto& modes = h.engine.stats().per_iter_mode;
  ASSERT_GE(modes.size(), 2u);
  // Hub active: 2000 of 4000 edges -> dense/pull. Leaves active next: 2000
  // out-edges is still above |E|/20 -> pull again.
  EXPECT_EQ(modes[0], Mode::kPull);
  EXPECT_EQ(modes[1], Mode::kPull);

  // A single-vertex frontier (chain) must stay sparse/push throughout.
  Graph chain = Graph::FromEdges(GenerateChain(60));
  EngineHarness hc(chain, 2, 1);
  std::vector<uint32_t> clevel(chain.num_vertices(), UINT32_MAX);
  clevel[0] = 0;
  hc.cluster.Run([&](sim::NodeContext& ctx) {
    hc.engine.BeginRun(ctx);
    hc.engine.ActivateSeed(ctx, 0);
    uint64_t active = hc.engine.PromoteActiveSet(ctx);
    while (active > 0) {
      active = hc.engine.ProcessEdges(
          ctx, UINT32_MAX, nullptr, nullptr,
          [&clevel](VertexId src, VertexId dst, Weight) {
            return AtomicMin(&clevel[dst], AtomicLoad(&clevel[src]) + 1);
          });
    }
    hc.engine.FinishRun(ctx);
  });
  for (Mode m : hc.engine.stats().per_iter_mode) EXPECT_EQ(m, Mode::kPush);
  EXPECT_EQ(clevel[59], 59u);
}

TEST(DistEngineTest, CommBytesZeroOnSingleNode) {
  Graph g = Graph::FromEdges(GenerateGrid(8, 8, true));
  EngineHarness h(g, 1, 1);
  std::vector<uint32_t> lv(g.num_vertices(), UINT32_MAX);
  lv[0] = 0;
  h.cluster.Run([&](sim::NodeContext& ctx) {
    h.engine.BeginRun(ctx);
    h.engine.ActivateSeed(ctx, 0);
    uint64_t active = h.engine.PromoteActiveSet(ctx);
    while (active > 0) {
      active = h.engine.ProcessEdges(
          ctx, UINT32_MAX,
          [&lv](uint32_t acc, VertexId src, Weight) {
            uint32_t s = AtomicLoad(&lv[src]);
            return s == UINT32_MAX ? acc : std::min(acc, s + 1);
          },
          [&lv](VertexId dst, uint32_t acc) {
            if (acc < lv[dst]) {
              lv[dst] = acc;
              return true;
            }
            return false;
          },
          [&lv](VertexId src, VertexId dst, Weight) {
            uint32_t s = AtomicLoad(&lv[src]);
            if (s == UINT32_MAX) return false;
            return AtomicMin(&lv[dst], s + 1);
          });
    }
    h.engine.FinishRun(ctx);
  });
  EXPECT_EQ(h.engine.stats().bytes, 0u);
  EXPECT_EQ(h.engine.stats().comm_seconds, 0.0);
}

TEST(DistEngineTest, CommBytesGrowWithNodeCount) {
  Graph g = Graph::FromEdges(GenerateErdosRenyi(512, 4000, 11, true));
  uint64_t bytes_prev = 0;
  for (int nodes : {2, 8}) {
    EngineHarness h(g, nodes, 1);
    std::vector<float> dist(g.num_vertices(),
                            std::numeric_limits<float>::infinity());
    dist[0] = 0;
    h.cluster.Run([&](sim::NodeContext& ctx) {
      h.engine.BeginRun(ctx);
      h.engine.ActivateSeed(ctx, 0);
      uint64_t active = h.engine.PromoteActiveSet(ctx);
      while (active > 0) {
        active = h.engine.ProcessEdges(
            ctx, std::numeric_limits<float>::infinity(),
            [&dist](float acc, VertexId src, Weight w) {
              return std::min(acc, AtomicLoad(&dist[src]) + w);
            },
            [&dist](VertexId dst, float acc) {
              if (acc < dist[dst]) {
                dist[dst] = acc;
                return true;
              }
              return false;
            },
            [&dist](VertexId src, VertexId dst, Weight w) {
              return AtomicMin(&dist[dst], AtomicLoad(&dist[src]) + w);
            });
      }
      h.engine.FinishRun(ctx);
    });
    EXPECT_GT(h.engine.stats().bytes, bytes_prev);
    bytes_prev = h.engine.stats().bytes;
  }
}

TEST(DistEngineTest, ProcessVerticesReducesSum) {
  Graph g = Graph::FromEdges(GenerateChain(100));
  EngineHarness h(g, 4, 2);
  double result = 0;
  h.cluster.Run([&](sim::NodeContext& ctx) {
    h.engine.BeginRun(ctx);
    double r = h.engine.ProcessVertices(
        ctx, [](VertexId v) { return static_cast<double>(v); });
    if (ctx.rank == 0) result = r;
    h.engine.FinishRun(ctx);
  });
  EXPECT_DOUBLE_EQ(result, 99.0 * 100.0 / 2.0);
}

TEST(DistEngineTest, PerIterationTraceMatchesTotals) {
  Graph g = Graph::FromEdges(GenerateGrid(12, 12, true));
  EngineHarness h(g, 2, 1);
  std::vector<float> dist(g.num_vertices(),
                          std::numeric_limits<float>::infinity());
  dist[0] = 0;
  h.cluster.Run([&](sim::NodeContext& ctx) {
    h.engine.BeginRun(ctx);
    h.engine.ActivateSeed(ctx, 0);
    uint64_t active = h.engine.PromoteActiveSet(ctx);
    while (active > 0) {
      active = h.engine.ProcessEdges(
          ctx, std::numeric_limits<float>::infinity(),
          [&dist](float acc, VertexId src, Weight w) {
            return std::min(acc, AtomicLoad(&dist[src]) + w);
          },
          [&dist](VertexId dst, float acc) {
            if (acc < dist[dst]) {
              dist[dst] = acc;
              return true;
            }
            return false;
          },
          [&dist](VertexId src, VertexId dst, Weight w) {
            return AtomicMin(&dist[dst], AtomicLoad(&dist[src]) + w);
          });
    }
    h.engine.FinishRun(ctx);
  });
  const EngineStats& stats = h.engine.stats();
  uint64_t trace_total = 0;
  for (uint64_t c : stats.per_iter_computations) trace_total += c;
  EXPECT_EQ(trace_total, stats.computations);
  EXPECT_EQ(stats.per_iter_computations.size(), stats.iterations);
  EXPECT_EQ(stats.per_iter_mode.size(), stats.iterations);
}

}  // namespace
}  // namespace slfe
