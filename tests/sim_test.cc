// Unit tests for the simulated cluster runtime: message passing,
// barriers, collectives, traffic accounting, and the cost model.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <vector>

#include "slfe/sim/cluster.h"
#include "slfe/sim/comm.h"

namespace slfe::sim {
namespace {

TEST(CostModelTest, LatencyAndBandwidthTerms) {
  CostModel model;
  model.latency_per_message = 1e-6;
  model.bytes_per_second = 1e9;
  // 1000 messages of 1e6 bytes total: 1ms latency + 1ms transfer.
  EXPECT_DOUBLE_EQ(model.Cost(1000, 1000000), 1e-3 + 1e-3);
  EXPECT_DOUBLE_EQ(model.Cost(0, 0), 0.0);
}

TEST(WorldTest, SendRecvDeliversPayload) {
  World world(2);
  uint32_t data = 0xabcd1234;
  world.Send(0, 1, &data, sizeof(data));
  auto messages = world.Recv(1);
  ASSERT_EQ(messages.size(), 1u);
  EXPECT_EQ(messages[0].src_node, 0);
  uint32_t got;
  std::memcpy(&got, messages[0].payload.data(), sizeof(got));
  EXPECT_EQ(got, data);
  // Mailbox drained.
  EXPECT_TRUE(world.Recv(1).empty());
}

TEST(WorldTest, TrafficCountsExcludeLoopback) {
  World world(2);
  int x = 7;
  world.Send(0, 0, &x, sizeof(x));  // loopback: free
  world.Send(0, 1, &x, sizeof(x));
  EXPECT_EQ(world.TotalMessages(), 1u);
  EXPECT_EQ(world.TotalBytes(), sizeof(x));
  EXPECT_EQ(world.NodeMessages(0), 1u);
  EXPECT_EQ(world.NodeBytes(0), sizeof(x));
  world.ResetTraffic();
  EXPECT_EQ(world.TotalMessages(), 0u);
}

TEST(ClusterTest, RunInvokesEveryRankOnce) {
  Cluster cluster(4);
  std::atomic<uint64_t> mask{0};
  cluster.Run([&](NodeContext& ctx) {
    EXPECT_EQ(ctx.num_nodes, 4);
    mask.fetch_or(1ull << ctx.rank);
  });
  EXPECT_EQ(mask.load(), 0b1111u);
}

TEST(ClusterTest, BarrierSynchronizesPhases) {
  // Every rank increments a counter, barriers, then checks that all
  // increments are visible — repeated across many phases to catch
  // sense-reversal bugs.
  constexpr int kRanks = 4;
  constexpr int kPhases = 50;
  Cluster cluster(kRanks);
  std::atomic<int> counter{0};
  std::atomic<int> failures{0};
  cluster.Run([&](NodeContext& ctx) {
    for (int phase = 1; phase <= kPhases; ++phase) {
      counter.fetch_add(1);
      ctx.world->Barrier();
      if (counter.load() < phase * kRanks) failures.fetch_add(1);
      ctx.world->Barrier();
    }
  });
  EXPECT_EQ(failures.load(), 0);
}

TEST(ClusterTest, AllReduceSumAcrossRanks) {
  Cluster cluster(5);
  std::vector<uint64_t> results(5);
  cluster.Run([&](NodeContext& ctx) {
    results[ctx.rank] =
        ctx.world->AllReduceSum(ctx.rank, static_cast<uint64_t>(ctx.rank + 1));
  });
  for (uint64_t r : results) EXPECT_EQ(r, 15u);  // 1+2+3+4+5
}

TEST(ClusterTest, AllReduceSumRepeatedUsesCleanScratch) {
  Cluster cluster(3);
  std::atomic<int> failures{0};
  cluster.Run([&](NodeContext& ctx) {
    for (int round = 0; round < 20; ++round) {
      uint64_t sum = ctx.world->AllReduceSum(ctx.rank, 1);
      if (sum != 3) failures.fetch_add(1);
    }
  });
  EXPECT_EQ(failures.load(), 0);
}

TEST(ClusterTest, AllReduceMaxAndMin) {
  Cluster cluster(4);
  std::vector<double> maxes(4), mins(4);
  cluster.Run([&](NodeContext& ctx) {
    double mine = static_cast<double>(ctx.rank * 10);
    maxes[ctx.rank] = ctx.world->AllReduce(
        ctx.rank, mine, [](double a, double b) { return std::max(a, b); });
    mins[ctx.rank] = ctx.world->AllReduce(
        ctx.rank, mine, [](double a, double b) { return std::min(a, b); });
  });
  for (double m : maxes) EXPECT_DOUBLE_EQ(m, 30.0);
  for (double m : mins) EXPECT_DOUBLE_EQ(m, 0.0);
}

TEST(ClusterTest, AllToAllMessaging) {
  // Every rank sends its id to every other rank; after a barrier each rank
  // must find exactly num_nodes-1 messages with the senders' ids.
  constexpr int kRanks = 4;
  Cluster cluster(kRanks);
  std::atomic<int> failures{0};
  cluster.Run([&](NodeContext& ctx) {
    int id = ctx.rank;
    for (int dst = 0; dst < kRanks; ++dst) {
      if (dst != ctx.rank) ctx.world->Send(ctx.rank, dst, &id, sizeof(id));
    }
    ctx.world->Barrier();
    auto messages = ctx.world->Recv(ctx.rank);
    if (messages.size() != kRanks - 1) failures.fetch_add(1);
    uint64_t seen = 0;
    for (const Message& m : messages) {
      int sender;
      std::memcpy(&sender, m.payload.data(), sizeof(sender));
      if (sender != m.src_node) failures.fetch_add(1);
      seen |= 1ull << sender;
    }
    uint64_t want = ((1ull << kRanks) - 1) & ~(1ull << ctx.rank);
    if (seen != want) failures.fetch_add(1);
  });
  EXPECT_EQ(failures.load(), 0);
}

TEST(ClusterTest, PerNodePoolsAreIndependent) {
  Cluster cluster(2, /*threads_per_node=*/3);
  std::atomic<int> total{0};
  cluster.Run([&](NodeContext& ctx) {
    ctx.pool->ParallelRun([&](size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 6);
}

TEST(ClusterTest, SequentialRunsReuseWorld) {
  Cluster cluster(3);
  for (int i = 0; i < 3; ++i) {
    std::atomic<int> count{0};
    cluster.Run([&](NodeContext& ctx) {
      ctx.world->Barrier();
      count.fetch_add(1);
    });
    EXPECT_EQ(count.load(), 3);
  }
}

}  // namespace
}  // namespace slfe::sim
