// Unit tests for the common substrate: Status/Result, Bitmap, Random,
// ThreadPool, and the work-stealing scheduler.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "slfe/common/bitmap.h"
#include "slfe/common/counters.h"
#include "slfe/common/random.h"
#include "slfe/common/status.h"
#include "slfe/common/thread_pool.h"
#include "slfe/common/timer.h"
#include "slfe/common/work_stealing.h"

namespace slfe {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::IOError("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  EXPECT_EQ(s.message(), "disk on fire");
  EXPECT_EQ(s.ToString(), "IOError: disk on fire");
}

TEST(StatusTest, AllFactoryFunctionsSetDistinctCodes) {
  std::set<StatusCode> codes = {
      Status::InvalidArgument("x").code(), Status::NotFound("x").code(),
      Status::IOError("x").code(),         Status::OutOfRange("x").code(),
      Status::Corruption("x").code(),      Status::Unimplemented("x").code(),
      Status::Internal("x").code(),        Status::FailedPrecondition("x").code(),
  };
  EXPECT_EQ(codes.size(), 8u);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IOError("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r = std::vector<int>{1, 2, 3};
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UsesReturnMacro(int x) {
  SLFE_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(ResultTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(UsesReturnMacro(1).ok());
  EXPECT_EQ(UsesReturnMacro(-1).code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------- Bitmap

TEST(BitmapTest, StartsCleared) {
  Bitmap b(200);
  EXPECT_EQ(b.size(), 200u);
  EXPECT_EQ(b.CountOnes(), 0u);
  for (size_t i = 0; i < 200; ++i) EXPECT_FALSE(b.TestBit(i));
}

TEST(BitmapTest, SetAndTest) {
  Bitmap b(130);
  EXPECT_TRUE(b.SetBit(0));
  EXPECT_TRUE(b.SetBit(63));
  EXPECT_TRUE(b.SetBit(64));
  EXPECT_TRUE(b.SetBit(129));
  EXPECT_FALSE(b.SetBit(129));  // second set reports no change
  EXPECT_EQ(b.CountOnes(), 4u);
  EXPECT_TRUE(b.TestBit(63));
  EXPECT_TRUE(b.TestBit(64));
  EXPECT_FALSE(b.TestBit(1));
}

TEST(BitmapTest, ResetBit) {
  Bitmap b(100);
  b.SetBit(42);
  EXPECT_TRUE(b.ResetBit(42));
  EXPECT_FALSE(b.ResetBit(42));
  EXPECT_FALSE(b.TestBit(42));
}

TEST(BitmapTest, FillRespectsSize) {
  for (size_t size : {1u, 63u, 64u, 65u, 127u, 128u, 1000u}) {
    Bitmap b(size);
    b.Fill();
    EXPECT_EQ(b.CountOnes(), size) << "size=" << size;
  }
}

TEST(BitmapTest, ForEachSetBitVisitsAscending) {
  Bitmap b(300);
  std::vector<size_t> want = {0, 5, 63, 64, 128, 299};
  for (size_t i : want) b.SetBit(i);
  std::vector<size_t> got;
  b.ForEachSetBit([&](size_t i) { got.push_back(i); });
  EXPECT_EQ(got, want);
}

TEST(BitmapTest, ConcurrentSetsAreLossless) {
  constexpr size_t kBits = 1 << 14;
  Bitmap b(kBits);
  ThreadPool pool(4);
  pool.ParallelRun([&](size_t w) {
    for (size_t i = w; i < kBits; i += 4) b.SetBit(i);
  });
  EXPECT_EQ(b.CountOnes(), kBits);
}

TEST(BitmapTest, CopyIsDeep) {
  Bitmap a(64);
  a.SetBit(7);
  Bitmap b = a;
  b.SetBit(8);
  EXPECT_TRUE(a.TestBit(7));
  EXPECT_FALSE(a.TestBit(8));
  EXPECT_TRUE(b.TestBit(8));
}

// ---------------------------------------------------------------- Random

TEST(RandomTest, DeterministicForSameSeed) {
  Random a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, DifferentSeedsDiverge) {
  Random a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RandomTest, UniformInBounds) {
  Random rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(5);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, BernoulliRoughlyUnbiased) {
  Random rng(77);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

// ------------------------------------------------------------ ThreadPool

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  int count = 0;
  pool.ParallelRun([&](size_t w) {
    EXPECT_EQ(w, 0u);
    ++count;
  });
  EXPECT_EQ(count, 1);
}

TEST(ThreadPoolTest, AllWorkersInvoked) {
  ThreadPool pool(4);
  std::atomic<uint64_t> mask{0};
  pool.ParallelRun([&](size_t w) { mask.fetch_or(1ull << w); });
  EXPECT_EQ(mask.load(), 0b1111u);
}

TEST(ThreadPoolTest, RepeatedJobsWork) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int i = 0; i < 50; ++i) {
    pool.ParallelRun([&](size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 150);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(0, 1000, [&](size_t, size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(5, 5, [&](size_t, size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

// -------------------------------------------------- WorkStealingScheduler

class WorkStealingParamTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, bool>> {};

TEST_P(WorkStealingParamTest, EveryElementProcessedExactlyOnce) {
  auto [threads, elements, stealing] = GetParam();
  ThreadPool pool(threads);
  WorkStealingScheduler scheduler(stealing);
  std::vector<std::atomic<int>> hits(elements);
  auto chunks = scheduler.Run(pool, 0, elements,
                              [&](size_t, size_t lo, size_t hi) {
                                for (size_t i = lo; i < hi; ++i) {
                                  hits[i].fetch_add(1);
                                }
                              });
  for (size_t i = 0; i < elements; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "element " << i;
  }
  uint64_t total_chunks = 0;
  for (uint64_t c : chunks) total_chunks += c;
  EXPECT_EQ(total_chunks,
            (elements + WorkStealingScheduler::kMiniChunk - 1) /
                WorkStealingScheduler::kMiniChunk);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WorkStealingParamTest,
    ::testing::Combine(::testing::Values(1, 2, 4, 8),
                       ::testing::Values(0, 1, 255, 256, 257, 10000),
                       ::testing::Bool()));

TEST(WorkStealingTest, MiniChunkKnobChangesGranularityNotCoverage) {
  // The tunable granularity (ROADMAP multicore-crossover knob) must change
  // only how work is chopped, never what gets processed.
  ThreadPool pool(3);
  for (size_t mini : {size_t{1}, size_t{7}, size_t{256}, size_t{1024}}) {
    WorkStealingScheduler scheduler(true, mini);
    EXPECT_EQ(scheduler.mini_chunk(), mini);
    constexpr size_t kElements = 1000;
    std::vector<std::atomic<int>> hits(kElements);
    auto chunks = scheduler.Run(pool, 0, kElements,
                                [&](size_t, size_t lo, size_t hi) {
                                  for (size_t i = lo; i < hi; ++i) {
                                    hits[i].fetch_add(1);
                                  }
                                });
    for (size_t i = 0; i < kElements; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "mini=" << mini << " element " << i;
    }
    uint64_t total = 0;
    for (uint64_t c : chunks) total += c;
    EXPECT_EQ(total, (kElements + mini - 1) / mini) << "mini=" << mini;
  }
}

TEST(WorkStealingTest, MiniChunkZeroFallsBackToDefault) {
  WorkStealingScheduler scheduler(true, 0);
  EXPECT_EQ(scheduler.mini_chunk(), WorkStealingScheduler::kMiniChunk);
  scheduler.set_mini_chunk(32);
  EXPECT_EQ(scheduler.mini_chunk(), 32u);
  scheduler.set_mini_chunk(0);
  EXPECT_EQ(scheduler.mini_chunk(), WorkStealingScheduler::kMiniChunk);
}

TEST(WorkStealingTest, RunBandsHonorsMiniChunk) {
  ThreadPool pool(4);
  WorkStealingScheduler scheduler(true, 16);
  std::vector<size_t> sizes = {40, 0, 17, 300};
  std::vector<std::vector<std::atomic<int>>> hits;
  for (size_t s : sizes) hits.emplace_back(s);
  auto chunks = scheduler.RunBands(
      pool, sizes, [&](size_t, size_t band, size_t lo, size_t hi) {
        EXPECT_LE(hi - lo, 16u);
        for (size_t i = lo; i < hi; ++i) hits[band][i].fetch_add(1);
      });
  uint64_t total = 0;
  for (uint64_t c : chunks) total += c;
  uint64_t want_chunks = 0;
  for (size_t b = 0; b < sizes.size(); ++b) {
    want_chunks += (sizes[b] + 15) / 16;
    for (size_t i = 0; i < sizes[b]; ++i) {
      ASSERT_EQ(hits[b][i].load(), 1) << "band " << b << " item " << i;
    }
  }
  EXPECT_EQ(total, want_chunks);
}

TEST(WorkStealingTest, StealingRebalancesSkewedWork) {
  // Worker 0's band gets all the heavy chunks; with stealing enabled the
  // other workers should take over some of them.
  ThreadPool pool(4);
  WorkStealingScheduler scheduler(true);
  auto chunks = scheduler.Run(pool, 0, 4096, [&](size_t w, size_t lo, size_t) {
    if (w == 0 && lo < 1024) {
      // Simulated heavy chunk: burn some cycles.
      volatile uint64_t x = 0;
      for (int i = 0; i < 200000; ++i) x += i;
    }
  });
  uint64_t total = 0;
  for (uint64_t c : chunks) total += c;
  EXPECT_EQ(total, 16u);  // 4096 / 256
}

// ---------------------------------------------------------------- Timer

TEST(TimerTest, AccumTimerSumsIntervals) {
  AccumTimer t;
  t.Start();
  t.Stop();
  double first = t.Seconds();
  t.Start();
  t.Stop();
  EXPECT_GE(t.Seconds(), first);
  t.Reset();
  EXPECT_EQ(t.Seconds(), 0.0);
}

TEST(CountersTest, WorkMetricsResetClearsAll) {
  WorkMetrics m;
  m.computations.Add(5);
  m.updates.Add(2);
  m.bytes.Add(100);
  m.Reset();
  EXPECT_EQ(m.computations.Get(), 0u);
  EXPECT_EQ(m.updates.Get(), 0u);
  EXPECT_EQ(m.bytes.Get(), 0u);
}

TEST(CountersTest, IterationTraceAccumulates) {
  IterationTrace trace;
  trace.Record(10);
  trace.Record(20);
  EXPECT_EQ(trace.Total(), 30u);
  EXPECT_EQ(trace.series().size(), 2u);
  trace.Clear();
  EXPECT_EQ(trace.Total(), 0u);
}

}  // namespace
}  // namespace slfe
