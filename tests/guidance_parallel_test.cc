// Equivalence tests for the frontier-parallel guidance generator: on every
// graph family (chain, star, random, cycle-bound, grid, islands) and for
// every worker count / direction policy, GenerateParallel must produce
// exactly the serial reference's last_iter / visited / depth.

#include <gtest/gtest.h>

#include <vector>

#include "slfe/common/thread_pool.h"
#include "slfe/core/roots.h"
#include "slfe/core/rr_guidance.h"
#include "slfe/graph/generators.h"

namespace slfe {
namespace {

void ExpectSameGuidance(const RRGuidance& want, const RRGuidance& got,
                        const char* label) {
  ASSERT_EQ(want.num_vertices(), got.num_vertices()) << label;
  EXPECT_EQ(want.depth(), got.depth()) << label;
  for (VertexId v = 0; v < want.num_vertices(); ++v) {
    ASSERT_EQ(want.last_iter(v), got.last_iter(v))
        << label << " last_iter mismatch at v=" << v;
    ASSERT_EQ(want.visited(v), got.visited(v))
        << label << " visited mismatch at v=" << v;
  }
}

/// Checks serial == parallel for 2..4 workers and for both forced
/// directions (always-dense, always-sparse) plus the adaptive default.
void CheckParallelEquivalence(const Graph& g,
                              const std::vector<VertexId>& roots,
                              const char* label) {
  RRGuidance serial = RRGuidance::GenerateSerial(g, roots);
  for (size_t workers : {2u, 3u, 4u}) {
    ThreadPool pool(workers);
    ExpectSameGuidance(serial, RRGuidance::GenerateParallel(g, roots, pool),
                       label);
    // dense_fraction 0 forces pull every iteration; a huge fraction forces
    // push — both must match the reference independently of the heuristic.
    ExpectSameGuidance(
        serial, RRGuidance::GenerateParallel(g, roots, pool, 0.0), label);
    ExpectSameGuidance(
        serial, RRGuidance::GenerateParallel(g, roots, pool, 1e18), label);
  }
  // The Generate dispatcher with a pool takes the parallel path.
  ThreadPool pool(4);
  ExpectSameGuidance(serial, RRGuidance::Generate(g, roots, &pool), label);
}

TEST(GuidanceParallelTest, Chain) {
  Graph g = Graph::FromEdges(GenerateChain(64));
  CheckParallelEquivalence(g, {0}, "chain");
  CheckParallelEquivalence(g, {10, 40}, "chain multi-root");
}

TEST(GuidanceParallelTest, Star) {
  Graph g = Graph::FromEdges(GenerateStar(32));
  CheckParallelEquivalence(g, {0}, "star hub");
  CheckParallelEquivalence(g, {5}, "star spoke");
}

TEST(GuidanceParallelTest, RandomRmat) {
  RmatOptions opt;
  opt.num_vertices = 512;
  opt.num_edges = 3000;
  Graph g = Graph::FromEdges(GenerateRmat(opt));
  CheckParallelEquivalence(g, {0}, "rmat single root");
  CheckParallelEquivalence(g, {0, 17, 99, 300}, "rmat multi root");
  CheckParallelEquivalence(g, SelectSourceRoots(g), "rmat source roots");
}

TEST(GuidanceParallelTest, CycleBound) {
  // Directed ring: no zero-in-degree vertex, maximal propagation depth.
  EdgeList e(48);
  for (VertexId v = 0; v < 48; ++v) e.Add(v, (v + 1) % 48);
  Graph g = Graph::FromEdges(e);
  CheckParallelEquivalence(g, {0}, "cycle");
  CheckParallelEquivalence(g, SelectSourceRoots(g), "cycle fallback root");
}

TEST(GuidanceParallelTest, Grid) {
  Graph g = Graph::FromEdges(GenerateGrid(12, 13));
  CheckParallelEquivalence(g, {0}, "grid");
}

TEST(GuidanceParallelTest, DisconnectedIslands) {
  EdgeList e(10);
  e.Add(0, 1);
  e.Add(1, 2);
  e.Add(5, 6);  // island unreachable from 0
  e.Add(6, 7);
  Graph g = Graph::FromEdges(e);
  CheckParallelEquivalence(g, {0}, "islands from 0");
  CheckParallelEquivalence(g, {0, 5}, "islands both");
}

TEST(GuidanceParallelTest, EmptyRootsAndEmptyGraph) {
  Graph g = Graph::FromEdges(GenerateChain(8));
  CheckParallelEquivalence(g, {}, "empty roots");
  Graph empty;
  ThreadPool pool(2);
  RRGuidance rrg = RRGuidance::GenerateParallel(empty, {}, pool);
  EXPECT_EQ(rrg.num_vertices(), 0u);
  EXPECT_EQ(rrg.depth(), 0u);
}

TEST(GuidanceParallelTest, DuplicateRootsDedup) {
  Graph g = Graph::FromEdges(GenerateChain(16));
  CheckParallelEquivalence(g, {3, 3, 3, 0, 0}, "duplicate roots");
}

TEST(GuidanceParallelTest, SingleWorkerPoolFallsBackToSerial) {
  Graph g = Graph::FromEdges(GenerateChain(16));
  ThreadPool pool(1);
  // The dispatcher routes 1-worker pools to the serial reference.
  RRGuidance via_dispatch = RRGuidance::Generate(g, {0}, &pool);
  ExpectSameGuidance(RRGuidance::GenerateSerial(g, {0}), via_dispatch,
                     "single worker");
}

TEST(GuidanceParallelTest, GenerateAllRootsParallelMatchesSerial) {
  RmatOptions opt;
  opt.num_vertices = 256;
  opt.num_edges = 1400;
  opt.seed = 11;
  Graph g = Graph::FromEdges(GenerateRmat(opt));
  ThreadPool pool(4);
  ExpectSameGuidance(RRGuidance::GenerateAllRoots(g),
                     RRGuidance::GenerateAllRoots(g, &pool), "all roots");
}

}  // namespace
}  // namespace slfe
