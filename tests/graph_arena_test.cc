// Tests for the mmap-backed graph arena: bit-identical CSR round-trips
// under both codecs, rejection of every torn/corrupted/mislabeled file
// (an error Status, never a partial graph), and the serving properties
// the warm-restart path depends on — concurrent Sessions mapping one
// arena, and mapped graphs producing the same guided results as parsed
// ones.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "slfe/api/session.h"
#include "slfe/engine/dist_graph.h"
#include "slfe/graph/arena.h"
#include "slfe/graph/generators.h"
#include "slfe/graph/graph.h"

namespace slfe {
namespace {

std::string ArenaPath(const std::string& name) {
  return ::testing::TempDir() + name + ".sga";
}

std::vector<unsigned char> ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::vector<unsigned char> bytes;
  unsigned char buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + got);
  }
  std::fclose(f);
  return bytes;
}

void WriteFile(const std::string& path,
               const std::vector<unsigned char>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

/// Patches the in-file header through `mutate` and re-seals the header
/// checksum, so the test reaches the validation stage it targets instead
/// of tripping the checksum first.
void PatchHeader(std::vector<unsigned char>& bytes,
                 void (*mutate)(ArenaHeader&)) {
  ASSERT_GE(bytes.size(), sizeof(ArenaHeader));
  ArenaHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  mutate(header);
  header.header_checksum = ArenaHeaderChecksum(header);
  std::memcpy(bytes.data(), &header, sizeof(header));
}

/// A weighted directed test graph with irregular degrees (star + chain +
/// random edges), so rows of every shape cross the codecs.
Graph TestGraph() {
  EdgeList edges = GenerateErdosRenyi(/*num_vertices=*/200, /*num_edges=*/900,
                                      /*seed=*/7, /*weighted=*/true);
  return Graph::FromEdges(edges);
}

/// Plane-by-plane bit comparison between a built graph and its mapped
/// twin (both CSR directions: offsets, neighbors, weights).
void ExpectSameCsr(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  const Csr* lhs[2] = {&a.out(), &a.in()};
  const Csr* rhs[2] = {&b.out(), &b.in()};
  for (int d = 0; d < 2; ++d) {
    auto ao = lhs[d]->offsets();
    auto bo = rhs[d]->offsets();
    ASSERT_EQ(ao.size(), bo.size());
    EXPECT_EQ(std::memcmp(ao.data(), bo.data(), ao.size() * sizeof(EdgeId)),
              0);
    auto an = lhs[d]->neighbors();
    auto bn = rhs[d]->neighbors();
    ASSERT_EQ(an.size(), bn.size());
    EXPECT_EQ(std::memcmp(an.data(), bn.data(), an.size() * sizeof(VertexId)),
              0);
    auto aw = lhs[d]->weights();
    auto bw = rhs[d]->weights();
    ASSERT_EQ(aw.size(), bw.size());
    EXPECT_EQ(std::memcmp(aw.data(), bw.data(), aw.size() * sizeof(Weight)),
              0);
  }
}

TEST(GraphArena, RawRoundTripIsBitIdentical) {
  Graph graph = TestGraph();
  std::string path = ArenaPath("raw_roundtrip");
  ArenaBuildOptions build;
  build.num_nodes = 8;
  build.weighted = true;
  ASSERT_TRUE(GraphArena::Build(graph, path, build).ok());

  auto arena = GraphArena::Open(path);
  ASSERT_TRUE(arena.ok()) << arena.status().ToString();
  EXPECT_EQ(arena.value()->codec(), ArenaCodec::kRaw);
  EXPECT_EQ(arena.value()->num_nodes(), 8);
  EXPECT_TRUE(arena.value()->weighted());
  EXPECT_FALSE(arena.value()->symmetric());
  EXPECT_EQ(arena.value()->heap_bytes(), 0u);  // raw serves from the mapping
  ExpectSameCsr(graph, arena.value()->graph());

  // The persisted partition is exactly what a cold start would rebuild.
  std::vector<VertexRange> fresh = DistGraph::BuildRanges(graph, 8);
  const std::vector<VertexRange>& mapped = arena.value()->ranges();
  ASSERT_EQ(mapped.size(), fresh.size());
  EXPECT_EQ(std::memcmp(mapped.data(), fresh.data(),
                        fresh.size() * sizeof(VertexRange)),
            0);
  std::remove(path.c_str());
}

TEST(GraphArena, DeltaVarintRoundTripIsBitIdentical) {
  Graph graph = TestGraph();
  std::string raw_path = ArenaPath("varint_raw");
  std::string varint_path = ArenaPath("varint_roundtrip");
  ArenaBuildOptions build;
  build.num_nodes = 4;
  build.weighted = true;
  ASSERT_TRUE(GraphArena::Build(graph, raw_path, build).ok());
  build.codec = ArenaCodec::kDeltaVarint;
  ASSERT_TRUE(GraphArena::Build(graph, varint_path, build).ok());

  auto arena = GraphArena::Open(varint_path);
  ASSERT_TRUE(arena.ok()) << arena.status().ToString();
  EXPECT_EQ(arena.value()->codec(), ArenaCodec::kDeltaVarint);
  EXPECT_GT(arena.value()->heap_bytes(), 0u);  // decoded neighbor planes
  ExpectSameCsr(graph, arena.value()->graph());

  // The codec's reason to exist: smaller neighbor planes on disk.
  EXPECT_LT(ReadFile(varint_path).size(), ReadFile(raw_path).size());
  std::remove(raw_path.c_str());
  std::remove(varint_path.c_str());
}

TEST(GraphArena, SymmetrizedTraitsSurvive) {
  EdgeList edges = GenerateChain(40, /*weighted=*/true);
  edges.Symmetrize();
  edges.Deduplicate();
  Graph graph = Graph::FromEdges(edges);
  std::string path = ArenaPath("symmetric");
  ArenaBuildOptions build;
  build.symmetric = true;
  build.weighted = true;
  ASSERT_TRUE(GraphArena::Build(graph, path, build).ok());

  auto arena = GraphArena::Open(path);
  ASSERT_TRUE(arena.ok()) << arena.status().ToString();
  EXPECT_TRUE(arena.value()->symmetric());
  EXPECT_TRUE(arena.value()->weighted());
  ExpectSameCsr(graph, arena.value()->graph());
  std::remove(path.c_str());
}

TEST(GraphArena, MappedGraphOutlivesTheArenaHandle) {
  Graph graph = TestGraph();
  std::string path = ArenaPath("outlives");
  ASSERT_TRUE(GraphArena::Build(graph, path, {}).ok());

  Graph mapped;
  {
    auto arena = GraphArena::Open(path);
    ASSERT_TRUE(arena.ok());
    mapped = arena.value()->graph();
  }  // the arena handle dies here; the graph co-owns the mapping
  ExpectSameCsr(graph, mapped);
  std::remove(path.c_str());
}

TEST(GraphArena, MissingFileIsNotFound) {
  auto arena = GraphArena::Open(ArenaPath("never_written"));
  ASSERT_FALSE(arena.ok());
  EXPECT_EQ(arena.status().code(), StatusCode::kNotFound);
}

TEST(GraphArena, TruncationAnywhereIsRejected) {
  Graph graph = TestGraph();
  std::string path = ArenaPath("truncated");
  ASSERT_TRUE(GraphArena::Build(graph, path, {}).ok());
  std::vector<unsigned char> bytes = ReadFile(path);

  // Mid-header, just past the header, and mid-payload: every cut must be
  // caught by the size checks before any plane is trusted.
  for (size_t keep : {size_t{40}, sizeof(ArenaHeader) + 8, bytes.size() - 1}) {
    std::vector<unsigned char> cut(bytes.begin(), bytes.begin() + keep);
    WriteFile(path, cut);
    auto arena = GraphArena::Open(path);
    EXPECT_FALSE(arena.ok()) << "accepted a file truncated to " << keep;
  }
  std::remove(path.c_str());
}

TEST(GraphArena, PayloadCorruptionIsRejected) {
  Graph graph = TestGraph();
  std::string path = ArenaPath("corrupt_payload");
  ArenaBuildOptions build;
  build.weighted = true;
  ASSERT_TRUE(GraphArena::Build(graph, path, build).ok());
  std::vector<unsigned char> bytes = ReadFile(path);
  bytes[bytes.size() - 3] ^= 0x40;  // flip a bit deep in the payload
  WriteFile(path, bytes);

  auto arena = GraphArena::Open(path);
  ASSERT_FALSE(arena.ok());
  EXPECT_EQ(arena.status().code(), StatusCode::kCorruption);
}

TEST(GraphArena, HeaderTamperIsRejected) {
  Graph graph = TestGraph();
  std::string path = ArenaPath("corrupt_header");
  ASSERT_TRUE(GraphArena::Build(graph, path, {}).ok());
  std::vector<unsigned char> bytes = ReadFile(path);
  bytes[16] ^= 0x01;  // fingerprint field, header checksum NOT re-sealed
  WriteFile(path, bytes);

  auto arena = GraphArena::Open(path);
  ASSERT_FALSE(arena.ok());
  EXPECT_EQ(arena.status().code(), StatusCode::kCorruption);
}

TEST(GraphArena, FutureFormatVersionIsRejected) {
  Graph graph = TestGraph();
  std::string path = ArenaPath("future_version");
  ASSERT_TRUE(GraphArena::Build(graph, path, {}).ok());
  std::vector<unsigned char> bytes = ReadFile(path);
  PatchHeader(bytes, [](ArenaHeader& h) {
    h.version = (h.version & ~0xFFFFu) | (GraphArena::kFormatVersion + 1);
  });
  WriteFile(path, bytes);

  auto arena = GraphArena::Open(path);
  ASSERT_FALSE(arena.ok());
  std::remove(path.c_str());
}

TEST(GraphArena, UnknownCodecIsRejectedDistinctly) {
  Graph graph = TestGraph();
  std::string path = ArenaPath("unknown_codec");
  ASSERT_TRUE(GraphArena::Build(graph, path, {}).ok());
  std::vector<unsigned char> bytes = ReadFile(path);
  PatchHeader(bytes,
              [](ArenaHeader& h) { h.version |= uint32_t{9} << 16; });
  WriteFile(path, bytes);

  // A newer writer's codec is not a damaged file: the message must say
  // codec, so operators upgrade instead of deleting arenas.
  auto arena = GraphArena::Open(path);
  ASSERT_FALSE(arena.ok());
  EXPECT_NE(arena.status().message().find("codec"), std::string::npos)
      << arena.status().ToString();
  std::remove(path.c_str());
}

TEST(GraphArena, SkippingPayloadVerificationStillValidatesStructure) {
  Graph graph = TestGraph();
  std::string path = ArenaPath("no_verify");
  ArenaBuildOptions build;
  build.weighted = true;
  ASSERT_TRUE(GraphArena::Build(graph, path, build).ok());

  ArenaOpenOptions open;
  open.verify_payload = false;  // the demand-paging mode
  auto arena = GraphArena::Open(path, open);
  ASSERT_TRUE(arena.ok()) << arena.status().ToString();
  ExpectSameCsr(graph, arena.value()->graph());

  // Structural damage (a torn section table) is still caught without the
  // payload pass.
  std::vector<unsigned char> bytes = ReadFile(path);
  PatchHeader(bytes, [](ArenaHeader& h) {
    h.sections[kArenaOutNeighbors].bytes += 64;
  });
  WriteFile(path, bytes);
  EXPECT_FALSE(GraphArena::Open(path, open).ok());
  std::remove(path.c_str());
}

TEST(GraphArena, TwoSessionsMapOneArenaConcurrently) {
  Graph graph = TestGraph();
  std::string path = ArenaPath("two_sessions");
  ArenaBuildOptions build;
  build.num_nodes = 8;
  build.weighted = true;
  ASSERT_TRUE(GraphArena::Build(graph, path, build).ok());

  api::SessionOptions opt;
  opt.num_nodes = 8;
  api::Session parsed_session(opt);
  ASSERT_TRUE(parsed_session.AddGraph("g", graph).ok());

  auto mapped_a = std::make_unique<api::Session>(opt);
  api::Session mapped_b(opt);
  ASSERT_TRUE(mapped_a->AddGraphFromArena("g", path).ok());
  ASSERT_TRUE(mapped_b.AddGraphFromArena("g", path).ok());

  api::AppRequest request;
  request.app = "sssp";
  request.graph = "g";
  request.enable_rr = true;
  api::AppOutcome want = parsed_session.Run(request);
  ASSERT_TRUE(want.status.ok()) << want.status.ToString();

  api::AppOutcome got_a = mapped_a->Run(request);
  ASSERT_TRUE(got_a.status.ok()) << got_a.status.ToString();
  EXPECT_EQ(want.summary, got_a.summary);
  ASSERT_EQ(want.values.size(), got_a.values.size());
  EXPECT_EQ(std::memcmp(want.values.data(), got_a.values.data(),
                        want.values.size() * sizeof(double)),
            0);

  // Tearing down one session must not unmap the other's planes.
  mapped_a.reset();
  api::AppOutcome got_b = mapped_b.Run(request);
  ASSERT_TRUE(got_b.status.ok()) << got_b.status.ToString();
  EXPECT_EQ(want.summary, got_b.summary);
  ASSERT_EQ(want.values.size(), got_b.values.size());
  EXPECT_EQ(std::memcmp(want.values.data(), got_b.values.data(),
                        want.values.size() * sizeof(double)),
            0);
  std::remove(path.c_str());
}

TEST(GraphArena, SessionSaveAndReloadThroughTheFacade) {
  std::string dir = ::testing::TempDir() + "arena_facade";
  api::SessionOptions opt;
  opt.num_nodes = 4;
  opt.arena_dir = dir;
  Graph graph = TestGraph();

  // First process lifetime: parse-path registration, then persist.
  {
    api::Session session(opt);
    ASSERT_TRUE(session.AddGraph("g", graph).ok());
    EXPECT_EQ(session.graphs_parsed(), 1u);
    EXPECT_EQ(session.graphs_mapped(), 0u);
    ASSERT_TRUE(session.SaveGraphArena("g", session.ArenaPath("g")).ok());
  }

  // Second lifetime: warm restart maps instead of parsing.
  api::Session session(opt);
  ASSERT_TRUE(session.AddGraphFromArena("g", session.ArenaPath("g")).ok());
  EXPECT_EQ(session.graphs_parsed(), 0u);
  EXPECT_EQ(session.graphs_mapped(), 1u);
  std::shared_ptr<const Graph> mapped = session.GetGraph("g");
  ASSERT_NE(mapped, nullptr);
  ExpectSameCsr(graph, *mapped);
  std::remove(session.ArenaPath("g").c_str());
}

}  // namespace
}  // namespace slfe
