// Versioned mutable graphs, part 1: ApplyDelta must be a deterministic
// pure function — on seeded random graphs across shapes, applying a
// random insert/delete batch must produce exactly the graph a naive
// rebuild-from-edge-list reference produces (both CSR directions,
// offsets, neighbors, AND weights), with the skip/miss accounting to
// match. Part 2: Session::MutateGraph's version chain — monotone
// versions, per-version fingerprint uniqueness, old-version views that
// stay valid and unchanged after the name moves on, no-op deltas that
// leave the version untouched, and concurrent mutations serializing
// without losing a delta.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include <random>

#include "slfe/api/session.h"
#include "slfe/graph/delta.h"
#include "slfe/graph/generators.h"
#include "slfe/graph/graph.h"

namespace slfe {
namespace {

enum class Shape { kChain, kStar, kRmat, kDisconnected };

struct HarnessParam {
  Shape shape;
  uint64_t seed;
};

std::string ParamName(const ::testing::TestParamInfo<HarnessParam>& info) {
  const char* shape = info.param.shape == Shape::kChain   ? "Chain"
                      : info.param.shape == Shape::kStar  ? "Star"
                      : info.param.shape == Shape::kRmat  ? "Rmat"
                                                          : "Disconnected";
  return std::string(shape) + "_seed" + std::to_string(info.param.seed);
}

Graph MakeShapeGraph(const HarnessParam& p) {
  switch (p.shape) {
    case Shape::kChain:
      return Graph::FromEdges(
          GenerateChain(static_cast<VertexId>(48 + p.seed * 13 % 71)));
    case Shape::kStar:
      return Graph::FromEdges(
          GenerateStar(static_cast<VertexId>(24 + p.seed * 7 % 53)));
    case Shape::kRmat: {
      RmatOptions opt;
      opt.num_vertices = 128;
      opt.num_edges = 700;
      opt.weighted = true;
      opt.seed = p.seed;
      return Graph::FromEdges(GenerateRmat(opt));
    }
    case Shape::kDisconnected: {
      EdgeList er = GenerateErdosRenyi(64, 200, p.seed);
      EdgeList e(110);
      for (const Edge& edge : er.edges()) e.Add(edge.src, edge.dst);
      for (VertexId v = 64; v < 100; ++v) e.Add(v, v + 1);
      e.set_num_vertices(110);  // 101..109 isolated
      return Graph::FromEdges(e);
    }
  }
  return Graph();
}

uint64_t PairKey(VertexId src, VertexId dst) {
  return (static_cast<uint64_t>(src) << 32) | dst;
}

/// The base graph's edges in out-CSR row order (ApplyDelta's documented
/// base ordering).
std::vector<Edge> OutEdgesInOrder(const Graph& g) {
  std::vector<Edge> edges;
  edges.reserve(g.num_edges());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (EdgeId e = g.out().begin(v); e < g.out().end(v); ++e) {
      edges.push_back(Edge{v, g.out().neighbor(e), g.out().weight(e)});
    }
  }
  return edges;
}

/// The naive reference: replay the documented delta semantics on a plain
/// edge vector, then let Graph::FromEdges rebuild everything from scratch.
Graph ReferenceApply(const Graph& base, const GraphDelta& delta) {
  std::unordered_set<uint64_t> erase_set;
  for (const auto& [src, dst] : delta.erase) erase_set.insert(PairKey(src, dst));
  EdgeList out(base.num_vertices());
  std::unordered_set<uint64_t> present;
  for (const Edge& e : OutEdgesInOrder(base)) {
    if (erase_set.count(PairKey(e.src, e.dst)) > 0) continue;
    out.Add(e.src, e.dst, e.weight);
    present.insert(PairKey(e.src, e.dst));
  }
  for (const Edge& e : delta.insert) {
    if (!present.insert(PairKey(e.src, e.dst)).second) continue;
    out.Add(e.src, e.dst, e.weight);
  }
  return Graph::FromEdges(out);
}

void ExpectSameCsr(const Csr& want, const Csr& got, const std::string& label) {
  ASSERT_EQ(want.num_vertices(), got.num_vertices()) << label;
  ASSERT_EQ(want.num_edges(), got.num_edges()) << label;
  for (VertexId v = 0; v <= want.num_vertices(); ++v) {
    ASSERT_EQ(want.offsets()[v], got.offsets()[v])
        << label << " offset mismatch at v=" << v;
  }
  for (EdgeId e = 0; e < want.num_edges(); ++e) {
    ASSERT_EQ(want.neighbor(e), got.neighbor(e))
        << label << " neighbor mismatch at e=" << e;
    ASSERT_EQ(want.weight(e), got.weight(e))
        << label << " weight mismatch at e=" << e;
  }
}

void ExpectSameGraph(const Graph& want, const Graph& got,
                     const std::string& label) {
  ASSERT_EQ(want.num_vertices(), got.num_vertices()) << label;
  ASSERT_EQ(want.num_edges(), got.num_edges()) << label;
  ExpectSameCsr(want.out(), got.out(), label + " out");
  ExpectSameCsr(want.in(), got.in(), label + " in");
  EXPECT_EQ(want.fingerprint(), got.fingerprint()) << label;
}

/// A random batch: deletions drawn from the live edge set (plus a few
/// misses), insertions drawn uniformly (so some duplicate live edges and
/// some occasionally grow the vertex set).
GraphDelta RandomDelta(const Graph& g, std::mt19937_64& rng) {
  GraphDelta delta;
  std::uniform_int_distribution<VertexId> pick_v(0, g.num_vertices() - 1);
  std::uniform_int_distribution<int> count(1, 6);
  int deletes = count(rng);
  for (int i = 0; i < deletes; ++i) {
    VertexId u = pick_v(rng);
    if (g.out_degree(u) > 0) {
      std::uniform_int_distribution<EdgeId> pick_e(g.out().begin(u),
                                                   g.out().end(u) - 1);
      delta.erase.emplace_back(u, g.out().neighbor(pick_e(rng)));
    } else {
      delta.erase.emplace_back(u, pick_v(rng));  // likely a miss
    }
  }
  int inserts = count(rng);
  for (int i = 0; i < inserts; ++i) {
    VertexId src = pick_v(rng);
    // Every ~8th insertion targets one past the current range: growth.
    VertexId dst = rng() % 8 == 0 ? g.num_vertices() : pick_v(rng);
    delta.insert.push_back(
        Edge{src, dst, static_cast<Weight>(1 + rng() % 5)});
  }
  return delta;
}

class GraphDeltaTest : public ::testing::TestWithParam<HarnessParam> {};

// The deterministic-construction contract, differentially: 8 chained
// random batches per (shape, seed), each applied version compared
// plane-by-plane against a from-scratch rebuild, and fingerprints unique
// across the whole version chain.
TEST_P(GraphDeltaTest, MatchesRebuiltReferenceAcrossChainedBatches) {
  Graph cur = MakeShapeGraph(GetParam());
  std::mt19937_64 rng(GetParam().seed * 0x9e3779b97f4a7c15ull + 3);
  for (int step = 0; step < 8; ++step) {
    GraphDelta delta = RandomDelta(cur, rng);
    GraphDeltaStats stats;
    Result<Graph> next = ApplyDelta(cur, delta, &stats);
    ASSERT_TRUE(next.ok()) << next.status().ToString();
    std::string label =
        ParamName(::testing::TestParamInfo<HarnessParam>(GetParam(), 0)) +
        " step " + std::to_string(step);
    ExpectSameGraph(ReferenceApply(cur, delta), next.value(), label);
    EXPECT_EQ(stats.edges_inserted + stats.duplicate_inserts,
              delta.insert.size())
        << label;
    EXPECT_EQ(next.value().num_edges(),
              cur.num_edges() + stats.edges_inserted - stats.edges_deleted)
        << label;
    if (stats.edges_inserted + stats.edges_deleted > 0) {
      // An effective delta changes the topology versus its immediate
      // predecessor, so the version-keying fingerprint must move too.
      // (Only adjacent versions are comparable: a later delta may revert
      // to an earlier version's exact topology, and equal topology means
      // equal fingerprint by design.)
      EXPECT_NE(next.value().fingerprint(), cur.fingerprint()) << label;
    }
    cur = std::move(next).value();
  }
}

TEST(GraphDeltaEdgeCases, StatsCountSkipsAndMisses) {
  Graph chain = Graph::FromEdges(GenerateChain(4));  // 0->1->2->3
  GraphDelta delta;
  delta.insert.push_back(Edge{0, 1, 2.0f});  // duplicate of a live edge
  delta.insert.push_back(Edge{1, 3, 1.0f});  // genuinely new
  delta.insert.push_back(Edge{1, 3, 9.0f});  // duplicate within the batch
  delta.erase.emplace_back(2, 3);            // live
  delta.erase.emplace_back(0, 3);            // absent
  GraphDeltaStats stats;
  Result<Graph> next = ApplyDelta(chain, delta, &stats);
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(stats.edges_inserted, 1u);
  EXPECT_EQ(stats.duplicate_inserts, 2u);
  EXPECT_EQ(stats.edges_deleted, 1u);
  EXPECT_EQ(stats.missing_deletes, 1u);
  EXPECT_EQ(next.value().num_edges(), 3u);  // 3 - 1 + 1
  // First weight wins: the surviving (1,3) carries the batch's first.
  bool found = false;
  next.value().out().ForEachNeighbor(1, [&](VertexId dst, Weight w) {
    if (dst == 3) {
      EXPECT_EQ(w, 1.0f);
      found = true;
    }
  });
  EXPECT_TRUE(found);
}

TEST(GraphDeltaEdgeCases, DeletingEveryParallelCopy) {
  EdgeList e(3);
  e.Add(0, 1);
  e.Add(0, 1);  // parallel copy
  e.Add(1, 2);
  Graph g = Graph::FromEdges(e);
  GraphDelta delta;
  delta.erase.emplace_back(0, 1);
  GraphDeltaStats stats;
  Result<Graph> next = ApplyDelta(g, delta, &stats);
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(stats.edges_deleted, 2u);  // both copies go
  EXPECT_EQ(next.value().num_edges(), 1u);
}

TEST(GraphDeltaEdgeCases, DeleteOutsideBaseRangeRejected) {
  Graph chain = Graph::FromEdges(GenerateChain(4));
  GraphDelta delta;
  delta.erase.emplace_back(0, 99);
  EXPECT_EQ(ApplyDelta(chain, delta).status().code(),
            StatusCode::kInvalidArgument);
  GraphDelta src_out;
  src_out.erase.emplace_back(99, 0);
  EXPECT_EQ(ApplyDelta(chain, src_out).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(GraphDeltaEdgeCases, InsertionsGrowTheVertexSet) {
  Graph chain = Graph::FromEdges(GenerateChain(4));
  GraphDelta delta;
  delta.insert.push_back(Edge{2, 10, 1.0f});
  Result<Graph> next = ApplyDelta(chain, delta);
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next.value().num_vertices(), 11u);
  EXPECT_EQ(next.value().num_edges(), 4u);
  EXPECT_EQ(next.value().out_degree(2), 2u);
  EXPECT_EQ(next.value().in_degree(10), 1u);
  EXPECT_EQ(next.value().out_degree(10), 0u);
}

// ------------------------------------------------- Session version chain

TEST(SessionVersionTest, MutationPublishesNewVersionOldViewStaysIntact) {
  api::Session session;
  ASSERT_TRUE(session.AddGraph("g", Graph::FromEdges(GenerateChain(30))).ok());
  std::shared_ptr<const Graph> old_view = session.GetGraph("g");
  ASSERT_NE(old_view, nullptr);
  const uint64_t old_fp = old_view->fingerprint();
  const EdgeId old_edges = old_view->num_edges();

  GraphDelta delta;
  delta.erase.emplace_back(10, 11);
  auto result = session.MutateGraph("g", delta);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().changed);
  EXPECT_EQ(result.value().version, 2u);
  EXPECT_EQ(result.value().old_fingerprint, old_fp);
  EXPECT_NE(result.value().new_fingerprint, old_fp);
  EXPECT_EQ(result.value().num_edges, old_edges - 1);
  EXPECT_EQ(session.graphs_mutated(), 1u);

  // The name serves the new version; the held old view is untouched.
  std::shared_ptr<const Graph> new_view = session.GetGraph("g");
  ASSERT_NE(new_view, old_view);
  EXPECT_EQ(new_view->fingerprint(), result.value().new_fingerprint);
  EXPECT_EQ(old_view->num_edges(), old_edges);
  EXPECT_EQ(old_view->fingerprint(), old_fp);
  EXPECT_EQ(old_view->out_degree(10), 1u);  // the deleted edge still there
  EXPECT_EQ(new_view->out_degree(10), 0u);

  std::vector<api::GraphVersionInfo> versions = session.GraphVersions("g");
  ASSERT_EQ(versions.size(), 2u);
  EXPECT_EQ(versions[0].version, 1u);
  EXPECT_EQ(versions[0].fingerprint, old_fp);
  EXPECT_TRUE(versions[0].alive);  // our old_view still pins it
  EXPECT_FALSE(versions[0].current);
  EXPECT_EQ(versions[1].version, 2u);
  EXPECT_TRUE(versions[1].current);
  EXPECT_TRUE(versions[1].alive);

  // Drop the last reference to v1 (the provider's repair lineage also
  // holds it; a lineage-free session would show alive == false).
  old_view.reset();
  versions = session.GraphVersions("g");
  // v1 may stay alive through the provider's lineage entry — but v2, the
  // served version, is always alive and current.
  EXPECT_TRUE(versions.back().alive);
  EXPECT_TRUE(versions.back().current);
}

TEST(SessionVersionTest, NoOpDeltaKeepsVersionObjectAndFingerprint) {
  api::Session session;
  ASSERT_TRUE(session.AddGraph("g", Graph::FromEdges(GenerateChain(8))).ok());
  std::shared_ptr<const Graph> before = session.GetGraph("g");

  GraphDelta noop;
  noop.insert.push_back(Edge{0, 1, 1.0f});  // already present
  noop.erase.emplace_back(5, 2);            // not present
  auto result = session.MutateGraph("g", noop);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result.value().changed);
  EXPECT_EQ(result.value().version, 1u);
  EXPECT_EQ(result.value().new_fingerprint, result.value().old_fingerprint);
  EXPECT_EQ(session.GetGraph("g"), before);  // same object, caches intact
  EXPECT_EQ(session.graphs_mutated(), 0u);
  EXPECT_EQ(session.GraphVersions("g").size(), 1u);
}

TEST(SessionVersionTest, FingerprintsUniqueAcrossTheVersionChain) {
  api::Session session;
  RmatOptions opt;
  opt.num_vertices = 64;
  opt.num_edges = 300;
  opt.seed = 17;
  ASSERT_TRUE(
      session.AddGraph("g", Graph::FromEdges(GenerateRmat(opt))).ok());
  std::mt19937_64 rng(99);
  std::vector<uint64_t> chain_fps = {session.GetGraph("g")->fingerprint()};
  // Keep every version alive so the history rows stay inspectable.
  std::vector<std::shared_ptr<const Graph>> pins = {session.GetGraph("g")};
  uint64_t expected_version = 1;
  for (int step = 0; step < 6; ++step) {
    GraphDelta delta = RandomDelta(*session.GetGraph("g"), rng);
    auto result = session.MutateGraph("g", delta);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    if (!result.value().changed) continue;
    ++expected_version;
    EXPECT_EQ(result.value().version, expected_version);
    chain_fps.push_back(result.value().new_fingerprint);
    pins.push_back(session.GetGraph("g"));
  }
  std::set<uint64_t> unique(chain_fps.begin(), chain_fps.end());
  EXPECT_EQ(unique.size(), chain_fps.size())
      << "every version must key caches/store/lineage distinctly";

  std::vector<api::GraphVersionInfo> versions = session.GraphVersions("g");
  ASSERT_EQ(versions.size(), chain_fps.size());
  for (size_t i = 0; i < versions.size(); ++i) {
    EXPECT_EQ(versions[i].version, i + 1);
    EXPECT_EQ(versions[i].fingerprint, chain_fps[i]);
    EXPECT_TRUE(versions[i].alive);  // pinned above
    EXPECT_EQ(versions[i].current, i + 1 == versions.size());
  }
}

TEST(SessionVersionTest, UnknownNamesAndNeverMutatedGraphs) {
  api::Session session;
  EXPECT_EQ(session.MutateGraph("nope", GraphDelta{}).status().code(),
            StatusCode::kNotFound);
  EXPECT_TRUE(session.GraphVersions("nope").empty());
  ASSERT_TRUE(session.AddGraph("g", Graph::FromEdges(GenerateChain(5))).ok());
  std::vector<api::GraphVersionInfo> versions = session.GraphVersions("g");
  ASSERT_EQ(versions.size(), 1u);  // synthesized row: version 1, current
  EXPECT_EQ(versions[0].version, 1u);
  EXPECT_TRUE(versions[0].alive);
  EXPECT_TRUE(versions[0].current);
}

TEST(SessionVersionTest, InvalidDeltaRejectedWithoutVersionBump) {
  api::Session session;
  ASSERT_TRUE(session.AddGraph("g", Graph::FromEdges(GenerateChain(5))).ok());
  GraphDelta bad;
  bad.erase.emplace_back(0, 50);
  EXPECT_EQ(session.MutateGraph("g", bad).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(session.GraphVersions("g").back().version, 1u);
  EXPECT_EQ(session.graphs_mutated(), 0u);
}

TEST(SessionVersionTest, ConcurrentMutationsSerializeWithoutLosingDeltas) {
  // 6 threads x 4 mutations, each inserting one distinct edge between
  // vertices private to the thread: the optimistic-retry loop must
  // serialize them so the final version carries ALL 24 edges and the
  // version counter advanced exactly 24 times.
  constexpr int kThreads = 6;
  constexpr int kPerThread = 4;
  api::Session session;
  EdgeList base(kThreads * kPerThread * 2 + 2);
  base.Add(0, 1);
  Graph g = Graph::FromEdges(base);
  const EdgeId base_edges = g.num_edges();
  ASSERT_TRUE(session.AddGraph("g", std::move(g)).ok());

  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        VertexId v = static_cast<VertexId>(2 + (t * kPerThread + i) * 2);
        GraphDelta delta;
        delta.insert.push_back(Edge{v, v + 1, 1.0f});
        if (!session.MutateGraph("g", delta).ok()) ++failures;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  ASSERT_EQ(failures.load(), 0);

  std::shared_ptr<const Graph> final_graph = session.GetGraph("g");
  EXPECT_EQ(final_graph->num_edges(),
            base_edges + static_cast<EdgeId>(kThreads * kPerThread));
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      VertexId v = static_cast<VertexId>(2 + (t * kPerThread + i) * 2);
      EXPECT_EQ(final_graph->out_degree(v), 1u) << "lost delta at v=" << v;
    }
  }
  EXPECT_EQ(session.graphs_mutated(),
            static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(session.GraphVersions("g").back().version,
            static_cast<uint64_t>(1 + kThreads * kPerThread));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GraphDeltaTest,
    ::testing::Values(HarnessParam{Shape::kChain, 1},
                      HarnessParam{Shape::kChain, 2},
                      HarnessParam{Shape::kChain, 3},
                      HarnessParam{Shape::kStar, 1},
                      HarnessParam{Shape::kStar, 2},
                      HarnessParam{Shape::kRmat, 1},
                      HarnessParam{Shape::kRmat, 2},
                      HarnessParam{Shape::kRmat, 3},
                      HarnessParam{Shape::kDisconnected, 1},
                      HarnessParam{Shape::kDisconnected, 2},
                      HarnessParam{Shape::kDisconnected, 3}),
    ParamName);

}  // namespace
}  // namespace slfe
