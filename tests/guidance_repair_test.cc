// Randomized mutation differential harness for incremental guidance
// repair: on seeded random graphs across shapes (chains, stars, RMAT,
// disconnected unions), a chain of >= 8 random insert/delete batches is
// applied version by version, and at EVERY version the repaired guidance
// (RRGuidance::Repair over the previous version's guidance) must be
// bit-identical — last_iter, visited, depth, AND the levels plane — to a
// fresh GenerateSerial on the post-delta graph. The repaired output of
// step k seeds the repair of step k+1, so a single bit of drift anywhere
// in the chain compounds and fails loudly. This is the proof obligation
// that lets the provider treat repair as a pure performance choice, the
// same way guidance_partition_test locks down the parallel generators.

#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <string>
#include <vector>

#include "slfe/core/guidance_provider.h"
#include "slfe/core/guidance_store.h"
#include "slfe/core/roots.h"
#include "slfe/core/rr_guidance.h"
#include "slfe/graph/delta.h"
#include "slfe/graph/generators.h"

namespace slfe {
namespace {

enum class Shape { kChain, kStar, kRmat, kDisconnected };

struct HarnessParam {
  Shape shape;
  uint64_t seed;
};

std::string ParamName(const ::testing::TestParamInfo<HarnessParam>& info) {
  const char* shape = info.param.shape == Shape::kChain   ? "Chain"
                      : info.param.shape == Shape::kStar  ? "Star"
                      : info.param.shape == Shape::kRmat  ? "Rmat"
                                                          : "Disconnected";
  return std::string(shape) + "_seed" + std::to_string(info.param.seed);
}

Graph MakeShapeGraph(const HarnessParam& p) {
  switch (p.shape) {
    case Shape::kChain:
      return Graph::FromEdges(
          GenerateChain(static_cast<VertexId>(48 + p.seed * 13 % 71)));
    case Shape::kStar:
      return Graph::FromEdges(
          GenerateStar(static_cast<VertexId>(24 + p.seed * 7 % 53)));
    case Shape::kRmat: {
      RmatOptions opt;
      opt.num_vertices = 256;
      opt.num_edges = 1500;
      opt.seed = p.seed;
      return Graph::FromEdges(GenerateRmat(opt));
    }
    case Shape::kDisconnected: {
      // Islands with no cross edges: an Erdos-Renyi block, an offset
      // chain, and trailing isolated vertices — deltas here empty and
      // re-populate whole components.
      EdgeList er = GenerateErdosRenyi(96, 300, p.seed);
      EdgeList e(160);
      for (const Edge& edge : er.edges()) e.Add(edge.src, edge.dst);
      for (VertexId v = 96; v < 140; ++v) e.Add(v, v + 1);
      e.set_num_vertices(160);  // 141..159 isolated
      return Graph::FromEdges(e);
    }
  }
  return Graph();
}

std::vector<VertexId> RandomRoots(const Graph& g, uint64_t seed,
                                  size_t count) {
  std::mt19937_64 rng(seed * 0x9e3779b97f4a7c15ull + 1);
  std::uniform_int_distribution<VertexId> pick(
      0, g.num_vertices() > 0 ? g.num_vertices() - 1 : 0);
  std::vector<VertexId> roots;
  roots.reserve(count);
  for (size_t i = 0; i < count; ++i) roots.push_back(pick(rng));
  return roots;
}

/// The full bit-identity: records, depth, and the levels plane.
void ExpectGuidanceIdentical(const RRGuidance& want, const RRGuidance& got,
                             const std::string& label) {
  ASSERT_EQ(want.num_vertices(), got.num_vertices()) << label;
  ASSERT_EQ(want.depth(), got.depth()) << label;
  ASSERT_TRUE(want.has_levels()) << label;
  ASSERT_TRUE(got.has_levels()) << label;
  for (VertexId v = 0; v < want.num_vertices(); ++v) {
    ASSERT_EQ(want.last_iter(v), got.last_iter(v))
        << label << " last_iter mismatch at v=" << v;
    ASSERT_EQ(want.visited(v), got.visited(v))
        << label << " visited mismatch at v=" << v;
    ASSERT_EQ(want.level(v), got.level(v))
        << label << " level mismatch at v=" << v;
  }
}

enum class BatchKind { kInsertOnly, kDeleteOnly, kMixed };

/// A random batch of the requested flavor. Deletions come from the live
/// edge set (plus occasional misses); insertions are uniform pairs, some
/// duplicating live edges, some growing the vertex set by one.
GraphDelta RandomDelta(const Graph& g, std::mt19937_64& rng, BatchKind kind,
                       bool allow_growth) {
  GraphDelta delta;
  std::uniform_int_distribution<VertexId> pick_v(0, g.num_vertices() - 1);
  std::uniform_int_distribution<int> count(1, 6);
  if (kind != BatchKind::kInsertOnly) {
    int deletes = count(rng);
    for (int i = 0; i < deletes; ++i) {
      VertexId u = pick_v(rng);
      if (g.out_degree(u) > 0) {
        std::uniform_int_distribution<EdgeId> pick_e(g.out().begin(u),
                                                     g.out().end(u) - 1);
        delta.erase.emplace_back(u, g.out().neighbor(pick_e(rng)));
      } else {
        delta.erase.emplace_back(u, pick_v(rng));  // likely a miss
      }
    }
  }
  if (kind != BatchKind::kDeleteOnly) {
    int inserts = count(rng);
    for (int i = 0; i < inserts; ++i) {
      VertexId src = pick_v(rng);
      VertexId dst = allow_growth && rng() % 8 == 0 ? g.num_vertices()
                                                    : pick_v(rng);
      delta.insert.push_back(Edge{src, dst, 1.0f});
    }
  }
  return delta;
}

/// The differential core: >= 8 batches cycling insert-only / delete-only
/// / mixed, chained ON THE REPAIRED GUIDANCE, checked against a fresh
/// serial sweep at every version.
void RunMutationChain(Graph graph, std::vector<VertexId> roots,
                      uint64_t seed, const std::string& label,
                      bool allow_growth) {
  if (roots.empty()) return;
  std::mt19937_64 rng(seed * 0x51afd6ed558ccd65ull + 7);
  RRGuidance current = RRGuidance::GenerateSerial(graph, roots);
  ASSERT_TRUE(current.has_levels()) << label;
  constexpr BatchKind kCycle[] = {BatchKind::kInsertOnly,
                                  BatchKind::kDeleteOnly, BatchKind::kMixed};
  for (int step = 0; step < 9; ++step) {
    GraphDelta delta = RandomDelta(graph, rng, kCycle[step % 3], allow_growth);
    Result<Graph> next = ApplyDelta(graph, delta);
    ASSERT_TRUE(next.ok()) << label << ": " << next.status().ToString();
    GuidanceRepairStats stats;
    Result<RRGuidance> repaired = RRGuidance::Repair(
        next.value(), delta, current, roots, roots, 1.0, &stats);
    std::string tag = label + " step " + std::to_string(step);
    ASSERT_TRUE(repaired.ok()) << tag << ": " << repaired.status().ToString();
    RRGuidance fresh = RRGuidance::GenerateSerial(next.value(), roots);
    ExpectGuidanceIdentical(fresh, repaired.value(), tag);
    EXPECT_LE(stats.invalidated, next.value().num_vertices()) << tag;
    graph = std::move(next).value();
    current = std::move(repaired).value();
  }
}

class GuidanceRepairTest : public ::testing::TestWithParam<HarnessParam> {};

TEST_P(GuidanceRepairTest, RepairedEqualsRegeneratedAcrossMutationChains) {
  const HarnessParam& p = GetParam();
  std::string name = ParamName(::testing::TestParamInfo<HarnessParam>(p, 0));
  Graph g = MakeShapeGraph(p);
  RunMutationChain(g, {0}, p.seed, name + " single root",
                   /*allow_growth=*/true);
  RunMutationChain(g, RandomRoots(g, p.seed, 5), p.seed + 1,
                   name + " random roots", /*allow_growth=*/true);
  RunMutationChain(g, SelectSourceRoots(g), p.seed + 2, name + " source roots",
                   /*allow_growth=*/false);
}

TEST_P(GuidanceRepairTest, LevelsPlaneIdenticalAcrossGenerationStrategies) {
  // Repair seeds on whatever strategy generated the predecessor, so the
  // levels plane must be strategy-independent the same way last_iter is.
  Graph g = MakeShapeGraph(GetParam());
  std::vector<VertexId> roots = RandomRoots(g, GetParam().seed, 4);
  RRGuidance serial = RRGuidance::GenerateSerial(g, roots);
  ThreadPool pool(3);
  ExpectGuidanceIdentical(serial, RRGuidance::GenerateParallel(g, roots, pool),
                          "uniform levels");
  ExpectGuidanceIdentical(serial,
                          RRGuidance::GeneratePartitioned(g, roots, pool),
                          "partitioned levels");
}

// ----------------------------------------------------------- edge cases

TEST(GuidanceRepairEdgeCases, DeltaSeveringTheRootEdge) {
  // Deleting the root's only out-edge orphans the entire downstream chain:
  // the worst-case cascade, still bit-identical with no fraction bound.
  Graph chain = Graph::FromEdges(GenerateChain(30));
  GraphDelta delta;
  delta.erase.emplace_back(0, 1);
  Result<Graph> next = ApplyDelta(chain, delta);
  ASSERT_TRUE(next.ok());
  auto repaired =
      RRGuidance::Repair(next.value(), delta,
                         RRGuidance::GenerateSerial(chain, {0}), {0}, {0});
  ASSERT_TRUE(repaired.ok()) << repaired.status().ToString();
  ExpectGuidanceIdentical(RRGuidance::GenerateSerial(next.value(), {0}),
                          repaired.value(), "severed root edge");
}

TEST(GuidanceRepairEdgeCases, RootSetChangesWithEmptyDelta) {
  // Same topology, different roots: removal (old root loses root status)
  // and addition (a mid-chain vertex becomes a root) both repair.
  Graph chain = Graph::FromEdges(GenerateChain(25));
  GraphDelta empty;
  RRGuidance both = RRGuidance::GenerateSerial(chain, {0, 12});
  auto removed = RRGuidance::Repair(chain, empty, both, {0, 12}, {0});
  ASSERT_TRUE(removed.ok()) << removed.status().ToString();
  ExpectGuidanceIdentical(RRGuidance::GenerateSerial(chain, {0}),
                          removed.value(), "root removed");
  RRGuidance solo = RRGuidance::GenerateSerial(chain, {0});
  auto added = RRGuidance::Repair(chain, empty, solo, {0}, {0, 12});
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  ExpectGuidanceIdentical(RRGuidance::GenerateSerial(chain, {0, 12}),
                          added.value(), "root added");
}

TEST(GuidanceRepairEdgeCases, DeltaEmptyingAComponent) {
  // Two islands; the delta deletes every edge of the second AND drops its
  // root, leaving the component fully unreachable.
  EdgeList e(20);
  for (VertexId v = 0; v < 9; ++v) e.Add(v, v + 1);
  for (VertexId v = 10; v < 19; ++v) e.Add(v, v + 1);
  Graph g = Graph::FromEdges(e);
  RRGuidance old_guidance = RRGuidance::GenerateSerial(g, {0, 10});
  GraphDelta delta;
  for (VertexId v = 10; v < 19; ++v) delta.erase.emplace_back(v, v + 1);
  Result<Graph> next = ApplyDelta(g, delta);
  ASSERT_TRUE(next.ok());
  auto repaired =
      RRGuidance::Repair(next.value(), delta, old_guidance, {0, 10}, {0});
  ASSERT_TRUE(repaired.ok()) << repaired.status().ToString();
  ExpectGuidanceIdentical(RRGuidance::GenerateSerial(next.value(), {0}),
                          repaired.value(), "emptied component");
  for (VertexId v = 10; v < 20; ++v) {
    EXPECT_FALSE(repaired.value().visited(v)) << "v=" << v;
    EXPECT_EQ(repaired.value().level(v), RRGuidance::kUnreachableLevel)
        << "v=" << v;
  }
}

TEST(GuidanceRepairEdgeCases, NoOpDeltaIsAnIdentityRepair) {
  Graph g = Graph::FromEdges(GenerateStar(12));
  RRGuidance old_guidance = RRGuidance::GenerateSerial(g, {0});
  GuidanceRepairStats stats;
  auto repaired = RRGuidance::Repair(g, GraphDelta{}, old_guidance, {0}, {0},
                                     1.0, &stats);
  ASSERT_TRUE(repaired.ok());
  ExpectGuidanceIdentical(old_guidance, repaired.value(), "no-op delta");
  EXPECT_EQ(stats.invalidated, 0u);
  EXPECT_EQ(stats.level_changes, 0u);
}

TEST(GuidanceRepairEdgeCases, AddedRootInTheGrownRegion) {
  // The delta grows the vertex set and the new root lives in the grown
  // region — exercises the old-levels-don't-cover-it path end to end.
  Graph chain = Graph::FromEdges(GenerateChain(10));
  GraphDelta delta;
  delta.insert.push_back(Edge{9, 10, 1.0f});
  delta.insert.push_back(Edge{12, 13, 1.0f});
  Result<Graph> next = ApplyDelta(chain, delta);
  ASSERT_TRUE(next.ok());
  auto repaired =
      RRGuidance::Repair(next.value(), delta,
                         RRGuidance::GenerateSerial(chain, {0}), {0}, {0, 12});
  ASSERT_TRUE(repaired.ok()) << repaired.status().ToString();
  ExpectGuidanceIdentical(RRGuidance::GenerateSerial(next.value(), {0, 12}),
                          repaired.value(), "grown root");
}

TEST(GuidanceRepairEdgeCases, LevelslessPredecessorIsFailedPrecondition) {
  // Guidance reloaded from a pre-levels store codec cannot seed a repair.
  Graph g = Graph::FromEdges(GenerateChain(6));
  RRGuidance full = RRGuidance::GenerateSerial(g, {0});
  std::vector<VertexGuidance> records(full.raw());
  RRGuidance levelless = RRGuidance::FromParts(std::move(records),
                                               full.depth());
  ASSERT_FALSE(levelless.has_levels());
  EXPECT_EQ(RRGuidance::Repair(g, GraphDelta{}, levelless, {0}, {0})
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST(GuidanceRepairEdgeCases, CascadeBoundAbortsOversizedRepairs) {
  // Severing a 100-chain at the head invalidates 99% of the vertices;
  // with max_affected_fraction = 0.1 the repair must abort so the caller
  // regenerates instead.
  Graph chain = Graph::FromEdges(GenerateChain(100));
  GraphDelta delta;
  delta.erase.emplace_back(0, 1);
  Result<Graph> next = ApplyDelta(chain, delta);
  ASSERT_TRUE(next.ok());
  RRGuidance old_guidance = RRGuidance::GenerateSerial(chain, {0});
  EXPECT_EQ(RRGuidance::Repair(next.value(), delta, old_guidance, {0}, {0},
                               /*max_affected_fraction=*/0.1)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
  // The same repair with no bound succeeds and matches.
  auto unbounded =
      RRGuidance::Repair(next.value(), delta, old_guidance, {0}, {0});
  ASSERT_TRUE(unbounded.ok());
  ExpectGuidanceIdentical(RRGuidance::GenerateSerial(next.value(), {0}),
                          unbounded.value(), "unbounded fallback");
}

TEST(GuidanceRepairEdgeCases, TailDeletionStaysLocal) {
  // The whole point of repair: a delta at the far end of a 1000-chain
  // must invalidate exactly the severed vertex, not re-walk the chain.
  Graph chain = Graph::FromEdges(GenerateChain(1000));
  GraphDelta delta;
  delta.erase.emplace_back(998, 999);
  Result<Graph> next = ApplyDelta(chain, delta);
  ASSERT_TRUE(next.ok());
  GuidanceRepairStats stats;
  auto repaired = RRGuidance::Repair(next.value(), delta,
                                     RRGuidance::GenerateSerial(chain, {0}),
                                     {0}, {0}, 1.0, &stats);
  ASSERT_TRUE(repaired.ok());
  ExpectGuidanceIdentical(RRGuidance::GenerateSerial(next.value(), {0}),
                          repaired.value(), "tail deletion");
  EXPECT_EQ(stats.invalidated, 1u);
  EXPECT_EQ(stats.level_changes, 1u);
  EXPECT_LE(stats.patched, 4u);
}

// ------------------------------------------------- provider repair path

TEST(GuidanceProviderRepair, MissAfterRecordedMutationIsServedByRepair) {
  GuidanceProviderOptions options;
  options.generation_threads = 1;
  GuidanceProvider provider(options);
  auto g1 = std::make_shared<const Graph>(Graph::FromEdges(GenerateChain(40)));
  GuidanceAcquisition first = provider.AcquireForRoots(*g1, {0});
  ASSERT_TRUE(first);
  EXPECT_FALSE(first.repaired);
  EXPECT_EQ(provider.stats().generations, 1u);

  auto delta = std::make_shared<const GraphDelta>(
      GraphDelta{{}, {{static_cast<VertexId>(20), static_cast<VertexId>(21)}}});
  Result<Graph> next = ApplyDelta(*g1, *delta);
  ASSERT_TRUE(next.ok());
  auto g2 = std::make_shared<const Graph>(std::move(next).value());
  provider.RecordMutation(g1, *g2, delta);

  GuidanceAcquisition second = provider.AcquireForRoots(*g2, {0});
  ASSERT_TRUE(second);
  EXPECT_TRUE(second.repaired);
  EXPECT_FALSE(second.cache_hit);
  GuidanceProviderStats stats = provider.stats();
  EXPECT_EQ(stats.repairs, 1u);
  EXPECT_EQ(stats.repair_fallbacks, 0u);
  EXPECT_EQ(stats.generations, 1u);  // the repair replaced the second sweep
  ExpectGuidanceIdentical(RRGuidance::GenerateSerial(*g2, {0}),
                          *second.guidance, "provider repair");

  // The repaired entry is cached like any generated one.
  GuidanceAcquisition third = provider.AcquireForRoots(*g2, {0});
  EXPECT_TRUE(third.cache_hit);
}

TEST(GuidanceProviderRepair, PolicyPathRepairsWithRederivedOldRoots) {
  GuidanceProviderOptions options;
  options.generation_threads = 1;
  GuidanceProvider provider(options);
  auto g1 = std::make_shared<const Graph>(Graph::FromEdges(GenerateChain(30)));
  GuidanceRequest request;
  request.policy = GuidanceRootPolicy::kSingleSource;
  request.root = 0;
  ASSERT_TRUE(provider.Acquire(*g1, request));

  auto delta = std::make_shared<const GraphDelta>(
      GraphDelta{{Edge{5, 20, 1.0f}}, {}});
  Result<Graph> next = ApplyDelta(*g1, *delta);
  ASSERT_TRUE(next.ok());
  auto g2 = std::make_shared<const Graph>(std::move(next).value());
  provider.RecordMutation(g1, *g2, delta);

  GuidanceAcquisition repaired = provider.Acquire(*g2, request);
  ASSERT_TRUE(repaired);
  EXPECT_TRUE(repaired.repaired);
  ExpectGuidanceIdentical(RRGuidance::GenerateSerial(*g2, {0}),
                          *repaired.guidance, "policy repair");
}

TEST(GuidanceProviderRepair, OversizedDeltaFallsBackToRegeneration) {
  GuidanceProviderOptions options;
  options.generation_threads = 1;
  options.repair.max_delta_fraction = 0.0;  // every non-empty delta is "big"
  GuidanceProvider provider(options);
  auto g1 = std::make_shared<const Graph>(Graph::FromEdges(GenerateChain(20)));
  ASSERT_TRUE(provider.AcquireForRoots(*g1, {0}));

  auto delta = std::make_shared<const GraphDelta>(
      GraphDelta{{}, {{static_cast<VertexId>(3), static_cast<VertexId>(4)}}});
  Result<Graph> next = ApplyDelta(*g1, *delta);
  ASSERT_TRUE(next.ok());
  auto g2 = std::make_shared<const Graph>(std::move(next).value());
  provider.RecordMutation(g1, *g2, delta);

  GuidanceAcquisition second = provider.AcquireForRoots(*g2, {0});
  ASSERT_TRUE(second);
  EXPECT_FALSE(second.repaired);
  GuidanceProviderStats stats = provider.stats();
  EXPECT_EQ(stats.repairs, 0u);
  EXPECT_EQ(stats.repair_fallbacks, 1u);
  EXPECT_EQ(stats.generations, 2u);
  // Fallback still yields correct guidance, just via the sweep.
  ExpectGuidanceIdentical(RRGuidance::GenerateSerial(*g2, {0}),
                          *second.guidance, "fallback guidance");
}

TEST(GuidanceProviderRepair, UnrecordedMutationIsNotCountedAsFallback) {
  // No lineage = nothing to repair = a plain generation, not a "repair
  // fallback" (the counter means "we tried and bailed").
  GuidanceProviderOptions options;
  options.generation_threads = 1;
  GuidanceProvider provider(options);
  Graph g = Graph::FromEdges(GenerateChain(10));
  ASSERT_TRUE(provider.AcquireForRoots(g, {0}));
  GuidanceProviderStats stats = provider.stats();
  EXPECT_EQ(stats.repair_fallbacks, 0u);
  EXPECT_EQ(stats.repairs, 0u);
}

TEST(GuidanceProviderRepair, WarmRestartRepairsFromStoredGuidance) {
  // Provider A generates and persists v1's guidance (levels included, the
  // new store codecs). Provider B — a fresh process in spirit — records
  // the mutation and must repair from the STORE-loaded predecessor.
  std::string dir = ::testing::TempDir() + "slfe_repair_store";
  {
    GuidanceStore wipe(dir);
    wipe.RemoveAll();
  }
  auto g1 = std::make_shared<const Graph>(Graph::FromEdges(GenerateChain(35)));
  auto delta = std::make_shared<const GraphDelta>(
      GraphDelta{{Edge{3, 30, 1.0f}}, {{static_cast<VertexId>(17),
                                        static_cast<VertexId>(18)}}});
  Result<Graph> next = ApplyDelta(*g1, *delta);
  ASSERT_TRUE(next.ok());
  auto g2 = std::make_shared<const Graph>(std::move(next).value());

  GuidanceProviderOptions options;
  options.generation_threads = 1;
  options.store_dir = dir;
  {
    GuidanceProvider writer(options);
    ASSERT_TRUE(writer.AcquireForRoots(*g1, {0}));
  }
  GuidanceProvider reader(options);
  reader.RecordMutation(g1, *g2, delta);
  GuidanceAcquisition repaired = reader.AcquireForRoots(*g2, {0});
  ASSERT_TRUE(repaired);
  EXPECT_TRUE(repaired.repaired)
      << "store-loaded predecessor guidance must carry its levels plane";
  EXPECT_EQ(reader.stats().generations, 0u);
  ExpectGuidanceIdentical(RRGuidance::GenerateSerial(*g2, {0}),
                          *repaired.guidance, "warm-restart repair");
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GuidanceRepairTest,
    ::testing::Values(HarnessParam{Shape::kChain, 1},
                      HarnessParam{Shape::kChain, 2},
                      HarnessParam{Shape::kChain, 3},
                      HarnessParam{Shape::kStar, 1},
                      HarnessParam{Shape::kStar, 2},
                      HarnessParam{Shape::kStar, 3},
                      HarnessParam{Shape::kRmat, 1},
                      HarnessParam{Shape::kRmat, 2},
                      HarnessParam{Shape::kRmat, 3},
                      HarnessParam{Shape::kDisconnected, 1},
                      HarnessParam{Shape::kDisconnected, 2},
                      HarnessParam{Shape::kDisconnected, 3}),
    ParamName);

}  // namespace
}  // namespace slfe
