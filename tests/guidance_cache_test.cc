// Tests for the guidance amortization layer (paper §4.4: ~8.7 jobs share
// one graph): GuidanceCache hit/miss/eviction/invalidation behavior, the
// GuidanceProvider's policy-driven acquisition, singleflight coalescing,
// the negative cache, persistence through the GuidanceStore (spill →
// clear/evict → reload), graph fingerprinting, and the end-to-end app path
// (a repeated job retrieves cached guidance and computes identical
// results).

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "slfe/apps/sssp.h"
#include "slfe/core/guidance_cache.h"
#include "slfe/core/guidance_provider.h"
#include "slfe/core/guidance_store.h"
#include "slfe/core/roots.h"
#include "slfe/core/rr_guidance.h"
#include "slfe/graph/generators.h"

namespace slfe {
namespace {

std::shared_ptr<const RRGuidance> Gen(const Graph& g,
                                      const std::vector<VertexId>& roots) {
  return std::make_shared<const RRGuidance>(RRGuidance::GenerateSerial(g, roots));
}

/// Field-by-field equality of two guidance objects (the arrays the store
/// round-trips, plus the sweep depth).
void ExpectGuidanceEqual(const RRGuidance& a, const RRGuidance& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  EXPECT_EQ(a.depth(), b.depth());
  for (VertexId v = 0; v < a.num_vertices(); ++v) {
    ASSERT_EQ(a.last_iter(v), b.last_iter(v)) << "v=" << v;
    ASSERT_EQ(a.visited(v), b.visited(v)) << "v=" << v;
  }
}

/// A provider persisting to a fresh (emptied) per-test store directory.
GuidanceProviderOptions StoreOptions(const std::string& name,
                                     size_t cache_capacity = 32) {
  GuidanceProviderOptions options;
  options.cache_capacity = cache_capacity;
  options.generation_threads = 1;
  options.store_dir = ::testing::TempDir() + name;
  return options;
}

// ------------------------------------------------------------ Fingerprint

TEST(GraphFingerprintTest, DeterministicAndTopologySensitive) {
  Graph a = Graph::FromEdges(GenerateChain(10));
  Graph b = Graph::FromEdges(GenerateChain(10));
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  Graph c = Graph::FromEdges(GenerateChain(11));
  EXPECT_NE(a.fingerprint(), c.fingerprint());
  EdgeList e(10);  // same vertex count, different wiring
  for (VertexId v = 0; v + 1 < 10; ++v) e.Add(v + 1, v);
  Graph d = Graph::FromEdges(e);
  EXPECT_NE(a.fingerprint(), d.fingerprint());
}

TEST(GraphFingerprintTest, WeightsDoNotChangeFingerprint) {
  // Guidance treats every weight as 1, so the cache may legally share
  // guidance between same-topology graphs with different weights.
  EdgeList light(3), heavy(3);
  light.Add(0, 1, 1.0f);
  light.Add(1, 2, 1.0f);
  heavy.Add(0, 1, 7.0f);
  heavy.Add(1, 2, 9.0f);
  EXPECT_EQ(Graph::FromEdges(light).fingerprint(),
            Graph::FromEdges(heavy).fingerprint());
}

// ------------------------------------------------------------------ Cache

TEST(GuidanceCacheTest, MissThenHit) {
  Graph g = Graph::FromEdges(GenerateChain(12));
  GuidanceCache cache(4);
  GuidanceKey key = GuidanceCache::MakeKey(g.fingerprint(), {0});

  EXPECT_EQ(cache.Lookup(key), nullptr);
  auto generated = Gen(g, {0});
  cache.Insert(key, generated);
  EXPECT_EQ(cache.Lookup(key).get(), generated.get());

  GuidanceCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(GuidanceCacheTest, DistinctRootsAreDistinctEntries) {
  Graph g = Graph::FromEdges(GenerateChain(12));
  GuidanceCache cache(4);
  cache.Insert(GuidanceCache::MakeKey(g.fingerprint(), {0}), Gen(g, {0}));
  EXPECT_EQ(cache.Lookup(GuidanceCache::MakeKey(g.fingerprint(), {1})),
            nullptr);
  EXPECT_EQ(cache.Lookup(GuidanceCache::MakeKey(g.fingerprint(), {0, 1})),
            nullptr);
  EXPECT_NE(cache.Lookup(GuidanceCache::MakeKey(g.fingerprint(), {0})),
            nullptr);
}

TEST(GuidanceCacheTest, LruEviction) {
  Graph g = Graph::FromEdges(GenerateChain(12));
  GuidanceCache cache(2);
  auto key = [&](VertexId r) {
    return GuidanceCache::MakeKey(g.fingerprint(), {r});
  };
  cache.Insert(key(0), Gen(g, {0}));
  cache.Insert(key(1), Gen(g, {1}));
  ASSERT_NE(cache.Lookup(key(0)), nullptr);  // bump 0 to MRU
  cache.Insert(key(2), Gen(g, {2}));         // evicts 1, the LRU entry
  EXPECT_EQ(cache.Lookup(key(1)), nullptr);
  EXPECT_NE(cache.Lookup(key(0)), nullptr);
  EXPECT_NE(cache.Lookup(key(2)), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(GuidanceCacheTest, InvalidateGraphDropsOnlyThatGraph) {
  Graph a = Graph::FromEdges(GenerateChain(12));
  Graph b = Graph::FromEdges(GenerateStar(6));
  GuidanceCache cache(8);
  cache.Insert(GuidanceCache::MakeKey(a.fingerprint(), {0}), Gen(a, {0}));
  cache.Insert(GuidanceCache::MakeKey(a.fingerprint(), {1}), Gen(a, {1}));
  cache.Insert(GuidanceCache::MakeKey(b.fingerprint(), {0}), Gen(b, {0}));
  cache.InvalidateGraph(a.fingerprint());
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.Lookup(GuidanceCache::MakeKey(a.fingerprint(), {0})),
            nullptr);
  EXPECT_NE(cache.Lookup(GuidanceCache::MakeKey(b.fingerprint(), {0})),
            nullptr);
  EXPECT_EQ(cache.stats().invalidations, 2u);
}

TEST(GuidanceCacheTest, EvictedEntryStaysAliveForHolders) {
  Graph g = Graph::FromEdges(GenerateChain(12));
  GuidanceCache cache(1);
  auto held = Gen(g, {0});
  cache.Insert(GuidanceCache::MakeKey(g.fingerprint(), {0}), held);
  cache.Insert(GuidanceCache::MakeKey(g.fingerprint(), {1}), Gen(g, {1}));
  // The {0} entry was evicted, but the shared_ptr keeps it valid.
  EXPECT_EQ(held->depth(), 11u);
}

// --------------------------------------------------------------- Provider

TEST(GuidanceProviderTest, PolicySelectionMatchesRootSelectors) {
  RmatOptions opt;
  opt.num_vertices = 128;
  opt.num_edges = 600;
  Graph g = Graph::FromEdges(GenerateRmat(opt));
  GuidanceRequest req;
  req.policy = GuidanceRootPolicy::kSingleSource;
  req.root = 7;
  EXPECT_EQ(GuidanceProvider::SelectRoots(g, req),
            std::vector<VertexId>{7});
  req.policy = GuidanceRootPolicy::kSourceVertices;
  EXPECT_EQ(GuidanceProvider::SelectRoots(g, req), SelectSourceRoots(g));
  req.policy = GuidanceRootPolicy::kLocalMinima;
  EXPECT_EQ(GuidanceProvider::SelectRoots(g, req), SelectLocalMinimaRoots(g));
}

TEST(GuidanceProviderTest, SecondAcquireHitsAndSharesTheObject) {
  Graph g = Graph::FromEdges(GenerateChain(32));
  GuidanceProvider provider;
  GuidanceRequest req;
  req.policy = GuidanceRootPolicy::kSingleSource;
  req.root = 0;

  GuidanceAcquisition first = provider.Acquire(g, req);
  ASSERT_TRUE(first);
  EXPECT_FALSE(first.cache_hit);

  GuidanceAcquisition second = provider.Acquire(g, req);
  ASSERT_TRUE(second);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(first.guidance.get(), second.guidance.get());

  GuidanceCacheStats stats = provider.cache_stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(GuidanceProviderTest, CacheBypassRegeneratesEveryTime) {
  Graph g = Graph::FromEdges(GenerateChain(32));
  GuidanceProvider provider;
  GuidanceRequest req;
  req.policy = GuidanceRootPolicy::kSingleSource;
  req.use_cache = false;
  GuidanceAcquisition a = provider.Acquire(g, req);
  GuidanceAcquisition b = provider.Acquire(g, req);
  EXPECT_FALSE(a.cache_hit);
  EXPECT_FALSE(b.cache_hit);
  EXPECT_NE(a.guidance.get(), b.guidance.get());
  EXPECT_EQ(provider.cache().size(), 0u);
}

TEST(GuidanceProviderTest, CachedMatchesRegeneratedAfterClear) {
  // Regression for the amortization contract: what the cache serves must
  // be indistinguishable from a fresh sweep.
  RmatOptions opt;
  opt.num_vertices = 256;
  opt.num_edges = 1500;
  opt.seed = 3;
  Graph g = Graph::FromEdges(GenerateRmat(opt));
  GuidanceProvider provider;
  GuidanceRequest req;
  req.policy = GuidanceRootPolicy::kLocalMinima;

  provider.Acquire(g, req);                             // warm
  GuidanceAcquisition cached = provider.Acquire(g, req);
  ASSERT_TRUE(cached.cache_hit);
  provider.cache().Clear();
  GuidanceAcquisition regenerated = provider.Acquire(g, req);
  ASSERT_FALSE(regenerated.cache_hit);

  ASSERT_EQ(cached.guidance->num_vertices(),
            regenerated.guidance->num_vertices());
  EXPECT_EQ(cached.guidance->depth(), regenerated.guidance->depth());
  for (VertexId v = 0; v < cached.guidance->num_vertices(); ++v) {
    ASSERT_EQ(cached.guidance->last_iter(v),
              regenerated.guidance->last_iter(v));
    ASSERT_EQ(cached.guidance->visited(v), regenerated.guidance->visited(v));
  }
}

// ---------------------------------------------------------- Singleflight

TEST(GuidanceProviderTest, ConcurrentMissesGenerateExactlyOnce) {
  RmatOptions opt;
  opt.num_vertices = 4096;
  opt.num_edges = 20000;
  opt.seed = 5;
  Graph g = Graph::FromEdges(GenerateRmat(opt));

  GuidanceProviderOptions popt;
  popt.generation_threads = 1;
  GuidanceProvider provider(popt);

  constexpr int kThreads = 8;
  std::vector<GuidanceAcquisition> acquisitions(kThreads);
  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ++ready;
      while (ready.load() < kThreads) std::this_thread::yield();
      GuidanceRequest req;
      req.policy = GuidanceRootPolicy::kLocalMinima;
      acquisitions[t] = provider.Acquire(g, req);
    });
  }
  for (std::thread& th : threads) th.join();

  // The singleflight contract: one O(|E|) sweep, shared by everyone.
  EXPECT_EQ(provider.stats().generations, 1u);
  int leaders = 0, followers = 0;
  for (const GuidanceAcquisition& a : acquisitions) {
    ASSERT_TRUE(a);
    EXPECT_EQ(a.get(), acquisitions[0].get());  // one shared object
    if (a.cache_hit || a.coalesced) {
      ++followers;
    } else {
      ++leaders;
    }
  }
  EXPECT_EQ(leaders, 1);  // everyone else coalesced or hit the cache
  EXPECT_EQ(followers, kThreads - 1);
}

// -------------------------------------------------------- Negative cache

TEST(GuidanceProviderTest, UnproducibleRequestsAreNegativelyCached) {
  Graph empty;  // zero vertices: every policy selects an empty root set
  GuidanceProvider provider;
  GuidanceRequest req;
  req.policy = GuidanceRootPolicy::kSourceVertices;

  GuidanceAcquisition first = provider.Acquire(empty, req);
  EXPECT_FALSE(first);  // null guidance = baseline mode
  EXPECT_EQ(provider.stats().negative_hits, 0u);

  GuidanceAcquisition second = provider.Acquire(empty, req);
  EXPECT_FALSE(second);
  EXPECT_EQ(provider.stats().negative_hits, 1u);  // remembered

  EXPECT_EQ(provider.stats().generations, 0u);  // no no-op sweeps ran
  EXPECT_EQ(provider.cache().size(), 0u);       // nothing useless cached

  provider.ClearNegativeCache();
  provider.Acquire(empty, req);
  EXPECT_EQ(provider.stats().negative_hits, 1u);  // re-learned, not hit
}

TEST(GuidanceProviderTest, ExplicitEmptyRootsReturnBaselineMode) {
  Graph g = Graph::FromEdges(GenerateChain(8));
  GuidanceProvider provider;
  GuidanceAcquisition a = provider.AcquireForRoots(g, {});
  EXPECT_FALSE(a);
  EXPECT_EQ(provider.stats().generations, 0u);
  EXPECT_EQ(provider.cache().size(), 0u);
}

// ------------------------------------------------------------ Store spill

TEST(GuidanceStoreIntegrationTest, SpillClearReloadMatchesRegeneration) {
  RmatOptions opt;
  opt.num_vertices = 256;
  opt.num_edges = 1500;
  opt.seed = 13;
  Graph g = Graph::FromEdges(GenerateRmat(opt));

  GuidanceProvider provider(StoreOptions("slfe_store_roundtrip"));
  ASSERT_NE(provider.store(), nullptr);
  ASSERT_TRUE(provider.store()->RemoveAll().ok());  // isolate reruns

  GuidanceRequest req;
  req.policy = GuidanceRootPolicy::kLocalMinima;
  GuidanceAcquisition generated = provider.Acquire(g, req);  // miss: spills
  ASSERT_TRUE(generated);
  EXPECT_FALSE(generated.cache_hit);

  provider.cache().Clear();  // memory gone, files survive
  GuidanceAcquisition reloaded = provider.Acquire(g, req);
  ASSERT_TRUE(reloaded);
  EXPECT_TRUE(reloaded.cache_hit);
  EXPECT_EQ(provider.cache_stats().store_hits, 1u);
  EXPECT_EQ(provider.stats().generations, 1u);  // the reload swept nothing

  // The store round-trip must be indistinguishable from a fresh sweep.
  RRGuidance fresh = RRGuidance::GenerateSerial(g, SelectLocalMinimaRoots(g));
  ExpectGuidanceEqual(*reloaded.guidance, fresh);
  ExpectGuidanceEqual(*reloaded.guidance, *generated.guidance);
}

TEST(GuidanceStoreIntegrationTest, EvictedEntryReloadsFromDisk) {
  Graph g = Graph::FromEdges(GenerateChain(24));
  GuidanceProvider provider(StoreOptions("slfe_store_evict", 1));
  ASSERT_TRUE(provider.store()->RemoveAll().ok());

  GuidanceAcquisition a0 = provider.AcquireForRoots(g, {0});
  provider.AcquireForRoots(g, {1});  // capacity 1: evicts {0}
  EXPECT_EQ(provider.cache_stats().evictions, 1u);

  GuidanceAcquisition again = provider.AcquireForRoots(g, {0});
  ASSERT_TRUE(again);
  EXPECT_TRUE(again.cache_hit);
  EXPECT_EQ(provider.cache_stats().store_hits, 1u);
  EXPECT_EQ(provider.stats().generations, 2u);  // no third sweep
  ExpectGuidanceEqual(*again.guidance, *a0.guidance);
}

TEST(GuidanceStoreIntegrationTest, PersistenceSurvivesProviderRestart) {
  RmatOptions opt;
  opt.num_vertices = 128;
  opt.num_edges = 700;
  opt.seed = 21;
  Graph g = Graph::FromEdges(GenerateRmat(opt));
  GuidanceProviderOptions popt = StoreOptions("slfe_store_restart");

  GuidanceRequest req;
  req.policy = GuidanceRootPolicy::kSourceVertices;
  GuidanceAcquisition first;
  {
    GuidanceProvider warm(popt);
    ASSERT_TRUE(warm.store()->RemoveAll().ok());
    first = warm.Acquire(g, req);
    ASSERT_FALSE(first.cache_hit);
  }  // "process exit": the provider and its in-memory cache are gone

  GuidanceProvider cold(popt);
  GuidanceAcquisition reloaded = cold.Acquire(g, req);
  ASSERT_TRUE(reloaded);
  EXPECT_TRUE(reloaded.cache_hit);
  EXPECT_EQ(cold.stats().generations, 0u);  // restart paid a read, no sweep
  EXPECT_EQ(cold.cache_stats().store_hits, 1u);
  ExpectGuidanceEqual(*reloaded.guidance, *first.guidance);
}

TEST(GuidanceStoreIntegrationTest, InvalidateGraphAlsoDropsFiles) {
  Graph g = Graph::FromEdges(GenerateChain(16));
  GuidanceProvider provider(StoreOptions("slfe_store_inval"));
  ASSERT_TRUE(provider.store()->RemoveAll().ok());

  provider.AcquireForRoots(g, {0});
  GuidanceKey key = GuidanceCache::MakeKey(g.fingerprint(), {0});
  ASSERT_TRUE(provider.store()->Contains(key));

  provider.cache().InvalidateGraph(g.fingerprint());
  EXPECT_FALSE(provider.store()->Contains(key));
  GuidanceAcquisition again = provider.AcquireForRoots(g, {0});
  EXPECT_FALSE(again.cache_hit);  // both levels were dropped
  EXPECT_EQ(provider.stats().generations, 2u);
}

// ------------------------------------------------------------- App layer

TEST(GuidanceProviderTest, RepeatedSsspJobHitsCacheWithIdenticalResults) {
  RmatOptions opt;
  opt.num_vertices = 256;
  opt.num_edges = 1500;
  opt.seed = 9;
  Graph g = Graph::FromEdges(GenerateRmat(opt));

  GuidanceProvider provider;
  AppConfig cfg;
  cfg.num_nodes = 2;
  cfg.enable_rr = true;
  cfg.guidance_provider = &provider;

  SsspResult first = RunSssp(g, cfg);
  EXPECT_FALSE(first.info.guidance_cache_hit);
  SsspResult second = RunSssp(g, cfg);
  EXPECT_TRUE(second.info.guidance_cache_hit);
  EXPECT_EQ(second.info.guidance_depth, first.info.guidance_depth);
  EXPECT_EQ(second.dist, first.dist);
  EXPECT_EQ(provider.cache_stats().hits, 1u);
}

// -------------------------------------------------- Hotness admission

TEST(GuidanceAdmissionTest, ColdGraphSkipsTheStoreWrite) {
  Graph g = Graph::FromEdges(GenerateChain(20));
  GuidanceProviderOptions opt = StoreOptions("slfe_admission_cold");
  opt.store_admission = [](uint64_t) { return false; };  // everything cold
  GuidanceProvider provider(opt);
  ASSERT_TRUE(provider.store()->RemoveAll().ok());

  GuidanceAcquisition acq = provider.AcquireForRoots(g, {0});
  ASSERT_TRUE(acq);  // in-memory guidance is unaffected by the gate
  GuidanceKey key = GuidanceCache::MakeKey(g.fingerprint(), {0});
  EXPECT_FALSE(provider.store()->Contains(key));
  EXPECT_EQ(provider.cache_stats().admission_skips, 1u);
  EXPECT_EQ(provider.cache_stats().admission_promotions, 0u);

  // The price of staying cold: nothing durable, so a cache wipe means a
  // full regeneration instead of a store reload.
  provider.cache().Clear();
  GuidanceAcquisition again = provider.AcquireForRoots(g, {0});
  ASSERT_TRUE(again);
  EXPECT_FALSE(again.cache_hit);
  EXPECT_EQ(provider.cache_stats().store_hits, 0u);
  EXPECT_EQ(provider.stats().generations, 2u);
}

TEST(GuidanceAdmissionTest, MemoryHitPromotesOnceTheGraphTurnsHot) {
  Graph g = Graph::FromEdges(GenerateChain(24));
  std::atomic<uint64_t> demand{0};  // stands in for the demand sketch
  GuidanceProviderOptions opt = StoreOptions("slfe_admission_promote");
  opt.store_admission = [&demand](uint64_t) { return demand.load() >= 2; };
  GuidanceProvider provider(opt);
  ASSERT_TRUE(provider.store()->RemoveAll().ok());

  demand = 1;
  provider.AcquireForRoots(g, {0});  // cold at insert: write skipped
  GuidanceKey key = GuidanceCache::MakeKey(g.fingerprint(), {0});
  EXPECT_FALSE(provider.store()->Contains(key));
  EXPECT_EQ(provider.cache_stats().admission_skips, 1u);

  // The graph turns hot while its guidance still lives in memory. The
  // insert path never runs again (every later acquire is a cache hit),
  // so the hit path itself must notice and persist — otherwise a hot
  // graph that was born cold would never reach the store.
  demand = 5;
  GuidanceAcquisition hot = provider.AcquireForRoots(g, {0});
  EXPECT_TRUE(hot.cache_hit);
  EXPECT_TRUE(provider.store()->Contains(key));
  EXPECT_EQ(provider.cache_stats().admission_promotions, 1u);

  // Promotion is once-per-entry, not once-per-hit.
  provider.AcquireForRoots(g, {0});
  EXPECT_EQ(provider.cache_stats().admission_promotions, 1u);

  // And the promoted bytes are real: wipe memory, reload from disk.
  provider.cache().Clear();
  GuidanceAcquisition reloaded = provider.AcquireForRoots(g, {0});
  EXPECT_TRUE(reloaded.cache_hit);
  EXPECT_EQ(provider.cache_stats().store_hits, 1u);
  EXPECT_EQ(provider.stats().generations, 1u);
}

TEST(GuidanceAdmissionTest, NullGateAdmitsEverything) {
  Graph g = Graph::FromEdges(GenerateChain(16));
  GuidanceProvider provider(StoreOptions("slfe_admission_null"));
  ASSERT_TRUE(provider.store()->RemoveAll().ok());
  provider.AcquireForRoots(g, {0});
  EXPECT_TRUE(
      provider.store()->Contains(GuidanceCache::MakeKey(g.fingerprint(), {0})));
  EXPECT_EQ(provider.cache_stats().admission_skips, 0u);
}

TEST(GuidanceProviderTest, BaselineRunsAcquireNothing) {
  Graph g = Graph::FromEdges(GenerateChain(16));
  GuidanceProvider provider;
  AppConfig cfg;
  cfg.enable_rr = false;
  cfg.guidance_provider = &provider;
  SsspResult r = RunSssp(g, cfg);
  EXPECT_EQ(r.info.guidance_seconds, 0.0);
  EXPECT_FALSE(r.info.guidance_cache_hit);
  GuidanceCacheStats stats = provider.cache_stats();
  EXPECT_EQ(stats.hits + stats.misses, 0u);
}

}  // namespace
}  // namespace slfe
