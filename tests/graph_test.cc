// Unit tests for the graph substrate: edge lists, CSR construction,
// generators, loaders, the chunk partitioner, and degree statistics.

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <set>

#include "slfe/graph/csr.h"
#include "slfe/graph/degree_stats.h"
#include "slfe/graph/edge_list.h"
#include "slfe/graph/generators.h"
#include "slfe/graph/graph.h"
#include "slfe/graph/loader.h"
#include "slfe/graph/partitioner.h"

namespace slfe {
namespace {

// --------------------------------------------------------------- EdgeList

TEST(EdgeListTest, AddExpandsVertexBound) {
  EdgeList e;
  e.Add(3, 7);
  EXPECT_EQ(e.num_vertices(), 8u);
  EXPECT_EQ(e.num_edges(), 1u);
}

TEST(EdgeListTest, DeduplicateRemovesSelfLoopsAndDuplicates) {
  EdgeList e(5);
  e.Add(0, 1);
  e.Add(0, 1, 2.0f);  // duplicate pair (different weight still a dup)
  e.Add(2, 2);        // self-loop
  e.Add(1, 0);        // reverse is NOT a duplicate
  size_t removed = e.Deduplicate();
  EXPECT_EQ(removed, 2u);
  EXPECT_EQ(e.num_edges(), 2u);
}

TEST(EdgeListTest, SymmetrizeDoublesEdges) {
  EdgeList e(4);
  e.Add(0, 1, 3.0f);
  e.Add(2, 3, 4.0f);
  e.Symmetrize();
  ASSERT_EQ(e.num_edges(), 4u);
  EXPECT_EQ(e.edges()[2].src, 1u);
  EXPECT_EQ(e.edges()[2].dst, 0u);
  EXPECT_EQ(e.edges()[2].weight, 3.0f);
}

TEST(EdgeListTest, ValidateCatchesOutOfRange) {
  EdgeList e(3);
  e.mutable_edges().push_back(Edge{0, 9, 1.0f});
  EXPECT_EQ(e.Validate().code(), StatusCode::kOutOfRange);
}

// -------------------------------------------------------------------- CSR

TEST(CsrTest, BySourceGroupsOutNeighbors) {
  EdgeList e(4);
  e.Add(0, 1, 1.0f);
  e.Add(0, 2, 2.0f);
  e.Add(3, 0, 3.0f);
  Csr csr = Csr::FromEdgesBySource(e);
  EXPECT_EQ(csr.num_vertices(), 4u);
  EXPECT_EQ(csr.num_edges(), 3u);
  EXPECT_EQ(csr.degree(0), 2u);
  EXPECT_EQ(csr.degree(1), 0u);
  EXPECT_EQ(csr.degree(3), 1u);
  std::set<VertexId> n0;
  csr.ForEachNeighbor(0, [&](VertexId u, Weight) { n0.insert(u); });
  EXPECT_EQ(n0, (std::set<VertexId>{1, 2}));
}

TEST(CsrTest, ByDestinationGroupsInNeighbors) {
  EdgeList e(4);
  e.Add(0, 2);
  e.Add(1, 2);
  e.Add(2, 3);
  Csr csc = Csr::FromEdgesByDestination(e);
  EXPECT_EQ(csc.degree(2), 2u);
  EXPECT_EQ(csc.degree(3), 1u);
  std::set<VertexId> in2;
  csc.ForEachNeighbor(2, [&](VertexId u, Weight) { in2.insert(u); });
  EXPECT_EQ(in2, (std::set<VertexId>{0, 1}));
}

TEST(CsrTest, WeightsTravelWithEdges) {
  EdgeList e(3);
  e.Add(0, 1, 5.0f);
  e.Add(0, 2, 7.0f);
  Csr csr = Csr::FromEdgesBySource(e);
  std::map<VertexId, Weight> got;
  csr.ForEachNeighbor(0, [&](VertexId u, Weight w) { got[u] = w; });
  EXPECT_EQ(got[1], 5.0f);
  EXPECT_EQ(got[2], 7.0f);
}

TEST(GraphTest, InOutEdgeCountsAgree) {
  EdgeList e = GenerateErdosRenyi(100, 800, 4);
  Graph g = Graph::FromEdges(e);
  EXPECT_EQ(g.out().num_edges(), g.in().num_edges());
  EdgeId total_out = 0, total_in = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    total_out += g.out_degree(v);
    total_in += g.in_degree(v);
  }
  EXPECT_EQ(total_out, g.num_edges());
  EXPECT_EQ(total_in, g.num_edges());
}

// ------------------------------------------------------------- Generators

TEST(GeneratorsTest, RmatIsDeterministic) {
  RmatOptions opt;
  opt.num_vertices = 256;
  opt.num_edges = 1000;
  opt.seed = 3;
  EdgeList a = GenerateRmat(opt);
  EdgeList b = GenerateRmat(opt);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (size_t i = 0; i < a.num_edges(); ++i) {
    EXPECT_EQ(a.edges()[i], b.edges()[i]);
  }
}

TEST(GeneratorsTest, RmatHasNoSelfLoopsAndInBounds) {
  RmatOptions opt;
  opt.num_vertices = 128;
  opt.num_edges = 2000;
  EdgeList e = GenerateRmat(opt);
  for (const Edge& edge : e.edges()) {
    EXPECT_NE(edge.src, edge.dst);
    EXPECT_LT(edge.src, e.num_vertices());
    EXPECT_LT(edge.dst, e.num_vertices());
  }
}

TEST(GeneratorsTest, RmatSkewExceedsUniform) {
  // The R-MAT quadrant weights (.57/.19/.19) concentrate edges on low ids;
  // an ER graph of the same size must look much flatter.
  RmatOptions opt;
  opt.num_vertices = 4096;
  opt.num_edges = 40000;
  Graph rmat = Graph::FromEdges(GenerateRmat(opt));
  Graph er = Graph::FromEdges(GenerateErdosRenyi(4096, 40000, 2));
  DegreeStats rs = ComputeDegreeStats(rmat);
  DegreeStats es = ComputeDegreeStats(er);
  EXPECT_GT(rs.top1pct_edge_share, 2.0 * es.top1pct_edge_share);
  EXPECT_GT(rs.max_out_degree, 4 * es.max_out_degree);
}

TEST(GeneratorsTest, GridShapeAndDegrees) {
  EdgeList e = GenerateGrid(4, 5);
  Graph g = Graph::FromEdges(e);
  EXPECT_EQ(g.num_vertices(), 20u);
  // Interior vertex has 4 out-edges; corner has 2.
  EXPECT_EQ(g.out_degree(0), 2u);            // corner (0,0)
  EXPECT_EQ(g.out_degree(1 * 5 + 2), 4u);    // interior (1,2)
}

TEST(GeneratorsTest, ChainDepthEqualsLength) {
  EdgeList e = GenerateChain(10);
  Graph g = Graph::FromEdges(e);
  EXPECT_EQ(g.num_edges(), 9u);
  EXPECT_EQ(g.out_degree(9), 0u);
  EXPECT_EQ(g.in_degree(0), 0u);
}

TEST(GeneratorsTest, StarHubDegree) {
  Graph g = Graph::FromEdges(GenerateStar(6));
  EXPECT_EQ(g.out_degree(0), 6u);
  EXPECT_EQ(g.in_degree(0), 6u);
  EXPECT_EQ(g.out_degree(3), 1u);
}

TEST(GeneratorsTest, CompleteGraphEdgeCount) {
  Graph g = Graph::FromEdges(GenerateComplete(7));
  EXPECT_EQ(g.num_edges(), 42u);  // 7 * 6
}

TEST(GeneratorsTest, DatasetSuiteHasAllPaperAliases) {
  for (const char* alias : {"PK", "OK", "LJ", "WK", "DI", "ST", "FS", "RMAT"}) {
    auto spec = FindDataset(alias);
    ASSERT_TRUE(spec.ok()) << alias;
    EXPECT_EQ(spec.value().alias, alias);
  }
  EXPECT_FALSE(FindDataset("NOPE").ok());
}

TEST(GeneratorsTest, MakeDatasetScalesDown) {
  auto spec = FindDataset("PK").value();
  EdgeList full = MakeDataset(spec, 16);
  EXPECT_LE(full.num_vertices(), spec.num_vertices / 16 + 1);
  EXPECT_GT(full.num_edges(), 0u);
}

// ----------------------------------------------------------------- Loader

TEST(LoaderTest, TextRoundTrip) {
  EdgeList e(4);
  e.Add(0, 1, 2.5f);
  e.Add(3, 2, 1.0f);
  std::string path = ::testing::TempDir() + "slfe_text_edges.txt";
  ASSERT_TRUE(SaveEdgeListText(e, path).ok());
  auto loaded = LoadEdgeListText(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_edges(), 2u);
  EXPECT_EQ(loaded.value().edges()[0].weight, 2.5f);
  std::remove(path.c_str());
}

TEST(LoaderTest, TextSkipsCommentsAndDefaultsWeight) {
  std::string path = ::testing::TempDir() + "slfe_text_comments.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fprintf(f, "# comment\n%% another\n0 1\n2 3 9.5\n");
  std::fclose(f);
  auto loaded = LoadEdgeListText(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().num_edges(), 2u);
  EXPECT_EQ(loaded.value().edges()[0].weight, 1.0f);
  EXPECT_EQ(loaded.value().edges()[1].weight, 9.5f);
  std::remove(path.c_str());
}

TEST(LoaderTest, TextRejectsMalformedLine) {
  std::string path = ::testing::TempDir() + "slfe_text_bad.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fprintf(f, "0 1\nbroken\n");
  std::fclose(f);
  auto loaded = LoadEdgeListText(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(LoaderTest, MissingFileIsIOError) {
  EXPECT_EQ(LoadEdgeListText("/nonexistent/file.txt").status().code(),
            StatusCode::kIOError);
  EXPECT_EQ(LoadEdgeListBinary("/nonexistent/file.bin").status().code(),
            StatusCode::kIOError);
}

TEST(LoaderTest, BinaryRoundTripPreservesEverything) {
  RmatOptions opt;
  opt.num_vertices = 64;
  opt.num_edges = 300;
  opt.weighted = true;
  EdgeList e = GenerateRmat(opt);
  std::string path = ::testing::TempDir() + "slfe_bin_edges.bin";
  ASSERT_TRUE(SaveEdgeListBinary(e, path).ok());
  auto loaded = LoadEdgeListBinary(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().num_edges(), e.num_edges());
  EXPECT_EQ(loaded.value().num_vertices(), e.num_vertices());
  for (size_t i = 0; i < e.num_edges(); ++i) {
    EXPECT_EQ(loaded.value().edges()[i], e.edges()[i]);
  }
  std::remove(path.c_str());
}

TEST(LoaderTest, BinaryRejectsBadMagic) {
  std::string path = ::testing::TempDir() + "slfe_bin_bad.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  uint64_t junk[3] = {0xdeadbeef, 1, 1};
  std::fwrite(junk, sizeof(uint64_t), 3, f);
  std::fclose(f);
  EXPECT_EQ(LoadEdgeListBinary(path).status().code(),
            StatusCode::kCorruption);
  std::remove(path.c_str());
}

// ------------------------------------------------------------ Partitioner

class PartitionerParamTest : public ::testing::TestWithParam<size_t> {};

TEST_P(PartitionerParamTest, RangesCoverAllVerticesContiguously) {
  size_t parts = GetParam();
  RmatOptions opt;
  opt.num_vertices = 1024;
  opt.num_edges = 8000;
  Graph g = Graph::FromEdges(GenerateRmat(opt));
  ChunkPartitioner partitioner;
  auto ranges = partitioner.Partition(g, parts);
  ASSERT_EQ(ranges.size(), parts);
  EXPECT_TRUE(
      ChunkPartitioner::ValidatePartition(ranges, g.num_vertices()).ok());
}

TEST_P(PartitionerParamTest, OwnerLookupMatchesRanges) {
  size_t parts = GetParam();
  Graph g = Graph::FromEdges(GenerateErdosRenyi(500, 3000, 6));
  ChunkPartitioner partitioner;
  auto ranges = partitioner.Partition(g, parts);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    size_t owner = ChunkPartitioner::OwnerOf(ranges, v);
    EXPECT_TRUE(ranges[owner].Contains(v)) << "v=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PartitionerParamTest,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 16));

TEST(PartitionerTest, EdgeBalanceWithinFactorOnUniformGraph) {
  Graph g = Graph::FromEdges(GenerateErdosRenyi(4096, 40000, 8));
  ChunkPartitioner partitioner;
  auto ranges = partitioner.Partition(g, 8);
  // Uniform degrees: each node's edge load should be within 25% of ideal.
  EXPECT_LT(ChunkPartitioner::EdgeImbalance(g, ranges), 1.25);
}

TEST(PartitionerTest, ValidateCatchesGap) {
  std::vector<VertexRange> ranges = {{0, 5}, {6, 10}};
  EXPECT_EQ(ChunkPartitioner::ValidatePartition(ranges, 10).code(),
            StatusCode::kCorruption);
}

TEST(PartitionerTest, ValidateCatchesShortCoverage) {
  std::vector<VertexRange> ranges = {{0, 5}, {5, 9}};
  EXPECT_EQ(ChunkPartitioner::ValidatePartition(ranges, 10).code(),
            StatusCode::kCorruption);
}

// ------------------------------------------------------------ DegreeStats

TEST(DegreeStatsTest, CountsSourcesAndSinks) {
  EdgeList e(4);
  e.Add(0, 1);
  e.Add(1, 2);
  e.Add(0, 2);
  Graph g = Graph::FromEdges(e);
  DegreeStats s = ComputeDegreeStats(g);
  EXPECT_EQ(s.zero_in_degree, 2u);   // 0 and 3
  EXPECT_EQ(s.zero_out_degree, 2u);  // 2 and 3
  EXPECT_EQ(s.max_out_degree, 2u);
  EXPECT_DOUBLE_EQ(s.avg_out_degree, 3.0 / 4.0);
}

}  // namespace
}  // namespace slfe
