// Tests for the public API layer (api/): AppRegistry completeness —
// every app source file in src/slfe/apps/ must have registered a
// descriptor, and the --list-apps rendering must match the checked-in
// docs/APPS.txt golden — plus the Session facade: every declared
// (app, engine) pair actually runs through Session::Run on a small graph,
// guided and unguided results agree per pair, requirement violations and
// unknown names reject with registry-derived messages, and repeated runs
// share the session's guidance cache.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "slfe/api/app_registry.h"
#include "slfe/api/session.h"
#include "slfe/graph/generators.h"

namespace slfe::api {
namespace {

Graph Rmat(VertexId n, EdgeId m, uint64_t seed, bool weighted = true) {
  RmatOptions opt;
  opt.num_vertices = n;
  opt.num_edges = m;
  opt.weighted = weighted;
  opt.seed = seed;
  EdgeList e = GenerateRmat(opt);
  e.Deduplicate();
  return Graph::FromEdges(e);
}

/// Guided-vs-unguided agreement bar per app, aligned with
/// property_sweep_test: exact for the min/max and DP apps, the
/// finish-early freeze bounds for the arithmetic ones.
double ToleranceFor(const std::string& app) {
  if (app == "pr" || app == "tr") return 5e-3;
  if (app == "spmv") return 1e-3;
  if (app == "heat" || app == "bp") return 1e-2;
  return 0.0;
}

// ----------------------------------------------------------- AppRegistry

TEST(AppRegistryTest, EngineNamesRoundTrip) {
  for (Engine engine : {Engine::kDist, Engine::kShm, Engine::kGas,
                        Engine::kOoc}) {
    Result<Engine> parsed = ParseEngine(EngineName(engine));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), engine);
  }
  Status unknown = ParseEngine("quantum").status();
  EXPECT_EQ(unknown.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(unknown.message().find("dist"), std::string::npos)
      << "error should list the valid engines: " << unknown.ToString();
}

// THE completeness bar: every app translation unit in src/slfe/apps/ must
// have self-registered. A new app file without a registration block (or a
// registration dropped by a build-system change) fails here.
TEST(AppRegistryTest, EveryAppSourceFileIsRegistered) {
  // File stem -> registered app name where they differ.
  const std::map<std::string, std::string> renamed = {
      {"approx_diameter", "diameter"},
      {"belief_propagation", "bp"},
      {"heat_simulation", "heat"},
      {"triangle_count", "tc"},
  };
  // Ground-truth implementations, not a runnable app.
  const std::set<std::string> excluded = {"reference", "app_common"};

  std::filesystem::path apps_dir =
      std::filesystem::path(SLFE_SOURCE_DIR) / "src" / "slfe" / "apps";
  ASSERT_TRUE(std::filesystem::is_directory(apps_dir))
      << "apps dir not found: " << apps_dir;

  const AppRegistry& registry = AppRegistry::Global();
  size_t checked = 0;
  for (const auto& entry : std::filesystem::directory_iterator(apps_dir)) {
    if (entry.path().extension() != ".cc") continue;
    std::string stem = entry.path().stem().string();
    if (excluded.count(stem) > 0) continue;
    auto it = renamed.find(stem);
    std::string app = it == renamed.end() ? stem : it->second;
    const AppDescriptor* descriptor = registry.Find(app);
    ASSERT_NE(descriptor, nullptr)
        << entry.path().filename() << " has no registered app '" << app
        << "' — add an AppRegistrar block to the file";
    EXPECT_FALSE(descriptor->runners.empty()) << app;
    EXPECT_FALSE(descriptor->summary.empty()) << app;
    ++checked;
  }
  EXPECT_GE(checked, 13u);
  EXPECT_EQ(checked, registry.Apps().size())
      << "registry contains apps with no source file in src/slfe/apps/";
}

// The --list-apps rendering both CLIs print is pinned to docs/APPS.txt
// (CI diffs the binary's output against the same file): a registered-but-
// unlisted app, or a stale listing, fails here and in CI.
TEST(AppRegistryTest, ListAppsMatchesCheckedInGolden) {
  std::filesystem::path golden_path =
      std::filesystem::path(SLFE_SOURCE_DIR) / "docs" / "APPS.txt";
  std::ifstream in(golden_path);
  ASSERT_TRUE(in.good()) << "missing golden listing: " << golden_path;
  std::stringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(AppRegistry::Global().ListApps(), golden.str())
      << "docs/APPS.txt is stale — regenerate with "
         "`slfe_cli --list-apps > docs/APPS.txt`";
}

TEST(AppRegistryTest, DuplicateAndEmptyRegistrationsRejected) {
  AppDescriptor nameless;
  nameless.runners[Engine::kDist] = [](const RunContext&) {
    return AppOutcome{};
  };
  EXPECT_EQ(AppRegistry::Global().Register(nameless).code(),
            StatusCode::kInvalidArgument);

  AppDescriptor runnerless;
  runnerless.name = "runnerless";
  EXPECT_EQ(AppRegistry::Global().Register(runnerless).code(),
            StatusCode::kInvalidArgument);

  AppDescriptor duplicate;
  duplicate.name = "sssp";
  duplicate.runners[Engine::kDist] = [](const RunContext&) {
    return AppOutcome{};
  };
  EXPECT_EQ(AppRegistry::Global().Register(duplicate).code(),
            StatusCode::kFailedPrecondition);
}

// --------------------------------------------------------------- Session

// Every (app, engine) pair the descriptors declare runs through
// Session::Run — including the pairs no surface exposed before this API —
// and the guided run agrees with the unguided baseline per pair.
TEST(SessionTest, EveryDeclaredPairRunsAndGuidedAgreesWithBaseline) {
  Session session;
  ASSERT_TRUE(session.AddGraph("g", Rmat(300, 2400, 21)).ok());

  size_t pairs = 0;
  for (const AppDescriptor* app : AppRegistry::Global().Apps()) {
    for (Engine engine : app->engines()) {
      SCOPED_TRACE(std::string(EngineName(engine)) + "/" + app->name);
      AppRequest request;
      request.app = app->name;
      request.engine = EngineName(engine);
      request.graph = "g";
      request.max_iters = 30;

      request.enable_rr = false;
      AppOutcome baseline = session.Run(request);
      ASSERT_TRUE(baseline.status.ok()) << baseline.status.ToString();
      EXPECT_GT(baseline.info.supersteps, 0u);

      request.enable_rr = true;
      AppOutcome guided = session.Run(request);
      ASSERT_TRUE(guided.status.ok()) << guided.status.ToString();

      ASSERT_EQ(guided.values.size(), baseline.values.size());
      double tolerance = ToleranceFor(app->name);
      for (size_t v = 0; v < baseline.values.size(); ++v) {
        // Exact match first: also covers the sentinel values ASSERT_NEAR
        // cannot difference (inf distances, inf spmv overflow).
        if (guided.values[v] == baseline.values[v]) continue;
        ASSERT_NEAR(guided.values[v], baseline.values[v], tolerance)
            << "v=" << v;
      }
      if (baseline.values.empty()) {
        // Scalar apps (tc/mst/diameter): the summary must agree exactly.
        EXPECT_EQ(guided.summary, baseline.summary);
      }
      ++pairs;
    }
  }
  EXPECT_GE(pairs, 20u);
}

// The ISSUE's acceptance pairs, directly on the facade the CLI wraps:
// gas:sssp (slfe_cli --engine=gas) and ooc:pr both run and agree with
// their dist counterparts on the summary scalar.
TEST(SessionTest, PreviouslyUnreachablePairsMatchDistResults) {
  Session session;
  ASSERT_TRUE(session.AddGraph("g", Rmat(400, 3200, 33)).ok());

  AppRequest request;
  request.graph = "g";
  request.app = "sssp";
  request.engine = "dist";
  AppOutcome dist_sssp = session.Run(request);
  request.engine = "gas";
  AppOutcome gas_sssp = session.Run(request);
  ASSERT_TRUE(dist_sssp.status.ok());
  ASSERT_TRUE(gas_sssp.status.ok()) << gas_sssp.status.ToString();
  // Exact fixpoint: identical distances vertex by vertex.
  ASSERT_EQ(gas_sssp.values.size(), dist_sssp.values.size());
  for (size_t v = 0; v < dist_sssp.values.size(); ++v) {
    ASSERT_EQ(gas_sssp.values[v], dist_sssp.values[v]) << "v=" << v;
  }

  request.app = "pr";
  request.engine = "ooc";
  request.max_iters = 20;
  AppOutcome ooc_pr = session.Run(request);
  ASSERT_TRUE(ooc_pr.status.ok()) << ooc_pr.status.ToString();
  EXPECT_EQ(ooc_pr.values.size(), dist_sssp.values.size());
  EXPECT_GT(ooc_pr.info.supersteps, 0u);
}

TEST(SessionTest, ValidationErrorsAreRegistryDerived) {
  Session session;
  ASSERT_TRUE(session.AddGraph("g", Rmat(200, 1500, 40)).ok());

  AppRequest request;
  request.graph = "g";
  request.app = "nosuchapp";
  Status unknown_app = session.Validate(request);
  EXPECT_EQ(unknown_app.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(unknown_app.message().find("sssp"), std::string::npos)
      << "should list registered apps: " << unknown_app.ToString();

  request.app = "sssp";
  request.engine = "quantum";
  EXPECT_EQ(session.Validate(request).code(), StatusCode::kInvalidArgument);

  request.engine = "ooc";  // declared for pr/cc, not sssp
  Status undeclared = session.Validate(request);
  EXPECT_EQ(undeclared.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(undeclared.message().find("dist"), std::string::npos)
      << "should cite the app's declared engines: " << undeclared.ToString();

  request.engine = "dist";
  request.graph = "missing";
  EXPECT_EQ(session.Validate(request).code(), StatusCode::kNotFound);

  request.graph = "g";
  request.root = 1u << 30;  // out of range for a single-source app
  EXPECT_EQ(session.Validate(request).code(), StatusCode::kInvalidArgument);
}

TEST(SessionTest, GraphRequirementsEnforcedPerSessionPolicy) {
  AppRequest sssp_request;
  sssp_request.app = "sssp";
  sssp_request.graph = "unweighted";

  {  // Strict sessions reject needs_weights apps on unit-weight graphs.
    SessionOptions strict;
    strict.strict_weights = true;
    Session session(strict);
    ASSERT_TRUE(
        session.AddGraph("unweighted", Rmat(200, 1500, 41, false)).ok());
    Status rejected = session.Validate(sssp_request);
    EXPECT_EQ(rejected.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(rejected.message().find("weight"), std::string::npos)
        << rejected.ToString();
  }
  {  // Permissive sessions (the CLI) run them — sssp becomes hop counts.
    Session session;
    ASSERT_TRUE(
        session.AddGraph("unweighted", Rmat(200, 1500, 41, false)).ok());
    EXPECT_TRUE(session.Run(sssp_request).status.ok());
  }
  {  // needs_symmetric without auto-symmetrize: reject; with (default):
     // the session derives the closure and cc runs.
    SessionOptions no_auto;
    no_auto.auto_symmetrize = false;
    Session strict_session(no_auto);
    ASSERT_TRUE(strict_session.AddGraph("g", Rmat(200, 1500, 42)).ok());
    AppRequest cc_request;
    cc_request.app = "cc";
    cc_request.graph = "g";
    Status rejected = strict_session.Validate(cc_request);
    EXPECT_EQ(rejected.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(rejected.message().find("symmetric"), std::string::npos);

    Session session;
    ASSERT_TRUE(session.AddGraph("g", Rmat(200, 1500, 42)).ok());
    AppOutcome outcome = session.Run(cc_request);
    ASSERT_TRUE(outcome.status.ok());
    // ResolveGraph hands back the symmetrized variant (same |V|, more
    // directed edges), not the registered graph.
    auto resolved = session.ResolveGraph(cc_request);
    ASSERT_TRUE(resolved.ok());
    std::shared_ptr<const Graph> base = session.GetGraph("g");
    EXPECT_EQ(resolved.value()->num_vertices(), base->num_vertices());
    EXPECT_GT(resolved.value()->num_edges(), base->num_edges());
    // The variant is cached: resolving twice returns the same object.
    auto again = session.ResolveGraph(cc_request);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(resolved.value().get(), again.value().get());
  }
}

TEST(SessionTest, RepeatedGuidedRunsShareTheSessionProvider) {
  Session session;
  ASSERT_TRUE(session.AddGraph("g", Rmat(300, 2400, 50)).ok());
  AppRequest request;
  request.app = "sssp";
  request.graph = "g";
  request.enable_rr = true;

  AppOutcome first = session.Run(request);
  ASSERT_TRUE(first.status.ok());
  EXPECT_TRUE(first.info.guidance_acquired);
  EXPECT_FALSE(first.info.guidance_cache_hit);

  AppOutcome second = session.Run(request);
  ASSERT_TRUE(second.status.ok());
  EXPECT_TRUE(second.info.guidance_cache_hit)
      << "second run should ride the session's guidance cache";
  EXPECT_EQ(session.provider().stats().generations, 1u);

  // Duplicate graph names are rejected, like JobService::RegisterGraph.
  EXPECT_EQ(session.AddGraph("g", Rmat(100, 700, 51)).code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace slfe::api
