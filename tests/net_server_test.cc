// Tests for the TCP front end: many concurrent connections pipelining
// submits/mutations through one epoll loop with streamed completions, the
// wait barrier (results and `done` before any line behind the barrier),
// the auth handshake (bad token drops, good token binds the tenant), the
// overload contract (every job completes or is explicitly rejected — a
// connection never hangs), admission control, and shutdown draining.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "slfe/graph/generators.h"
#include "slfe/net/net_server.h"
#include "slfe/service/job_service.h"

namespace slfe {
namespace {

Graph Rmat(VertexId n, EdgeId m, uint64_t seed) {
  RmatOptions opt;
  opt.num_vertices = n;
  opt.num_edges = m;
  opt.weighted = true;
  opt.seed = seed;
  EdgeList e = GenerateRmat(opt);
  e.Deduplicate();
  return Graph::FromEdges(e);
}

/// A blocking protocol client with a recv timeout, so a server bug shows
/// up as a failed read instead of a hung test.
class TestClient {
 public:
  explicit TestClient(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    timeval tv{};
    tv.tv_sec = 30;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ =
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  TestClient(const TestClient&) = delete;
  TestClient& operator=(const TestClient&) = delete;

  bool connected() const { return connected_; }

  void Send(const std::string& text) {
    size_t off = 0;
    while (off < text.size()) {
      ssize_t n = ::send(fd_, text.data() + off, text.size() - off, 0);
      if (n <= 0) return;
      off += static_cast<size_t>(n);
    }
  }

  /// One line without its '\n'; "" once the peer closed (or timed out).
  std::string ReadLine() {
    while (!eof_) {
      size_t pos = buf_.find('\n');
      if (pos != std::string::npos) {
        std::string line = buf_.substr(0, pos);
        buf_.erase(0, pos + 1);
        return line;
      }
      char tmp[4096];
      ssize_t n = ::recv(fd_, tmp, sizeof(tmp), 0);
      if (n <= 0) {
        eof_ = true;
        break;
      }
      buf_.append(tmp, static_cast<size_t>(n));
    }
    return "";
  }

  /// Reads until the peer closes; true when it actually did (not timeout).
  bool ReadToEof() {
    while (!eof_) {
      char tmp[4096];
      ssize_t n = ::recv(fd_, tmp, sizeof(tmp), 0);
      if (n == 0) eof_ = true;
      if (n < 0) return false;  // timeout: the server failed to close us
      if (n > 0) buf_.append(tmp, static_cast<size_t>(n));
    }
    return true;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  bool eof_ = false;
  std::string buf_;
};

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

class NetServerTest : public ::testing::Test {
 protected:
  void StartServer(net::NetServerOptions nopt,
                   service::JobServiceOptions sopt) {
    svc_ = std::make_unique<service::JobService>(sopt);
    ASSERT_TRUE(svc_->RegisterGraph("g", Rmat(400, 1600, 7)).ok());
    server_ = std::make_unique<net::NetServer>(*svc_, nopt);
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_NE(server_->port(), 0);
    serve_thread_ = std::thread([this] { serve_rc_ = server_->Serve(); });
  }

  void StopServer() {
    if (server_ != nullptr) server_->Stop();
    if (serve_thread_.joinable()) serve_thread_.join();
  }

  void TearDown() override {
    StopServer();
    if (svc_ != nullptr) svc_->Shutdown();
  }

  service::JobServiceOptions DefaultServiceOptions() {
    service::JobServiceOptions sopt;
    sopt.workers = 4;
    sopt.queue_capacity = 256;
    sopt.job_nodes = 2;
    return sopt;
  }

  std::unique_ptr<service::JobService> svc_;
  std::unique_ptr<net::NetServer> server_;
  std::thread serve_thread_;
  int serve_rc_ = -1;
};

/// What one scripted client observed, collected off-thread and asserted
/// on the main thread (gtest assertions are not thread-safe).
struct ClientRun {
  bool connected = false;
  int queued = 0;
  int jobs = 0;
  int rejects = 0;
  std::set<uint64_t> reqs;     // req= tags on streamed job lines
  int done_at = -1;            // line index of `done req=N`
  int last_job_at = -1;
  int first_stats_at = -1;
  bool clean_eof = false;
};

uint64_t TrailingReq(const std::string& line) {
  size_t pos = line.rfind(" req=");
  if (pos == std::string::npos) return 0;
  return std::strtoull(line.c_str() + pos + 5, nullptr, 10);
}

TEST_F(NetServerTest, EightConnectionsPipelineWithInterleavedCompletions) {
  net::NetServerOptions nopt;
  StartServer(nopt, DefaultServiceOptions());
  const uint16_t port = server_->port();

  // Each client pipelines 4 submits + 1 mutation, then wait/stats/quit in
  // one write — nothing blocks on results until the barrier.
  constexpr int kClients = 8;
  constexpr uint64_t kReqs = 5;
  std::vector<ClientRun> runs(kClients);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([port, i, &runs] {
      ClientRun& run = runs[i];
      TestClient client(port);
      run.connected = client.connected();
      if (!run.connected) return;
      std::string tenant = "t" + std::to_string(i);
      std::string script;
      for (int j = 0; j < 4; ++j) {
        script += "submit " + tenant + " sssp g " + std::to_string(j) + "\n";
      }
      script += "mutate " + tenant + " g ins " + std::to_string(i) + " " +
                std::to_string(i + 1) + " 0.5\n";
      script += "wait\nstats\nquit\n";
      client.Send(script);
      for (int at = 0;; ++at) {
        std::string line = client.ReadLine();
        if (line.empty()) break;
        if (StartsWith(line, "queued req=")) ++run.queued;
        if (StartsWith(line, "job ")) {
          ++run.jobs;
          run.last_job_at = at;
          run.reqs.insert(TrailingReq(line));
        }
        if (StartsWith(line, "reject:")) ++run.rejects;
        if (StartsWith(line, "done req=")) run.done_at = at;
        if (run.first_stats_at < 0 && StartsWith(line, "service:")) {
          run.first_stats_at = at;
        }
      }
      run.clean_eof = client.ReadToEof();
    });
  }
  for (std::thread& t : threads) t.join();

  for (int i = 0; i < kClients; ++i) {
    const ClientRun& run = runs[i];
    ASSERT_TRUE(run.connected) << "client " << i;
    EXPECT_EQ(run.queued, static_cast<int>(kReqs)) << "client " << i;
    EXPECT_EQ(run.jobs, static_cast<int>(kReqs)) << "client " << i;
    EXPECT_EQ(run.rejects, 0) << "client " << i;
    // Streamed results arrive in completion order but cover exactly this
    // connection's request numbers — nothing lost, nothing duplicated,
    // nothing leaked across connections.
    std::set<uint64_t> want;
    for (uint64_t r = 1; r <= kReqs; ++r) want.insert(r);
    EXPECT_EQ(run.reqs, want) << "client " << i;
    // The wait barrier: every result precedes `done`, and `stats` output
    // (queued behind the barrier) follows it.
    ASSERT_GE(run.done_at, 0) << "client " << i;
    EXPECT_LT(run.last_job_at, run.done_at) << "client " << i;
    EXPECT_GT(run.first_stats_at, run.done_at) << "client " << i;
    EXPECT_TRUE(run.clean_eof) << "client " << i;
  }

  StopServer();
  EXPECT_EQ(serve_rc_, 0);
  service::JobServiceStats stats = svc_->Stats();
  EXPECT_EQ(stats.net.accepted, static_cast<uint64_t>(kClients));
  EXPECT_EQ(stats.net.closed, static_cast<uint64_t>(kClients));
  EXPECT_EQ(stats.net.dropped, 0u);
  EXPECT_EQ(stats.net.results_streamed, kClients * kReqs);
  EXPECT_EQ(stats.completed, kClients * kReqs);  // mutations ride the queue
  EXPECT_EQ(stats.failed, 0u);
  // Inserting an edge the seeded graph already has is a completed no-op
  // (updates=0), which the mutations counter deliberately excludes — so
  // only a lower bound is stable here.
  EXPECT_GT(stats.mutations, 0u);
}

TEST_F(NetServerTest, CompletionsStreamWithoutWait) {
  net::NetServerOptions nopt;
  StartServer(nopt, DefaultServiceOptions());
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());

  // No `wait` anywhere: results must arrive anyway, pushed as they finish.
  client.Send("submit acme sssp g 0\nsubmit acme bfs g 0\n");
  int queued = 0, jobs = 0;
  while (jobs < 2) {
    std::string line = client.ReadLine();
    ASSERT_FALSE(line.empty()) << "stream stalled";
    if (StartsWith(line, "queued req=")) ++queued;
    if (StartsWith(line, "job ")) ++jobs;
  }
  EXPECT_EQ(queued, 2);
  client.Send("quit\n");
  EXPECT_TRUE(client.ReadToEof());
}

TEST_F(NetServerTest, AuthHandshakeBindsTenantAndDropsBadTokens) {
  net::NetServerOptions nopt;
  nopt.auth_tokens = {{"acme", "sek"}, {"globex", "gsek"}};
  StartServer(nopt, DefaultServiceOptions());
  const uint16_t port = server_->port();

  {  // Good token: bound to acme; other tenants are off limits.
    TestClient client(port);
    ASSERT_TRUE(client.connected());
    client.Send("auth acme sek\n");
    EXPECT_EQ(client.ReadLine(), "ok tenant=acme");
    client.Send("submit globex sssp g 0\n");
    EXPECT_EQ(client.ReadLine(),
              "reject: tenant 'globex' not authorized on this connection");
    client.Send("submit acme sssp g 0\nwait\nquit\n");
    EXPECT_TRUE(StartsWith(client.ReadLine(), "queued req=1 tenant=acme"));
    EXPECT_TRUE(StartsWith(client.ReadLine(), "job "));
    EXPECT_TRUE(client.ReadToEof());
  }
  {  // Wrong token: generic failure (no tenant-existence oracle), dropped.
    TestClient client(port);
    ASSERT_TRUE(client.connected());
    client.Send("auth acme wrong\n");
    EXPECT_EQ(client.ReadLine(), "reject: auth failed");
    EXPECT_TRUE(client.ReadToEof());
  }
  {  // Unknown tenant: byte-identical rejection.
    TestClient client(port);
    ASSERT_TRUE(client.connected());
    client.Send("auth nobody sek\n");
    EXPECT_EQ(client.ReadLine(), "reject: auth failed");
    EXPECT_TRUE(client.ReadToEof());
  }
  {  // No auth at all: first command is refused.
    TestClient client(port);
    ASSERT_TRUE(client.connected());
    client.Send("stats\n");
    EXPECT_EQ(client.ReadLine(), "reject: auth required");
    EXPECT_TRUE(client.ReadToEof());
  }

  StopServer();
  service::JobServiceStats stats = svc_->Stats();
  EXPECT_EQ(stats.net.auth_failures, 3u);
  EXPECT_EQ(stats.net.dropped, 3u);
}

TEST_F(NetServerTest, OverloadEveryJobCompletesOrIsExplicitlyRejected) {
  net::NetServerOptions nopt;
  service::JobServiceOptions sopt = DefaultServiceOptions();
  sopt.workers = 1;
  sopt.queue_capacity = 4;
  StartServer(nopt, sopt);
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());

  // Far past 2x queue capacity, written in one burst so the dispatch
  // outruns the single worker. The contract under overload: every submit
  // is either served (job line) or explicitly rejected — never dropped,
  // never hung.
  constexpr int kSubmits = 48;
  std::string script;
  for (int i = 0; i < kSubmits; ++i) {
    script += "submit acme sssp g " + std::to_string(i % 64) + "\n";
  }
  script += "wait\nquit\n";
  client.Send(script);

  int queued = 0, jobs = 0, rejects = 0;
  for (;;) {
    std::string line = client.ReadLine();
    if (line.empty()) break;
    if (StartsWith(line, "queued req=")) ++queued;
    if (StartsWith(line, "job ")) ++jobs;
    if (StartsWith(line, "reject:")) ++rejects;
  }
  EXPECT_TRUE(client.ReadToEof());
  EXPECT_EQ(queued + rejects, kSubmits);
  EXPECT_EQ(jobs, queued);  // every accepted job streamed a result
  EXPECT_GT(rejects, 0);    // the burst genuinely overloaded the queue

  StopServer();
  service::JobServiceStats stats = svc_->Stats();
  EXPECT_EQ(stats.rejected, static_cast<uint64_t>(rejects));
  EXPECT_EQ(stats.completed, static_cast<uint64_t>(jobs));
  EXPECT_EQ(stats.failed, 0u);
}

TEST_F(NetServerTest, AdmissionControlTurnsAwayExcessConnections) {
  net::NetServerOptions nopt;
  nopt.max_connections = 2;
  StartServer(nopt, DefaultServiceOptions());
  const uint16_t port = server_->port();

  TestClient c1(port), c2(port);
  ASSERT_TRUE(c1.connected());
  ASSERT_TRUE(c2.connected());
  // Prove both are admitted (a round trip each) before the third knocks.
  // The stats block leads with the daemon identity line.
  c1.Send("stats\n");
  EXPECT_TRUE(StartsWith(c1.ReadLine(), "daemon:"));
  c2.Send("stats\n");
  EXPECT_TRUE(StartsWith(c2.ReadLine(), "daemon:"));

  TestClient c3(port);
  ASSERT_TRUE(c3.connected());
  EXPECT_EQ(c3.ReadLine(), "reject: server full");
  EXPECT_TRUE(c3.ReadToEof());

  StopServer();
  EXPECT_EQ(svc_->Stats().net.dropped, 1u);
}

TEST_F(NetServerTest, ParserRejectsTravelTheWire) {
  net::NetServerOptions nopt;
  StartServer(nopt, DefaultServiceOptions());
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());

  // The hardened grammar, exercised through the full transport: the
  // fractional id must reject (never truncate into a valid delete).
  client.Send("mutate acme g del 1.5 2\n");
  EXPECT_EQ(client.ReadLine(), "reject: bad mutate vertex id '1.5'");
  client.Send("submit acme sssp g 4294967296\n");
  EXPECT_EQ(client.ReadLine(), "reject: submit root '4294967296' out of range");
  client.Send("frobnicate\n");
  EXPECT_EQ(client.ReadLine(), "reject: unrecognized line: frobnicate");
  client.Send("quit\n");
  EXPECT_TRUE(client.ReadToEof());

  StopServer();
  EXPECT_EQ(serve_rc_, 1);  // rejected lines are the batch health signal
  EXPECT_EQ(svc_->Stats().mutations, 0u);  // nothing was truncated through
}

TEST_F(NetServerTest, ShutdownCommandDrainsOutstandingJobsFirst) {
  net::NetServerOptions nopt;
  nopt.allow_shutdown = true;
  StartServer(nopt, DefaultServiceOptions());
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());

  client.Send("submit acme sssp g 0\nsubmit acme bfs g 1\nshutdown\n");
  int jobs = 0;
  bool draining = false;
  for (;;) {
    std::string line = client.ReadLine();
    if (line.empty()) break;
    if (StartsWith(line, "job ")) ++jobs;
    if (line == "shutdown: draining") draining = true;
  }
  EXPECT_TRUE(client.ReadToEof());
  EXPECT_TRUE(draining);
  EXPECT_EQ(jobs, 2);  // both results delivered before the close

  // `shutdown` alone stops Serve() — no Stop() from this side needed.
  serve_thread_.join();
  EXPECT_EQ(serve_rc_, 0);
  EXPECT_EQ(svc_->Stats().failed, 0u);
}

TEST_F(NetServerTest, ShutdownIsRejectedWithoutTheFlag) {
  net::NetServerOptions nopt;
  StartServer(nopt, DefaultServiceOptions());
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  client.Send("shutdown\n");
  EXPECT_EQ(client.ReadLine(), "reject: shutdown not permitted");
  client.Send("quit\n");
  EXPECT_TRUE(client.ReadToEof());
}

}  // namespace
}  // namespace slfe
