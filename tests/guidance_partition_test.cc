// Randomized differential harness for the guidance generation strategies:
// on seeded random graphs across shapes (chains, stars, RMAT, disconnected
// unions), the serial reference, the uniform-parallel sweep, and the
// DistGraph-range partitioned sweep must produce bit-identical guidance —
// every last_iter, every visited flag, and the depth — for every worker
// count, every forced direction policy, and every root-selection flavor.
// This is the lockdown that lets the provider treat the strategy as a pure
// performance choice (GuidanceProviderOptions::generation_strategy).

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "slfe/common/thread_pool.h"
#include "slfe/core/guidance_provider.h"
#include "slfe/core/roots.h"
#include "slfe/core/rr_guidance.h"
#include "slfe/engine/dist_graph.h"
#include "slfe/graph/generators.h"

namespace slfe {
namespace {

enum class Shape { kChain, kStar, kRmat, kDisconnected };

struct HarnessParam {
  Shape shape;
  uint64_t seed;
};

std::string ParamName(const ::testing::TestParamInfo<HarnessParam>& info) {
  const char* shape = info.param.shape == Shape::kChain   ? "Chain"
                      : info.param.shape == Shape::kStar  ? "Star"
                      : info.param.shape == Shape::kRmat  ? "Rmat"
                                                          : "Disconnected";
  return std::string(shape) + "_seed" + std::to_string(info.param.seed);
}

/// Seed-perturbed sizes so every (shape, seed) pair is a distinct
/// topology, including shapes whose generator takes no seed (chain/star).
Graph MakeShapeGraph(const HarnessParam& p) {
  switch (p.shape) {
    case Shape::kChain:
      return Graph::FromEdges(
          GenerateChain(static_cast<VertexId>(48 + p.seed * 13 % 71)));
    case Shape::kStar:
      return Graph::FromEdges(
          GenerateStar(static_cast<VertexId>(24 + p.seed * 7 % 53)));
    case Shape::kRmat: {
      RmatOptions opt;
      opt.num_vertices = 256;
      opt.num_edges = 1500;
      opt.seed = p.seed;
      return Graph::FromEdges(GenerateRmat(opt));
    }
    case Shape::kDisconnected: {
      // Three islands with no cross edges: an Erdos-Renyi block, an offset
      // chain, and trailing isolated vertices — exercises unvisited
      // regions and partitions whose ranges straddle island boundaries.
      EdgeList er = GenerateErdosRenyi(96, 300, p.seed);
      EdgeList e(160);
      for (const Edge& edge : er.edges()) e.Add(edge.src, edge.dst);
      for (VertexId v = 96; v < 140; ++v) e.Add(v, v + 1);
      e.set_num_vertices(160);  // 141..159 isolated
      return Graph::FromEdges(e);
    }
  }
  return Graph();
}

/// Seeded random multi-root set (possibly with duplicates — the
/// generators must dedup identically).
std::vector<VertexId> RandomRoots(const Graph& g, uint64_t seed,
                                  size_t count) {
  std::mt19937_64 rng(seed * 0x9e3779b97f4a7c15ull + 1);
  std::uniform_int_distribution<VertexId> pick(
      0, g.num_vertices() > 0 ? g.num_vertices() - 1 : 0);
  std::vector<VertexId> roots;
  roots.reserve(count);
  for (size_t i = 0; i < count; ++i) roots.push_back(pick(rng));
  return roots;
}

void ExpectBitIdentical(const RRGuidance& want, const RRGuidance& got,
                        const std::string& label) {
  ASSERT_EQ(want.num_vertices(), got.num_vertices()) << label;
  ASSERT_EQ(want.depth(), got.depth()) << label;
  ASSERT_TRUE(want.has_levels()) << label;
  ASSERT_TRUE(got.has_levels()) << label;
  for (VertexId v = 0; v < want.num_vertices(); ++v) {
    ASSERT_EQ(want.last_iter(v), got.last_iter(v))
        << label << " last_iter mismatch at v=" << v;
    ASSERT_EQ(want.visited(v), got.visited(v))
        << label << " visited mismatch at v=" << v;
    ASSERT_EQ(want.level(v), got.level(v))
        << label << " level mismatch at v=" << v;
  }
}

/// The differential core: serial == uniform-parallel == partitioned for
/// every worker count and both forced directions plus the adaptive
/// default.
void CheckAllStrategies(const Graph& g, const std::vector<VertexId>& roots,
                        const std::string& label) {
  if (roots.empty()) return;
  RRGuidance serial = RRGuidance::GenerateSerial(g, roots);
  for (size_t workers : {2u, 3u, 5u}) {
    ThreadPool pool(workers);
    for (double fraction : {0.05, 0.0, 1e18}) {
      std::string tag = label + " workers=" + std::to_string(workers) +
                        " fraction=" + std::to_string(fraction);
      ExpectBitIdentical(
          serial, RRGuidance::GenerateParallel(g, roots, pool, fraction),
          tag + " uniform");
      ExpectBitIdentical(
          serial, RRGuidance::GeneratePartitioned(g, roots, pool, fraction),
          tag + " partitioned");
    }
  }
  // Degenerate pool: one worker owns the whole vertex range.
  ThreadPool single(1);
  ExpectBitIdentical(serial,
                     RRGuidance::GeneratePartitioned(g, roots, single),
                     label + " partitioned single worker");
  // The strategy dispatcher used by the provider.
  ThreadPool pool(4);
  ExpectBitIdentical(
      serial,
      RRGuidance::GenerateWithStrategy(
          g, roots, GuidanceGenerationStrategy::kUniformParallel, &pool),
      label + " dispatch uniform");
  ExpectBitIdentical(
      serial,
      RRGuidance::GenerateWithStrategy(
          g, roots, GuidanceGenerationStrategy::kPartitionedParallel, &pool),
      label + " dispatch partitioned");
  ExpectBitIdentical(serial,
                     RRGuidance::GenerateWithStrategy(
                         g, roots, GuidanceGenerationStrategy::kAuto, &pool),
                     label + " dispatch auto");
  ExpectBitIdentical(
      serial,
      RRGuidance::GenerateWithStrategy(
          g, roots, GuidanceGenerationStrategy::kPartitionedParallel,
          nullptr),
      label + " dispatch null pool");
}

class GuidancePartitionTest : public ::testing::TestWithParam<HarnessParam> {
};

TEST_P(GuidancePartitionTest, AllStrategiesBitIdentical) {
  Graph g = MakeShapeGraph(GetParam());
  uint64_t seed = GetParam().seed;
  CheckAllStrategies(g, {0}, "single root");
  CheckAllStrategies(g, RandomRoots(g, seed, 5), "random roots");
  CheckAllStrategies(g, SelectSourceRoots(g), "source roots");
  CheckAllStrategies(g, SelectLocalMinimaRoots(g), "local minima roots");
}

TEST_P(GuidancePartitionTest, PartitionRangesMatchDistGraph) {
  // The generator must slice exactly where the distributed engine does —
  // the whole point of "partition-aware" is that a worker preprocesses
  // the vertices its node later owns.
  Graph g = MakeShapeGraph(GetParam());
  for (int nodes : {1, 3, 4}) {
    DistGraph dg = DistGraph::Build(g, nodes);
    std::vector<VertexRange> exported = DistGraph::BuildRanges(g, nodes);
    ASSERT_EQ(exported.size(), dg.ranges().size());
    for (size_t i = 0; i < exported.size(); ++i) {
      EXPECT_EQ(exported[i].begin, dg.ranges()[i].begin);
      EXPECT_EQ(exported[i].end, dg.ranges()[i].end);
    }
  }
}

TEST_P(GuidancePartitionTest, ProviderStrategiesAgree) {
  // End to end through the provider: three providers configured with the
  // three explicit strategies hand out byte-equal guidance for the same
  // request.
  Graph g = MakeShapeGraph(GetParam());
  std::vector<VertexId> roots = SelectSourceRoots(g);
  if (roots.empty()) return;

  auto acquire = [&](GuidanceGenerationStrategy strategy) {
    GuidanceProviderOptions opt;
    opt.generation_threads = 3;
    opt.generation_strategy = strategy;
    GuidanceProvider provider(opt);
    GuidanceAcquisition a = provider.AcquireForRoots(g, roots);
    EXPECT_TRUE(a) << GuidanceGenerationStrategyName(strategy);
    EXPECT_EQ(provider.stats().generations, 1u);
    return a.guidance;
  };
  auto serial = acquire(GuidanceGenerationStrategy::kSerial);
  auto uniform = acquire(GuidanceGenerationStrategy::kUniformParallel);
  auto partitioned =
      acquire(GuidanceGenerationStrategy::kPartitionedParallel);
  ASSERT_NE(serial, nullptr);
  ASSERT_NE(uniform, nullptr);
  ASSERT_NE(partitioned, nullptr);
  ExpectBitIdentical(*serial, *uniform, "provider uniform");
  ExpectBitIdentical(*serial, *partitioned, "provider partitioned");
}

TEST(GuidancePartitionEdgeCases, EmptyGraphAndEmptyRoots) {
  Graph empty;
  ThreadPool pool(3);
  RRGuidance rrg = RRGuidance::GeneratePartitioned(empty, {}, pool);
  EXPECT_EQ(rrg.num_vertices(), 0u);
  EXPECT_EQ(rrg.depth(), 0u);

  Graph chain = Graph::FromEdges(GenerateChain(8));
  RRGuidance noop = RRGuidance::GeneratePartitioned(chain, {}, pool);
  ExpectBitIdentical(RRGuidance::GenerateSerial(chain, {}), noop,
                     "empty roots");
}

TEST(GuidancePartitionEdgeCases, MoreWorkersThanVertices) {
  // Tail ranges are empty; they must neither crash nor skew results.
  Graph g = Graph::FromEdges(GenerateChain(3));
  ThreadPool pool(8);
  ExpectBitIdentical(RRGuidance::GenerateSerial(g, {0}),
                     RRGuidance::GeneratePartitioned(g, {0}, pool),
                     "8 workers, 3 vertices");
}

TEST(GuidancePartitionEdgeCases, BookkeepingIsAccounted) {
  // The fused-merge claim, observable: both parallel strategies report a
  // bookkeeping share, and it never exceeds total generation time.
  RmatOptions opt;
  opt.num_vertices = 2048;
  opt.num_edges = 12000;
  opt.seed = 9;
  Graph g = Graph::FromEdges(GenerateRmat(opt));
  ThreadPool pool(4);
  RRGuidance serial = RRGuidance::GenerateSerial(g, {0});
  EXPECT_EQ(serial.bookkeeping_seconds(), 0.0);
  for (const RRGuidance& rrg :
       {RRGuidance::GenerateParallel(g, {0}, pool),
        RRGuidance::GeneratePartitioned(g, {0}, pool)}) {
    EXPECT_GT(rrg.bookkeeping_seconds(), 0.0);
    EXPECT_LE(rrg.bookkeeping_seconds(), rrg.generation_seconds());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GuidancePartitionTest,
    ::testing::Values(HarnessParam{Shape::kChain, 1},
                      HarnessParam{Shape::kChain, 2},
                      HarnessParam{Shape::kStar, 1},
                      HarnessParam{Shape::kStar, 2},
                      HarnessParam{Shape::kRmat, 1},
                      HarnessParam{Shape::kRmat, 2},
                      HarnessParam{Shape::kRmat, 3},
                      HarnessParam{Shape::kDisconnected, 1},
                      HarnessParam{Shape::kDisconnected, 2}),
    ParamName);

}  // namespace
}  // namespace slfe
