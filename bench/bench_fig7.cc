// Reproduces paper Fig. 7: inter-node scalability, 1 to 8 nodes.
//   (a,b) PageRank on FS and WK: Gemini vs SLFE normalized runtime;
//   (c,d) CC on FS and WK: PowerLyra vs SLFE;
//   (e)   SLFE on the large RMAT graph, 2/4/8 nodes, all five apps.
// The paper's headline shapes: SLFE below Gemini everywhere, Gemini's
// PR-WK inflection when scaling out, and 3.85x / 1.96x on RMAT 8N vs
// 2N / 4N.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "slfe/apps/cc.h"
#include "slfe/apps/pr.h"
#include "slfe/apps/sssp.h"
#include "slfe/apps/tr.h"
#include "slfe/apps/wp.h"
#include "slfe/gas/gas_apps.h"

namespace slfe {
namespace {

constexpr uint32_t kPrIters = 10;

void PrScaling(const char* alias) {
  const Graph& g = bench::LoadGraph(alias);
  std::printf("\n[PageRank-%s] normalized runtime vs 1N (lower = better)\n",
              alias);
  std::printf("%-7s %-14s %-14s\n", "nodes", "Gemini", "SLFE");
  bench::PrintRule();
  double gem1 = 0, slfe1 = 0;
  for (int nodes : {1, 2, 4, 8}) {
    AppConfig cfg = bench::ClusterConfig(nodes, false);
    cfg.max_iters = kPrIters;
    cfg.epsilon = 0.0;
    double gem = RunPr(g, cfg).info.stats.RuntimeSeconds();
    cfg.enable_rr = true;
    double slfe = RunPr(g, cfg).info.stats.RuntimeSeconds();
    if (nodes == 1) {
      gem1 = gem;
      slfe1 = slfe;
    }
    std::printf("%-7d %-14.3f %-14.3f\n", nodes, gem / gem1, slfe / slfe1);
  }
}

void CcScaling(const char* alias) {
  const Graph& g = bench::LoadGraph(alias, /*symmetric=*/true);
  std::printf("\n[CC-%s] normalized runtime vs 1N\n", alias);
  std::printf("%-7s %-14s %-14s\n", "nodes", "PowerLyra", "SLFE");
  bench::PrintRule();
  double pl1 = 0, slfe1 = 0;
  for (int nodes : {1, 2, 4, 8}) {
    gas::GasOptions opt;
    opt.num_nodes = nodes;
    opt.placement = gas::Placement::kHybridCut;
    double pl = gas::RunGasCc(g, opt).stats.RuntimeSeconds();
    AppConfig cfg = bench::ClusterConfig(nodes, true);
    double slfe = RunCc(g, cfg).info.stats.RuntimeSeconds();
    if (nodes == 1) {
      pl1 = pl;
      slfe1 = slfe;
    }
    std::printf("%-7d %-14.3f %-14.3f\n", nodes, pl / pl1, slfe / slfe1);
  }
}

void RmatScaleOut() {
  const Graph& g = bench::LoadGraph("RMAT");
  std::printf("\n[SLFE on RMAT (%u vertices, %llu edges)] runtime (s), "
              "2/4/8 nodes\n",
              g.num_vertices(), static_cast<unsigned long long>(g.num_edges()));
  std::printf("%-7s %-10s %-10s %-10s %-10s %-10s\n", "nodes", "SSSP", "CC",
              "WP", "PR", "TR");
  bench::PrintRule();
  const Graph& gs = bench::LoadGraph("RMAT", /*symmetric=*/true);
  for (int nodes : {2, 4, 8}) {
    AppConfig cfg = bench::ClusterConfig(nodes, true);
    double sssp = RunSssp(g, cfg).info.stats.RuntimeSeconds();
    double cc = RunCc(gs, cfg).info.stats.RuntimeSeconds();
    double wp = RunWp(g, cfg).info.stats.RuntimeSeconds();
    cfg.max_iters = kPrIters;
    cfg.epsilon = 0.0;
    double pr = RunPr(g, cfg).info.stats.RuntimeSeconds();
    double tr = RunTr(g, cfg).info.stats.RuntimeSeconds();
    std::printf("%-7d %-10.3f %-10.3f %-10.3f %-10.3f %-10.3f\n", nodes, sssp,
                cc, wp, pr, tr);
  }
  std::printf("(paper: 8N achieves 3.85x over 2N, 1.96x over 4N)\n");
}

void Run() {
  bench::PrintHeader("Fig. 7: inter-node scalability (1-8 nodes)");
  PrScaling("FS");
  PrScaling("WK");
  CcScaling("FS");
  CcScaling("WK");
  RmatScaleOut();
}

}  // namespace
}  // namespace slfe

int main() {
  slfe::Run();
  return 0;
}
