// Reproduces paper Table 5: 8-node runtime of PowerGraph, PowerLyra, and
// SLFE for five applications across the seven graphs, with SLFE's speedup
// per cell and the geometric mean at the end. PR and TR report
// per-iteration runtime, as in the paper. Runtime = compute wall time plus
// simulated network time (DESIGN.md §2).

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "slfe/apps/cc.h"
#include "slfe/apps/pr.h"
#include "slfe/apps/sssp.h"
#include "slfe/apps/tr.h"
#include "slfe/apps/wp.h"
#include "slfe/gas/gas_apps.h"

namespace slfe {
namespace {

constexpr int kNodes = 8;
constexpr uint32_t kArithIters = 10;  // fixed supersteps for PR/TR cells

struct Cell {
  double powerg = 0;
  double powerl = 0;
  double slfe = 0;
};

gas::GasOptions GasConfig(gas::Placement placement) {
  gas::GasOptions opt;
  opt.num_nodes = kNodes;
  opt.placement = placement;
  return opt;
}

Cell RunSsspCell(const Graph& g) {
  Cell c;
  c.powerg = gas::RunGasSssp(g, 0, GasConfig(gas::Placement::kRandomVertexCut))
                 .stats.RuntimeSeconds();
  c.powerl = gas::RunGasSssp(g, 0, GasConfig(gas::Placement::kHybridCut))
                 .stats.RuntimeSeconds();
  c.slfe = RunSssp(g, bench::ClusterConfig(kNodes, true))
               .info.stats.RuntimeSeconds();
  return c;
}

Cell RunCcCell(const Graph& g) {
  Cell c;
  c.powerg = gas::RunGasCc(g, GasConfig(gas::Placement::kRandomVertexCut))
                 .stats.RuntimeSeconds();
  c.powerl = gas::RunGasCc(g, GasConfig(gas::Placement::kHybridCut))
                 .stats.RuntimeSeconds();
  c.slfe =
      RunCc(g, bench::ClusterConfig(kNodes, true)).info.stats.RuntimeSeconds();
  return c;
}

Cell RunWpCell(const Graph& g) {
  Cell c;
  c.powerg = gas::RunGasWp(g, 0, GasConfig(gas::Placement::kRandomVertexCut))
                 .stats.RuntimeSeconds();
  c.powerl = gas::RunGasWp(g, 0, GasConfig(gas::Placement::kHybridCut))
                 .stats.RuntimeSeconds();
  c.slfe =
      RunWp(g, bench::ClusterConfig(kNodes, true)).info.stats.RuntimeSeconds();
  return c;
}

Cell RunPrCell(const Graph& g) {
  Cell c;
  auto pg = gas::RunGasPr(g, kArithIters,
                          GasConfig(gas::Placement::kRandomVertexCut));
  auto pl =
      gas::RunGasPr(g, kArithIters, GasConfig(gas::Placement::kHybridCut));
  AppConfig cfg = bench::ClusterConfig(kNodes, true);
  cfg.max_iters = kArithIters;
  cfg.epsilon = 0.0;
  auto sl = RunPr(g, cfg);
  c.powerg = pg.stats.RuntimeSeconds() / kArithIters;
  c.powerl = pl.stats.RuntimeSeconds() / kArithIters;
  c.slfe = sl.info.stats.RuntimeSeconds() / kArithIters;
  return c;
}

Cell RunTrCell(const Graph& g) {
  Cell c;
  auto pg = gas::RunGasTr(g, kArithIters,
                          GasConfig(gas::Placement::kRandomVertexCut));
  auto pl =
      gas::RunGasTr(g, kArithIters, GasConfig(gas::Placement::kHybridCut));
  AppConfig cfg = bench::ClusterConfig(kNodes, true);
  cfg.max_iters = kArithIters;
  cfg.epsilon = 0.0;
  auto sl = RunTr(g, cfg);
  c.powerg = pg.stats.RuntimeSeconds() / kArithIters;
  c.powerl = pl.stats.RuntimeSeconds() / kArithIters;
  c.slfe = sl.info.stats.RuntimeSeconds() / kArithIters;
  return c;
}

void Run() {
  bench::PrintHeader(
      "Table 5: 8-node runtime (s), PowerGraph vs PowerLyra vs SLFE");
  struct AppSpec {
    const char* name;
    bool symmetric;
    Cell (*run)(const Graph&);
  };
  std::vector<AppSpec> apps = {
      {"SSSP", false, RunSsspCell}, {"CC", true, RunCcCell},
      {"WP", false, RunWpCell},     {"PR", false, RunPrCell},
      {"TR", false, RunTrCell},
  };
  double log_speedup_sum = 0;
  int cells = 0;
  for (const AppSpec& app : apps) {
    std::printf("\n[%s]%s\n", app.name,
                (std::string(app.name) == "PR" || std::string(app.name) == "TR")
                    ? " (per-iteration runtime)"
                    : "");
    std::printf("%-8s %-12s %-12s %-12s %-10s\n", "graph", "PowerG",
                "PowerL", "SLFE", "speedup");
    bench::PrintRule();
    for (const std::string& alias : bench::PaperGraphs()) {
      const Graph& g = bench::LoadGraph(alias, app.symmetric);
      Cell c = app.run(g);
      double best_baseline = std::min(c.powerg, c.powerl);
      double speedup = c.slfe > 0 ? best_baseline / c.slfe : 0;
      std::printf("%-8s %-12.4f %-12.4f %-12.4f %-10.1fx\n", alias.c_str(),
                  c.powerg, c.powerl, c.slfe, speedup);
      if (speedup > 0) {
        log_speedup_sum += std::log(speedup);
        ++cells;
      }
    }
  }
  bench::PrintRule();
  std::printf("GEOMEAN speedup over best GAS baseline: %.1fx  (paper: 25.4x "
              "over PowerG/PowerL)\n",
              std::exp(log_speedup_sum / cells));
}

}  // namespace
}  // namespace slfe

int main() {
  slfe::Run();
  return 0;
}
