// Reproduces paper Fig. 8: preprocessing overhead analysis on SSSP.
// Compares Gemini's sole runtime against SLFE's runtime plus the RRG
// generation cost, all normalized to Gemini. The paper finds the overhead
// "extremely small" on the smaller graphs and an average 25.1% end-to-end
// improvement including preprocessing; the guidance is also reusable
// across jobs (~8.7 jobs per graph at Facebook), amortizing it further.
// Two follow-up sections quantify the amortization machinery itself:
// serial vs frontier-parallel generation, and cache-hit retrieval cost
// across repeated jobs on one graph.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "slfe/apps/sssp.h"
#include "slfe/common/thread_pool.h"
#include "slfe/core/guidance_provider.h"
#include "slfe/core/rr_guidance.h"

namespace slfe {
namespace {

void OverheadSection() {
  bench::PrintHeader("Fig. 8: preprocessing overhead analysis on SSSP (8N)");
  std::printf("%-8s %-14s %-14s %-14s %-18s\n", "graph", "Gemini(s)",
              "SLFE(s)", "RRG overhead(s)", "end-to-end vs Gemini");
  bench::PrintRule();
  double sum_improvement = 0;
  int count = 0;
  for (const std::string& alias : bench::PaperGraphs()) {
    const Graph& g = bench::LoadGraph(alias);
    AppConfig gem = bench::ClusterConfig(8, false);
    AppConfig slfe = bench::ClusterConfig(8, true);
    // This section measures the per-job regeneration cost the paper plots,
    // so bypass the provider cache (section 3 measures the amortized path).
    slfe.use_guidance_cache = false;
    // Median of 3 to stabilize wall-clock numbers.
    std::vector<double> g_runs, s_runs, overhead;
    for (int i = 0; i < 3; ++i) {
      g_runs.push_back(RunSssp(g, gem).info.stats.RuntimeSeconds());
      SsspResult r = RunSssp(g, slfe);
      s_runs.push_back(r.info.stats.RuntimeSeconds());
      overhead.push_back(r.info.guidance_seconds);
    }
    double g_med = bench::Median(g_runs);
    double s_med = bench::Median(s_runs);
    double o_med = bench::Median(overhead);
    double end_to_end = s_med + o_med;
    double improvement = 100.0 * (g_med - end_to_end) / g_med;
    std::printf("%-8s %-14.4f %-14.4f %-14.4f %+-.1f%%\n", alias.c_str(),
                g_med, s_med, o_med, improvement);
    sum_improvement += improvement;
    ++count;
  }
  bench::PrintRule();
  std::printf("average end-to-end improvement: %+.1f%%  (paper: +25.1%%, "
              "overhead amortized over ~8.7 jobs/graph in practice)\n",
              sum_improvement / count);
}

void GenerationSection() {
  bench::PrintHeader("Fig. 8b: guidance generation, serial vs parallel");
  std::printf("%-8s %-12s %-14s %-14s %-10s\n", "graph", "depth",
              "serial(s)", "parallel4(s)", "speedup");
  bench::PrintRule();
  ThreadPool pool(4);
  for (const std::string& alias : bench::PaperGraphs()) {
    const Graph& g = bench::LoadGraph(alias);
    RRGuidance reference = RRGuidance::GenerateSerial(g, {0});
    auto serial = [&] {
      return RRGuidance::GenerateSerial(g, {0}).generation_seconds();
    };
    auto parallel = [&] {
      return RRGuidance::GenerateParallel(g, {0}, pool).generation_seconds();
    };
    double s =
        bench::Median({reference.generation_seconds(), serial(), serial()});
    double p = bench::Median({parallel(), parallel(), parallel()});
    std::printf("%-8s %-12u %-14.5f %-14.5f %.2fx\n", alias.c_str(),
                reference.depth(), s, p, p > 0 ? s / p : 0.0);
  }
  std::printf("(speedup tracks available cores; on a single-core host the "
              "parallel sweep's bookkeeping shows as overhead)\n");
}

void AmortizationSection() {
  bench::PrintHeader(
      "Fig. 8c: cache-hit amortization across repeated jobs (paper: ~8.7 "
      "jobs/graph)");
  std::printf("%-8s %-14s %-14s %-14s\n", "graph", "job1 miss(s)",
              "jobs2-5 hit(s)", "hit cheaper by");
  bench::PrintRule();
  constexpr int kJobs = 5;
  for (const std::string& alias : bench::PaperGraphs()) {
    const Graph& g = bench::LoadGraph(alias);
    GuidanceProvider provider;  // fresh cache per graph
    AppConfig cfg = bench::ClusterConfig(8, true);
    cfg.guidance_provider = &provider;
    double miss_cost = 0, hit_cost = 0;
    for (int job = 0; job < kJobs; ++job) {
      SsspResult r = RunSssp(g, cfg);
      if (job == 0) {
        miss_cost = r.info.guidance_seconds;
      } else {
        hit_cost += r.info.guidance_seconds / (kJobs - 1);
      }
    }
    GuidanceCacheStats stats = provider.cache_stats();
    std::printf("%-8s %-14.6f %-14.6f %-10.0fx   (hits=%llu misses=%llu)\n",
                alias.c_str(), miss_cost, hit_cost,
                hit_cost > 0 ? miss_cost / hit_cost : 0.0,
                static_cast<unsigned long long>(stats.hits),
                static_cast<unsigned long long>(stats.misses));
  }
  std::printf("(retrieval is an O(|roots|) key hash + LRU lookup; the "
              "acceptance bar is >=10x cheaper than regeneration)\n");
}

void Run() {
  OverheadSection();
  GenerationSection();
  AmortizationSection();
}

}  // namespace
}  // namespace slfe

int main() {
  slfe::Run();
  return 0;
}
