// Reproduces paper Fig. 8: preprocessing overhead analysis on SSSP.
// Compares Gemini's sole runtime against SLFE's runtime plus the RRG
// generation cost, all normalized to Gemini. The paper finds the overhead
// "extremely small" on the smaller graphs and an average 25.1% end-to-end
// improvement including preprocessing; the guidance is also reusable
// across jobs (~8.7 jobs per graph at Facebook), amortizing it further.
// Three follow-up sections quantify the amortization machinery itself:
// serial vs parallel generation (with the per-iteration bookkeeping cost
// split out, so the crossover is measurable even where wall clock is
// noisy), cache-hit retrieval cost across repeated jobs on one graph, and
// warm-restart amortization through the on-disk GuidanceStore (reload vs
// resweep). Run with --smoke for the CI wiring check: a tiny graph through
// the warm-restart path only, exiting non-zero if the store did not serve
// the restarted provider.

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "slfe/apps/sssp.h"
#include "slfe/common/thread_pool.h"
#include "slfe/common/timer.h"
#include "slfe/core/guidance_provider.h"
#include "slfe/core/guidance_store.h"
#include "slfe/core/rr_guidance.h"
#include "slfe/service/job_service.h"

namespace slfe {
namespace {

void OverheadSection() {
  bench::PrintHeader("Fig. 8: preprocessing overhead analysis on SSSP (8N)");
  std::printf("%-8s %-14s %-14s %-14s %-18s\n", "graph", "Gemini(s)",
              "SLFE(s)", "RRG overhead(s)", "end-to-end vs Gemini");
  bench::PrintRule();
  double sum_improvement = 0;
  int count = 0;
  for (const std::string& alias : bench::PaperGraphs()) {
    const Graph& g = bench::LoadGraph(alias);
    AppConfig gem = bench::ClusterConfig(8, false);
    AppConfig slfe = bench::ClusterConfig(8, true);
    // This section measures the per-job regeneration cost the paper plots,
    // so bypass the provider cache (section 3 measures the amortized path).
    slfe.use_guidance_cache = false;
    // Median of 3 to stabilize wall-clock numbers.
    std::vector<double> g_runs, s_runs, overhead;
    for (int i = 0; i < 3; ++i) {
      g_runs.push_back(RunSssp(g, gem).info.stats.RuntimeSeconds());
      SsspResult r = RunSssp(g, slfe);
      s_runs.push_back(r.info.stats.RuntimeSeconds());
      overhead.push_back(r.info.guidance_seconds);
    }
    double g_med = bench::Median(g_runs);
    double s_med = bench::Median(s_runs);
    double o_med = bench::Median(overhead);
    double end_to_end = s_med + o_med;
    double improvement = 100.0 * (g_med - end_to_end) / g_med;
    std::printf("%-8s %-14.4f %-14.4f %-14.4f %+-.1f%%\n", alias.c_str(),
                g_med, s_med, o_med, improvement);
    sum_improvement += improvement;
    ++count;
  }
  bench::PrintRule();
  std::printf("average end-to-end improvement: %+.1f%%  (paper: +25.1%%, "
              "overhead amortized over ~8.7 jobs/graph in practice)\n",
              sum_improvement / count);
}

void GenerationSection() {
  bench::PrintHeader(
      "Fig. 8b: guidance generation, serial vs uniform vs partitioned "
      "[CAVEAT: 1-core host — parallel sweeps lose to serial here; the "
      "bookkeeping (bk) columns isolate the per-iteration overhead that "
      "decides the crossover on real multicore hardware]");
  std::printf("%-8s %-8s %-12s %-12s %-12s %-12s %-12s %-10s\n", "graph",
              "depth", "serial(s)", "uniform4(s)", "bk-unif(s)",
              "part4(s)", "bk-part(s)", "part vs serial");
  bench::PrintRule();
  ThreadPool pool(4);
  for (const std::string& alias : bench::PaperGraphs()) {
    const Graph& g = bench::LoadGraph(alias);
    RRGuidance reference = RRGuidance::GenerateSerial(g, {0});
    auto serial = [&] {
      return RRGuidance::GenerateSerial(g, {0}).generation_seconds();
    };
    // Medians of 3 for wall clock; the matching bookkeeping medians come
    // from the same runs so the two columns describe the same sweeps.
    std::vector<double> u_total, u_bk, p_total, p_bk;
    for (int i = 0; i < 3; ++i) {
      RRGuidance u = RRGuidance::GenerateParallel(g, {0}, pool);
      u_total.push_back(u.generation_seconds());
      u_bk.push_back(u.bookkeeping_seconds());
      RRGuidance p = RRGuidance::GeneratePartitioned(g, {0}, pool);
      p_total.push_back(p.generation_seconds());
      p_bk.push_back(p.bookkeeping_seconds());
    }
    double s =
        bench::Median({reference.generation_seconds(), serial(), serial()});
    double u = bench::Median(u_total);
    double p = bench::Median(p_total);
    std::printf("%-8s %-8u %-12.5f %-12.5f %-12.5f %-12.5f %-12.5f %.2fx\n",
                alias.c_str(), reference.depth(), s, u,
                bench::Median(u_bk), p, bench::Median(p_bk),
                p > 0 ? s / p : 0.0);
  }
  std::printf(
      "(bk isolates the per-iteration frontier-edge counting and merge "
      "overhead; the partitioned strategy fuses the counting pass into "
      "the merge, trading it for parallel-merge dispatch — on this 1-core "
      "host dispatch dominates, so compare bk columns on real cores "
      "before concluding a crossover)\n");
}

/// Warm-restart amortization: the §4.4 story across process lifetimes. A
/// provider with a store_dir pays the sweep once; a second provider over
/// the same directory — a simulated restart with a cold memory cache —
/// pays one file read. Returns false if the restarted provider did not
/// load from the store (the CI smoke check).
bool WarmRestartSection(bool smoke) {
  bench::PrintHeader(
      "Fig. 8d: warm-restart amortization via GuidanceStore (reload vs "
      "resweep)");
  std::printf("%-8s %-14s %-14s %-16s %-10s\n", "graph", "resweep(s)",
              "reload(s)", "reload cheaper by", "served-by");
  bench::PrintRule();
  bool all_from_store = true;
  // PID-suffixed so concurrent bench/CI runs on one machine cannot wipe
  // each other's entries between the first-process and restarted
  // providers; removed again at the end of the section.
  std::string dir = "/tmp/slfe_bench_guidance_store." +
                    std::to_string(::getpid());
  std::vector<std::string> graphs =
      smoke ? std::vector<std::string>{"PK"} : bench::PaperGraphs();
  for (const std::string& alias : graphs) {
    const Graph& g = bench::LoadGraph(alias);
    {
      GuidanceStore wipe(dir);  // cold start: drop any previous entries
      wipe.RemoveAll();
    }
    GuidanceProviderOptions opt;
    opt.store_dir = dir;
    // Production-shaped lifecycle: budgets generous enough to never evict
    // the live entry, but present so every bench run exercises the
    // construction-time sweep.
    opt.store_gc.max_entries = 256;
    opt.store_gc.ttl_seconds = 24 * 3600;
    double resweep = 0;
    {
      GuidanceProvider first_process(opt);
      resweep = first_process.AcquireForRoots(g, {0}).acquire_seconds;
    }
    GuidanceProvider restarted(opt);  // same dir, cold memory cache
    GuidanceAcquisition a = restarted.AcquireForRoots(g, {0});
    bool from_store = restarted.cache_stats().store_hits == 1 &&
                      restarted.stats().generations == 0;
    all_from_store = all_from_store && from_store;
    std::printf("%-8s %-14.6f %-14.6f %-16.0fx %-10s\n", alias.c_str(),
                resweep, a.acquire_seconds,
                a.acquire_seconds > 0 ? resweep / a.acquire_seconds : 0.0,
                from_store ? "store" : "RESWEEP!");
  }
  {
    GuidanceStore cleanup(dir);
    cleanup.RemoveAll();
  }
  ::rmdir(dir.c_str());
  std::printf("(reload is one checksummed sequential file read; the ratio "
              "is the §4.4 amortization that survives restarts)\n");
  return all_from_store;
}

void AmortizationSection() {
  bench::PrintHeader(
      "Fig. 8c: cache-hit amortization across repeated jobs (paper: ~8.7 "
      "jobs/graph)");
  std::printf("%-8s %-14s %-14s %-14s\n", "graph", "job1 miss(s)",
              "jobs2-5 hit(s)", "hit cheaper by");
  bench::PrintRule();
  constexpr int kJobs = 5;
  for (const std::string& alias : bench::PaperGraphs()) {
    const Graph& g = bench::LoadGraph(alias);
    GuidanceProvider provider;  // fresh cache per graph
    AppConfig cfg = bench::ClusterConfig(8, true);
    cfg.guidance_provider = &provider;
    double miss_cost = 0, hit_cost = 0;
    for (int job = 0; job < kJobs; ++job) {
      SsspResult r = RunSssp(g, cfg);
      if (job == 0) {
        miss_cost = r.info.guidance_seconds;
      } else {
        hit_cost += r.info.guidance_seconds / (kJobs - 1);
      }
    }
    GuidanceCacheStats stats = provider.cache_stats();
    std::printf("%-8s %-14.6f %-14.6f %-10.0fx   (hits=%llu misses=%llu)\n",
                alias.c_str(), miss_cost, hit_cost,
                hit_cost > 0 ? miss_cost / hit_cost : 0.0,
                static_cast<unsigned long long>(stats.hits),
                static_cast<unsigned long long>(stats.misses));
  }
  std::printf("(retrieval is an O(|roots|) key hash + LRU lookup; the "
              "acceptance bar is >=10x cheaper than regeneration)\n");
}

/// Service amortization: N tenants submit concurrent guidance-using jobs
/// on shared graphs through ONE JobService; the shared provider's
/// singleflight + cache must collapse them to exactly one generation per
/// graph. This is the §4.4 multi-job amortization realized inside one
/// long-lived process instead of across CLI invocations. Returns false
/// (the CI smoke signal) if any graph generated more than once or any job
/// failed.
bool ServiceSection(bool smoke) {
  bench::PrintHeader(
      "Fig. 8e: multi-tenant service amortization (4 tenants x 2 jobs per "
      "graph through one JobService)");
  std::vector<std::string> graphs =
      smoke ? std::vector<std::string>{"PK"}
            : std::vector<std::string>{"PK", "OK", "LJ"};
  constexpr int kTenants = 4;
  constexpr int kJobsPerTenantPerGraph = 2;

  service::JobServiceOptions sopt;
  sopt.workers = 4;
  sopt.queue_capacity = 256;
  sopt.job_nodes = 8;
  service::JobService svc(sopt);
  for (const std::string& alias : graphs) {
    Graph copy = bench::LoadGraph(alias);  // service owns its registry
    svc.RegisterGraph(alias, std::move(copy));
  }

  Timer timer;
  std::vector<service::JobTicket> tickets;
  for (int job = 0; job < kJobsPerTenantPerGraph; ++job) {
    for (int tenant = 0; tenant < kTenants; ++tenant) {
      for (const std::string& alias : graphs) {
        service::JobRequest request;
        request.tenant = "tenant" + std::to_string(tenant);
        request.app = "sssp";
        request.graph = alias;
        request.root = 0;
        auto ticket = svc.Submit(request);
        if (ticket.ok()) tickets.push_back(std::move(ticket).value());
      }
    }
  }
  bool all_ok = true;
  double miss_cost = 0, hit_cost = 0;
  uint64_t hits = 0, misses = 0;
  for (const auto& ticket : tickets) {
    const service::JobResult& r = ticket->Wait();
    all_ok = all_ok && r.status.ok();
    if (!r.guidance_acquired) continue;
    if (r.guidance_cache_hit || r.guidance_coalesced) {
      hit_cost += r.guidance_seconds;
      ++hits;
    } else {
      miss_cost += r.guidance_seconds;
      ++misses;
    }
  }
  double wall = timer.Seconds();
  svc.Shutdown();
  service::JobServiceStats stats = svc.Stats();

  std::printf("%-10s %-8s %-14s %-14s %-14s\n", "jobs", "graphs",
              "generations", "amortized", "wall(s)");
  bench::PrintRule();
  std::printf("%-10zu %-8zu %-14llu %-14llu %-14.3f\n", tickets.size(),
              graphs.size(),
              static_cast<unsigned long long>(stats.provider.generations),
              static_cast<unsigned long long>(hits), wall);
  for (const auto& [tenant, t] : stats.tenants) {
    std::printf("  %-12s jobs=%llu hits=%llu misses=%llu acquire=%.5fs\n",
                tenant.c_str(),
                static_cast<unsigned long long>(t.jobs_completed),
                static_cast<unsigned long long>(t.guidance_hits),
                static_cast<unsigned long long>(t.guidance_misses),
                t.guidance_seconds);
  }
  std::printf("(amortized acquisition: %.6fs avg hit vs %.6fs avg miss — "
              "every job after the first per graph rode the shared "
              "provider's singleflight/cache)\n",
              hits > 0 ? hit_cost / hits : 0.0,
              misses > 0 ? miss_cost / misses : 0.0);

  bool one_generation_per_graph =
      stats.provider.generations == graphs.size() &&
      misses == stats.provider.generations;
  if (!one_generation_per_graph) {
    std::printf("SERVICE AMORTIZATION FAILED: generations=%llu want %zu\n",
                static_cast<unsigned long long>(stats.provider.generations),
                graphs.size());
  }
  return all_ok && one_generation_per_graph && stats.failed == 0;
}

int Run(bool smoke) {
  if (smoke) {
    // CI wiring check: tiny graph through the warm-restart path and the
    // multi-tenant service path; non-zero exit if the store did not serve
    // the restarted provider or the service amortization broke.
    bool ok = WarmRestartSection(/*smoke=*/true);
    ok = ServiceSection(/*smoke=*/true) && ok;
    return ok ? 0 : 1;
  }
  OverheadSection();
  GenerationSection();
  AmortizationSection();
  ServiceSection(/*smoke=*/false);
  WarmRestartSection(/*smoke=*/false);
  return 0;
}

}  // namespace
}  // namespace slfe

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  return slfe::Run(smoke);
}
