// Reproduces paper Fig. 8: preprocessing overhead analysis on SSSP.
// Compares Gemini's sole runtime against SLFE's runtime plus the RRG
// generation cost, all normalized to Gemini. The paper finds the overhead
// "extremely small" on the smaller graphs and an average 25.1% end-to-end
// improvement including preprocessing; the guidance is also reusable
// across jobs (~8.7 jobs per graph at Facebook), amortizing it further.

#include <cstdio>

#include "bench/bench_util.h"
#include "slfe/apps/sssp.h"

namespace slfe {
namespace {

void Run() {
  bench::PrintHeader("Fig. 8: preprocessing overhead analysis on SSSP (8N)");
  std::printf("%-8s %-14s %-14s %-14s %-18s\n", "graph", "Gemini(s)",
              "SLFE(s)", "RRG overhead(s)", "end-to-end vs Gemini");
  bench::PrintRule();
  double sum_improvement = 0;
  int count = 0;
  for (const std::string& alias : bench::PaperGraphs()) {
    const Graph& g = bench::LoadGraph(alias);
    AppConfig gem = bench::ClusterConfig(8, false);
    AppConfig slfe = bench::ClusterConfig(8, true);
    // Median of 3 to stabilize wall-clock numbers.
    std::vector<double> g_runs, s_runs, overhead;
    for (int i = 0; i < 3; ++i) {
      g_runs.push_back(RunSssp(g, gem).info.stats.RuntimeSeconds());
      SsspResult r = RunSssp(g, slfe);
      s_runs.push_back(r.info.stats.RuntimeSeconds());
      overhead.push_back(r.info.guidance_seconds);
    }
    std::sort(g_runs.begin(), g_runs.end());
    std::sort(s_runs.begin(), s_runs.end());
    std::sort(overhead.begin(), overhead.end());
    double end_to_end = s_runs[1] + overhead[1];
    double improvement = 100.0 * (g_runs[1] - end_to_end) / g_runs[1];
    std::printf("%-8s %-14.4f %-14.4f %-14.4f %+-.1f%%\n", alias.c_str(),
                g_runs[1], s_runs[1], overhead[1], improvement);
    sum_improvement += improvement;
    ++count;
  }
  bench::PrintRule();
  std::printf("average end-to-end improvement: %+.1f%%  (paper: +25.1%%, "
              "overhead amortized over ~8.7 jobs/graph in practice)\n",
              sum_improvement / count);
}

}  // namespace
}  // namespace slfe

int main() {
  slfe::Run();
  return 0;
}
