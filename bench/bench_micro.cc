// Component microbenchmarks (google-benchmark): CSR construction, chunk
// partitioning, RR guidance generation, bitmap throughput, generator
// throughput, and the engine's two propagation modes. These bound the
// per-edge costs every experiment above is built on.

#include <benchmark/benchmark.h>

#include <numeric>

#include "slfe/common/bitmap.h"
#include "slfe/core/rr_guidance.h"
#include "slfe/engine/dist_graph.h"
#include "slfe/graph/generators.h"
#include "slfe/graph/partitioner.h"

namespace slfe {
namespace {

EdgeList BenchEdges(EdgeId edges) {
  RmatOptions opt;
  opt.num_vertices = static_cast<VertexId>(edges / 8);
  opt.num_edges = edges;
  opt.seed = 42;
  return GenerateRmat(opt);
}

void BM_RmatGenerate(benchmark::State& state) {
  EdgeId edges = static_cast<EdgeId>(state.range(0));
  for (auto _ : state) {
    EdgeList e = BenchEdges(edges);
    benchmark::DoNotOptimize(e.num_edges());
  }
  state.SetItemsProcessed(state.iterations() * edges);
}
BENCHMARK(BM_RmatGenerate)->Arg(1 << 14)->Arg(1 << 17);

void BM_CsrBuild(benchmark::State& state) {
  EdgeList e = BenchEdges(static_cast<EdgeId>(state.range(0)));
  for (auto _ : state) {
    Csr csr = Csr::FromEdgesBySource(e);
    benchmark::DoNotOptimize(csr.num_edges());
  }
  state.SetItemsProcessed(state.iterations() * e.num_edges());
}
BENCHMARK(BM_CsrBuild)->Arg(1 << 14)->Arg(1 << 17)->Arg(1 << 19);

void BM_ChunkPartition(benchmark::State& state) {
  Graph g = Graph::FromEdges(BenchEdges(1 << 17));
  ChunkPartitioner partitioner;
  for (auto _ : state) {
    auto ranges = partitioner.Partition(g, static_cast<size_t>(state.range(0)));
    benchmark::DoNotOptimize(ranges.size());
  }
  state.SetItemsProcessed(state.iterations() * g.num_vertices());
}
BENCHMARK(BM_ChunkPartition)->Arg(2)->Arg(8)->Arg(64);

void BM_RrgGenerate(benchmark::State& state) {
  Graph g = Graph::FromEdges(BenchEdges(static_cast<EdgeId>(state.range(0))));
  for (auto _ : state) {
    RRGuidance rrg = RRGuidance::Generate(g, {0});
    benchmark::DoNotOptimize(rrg.depth());
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_RrgGenerate)->Arg(1 << 14)->Arg(1 << 17)->Arg(1 << 19);

void BM_DistGraphBuild(benchmark::State& state) {
  Graph g = Graph::FromEdges(BenchEdges(1 << 17));
  for (auto _ : state) {
    DistGraph dg = DistGraph::Build(g, static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(dg.num_nodes());
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_DistGraphBuild)->Arg(1)->Arg(8);

void BM_BitmapSetScan(benchmark::State& state) {
  size_t n = 1 << 20;
  Bitmap bitmap(n);
  for (auto _ : state) {
    for (size_t i = 0; i < n; i += 3) bitmap.SetBit(i);
    uint64_t ones = bitmap.CountOnes();
    benchmark::DoNotOptimize(ones);
    bitmap.Clear();
  }
  state.SetItemsProcessed(state.iterations() * n / 3);
}
BENCHMARK(BM_BitmapSetScan);

}  // namespace
}  // namespace slfe

BENCHMARK_MAIN();
