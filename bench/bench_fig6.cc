// Reproduces paper Fig. 6: intra-node scalability of SLFE (1..68 cores in
// the paper; a thread sweep here) running CC and PageRank on the FS and LJ
// graphs, compared against Ligra (shared-memory edgeMap engine) and
// GraphChi (out-of-core sharded engine). The host has one physical core
// (DESIGN.md §2), so alongside wall time we report each configuration's
// per-thread work spread, which is what determines the scaling shape.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "slfe/apps/cc.h"
#include "slfe/apps/pr.h"
#include "slfe/ooc/ooc_engine.h"
#include "slfe/shm/shm_engine.h"

namespace slfe {
namespace {

constexpr uint32_t kPrIters = 10;

void SweepThreads(const char* app, const char* alias) {
  bool symmetric = std::string(app) == "CC";
  const Graph& g = bench::LoadGraph(alias, symmetric);
  std::printf("\n[%s-%s] SLFE thread sweep\n", app, alias);
  std::printf("%-9s %-12s %-14s %-16s\n", "threads", "runtime(s)",
              "computations", "chunk spread max/min");
  bench::PrintRule();
  for (int threads : {1, 2, 4, 8}) {
    AppConfig cfg = bench::ClusterConfig(1, /*enable_rr=*/true);
    cfg.threads_per_node = threads;
    EngineStats stats;
    if (symmetric) {
      stats = RunCc(g, cfg).info.stats;
    } else {
      cfg.max_iters = kPrIters;
      cfg.epsilon = 0.0;
      stats = RunPr(g, cfg).info.stats;
    }
    uint64_t max_chunks = 0, min_chunks = UINT64_MAX;
    for (uint64_t c : stats.per_thread_chunks) {
      max_chunks = std::max(max_chunks, c);
      min_chunks = std::min(min_chunks, c);
    }
    std::printf("%-9d %-12.4f %-14llu %llu/%llu\n", threads,
                stats.RuntimeSeconds(),
                static_cast<unsigned long long>(stats.computations),
                static_cast<unsigned long long>(max_chunks),
                static_cast<unsigned long long>(min_chunks));
  }
}

void Baselines(const char* alias) {
  const Graph& g = bench::LoadGraph(alias, /*symmetric=*/true);
  const Graph& gd = bench::LoadGraph(alias, /*symmetric=*/false);
  std::printf("\n[baselines on %s]\n", alias);

  std::vector<uint32_t> labels;
  shm::ShmStats ligra_cc = shm::ShmCc(g, 2, &labels);
  std::vector<float> ranks;
  shm::ShmStats ligra_pr = shm::ShmPr(gd, kPrIters, 2, &ranks);
  std::printf("Ligra-style  : CC %.4fs  PR %.4fs\n", ligra_cc.seconds,
              ligra_pr.seconds);

  std::string dir = "/tmp/slfe_fig6_" + std::string(alias);
  auto engine = ooc::OocEngine::Build(g, dir, 8).value();
  std::vector<uint32_t> ooc_labels;
  ooc::OocStats chi_cc = ooc::OocCc(engine, &ooc_labels);
  auto engine_d = ooc::OocEngine::Build(gd, dir + "_d", 8).value();
  std::vector<float> ooc_ranks;
  ooc::OocStats chi_pr = ooc::OocPr(engine_d, gd, kPrIters, &ooc_ranks);
  std::printf(
      "GraphChi-like: CC %.4fs (io %.4fs)  PR %.4fs (io %.4fs)\n",
      chi_cc.RuntimeSeconds(), chi_cc.io_seconds, chi_pr.RuntimeSeconds(),
      chi_pr.io_seconds);
  engine.RemoveFiles();
  engine_d.RemoveFiles();

  AppConfig cfg = bench::ClusterConfig(1, /*enable_rr=*/true);
  double slfe_cc = RunCc(g, cfg).info.stats.RuntimeSeconds();
  cfg.max_iters = kPrIters;
  cfg.epsilon = 0.0;
  double slfe_pr = RunPr(gd, cfg).info.stats.RuntimeSeconds();
  std::printf("SLFE         : CC %.4fs  PR %.4fs\n", slfe_cc, slfe_pr);
  std::printf("  (paper: SLFE up to 9.3x over Ligra, up to 508x over "
              "GraphChi)\n");
}

void Run() {
  bench::PrintHeader("Fig. 6: intra-node scalability and single-node baselines");
  SweepThreads("CC", "FS");
  SweepThreads("CC", "LJ");
  SweepThreads("PR", "FS");
  SweepThreads("PR", "LJ");
  Baselines("FS");
  Baselines("LJ");
}

}  // namespace
}  // namespace slfe

int main() {
  slfe::Run();
  return 0;
}
