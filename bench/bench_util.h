#ifndef SLFE_BENCH_BENCH_UTIL_H_
#define SLFE_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "slfe/api/session.h"
#include "slfe/apps/app_common.h"
#include "slfe/graph/generators.h"
#include "slfe/graph/graph.h"

namespace slfe::bench {

/// Extra shrink factor on top of DESIGN.md's ~1/100-scale dataset suite so
/// every bench binary finishes in seconds on the single-core host.
/// Override with SLFE_BENCH_SCALE=1 for the full scaled suite.
inline uint32_t ScaleDivisor() {
  const char* env = std::getenv("SLFE_BENCH_SCALE");
  if (env != nullptr) {
    int v = std::atoi(env);
    if (v >= 1) return static_cast<uint32_t>(v);
  }
  return 4;
}

/// The seven real-graph stand-ins of paper Table 4 (excludes the RMAT
/// scale-out graph, which only Fig. 7e uses).
inline std::vector<std::string> PaperGraphs() {
  return {"PK", "OK", "LJ", "WK", "DI", "ST", "FS"};
}

/// The one alias-to-edges recipe all bench loaders share, so the
/// Session-based benches and the LoadGraph-based ones can never drift.
inline EdgeList EdgesFor(const std::string& alias) {
  if (alias == "GRID") {
    // Deep road-network-like topology: large diameter creates the
    // many-updates-per-vertex redundancy regime of the paper's full-size
    // graphs, which the shallow scaled RMAT suite cannot (EXPERIMENTS.md).
    // Fixed size: shrinking it leaves superstep overhead dominating its
    // several-hundred-iteration runs.
    return GenerateGrid(192, 192, /*weighted=*/true, 77,
                        /*max_weight=*/256.0f);
  }
  DatasetSpec spec = FindDataset(alias).value();
  return MakeDataset(spec, ScaleDivisor());
}

/// Materializes (and memoizes) a dataset by alias. `symmetric` produces
/// the undirected closure used by CC.
inline const Graph& LoadGraph(const std::string& alias,
                              bool symmetric = false) {
  static std::map<std::string, Graph>* cache = new std::map<std::string, Graph>;
  std::string key = alias + (symmetric ? "/sym" : "");
  auto it = cache->find(key);
  if (it != cache->end()) return it->second;
  EdgeList edges = EdgesFor(alias);
  if (symmetric) {
    edges.Symmetrize();
    edges.Deduplicate();
  }
  return cache->emplace(key, Graph::FromEdges(edges)).first->second;
}

/// A memoized api::Session per cluster shape: benches run through the
/// same Session::Run facade as the CLI and the JobService (no bench-side
/// app dispatch), and reuse sessions so guidance amortizes across a
/// bench's repeated runs exactly like production jobs.
inline api::Session& SessionFor(int num_nodes, int threads_per_node = 1) {
  static auto* cache =
      new std::map<std::pair<int, int>, std::unique_ptr<api::Session>>;
  auto key = std::make_pair(num_nodes, threads_per_node);
  auto it = cache->find(key);
  if (it == cache->end()) {
    api::SessionOptions opt;
    opt.num_nodes = num_nodes;
    opt.threads_per_node = threads_per_node;
    it = cache->emplace(key, std::make_unique<api::Session>(opt)).first;
  }
  return *it->second;
}

/// Registers a dataset alias into `session` on first use (the session
/// derives symmetrized variants for needs_symmetric apps itself).
inline void EnsureSessionGraph(api::Session& session,
                               const std::string& alias) {
  if (session.HasGraph(alias)) return;
  Status added = session.AddGraph(alias, Graph::FromEdges(EdgesFor(alias)));
  if (!added.ok()) {
    std::fprintf(stderr, "bench: AddGraph(%s): %s\n", alias.c_str(),
                 added.ToString().c_str());
    std::exit(1);
  }
}

/// One row of a bench's per-app knob table: which app plus the
/// iteration/convergence knobs that figure runs it with. The tables stay
/// in the bench binaries (each figure picks its own caps, per the
/// paper); the row shape and request mapping live here once.
struct BenchApp {
  const char* name;
  uint32_t max_iters = 50;
  double epsilon = 1e-7;  // ClusterConfig's defaults
};

inline api::AppRequest MakeRequest(const BenchApp& app,
                                   const std::string& graph, bool rr) {
  api::AppRequest request;
  request.app = app.name;
  request.graph = graph;
  request.enable_rr = rr;
  request.max_iters = app.max_iters;
  request.epsilon = app.epsilon;
  return request;
}

/// Session::Run with bench ergonomics: registers the graph on first use
/// and treats a failed run as a bench bug (exit 1, not a silent zero).
inline api::AppOutcome RunApp(api::Session& session, api::AppRequest request) {
  EnsureSessionGraph(session, request.graph);
  api::AppOutcome outcome = session.Run(request);
  if (!outcome.status.ok()) {
    std::fprintf(stderr, "bench: %s on %s over %s: %s\n",
                 request.app.c_str(), request.engine.c_str(),
                 request.graph.c_str(), outcome.status.ToString().c_str());
    std::exit(1);
  }
  return outcome;
}

/// Default 8-node cluster config matching the paper's testbed shape.
inline AppConfig ClusterConfig(int num_nodes, bool enable_rr) {
  AppConfig cfg;
  cfg.num_nodes = num_nodes;
  cfg.threads_per_node = 1;  // host has one physical core (DESIGN.md §2)
  cfg.enable_rr = enable_rr;
  cfg.max_iters = 50;
  cfg.epsilon = 1e-7;
  return cfg;
}

/// Median of a sample (benches run everything 3x to damp single-core
/// scheduling noise). Takes the vector by value: callers keep their sample.
inline double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v.empty() ? 0.0 : v[v.size() / 2];
}

/// Minimal JSON emitter for machine-readable bench artifacts (the CI
/// baseline-comparison path): correct comma placement for nested
/// objects/arrays, string escaping for the characters bench data can
/// actually contain. Not a general serializer — benches emit flat,
/// known-shape documents.
class JsonWriter {
 public:
  explicit JsonWriter(std::FILE* out) : out_(out) {}

  void BeginObject(const char* key = nullptr) { Open(key, '{'); }
  void EndObject() { Close('}'); }
  void BeginArray(const char* key = nullptr) { Open(key, '['); }
  void EndArray() { Close(']'); }

  void Field(const char* key, const std::string& value) {
    Prefix(key);
    std::fputc('"', out_);
    for (char c : value) {
      if (c == '"' || c == '\\') std::fputc('\\', out_);
      std::fputc(c, out_);
    }
    std::fputc('"', out_);
  }
  void Field(const char* key, const char* value) {
    Field(key, std::string(value));
  }
  void Field(const char* key, double value) {
    Prefix(key);
    std::fprintf(out_, "%.6g", value);
  }
  void Field(const char* key, uint64_t value) {
    Prefix(key);
    std::fprintf(out_, "%llu", static_cast<unsigned long long>(value));
  }
  void Field(const char* key, bool value) {
    Prefix(key);
    std::fputs(value ? "true" : "false", out_);
  }

 private:
  void Prefix(const char* key) {
    if (need_comma_) std::fputc(',', out_);
    need_comma_ = true;
    if (key != nullptr) std::fprintf(out_, "\"%s\":", key);
  }
  void Open(const char* key, char bracket) {
    Prefix(key);
    std::fputc(bracket, out_);
    need_comma_ = false;
  }
  void Close(char bracket) {
    std::fputc(bracket, out_);
    need_comma_ = true;
  }

  std::FILE* out_;
  bool need_comma_ = false;
};

inline void PrintHeader(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

inline void PrintRule() {
  std::printf("-------------------------------------------------------------------------------\n");
}

}  // namespace slfe::bench

#endif  // SLFE_BENCH_BENCH_UTIL_H_
