#ifndef SLFE_BENCH_BENCH_UTIL_H_
#define SLFE_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "slfe/apps/app_common.h"
#include "slfe/graph/generators.h"
#include "slfe/graph/graph.h"

namespace slfe::bench {

/// Extra shrink factor on top of DESIGN.md's ~1/100-scale dataset suite so
/// every bench binary finishes in seconds on the single-core host.
/// Override with SLFE_BENCH_SCALE=1 for the full scaled suite.
inline uint32_t ScaleDivisor() {
  const char* env = std::getenv("SLFE_BENCH_SCALE");
  if (env != nullptr) {
    int v = std::atoi(env);
    if (v >= 1) return static_cast<uint32_t>(v);
  }
  return 4;
}

/// The seven real-graph stand-ins of paper Table 4 (excludes the RMAT
/// scale-out graph, which only Fig. 7e uses).
inline std::vector<std::string> PaperGraphs() {
  return {"PK", "OK", "LJ", "WK", "DI", "ST", "FS"};
}

/// Materializes (and memoizes) a dataset by alias. `symmetric` produces
/// the undirected closure used by CC.
inline const Graph& LoadGraph(const std::string& alias,
                              bool symmetric = false) {
  static std::map<std::string, Graph>* cache = new std::map<std::string, Graph>;
  std::string key = alias + (symmetric ? "/sym" : "");
  auto it = cache->find(key);
  if (it != cache->end()) return it->second;
  EdgeList edges;
  if (alias == "GRID") {
    // Deep road-network-like topology: large diameter creates the
    // many-updates-per-vertex redundancy regime of the paper's full-size
    // graphs, which the shallow scaled RMAT suite cannot (EXPERIMENTS.md).
    // Fixed size: shrinking it leaves superstep overhead dominating its
    // several-hundred-iteration runs.
    edges = GenerateGrid(192, 192, /*weighted=*/true, 77,
                         /*max_weight=*/256.0f);
  } else {
    DatasetSpec spec = FindDataset(alias).value();
    edges = MakeDataset(spec, ScaleDivisor());
  }
  if (symmetric) {
    edges.Symmetrize();
    edges.Deduplicate();
  }
  return cache->emplace(key, Graph::FromEdges(edges)).first->second;
}

/// Default 8-node cluster config matching the paper's testbed shape.
inline AppConfig ClusterConfig(int num_nodes, bool enable_rr) {
  AppConfig cfg;
  cfg.num_nodes = num_nodes;
  cfg.threads_per_node = 1;  // host has one physical core (DESIGN.md §2)
  cfg.enable_rr = enable_rr;
  cfg.max_iters = 50;
  cfg.epsilon = 1e-7;
  return cfg;
}

/// Median of a sample (benches run everything 3x to damp single-core
/// scheduling noise). Takes the vector by value: callers keep their sample.
inline double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v.empty() ? 0.0 : v[v.size() / 2];
}

inline void PrintHeader(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

inline void PrintRule() {
  std::printf("-------------------------------------------------------------------------------\n");
}

}  // namespace slfe::bench

#endif  // SLFE_BENCH_BENCH_UTIL_H_
