// bench_netload — drives the TCP front end with N concurrent connections
// each pipelining M jobs, measuring submit-to-complete latency through the
// full network path (parse -> queue -> worker -> streamed completion), then
// bursts 2x the queue capacity to verify the overload contract: every
// submission is either served or explicitly rejected — never lost, never
// duplicated, never hung. Emits BENCH_netload.json for the CI artifact.
//
//   bench_netload                          # self-hosted in-process server
//   bench_netload --conns=16 --jobs=50 --queue-cap=8 --workers=4
//   bench_netload --connect=127.0.0.1:4700 --graph=PK [--auth=T:SECRET]
//   bench_netload --rate=200               # pace each connection (jobs/s)
//
// Latency correlation relies on a protocol invariant: acknowledgements
// (`queued req=K` / `reject:`) are emitted in dispatch order, which is the
// order the lines were written — so the k-th ack matches the k-th submit
// and carries the req tag that the streamed `job ... req=K` completion
// (arriving in completion order) is matched against.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "slfe/graph/generators.h"
#include "slfe/net/net_server.h"
#include "slfe/service/job_service.h"

namespace slfe {
namespace {

using Clock = std::chrono::steady_clock;

struct NetloadOptions {
  int conns = 16;
  int jobs = 50;         // steady-phase jobs per connection
  size_t workers = 4;    // self-hosted service shape
  size_t queue_cap = 64; // self-hosted bounded queue (the overload target)
  /// Steady-phase pipeline window: at most this many of a connection's
  /// submissions in flight, so the load self-clocks to service capacity
  /// (conns x window must stay <= queue_cap for a zero-reject steady run).
  int window = 2;
  double rate = 0;        // extra pacing, jobs/s per connection; 0 = none
  std::string connect;    // "HOST:PORT" = external daemon; "" = self-hosted
  std::string graph;      // default: bench graph (self-hosted) / PK (external)
  std::string auth;       // "TENANT:SECRET" handshake for external daemons
  int overload_jobs = 0;  // per-conn overload burst; 0 = derived from cap
  /// Self-hosted only: run the service with job-span tracing off, the
  /// A/B lever for measuring the tracing overhead on p50.
  bool tracing = true;
};

/// A blocking line-protocol client (same shape as the test harness's; a
/// bench binary stays dependency-free and self-contained).
class Client {
 public:
  Client(const std::string& host, uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    timeval tv{};
    tv.tv_sec = 120;  // a stuck server fails the bench, not hangs it
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, host.c_str(), &addr.sin_addr);
    connected_ =
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  bool connected() const { return connected_; }

  bool Send(const std::string& text) {
    size_t off = 0;
    while (off < text.size()) {
      ssize_t n = ::send(fd_, text.data() + off, text.size() - off, 0);
      if (n <= 0) return false;
      off += static_cast<size_t>(n);
    }
    return true;
  }

  /// One line without its '\n'; "" on EOF or timeout.
  std::string ReadLine() {
    while (!eof_) {
      size_t pos = buf_.find('\n');
      if (pos != std::string::npos) {
        std::string line = buf_.substr(0, pos);
        buf_.erase(0, pos + 1);
        return line;
      }
      char tmp[4096];
      ssize_t n = ::recv(fd_, tmp, sizeof(tmp), 0);
      if (n <= 0) {
        eof_ = true;
        break;
      }
      buf_.append(tmp, static_cast<size_t>(n));
    }
    return "";
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  bool eof_ = false;
  std::string buf_;
};

bool StartsWith(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

uint64_t TrailingReq(const std::string& line) {
  size_t pos = line.rfind(" req=");
  if (pos == std::string::npos) return 0;
  return std::strtoull(line.c_str() + pos + 5, nullptr, 10);
}

/// What one connection observed during a phase.
struct ConnResult {
  bool transport_ok = false;  // connected, authed, got its `done`, clean quit
  uint64_t submitted = 0;
  uint64_t accepted = 0;
  uint64_t rejected = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;      // job lines with status != ok
  uint64_t duplicated = 0;  // req tag seen twice
  std::vector<double> latencies_ms;
};

/// One connection's phase: pipeline `jobs` submits (optionally paced),
/// then `wait` + `quit`, reading the interleaved ack/result stream and
/// correlating completions back to send timestamps via req tags.
ConnResult RunConnection(const NetloadOptions& opt, const std::string& host,
                         uint16_t port, int conn_index, int jobs) {
  ConnResult r;
  Client client(host, port);
  if (!client.connected()) return r;

  std::string tenant = "c";
  tenant += std::to_string(conn_index);
  if (!opt.auth.empty()) {
    size_t colon = opt.auth.find(':');
    tenant = opt.auth.substr(0, colon);
    client.Send("auth " + tenant + " " + opt.auth.substr(colon + 1) + "\n");
    if (!StartsWith(client.ReadLine(), "ok tenant=")) return r;
  }
  const std::string graph =
      !opt.graph.empty() ? opt.graph : (opt.connect.empty() ? "netbench" : "PK");

  // Send timestamps in submission order; ack order maps them to req tags.
  std::vector<Clock::time_point> sent;
  sent.reserve(static_cast<size_t>(jobs));
  std::map<uint64_t, Clock::time_point> by_req;
  std::set<uint64_t> seen;
  uint64_t acked = 0;
  bool done = false;

  auto consume = [&](const std::string& line) {
    if (StartsWith(line, "queued req=")) {
      uint64_t req = std::strtoull(line.c_str() + 11, nullptr, 10);
      by_req[req] = sent[acked++];
      ++r.accepted;
    } else if (StartsWith(line, "reject:")) {
      ++acked;  // the k-th submit was turned away
      ++r.rejected;
    } else if (StartsWith(line, "job ")) {
      uint64_t req = TrailingReq(line);
      if (!seen.insert(req).second) ++r.duplicated;
      auto it = by_req.find(req);
      if (it != by_req.end()) {
        r.latencies_ms.push_back(
            std::chrono::duration<double, std::milli>(Clock::now() - it->second)
                .count());
      }
      if (line.find(" status=ok ") == std::string::npos) ++r.failed;
      ++r.completed;
    } else if (StartsWith(line, "done req=")) {
      done = true;
    }
  };

  const auto pace = opt.rate > 0
                        ? std::chrono::duration<double>(1.0 / opt.rate)
                        : std::chrono::duration<double>(0);
  const uint64_t window =
      opt.window > 0 ? static_cast<uint64_t>(opt.window) : ~uint64_t{0};
  for (int j = 0; j < jobs; ++j) {
    // Window gate: read completions (blocking) until a slot frees. The
    // submit itself still pipelines — the next one doesn't wait for this
    // one, only for the window.
    while (r.submitted - r.completed - r.rejected >= window) {
      std::string line = client.ReadLine();
      if (line.empty()) return r;
      consume(line);
    }
    sent.push_back(Clock::now());
    ++r.submitted;
    if (!client.Send("submit " + tenant + " sssp " + graph + " " +
                     std::to_string(j % 50) + "\n")) {
      return r;
    }
    if (pace.count() > 0) std::this_thread::sleep_for(pace);
  }
  client.Send("wait\nquit\n");
  while (!done) {
    std::string line = client.ReadLine();
    if (line.empty()) return r;  // dropped before the barrier drained
    consume(line);
  }
  // `quit` drains and closes; anything between `done` and EOF is ours too.
  for (std::string line = client.ReadLine(); !line.empty();
       line = client.ReadLine()) {
    consume(line);
  }
  r.transport_ok = true;
  return r;
}

struct PhaseResult {
  uint64_t conns_ok = 0;
  uint64_t submitted = 0;
  uint64_t accepted = 0;
  uint64_t rejected = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t duplicated = 0;
  double wall_s = 0;
  std::vector<double> latencies_ms;

  uint64_t lost() const { return accepted - completed; }
};

PhaseResult RunPhase(const NetloadOptions& opt, const std::string& host,
                     uint16_t port, int jobs_per_conn) {
  PhaseResult phase;
  std::vector<ConnResult> results(static_cast<size_t>(opt.conns));
  std::vector<std::thread> threads;
  threads.reserve(results.size());
  auto t0 = Clock::now();
  for (int i = 0; i < opt.conns; ++i) {
    threads.emplace_back([&, i] {
      results[static_cast<size_t>(i)] =
          RunConnection(opt, host, port, i, jobs_per_conn);
    });
  }
  for (std::thread& t : threads) t.join();
  phase.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
  for (const ConnResult& r : results) {
    phase.conns_ok += r.transport_ok ? 1 : 0;
    phase.submitted += r.submitted;
    phase.accepted += r.accepted;
    phase.rejected += r.rejected;
    phase.completed += r.completed;
    phase.failed += r.failed;
    phase.duplicated += r.duplicated;
    phase.latencies_ms.insert(phase.latencies_ms.end(), r.latencies_ms.begin(),
                              r.latencies_ms.end());
  }
  return phase;
}

/// The server's own view of job latency, scraped from `metrics json` over
/// the same TCP path the jobs took. Parsed with plain string search — the
/// renderer emits one flat object per histogram, and a bench binary stays
/// dependency-free.
struct ServerHistogram {
  bool ok = false;
  uint64_t count = 0;
  double p50_ms = 0;
  double p99_ms = 0;
};

double ExtractNumber(const std::string& json, size_t from, const char* field) {
  std::string needle = std::string("\"") + field + "\":";
  size_t pos = json.find(needle, from);
  if (pos == std::string::npos) return -1.0;
  return std::atof(json.c_str() + pos + needle.size());
}

ServerHistogram ScrapeJobLatency(const std::string& host, uint16_t port) {
  ServerHistogram h;
  Client client(host, port);
  if (!client.connected()) return h;
  if (!client.Send("metrics json\nquit\n")) return h;
  std::string line = client.ReadLine();
  size_t obj = line.find("\"slfe_job_latency_seconds\":{");
  if (obj == std::string::npos) return h;
  h.count = static_cast<uint64_t>(ExtractNumber(line, obj, "count"));
  h.p50_ms = ExtractNumber(line, obj, "p50") * 1e3;
  h.p99_ms = ExtractNumber(line, obj, "p99") * 1e3;
  h.ok = true;
  return h;
}

/// Client-observed and server-observed percentiles measure different
/// paths (the client adds loopback + parse + streaming, the histogram
/// quantizes to sqrt(2) buckets) — "agreement" means within a factor of
/// two plus a small absolute slack, which still catches a histogram that
/// is off by an order of magnitude or recording the wrong thing.
bool AgreesMs(double a, double b) {
  return a <= b * 2.0 + 5.0 && b <= a * 2.0 + 5.0;
}

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0;
  double sum = 0;
  for (double x : v) sum += x;
  return sum / static_cast<double>(v.size());
}

void WritePhase(bench::JsonWriter& json, const char* key,
                const PhaseResult& phase) {
  json.BeginObject(key);
  json.Field("submitted", phase.submitted);
  json.Field("accepted", phase.accepted);
  json.Field("rejected", phase.rejected);
  json.Field("completed", phase.completed);
  json.Field("failed", phase.failed);
  json.Field("lost", phase.lost());
  json.Field("duplicated", phase.duplicated);
  json.Field("p50_ms", Percentile(phase.latencies_ms, 0.50));
  json.Field("p99_ms", Percentile(phase.latencies_ms, 0.99));
  json.Field("mean_ms", Mean(phase.latencies_ms));
  json.Field("wall_s", phase.wall_s);
  json.Field("throughput_jobs_s",
             phase.wall_s > 0
                 ? static_cast<double>(phase.completed) / phase.wall_s
                 : 0.0);
  json.EndObject();
}

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *out = arg + len + 1;
    return true;
  }
  return false;
}

int Run(const NetloadOptions& opt) {
  std::string host = "127.0.0.1";
  uint16_t port = 0;

  // Self-hosted mode: the whole serving stack in-process, so the bench is
  // runnable (and its baseline reproducible) with no daemon choreography.
  std::unique_ptr<service::JobService> svc;
  std::unique_ptr<net::NetServer> server;
  std::thread serve_thread;
  if (opt.connect.empty()) {
    service::JobServiceOptions sopt;
    sopt.workers = opt.workers;
    sopt.queue_capacity = opt.queue_cap;
    sopt.job_nodes = 2;
    sopt.tracing = opt.tracing;
    svc = std::make_unique<service::JobService>(sopt);
    RmatOptions ropt;
    ropt.num_vertices = 12000 / bench::ScaleDivisor();
    ropt.num_edges = 48000 / bench::ScaleDivisor();
    ropt.weighted = true;
    ropt.seed = 99;
    EdgeList edges = GenerateRmat(ropt);
    edges.Deduplicate();
    Status reg = svc->RegisterGraph("netbench", Graph::FromEdges(edges));
    if (!reg.ok()) {
      std::fprintf(stderr, "bench_netload: register: %s\n",
                   reg.ToString().c_str());
      return 1;
    }
    net::NetServerOptions nopt;
    server = std::make_unique<net::NetServer>(*svc, nopt);
    Status started = server->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "bench_netload: %s\n", started.ToString().c_str());
      return 1;
    }
    port = server->port();
    serve_thread = std::thread([&server] { server->Serve(); });
  } else {
    size_t colon = opt.connect.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "bench_netload: --connect wants HOST:PORT\n");
      return 1;
    }
    host = opt.connect.substr(0, colon);
    port = static_cast<uint16_t>(
        std::strtoul(opt.connect.c_str() + colon + 1, nullptr, 10));
  }

  bench::PrintHeader("netload: pipelined jobs over the TCP front end");
  std::printf("conns=%d jobs/conn=%d rate=%s target=%s:%u\n", opt.conns,
              opt.jobs, opt.rate > 0 ? "paced" : "burst", host.c_str(),
              static_cast<unsigned>(port));

  PhaseResult steady = RunPhase(opt, host, port, opt.jobs);
  std::printf(
      "steady:   submitted=%llu completed=%llu rejected=%llu lost=%llu "
      "dup=%llu failed=%llu p50=%.2fms p99=%.2fms\n",
      static_cast<unsigned long long>(steady.submitted),
      static_cast<unsigned long long>(steady.completed),
      static_cast<unsigned long long>(steady.rejected),
      static_cast<unsigned long long>(steady.lost()),
      static_cast<unsigned long long>(steady.duplicated),
      static_cast<unsigned long long>(steady.failed),
      Percentile(steady.latencies_ms, 0.50),
      Percentile(steady.latencies_ms, 0.99));

  // Cross-check the server's histogram against our own wall clocks before
  // the overload phase pollutes it. Self-hosted only: an external daemon
  // may carry history from other clients.
  ServerHistogram scraped;
  bool metrics_ok = true;
  if (opt.connect.empty()) {
    scraped = ScrapeJobLatency(host, port);
    double bench_p50 = Percentile(steady.latencies_ms, 0.50);
    double bench_p99 = Percentile(steady.latencies_ms, 0.99);
    metrics_ok = scraped.ok && scraped.count == steady.completed &&
                 AgreesMs(scraped.p50_ms, bench_p50) &&
                 AgreesMs(scraped.p99_ms, bench_p99);
    std::printf(
        "metrics:  server count=%llu p50=%.2fms p99=%.2fms vs bench "
        "p50=%.2fms p99=%.2fms -> %s\n",
        static_cast<unsigned long long>(scraped.count), scraped.p50_ms,
        scraped.p99_ms, bench_p50, bench_p99,
        metrics_ok ? "agree" : "DISAGREE");
  }

  // Overload: burst 2x the queue capacity in total, no window, no pacing —
  // the queue must fill and start rejecting. The contract is accounting,
  // not latency: completed + rejected must cover every submission.
  int overload_jobs =
      opt.overload_jobs > 0
          ? opt.overload_jobs
          : std::max(1, (static_cast<int>(opt.queue_cap) * 2 + opt.conns - 1) /
                            opt.conns);
  NetloadOptions burst = opt;
  burst.rate = 0;
  burst.window = 0;  // unbounded: this phase exists to overflow the queue
  PhaseResult overload = RunPhase(burst, host, port, overload_jobs);
  std::printf(
      "overload: submitted=%llu completed=%llu rejected=%llu lost=%llu "
      "dup=%llu failed=%llu\n",
      static_cast<unsigned long long>(overload.submitted),
      static_cast<unsigned long long>(overload.completed),
      static_cast<unsigned long long>(overload.rejected),
      static_cast<unsigned long long>(overload.lost()),
      static_cast<unsigned long long>(overload.duplicated),
      static_cast<unsigned long long>(overload.failed));

  if (server != nullptr) {
    server->Stop();
    serve_thread.join();
    svc->Shutdown();
  }

  const bool ok =
      steady.conns_ok == static_cast<uint64_t>(opt.conns) &&
      steady.lost() == 0 && steady.duplicated == 0 && steady.failed == 0 &&
      steady.rejected == 0 &&  // modest load: nothing should be turned away
      overload.conns_ok == static_cast<uint64_t>(opt.conns) &&
      overload.lost() == 0 && overload.duplicated == 0 &&
      overload.failed == 0 &&
      overload.completed + overload.rejected == overload.submitted &&
      metrics_ok;

  std::FILE* out = std::fopen("BENCH_netload.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "bench_netload: cannot write BENCH_netload.json\n");
    return 1;
  }
  bench::JsonWriter json(out);
  json.BeginObject();
  json.Field("bench", "netload");
  json.Field("mode", opt.connect.empty() ? "self-hosted" : "external");
  json.Field("conns", static_cast<uint64_t>(opt.conns));
  json.Field("jobs_per_conn", static_cast<uint64_t>(opt.jobs));
  json.Field("overload_jobs_per_conn", static_cast<uint64_t>(overload_jobs));
  json.Field("window", static_cast<uint64_t>(opt.window));
  json.Field("queue_capacity", static_cast<uint64_t>(opt.queue_cap));
  json.Field("workers", static_cast<uint64_t>(opt.workers));
  json.Field("scale_divisor", static_cast<uint64_t>(bench::ScaleDivisor()));
  WritePhase(json, "steady", steady);
  WritePhase(json, "overload", overload);
  if (opt.connect.empty()) {
    json.BeginObject("server_metrics");
    json.Field("count", scraped.count);
    json.Field("p50_ms", scraped.p50_ms);
    json.Field("p99_ms", scraped.p99_ms);
    json.Field("agrees_with_bench", metrics_ok);
    json.EndObject();
  }
  json.Field("ok", ok);
  json.EndObject();
  std::fputc('\n', out);
  std::fclose(out);

  std::printf("-> BENCH_netload.json (%s)\n", ok ? "ok" : "FAILED");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace slfe

int main(int argc, char** argv) {
  slfe::NetloadOptions opt;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (slfe::ParseFlag(argv[i], "--conns", &value)) {
      opt.conns = std::atoi(value.c_str());
    } else if (slfe::ParseFlag(argv[i], "--jobs", &value)) {
      opt.jobs = std::atoi(value.c_str());
    } else if (slfe::ParseFlag(argv[i], "--workers", &value)) {
      opt.workers = static_cast<size_t>(std::atoi(value.c_str()));
    } else if (slfe::ParseFlag(argv[i], "--queue-cap", &value)) {
      opt.queue_cap = static_cast<size_t>(std::atoi(value.c_str()));
    } else if (slfe::ParseFlag(argv[i], "--window", &value)) {
      opt.window = std::atoi(value.c_str());
    } else if (slfe::ParseFlag(argv[i], "--rate", &value)) {
      opt.rate = std::atof(value.c_str());
    } else if (slfe::ParseFlag(argv[i], "--connect", &value)) {
      opt.connect = value;
    } else if (slfe::ParseFlag(argv[i], "--graph", &value)) {
      opt.graph = value;
    } else if (slfe::ParseFlag(argv[i], "--auth", &value)) {
      if (value.find(':') == std::string::npos) {
        std::fprintf(stderr, "--auth wants TENANT:SECRET\n");
        return 2;
      }
      opt.auth = value;
    } else if (slfe::ParseFlag(argv[i], "--overload-jobs", &value)) {
      opt.overload_jobs = std::atoi(value.c_str());
    } else if (std::strcmp(argv[i], "--no-tracing") == 0) {
      opt.tracing = false;
    } else {
      std::fprintf(stderr,
                   "usage: bench_netload [--conns=N] [--jobs=M] [--window=W]\n"
                   "  [--rate=R] [--workers=N] [--queue-cap=N]\n"
                   "  [--overload-jobs=M] [--no-tracing]\n"
                   "  [--connect=HOST:PORT [--graph=G] [--auth=T:SECRET]]\n");
      return 2;
    }
  }
  if (opt.conns < 1 || opt.jobs < 1) {
    std::fprintf(stderr, "bench_netload: --conns and --jobs must be >= 1\n");
    return 2;
  }
  return slfe::Run(opt);
}
