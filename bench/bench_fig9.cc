// Reproduces paper Fig. 9: number of computations per iteration with and
// without redundancy reduction, for SSSP, CC, and PageRank on the FS and
// LJ graphs. The paper's shapes: SSSP ramps to a lower peak with RR, CC
// decays from a smaller start, PR drops iteration by iteration as more EC
// vertices are frozen, and the min/max curves converge to the same final
// point (identical fixpoints).
//
// Runs through the api::Session facade — per-app knobs live in a table;
// dispatch belongs to the AppRegistry.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace slfe {
namespace {

constexpr bench::BenchApp kApps[] = {{"sssp"}, {"cc"}, {"pr", 30, 0.0}};

void PrintSeries(const char* label, const std::vector<uint64_t>& series) {
  std::printf("%-10s", label);
  for (uint64_t c : series) {
    std::printf(" %llu", static_cast<unsigned long long>(c));
  }
  std::printf("\n");
}

void RunOne(const bench::BenchApp& app, const char* alias) {
  std::printf("\n[%s-%s] computations per iteration\n", app.name, alias);
  for (bool rr : {false, true}) {
    api::AppOutcome outcome = bench::RunApp(
        bench::SessionFor(8), bench::MakeRequest(app, alias, rr));
    PrintSeries(rr ? "w/ RR" : "w/o RR",
                outcome.info.stats.per_iter_computations);
  }
}

void Run() {
  bench::PrintHeader("Fig. 9: per-iteration computation counts, w/ and w/o RR");
  for (const char* alias : {"FS", "LJ"}) {
    for (const bench::BenchApp& app : kApps) RunOne(app, alias);
  }
}

}  // namespace
}  // namespace slfe

int main() {
  slfe::Run();
  return 0;
}
