// Reproduces paper Fig. 9: number of computations per iteration with and
// without redundancy reduction, for SSSP, CC, and PageRank on the FS and
// LJ graphs. The paper's shapes: SSSP ramps to a lower peak with RR, CC
// decays from a smaller start, PR drops iteration by iteration as more EC
// vertices are frozen, and the min/max curves converge to the same final
// point (identical fixpoints).

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "slfe/apps/cc.h"
#include "slfe/apps/pr.h"
#include "slfe/apps/sssp.h"

namespace slfe {
namespace {

void PrintSeries(const char* label, const std::vector<uint64_t>& series) {
  std::printf("%-10s", label);
  for (uint64_t c : series) {
    std::printf(" %llu", static_cast<unsigned long long>(c));
  }
  std::printf("\n");
}

void RunApp(const std::string& app, const char* alias) {
  bool symmetric = app == "CC";
  const Graph& g = bench::LoadGraph(alias, symmetric);
  std::printf("\n[%s-%s] computations per iteration\n", app.c_str(), alias);
  for (bool rr : {false, true}) {
    AppConfig cfg = bench::ClusterConfig(8, rr);
    EngineStats stats;
    if (app == "SSSP") {
      stats = RunSssp(g, cfg).info.stats;
    } else if (app == "CC") {
      stats = RunCc(g, cfg).info.stats;
    } else {
      cfg.max_iters = 30;
      cfg.epsilon = 0.0;
      stats = RunPr(g, cfg).info.stats;
    }
    PrintSeries(rr ? "w/ RR" : "w/o RR", stats.per_iter_computations);
  }
}

void Run() {
  bench::PrintHeader("Fig. 9: per-iteration computation counts, w/ and w/o RR");
  for (const char* alias : {"FS", "LJ"}) {
    RunApp("SSSP", alias);
    RunApp("CC", alias);
    RunApp("PR", alias);
  }
}

}  // namespace
}  // namespace slfe

int main() {
  slfe::Run();
  return 0;
}
