// Ablation bench for the design choices DESIGN.md calls out:
//   1. RR delayed-update recovery variant (gather-all-at-start vs
//      dirty-vertex transition push vs paper-literal all-vertex push);
//   2. dense/sparse switch threshold (Gemini's |E|/20 vs alternatives);
//   3. chunk partitioner alpha (edge weight in the balance metric);
//   4. guidance generation strategy (serial sweep vs frontier-parallel
//      sweep at several worker counts vs cached retrieval).
// Each section prints total computations, updates, and runtime so the
// trade-offs are visible side by side.

#include <cstdio>
#include <limits>
#include <numeric>
#include <string>

#include "bench/bench_util.h"
#include "slfe/apps/sssp.h"
#include "slfe/common/thread_pool.h"
#include "slfe/core/guidance_provider.h"
#include "slfe/core/roots.h"
#include "slfe/core/rr_runners.h"
#include "slfe/engine/atomic_ops.h"
#include "slfe/graph/partitioner.h"
#include "slfe/sim/cluster.h"

namespace slfe {
namespace {

/// SSSP under a specific RRVariant (RunSssp hard-codes the default, so
/// this drives the runner directly).
EngineStats SsspWithVariant(const Graph& g, RRVariant variant) {
  constexpr float kInf = std::numeric_limits<float>::infinity();
  std::vector<float> dist(g.num_vertices(), kInf);
  dist[0] = 0.0f;
  DistGraph dg = DistGraph::Build(g, 8);
  RRGuidance guidance = RRGuidance::Generate(g, {0});
  EngineOptions opt;
  DistEngine<float> engine(dg, opt);
  MinMaxRunner<float> runner(&engine, &guidance, variant);
  auto gather = [&dist](float acc, VertexId src, Weight w) {
    float c = AtomicLoad(&dist[src]) + w;
    return c < acc ? c : acc;
  };
  auto apply = [&dist](VertexId dst, float acc) {
    if (acc < dist[dst]) {
      dist[dst] = acc;
      return true;
    }
    return false;
  };
  auto scatter = [&dist](VertexId src, VertexId dst, Weight w) {
    return AtomicMin(&dist[dst], AtomicLoad(&dist[src]) + w);
  };
  EngineStats stats;
  sim::Cluster cluster(8, 1);
  cluster.Run([&](sim::NodeContext& ctx) {
    auto run = runner.Run(ctx, {0}, kInf, gather, apply, scatter);
    if (ctx.rank == 0) stats = run.stats;
  });
  return stats;
}

void VariantAblation() {
  std::printf("\n[1] RR recovery variant (SSSP, 8N)\n");
  std::printf("%-8s %-22s %-14s %-10s %-12s\n", "graph", "variant",
              "computations", "updates", "runtime(s)");
  bench::PrintRule();
  struct Named {
    RRVariant v;
    const char* name;
  };
  for (const char* alias : {"LJ", "FS"}) {
    const Graph& g = bench::LoadGraph(alias);
    for (Named nv : {Named{RRVariant::kGatherAllAtStart, "gather-all-at-start"},
                     Named{RRVariant::kDirtyPush, "dirty-push"},
                     Named{RRVariant::kAllPush, "all-push (paper Alg.3)"}}) {
      EngineStats s = SsspWithVariant(g, nv.v);
      std::printf("%-8s %-22s %-14llu %-10llu %-12.4f\n", alias, nv.name,
                  static_cast<unsigned long long>(s.computations),
                  static_cast<unsigned long long>(s.updates),
                  s.RuntimeSeconds());
    }
  }
}

void ThresholdAblation() {
  std::printf("\n[2] dense/sparse switch threshold (SSSP w/ RR, 8N, FS)\n");
  std::printf("%-12s %-12s %-14s %-12s\n", "threshold", "supersteps",
              "computations", "runtime(s)");
  bench::PrintRule();
  const Graph& g = bench::LoadGraph("FS");
  for (double fraction : {0.01, 0.05, 0.2, 1.0}) {
    AppConfig cfg = bench::ClusterConfig(8, true);
    cfg.dense_fraction = fraction;
    SsspResult r = RunSssp(g, cfg);
    std::printf("|E|*%-7.2f %-12llu %-14llu %-12.4f\n", fraction,
                static_cast<unsigned long long>(r.info.supersteps),
                static_cast<unsigned long long>(r.info.stats.computations),
                r.info.stats.RuntimeSeconds());
  }
  std::printf("(1.0 = push-only in practice; Gemini's default is 0.05)\n");
}

void PartitionerAblation() {
  std::printf("\n[3] chunk partitioner alpha (edge weight in balance "
              "metric), FS, 8 parts\n");
  std::printf("%-8s %-18s\n", "alpha", "edge imbalance");
  bench::PrintRule();
  const Graph& g = bench::LoadGraph("FS");
  for (double alpha : {0.0, 0.5, 1.0, 4.0, 16.0}) {
    ChunkPartitioner::Options opt;
    opt.alpha = alpha;
    ChunkPartitioner partitioner(opt);
    auto ranges = partitioner.Partition(g, 8);
    std::printf("%-8.1f %-18.3f\n", alpha,
                ChunkPartitioner::EdgeImbalance(g, ranges));
  }
  std::printf("(alpha=0 balances vertices only; larger alpha balances "
              "edges, which drives pull-mode work)\n");
}

void GuidanceGenerationAblation() {
  std::printf("\n[4] guidance generation strategy (single-source roots; "
              "bk = per-iteration bookkeeping share)\n");
  std::printf("%-8s %-22s %-14s %-14s %-12s\n", "graph", "strategy",
              "seconds", "bookkeeping", "vs serial");
  bench::PrintRule();
  for (const char* alias : {"LJ", "FS"}) {
    const Graph& g = bench::LoadGraph(alias);
    double serial =
        RRGuidance::GenerateSerial(g, {0}).generation_seconds();
    std::printf("%-8s %-22s %-14.6f %-14s %-12s\n", alias,
                "serial (reference)", serial, "-", "1.00x");
    for (size_t workers : {2u, 4u}) {
      ThreadPool pool(workers);
      RRGuidance uniform = RRGuidance::GenerateParallel(g, {0}, pool);
      std::printf("%-8s uniform x%-13zu %-14.6f %-14.6f %.2fx\n", alias,
                  workers, uniform.generation_seconds(),
                  uniform.bookkeeping_seconds(),
                  uniform.generation_seconds() > 0
                      ? serial / uniform.generation_seconds()
                      : 0.0);
      RRGuidance part = RRGuidance::GeneratePartitioned(g, {0}, pool);
      std::printf("%-8s partitioned x%-9zu %-14.6f %-14.6f %.2fx\n", alias,
                  workers, part.generation_seconds(),
                  part.bookkeeping_seconds(),
                  part.generation_seconds() > 0
                      ? serial / part.generation_seconds()
                      : 0.0);
    }
    GuidanceProvider provider;
    provider.AcquireForRoots(g, {0});  // warm the cache
    double hit = provider.AcquireForRoots(g, {0}).acquire_seconds;
    std::printf("%-8s %-22s %-14.6f %-14s %.0fx\n", alias,
                "cached retrieval", hit, "-",
                hit > 0 ? serial / hit : 0.0);
  }
  std::printf("(partitioned slices by the DistGraph ranges and fuses the "
              "frontier-edge count into the merge; cached retrieval is the "
              "paper's multi-job amortization path, ~8.7 jobs/graph)\n");
}

void Run() {
  bench::PrintHeader(
      "Ablations: RR variant, mode threshold, partitioner, guidance");
  VariantAblation();
  ThresholdAblation();
  PartitionerAblation();
  GuidanceGenerationAblation();
}

}  // namespace
}  // namespace slfe

int main() {
  slfe::Run();
  return 0;
}
