// bench_sketch — the sketch plane's cost/accuracy card: ingest throughput
// for the raw conservative-update count-min and for the full
// HotnessTracker::Record path (4 salted marginals + count-sketch + top-k
// heap), then a differential accuracy pass against exact counts on a zipf
// stream — overshoot vs the epsilon*N contract, top-k recall vs the true
// heavy hitters — and the counter-storage footprint. Emits
// BENCH_sketch.json; exits non-zero if any accuracy gate fails, so a
// regressed hash mix or a broken conservative update can't land as a
// "perf-only" change.
//
//   bench_sketch                       # full run, ~2M updates
//   bench_sketch --smoke               # CI: ~200k updates, same gates
//   bench_sketch --json=PATH           # artifact path (default in cwd)

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench/bench_util.h"
#include "slfe/sketch/hotness.h"
#include "slfe/sketch/sketch.h"
#include "slfe/sketch/topk.h"

namespace slfe {
namespace {

using Clock = std::chrono::steady_clock;

double NsPerOp(Clock::time_point start, Clock::time_point end, size_t ops) {
  return std::chrono::duration<double, std::nano>(end - start).count() /
         static_cast<double>(ops);
}

// Zipf-ish stream (weight 1/(rank+1)^s), fixed seed: every run measures
// the same byte-identical workload.
std::vector<uint64_t> ZipfStream(size_t num_keys, size_t n, double s) {
  std::vector<double> weights(num_keys);
  for (size_t r = 0; r < num_keys; ++r) {
    weights[r] = 1.0 / std::pow(static_cast<double>(r + 1), s);
  }
  std::discrete_distribution<size_t> dist(weights.begin(), weights.end());
  std::mt19937 rng(20180808);
  std::vector<uint64_t> stream(n);
  for (size_t i = 0; i < n; ++i) stream[i] = SketchMix64(dist(rng));
  return stream;
}

}  // namespace

int Main(int argc, char** argv) {
  size_t n = 2'000'000;
  size_t num_keys = 20'000;
  std::string json_path = "BENCH_sketch.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      n = 200'000;
      num_keys = 5'000;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--n=", 4) == 0) {
      n = static_cast<size_t>(std::strtoull(argv[i] + 4, nullptr, 10));
    } else if (std::strncmp(argv[i], "--keys=", 7) == 0) {
      num_keys = static_cast<size_t>(std::strtoull(argv[i] + 7, nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: bench_sketch [--smoke] [--n=N] [--keys=K] "
                   "[--json=PATH]\n");
      return 2;
    }
  }

  bench::PrintHeader("sketch: count-min ingest + accuracy vs exact");
  std::vector<uint64_t> stream = ZipfStream(num_keys, n, 1.1);
  std::unordered_map<uint64_t, uint64_t> exact;
  exact.reserve(num_keys * 2);
  for (uint64_t key : stream) ++exact[key];

  // --- ingest: raw conservative-update count-min ---
  const SketchOptions options;  // the service's defaults
  CountMinSketch sketch(options);
  Clock::time_point t0 = Clock::now();
  for (uint64_t key : stream) sketch.Update(key);
  Clock::time_point t1 = Clock::now();
  const double cm_ns = NsPerOp(t0, t1, stream.size());

  // --- ingest: the full Record path the service pays per request ---
  HotnessTracker tracker;
  const std::string tenants[] = {"acme", "globex", "initech", "umbrella"};
  t0 = Clock::now();
  for (size_t i = 0; i < stream.size(); ++i) {
    tracker.Record(tenants[i & 3], stream[i], "sssp");
  }
  t1 = Clock::now();
  const double record_ns = NsPerOp(t0, t1, stream.size());

  // --- accuracy: the (epsilon, delta) contract, checked literally ---
  const double bound = options.epsilon * static_cast<double>(n);
  uint64_t max_overshoot = 0;
  double overshoot_sum = 0;
  size_t violations = 0;
  bool underestimated = false;
  for (const auto& [key, count] : exact) {
    uint64_t est = sketch.Estimate(key);
    if (est < count) underestimated = true;
    uint64_t over = est - count;
    max_overshoot = std::max(max_overshoot, over);
    overshoot_sum += static_cast<double>(over);
    if (static_cast<double>(over) > bound) ++violations;
  }
  const double mean_overshoot =
      overshoot_sum / static_cast<double>(exact.size());
  const double violation_rate =
      static_cast<double>(violations) / static_cast<double>(exact.size());

  // --- top-k recall: tracker's heap vs the exact top 20 ---
  const size_t kTrueTop = 20;
  std::vector<std::pair<uint64_t, uint64_t>> ranked(exact.begin(),
                                                    exact.end());
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::vector<HotGraph> top = tracker.TopGraphs();
  size_t recalled = 0;
  for (size_t r = 0; r < kTrueTop && r < ranked.size(); ++r) {
    for (const HotGraph& hit : top) {
      if (hit.fingerprint == ranked[r].first) {
        ++recalled;
        break;
      }
    }
  }
  const double recall =
      static_cast<double>(recalled) / static_cast<double>(kTrueTop);

  const bool ok = !underestimated && violation_rate <= options.delta &&
                  recall >= 0.9;

  bench::PrintRule();
  std::printf(
      "updates=%zu keys=%zu width=%zu depth=%zu mem=%zuB\n"
      "ingest: count-min %.1f ns/op, tracker record %.1f ns/op\n"
      "error:  mean overshoot %.2f, max %llu, >eps*N on %.4f%% of keys "
      "(gate %.2f%%)\n"
      "top-k:  recall %.0f%% of the true top %zu (gate 90%%)\n",
      stream.size(), exact.size(), sketch.width(), sketch.depth(),
      sketch.MemoryBytes(), cm_ns, record_ns, mean_overshoot,
      static_cast<unsigned long long>(max_overshoot), violation_rate * 100.0,
      options.delta * 100.0, recall * 100.0, kTrueTop);

  std::FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "bench_sketch: cannot write %s\n", json_path.c_str());
    return 1;
  }
  bench::JsonWriter json(out);
  json.BeginObject();
  json.Field("bench", "sketch");
  json.Field("updates", static_cast<uint64_t>(stream.size()));
  json.Field("distinct_keys", static_cast<uint64_t>(exact.size()));
  json.Field("width", static_cast<uint64_t>(sketch.width()));
  json.Field("depth", static_cast<uint64_t>(sketch.depth()));
  json.Field("memory_bytes", static_cast<uint64_t>(sketch.MemoryBytes()));
  json.Field("epsilon", options.epsilon);
  json.Field("delta", options.delta);
  json.Field("countmin_update_ns", cm_ns);
  json.Field("tracker_record_ns", record_ns);
  json.Field("mean_overshoot", mean_overshoot);
  json.Field("max_overshoot", max_overshoot);
  json.Field("violation_rate", violation_rate);
  json.Field("never_underestimates", !underestimated);
  json.Field("topk_recall", recall);
  json.Field("ok", ok);
  json.EndObject();
  std::fputc('\n', out);
  std::fclose(out);

  std::printf("-> %s (%s)\n", json_path.c_str(), ok ? "ok" : "FAILED");
  return ok ? 0 : 1;
}

}  // namespace slfe

int main(int argc, char** argv) { return slfe::Main(argc, argv); }
