// Reproduces paper Fig. 10: the effect of redundancy reduction on load
// balance.
//   (a) intra-node: runtime with and without work stealing (the paper
//       measures -21% runtime for arithmetic apps and -15% for min/max
//       apps with stealing on);
//   (b) inter-node: the spread between the earliest- and latest-finishing
//       node, with and without RR (the paper measures <7% without RR and
//       about +2% added by RR).
//
// Runs through the api::Session facade — per-app knobs live in a table;
// dispatch belongs to the AppRegistry.

#include <algorithm>
#include <cstdio>
#include <utility>

#include "bench/bench_util.h"

namespace slfe {
namespace {

constexpr bench::BenchApp kApps[] = {
    {"sssp"}, {"cc"}, {"wp"}, {"pr", 15, 0.0}, {"tr", 15, 0.0}};

EngineStats RunOne(const bench::BenchApp& app, api::Session& session,
                   bool rr, bool stealing) {
  api::AppRequest request = bench::MakeRequest(app, "FS", rr);
  request.enable_stealing = stealing;
  return bench::RunApp(session, request).info.stats;
}

void IntraNode() {
  std::printf("\n(a) intra-node: normalized runtime w/ stealing (baseline = "
              "w/o stealing), 1 node x 4 threads, FS graph\n");
  std::printf("%-8s %-16s %-16s %-14s %-22s\n", "app", "w/o steal(s)",
              "w/ steal(s)", "normalized", "chunk spread w/o->w/");
  bench::PrintRule();
  api::Session& session = bench::SessionFor(1, /*threads_per_node=*/4);
  for (const bench::BenchApp& app : kApps) {
    EngineStats off = RunOne(app, session, /*rr=*/true, /*stealing=*/false);
    EngineStats on = RunOne(app, session, /*rr=*/true, /*stealing=*/true);
    auto spread = [](const EngineStats& s) {
      uint64_t mx = 0, mn = UINT64_MAX;
      for (uint64_t c : s.per_thread_chunks) {
        mx = std::max(mx, c);
        mn = std::min(mn, c);
      }
      return std::pair<uint64_t, uint64_t>(mx, mn);
    };
    auto [mx0, mn0] = spread(off);
    auto [mx1, mn1] = spread(on);
    std::printf("%-8s %-16.4f %-16.4f %-14.3f %llu/%llu -> %llu/%llu\n",
                app.name, off.RuntimeSeconds(), on.RuntimeSeconds(),
                on.RuntimeSeconds() / off.RuntimeSeconds(),
                static_cast<unsigned long long>(mx0),
                static_cast<unsigned long long>(mn0),
                static_cast<unsigned long long>(mx1),
                static_cast<unsigned long long>(mn1));
  }
  std::printf("(paper: stealing removes ~21%% runtime for PR/TR, ~15%% for "
              "min/max apps; single-core host shows the chunk-spread "
              "rebalance rather than wall-clock gain)\n");
}

void InterNode() {
  std::printf("\n(b) inter-node: finish-time spread across 8 nodes, "
              "(max-min)/max per app\n");
  std::printf("%-8s %-14s %-14s\n", "app", "w/o RR", "w/ RR");
  bench::PrintRule();
  api::Session& session = bench::SessionFor(8);
  for (const bench::BenchApp& app : kApps) {
    double imbalance_off =
        RunOne(app, session, /*rr=*/false, /*stealing=*/true)
            .InterNodeImbalance();
    double imbalance_on =
        RunOne(app, session, /*rr=*/true, /*stealing=*/true)
            .InterNodeImbalance();
    std::printf("%-8s %-14.1f%% %-14.1f%%\n", app.name,
                100.0 * imbalance_off, 100.0 * imbalance_on);
  }
  std::printf("(paper: <7%% without RR; RR adds ~2%% on average)\n");
}

void Run() {
  bench::PrintHeader("Fig. 10: RR effects on intra/inter-node balance");
  IntraNode();
  InterNode();
}

}  // namespace
}  // namespace slfe

int main() {
  slfe::Run();
  return 0;
}
