// Reproduces paper Fig. 2: percentage of early-converged (EC) vertices in
// PageRank across the seven graphs. The paper measures 83% on average,
// with OK and DI near 99%. We run PR with RR enabled and report the
// fraction of vertices frozen by the multi-Ruler at termination.

#include <cstdio>

#include "bench/bench_util.h"
#include "slfe/apps/pr.h"

namespace slfe {
namespace {

void Run() {
  bench::PrintHeader("Fig. 2: %% of EC vertices in PageRank");
  std::printf("%-10s %-14s %-14s %-10s\n", "graph", "EC vertices", "|V|",
              "EC %");
  bench::PrintRule();
  double sum_pct = 0;
  int count = 0;
  for (const std::string& alias : bench::PaperGraphs()) {
    const Graph& g = bench::LoadGraph(alias);
    AppConfig cfg = bench::ClusterConfig(1, /*enable_rr=*/true);
    cfg.max_iters = 100;
    cfg.epsilon = 1e-7;
    PrResult r = RunPr(g, cfg);
    double pct = 100.0 * static_cast<double>(r.info.ec_vertices) /
                 static_cast<double>(g.num_vertices());
    std::printf("%-10s %-14llu %-14u %-10.1f\n", alias.c_str(),
                static_cast<unsigned long long>(r.info.ec_vertices),
                g.num_vertices(), pct);
    sum_pct += pct;
    ++count;
  }
  bench::PrintRule();
  std::printf("%-10s %-14s %-14s %-10.1f  (paper avg: 83%%)\n", "avg", "",
              "", sum_pct / count);
}

}  // namespace
}  // namespace slfe

int main() {
  slfe::Run();
  return 0;
}
