// Reproduces paper Table 2: updates per vertex of SSSP in PowerLyra and
// Gemini across the seven graphs. The paper reports 9.1 (PowerLyra) and
// 7.5 (Gemini) on average; the ideal with no redundancy is 1. Our scaled
// synthetic graphs are shallower than the full datasets, so the absolute
// values are lower — the comparison that matters is "well above 1, and
// GAS above the dual-mode engine" (see EXPERIMENTS.md).

#include <cstdio>

#include "bench/bench_util.h"
#include "slfe/apps/sssp.h"
#include "slfe/gas/gas_apps.h"

namespace slfe {
namespace {

void Run() {
  bench::PrintHeader(
      "Table 2: updates per vertex of SSSP (PowerLyra-style GAS vs Gemini)");
  std::printf("%-10s %-12s %-12s %-12s\n", "graph", "PowerLyra", "Gemini",
              "SLFE(w/ RR)");
  bench::PrintRule();
  double sum_pl = 0, sum_gem = 0, sum_slfe = 0;
  int count = 0;
  for (const std::string& alias : bench::PaperGraphs()) {
    const Graph& g = bench::LoadGraph(alias);

    gas::GasOptions pl;
    pl.num_nodes = 8;
    pl.placement = gas::Placement::kHybridCut;
    auto r_pl = gas::RunGasSssp(g, 0, pl);

    AppConfig gemini = bench::ClusterConfig(8, /*enable_rr=*/false);
    auto r_gem = RunSssp(g, gemini);

    AppConfig slfe = bench::ClusterConfig(8, /*enable_rr=*/true);
    auto r_slfe = RunSssp(g, slfe);

    double n = static_cast<double>(g.num_vertices());
    double upv_pl = static_cast<double>(r_pl.stats.updates) / n;
    double upv_gem = static_cast<double>(r_gem.info.stats.updates) / n;
    double upv_slfe = static_cast<double>(r_slfe.info.stats.updates) / n;
    std::printf("%-10s %-12.2f %-12.2f %-12.2f\n", alias.c_str(), upv_pl,
                upv_gem, upv_slfe);
    sum_pl += upv_pl;
    sum_gem += upv_gem;
    sum_slfe += upv_slfe;
    ++count;
  }
  bench::PrintRule();
  std::printf("%-10s %-12.2f %-12.2f %-12.2f   (paper: 9.1 / 7.5 / ~1)\n",
              "avg", sum_pl / count, sum_gem / count, sum_slfe / count);
}

}  // namespace
}  // namespace slfe

int main() {
  slfe::Run();
  return 0;
}
