// Reproduces paper Fig. 5: SLFE's runtime improvement over Gemini on the
// 8-node cluster for the five applications across the seven graphs.
// "Gemini" is our engine with redundancy reduction disabled (the paper's
// own framing: SLFE = Gemini-style runtime + RR). The paper reports
// 34.2/43.1/42.7/47.5/41.6 % average improvement for SSSP/CC/WP/PR/TR;
// our scaled graphs are shallower, so expect the same sign and ordering
// with smaller magnitudes (EXPERIMENTS.md).
//
// Runs through the api::Session facade — the bench declares WHICH apps
// and knobs per row; dispatch belongs to the AppRegistry.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace slfe {
namespace {

constexpr int kNodes = 8;
// PR/TR run to (near) convergence: "finish early" pays off in the long
// tail where most vertices are already stable (paper Fig. 9e/9f run
// 150-250 iterations).
constexpr uint32_t kArithIters = 150;

constexpr bench::BenchApp kApps[] = {
    {"sssp"}, {"cc"}, {"wp"},
    {"pr", kArithIters, 0.0}, {"tr", kArithIters, 0.0},
};

double RuntimeOf(const bench::BenchApp& app, const std::string& alias,
                 bool rr) {
  return bench::RunApp(bench::SessionFor(kNodes),
                       bench::MakeRequest(app, alias, rr))
      .info.stats.RuntimeSeconds();
}

void Run() {
  bench::PrintHeader("Fig. 5: SLFE runtime improvement over Gemini (8N)");
  // GRID is an extra deep-diameter workload (not in the paper's suite):
  // the scaled-down RMAT graphs are too shallow to show min/max
  // redundancy, so this column demonstrates the "start late" win in the
  // regime the full-size datasets occupy.
  std::vector<std::string> graphs = bench::PaperGraphs();
  graphs.push_back("GRID");
  std::printf("%-8s", "app");
  for (const std::string& alias : graphs) {
    std::printf(" %-8s", alias.c_str());
  }
  std::printf(" %-8s\n", "average");
  bench::PrintRule();
  for (const bench::BenchApp& app : kApps) {
    std::printf("%-8s", app.name);
    double sum = 0;
    int count = 0;
    for (const std::string& alias : graphs) {
      // Median of 3 runs to damp single-core scheduling noise.
      std::vector<double> gem(3), slfe(3);
      for (int i = 0; i < 3; ++i) {
        gem[i] = RuntimeOf(app, alias, false);
        slfe[i] = RuntimeOf(app, alias, true);
      }
      double gem_med = bench::Median(gem);
      double slfe_med = bench::Median(slfe);
      double improvement = 100.0 * (gem_med - slfe_med) / gem_med;
      std::printf(" %-8.1f", improvement);
      sum += improvement;
      ++count;
    }
    std::printf(" %-8.1f\n", sum / count);
  }
  std::printf("(values are %% runtime improvement; paper averages: SSSP 34.2, "
              "CC 43.1, WP 42.7, PR 47.5, TR 41.6)\n");
}

}  // namespace
}  // namespace slfe

int main() {
  slfe::Run();
  return 0;
}
