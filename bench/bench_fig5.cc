// Reproduces paper Fig. 5: SLFE's runtime improvement over Gemini on the
// 8-node cluster for the five applications across the seven graphs.
// "Gemini" is our engine with redundancy reduction disabled (the paper's
// own framing: SLFE = Gemini-style runtime + RR). The paper reports
// 34.2/43.1/42.7/47.5/41.6 % average improvement for SSSP/CC/WP/PR/TR;
// our scaled graphs are shallower, so expect the same sign and ordering
// with smaller magnitudes (EXPERIMENTS.md).

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "slfe/apps/cc.h"
#include "slfe/apps/pr.h"
#include "slfe/apps/sssp.h"
#include "slfe/apps/tr.h"
#include "slfe/apps/wp.h"

namespace slfe {
namespace {

constexpr int kNodes = 8;
// PR/TR run to (near) convergence: "finish early" pays off in the long
// tail where most vertices are already stable (paper Fig. 9e/9f run
// 150-250 iterations).
constexpr uint32_t kArithIters = 150;

double RuntimeOf(const std::string& app, const Graph& g, bool rr) {
  AppConfig cfg = bench::ClusterConfig(kNodes, rr);
  if (app == "SSSP") return RunSssp(g, cfg).info.stats.RuntimeSeconds();
  if (app == "CC") return RunCc(g, cfg).info.stats.RuntimeSeconds();
  if (app == "WP") return RunWp(g, cfg).info.stats.RuntimeSeconds();
  cfg.max_iters = kArithIters;
  cfg.epsilon = 0.0;
  if (app == "PR") return RunPr(g, cfg).info.stats.RuntimeSeconds();
  return RunTr(g, cfg).info.stats.RuntimeSeconds();
}

void Run() {
  bench::PrintHeader("Fig. 5: SLFE runtime improvement over Gemini (8N)");
  // GRID is an extra deep-diameter workload (not in the paper's suite):
  // the scaled-down RMAT graphs are too shallow to show min/max
  // redundancy, so this column demonstrates the "start late" win in the
  // regime the full-size datasets occupy.
  std::vector<std::string> graphs = bench::PaperGraphs();
  graphs.push_back("GRID");
  std::printf("%-8s", "app");
  for (const std::string& alias : graphs) {
    std::printf(" %-8s", alias.c_str());
  }
  std::printf(" %-8s\n", "average");
  bench::PrintRule();
  for (const std::string& app : {std::string("SSSP"), std::string("CC"),
                                 std::string("WP"), std::string("PR"),
                                 std::string("TR")}) {
    std::printf("%-8s", app.c_str());
    double sum = 0;
    int count = 0;
    for (const std::string& alias : graphs) {
      const Graph& g = bench::LoadGraph(alias, /*symmetric=*/app == "CC");
      // Median of 3 runs to damp single-core scheduling noise.
      std::vector<double> gem(3), slfe(3);
      for (int i = 0; i < 3; ++i) {
        gem[i] = RuntimeOf(app, g, false);
        slfe[i] = RuntimeOf(app, g, true);
      }
      double gem_med = bench::Median(gem);
      double slfe_med = bench::Median(slfe);
      double improvement = 100.0 * (gem_med - slfe_med) / gem_med;
      std::printf(" %-8.1f", improvement);
      sum += improvement;
      ++count;
    }
    std::printf(" %-8.1f\n", sum / count);
  }
  std::printf("(values are %% runtime improvement; paper averages: SSSP 34.2, "
              "CC 43.1, WP 42.7, PR 47.5, TR 41.6)\n");
}

}  // namespace
}  // namespace slfe

int main() {
  slfe::Run();
  return 0;
}
