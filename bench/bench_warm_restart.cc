// Warm-restart serving: the arena tentpole's headline measurement. For
// each graph the bench times the COLD daemon start (parse the text edge
// list, build the CSR, fingerprint it, partition it for 8 nodes) against
// the WARM start (map the saved *.sga arena read-only, validate its
// checksums, adopt the recorded partition), reports the speedup and the
// on-disk footprint of both codecs, and proves the mapped graph serves
// bit-identical guided results (same per-vertex values as the parsed
// graph, through the same Session::Run path the daemon uses).
//
//   bench_warm_restart                       # table + BENCH_warm_restart.json
//   bench_warm_restart --json=out.json --min-speedup=10
//   bench_warm_restart --smoke               # CI wiring check, tiny graph
//
// Exits non-zero when any graph's speedup falls below --min-speedup or a
// mapped result diverges from the parsed one — the acceptance gate, not
// just a report.

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "slfe/common/timer.h"
#include "slfe/engine/dist_graph.h"
#include "slfe/graph/arena.h"
#include "slfe/graph/loader.h"

namespace slfe {
namespace {

struct Row {
  std::string alias;
  uint64_t vertices = 0;
  uint64_t edges = 0;
  double cold_seconds = 0;   // parse + CSR + fingerprint + partition
  double warm_seconds = 0;   // arena map + validate + adopt ranges
  double speedup = 0;
  uint64_t text_bytes = 0;
  uint64_t arena_bytes = 0;         // raw codec
  uint64_t arena_varint_bytes = 0;  // delta-varint codec
  bool identical = false;  // guided per-vertex results parsed vs mapped
};

uint64_t FileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return 0;
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fclose(f);
  return size < 0 ? 0 : static_cast<uint64_t>(size);
}

/// The cold path a daemon start pays per graph today: text parse, CSR
/// build, fingerprint, 8-node partition. Returns the built graph (used
/// afterwards to write the arena the warm path maps).
Graph ColdStart(const std::string& text_path, double* seconds) {
  Timer t;
  Result<EdgeList> edges = LoadEdgeListText(text_path);
  if (!edges.ok()) {
    std::fprintf(stderr, "bench: parse %s: %s\n", text_path.c_str(),
                 edges.status().ToString().c_str());
    std::exit(1);
  }
  Graph graph = Graph::FromEdges(edges.value());
  graph.fingerprint();  // the registration path always fingerprints
  std::vector<VertexRange> ranges = DistGraph::BuildRanges(graph, 8);
  *seconds = t.Seconds();
  if (ranges.size() != 8) std::exit(1);  // keep the work observable
  return graph;
}

/// The warm path: map + validate + adopt the recorded partition (Open
/// already re-checksums the payload and validates the ranges — the honest
/// comparison verifies what the cold path re-derives). Like registration,
/// neither leg builds a DistGraph: engines do that per run, from
/// BuildRanges (cold) or BuildWithRanges (warm) at identical cost.
double WarmStart(const std::string& arena_path) {
  Timer t;
  Result<std::shared_ptr<GraphArena>> arena = GraphArena::Open(arena_path);
  if (!arena.ok()) {
    std::fprintf(stderr, "bench: map %s: %s\n", arena_path.c_str(),
                 arena.status().ToString().c_str());
    std::exit(1);
  }
  Graph graph = arena.value()->graph();
  const std::vector<VertexRange>& ranges = arena.value()->ranges();
  double seconds = t.Seconds();
  if (ranges.size() != 8 || graph.num_edges() == 0) std::exit(1);
  return seconds;
}

/// Same app, same request, one Session over the parsed graph and one over
/// the mapped graph: per-vertex values must match bit-for-bit.
bool GuidedResultsIdentical(const Graph& parsed, const std::string& arena_path,
                            const std::string& alias) {
  api::SessionOptions opt;
  opt.num_nodes = 8;
  api::Session from_parse(opt);
  api::Session from_arena(opt);
  if (!from_parse.AddGraph(alias, parsed).ok() ||
      !from_arena.AddGraphFromArena(alias, arena_path).ok()) {
    return false;
  }
  api::AppRequest request;
  request.app = "sssp";
  request.graph = alias;
  request.enable_rr = true;
  api::AppOutcome a = from_parse.Run(request);
  api::AppOutcome b = from_arena.Run(request);
  if (!a.status.ok() || !b.status.ok()) return false;
  if (a.values.size() != b.values.size() || a.summary != b.summary) {
    return false;
  }
  return std::memcmp(a.values.data(), b.values.data(),
                     a.values.size() * sizeof(double)) == 0;
}

Row MeasureGraph(const std::string& alias, const std::string& work_dir) {
  Row row;
  row.alias = alias;

  std::string text_path = work_dir + "/" + alias + ".txt";
  std::string arena_path = work_dir + "/" + alias + ".sga";
  std::string varint_path = work_dir + "/" + alias + ".varint.sga";

  EdgeList edges = bench::EdgesFor(alias);
  Status saved = SaveEdgeListText(edges, text_path);
  if (!saved.ok()) {
    std::fprintf(stderr, "bench: %s\n", saved.ToString().c_str());
    std::exit(1);
  }

  std::vector<double> cold_runs, warm_runs;
  Graph graph;
  for (int i = 0; i < 3; ++i) {
    double seconds = 0;
    graph = ColdStart(text_path, &seconds);
    cold_runs.push_back(seconds);
  }
  row.vertices = graph.num_vertices();
  row.edges = graph.num_edges();

  ArenaBuildOptions build;
  build.num_nodes = 8;
  build.weighted = true;
  Status built = GraphArena::Build(graph, arena_path, build);
  build.codec = ArenaCodec::kDeltaVarint;
  Status built_varint = GraphArena::Build(graph, varint_path, build);
  if (!built.ok() || !built_varint.ok()) {
    std::fprintf(stderr, "bench: arena build failed for %s\n", alias.c_str());
    std::exit(1);
  }

  for (int i = 0; i < 3; ++i) warm_runs.push_back(WarmStart(arena_path));

  row.cold_seconds = bench::Median(cold_runs);
  row.warm_seconds = bench::Median(warm_runs);
  row.speedup = row.warm_seconds > 0 ? row.cold_seconds / row.warm_seconds : 0;
  row.text_bytes = FileBytes(text_path);
  row.arena_bytes = FileBytes(arena_path);
  row.arena_varint_bytes = FileBytes(varint_path);
  row.identical = GuidedResultsIdentical(graph, arena_path, alias);

  std::remove(text_path.c_str());
  std::remove(arena_path.c_str());
  std::remove(varint_path.c_str());
  return row;
}

void WriteJson(const std::string& path, const std::vector<Row>& rows,
               double min_speedup) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  bench::JsonWriter json(f);
  json.BeginObject();
  json.Field("bench", "warm_restart");
  json.Field("scale_divisor", static_cast<uint64_t>(bench::ScaleDivisor()));
  json.Field("min_speedup", min_speedup);
  json.BeginArray("graphs");
  for (const Row& r : rows) {
    json.BeginObject();
    json.Field("alias", r.alias);
    json.Field("vertices", r.vertices);
    json.Field("edges", r.edges);
    json.Field("cold_parse_seconds", r.cold_seconds);
    json.Field("warm_map_seconds", r.warm_seconds);
    json.Field("speedup", r.speedup);
    json.Field("text_bytes", r.text_bytes);
    json.Field("arena_bytes", r.arena_bytes);
    json.Field("arena_varint_bytes", r.arena_varint_bytes);
    json.Field("guided_results_identical", r.identical);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  std::fputc('\n', f);
  std::fclose(f);
}

}  // namespace
}  // namespace slfe

int main(int argc, char** argv) {
  using slfe::Row;
  std::string json_path = "BENCH_warm_restart.json";
  double min_speedup = 10.0;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--min-speedup=", 14) == 0) {
      min_speedup = std::atof(argv[i] + 14);
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr,
                   "usage: bench_warm_restart [--json=PATH] "
                   "[--min-speedup=N] [--smoke]\n");
      return 2;
    }
  }

  std::string work_dir =
      "/tmp/slfe_bench_warm." + std::to_string(::getpid());
  ::mkdir(work_dir.c_str(), 0755);

  // --smoke keeps CI fast: one graph, wiring + identity only (speedup on
  // a tiny graph is noise-bound, so the gate stays but loosened to >1).
  std::vector<std::string> aliases =
      smoke ? std::vector<std::string>{"PK"}
            : std::vector<std::string>{"PK", "OK", "LJ"};
  if (smoke && min_speedup == 10.0) min_speedup = 1.0;

  slfe::bench::PrintHeader(
      "Warm restart: arena map vs text parse + partition (8N)");
  std::printf("%-8s %-12s %-12s %-12s %-10s %-12s %-12s %-10s\n", "graph",
              "cold(s)", "warm(s)", "speedup", "text(MB)", "arena(MB)",
              "varint(MB)", "identical");
  slfe::bench::PrintRule();

  std::vector<Row> rows;
  bool ok = true;
  for (const std::string& alias : aliases) {
    Row row = slfe::MeasureGraph(alias, work_dir);
    std::printf("%-8s %-12.5f %-12.5f %-12.1f %-10.2f %-12.2f %-12.2f %-10s\n",
                row.alias.c_str(), row.cold_seconds, row.warm_seconds,
                row.speedup, row.text_bytes / 1048576.0,
                row.arena_bytes / 1048576.0,
                row.arena_varint_bytes / 1048576.0,
                row.identical ? "yes" : "NO");
    if (row.speedup < min_speedup) {
      std::fprintf(stderr, "bench: %s speedup %.1fx below the %.1fx gate\n",
                   row.alias.c_str(), row.speedup, min_speedup);
      ok = false;
    }
    if (!row.identical) {
      std::fprintf(stderr, "bench: %s mapped results diverge from parsed\n",
                   row.alias.c_str());
      ok = false;
    }
    rows.push_back(std::move(row));
  }
  ::rmdir(work_dir.c_str());

  slfe::WriteJson(json_path, rows, min_speedup);
  std::printf("\nwrote %s\n", json_path.c_str());
  return ok ? 0 : 1;
}
