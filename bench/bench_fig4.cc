// Reproduces paper Fig. 4: execution-time breakdown between pull and push
// modes for SSSP and CC, on one node and on eight nodes, over the PK, LJ,
// and FS graphs. The paper measures >92% pull share on one node and >73%
// on eight nodes — the observation that justifies applying redundancy
// reduction in pull mode only.

#include <cstdio>

#include "bench/bench_util.h"
#include "slfe/apps/cc.h"
#include "slfe/apps/sssp.h"

namespace slfe {
namespace {

void PrintRow(const char* app, const char* alias, int nodes,
              const EngineStats& stats) {
  double total = stats.pull_seconds + stats.push_seconds;
  double pull_pct = total > 0 ? 100.0 * stats.pull_seconds / total : 0;
  std::printf("%-6s %-6s %-4dN  pull=%-8.4fs push=%-8.4fs pull-share=%5.1f%%\n",
              app, alias, nodes, stats.pull_seconds, stats.push_seconds,
              pull_pct);
}

void Run() {
  bench::PrintHeader(
      "Fig. 4: SSSP and CC runtime breakdown, pull vs push (1N and 8N)");
  for (int nodes : {1, 8}) {
    for (const char* alias : {"PK", "LJ", "FS"}) {
      AppConfig cfg = bench::ClusterConfig(nodes, /*enable_rr=*/false);
      SsspResult sssp = RunSssp(bench::LoadGraph(alias), cfg);
      PrintRow("SSSP", alias, nodes, sssp.info.stats);
    }
  }
  bench::PrintRule();
  for (int nodes : {1, 8}) {
    for (const char* alias : {"PK", "LJ", "FS"}) {
      AppConfig cfg = bench::ClusterConfig(nodes, /*enable_rr=*/false);
      CcResult cc = RunCc(bench::LoadGraph(alias, /*symmetric=*/true), cfg);
      PrintRow("CC", alias, nodes, cc.info.stats);
    }
  }
  std::printf("(paper: pull share >92%% on 1 node, >73%% on 8 nodes)\n");
}

}  // namespace
}  // namespace slfe

int main() {
  slfe::Run();
  return 0;
}
