#pragma once

// Frequency sketches for the request-stream telemetry plane.
//
// Two estimators over 64-bit keys, both sized from an (epsilon, delta)
// accuracy contract — width = ceil(e / epsilon) columns, depth =
// ceil(ln(1 / delta)) rows — or from explicit dimensions when the
// caller wants exact control:
//
//  - CountMinSketch: biased-high point estimates with the classic
//    guarantee  estimate <= exact + epsilon * N  at confidence
//    1 - delta (N = total stream weight). Updates are *conservative*:
//    only the cells that currently hold the row minimum are raised, so
//    collisions inflate estimates far less than the textbook update.
//  - CountSketch: signed hashing with a median-of-rows estimator;
//    unbiased, so summing estimates across disjoint keys does not
//    systematically overshoot the way count-min sums do.
//
// Concurrency: cells are std::atomic and estimates are wait-free reads.
// Conservative update needs a read-modify-write over a whole row set,
// so same-key updates serialize on one of kStripes key-hashed mutexes;
// cross-key updates that collide in a cell only ever *raise* it
// (CAS-max), preserving the never-underestimate invariant of count-min
// under full concurrency. Halve() decays every cell by one bit for the
// exponential windowing wrapper (see decay.h).

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace slfe {

// splitmix64 finalizer: cheap, well-distributed 64->64 mixing used to
// derive per-row hash functions from a shared seed.
inline uint64_t SketchMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

struct SketchOptions {
  // Explicit dimensions win when non-zero; otherwise the sketch is
  // sized from the (epsilon, delta) contract below. Depth is clamped
  // to 16 rows (ln(1/delta) = 16 is delta ~ 1e-7 — already absurd).
  size_t width = 0;
  size_t depth = 0;
  // Additive error bound as a fraction of the stream total (count-min:
  // estimate - exact <= epsilon * N with probability >= 1 - delta).
  double epsilon = 1.0 / 1024.0;
  double delta = 0.01;

  size_t ResolveWidth() const;
  size_t ResolveDepth() const;
};

class CountMinSketch {
 public:
  explicit CountMinSketch(const SketchOptions& options = SketchOptions());

  CountMinSketch(const CountMinSketch&) = delete;
  CountMinSketch& operator=(const CountMinSketch&) = delete;

  // Conservative update: raises only the cells below the new estimate.
  // Returns the post-update estimate for `key`.
  uint64_t Update(uint64_t key, uint64_t count = 1);

  // Wait-free; never underestimates the true count.
  uint64_t Estimate(uint64_t key) const;

  // Exponential decay step: halves every cell (and the stream total).
  void Halve();

  // Total stream weight N ingested since construction (halved by
  // Halve() so the epsilon*N bound tracks the decayed window).
  uint64_t TotalWeight() const { return total_.load(std::memory_order_relaxed); }

  size_t width() const { return width_; }
  size_t depth() const { return depth_; }
  // Bytes of counter storage — the O(1)-memory claim made concrete.
  size_t MemoryBytes() const { return cells_.size() * sizeof(cells_[0]); }

 private:
  size_t CellIndex(size_t row, uint64_t key) const {
    return row * width_ + SketchMix64(key ^ seeds_[row]) % width_;
  }

  static constexpr size_t kStripes = 64;

  size_t width_;
  size_t depth_;
  std::vector<uint64_t> seeds_;
  std::vector<std::atomic<uint64_t>> cells_;
  std::atomic<uint64_t> total_{0};
  std::array<std::mutex, kStripes> stripes_;
};

class CountSketch {
 public:
  explicit CountSketch(const SketchOptions& options = SketchOptions());

  CountSketch(const CountSketch&) = delete;
  CountSketch& operator=(const CountSketch&) = delete;

  void Update(uint64_t key, int64_t count = 1);

  // Median of the signed row estimates; unbiased for the true count.
  int64_t Estimate(uint64_t key) const;

  // Exponential decay step (arithmetic halving toward zero).
  void Halve();

  size_t width() const { return width_; }
  size_t depth() const { return depth_; }

 private:
  size_t CellIndex(size_t row, uint64_t key) const {
    return row * width_ + SketchMix64(key ^ seeds_[row]) % width_;
  }
  // Sign hash independent of the cell hash (distinct seed stream).
  int64_t Sign(size_t row, uint64_t key) const {
    return (SketchMix64(key ^ sign_seeds_[row]) & 1) ? 1 : -1;
  }

  size_t width_;
  size_t depth_;
  std::vector<uint64_t> seeds_;
  std::vector<uint64_t> sign_seeds_;
  std::vector<std::atomic<int64_t>> cells_;
};

}  // namespace slfe
