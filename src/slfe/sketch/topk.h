#pragma once

// Hashheap-backed top-k heavy-hitter tracker.
//
// A bounded min-heap ordered by estimate, paired with a hash index from
// key to heap slot so membership checks and in-place estimate updates
// are O(1)/O(log k) instead of a heap rebuild. Fed with (key, estimate)
// pairs from the count-min sketch after each update; keys that never
// beat the current k-th estimate are rejected at the root in O(1).
//
// Guarded by one mutex: k is small (tens), operations are O(log k), and
// the caller (HotnessTracker) already paid a striped lock per update —
// this is not the hot path's contention point.

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace slfe {

struct HeavyHitter {
  uint64_t key = 0;
  uint64_t estimate = 0;
};

class TopK {
 public:
  explicit TopK(size_t k);

  TopK(const TopK&) = delete;
  TopK& operator=(const TopK&) = delete;

  // Record that `key` now has `estimate` weight. Tracked keys are
  // updated in place (up or down — decay lowers estimates); untracked
  // keys enter when the heap has room or they beat the current minimum.
  void Offer(uint64_t key, uint64_t estimate);

  // Heavy hitters sorted by descending estimate (key breaks ties so
  // renders are deterministic). `limit == 0` means all tracked.
  std::vector<HeavyHitter> Items(size_t limit = 0) const;

  // Exponential decay step: halves every tracked estimate. Halving is
  // monotone so the heap order is preserved in place.
  void Halve();

  size_t k() const { return k_; }
  size_t Size() const;

 private:
  // Heap maintenance; `slot` re-settles and the index follows the moves.
  void SiftUpLocked(size_t slot);
  void SiftDownLocked(size_t slot);
  void SwapLocked(size_t a, size_t b);

  const size_t k_;
  mutable std::mutex mu_;
  std::vector<HeavyHitter> heap_;                // min-heap by estimate
  std::unordered_map<uint64_t, size_t> index_;   // key -> heap slot
};

}  // namespace slfe
