#include "slfe/sketch/hotness.h"

#include "slfe/common/fnv.h"

namespace slfe {
namespace {

// Marginal salts keep the four key families disjoint in the shared
// sketch even when a tenant string happens to hash like an app string.
constexpr uint64_t kTenantSalt = 0x54656e616e744b79ull;  // "TenantKy"
constexpr uint64_t kGraphSalt = 0x47726170684b6579ull;   // "GraphKey"
constexpr uint64_t kAppSalt = 0x4170704b65794170ull;     // "AppKeyAp"
constexpr uint64_t kTripleSalt = 0x547269706c654b79ull;  // "TripleKy"

uint64_t StringDigest(const std::string& s) {
  return Fnv1aBytes(s.data(), s.size(), kFnvBasis);
}

}  // namespace

HotnessTracker::HotnessTracker(const HotnessOptions& options)
    : cm_(options.sketch),
      cs_(options.sketch),
      topk_(options.topk),
      decay_interval_(options.decay_interval) {}

uint64_t HotnessTracker::TenantKey(const std::string& tenant) {
  return SketchMix64(StringDigest(tenant) ^ kTenantSalt);
}

uint64_t HotnessTracker::GraphKey(uint64_t graph_fingerprint) {
  return SketchMix64(graph_fingerprint ^ kGraphSalt);
}

uint64_t HotnessTracker::AppKey(const std::string& app) {
  return SketchMix64(StringDigest(app) ^ kAppSalt);
}

uint64_t HotnessTracker::TripleKey(const std::string& tenant,
                                   uint64_t graph_fingerprint,
                                   const std::string& app) {
  uint64_t h = Fnv1aMix(kTripleSalt, StringDigest(tenant));
  h = Fnv1aMix(h, graph_fingerprint);
  h = Fnv1aMix(h, StringDigest(app));
  return SketchMix64(h);
}

HotnessTracker::RecordResult HotnessTracker::Record(
    const std::string& tenant, uint64_t graph_fingerprint,
    const std::string& app) {
  RecordResult result;
  const uint64_t tenant_key = TenantKey(tenant);
  result.first_tenant = cm_.Estimate(tenant_key) == 0;
  cm_.Update(tenant_key);
  cm_.Update(AppKey(app));
  cm_.Update(TripleKey(tenant, graph_fingerprint, app));
  if (graph_fingerprint != 0) {
    const uint64_t graph_key = GraphKey(graph_fingerprint);
    result.graph_estimate = cm_.Update(graph_key);
    cs_.Update(graph_key);
    topk_.Offer(graph_fingerprint, result.graph_estimate);
  }
  const uint64_t seen =
      observations_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (decay_interval_ != 0 && seen % decay_interval_ == 0) {
    // Halve all three structures in one step so their estimates stay
    // mutually comparable; the mutex keeps overlapping crossings from
    // double-halving.
    std::lock_guard<std::mutex> lock(decay_mu_);
    cm_.Halve();
    cs_.Halve();
    topk_.Halve();
    decays_.fetch_add(1, std::memory_order_relaxed);
  }
  return result;
}

uint64_t HotnessTracker::EstimateGraph(uint64_t graph_fingerprint) const {
  return cm_.Estimate(GraphKey(graph_fingerprint));
}

uint64_t HotnessTracker::EstimateTenant(const std::string& tenant) const {
  return cm_.Estimate(TenantKey(tenant));
}

uint64_t HotnessTracker::EstimateApp(const std::string& app) const {
  return cm_.Estimate(AppKey(app));
}

int64_t HotnessTracker::UnbiasedGraph(uint64_t graph_fingerprint) const {
  return cs_.Estimate(GraphKey(graph_fingerprint));
}

std::vector<HotGraph> HotnessTracker::TopGraphs(size_t limit) const {
  std::vector<HotGraph> out;
  for (const HeavyHitter& hh : topk_.Items(limit)) {
    out.push_back(HotGraph{hh.key, hh.estimate});
  }
  return out;
}

}  // namespace slfe
