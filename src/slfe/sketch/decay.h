#pragma once

// Exponentially-decayed windowing wrapper over a count-min sketch.
//
// A raw sketch accumulates forever, so a graph that was hot last week
// stays "hot" long after traffic moved on. DecayingCountMin halves all
// counters every `decay_interval` updates, which makes each counter an
// exponentially-weighted window over the stream: weight of an update
// that happened w windows ago is 2^-w. The epsilon*N error contract
// survives because the sketch's internal total is halved in lockstep.
//
// An optional on_decay callback fires (outside the sketch's cell loops,
// under this wrapper's decay mutex) so companion structures — a
// count-sketch, a top-k tracker — can halve in sync and keep their
// estimates comparable with the decayed count-min.

#include <cstdint>
#include <functional>
#include <mutex>

#include "slfe/sketch/sketch.h"

namespace slfe {

class DecayingCountMin {
 public:
  // decay_interval == 0 disables decay (pure pass-through wrapper).
  explicit DecayingCountMin(const SketchOptions& options = SketchOptions(),
                            uint64_t decay_interval = 0,
                            std::function<void()> on_decay = nullptr)
      : sketch_(options),
        decay_interval_(decay_interval),
        on_decay_(std::move(on_decay)) {}

  uint64_t Update(uint64_t key, uint64_t count = 1) {
    uint64_t est = sketch_.Update(key, count);
    if (decay_interval_ != 0) {
      uint64_t seen = updates_.fetch_add(1, std::memory_order_relaxed) + 1;
      if (seen % decay_interval_ == 0) {
        // One decay per crossing; the mutex keeps a slow Halve() from
        // overlapping the next interval's trigger.
        std::lock_guard<std::mutex> lock(decay_mu_);
        sketch_.Halve();
        decays_.fetch_add(1, std::memory_order_relaxed);
        if (on_decay_) on_decay_();
      }
    }
    return est;
  }

  uint64_t Estimate(uint64_t key) const { return sketch_.Estimate(key); }
  uint64_t TotalWeight() const { return sketch_.TotalWeight(); }
  uint64_t Decays() const { return decays_.load(std::memory_order_relaxed); }
  const CountMinSketch& sketch() const { return sketch_; }

 private:
  CountMinSketch sketch_;
  const uint64_t decay_interval_;
  std::function<void()> on_decay_;
  std::atomic<uint64_t> updates_{0};
  std::atomic<uint64_t> decays_{0};
  std::mutex decay_mu_;
};

}  // namespace slfe
