#pragma once

// HotnessTracker: the facade the service layer streams every request
// through, keyed by (tenant, graph-fingerprint, app).
//
// One conservative-update count-min sketch holds four salted marginals
// per recorded request — the (tenant, graph, app) triple plus each
// single-dimension marginal — so EstimateTenant / EstimateGraph /
// EstimateTriple all read the same bounded structure. A companion
// count-sketch tracks the graph marginal unbiased (for telemetry that
// sums across graphs), and a hashheap top-k keeps the current heavy-
// hitter graphs ready for the `hot` command and the eviction oracle.
//
// Decay: every `decay_interval` recorded requests (0 = off, the
// default — existing deterministic tests stay deterministic), the
// count-min, count-sketch, and top-k all halve in the same step, so
// their estimates remain mutually comparable. See decay.h for the
// standalone windowing wrapper; the tracker inlines the same policy
// because three structures must decay atomically with respect to each
// other.

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "slfe/sketch/sketch.h"
#include "slfe/sketch/topk.h"

namespace slfe {

struct HotnessOptions {
  SketchOptions sketch;
  // Heavy-hitter slots for TopGraphs / the `hot` command.
  size_t topk = 32;
  // Recorded requests between exponential-decay halvings; 0 disables.
  uint64_t decay_interval = 0;
};

struct HotGraph {
  uint64_t fingerprint = 0;
  uint64_t estimate = 0;
};

class HotnessTracker {
 public:
  explicit HotnessTracker(const HotnessOptions& options = HotnessOptions());

  HotnessTracker(const HotnessTracker&) = delete;
  HotnessTracker& operator=(const HotnessTracker&) = delete;

  struct RecordResult {
    // Post-update estimate of the graph marginal.
    uint64_t graph_estimate = 0;
    // True when the tenant marginal was 0 before this record — count-min
    // never underestimates, so 0 proves the tenant is genuinely unseen.
    // (Approximate in the other direction: collisions or decay can make
    // a first-seen tenant look already-seen.)
    bool first_tenant = false;
  };

  // Stream one request through all structures. fingerprint == 0 means
  // "graph unresolved" (e.g. a rejected submit): tenant/app marginals
  // still count, but the graph marginal and top-k are skipped.
  RecordResult Record(const std::string& tenant, uint64_t graph_fingerprint,
                      const std::string& app);

  // Point estimates (count-min: never underestimate the decayed truth).
  uint64_t EstimateGraph(uint64_t graph_fingerprint) const;
  uint64_t EstimateTenant(const std::string& tenant) const;
  uint64_t EstimateApp(const std::string& app) const;

  // Unbiased graph estimate from the companion count-sketch.
  int64_t UnbiasedGraph(uint64_t graph_fingerprint) const;

  // Current heavy-hitter graphs, hottest first. limit == 0 -> all slots.
  std::vector<HotGraph> TopGraphs(size_t limit = 0) const;

  uint64_t Observations() const {
    return observations_.load(std::memory_order_relaxed);
  }
  uint64_t Decays() const { return decays_.load(std::memory_order_relaxed); }
  size_t SketchWidth() const { return cm_.width(); }
  size_t SketchDepth() const { return cm_.depth(); }
  size_t TopKCapacity() const { return topk_.k(); }

  // Sketch keys for the marginals (exposed so tests can cross-check the
  // tracker against raw sketches fed the same key stream).
  static uint64_t TenantKey(const std::string& tenant);
  static uint64_t GraphKey(uint64_t graph_fingerprint);
  static uint64_t AppKey(const std::string& app);
  static uint64_t TripleKey(const std::string& tenant,
                            uint64_t graph_fingerprint,
                            const std::string& app);

 private:
  CountMinSketch cm_;
  CountSketch cs_;
  TopK topk_;
  const uint64_t decay_interval_;
  std::atomic<uint64_t> observations_{0};
  std::atomic<uint64_t> decays_{0};
  std::mutex decay_mu_;
};

}  // namespace slfe
