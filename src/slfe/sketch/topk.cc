#include "slfe/sketch/topk.h"

#include <algorithm>

namespace slfe {
namespace {

// Min-heap order with a deterministic key tie-break.
bool HeapLess(const HeavyHitter& a, const HeavyHitter& b) {
  if (a.estimate != b.estimate) return a.estimate < b.estimate;
  return a.key < b.key;
}

}  // namespace

TopK::TopK(size_t k) : k_(k == 0 ? 1 : k) {
  heap_.reserve(k_);
  index_.reserve(k_ * 2);
}

void TopK::Offer(uint64_t key, uint64_t estimate) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    size_t slot = it->second;
    uint64_t old = heap_[slot].estimate;
    heap_[slot].estimate = estimate;
    if (estimate > old) {
      SiftDownLocked(slot);
    } else if (estimate < old) {
      SiftUpLocked(slot);
    }
    return;
  }
  if (heap_.size() < k_) {
    heap_.push_back(HeavyHitter{key, estimate});
    index_[key] = heap_.size() - 1;
    SiftUpLocked(heap_.size() - 1);
    return;
  }
  if (!HeapLess(heap_[0], HeavyHitter{key, estimate})) return;
  index_.erase(heap_[0].key);
  heap_[0] = HeavyHitter{key, estimate};
  index_[key] = 0;
  SiftDownLocked(0);
}

std::vector<HeavyHitter> TopK::Items(size_t limit) const {
  std::vector<HeavyHitter> items;
  {
    std::lock_guard<std::mutex> lock(mu_);
    items = heap_;
  }
  std::sort(items.begin(), items.end(),
            [](const HeavyHitter& a, const HeavyHitter& b) {
              if (a.estimate != b.estimate) return a.estimate > b.estimate;
              return a.key < b.key;
            });
  if (limit != 0 && items.size() > limit) items.resize(limit);
  return items;
}

void TopK::Halve() {
  std::lock_guard<std::mutex> lock(mu_);
  for (HeavyHitter& hh : heap_) hh.estimate /= 2;
}

size_t TopK::Size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return heap_.size();
}

void TopK::SwapLocked(size_t a, size_t b) {
  std::swap(heap_[a], heap_[b]);
  index_[heap_[a].key] = a;
  index_[heap_[b].key] = b;
}

void TopK::SiftUpLocked(size_t slot) {
  while (slot > 0) {
    size_t parent = (slot - 1) / 2;
    if (!HeapLess(heap_[slot], heap_[parent])) break;
    SwapLocked(slot, parent);
    slot = parent;
  }
}

void TopK::SiftDownLocked(size_t slot) {
  const size_t n = heap_.size();
  for (;;) {
    size_t smallest = slot;
    size_t left = 2 * slot + 1;
    size_t right = 2 * slot + 2;
    if (left < n && HeapLess(heap_[left], heap_[smallest])) smallest = left;
    if (right < n && HeapLess(heap_[right], heap_[smallest])) smallest = right;
    if (smallest == slot) return;
    SwapLocked(slot, smallest);
    slot = smallest;
  }
}

}  // namespace slfe
