#include "slfe/sketch/sketch.h"

#include <algorithm>
#include <cmath>

namespace slfe {
namespace {

// Deterministic seed stream so differential tests are reproducible;
// rows still hash independently because splitmix64 decorrelates
// consecutive seeds.
uint64_t RowSeed(uint64_t salt, size_t row) {
  return SketchMix64(salt + 0x5851f42d4c957f2dull * (row + 1));
}

}  // namespace

size_t SketchOptions::ResolveWidth() const {
  if (width > 0) return width;
  const double e = 2.718281828459045;
  double w = std::ceil(e / (epsilon > 0 ? epsilon : 1.0 / 1024.0));
  return static_cast<size_t>(std::max(8.0, w));
}

size_t SketchOptions::ResolveDepth() const {
  if (depth > 0) return depth;
  double d = std::ceil(std::log(1.0 / (delta > 0 ? delta : 0.01)));
  return static_cast<size_t>(std::min(16.0, std::max(2.0, d)));
}

CountMinSketch::CountMinSketch(const SketchOptions& options)
    : width_(options.ResolveWidth()),
      depth_(std::min<size_t>(16, options.ResolveDepth())),
      seeds_(depth_),
      cells_(width_ * depth_) {
  for (size_t row = 0; row < depth_; ++row) {
    seeds_[row] = RowSeed(0x436f756e744d696eull, row);  // "CountMin"
  }
}

uint64_t CountMinSketch::Update(uint64_t key, uint64_t count) {
  if (count == 0) return Estimate(key);
  // Serialize same-key updates so the conservative read-modify-write is
  // atomic per key; other keys proceed on other stripes and can only
  // raise our cells (which the CAS-max below tolerates).
  std::lock_guard<std::mutex> lock(stripes_[SketchMix64(key) % kStripes]);
  uint64_t est = UINT64_MAX;
  size_t idx[/*depth upper bound*/ 16];
  for (size_t row = 0; row < depth_; ++row) {
    idx[row] = CellIndex(row, key);
    est = std::min(est, cells_[idx[row]].load(std::memory_order_relaxed));
  }
  const uint64_t target = est + count;
  for (size_t row = 0; row < depth_; ++row) {
    std::atomic<uint64_t>& cell = cells_[idx[row]];
    uint64_t cur = cell.load(std::memory_order_relaxed);
    // CAS-max: only raise cells below the new estimate — the
    // conservative update — and never lower a concurrently-raised one.
    while (cur < target &&
           !cell.compare_exchange_weak(cur, target,
                                       std::memory_order_relaxed)) {
    }
  }
  total_.fetch_add(count, std::memory_order_relaxed);
  return target;
}

uint64_t CountMinSketch::Estimate(uint64_t key) const {
  uint64_t est = UINT64_MAX;
  for (size_t row = 0; row < depth_; ++row) {
    est = std::min(est,
                   cells_[CellIndex(row, key)].load(std::memory_order_relaxed));
  }
  return est;
}

void CountMinSketch::Halve() {
  for (auto& cell : cells_) {
    uint64_t cur = cell.load(std::memory_order_relaxed);
    while (!cell.compare_exchange_weak(cur, cur / 2,
                                       std::memory_order_relaxed)) {
    }
  }
  uint64_t cur = total_.load(std::memory_order_relaxed);
  while (!total_.compare_exchange_weak(cur, cur / 2,
                                       std::memory_order_relaxed)) {
  }
}

CountSketch::CountSketch(const SketchOptions& options)
    : width_(options.ResolveWidth()),
      depth_(std::min<size_t>(16, options.ResolveDepth())),
      seeds_(depth_),
      sign_seeds_(depth_),
      cells_(width_ * depth_) {
  for (size_t row = 0; row < depth_; ++row) {
    seeds_[row] = RowSeed(0x436f756e74536b65ull, row);       // "CountSke"
    sign_seeds_[row] = RowSeed(0x5369676e48617368ull, row);  // "SignHash"
  }
}

void CountSketch::Update(uint64_t key, int64_t count) {
  for (size_t row = 0; row < depth_; ++row) {
    cells_[CellIndex(row, key)].fetch_add(Sign(row, key) * count,
                                          std::memory_order_relaxed);
  }
}

int64_t CountSketch::Estimate(uint64_t key) const {
  int64_t vals[16] = {};
  for (size_t row = 0; row < depth_; ++row) {
    vals[row] = Sign(row, key) *
                cells_[CellIndex(row, key)].load(std::memory_order_relaxed);
  }
  std::nth_element(vals, vals + depth_ / 2, vals + depth_);
  int64_t hi = vals[depth_ / 2];
  if (depth_ % 2 == 1) return hi;
  std::nth_element(vals, vals + depth_ / 2 - 1, vals + depth_ / 2);
  return (vals[depth_ / 2 - 1] + hi) / 2;
}

void CountSketch::Halve() {
  for (auto& cell : cells_) {
    int64_t cur = cell.load(std::memory_order_relaxed);
    while (!cell.compare_exchange_weak(cur, cur / 2,
                                       std::memory_order_relaxed)) {
    }
  }
}

}  // namespace slfe
