#ifndef SLFE_SERVICE_JOB_QUEUE_H_
#define SLFE_SERVICE_JOB_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <utility>

namespace slfe::service {

/// A bounded MPMC queue between the JobService's submitters and its worker
/// pool, FAIR across tenants: items are pushed into per-key (per-tenant)
/// lanes and popped round-robin over the lanes that currently hold work,
/// so one tenant's burst can no longer head-of-line-block everyone else —
/// a flooding tenant and a one-job tenant alternate at the consumers, FIFO
/// order preserved within each tenant.
///
/// Admission control happens at the producer: TryPush never blocks — a
/// full queue (the capacity bounds the TOTAL across lanes) is a rejection
/// the caller surfaces to the tenant (the service's backpressure is
/// "reject with a retryable status", not "stall the submitting thread").
/// Consumers block in Pop until an item arrives or the queue is closed AND
/// drained, which is exactly the graceful-shutdown contract: Close() stops
/// admissions while letting the workers finish every job already accepted.
template <typename T>
class JobQueue {
 public:
  explicit JobQueue(size_t capacity) : capacity_(capacity) {}

  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  /// Enqueues `item` into `key`'s lane unless the queue is full or
  /// closed. Never blocks.
  bool TryPush(const std::string& key, T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || size_ >= capacity_) return false;
      auto [it, inserted] = lanes_.try_emplace(key);
      if (it->second.empty()) rotation_.push_back(it->first);
      it->second.push_back(std::move(item));
      ++size_;
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an item is available (true) or the queue is closed and
  /// empty (false — the consumer's signal to exit). Takes the oldest item
  /// of the lane at the head of the rotation, then moves that lane to the
  /// back: each pop serves a different tenant while any other tenant has
  /// work waiting.
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return closed_ || size_ > 0; });
    if (size_ == 0) return false;
    const std::string key = std::move(rotation_.front());
    rotation_.pop_front();
    auto it = lanes_.find(key);
    *out = std::move(it->second.front());
    it->second.pop_front();
    --size_;
    if (it->second.empty()) {
      lanes_.erase(it);  // bound the lane map by ACTIVE tenants
    } else {
      rotation_.push_back(key);
    }
    return true;
  }

  /// Rejects all future pushes; queued items remain poppable (drain).
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  /// Total queued items across all lanes.
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return size_;
  }

  /// Lanes currently holding work (distinct tenants with queued jobs).
  size_t active_lanes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return lanes_.size();
  }

  size_t capacity() const { return capacity_; }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  /// key -> that tenant's FIFO lane. Lanes are erased when drained, so
  /// the map size tracks tenants with work, not tenants ever seen.
  std::map<std::string, std::deque<T>> lanes_;
  /// Round-robin order over non-empty lanes; front = next lane to serve.
  std::deque<std::string> rotation_;
  size_t size_ = 0;
  bool closed_ = false;
};

}  // namespace slfe::service

#endif  // SLFE_SERVICE_JOB_QUEUE_H_
