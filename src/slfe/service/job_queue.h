#ifndef SLFE_SERVICE_JOB_QUEUE_H_
#define SLFE_SERVICE_JOB_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace slfe::service {

/// A bounded MPMC FIFO between the JobService's submitters and its worker
/// pool. Admission control happens at the producer: TryPush never blocks —
/// a full queue is a rejection the caller surfaces to the tenant (the
/// service's backpressure is "reject with a retryable status", not "stall
/// the submitting thread"). Consumers block in Pop until an item arrives
/// or the queue is closed AND drained, which is exactly the graceful-
/// shutdown contract: Close() stops admissions while letting the workers
/// finish every job already accepted.
template <typename T>
class JobQueue {
 public:
  explicit JobQueue(size_t capacity) : capacity_(capacity) {}

  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  /// Enqueues `item` unless the queue is full or closed. Never blocks.
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an item is available (true) or the queue is closed and
  /// empty (false — the consumer's signal to exit).
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Rejects all future pushes; queued items remain poppable (drain).
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace slfe::service

#endif  // SLFE_SERVICE_JOB_QUEUE_H_
