#ifndef SLFE_SERVICE_COMMAND_SESSION_H_
#define SLFE_SERVICE_COMMAND_SESSION_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "slfe/service/job_service.h"
#include "slfe/service/line_protocol.h"

namespace slfe::service {

/// Executes parsed protocol commands against a JobService, writing every
/// protocol reply through a sink instead of a FILE* — the one dispatcher
/// shared by the stdin line driver and each TCP connection session, so
/// command semantics (validation, rejection wording, echo format, graph
/// lazy-registration) cannot drift between transports.
///
/// Two completion models, selected by Options::streaming:
///  - Blocking (stdin): accepted tickets are collected; `wait` (and end of
///    input) calls DrainOutstanding(), which blocks on each ticket and
///    emits results in submission order.
///  - Streaming (TCP): each accepted submission is handed to the
///    SubmitHook with its per-session request number; the transport
///    registers an async completion callback and streams results as they
///    finish. HandleLine never blocks, so submissions pipeline.
class CommandSession {
 public:
  /// Receives one complete, '\n'-terminated protocol line.
  using Sink = std::function<void(std::string line)>;
  /// Streaming mode: called once per accepted submission (query or
  /// mutation) with the completion ticket and the request number echoed in
  /// the `queued req=K` acknowledgement.
  using SubmitHook = std::function<void(const JobTicket& ticket, uint64_t req)>;

  struct Options {
    /// Shrink divisor for dataset aliases registered lazily on first use.
    uint32_t scale_divisor = 4;
    /// Echo a `queued req=K ...` acknowledgement per accepted command.
    bool echo = true;
    /// Results stream via the SubmitHook instead of blocking `wait`.
    bool streaming = false;
    /// `shutdown` stops the daemon instead of being rejected.
    bool allow_shutdown = false;
    /// Non-empty: the authenticated tenant — submissions and mutations
    /// naming any other tenant are rejected (the auth handshake's scope).
    std::string bound_tenant;
  };

  /// What the transport should do after a line: keep going, honor a wait
  /// barrier (stdin blocks; TCP pauses dispatch until its outstanding
  /// count drains), close this input stream, or stop the whole daemon.
  enum class Disposition { kContinue, kWaitBarrier, kQuit, kShutdown };

  CommandSession(JobService& service, Options options, Sink sink,
                 SubmitHook on_submitted = nullptr);

  Disposition HandleLine(const std::string& line);

  /// Blocking mode: waits for every collected ticket, emits each result,
  /// and flags any_error on failed jobs. No-op in streaming mode.
  void DrainOutstanding();

  /// Any rejected line or failed drained job so far — the batch's health
  /// signal (the daemon's exit code).
  bool any_error() const { return any_error_; }
  void note_error() { any_error_ = true; }

  /// Requests accepted on this session (the last `req=` echoed).
  uint64_t accepted() const { return accepted_; }

 private:
  void HandleSubmit(JobRequest request);
  void HandleMutate(const MutationRequest& request);
  /// True when the request's tenant is permitted on this session; emits
  /// the rejection itself otherwise.
  bool CheckTenant(const std::string& tenant);
  void Accepted(JobTicket ticket, const std::string& tenant,
                const std::string& app, const std::string& graph);
  void Reject(const std::string& message);

  JobService& service_;
  Options options_;
  Sink sink_;
  SubmitHook on_submitted_;
  std::vector<JobTicket> outstanding_;  // blocking mode only
  uint64_t accepted_ = 0;
  bool any_error_ = false;
};

}  // namespace slfe::service

#endif  // SLFE_SERVICE_COMMAND_SESSION_H_
