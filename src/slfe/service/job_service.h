#ifndef SLFE_SERVICE_JOB_SERVICE_H_
#define SLFE_SERVICE_JOB_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "slfe/api/session.h"
#include "slfe/common/status.h"
#include "slfe/core/guidance_provider.h"
#include "slfe/core/guidance_store.h"
#include "slfe/graph/graph.h"
#include "slfe/graph/types.h"
#include "slfe/obs/flight_recorder.h"
#include "slfe/obs/metrics.h"
#include "slfe/obs/trace.h"
#include "slfe/service/job_queue.h"
#include "slfe/sketch/hotness.h"

namespace slfe::service {

/// One graph-analytics job as a tenant submits it: which application, on
/// which engine, over which registered graph, for whom. The service — not
/// the request — decides the cluster shape and the guidance plumbing, so
/// every job on one graph shares the provider's cache/singleflight and the
/// paper's §4.4 multi-job amortization happens inside the process.
struct JobRequest {
  std::string tenant = "default";
  /// Any application the AppRegistry declares for `engine` — the service
  /// carries no app list of its own (`slfe_cli --list-apps` prints the
  /// authoritative set).
  std::string app = "sssp";
  /// Any engine name the registry knows: dist|shm|gas|ooc.
  std::string engine = "dist";
  /// Name previously passed to JobService::RegisterGraph.
  std::string graph;
  /// Query root for the single-source apps (sssp/bfs/wp/numpaths).
  VertexId root = 0;
  /// Iteration cap for the arithmetic apps (pr/tr/...).
  uint32_t max_iters = 50;
  /// false = baseline run (no guidance acquisition, no RR).
  bool enable_rr = true;
};

/// One batched graph mutation as a tenant submits it. Mutations ride the
/// same tenant-fair queue as query jobs — a tenant's mutation burst
/// cannot head-of-line-block another tenant — and execute on the worker
/// pool via Session::MutateGraph: jobs already in flight keep running on
/// the version they were submitted against; jobs submitted after the
/// mutation completes resolve to the new version.
struct MutationRequest {
  std::string tenant = "default";
  /// Name previously passed to JobService::RegisterGraph.
  std::string graph;
  GraphDelta delta;
};

/// What a completed (or failed) job reports back to its submitter.
struct JobResult {
  Status status;  ///< OK, or why the job could not run
  uint64_t job_id = 0;
  std::string tenant;
  std::string app;
  std::string engine;
  std::string graph;
  uint64_t supersteps = 0;
  uint64_t computations = 0;
  uint64_t skipped = 0;  ///< evaluations bypassed by redundancy reduction
  uint64_t updates = 0;
  double runtime_seconds = 0;
  /// Guidance acquisition cost actually paid by THIS job (near-zero on a
  /// cache hit — the amortization signal).
  double guidance_seconds = 0;
  bool guidance_acquired = false;
  bool guidance_cache_hit = false;
  bool guidance_coalesced = false;
  /// Guidance was produced by patching the previous graph version's
  /// guidance (incremental repair) instead of a full sweep.
  bool guidance_repaired = false;
  /// App-specific scalar (AppOutcome::summary): reached vertices
  /// (sssp/wp), max level (bfs), distinct components (cc),
  /// early-converged vertices (pr/tr), ...; for mutation jobs, the graph
  /// version now being served.
  uint64_t summary = 0;
  /// Service-wide completion order (1 = first job finished). Exposes the
  /// fair scheduler's interleaving to callers and tests.
  uint64_t sequence = 0;
  /// The job's span trace (null when tracing is disabled). Completed by
  /// the worker before the handle fires; the TCP front end appends its
  /// result_stream span afterwards.
  std::shared_ptr<obs::JobTrace> trace;
};

/// Completion handle for one submitted job. Wait() blocks until a worker
/// finishes the job; handles stay valid after the service shuts down.
class JobHandle {
 public:
  const JobResult& Wait() const {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return done_; });
    return result_;
  }

  bool done() const {
    std::lock_guard<std::mutex> lock(mu_);
    return done_;
  }

  /// Registers the completion callback (one per handle — the streaming
  /// front end's contract). Invoked exactly once with the final result:
  /// immediately on the calling thread when the job has already finished,
  /// otherwise on the worker thread that completes it — so callbacks must
  /// be cheap and thread-safe (the TCP front end just posts to its event
  /// loop). Wait() stays usable alongside.
  void OnComplete(std::function<void(const JobResult&)> callback) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!done_) {
        callback_ = std::move(callback);
        return;
      }
    }
    callback(result_);  // result_ is immutable once done_
  }

 private:
  friend class JobService;

  void Complete(JobResult result) {
    std::function<void(const JobResult&)> callback;
    {
      std::lock_guard<std::mutex> lock(mu_);
      result_ = std::move(result);
      done_ = true;
      callback = std::move(callback_);
      callback_ = nullptr;
    }
    cv_.notify_all();
    if (callback) callback(result_);
  }

  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  bool done_ = false;
  JobResult result_;
  std::function<void(const JobResult&)> callback_;
};

using JobTicket = std::shared_ptr<JobHandle>;

/// Per-tenant accounting. `guidance_hits` counts jobs served from the
/// provider's cache OR coalesced onto another job's in-flight sweep (both
/// are amortized acquisitions that paid no own O(|E|) sweep);
/// `guidance_misses` counts jobs that paid a generation. `guidance_bytes`
/// is the guidance payload volume the tenant's jobs acquired (5 bytes per
/// vertex per acquisition — the same size the store budgets meter).
struct TenantStats {
  uint64_t jobs_submitted = 0;
  uint64_t jobs_completed = 0;
  uint64_t jobs_failed = 0;
  uint64_t jobs_rejected = 0;
  uint64_t guidance_hits = 0;
  uint64_t guidance_misses = 0;
  /// Of the misses, how many were served by incremental repair (patched
  /// predecessor-version guidance) instead of a full sweep.
  uint64_t guidance_repaired = 0;
  uint64_t guidance_bytes = 0;
  double guidance_seconds = 0;
  /// Effective (non-no-op) graph mutations this tenant completed. Also
  /// counted in jobs_completed — a mutation is a job.
  uint64_t mutations = 0;
};

/// Network front-end accounting. The epoll listener (net/net_server.h)
/// reports into the service so one `stats` command shows connection
/// health next to job health — a daemon serving sockets is judged by both.
struct NetFrontEndStats {
  uint64_t accepted = 0;       ///< connections admitted past accept()
  uint64_t closed = 0;         ///< peer-initiated or clean `quit` closes
  uint64_t dropped = 0;        ///< server-initiated for cause (auth failure,
                               ///< buffer flood, connection cap)
  uint64_t auth_failures = 0;  ///< handshakes with a bad tenant/token
  uint64_t results_streamed = 0;  ///< completion lines pushed to peers
};

/// A consistent snapshot of the service's counters plus the shared
/// provider/cache counters (one lock acquisition for the service part, so
/// tenant rows always sum to the totals).
struct JobServiceStats {
  /// Daemon identity header: seconds since the service was constructed,
  /// the serving process, and the build (slfe/common/version.h).
  double uptime_seconds = 0;
  int pid = 0;
  std::string version;
  uint64_t submitted = 0;
  uint64_t rejected = 0;  ///< queue-full / validation rejections
  uint64_t completed = 0;
  uint64_t failed = 0;
  /// Effective graph mutations executed (sum of the tenant rows').
  uint64_t mutations = 0;
  uint64_t maintenance_sweeps = 0;  ///< sweeps run by the timer + SweepNow
  uint64_t sweep_removed = 0;       ///< entries GC'd by those sweeps
  uint64_t sweep_pinned_spared = 0;  ///< victims spared by in-flight pins
  /// Graph provenance (from the session): registered via the parse path
  /// vs. mapped from an arena file. A warm restart over a populated
  /// arena_dir shows mapped == graph count, parsed == 0.
  uint64_t graphs_parsed = 0;
  uint64_t graphs_mapped = 0;
  /// Connection-level accounting (all zero when only stdin drives the
  /// service).
  NetFrontEndStats net;
  std::map<std::string, TenantStats> tenants;
  GuidanceProviderStats provider;
  GuidanceCacheStats cache;
  /// Sketch plane: requests streamed through the HotnessTracker and
  /// exponential-decay halvings applied to it so far.
  uint64_t sketch_observations = 0;
  uint64_t sketch_decays = 0;
  /// Exact per-tenant rows kept (== tenants.size()) vs. distinct tenants
  /// spilled past the max_tracked_tenants cap into sketch-only
  /// accounting. The spill count leans on count-min's never-underestimate
  /// property for first-seen detection, so it is exact until decay or a
  /// collision makes a new tenant look already-seen.
  uint64_t tenants_tracked = 0;
  uint64_t tenants_sketched = 0;
  /// Aggregate accounting for the spilled tail — tracked rows plus this
  /// row still sum to the service totals, the per-tenant split within the
  /// tail lives only in the sketch (EstimateTenant).
  TenantStats sketched_tail;
};

struct JobServiceOptions {
  /// Worker threads executing jobs (>= 1).
  size_t workers = 2;
  /// Bounded queue depth (total across all tenant lanes); submissions
  /// beyond it are rejected, not queued.
  size_t queue_capacity = 64;
  /// Simulated cluster shape each job runs on (dist engine), the GAS
  /// engine's node count, and (nodes x threads) the shm thread count.
  int job_nodes = 2;
  int job_threads = 1;
  /// The shared guidance provider's configuration — store_dir + store_gc
  /// here give the service its persistence and GC policy.
  GuidanceProviderOptions provider;
  /// needs_symmetric apps (cc/mst) on a graph not registered as
  /// symmetric: true = the session lazily derives (and caches) the
  /// undirected closure; false = Submit rejects such jobs up front.
  bool auto_symmetrize = true;
  /// Per-tenant store budgets, merged into provider.store_gc (convenience
  /// so callers configure the service in one place).
  std::map<std::string, GuidanceTenantBudget> tenant_budgets;
  /// > 0 starts the maintenance timer thread: every interval it drives
  /// GuidanceStore::Sweep() (TTL + tenant + global budgets, pin-aware).
  /// 0 = no timer; SweepNow() remains available.
  double maintenance_interval_seconds = 0;
  /// Run one last Sweep() during Shutdown() so a stopped service leaves
  /// its store directory within budget.
  bool final_sweep_on_shutdown = true;
  /// Directory of `*.sga` graph arenas (passed through to the session).
  /// Empty = warm-restart registration disabled.
  std::string arena_dir;
  /// Allocate a JobTrace per submitted job (queue_wait / guidance_acquire
  /// / engine_execute / result_stream spans) and feed the flight recorder.
  /// Disabled, jobs carry a null trace pointer end to end — the only cost
  /// is that null check.
  bool tracing = true;
  /// Jobs slower than this (submit to complete) are captured in the slow
  /// ring and emit one rate-limited WARN line. 0 disables both.
  double slow_job_ms = 0;
  /// Completed traces retained by the flight recorder's recent ring (the
  /// slow ring keeps half as many, minimum 8).
  size_t trace_ring_capacity = 64;
  /// Non-empty = the maintenance timer also writes the Prometheus text
  /// exposition here every interval (atomic temp + rename), so external
  /// collectors can scrape a file instead of holding a connection.
  std::string metrics_dump_path;
  /// Sketch plane sizing (src/slfe/sketch/): every submission — query,
  /// mutation, or rejected request — is streamed through a HotnessTracker
  /// keyed by (tenant, graph fingerprint, app). The tracker also feeds
  /// the store GC's coldest-first eviction order.
  HotnessOptions hotness;
  /// > 0 enables hotness-gated store admission: generated guidance is
  /// written to the .rrg store only once its graph's estimated request
  /// count reaches this threshold. Colder graphs keep their guidance in
  /// memory (and are promoted to disk by the first hit after the graph
  /// turns hot). 0 = admit everything, the historic behavior.
  uint64_t hot_admit_threshold = 0;
  /// Exact per-tenant stat rows kept in Stats(). Tenants beyond the cap
  /// are accounted in one aggregate row (sketched_tail) plus the sketch,
  /// bounding the map at production tenant cardinality. 0 = unlimited.
  size_t max_tracked_tenants = 256;
};

/// The long-lived multi-tenant daemon core: accepts job requests into a
/// tenant-fair bounded queue (per-tenant lanes, round-robin pop — one
/// tenant's burst cannot head-of-line-block another tenant's jobs),
/// executes them on a worker pool, and routes EVERY job through one
/// api::Session — Session::Run is the single execution path, so the set
/// of submittable (app, engine) pairs is exactly what the AppRegistry
/// declares (including gas and ooc apps), and requirement-violating jobs
/// (unweighted graph for sssp/wp/mst, asymmetric graph for cc/mst when
/// auto-symmetrize is off) bounce at Submit with a registry-derived
/// message instead of failing mid-run. All guidance flows through the
/// session's ONE shared GuidanceProvider — concurrent jobs on the same
/// graph coalesce into a single generation (singleflight), so provider
/// generations == distinct graphs no matter how many tenants pile on. A
/// maintenance timer thread sweeps the guidance store on a configurable
/// cadence, enforcing global AND per-tenant byte/entry budgets; graphs
/// with in-flight jobs are pinned, so a sweep can never evict guidance a
/// running job is using.
///
/// Lifecycle: construct -> RegisterGraph() -> Submit()/Wait() ->
/// Shutdown() (stop admissions, drain the queue, final sweep, join).
/// Thread-safe throughout; Submit never blocks (a full queue rejects).
class JobService {
 public:
  explicit JobService(JobServiceOptions options = {});
  /// Implies Shutdown() (graceful: drains accepted jobs first).
  ~JobService();

  JobService(const JobService&) = delete;
  JobService& operator=(const JobService&) = delete;

  /// Makes `graph` submittable under `name`. Graphs are immutable and
  /// shared by reference across all jobs; a duplicate name is rejected
  /// (re-registering would silently change running jobs' data). The
  /// traits overload lets callers declare an already-symmetric (or
  /// known-weighted) graph, so needs_symmetric jobs skip the session's
  /// derived-closure copy.
  Status RegisterGraph(const std::string& name, Graph graph);
  Status RegisterGraph(const std::string& name, Graph graph,
                       api::GraphTraits traits);

  /// Warm-restart registration: maps the arena at `path` instead of
  /// parsing + partitioning. Traits come from the arena header.
  Status RegisterGraphFromArena(const std::string& name,
                                const std::string& path);
  /// Writes graph `name`'s arena to `path` (atomic temp + rename), so the
  /// NEXT service start can map it.
  Status SaveGraphArena(const std::string& name, const std::string& path,
                        ArenaCodec codec = ArenaCodec::kRaw);
  /// `<arena_dir>/<stem>.sga`, or "" when no arena_dir is configured.
  std::string ArenaPathFor(const std::string& stem) const;

  bool HasGraph(const std::string& name) const;

  /// Validates and enqueues one job. Returns the completion ticket, or:
  /// kFailedPrecondition when the service is shutting down or the queue
  /// is full (retryable backpressure), kNotFound for an unregistered
  /// graph, kInvalidArgument for an app/engine pair the registry does not
  /// declare, a graph-requirement violation, or an out-of-range root.
  Result<JobTicket> Submit(const JobRequest& request);

  /// Validates and enqueues one graph mutation into the tenant's lane.
  /// The completed JobResult carries app == "mutate" and the served graph
  /// version in `summary`. Rejections mirror Submit's: kFailedPrecondition
  /// for shutdown/backpressure, kNotFound for an unregistered graph.
  /// (The delta itself is validated at execution time — kInvalidArgument
  /// from ApplyDelta surfaces in the result's status, as a failed job.)
  Result<JobTicket> SubmitMutation(const MutationRequest& request);

  JobServiceStats Stats() const;

  /// Net front-end reporting hooks (see NetFrontEndStats). Kept on the
  /// service — not the listener — so `stats` renders one coherent
  /// snapshot and the accounting survives listener restarts.
  void RecordConnectionAccepted();
  /// `dropped` = server-initiated for cause; false = peer close / quit.
  void RecordConnectionClosed(bool dropped);
  void RecordAuthFailure();
  void RecordResultStreamed();

  /// The session every job executes through (and with it the shared
  /// provider all jobs acquire guidance from).
  api::Session& session() { return *session_; }
  GuidanceProvider& provider() { return session_->provider(); }

  /// Runs one maintenance sweep immediately (independent of the timer).
  /// No-op zero stats when the provider has no store.
  GuidanceStoreSweepStats SweepNow();

  /// The service-owned metrics registry (histograms recorded live by the
  /// workers, provider, and net listener; counters mirrored from Stats()
  /// at render time) and trace flight recorder.
  obs::MetricsRegistry& metrics() { return metrics_; }
  obs::FlightRecorder& flight_recorder() { return recorder_; }

  /// Prometheus text exposition (ends with "# EOF\n") / one-line JSON —
  /// the payloads behind the `metrics` line-protocol command.
  std::string RenderMetricsText();
  std::string RenderMetricsJson();
  /// JSON for the `trace` command: "" or "recent" = the recent ring,
  /// "slow" = the slow ring, a job id = that job's trace (or an error
  /// object if the ring has evicted it). Always a single line.
  std::string RenderTraceJson(const std::string& selector) const;

  /// The `hot [k]` command payload: a `hot:` header (k, sketch
  /// observations, decays) followed by one `hot <rank> graph=<name>
  /// fp=<hex> est=<n>` line per tracked heavy-hitter graph, hottest
  /// first. Graphs whose fingerprint has no registered name (e.g. a
  /// pre-restart mutation lineage) render as graph=?.
  std::string RenderHot(size_t k) const;

  /// The request-stream sketch (tests cross-check estimates through it).
  const HotnessTracker& hotness() const { return tracker_; }

  /// Graceful shutdown: reject new submissions, drain every already
  /// accepted job, stop the maintenance loop, run the final sweep.
  /// Idempotent; blocks until the workers have exited.
  void Shutdown();

  bool accepting() const { return accepting_.load(); }
  size_t queued() const { return queue_.size(); }

 private:
  struct QueuedJob {
    JobRequest request;
    /// The exact graph the job runs on (Session::ResolveGraph — the
    /// symmetrized variant for needs_symmetric apps), for pinning, byte
    /// metering, AND version pinning: the worker executes on THIS graph
    /// (Session::RunOn), so a mutation landing between submit and
    /// execution cannot change what the job computes on. Null for
    /// mutation jobs.
    std::shared_ptr<const Graph> graph;
    /// Non-null = this queued item is a mutation, not a query job.
    std::shared_ptr<const GraphDelta> mutation;
    JobTicket ticket;
    uint64_t id = 0;
    /// Span trace (null when tracing is off); epoch == submit time.
    std::shared_ptr<obs::JobTrace> trace;
    /// Submit timestamp for the latency histograms, independent of the
    /// trace so they record even with tracing disabled.
    std::chrono::steady_clock::time_point submitted_at;
  };

  void WorkerLoop();
  void MaintenanceLoop();
  JobResult Execute(const QueuedJob& job);
  void RecordSweep(const GuidanceStoreSweepStats& sweep);
  static api::AppRequest ToAppRequest(const JobRequest& request);
  /// Stamps submit-time metadata (id, timestamps, trace) onto a queued job.
  void PrepareQueuedJob(QueuedJob* job);
  /// Completion-side observability: latency histograms, flight-recorder
  /// push, rate-limited slow-job WARN.
  void ObserveCompletion(const QueuedJob& job, JobResult* result);
  /// Mirrors Stats() counters into the registry before rendering.
  void CollectMetrics();
  void WriteMetricsDump();
  /// Streams one request through the sketch plane and (under stats_mu_)
  /// maintains the fingerprint->name map for `hot` rendering plus the
  /// distinct-spilled-tenant count. fingerprint == 0 = unresolved.
  void RecordDemand(const std::string& tenant, uint64_t fingerprint,
                    const std::string& app, const std::string& graph_name);
  /// The tenant's exact stats row, or the sketched_tail aggregate once
  /// the max_tracked_tenants cap is reached. Caller holds stats_mu_.
  TenantStats& TenantRowLocked(const std::string& tenant);

  JobServiceOptions options_;
  /// Declared before session_: the session's provider keeps histogram
  /// pointers into this registry for its whole lifetime.
  obs::MetricsRegistry metrics_;
  obs::FlightRecorder recorder_;
  /// Declared before session_: the session's provider holds admission /
  /// eviction-oracle lambdas that read the tracker, so the tracker must
  /// outlive the session.
  HotnessTracker tracker_;
  std::unique_ptr<api::Session> session_;
  JobQueue<QueuedJob> queue_;

  std::chrono::steady_clock::time_point started_at_;
  obs::Histogram* queue_wait_hist_ = nullptr;
  obs::Histogram* job_latency_hist_ = nullptr;
  obs::Counter* slow_jobs_counter_ = nullptr;
  /// Milliseconds (since started_at_) of the last slow-job WARN actually
  /// emitted — the 1/sec rate limiter.
  std::atomic<int64_t> last_slow_warn_ms_{-1000000};

  mutable std::mutex stats_mu_;
  JobServiceStats stats_;
  /// Graph fingerprint -> registered name for `hot` rendering (guarded by
  /// stats_mu_; bounded by the registered-graph count, first name wins).
  std::unordered_map<uint64_t, std::string> fingerprint_names_;

  std::atomic<bool> accepting_{true};
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> next_job_id_{1};
  std::atomic<uint64_t> completion_seq_{0};

  std::mutex maintenance_mu_;
  std::condition_variable maintenance_cv_;

  std::vector<std::thread> workers_;
  std::thread maintenance_;
  std::mutex shutdown_mu_;  // serializes Shutdown callers
  bool shut_down_ = false;
};

}  // namespace slfe::service

#endif  // SLFE_SERVICE_JOB_SERVICE_H_
