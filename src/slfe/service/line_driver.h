#ifndef SLFE_SERVICE_LINE_DRIVER_H_
#define SLFE_SERVICE_LINE_DRIVER_H_

#include <cstdio>
#include <cstdint>

#include "slfe/service/job_service.h"

namespace slfe::service {

/// Configuration for the line-protocol front end shared by the
/// `slfe_server` daemon and `slfe_cli --serve`.
struct LineDriverOptions {
  /// Shrink divisor for dataset aliases registered lazily on first use.
  uint32_t scale_divisor = 4;
  /// Echo an acknowledgement line for every accepted command.
  bool echo = true;
};

/// Drives `service` with the newline-delimited job protocol from `in`
/// until EOF or `quit`, writing acknowledgements and results to `out`:
///
///   submit <tenant> <app> <graph> [root] [dist|shm|gas|ooc] [norr]
///   mutate <tenant> <graph> [ins <src> <dst> <w>]... [del <src> <dst>]...
///   wait          # block until all submitted jobs finish, print results
///   sweep         # run a maintenance sweep now, print what it did
///   stats         # print the service + per-tenant counters
///   hot [k]       # print the top-k heavy-hitter graphs (default 10)
///   quit          # wait, then exit the loop (`shutdown` is equivalent)
///   # comment     # ignored, as are blank lines
///
/// Parsing, dispatch, and reply formatting live in line_protocol.h /
/// command_session.h, shared with the TCP front end (net/net_server.h);
/// this function only supplies the FILE* transport with blocking waits.
///
/// `<graph>` is a registered graph name; unknown names are resolved as
/// dataset aliases (PK/OK/LJ/...) and registered on first use. Returns 0,
/// or 1 when any submitted job failed or any line was rejected — the
/// daemon's exit code is the batch's health signal.
int RunLineDriver(JobService& service, std::FILE* in, std::FILE* out,
                  const LineDriverOptions& options = {});

}  // namespace slfe::service

#endif  // SLFE_SERVICE_LINE_DRIVER_H_
