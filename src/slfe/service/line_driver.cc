#include "slfe/service/line_driver.h"

#include <string>

#include "slfe/service/command_session.h"
#include "slfe/service/line_protocol.h"

namespace slfe::service {

namespace {

/// Reads one whole newline-terminated line of any length (false at EOF
/// with nothing read). A fixed fgets buffer would split a long line into
/// two "commands" and run a silently truncated submit.
bool ReadLine(std::FILE* in, std::string* line) {
  line->clear();
  char chunk[256];
  while (std::fgets(chunk, sizeof(chunk), in) != nullptr) {
    line->append(chunk);
    if (!line->empty() && line->back() == '\n') return true;
  }
  return !line->empty();
}

}  // namespace

int RunLineDriver(JobService& service, std::FILE* in, std::FILE* out,
                  const LineDriverOptions& options) {
  // The stdin transport: blocking-wait semantics over the shared command
  // dispatcher (the TCP front end runs the SAME CommandSession in
  // streaming mode — net/net_server.cc).
  CommandSession::Options sopt;
  sopt.scale_divisor = options.scale_divisor;
  sopt.echo = options.echo;
  sopt.streaming = false;
  // Whoever writes to the daemon's stdin already owns its lifetime, so
  // `shutdown` needs no gate here; it behaves like `quit`.
  sopt.allow_shutdown = true;
  CommandSession session(service, sopt, [out](std::string line) {
    std::fputs(line.c_str(), out);
  });

  std::string line;
  bool done = false;
  while (!done && ReadLine(in, &line)) {
    switch (session.HandleLine(line)) {
      case CommandSession::Disposition::kContinue:
        break;
      case CommandSession::Disposition::kWaitBarrier:
        session.DrainOutstanding();
        break;
      case CommandSession::Disposition::kQuit:
      case CommandSession::Disposition::kShutdown:
        // On a non-interactive stream, stopping the input IS stopping the
        // daemon; both drain below.
        done = true;
        break;
    }
  }

  session.DrainOutstanding();
  service.Shutdown();
  std::fputs(FormatStats(service.Stats()).c_str(), out);
  return session.any_error() ? 1 : 0;
}

}  // namespace slfe::service
