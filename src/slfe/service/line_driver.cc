#include "slfe/service/line_driver.h"

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "slfe/api/app_registry.h"
#include "slfe/graph/generators.h"

namespace slfe::service {

namespace {

std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i > start) tokens.push_back(line.substr(start, i - start));
  }
  return tokens;
}

/// Registers `name` as a dataset alias on first use, so a job file can
/// reference the paper suite without a registration preamble. With an
/// arena_dir configured, a previously saved `<name>.s<scale>.sga` arena
/// is mapped instead of regenerating + re-partitioning the dataset (the
/// scale divisor is part of the file name, so a restart with a different
/// --scale can never serve stale topology), and a fresh generation is
/// written back for the next start. Arena failures — missing file,
/// corruption, a newer codec — degrade to the generate path: warm restart
/// is an optimization, never a correctness dependency.
Status EnsureGraph(JobService& service, const std::string& name,
                   uint32_t scale_divisor) {
  if (service.HasGraph(name)) return Status::OK();
  std::string arena_path =
      service.ArenaPathFor(name + ".s" + std::to_string(scale_divisor));
  if (!arena_path.empty() &&
      service.RegisterGraphFromArena(name, arena_path).ok()) {
    return Status::OK();
  }
  Result<DatasetSpec> spec = FindDataset(name);
  if (!spec.ok()) return spec.status();
  EdgeList edges = MakeDataset(spec.value(), scale_divisor);
  SLFE_RETURN_IF_ERROR(service.RegisterGraph(name, Graph::FromEdges(edges)));
  if (!arena_path.empty()) {
    // Best-effort write-back; a full disk costs the next start its warm
    // path, not this run its registration.
    (void)service.SaveGraphArena(name, arena_path);
  }
  return Status::OK();
}

void PrintResult(std::FILE* out, const JobResult& r) {
  const char* served = "none";
  if (r.guidance_acquired) {
    served = r.guidance_cache_hit   ? "cache"
             : r.guidance_coalesced ? "coalesced"
             : r.guidance_repaired  ? "repaired"
                                    : "generate";
  }
  std::fprintf(out,
               "job %llu tenant=%s app=%s engine=%s graph=%s status=%s "
               "supersteps=%llu skipped=%llu runtime=%.4fs guidance=%.4fs "
               "served=%s summary=%llu\n",
               static_cast<unsigned long long>(r.job_id), r.tenant.c_str(),
               r.app.c_str(), r.engine.c_str(), r.graph.c_str(),
               r.status.ok() ? "ok" : r.status.ToString().c_str(),
               static_cast<unsigned long long>(r.supersteps),
               static_cast<unsigned long long>(r.skipped), r.runtime_seconds,
               r.guidance_seconds, served,
               static_cast<unsigned long long>(r.summary));
}

void PrintStats(std::FILE* out, const JobServiceStats& stats) {
  std::fprintf(out,
               "service: submitted=%llu completed=%llu failed=%llu "
               "rejected=%llu mutations=%llu sweeps=%llu gc_removed=%llu "
               "pinned_spared=%llu graphs_parsed=%llu graphs_mapped=%llu\n",
               static_cast<unsigned long long>(stats.submitted),
               static_cast<unsigned long long>(stats.completed),
               static_cast<unsigned long long>(stats.failed),
               static_cast<unsigned long long>(stats.rejected),
               static_cast<unsigned long long>(stats.mutations),
               static_cast<unsigned long long>(stats.maintenance_sweeps),
               static_cast<unsigned long long>(stats.sweep_removed),
               static_cast<unsigned long long>(stats.sweep_pinned_spared),
               static_cast<unsigned long long>(stats.graphs_parsed),
               static_cast<unsigned long long>(stats.graphs_mapped));
  std::fprintf(out,
               "guidance: generations=%llu coalesced=%llu repairs=%llu "
               "repair_fallbacks=%llu cache_hits=%llu store_hits=%llu\n",
               static_cast<unsigned long long>(stats.provider.generations),
               static_cast<unsigned long long>(stats.provider.coalesced),
               static_cast<unsigned long long>(stats.provider.repairs),
               static_cast<unsigned long long>(stats.provider.repair_fallbacks),
               static_cast<unsigned long long>(stats.cache.hits),
               static_cast<unsigned long long>(stats.cache.store_hits));
  for (const auto& [tenant, t] : stats.tenants) {
    std::fprintf(out,
                 "tenant %s: jobs=%llu/%llu failed=%llu rejected=%llu "
                 "mutations=%llu guidance hits=%llu misses=%llu "
                 "repaired=%llu bytes=%llu acquire=%.4fs\n",
                 tenant.c_str(),
                 static_cast<unsigned long long>(t.jobs_completed),
                 static_cast<unsigned long long>(t.jobs_submitted),
                 static_cast<unsigned long long>(t.jobs_failed),
                 static_cast<unsigned long long>(t.jobs_rejected),
                 static_cast<unsigned long long>(t.mutations),
                 static_cast<unsigned long long>(t.guidance_hits),
                 static_cast<unsigned long long>(t.guidance_misses),
                 static_cast<unsigned long long>(t.guidance_repaired),
                 static_cast<unsigned long long>(t.guidance_bytes),
                 t.guidance_seconds);
  }
}

/// Reads one whole newline-terminated line of any length (false at EOF
/// with nothing read). A fixed fgets buffer would split a long line into
/// two "commands" and run a silently truncated submit.
bool ReadLine(std::FILE* in, std::string* line) {
  line->clear();
  char chunk[256];
  while (std::fgets(chunk, sizeof(chunk), in) != nullptr) {
    line->append(chunk);
    if (!line->empty() && line->back() == '\n') return true;
  }
  return !line->empty();
}

}  // namespace

int RunLineDriver(JobService& service, std::FILE* in, std::FILE* out,
                  const LineDriverOptions& options) {
  std::vector<JobTicket> outstanding;
  bool any_error = false;

  auto drain = [&] {
    for (const JobTicket& ticket : outstanding) {
      const JobResult& result = ticket->Wait();
      if (!result.status.ok()) any_error = true;
      PrintResult(out, result);
    }
    outstanding.clear();
  };

  std::string line;
  while (ReadLine(in, &line)) {
    std::vector<std::string> tokens = Tokenize(line);
    if (tokens.empty() || tokens[0][0] == '#') continue;
    const std::string& command = tokens[0];

    if (command == "quit") break;

    if (command == "wait") {
      drain();
      continue;
    }
    if (command == "stats") {
      PrintStats(out, service.Stats());
      continue;
    }
    if (command == "sweep") {
      GuidanceStoreSweepStats sweep = service.SweepNow();
      std::fprintf(out,
                   "sweep: scanned=%llu ttl=%llu tenant=%llu budget=%llu "
                   "pinned_spared=%llu remaining=%llu\n",
                   static_cast<unsigned long long>(sweep.scanned),
                   static_cast<unsigned long long>(sweep.ttl_removed),
                   static_cast<unsigned long long>(sweep.tenant_removed),
                   static_cast<unsigned long long>(sweep.budget_removed),
                   static_cast<unsigned long long>(sweep.pinned_spared),
                   static_cast<unsigned long long>(sweep.remaining_entries));
      continue;
    }
    if (command == "submit" && tokens.size() >= 4) {
      JobRequest request;
      request.tenant = tokens[1];
      request.app = tokens[2];
      request.graph = tokens[3];
      for (size_t i = 4; i < tokens.size(); ++i) {
        const std::string& t = tokens[i];
        if (api::ParseEngine(t).ok()) {
          // Any engine the registry knows (dist|shm|gas|ooc); whether the
          // app runs on it is the registry's call, enforced by Submit.
          request.engine = t;
        } else if (t == "norr") {
          request.enable_rr = false;
        } else if (!t.empty() &&
                   t.find_first_not_of("0123456789") == std::string::npos) {
          request.root = static_cast<VertexId>(std::strtoul(t.c_str(),
                                                            nullptr, 10));
        } else {
          std::fprintf(out, "reject: bad submit token '%s'\n", t.c_str());
          any_error = true;
          request.app.clear();  // poison so the submit below is skipped
          break;
        }
      }
      if (request.app.empty()) continue;
      Status registered =
          EnsureGraph(service, request.graph, options.scale_divisor);
      if (!registered.ok()) {
        std::fprintf(out, "reject: %s\n", registered.ToString().c_str());
        any_error = true;
        continue;
      }
      Result<JobTicket> ticket = service.Submit(request);
      if (!ticket.ok()) {
        std::fprintf(out, "reject: %s\n",
                     ticket.status().ToString().c_str());
        any_error = true;
        continue;
      }
      if (options.echo) {
        std::fprintf(out, "queued tenant=%s app=%s graph=%s (depth=%zu)\n",
                     request.tenant.c_str(), request.app.c_str(),
                     request.graph.c_str(), service.queued());
      }
      outstanding.push_back(std::move(ticket).value());
      continue;
    }

    if (command == "mutate" && tokens.size() >= 3) {
      // mutate <tenant> <graph> [ins <src> <dst> <w>]... [del <src> <dst>]...
      MutationRequest request;
      request.tenant = tokens[1];
      request.graph = tokens[2];
      bool parsed = true;
      auto number = [](const std::string& t) {
        return !t.empty() &&
               t.find_first_not_of("0123456789.") == std::string::npos;
      };
      size_t i = 3;
      while (i < tokens.size()) {
        if (tokens[i] == "ins" && i + 3 < tokens.size() &&
            number(tokens[i + 1]) && number(tokens[i + 2]) &&
            number(tokens[i + 3])) {
          Edge e;
          e.src = static_cast<VertexId>(
              std::strtoul(tokens[i + 1].c_str(), nullptr, 10));
          e.dst = static_cast<VertexId>(
              std::strtoul(tokens[i + 2].c_str(), nullptr, 10));
          e.weight = std::strtof(tokens[i + 3].c_str(), nullptr);
          request.delta.insert.push_back(e);
          i += 4;
        } else if (tokens[i] == "del" && i + 2 < tokens.size() &&
                   number(tokens[i + 1]) && number(tokens[i + 2])) {
          request.delta.erase.emplace_back(
              static_cast<VertexId>(
                  std::strtoul(tokens[i + 1].c_str(), nullptr, 10)),
              static_cast<VertexId>(
                  std::strtoul(tokens[i + 2].c_str(), nullptr, 10)));
          i += 3;
        } else {
          std::fprintf(out, "reject: bad mutate token '%s'\n",
                       tokens[i].c_str());
          any_error = true;
          parsed = false;
          break;
        }
      }
      if (!parsed) continue;
      Status registered =
          EnsureGraph(service, request.graph, options.scale_divisor);
      if (!registered.ok()) {
        std::fprintf(out, "reject: %s\n", registered.ToString().c_str());
        any_error = true;
        continue;
      }
      Result<JobTicket> ticket = service.SubmitMutation(request);
      if (!ticket.ok()) {
        std::fprintf(out, "reject: %s\n",
                     ticket.status().ToString().c_str());
        any_error = true;
        continue;
      }
      if (options.echo) {
        std::fprintf(out, "queued tenant=%s app=mutate graph=%s (depth=%zu)\n",
                     request.tenant.c_str(), request.graph.c_str(),
                     service.queued());
      }
      outstanding.push_back(std::move(ticket).value());
      continue;
    }

    std::fprintf(out, "reject: unrecognized line: %s", line.c_str());
    any_error = true;
  }

  drain();
  service.Shutdown();
  PrintStats(out, service.Stats());
  return any_error ? 1 : 0;
}

}  // namespace slfe::service
