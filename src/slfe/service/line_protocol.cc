#include "slfe/service/line_protocol.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace slfe::service {

namespace {

/// Appends printf-formatted text to `out` (the formatters build strings,
/// not FILE* writes, so every transport can carry them).
void Appendf(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void Appendf(std::string* out, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  char buf[512];
  int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) {
    if (static_cast<size_t>(n) < sizeof(buf)) {
      out->append(buf, static_cast<size_t>(n));
    } else {
      // Long tenant/status strings overflow the stack buffer; reformat
      // into exactly-sized storage rather than truncating a protocol line.
      std::string big(static_cast<size_t>(n), '\0');
      std::vsnprintf(big.data(), big.size() + 1, fmt, copy);
      out->append(big);
    }
  }
  va_end(copy);
}

bool IsDigits(const std::string& t) {
  if (t.empty()) return false;
  for (char c : t) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

/// Strict float parse for mutation weights: the whole token must be
/// consumed (so `1.5x` rejects) but fractional values are of course legal
/// here — weights are the one place '.' belongs in the mutate grammar.
bool ParseWeight(const std::string& t, float* out) {
  if (t.empty()) return false;
  errno = 0;
  char* end = nullptr;
  float v = std::strtof(t.c_str(), &end);
  if (end != t.c_str() + t.size() || errno == ERANGE) return false;
  *out = v;
  return true;
}

std::string RejectLine(std::string message) {
  std::string line = "reject: " + std::move(message);
  line.push_back('\n');
  return line;
}

ParsedCommand Error(std::string message) {
  ParsedCommand cmd;
  cmd.kind = ParsedCommand::Kind::kError;
  cmd.error = RejectLine(std::move(message));
  return cmd;
}

ParsedCommand ParseSubmit(const std::vector<std::string>& tokens) {
  ParsedCommand cmd;
  cmd.kind = ParsedCommand::Kind::kSubmit;
  cmd.submit.tenant = tokens[1];
  cmd.submit.app = tokens[2];
  cmd.submit.graph = tokens[3];
  for (size_t i = 4; i < tokens.size(); ++i) {
    const std::string& t = tokens[i];
    if (api::ParseEngine(t).ok()) {
      // Any engine the registry knows (dist|shm|gas|ooc); whether the app
      // runs on it is the registry's call, enforced by Submit.
      cmd.submit.engine = t;
    } else if (t == "norr") {
      cmd.submit.enable_rr = false;
    } else if (IsDigits(t)) {
      Result<VertexId> root = ParseVertexId(t);
      if (!root.ok()) {
        return Error("submit root '" + t + "' out of range");
      }
      cmd.submit.root = root.value();
    } else {
      return Error("bad submit token '" + t + "'");
    }
  }
  return cmd;
}

ParsedCommand ParseMutate(const std::vector<std::string>& tokens) {
  ParsedCommand cmd;
  cmd.kind = ParsedCommand::Kind::kMutate;
  cmd.mutate.tenant = tokens[1];
  cmd.mutate.graph = tokens[2];
  size_t i = 3;
  while (i < tokens.size()) {
    if (tokens[i] == "ins" && i + 3 < tokens.size()) {
      Result<VertexId> src = ParseVertexId(tokens[i + 1]);
      Result<VertexId> dst = ParseVertexId(tokens[i + 2]);
      if (!src.ok()) return Error("bad mutate vertex id '" + tokens[i + 1] + "'");
      if (!dst.ok()) return Error("bad mutate vertex id '" + tokens[i + 2] + "'");
      Edge e;
      e.src = src.value();
      e.dst = dst.value();
      if (!ParseWeight(tokens[i + 3], &e.weight)) {
        return Error("bad mutate weight '" + tokens[i + 3] + "'");
      }
      cmd.mutate.delta.insert.push_back(e);
      i += 4;
    } else if (tokens[i] == "del" && i + 2 < tokens.size()) {
      Result<VertexId> src = ParseVertexId(tokens[i + 1]);
      Result<VertexId> dst = ParseVertexId(tokens[i + 2]);
      if (!src.ok()) return Error("bad mutate vertex id '" + tokens[i + 1] + "'");
      if (!dst.ok()) return Error("bad mutate vertex id '" + tokens[i + 2] + "'");
      cmd.mutate.delta.erase.emplace_back(src.value(), dst.value());
      i += 3;
    } else {
      return Error("bad mutate token '" + tokens[i] + "'");
    }
  }
  return cmd;
}

}  // namespace

std::vector<std::string> TokenizeLine(const std::string& line) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i > start) tokens.push_back(line.substr(start, i - start));
  }
  return tokens;
}

Result<VertexId> ParseVertexId(const std::string& token) {
  if (!IsDigits(token)) {
    return Status::InvalidArgument("vertex id is not a plain decimal: " +
                                   token);
  }
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(token.c_str(), &end, 10);
  if (errno == ERANGE || v > std::numeric_limits<VertexId>::max()) {
    return Status::InvalidArgument("vertex id out of range: " + token);
  }
  return static_cast<VertexId>(v);
}

ParsedCommand ParseCommandLine(const std::string& line) {
  std::vector<std::string> tokens = TokenizeLine(line);
  ParsedCommand cmd;
  if (tokens.empty() || tokens[0][0] == '#') return cmd;  // kEmpty
  const std::string& command = tokens[0];

  if (command == "quit" && tokens.size() == 1) {
    cmd.kind = ParsedCommand::Kind::kQuit;
    return cmd;
  }
  if (command == "wait" && tokens.size() == 1) {
    cmd.kind = ParsedCommand::Kind::kWait;
    return cmd;
  }
  if (command == "stats" && tokens.size() == 1) {
    cmd.kind = ParsedCommand::Kind::kStats;
    return cmd;
  }
  if (command == "sweep" && tokens.size() == 1) {
    cmd.kind = ParsedCommand::Kind::kSweep;
    return cmd;
  }
  if (command == "shutdown" && tokens.size() == 1) {
    cmd.kind = ParsedCommand::Kind::kShutdown;
    return cmd;
  }
  if (command == "metrics" &&
      (tokens.size() == 1 || (tokens.size() == 2 && tokens[1] == "json"))) {
    cmd.kind = ParsedCommand::Kind::kMetrics;
    cmd.metrics_json = tokens.size() == 2;
    return cmd;
  }
  if (command == "trace" && (tokens.size() == 1 || tokens.size() == 2)) {
    cmd.kind = ParsedCommand::Kind::kTrace;
    if (tokens.size() == 2) cmd.trace_arg = tokens[1];
    return cmd;
  }
  if (command == "hot" && (tokens.size() == 1 || tokens.size() == 2)) {
    if (tokens.size() == 2) {
      if (!IsDigits(tokens[1])) {
        return Error("bad hot count '" + tokens[1] + "'");
      }
      errno = 0;
      unsigned long long k = std::strtoull(tokens[1].c_str(), nullptr, 10);
      if (errno == ERANGE || k == 0 || k > 1024) {
        return Error("hot count '" + tokens[1] + "' out of range");
      }
      cmd.hot_k = static_cast<size_t>(k);
    }
    cmd.kind = ParsedCommand::Kind::kHot;
    return cmd;
  }
  if (command == "auth" && (tokens.size() == 2 || tokens.size() == 3)) {
    cmd.kind = ParsedCommand::Kind::kAuth;
    cmd.auth_tenant = tokens[1];
    if (tokens.size() == 3) cmd.auth_token = tokens[2];
    return cmd;
  }
  if (command == "submit" && tokens.size() >= 4) return ParseSubmit(tokens);
  if (command == "mutate" && tokens.size() >= 3) return ParseMutate(tokens);

  // Echo the offending line, minus its own terminator: input arriving
  // without a trailing newline (EOF mid-line, a TCP segment boundary) must
  // still produce a terminated reject.
  std::string shown = line;
  while (!shown.empty() && (shown.back() == '\n' || shown.back() == '\r')) {
    shown.pop_back();
  }
  return Error("unrecognized line: " + shown);
}

std::string FormatResult(const JobResult& r) {
  const char* served = "none";
  if (r.guidance_acquired) {
    served = r.guidance_cache_hit   ? "cache"
             : r.guidance_coalesced ? "coalesced"
             : r.guidance_repaired  ? "repaired"
                                    : "generate";
  }
  std::string out;
  Appendf(&out,
          "job %llu tenant=%s app=%s engine=%s graph=%s status=%s "
          "supersteps=%llu skipped=%llu runtime=%.4fs guidance=%.4fs "
          "served=%s summary=%llu\n",
          static_cast<unsigned long long>(r.job_id), r.tenant.c_str(),
          r.app.c_str(), r.engine.c_str(), r.graph.c_str(),
          r.status.ok() ? "ok" : r.status.ToString().c_str(),
          static_cast<unsigned long long>(r.supersteps),
          static_cast<unsigned long long>(r.skipped), r.runtime_seconds,
          r.guidance_seconds, served,
          static_cast<unsigned long long>(r.summary));
  return out;
}

std::string FormatResult(const JobResult& r, uint64_t req) {
  std::string out = FormatResult(r);
  out.pop_back();  // the '\n'; FormatResult always terminates
  Appendf(&out, " req=%llu\n", static_cast<unsigned long long>(req));
  return out;
}

std::string FormatStats(const JobServiceStats& stats) {
  std::string out;
  Appendf(&out, "daemon: uptime=%.1fs pid=%d version=%s\n",
          stats.uptime_seconds, stats.pid,
          stats.version.empty() ? "unknown" : stats.version.c_str());
  Appendf(&out,
          "service: submitted=%llu completed=%llu failed=%llu "
          "rejected=%llu mutations=%llu sweeps=%llu gc_removed=%llu "
          "pinned_spared=%llu graphs_parsed=%llu graphs_mapped=%llu\n",
          static_cast<unsigned long long>(stats.submitted),
          static_cast<unsigned long long>(stats.completed),
          static_cast<unsigned long long>(stats.failed),
          static_cast<unsigned long long>(stats.rejected),
          static_cast<unsigned long long>(stats.mutations),
          static_cast<unsigned long long>(stats.maintenance_sweeps),
          static_cast<unsigned long long>(stats.sweep_removed),
          static_cast<unsigned long long>(stats.sweep_pinned_spared),
          static_cast<unsigned long long>(stats.graphs_parsed),
          static_cast<unsigned long long>(stats.graphs_mapped));
  Appendf(&out,
          "net: accepted=%llu closed=%llu dropped=%llu auth_failures=%llu "
          "streamed=%llu\n",
          static_cast<unsigned long long>(stats.net.accepted),
          static_cast<unsigned long long>(stats.net.closed),
          static_cast<unsigned long long>(stats.net.dropped),
          static_cast<unsigned long long>(stats.net.auth_failures),
          static_cast<unsigned long long>(stats.net.results_streamed));
  Appendf(&out,
          "guidance: generations=%llu coalesced=%llu repairs=%llu "
          "repair_fallbacks=%llu cache_hits=%llu store_hits=%llu "
          "admission_skips=%llu admission_promotions=%llu\n",
          static_cast<unsigned long long>(stats.provider.generations),
          static_cast<unsigned long long>(stats.provider.coalesced),
          static_cast<unsigned long long>(stats.provider.repairs),
          static_cast<unsigned long long>(stats.provider.repair_fallbacks),
          static_cast<unsigned long long>(stats.cache.hits),
          static_cast<unsigned long long>(stats.cache.store_hits),
          static_cast<unsigned long long>(stats.cache.admission_skips),
          static_cast<unsigned long long>(stats.cache.admission_promotions));
  Appendf(&out,
          "sketch: observations=%llu decays=%llu tenants_tracked=%llu "
          "tenants_sketched=%llu\n",
          static_cast<unsigned long long>(stats.sketch_observations),
          static_cast<unsigned long long>(stats.sketch_decays),
          static_cast<unsigned long long>(stats.tenants_tracked),
          static_cast<unsigned long long>(stats.tenants_sketched));
  for (const auto& [tenant, t] : stats.tenants) {
    Appendf(&out,
            "tenant %s: jobs=%llu/%llu failed=%llu rejected=%llu "
            "mutations=%llu guidance hits=%llu misses=%llu "
            "repaired=%llu bytes=%llu acquire=%.4fs\n",
            tenant.c_str(),
            static_cast<unsigned long long>(t.jobs_completed),
            static_cast<unsigned long long>(t.jobs_submitted),
            static_cast<unsigned long long>(t.jobs_failed),
            static_cast<unsigned long long>(t.jobs_rejected),
            static_cast<unsigned long long>(t.mutations),
            static_cast<unsigned long long>(t.guidance_hits),
            static_cast<unsigned long long>(t.guidance_misses),
            static_cast<unsigned long long>(t.guidance_repaired),
            static_cast<unsigned long long>(t.guidance_bytes),
            t.guidance_seconds);
  }
  if (stats.tenants_sketched > 0) {
    // Aggregate row for tenants past the exact-tracking cap; per-tenant
    // rates for these live in the sketch (`hot`, EstimateTenant), while
    // this row keeps the tenant table summing to the service totals.
    const TenantStats& t = stats.sketched_tail;
    Appendf(&out,
            "tenant (sketched %llu): jobs=%llu/%llu failed=%llu "
            "rejected=%llu mutations=%llu guidance hits=%llu misses=%llu "
            "repaired=%llu bytes=%llu acquire=%.4fs\n",
            static_cast<unsigned long long>(stats.tenants_sketched),
            static_cast<unsigned long long>(t.jobs_completed),
            static_cast<unsigned long long>(t.jobs_submitted),
            static_cast<unsigned long long>(t.jobs_failed),
            static_cast<unsigned long long>(t.jobs_rejected),
            static_cast<unsigned long long>(t.mutations),
            static_cast<unsigned long long>(t.guidance_hits),
            static_cast<unsigned long long>(t.guidance_misses),
            static_cast<unsigned long long>(t.guidance_repaired),
            static_cast<unsigned long long>(t.guidance_bytes),
            t.guidance_seconds);
  }
  return out;
}

std::string FormatSweep(const GuidanceStoreSweepStats& sweep) {
  std::string out;
  Appendf(&out,
          "sweep: scanned=%llu ttl=%llu tenant=%llu budget=%llu "
          "pinned_spared=%llu remaining=%llu\n",
          static_cast<unsigned long long>(sweep.scanned),
          static_cast<unsigned long long>(sweep.ttl_removed),
          static_cast<unsigned long long>(sweep.tenant_removed),
          static_cast<unsigned long long>(sweep.budget_removed),
          static_cast<unsigned long long>(sweep.pinned_spared),
          static_cast<unsigned long long>(sweep.remaining_entries));
  return out;
}

}  // namespace slfe::service
