#include "slfe/service/command_session.h"

#include <utility>

#include "slfe/graph/generators.h"

namespace slfe::service {

namespace {

/// Registers `name` as a dataset alias on first use, so a job file can
/// reference the paper suite without a registration preamble. With an
/// arena_dir configured, a previously saved `<name>.s<scale>.sga` arena
/// is mapped instead of regenerating + re-partitioning the dataset (the
/// scale divisor is part of the file name, so a restart with a different
/// --scale can never serve stale topology), and a fresh generation is
/// written back for the next start. Arena failures — missing file,
/// corruption, a newer codec — degrade to the generate path: warm restart
/// is an optimization, never a correctness dependency.
Status EnsureGraph(JobService& service, const std::string& name,
                   uint32_t scale_divisor) {
  if (service.HasGraph(name)) return Status::OK();
  std::string arena_path =
      service.ArenaPathFor(name + ".s" + std::to_string(scale_divisor));
  if (!arena_path.empty() &&
      service.RegisterGraphFromArena(name, arena_path).ok()) {
    return Status::OK();
  }
  Result<DatasetSpec> spec = FindDataset(name);
  if (!spec.ok()) return spec.status();
  EdgeList edges = MakeDataset(spec.value(), scale_divisor);
  SLFE_RETURN_IF_ERROR(service.RegisterGraph(name, Graph::FromEdges(edges)));
  if (!arena_path.empty()) {
    // Best-effort write-back; a full disk costs the next start its warm
    // path, not this run its registration.
    (void)service.SaveGraphArena(name, arena_path);
  }
  return Status::OK();
}

}  // namespace

CommandSession::CommandSession(JobService& service, Options options, Sink sink,
                               SubmitHook on_submitted)
    : service_(service),
      options_(std::move(options)),
      sink_(std::move(sink)),
      on_submitted_(std::move(on_submitted)) {}

CommandSession::Disposition CommandSession::HandleLine(
    const std::string& line) {
  ParsedCommand cmd = ParseCommandLine(line);
  switch (cmd.kind) {
    case ParsedCommand::Kind::kEmpty:
      return Disposition::kContinue;
    case ParsedCommand::Kind::kQuit:
      return Disposition::kQuit;
    case ParsedCommand::Kind::kWait:
      return Disposition::kWaitBarrier;
    case ParsedCommand::Kind::kStats:
      sink_(FormatStats(service_.Stats()));
      return Disposition::kContinue;
    case ParsedCommand::Kind::kSweep:
      sink_(FormatSweep(service_.SweepNow()));
      return Disposition::kContinue;
    case ParsedCommand::Kind::kMetrics:
      // The Prometheus text already ends in "# EOF\n"; the one-line JSON
      // needs its terminator added here.
      sink_(cmd.metrics_json ? service_.RenderMetricsJson() + "\n"
                             : service_.RenderMetricsText());
      return Disposition::kContinue;
    case ParsedCommand::Kind::kTrace:
      sink_(service_.RenderTraceJson(cmd.trace_arg) + "\n");
      return Disposition::kContinue;
    case ParsedCommand::Kind::kHot:
      sink_(service_.RenderHot(cmd.hot_k));
      return Disposition::kContinue;
    case ParsedCommand::Kind::kShutdown:
      if (!options_.allow_shutdown) {
        Reject("shutdown not permitted");
        return Disposition::kContinue;
      }
      return Disposition::kShutdown;
    case ParsedCommand::Kind::kAuth:
      // The transport consumes auth during its handshake; reaching the
      // dispatcher means the stream is already established.
      Reject("already authenticated");
      return Disposition::kContinue;
    case ParsedCommand::Kind::kError:
      sink_(cmd.error);
      any_error_ = true;
      return Disposition::kContinue;
    case ParsedCommand::Kind::kSubmit:
      HandleSubmit(std::move(cmd.submit));
      return Disposition::kContinue;
    case ParsedCommand::Kind::kMutate:
      HandleMutate(cmd.mutate);
      return Disposition::kContinue;
  }
  return Disposition::kContinue;
}

void CommandSession::HandleSubmit(JobRequest request) {
  if (!CheckTenant(request.tenant)) return;
  Status registered =
      EnsureGraph(service_, request.graph, options_.scale_divisor);
  if (!registered.ok()) {
    Reject(registered.ToString());
    return;
  }
  Result<JobTicket> ticket = service_.Submit(request);
  if (!ticket.ok()) {
    Reject(ticket.status().ToString());
    return;
  }
  Accepted(std::move(ticket).value(), request.tenant, request.app,
           request.graph);
}

void CommandSession::HandleMutate(const MutationRequest& request) {
  if (!CheckTenant(request.tenant)) return;
  Status registered =
      EnsureGraph(service_, request.graph, options_.scale_divisor);
  if (!registered.ok()) {
    Reject(registered.ToString());
    return;
  }
  Result<JobTicket> ticket = service_.SubmitMutation(request);
  if (!ticket.ok()) {
    Reject(ticket.status().ToString());
    return;
  }
  Accepted(std::move(ticket).value(), request.tenant, "mutate", request.graph);
}

bool CommandSession::CheckTenant(const std::string& tenant) {
  if (options_.bound_tenant.empty() || tenant == options_.bound_tenant) {
    return true;
  }
  Reject("tenant '" + tenant + "' not authorized on this connection");
  return false;
}

void CommandSession::Accepted(JobTicket ticket, const std::string& tenant,
                              const std::string& app,
                              const std::string& graph) {
  uint64_t req = ++accepted_;
  if (options_.echo) {
    std::string line = "queued req=" + std::to_string(req) + " tenant=" +
                       tenant + " app=" + app + " graph=" + graph +
                       " (depth=" + std::to_string(service_.queued()) + ")\n";
    sink_(std::move(line));
  }
  if (options_.streaming) {
    if (on_submitted_) on_submitted_(ticket, req);
  } else {
    outstanding_.push_back(std::move(ticket));
  }
}

void CommandSession::Reject(const std::string& message) {
  sink_("reject: " + message + "\n");
  any_error_ = true;
}

void CommandSession::DrainOutstanding() {
  for (const JobTicket& ticket : outstanding_) {
    const JobResult& result = ticket->Wait();
    if (!result.status.ok()) any_error_ = true;
    sink_(FormatResult(result));
  }
  outstanding_.clear();
}

}  // namespace slfe::service
