#include "slfe/service/job_service.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <set>
#include <utility>

#include "slfe/apps/app_common.h"
#include "slfe/apps/bfs.h"
#include "slfe/apps/cc.h"
#include "slfe/apps/pr.h"
#include "slfe/apps/sssp.h"
#include "slfe/apps/tr.h"
#include "slfe/apps/wp.h"
#include "slfe/gas/gas_apps.h"

namespace slfe::service {

namespace {

bool IsDistApp(const std::string& app) {
  return app == "sssp" || app == "bfs" || app == "cc" || app == "wp" ||
         app == "pr" || app == "tr";
}

bool IsGasApp(const std::string& app) { return app == "sssp" || app == "cc"; }

bool IsSingleSourceApp(const std::string& app) {
  return app == "sssp" || app == "bfs" || app == "wp";
}

/// Guidance payload bytes per acquisition — the same per-vertex payload
/// size the store persists and the tenant byte budgets meter.
uint64_t GuidanceBytes(const Graph& graph) {
  return static_cast<uint64_t>(graph.num_vertices()) *
         GuidanceStore::kPayloadBytesPerVertex;
}

/// The service is configured once at construction; normalize the knobs so
/// the rest of the code never re-checks them, and fold the convenience
/// tenant-budget map into the provider's GC options (one source of truth:
/// the store).
JobServiceOptions Normalize(JobServiceOptions o) {
  if (o.workers == 0) o.workers = 1;
  if (o.queue_capacity == 0) o.queue_capacity = 1;
  if (o.job_nodes < 1) o.job_nodes = 1;
  if (o.job_threads < 1) o.job_threads = 1;
  for (const auto& [tenant, budget] : o.tenant_budgets) {
    o.provider.store_gc.tenant_budgets[tenant] = budget;
  }
  return o;
}

void FillFromRunInfo(const AppRunInfo& info, JobResult* result) {
  result->supersteps = info.supersteps;
  result->computations = info.stats.computations;
  result->skipped = info.stats.skipped;
  result->updates = info.stats.updates;
  result->runtime_seconds = info.stats.RuntimeSeconds();
  result->guidance_acquired = info.guidance_acquired;
  result->guidance_seconds = info.guidance_seconds;
  result->guidance_cache_hit = info.guidance_cache_hit;
  result->guidance_coalesced = info.guidance_coalesced;
}

}  // namespace

JobService::JobService(JobServiceOptions options)
    : options_(Normalize(std::move(options))),
      provider_(options_.provider),
      queue_(options_.queue_capacity) {
  workers_.reserve(options_.workers);
  for (size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  if (options_.maintenance_interval_seconds > 0 &&
      provider_.store() != nullptr) {
    maintenance_ = std::thread([this] { MaintenanceLoop(); });
  }
}

JobService::~JobService() { Shutdown(); }

Status JobService::RegisterGraph(const std::string& name, Graph graph) {
  if (name.empty()) return Status::InvalidArgument("graph name is empty");
  auto shared = std::make_shared<const Graph>(std::move(graph));
  std::lock_guard<std::mutex> lock(graphs_mu_);
  if (graphs_.find(name) != graphs_.end()) {
    // Replacing would silently swap the data under queued/running jobs
    // that resolved the old graph at submit time.
    return Status::FailedPrecondition("graph already registered: " + name);
  }
  graphs_.emplace(name, std::move(shared));
  return Status::OK();
}

bool JobService::HasGraph(const std::string& name) const {
  std::lock_guard<std::mutex> lock(graphs_mu_);
  return graphs_.find(name) != graphs_.end();
}

Result<JobTicket> JobService::Submit(const JobRequest& request) {
  auto reject = [&](Status status) -> Result<JobTicket> {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.rejected;
    ++stats_.tenants[request.tenant].jobs_rejected;
    return status;
  };

  if (!accepting_.load()) {
    return reject(Status::FailedPrecondition("service is shutting down"));
  }
  bool dist = request.engine == "dist";
  bool gas = request.engine == "gas";
  if (!dist && !gas) {
    return reject(Status::InvalidArgument("unknown engine: " + request.engine));
  }
  if ((dist && !IsDistApp(request.app)) || (gas && !IsGasApp(request.app))) {
    return reject(Status::InvalidArgument("app " + request.app +
                                          " not available on engine " +
                                          request.engine));
  }

  std::shared_ptr<const Graph> graph;
  {
    std::lock_guard<std::mutex> lock(graphs_mu_);
    auto it = graphs_.find(request.graph);
    if (it != graphs_.end()) graph = it->second;
  }
  if (graph == nullptr) {
    return reject(Status::NotFound("graph not registered: " + request.graph));
  }
  if (IsSingleSourceApp(request.app) && request.root >= graph->num_vertices()) {
    return reject(Status::InvalidArgument("root out of range for graph " +
                                          request.graph));
  }

  QueuedJob job;
  job.request = request;
  job.graph = std::move(graph);
  job.ticket = std::make_shared<JobHandle>();
  job.id = next_job_id_.fetch_add(1);

  GuidanceStore* store = provider_.store();
  if (store != nullptr && request.enable_rr) {
    // Pin the graph so no maintenance sweep can evict guidance between
    // now and the job's completion. The matching Unpin is in WorkerLoop —
    // every accepted job is executed, even during a drain.
    store->PinGraph(job.graph->fingerprint());
  }

  // Count the submission before the push: a worker can pop and finish the
  // job immediately, and completed must never exceed submitted in a
  // Stats() snapshot.
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.submitted;
    ++stats_.tenants[request.tenant].jobs_submitted;
  }
  JobTicket ticket = job.ticket;
  uint64_t fingerprint = job.graph->fingerprint();
  if (!queue_.TryPush(std::move(job))) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      --stats_.submitted;
      --stats_.tenants[request.tenant].jobs_submitted;
    }
    if (store != nullptr && request.enable_rr) store->UnpinGraph(fingerprint);
    return reject(Status::FailedPrecondition("job queue full"));
  }
  if (store != nullptr && request.enable_rr) {
    // Attribute the graph's store entries to this tenant for the
    // per-tenant budget phase, only once the job is actually accepted —
    // a rejected submission must not re-own the graph's storage ("last
    // ACCEPTED submitter owns it").
    store->AssignGraphTenant(fingerprint, request.tenant);
  }
  return ticket;
}

void JobService::WorkerLoop() {
  QueuedJob job;
  while (queue_.Pop(&job)) {
    JobResult result = Execute(job);

    GuidanceStore* store = provider_.store();
    if (store != nullptr && job.request.enable_rr) {
      store->UnpinGraph(job.graph->fingerprint());
    }

    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      TenantStats& tenant = stats_.tenants[job.request.tenant];
      if (result.status.ok()) {
        ++stats_.completed;
        ++tenant.jobs_completed;
      } else {
        ++stats_.failed;
        ++tenant.jobs_failed;
      }
      if (result.guidance_acquired) {
        if (result.guidance_cache_hit || result.guidance_coalesced) {
          ++tenant.guidance_hits;
        } else {
          ++tenant.guidance_misses;
        }
        tenant.guidance_bytes += GuidanceBytes(*job.graph);
        tenant.guidance_seconds += result.guidance_seconds;
      }
    }

    job.ticket->Complete(std::move(result));
    job = QueuedJob{};  // drop the graph reference before blocking in Pop
  }
}

JobResult JobService::Execute(const QueuedJob& job) {
  JobResult result;
  result.job_id = job.id;
  result.tenant = job.request.tenant;
  result.app = job.request.app;
  result.engine = job.request.engine;
  result.graph = job.request.graph;
  if (job.request.engine == "gas") {
    ExecuteGas(job, &result);
  } else {
    ExecuteDist(job, &result);
  }
  return result;
}

void JobService::ExecuteDist(const QueuedJob& job, JobResult* out) {
  JobResult& result = *out;

  AppConfig cfg;
  cfg.num_nodes = options_.job_nodes;
  cfg.threads_per_node = options_.job_threads;
  cfg.enable_rr = job.request.enable_rr;
  cfg.max_iters = job.request.max_iters;
  cfg.root = job.request.root;
  cfg.guidance_provider = &provider_;

  const Graph& g = *job.graph;
  const std::string& app = job.request.app;
  if (app == "sssp") {
    SsspResult r = RunSssp(g, cfg);
    FillFromRunInfo(r.info, &result);
    uint64_t reached = 0;
    for (float d : r.dist) {
      if (d < std::numeric_limits<float>::infinity()) ++reached;
    }
    result.summary = reached;
  } else if (app == "bfs") {
    BfsResult r = RunBfs(g, cfg);
    FillFromRunInfo(r.info, &result);
    uint32_t depth = 0;
    for (uint32_t l : r.levels) {
      if (l != UINT32_MAX) depth = std::max(depth, l);
    }
    result.summary = depth;
  } else if (app == "cc") {
    CcResult r = RunCc(g, cfg);
    FillFromRunInfo(r.info, &result);
    std::set<uint32_t> components(r.labels.begin(), r.labels.end());
    result.summary = components.size();
  } else if (app == "wp") {
    WpResult r = RunWp(g, cfg);
    FillFromRunInfo(r.info, &result);
    uint64_t reachable = 0;
    for (float w : r.width) {
      if (w > 0) ++reachable;
    }
    result.summary = reachable;
  } else if (app == "pr") {
    PrResult r = RunPr(g, cfg);
    FillFromRunInfo(r.info, &result);
    result.summary = r.info.ec_vertices;
  } else if (app == "tr") {
    TrResult r = RunTr(g, cfg);
    FillFromRunInfo(r.info, &result);
    result.summary = r.info.ec_vertices;
  } else {
    // Submit validated the app set; reaching here is a service bug.
    result.status = Status::Internal("unhandled dist app: " + app);
  }
}

void JobService::ExecuteGas(const QueuedJob& job, JobResult* out) {
  JobResult& result = *out;

  const Graph& g = *job.graph;
  // The service acquires guidance itself (instead of the RunGas*Guided
  // wrappers) so the acquisition's hit/coalesced accounting lands in the
  // job result exactly like the dist path.
  GuidanceAcquisition acquisition;
  if (job.request.enable_rr) {
    GuidanceRequest greq;
    greq.policy = job.request.app == "sssp" ? GuidanceRootPolicy::kSingleSource
                                            : GuidanceRootPolicy::kLocalMinima;
    greq.root = job.request.root;
    acquisition = provider_.Acquire(g, greq);
    if (acquisition) {
      result.guidance_acquired = true;
      result.guidance_seconds = acquisition.acquire_seconds;
      result.guidance_cache_hit = acquisition.cache_hit;
      result.guidance_coalesced = acquisition.coalesced;
    }
  }

  gas::GasOptions gopt;
  gopt.num_nodes = options_.job_nodes;
  gopt.guidance = acquisition.guidance;

  auto fill = [&](const gas::GasStats& stats) {
    result.supersteps = stats.supersteps;
    result.computations = stats.computations;
    result.skipped = stats.skipped;
    result.updates = stats.updates;
    result.runtime_seconds = stats.RuntimeSeconds();
  };
  if (job.request.app == "sssp") {
    gas::GasSsspResult r = gas::RunGasSssp(g, job.request.root, gopt);
    fill(r.stats);
    uint64_t reached = 0;
    for (float d : r.dist) {
      if (d < std::numeric_limits<float>::infinity()) ++reached;
    }
    result.summary = reached;
  } else if (job.request.app == "cc") {
    gas::GasCcResult r = gas::RunGasCc(g, gopt);
    fill(r.stats);
    std::set<uint32_t> components(r.labels.begin(), r.labels.end());
    result.summary = components.size();
  } else {
    result.status = Status::Internal("unhandled gas app: " + job.request.app);
  }
}

void JobService::MaintenanceLoop() {
  const auto interval = std::chrono::duration<double>(
      options_.maintenance_interval_seconds);
  std::unique_lock<std::mutex> lock(maintenance_mu_);
  while (!stopping_.load()) {
    maintenance_cv_.wait_for(lock, interval,
                             [&] { return stopping_.load(); });
    if (stopping_.load()) break;
    RecordSweep(provider_.store()->Sweep());
  }
}

void JobService::RecordSweep(const GuidanceStoreSweepStats& sweep) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.maintenance_sweeps;
  stats_.sweep_removed +=
      sweep.ttl_removed + sweep.tenant_removed + sweep.budget_removed;
  stats_.sweep_pinned_spared += sweep.pinned_spared;
}

GuidanceStoreSweepStats JobService::SweepNow() {
  GuidanceStore* store = provider_.store();
  if (store == nullptr) return {};
  GuidanceStoreSweepStats sweep = store->Sweep();
  RecordSweep(sweep);
  return sweep;
}

JobServiceStats JobService::Stats() const {
  JobServiceStats snapshot;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    snapshot = stats_;
  }
  snapshot.provider = provider_.stats();
  snapshot.cache = provider_.cache_stats();
  return snapshot;
}

void JobService::Shutdown() {
  std::lock_guard<std::mutex> lock(shutdown_mu_);
  if (shut_down_) return;
  shut_down_ = true;

  // 1. Stop admissions, then let the workers drain everything already
  //    accepted — Close() keeps queued items poppable.
  accepting_.store(false);
  queue_.Close();
  for (std::thread& worker : workers_) worker.join();

  // 2. Stop the maintenance loop (under its mutex so the flag flip cannot
  //    slip between the loop's predicate check and its wait).
  {
    std::lock_guard<std::mutex> mlock(maintenance_mu_);
    stopping_.store(true);
  }
  maintenance_cv_.notify_all();
  if (maintenance_.joinable()) maintenance_.join();

  // 3. Final sweep: a stopped service leaves its store within budget, and
  //    with every job drained no pins remain to spare anything.
  if (options_.final_sweep_on_shutdown && provider_.store() != nullptr) {
    RecordSweep(provider_.store()->Sweep());
  }
}

}  // namespace slfe::service
