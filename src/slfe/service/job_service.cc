#include "slfe/service/job_service.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "slfe/common/logging.h"
#include "slfe/common/version.h"

namespace slfe::service {

namespace {

/// Guidance payload bytes per acquisition. Metered at the codec-
/// independent raw width (kPayloadBytesPerVertex) so a tenant's usage
/// number does not change when the store negotiates the packed codec —
/// budgets meter logical guidance volume, the file system meters disk.
uint64_t GuidanceBytes(const Graph& graph) {
  return static_cast<uint64_t>(graph.num_vertices()) *
         GuidanceStore::kPayloadBytesPerVertex;
}

/// The service is configured once at construction; normalize the knobs so
/// the rest of the code never re-checks them, and fold the convenience
/// tenant-budget map into the provider's GC options (one source of truth:
/// the store).
JobServiceOptions Normalize(JobServiceOptions o) {
  if (o.workers == 0) o.workers = 1;
  if (o.queue_capacity == 0) o.queue_capacity = 1;
  if (o.job_nodes < 1) o.job_nodes = 1;
  if (o.job_threads < 1) o.job_threads = 1;
  for (const auto& [tenant, budget] : o.tenant_budgets) {
    o.provider.store_gc.tenant_budgets[tenant] = budget;
  }
  return o;
}

/// The session all jobs run through: the service's cluster shape, its
/// shared provider configuration, and STRICT requirement checking — a
/// multi-tenant daemon rejects meaningless jobs at Submit instead of
/// burning a worker on them.
api::SessionOptions SessionOptionsFor(const JobServiceOptions& o,
                                      obs::MetricsRegistry* metrics,
                                      HotnessTracker* tracker) {
  api::SessionOptions s;
  s.num_nodes = o.job_nodes;
  s.threads_per_node = o.job_threads;
  s.auto_symmetrize = o.auto_symmetrize;
  s.strict_weights = true;
  s.provider = o.provider;
  // The provider the session constructs records its generation/repair/
  // store-load durations into the service's registry.
  s.provider.metrics = metrics;
  // Store GC ranks budget-phase victims by the sketch's estimated reuse
  // (coldest first) instead of raw mtime recency — a stale-but-hot
  // graph's guidance outlives a fresh one-shot's. The tracker outlives
  // the session (declaration order in JobService), so the captured
  // pointer is safe for the provider's whole lifetime.
  s.provider.store_gc.hotness = [tracker](uint64_t fingerprint) {
    return tracker->EstimateGraph(fingerprint);
  };
  if (o.hot_admit_threshold > 0) {
    const uint64_t threshold = o.hot_admit_threshold;
    s.provider.store_admission = [tracker, threshold](uint64_t fingerprint) {
      return tracker->EstimateGraph(fingerprint) >= threshold;
    };
  }
  s.arena_dir = o.arena_dir;
  return s;
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void FillFromOutcome(const api::AppOutcome& outcome, JobResult* result) {
  result->status = outcome.status;
  result->supersteps = outcome.info.supersteps;
  result->computations = outcome.info.stats.computations;
  result->skipped = outcome.info.stats.skipped;
  result->updates = outcome.info.stats.updates;
  result->runtime_seconds = outcome.info.stats.RuntimeSeconds();
  result->guidance_acquired = outcome.info.guidance_acquired;
  result->guidance_seconds = outcome.info.guidance_seconds;
  result->guidance_cache_hit = outcome.info.guidance_cache_hit;
  result->guidance_coalesced = outcome.info.guidance_coalesced;
  result->guidance_repaired = outcome.info.guidance_repaired;
  result->summary = outcome.summary;
}

}  // namespace

api::AppRequest JobService::ToAppRequest(const JobRequest& request) {
  api::AppRequest out;
  out.app = request.app;
  out.engine = request.engine;
  out.graph = request.graph;
  out.root = request.root;
  out.max_iters = request.max_iters;
  out.enable_rr = request.enable_rr;
  return out;
}

JobService::JobService(JobServiceOptions options)
    : options_(Normalize(std::move(options))),
      recorder_(std::max<size_t>(1, options_.trace_ring_capacity),
                std::max<size_t>(8, options_.trace_ring_capacity / 2)),
      tracker_(options_.hotness),
      session_(std::make_unique<api::Session>(
          SessionOptionsFor(options_, &metrics_, &tracker_))),
      queue_(options_.queue_capacity),
      started_at_(std::chrono::steady_clock::now()) {
  queue_wait_hist_ = metrics_.GetHistogram(
      "slfe_job_queue_wait_seconds",
      "Seconds a job spent queued before a worker popped it");
  job_latency_hist_ = metrics_.GetHistogram(
      "slfe_job_latency_seconds",
      "Submit-to-complete seconds per job (all tenants)");
  slow_jobs_counter_ = metrics_.GetCounter(
      "slfe_slow_jobs_total",
      "Completed jobs slower than the --slow-job-ms threshold");
  workers_.reserve(options_.workers);
  for (size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  if (options_.maintenance_interval_seconds > 0 &&
      (provider().store() != nullptr || !options_.metrics_dump_path.empty())) {
    maintenance_ = std::thread([this] { MaintenanceLoop(); });
  }
}

JobService::~JobService() { Shutdown(); }

Status JobService::RegisterGraph(const std::string& name, Graph graph) {
  return session_->AddGraph(name, std::move(graph));
}

Status JobService::RegisterGraph(const std::string& name, Graph graph,
                                 api::GraphTraits traits) {
  return session_->AddGraph(name, std::move(graph), traits);
}

Status JobService::RegisterGraphFromArena(const std::string& name,
                                          const std::string& path) {
  return session_->AddGraphFromArena(name, path);
}

Status JobService::SaveGraphArena(const std::string& name,
                                  const std::string& path, ArenaCodec codec) {
  return session_->SaveGraphArena(name, path, codec);
}

std::string JobService::ArenaPathFor(const std::string& stem) const {
  return session_->ArenaPath(stem);
}

bool JobService::HasGraph(const std::string& name) const {
  return session_->HasGraph(name);
}

Result<JobTicket> JobService::Submit(const JobRequest& request) {
  auto reject = [&](Status status) -> Result<JobTicket> {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.rejected;
    ++TenantRowLocked(request.tenant).jobs_rejected;
    return status;
  };

  if (!accepting_.load()) {
    RecordDemand(request.tenant, 0, request.app, request.graph);
    return reject(Status::FailedPrecondition("service is shutting down"));
  }
  api::AppRequest app_request = ToAppRequest(request);
  // One validation path, shared with the CLI: ResolveGraph runs the full
  // registry check (app/engine declarations, graph requirements, root
  // range) before resolving, so a job that passes here can only fail for
  // runtime reasons.
  Result<std::shared_ptr<const Graph>> resolved =
      session_->ResolveGraph(app_request);
  if (!resolved.ok()) {
    // Rejected before a graph resolved: the request still counts toward
    // the tenant/app request stream, under the "unresolved" fingerprint.
    RecordDemand(request.tenant, 0, request.app, request.graph);
    return reject(resolved.status());
  }

  QueuedJob job;
  job.request = request;
  job.graph = std::move(resolved).value();
  job.ticket = std::make_shared<JobHandle>();
  PrepareQueuedJob(&job);

  // Stream the request through the sketch plane before any store
  // interaction: the admission gate and the eviction oracle both read
  // the estimate this record contributes to. A queue-full rejection
  // below does NOT re-record — the demand was observed once.
  RecordDemand(request.tenant, job.graph->fingerprint(), request.app,
               request.graph);

  GuidanceStore* store = provider().store();
  if (store != nullptr && request.enable_rr) {
    // Pin the graph so no maintenance sweep can evict guidance between
    // now and the job's completion. The matching Unpin is in WorkerLoop —
    // every accepted job is executed, even during a drain.
    store->PinGraph(job.graph->fingerprint());
  }

  // Count the submission before the push: a worker can pop and finish the
  // job immediately, and completed must never exceed submitted in a
  // Stats() snapshot.
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.submitted;
    ++TenantRowLocked(request.tenant).jobs_submitted;
  }
  JobTicket ticket = job.ticket;
  uint64_t fingerprint = job.graph->fingerprint();
  if (!queue_.TryPush(request.tenant, std::move(job))) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      --stats_.submitted;
      --TenantRowLocked(request.tenant).jobs_submitted;
    }
    if (store != nullptr && request.enable_rr) store->UnpinGraph(fingerprint);
    return reject(Status::FailedPrecondition("job queue full"));
  }
  if (store != nullptr && request.enable_rr) {
    // Attribute the graph's store entries to this tenant for the
    // per-tenant budget phase, only once the job is actually accepted —
    // a rejected submission must not re-own the graph's storage ("last
    // ACCEPTED submitter owns it").
    store->AssignGraphTenant(fingerprint, request.tenant);
  }
  return ticket;
}

Result<JobTicket> JobService::SubmitMutation(const MutationRequest& request) {
  auto reject = [&](Status status) -> Result<JobTicket> {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.rejected;
    ++TenantRowLocked(request.tenant).jobs_rejected;
    return status;
  };

  if (!accepting_.load()) {
    RecordDemand(request.tenant, 0, "mutate", request.graph);
    return reject(Status::FailedPrecondition("service is shutting down"));
  }
  std::shared_ptr<const Graph> current = session_->GetGraph(request.graph);
  if (current == nullptr) {
    RecordDemand(request.tenant, 0, "mutate", request.graph);
    return reject(Status::NotFound("graph not registered: " + request.graph));
  }
  // Mutations are demand too: a tenant rewriting a graph is the clearest
  // signal the graph's guidance will be wanted again.
  RecordDemand(request.tenant, current->fingerprint(), "mutate",
               request.graph);

  QueuedJob job;
  job.request.tenant = request.tenant;
  job.request.app = "mutate";
  job.request.graph = request.graph;
  job.request.engine.clear();
  job.request.enable_rr = false;  // no guidance acquisition, no pinning
  job.mutation = std::make_shared<const GraphDelta>(request.delta);
  job.ticket = std::make_shared<JobHandle>();
  PrepareQueuedJob(&job);

  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.submitted;
    ++TenantRowLocked(request.tenant).jobs_submitted;
  }
  JobTicket ticket = job.ticket;
  if (!queue_.TryPush(request.tenant, std::move(job))) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      --stats_.submitted;
      --TenantRowLocked(request.tenant).jobs_submitted;
    }
    return reject(Status::FailedPrecondition("job queue full"));
  }
  return ticket;
}

void JobService::RecordDemand(const std::string& tenant, uint64_t fingerprint,
                              const std::string& app,
                              const std::string& graph_name) {
  HotnessTracker::RecordResult recorded =
      tracker_.Record(tenant, fingerprint, app);
  std::lock_guard<std::mutex> lock(stats_mu_);
  if (fingerprint != 0 && !graph_name.empty()) {
    // First name wins: a symmetrized closure or mutated version keeps
    // displaying under the name the tenant submitted against.
    fingerprint_names_.emplace(fingerprint, graph_name);
  }
  if (recorded.first_tenant && options_.max_tracked_tenants > 0 &&
      stats_.tenants.size() >= options_.max_tracked_tenants &&
      stats_.tenants.find(tenant) == stats_.tenants.end()) {
    // A genuinely new tenant arriving after the exact rows filled up:
    // it will only ever be accounted in the sketched tail.
    ++stats_.tenants_sketched;
  }
}

TenantStats& JobService::TenantRowLocked(const std::string& tenant) {
  auto it = stats_.tenants.find(tenant);
  if (it != stats_.tenants.end()) return it->second;
  if (options_.max_tracked_tenants == 0 ||
      stats_.tenants.size() < options_.max_tracked_tenants) {
    return stats_.tenants[tenant];
  }
  // Cap reached: exact accounting folds into the shared tail row (rows
  // plus tail still sum to the service totals); the per-tenant request
  // rate stays readable through the sketch (EstimateTenant) at O(1)
  // memory. A tenant tracked once is tracked forever — rows are never
  // evicted — so a row can never alternate between exact and tail.
  return stats_.sketched_tail;
}

void JobService::PrepareQueuedJob(QueuedJob* job) {
  job->id = next_job_id_.fetch_add(1);
  job->submitted_at = std::chrono::steady_clock::now();
  if (!options_.tracing) return;
  job->trace = std::make_shared<obs::JobTrace>();
  job->trace->job_id = job->id;
  job->trace->tenant = job->request.tenant;
  job->trace->app = job->request.app;
  job->trace->engine = job->request.engine;
  job->trace->graph = job->request.graph;
}

void JobService::ObserveCompletion(const QueuedJob& job, JobResult* result) {
  double e2e = SecondsSince(job.submitted_at);
  job_latency_hist_->Observe(e2e);
  metrics_
      .GetHistogram("slfe_tenant_job_latency_seconds",
                    "Submit-to-complete seconds per job, by tenant", 1e-6,
                    {{"tenant", job.request.tenant}})
      ->Observe(e2e);
  bool slow =
      options_.slow_job_ms > 0 && e2e * 1e3 > options_.slow_job_ms;
  if (job.trace != nullptr) {
    job.trace->MarkCompleted(result->status.ok());
    result->trace = job.trace;
    recorder_.Record(job.trace, slow);
  }
  if (!slow) return;
  slow_jobs_counter_->Inc();
  // Rate limit to one WARN per second: under overload every job crosses
  // the threshold, and a log storm would make the slowness worse.
  int64_t now_ms = static_cast<int64_t>(SecondsSince(started_at_) * 1e3);
  int64_t last = last_slow_warn_ms_.load(std::memory_order_relaxed);
  if (now_ms - last < 1000 ||
      !last_slow_warn_ms_.compare_exchange_strong(last, now_ms)) {
    return;
  }
  SLFE_LOG(Warning) << "slow job id=" << job.id << " tenant="
                    << job.request.tenant << " app=" << job.request.app
                    << " graph=" << job.request.graph << " e2e_ms="
                    << e2e * 1e3 << " spans: "
                    << (job.trace != nullptr ? job.trace->SpanSummary()
                                             : "(tracing disabled)");
}

void JobService::WorkerLoop() {
  QueuedJob job;
  while (queue_.Pop(&job)) {
    queue_wait_hist_->Observe(SecondsSince(job.submitted_at));
    if (job.trace != nullptr) {
      job.trace->AddSpan("queue_wait", 0.0, job.trace->Now());
    }
    JobResult result = Execute(job);
    result.sequence = completion_seq_.fetch_add(1) + 1;
    ObserveCompletion(job, &result);

    GuidanceStore* store = provider().store();
    if (store != nullptr && job.request.enable_rr) {
      store->UnpinGraph(job.graph->fingerprint());
    }

    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      TenantStats& tenant = TenantRowLocked(job.request.tenant);
      if (result.status.ok()) {
        ++stats_.completed;
        ++tenant.jobs_completed;
        if (job.mutation != nullptr && result.updates > 0) {
          // A no-op delta completes fine but mutated nothing.
          ++stats_.mutations;
          ++tenant.mutations;
        }
      } else {
        ++stats_.failed;
        ++tenant.jobs_failed;
      }
      if (result.guidance_acquired) {
        if (result.guidance_cache_hit || result.guidance_coalesced) {
          ++tenant.guidance_hits;
        } else {
          ++tenant.guidance_misses;
          if (result.guidance_repaired) ++tenant.guidance_repaired;
        }
        tenant.guidance_bytes += GuidanceBytes(*job.graph);
        tenant.guidance_seconds += result.guidance_seconds;
      }
    }

    job.ticket->Complete(std::move(result));
    job = QueuedJob{};  // drop the graph reference before blocking in Pop
  }
}

JobResult JobService::Execute(const QueuedJob& job) {
  JobResult result;
  result.job_id = job.id;
  result.tenant = job.request.tenant;
  result.app = job.request.app;
  result.engine = job.request.engine;
  result.graph = job.request.graph;
  if (job.mutation != nullptr) {
    double mutate_start = job.trace != nullptr ? job.trace->Now() : 0.0;
    Result<api::GraphMutationResult> mutated =
        session_->MutateGraph(job.request.graph, *job.mutation);
    if (job.trace != nullptr) {
      job.trace->AddSpanSince("engine_execute", mutate_start);
    }
    if (!mutated.ok()) {
      result.status = mutated.status();
      return result;
    }
    result.summary = mutated.value().version;
    result.updates = mutated.value().delta_stats.edges_inserted +
                     mutated.value().delta_stats.edges_deleted;
    GuidanceStore* store = provider().store();
    if (store != nullptr && mutated.value().changed) {
      // The new version's store entries belong to whoever mutated it into
      // existence (until a later submitter takes it over). The OLD
      // version's entries are deliberately NOT invalidated: in-flight
      // jobs still execute on it, and its guidance is the repair source —
      // GC ages it out once nothing pins it.
      store->AssignGraphTenant(mutated.value().new_fingerprint,
                               job.request.tenant);
    }
    return result;
  }
  // THE execution path: the same registry dispatch Session::Run does, but
  // pinned to the graph resolved at SUBMIT time — a job submitted against
  // version N computes on version N even if a mutation published N+1
  // while the job sat in the queue.
  FillFromOutcome(session_->RunOn(ToAppRequest(job.request), job.graph,
                                  job.trace.get()),
                  &result);
  return result;
}

void JobService::MaintenanceLoop() {
  const auto interval = std::chrono::duration<double>(
      options_.maintenance_interval_seconds);
  std::unique_lock<std::mutex> lock(maintenance_mu_);
  while (!stopping_.load()) {
    maintenance_cv_.wait_for(lock, interval,
                             [&] { return stopping_.load(); });
    if (stopping_.load()) break;
    if (provider().store() != nullptr) {
      RecordSweep(provider().store()->Sweep());
    }
    if (!options_.metrics_dump_path.empty()) WriteMetricsDump();
  }
}

void JobService::WriteMetricsDump() {
  const std::string& path = options_.metrics_dump_path;
  std::string tmp = path + ".tmp";
  std::string text = RenderMetricsText();
  FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    SLFE_LOG(Warning) << "metrics dump: cannot open " << tmp;
    return;
  }
  size_t written = std::fwrite(text.data(), 1, text.size(), f);
  int close_rc = std::fclose(f);
  if (written != text.size() || close_rc != 0 ||
      std::rename(tmp.c_str(), path.c_str()) != 0) {
    SLFE_LOG(Warning) << "metrics dump: write failed for " << path;
    std::remove(tmp.c_str());
  }
}

void JobService::RecordSweep(const GuidanceStoreSweepStats& sweep) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.maintenance_sweeps;
  stats_.sweep_removed +=
      sweep.ttl_removed + sweep.tenant_removed + sweep.budget_removed;
  stats_.sweep_pinned_spared += sweep.pinned_spared;
}

void JobService::RecordConnectionAccepted() {
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.net.accepted;
}

void JobService::RecordConnectionClosed(bool dropped) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  if (dropped) {
    ++stats_.net.dropped;
  } else {
    ++stats_.net.closed;
  }
}

void JobService::RecordAuthFailure() {
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.net.auth_failures;
}

void JobService::RecordResultStreamed() {
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.net.results_streamed;
}

GuidanceStoreSweepStats JobService::SweepNow() {
  GuidanceStore* store = provider().store();
  if (store == nullptr) return {};
  GuidanceStoreSweepStats sweep = store->Sweep();
  RecordSweep(sweep);
  return sweep;
}

JobServiceStats JobService::Stats() const {
  JobServiceStats snapshot;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    snapshot = stats_;
  }
  GuidanceProvider& provider = session_->provider();
  snapshot.provider = provider.stats();
  snapshot.cache = provider.cache_stats();
  snapshot.graphs_parsed = session_->graphs_parsed();
  snapshot.graphs_mapped = session_->graphs_mapped();
  snapshot.uptime_seconds = SecondsSince(started_at_);
  snapshot.pid = static_cast<int>(::getpid());
  snapshot.version = BuildVersionString();
  snapshot.sketch_observations = tracker_.Observations();
  snapshot.sketch_decays = tracker_.Decays();
  snapshot.tenants_tracked = snapshot.tenants.size();
  return snapshot;
}

std::string JobService::RenderHot(size_t k) const {
  if (k == 0) k = 10;
  std::vector<HotGraph> top = tracker_.TopGraphs(k);
  std::string out;
  {
    char head[96];
    std::snprintf(head, sizeof(head),
                  "hot: k=%zu observations=%llu decays=%llu\n", k,
                  static_cast<unsigned long long>(tracker_.Observations()),
                  static_cast<unsigned long long>(tracker_.Decays()));
    out += head;
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  size_t rank = 0;
  for (const HotGraph& hit : top) {
    ++rank;
    auto named = fingerprint_names_.find(hit.fingerprint);
    const char* name =
        named != fingerprint_names_.end() ? named->second.c_str() : "?";
    char line[160];
    std::snprintf(line, sizeof(line),
                  "hot %zu graph=%s fp=%016llx est=%llu\n", rank, name,
                  static_cast<unsigned long long>(hit.fingerprint),
                  static_cast<unsigned long long>(hit.estimate));
    out += line;
  }
  return out;
}

void JobService::CollectMetrics() {
  JobServiceStats s = Stats();
  auto set = [&](const char* name, const char* help, uint64_t value) {
    metrics_.GetCounter(name, help)->Set(value);
  };
  set("slfe_jobs_submitted_total", "Jobs accepted into the queue",
      s.submitted);
  set("slfe_jobs_completed_total", "Jobs finished successfully", s.completed);
  set("slfe_jobs_failed_total", "Jobs finished with an error status",
      s.failed);
  set("slfe_jobs_rejected_total",
      "Submissions bounced (validation or backpressure)", s.rejected);
  set("slfe_graph_mutations_total", "Effective graph mutations executed",
      s.mutations);
  set("slfe_guidance_generations_total", "Full RR-guidance sweeps executed",
      s.provider.generations);
  set("slfe_guidance_coalesced_total",
      "Acquisitions that piggybacked on an in-flight sweep",
      s.provider.coalesced);
  set("slfe_guidance_repairs_total",
      "Misses served by incremental guidance repair", s.provider.repairs);
  set("slfe_guidance_repair_fallbacks_total",
      "Repair attempts that fell back to a full sweep",
      s.provider.repair_fallbacks);
  set("slfe_guidance_cache_hits_total", "In-memory guidance cache hits",
      s.cache.hits);
  set("slfe_guidance_store_hits_total",
      "Guidance cache misses served by the persistent store",
      s.cache.store_hits);
  set("slfe_net_connections_accepted_total",
      "TCP connections admitted past accept()", s.net.accepted);
  set("slfe_net_connections_dropped_total",
      "TCP connections dropped by the server for cause", s.net.dropped);
  set("slfe_net_auth_failures_total", "TCP handshakes with bad credentials",
      s.net.auth_failures);
  set("slfe_net_results_streamed_total",
      "Completion lines pushed to TCP peers", s.net.results_streamed);
  set("slfe_trace_recorded_total",
      "Completed job traces pushed into the flight recorder",
      recorder_.recorded());
  set("slfe_sketch_observations_total",
      "Requests streamed through the demand sketch", s.sketch_observations);
  set("slfe_sketch_decays_total",
      "Exponential-decay halvings applied to the demand sketch",
      s.sketch_decays);
  set("slfe_guidance_admission_skips_total",
      "Guidance store writes skipped for cold graphs", s.cache.admission_skips);
  set("slfe_guidance_admission_promotions_total",
      "Cold guidance entries persisted after turning hot",
      s.cache.admission_promotions);
  metrics_.GetGauge("slfe_uptime_seconds", "Seconds since service start")
      ->Set(s.uptime_seconds);
  metrics_.GetGauge("slfe_queue_depth", "Jobs currently queued")
      ->Set(static_cast<double>(queue_.size()));
  metrics_.GetGauge("slfe_tenants_tracked",
                    "Tenants with exact per-tenant stat rows")
      ->Set(static_cast<double>(s.tenants_tracked));
  metrics_.GetGauge("slfe_tenants_sketched",
                    "Tenants accounted only through the sketch tail")
      ->Set(static_cast<double>(s.tenants_sketched));
  std::vector<HotGraph> top = tracker_.TopGraphs(8);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    for (const HotGraph& hit : top) {
      auto named = fingerprint_names_.find(hit.fingerprint);
      char fp_hex[24];
      std::snprintf(fp_hex, sizeof(fp_hex), "%016llx",
                    static_cast<unsigned long long>(hit.fingerprint));
      const std::string label =
          named != fingerprint_names_.end() ? named->second
                                            : std::string(fp_hex);
      metrics_
          .GetGauge("slfe_hot_graph_estimate",
                    "Estimated request count for a heavy-hitter graph",
                    {{"graph", label}})
          ->Set(static_cast<double>(hit.estimate));
    }
  }
}

std::string JobService::RenderMetricsText() {
  CollectMetrics();
  return metrics_.RenderPrometheusText();
}

std::string JobService::RenderMetricsJson() {
  CollectMetrics();
  return metrics_.RenderJson();
}

std::string JobService::RenderTraceJson(const std::string& selector) const {
  auto render_list = [](std::vector<std::shared_ptr<obs::JobTrace>> traces) {
    std::string out = "{\"traces\":[";
    bool first = true;
    for (const auto& trace : traces) {
      if (!first) out.push_back(',');
      first = false;
      out += trace->ToJson();
    }
    out += "]}";
    return out;
  };
  if (selector.empty() || selector == "recent") {
    return render_list(recorder_.Recent());
  }
  if (selector == "slow") return render_list(recorder_.Slow());
  char* end = nullptr;
  uint64_t id = std::strtoull(selector.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || selector.empty()) {
    return "{\"error\":\"expected recent, slow, or a job id\"}";
  }
  std::shared_ptr<obs::JobTrace> trace = recorder_.Find(id);
  if (trace == nullptr) {
    return "{\"error\":\"no trace for job " + selector + "\"}";
  }
  return trace->ToJson();
}

void JobService::Shutdown() {
  std::lock_guard<std::mutex> lock(shutdown_mu_);
  if (shut_down_) return;
  shut_down_ = true;

  // 1. Stop admissions, then let the workers drain everything already
  //    accepted — Close() keeps queued items poppable.
  accepting_.store(false);
  queue_.Close();
  for (std::thread& worker : workers_) worker.join();

  // 2. Stop the maintenance loop (under its mutex so the flag flip cannot
  //    slip between the loop's predicate check and its wait).
  {
    std::lock_guard<std::mutex> mlock(maintenance_mu_);
    stopping_.store(true);
  }
  maintenance_cv_.notify_all();
  if (maintenance_.joinable()) maintenance_.join();

  // 3. Final sweep: a stopped service leaves its store within budget, and
  //    with every job drained no pins remain to spare anything.
  if (options_.final_sweep_on_shutdown && provider().store() != nullptr) {
    RecordSweep(provider().store()->Sweep());
  }

  // 4. Leave a final metrics snapshot behind, so a scraper reading the
  //    dump file sees the service's terminal state, not a stale interval.
  if (!options_.metrics_dump_path.empty()) WriteMetricsDump();
}

}  // namespace slfe::service
