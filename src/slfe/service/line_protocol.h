#ifndef SLFE_SERVICE_LINE_PROTOCOL_H_
#define SLFE_SERVICE_LINE_PROTOCOL_H_

#include <string>
#include <vector>

#include "slfe/common/status.h"
#include "slfe/service/job_service.h"

namespace slfe::service {

/// One parsed line of the job protocol. Parsing is pure — no I/O, no
/// service access — so the stdin driver, the TCP connection sessions, and
/// the unit tests all share exactly one grammar: a parser bug fixed here
/// is fixed for every transport at once.
struct ParsedCommand {
  enum class Kind {
    kEmpty,     ///< blank line or `# comment`
    kQuit,      ///< close this input stream (drain first)
    kWait,      ///< barrier: results of prior submissions before new lines
    kStats,     ///< print service + tenant + connection counters
    kSweep,     ///< run a maintenance sweep now
    kSubmit,    ///< payload in `submit`
    kMutate,    ///< payload in `mutate`
    kAuth,      ///< connection handshake: payload in auth_tenant/auth_token
    kShutdown,  ///< stop the whole daemon (gated by an option at dispatch)
    kMetrics,   ///< metrics exposition; `metrics_json` selects the format
    kTrace,     ///< flight-recorder dump; selector in `trace_arg`
    kHot,       ///< top-k heavy-hitter graphs; k in `hot_k`
    kError,     ///< malformed; `error` holds the full reject line
  };
  Kind kind = Kind::kEmpty;
  JobRequest submit;
  MutationRequest mutate;
  std::string auth_tenant;
  std::string auth_token;
  /// For kMetrics: true = the JSON renderer (`metrics json`), false = the
  /// Prometheus text exposition (bare `metrics`).
  bool metrics_json = false;
  /// For kTrace: "" (= recent), "recent", "slow", or a job id.
  std::string trace_arg;
  /// For kHot: requested list length; bare `hot` leaves the default.
  size_t hot_k = 10;
  /// For kError: a complete, '\n'-terminated "reject: ..." line. Always
  /// terminated even when the offending input line was not — an
  /// unterminated reject would glue onto the next output line.
  std::string error;
};

/// Splits on ASCII whitespace; never throws.
std::vector<std::string> TokenizeLine(const std::string& line);

/// Strict vertex-id parse: pure digits only (no sign, no '.', no
/// exponent — `del 1.5 2` must reject, not truncate to src=1), and the
/// value must fit VertexId (an out-of-range token would otherwise wrap
/// through the narrowing cast into a bogus but in-range id).
Result<VertexId> ParseVertexId(const std::string& token);

/// Parses one protocol line into a command. Grammar (see line_driver.h):
///   submit <tenant> <app> <graph> [root] [engine] [norr]
///   mutate <tenant> <graph> [ins <src> <dst> <w>]... [del <src> <dst>]...
///   auth <tenant> [token]
///   metrics [json]
///   trace [recent|slow|<job-id>]
///   hot [k]
///   wait | sweep | stats | quit | shutdown | # comment
ParsedCommand ParseCommandLine(const std::string& line);

/// One '\n'-terminated result line. The served= tag precedence is part of
/// the protocol: cache > coalesced > repaired > generate ("none" when no
/// guidance was acquired).
std::string FormatResult(const JobResult& result);

/// FormatResult with a per-connection request tag appended (` req=K`), so
/// a pipelining client can correlate streamed completions — which arrive
/// in completion order, not submission order — back to its own submits.
std::string FormatResult(const JobResult& result, uint64_t req);

/// The multi-line stats block: service, net front end, guidance, and one
/// line per tenant.
std::string FormatStats(const JobServiceStats& stats);

std::string FormatSweep(const GuidanceStoreSweepStats& sweep);

}  // namespace slfe::service

#endif  // SLFE_SERVICE_LINE_PROTOCOL_H_
