#ifndef SLFE_CORE_GUIDANCE_CACHE_H_
#define SLFE_CORE_GUIDANCE_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "slfe/core/rr_guidance.h"
#include "slfe/graph/types.h"

namespace slfe {

/// Cache key: which graph (by topology fingerprint) and which root set the
/// guidance was generated for. Roots are folded into an order-sensitive
/// digest — the selectors in roots.h are deterministic, so equal root sets
/// hash equal.
struct GuidanceKey {
  uint64_t graph_fingerprint = 0;
  uint64_t roots_digest = 0;
  uint64_t num_roots = 0;

  bool operator==(const GuidanceKey& o) const {
    return graph_fingerprint == o.graph_fingerprint &&
           roots_digest == o.roots_digest && num_roots == o.num_roots;
  }
};

/// Observability counters for the amortization story (paper §4.4: ~8.7
/// jobs share one graph in production, so most jobs should hit).
struct GuidanceCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t invalidations = 0;
};

/// A thread-safe LRU cache of generated RR guidance, realizing the
/// multi-job amortization the paper measures: the first job on a graph
/// pays the O(|E|) sweep, the next ~7.7 jobs retrieve it in O(|roots|).
/// Entries are shared_ptr-held so a cached guidance stays valid for a
/// running job even if it is evicted mid-run.
class GuidanceCache {
 public:
  /// `capacity` bounds the number of (graph, roots) entries kept; at most
  /// that many guidance arrays (one uint32+bool per vertex each) stay
  /// resident.
  explicit GuidanceCache(size_t capacity = 32);

  /// Digest helper for building keys from a concrete root vector.
  static GuidanceKey MakeKey(uint64_t graph_fingerprint,
                             const std::vector<VertexId>& roots);

  /// Returns the cached guidance and bumps it to most-recently-used, or
  /// nullptr on a miss. Counts a hit or a miss.
  std::shared_ptr<const RRGuidance> Lookup(const GuidanceKey& key);

  /// Inserts (or replaces) the entry for `key`, evicting the
  /// least-recently-used entry when over capacity.
  void Insert(const GuidanceKey& key,
              std::shared_ptr<const RRGuidance> guidance);

  /// Drops every entry generated for the given graph fingerprint (e.g.
  /// after a mutation produced a new Graph with the same storage).
  void InvalidateGraph(uint64_t graph_fingerprint);

  /// Drops everything.
  void Clear();

  size_t size() const;
  size_t capacity() const { return capacity_; }
  GuidanceCacheStats stats() const;

 private:
  struct KeyHash {
    size_t operator()(const GuidanceKey& k) const {
      uint64_t h = k.graph_fingerprint;
      h ^= k.roots_digest + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
      h ^= k.num_roots + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
      return static_cast<size_t>(h);
    }
  };

  struct Entry {
    GuidanceKey key;
    std::shared_ptr<const RRGuidance> guidance;
  };

  using LruList = std::list<Entry>;

  size_t capacity_;
  mutable std::mutex mu_;
  LruList lru_;  // front = most recently used
  std::unordered_map<GuidanceKey, LruList::iterator, KeyHash> index_;
  GuidanceCacheStats stats_;
};

}  // namespace slfe

#endif  // SLFE_CORE_GUIDANCE_CACHE_H_
