#ifndef SLFE_CORE_GUIDANCE_CACHE_H_
#define SLFE_CORE_GUIDANCE_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "slfe/core/rr_guidance.h"
#include "slfe/graph/types.h"

namespace slfe {

class GuidanceStore;

/// Cache key: which graph (by topology fingerprint) and which root set the
/// guidance was generated for. Roots are folded into an order-sensitive
/// digest — the selectors in roots.h are deterministic, so equal root sets
/// hash equal.
struct GuidanceKey {
  uint64_t graph_fingerprint = 0;
  uint64_t roots_digest = 0;
  uint64_t num_roots = 0;

  bool operator==(const GuidanceKey& o) const {
    return graph_fingerprint == o.graph_fingerprint &&
           roots_digest == o.roots_digest && num_roots == o.num_roots;
  }
};

/// The one hasher for GuidanceKey-keyed containers (the cache's index and
/// the provider's singleflight table share it).
struct GuidanceKeyHash {
  size_t operator()(const GuidanceKey& k) const {
    uint64_t h = k.graph_fingerprint;
    h ^= k.roots_digest + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    h ^= k.num_roots + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    return static_cast<size_t>(h);
  }
};

/// Observability counters for the amortization story (paper §4.4: ~8.7
/// jobs share one graph in production, so most jobs should hit).
struct GuidanceCacheStats {
  uint64_t hits = 0;    ///< served from the in-memory LRU
  uint64_t misses = 0;  ///< absent from memory AND the attached store
  uint64_t evictions = 0;
  uint64_t invalidations = 0;
  /// Served from the attached GuidanceStore after a memory miss (the
  /// restart-survival path); counted instead of a miss.
  uint64_t store_hits = 0;
  /// Store entries rejected during load (corruption/truncation). The
  /// lookup proceeds as a miss and the next Insert overwrites the bad file.
  uint64_t store_errors = 0;
  /// Write-throughs skipped by the hotness admission gate (the graph was
  /// too cold to be worth a .rrg file). The entry stays in memory.
  uint64_t admission_skips = 0;
  /// Previously-skipped entries persisted later, when a memory hit found
  /// the graph had crossed the admission threshold.
  uint64_t admission_promotions = 0;
};

/// A thread-safe LRU cache of generated RR guidance, realizing the
/// multi-job amortization the paper measures: the first job on a graph
/// pays the O(|E|) sweep, the next ~7.7 jobs retrieve it in O(|roots|).
/// Entries are shared_ptr-held so a cached guidance stays valid for a
/// running job even if it is evicted mid-run.
///
/// With a GuidanceStore attached the cache becomes a two-level hierarchy:
/// inserts write through to disk, a memory miss falls back to a store load
/// (so eviction and process restarts only cost a file read, not an O(|E|)
/// resweep), and InvalidateGraph also drops the graph's files. Store I/O
/// runs under the cache mutex — loads are one sequential read of a
/// few-MB-at-most file, and the provider's singleflight already keeps the
/// miss path cold, so finer locking has nothing to win.
class GuidanceCache {
 public:
  /// `capacity` bounds the number of (graph, roots) entries kept; at most
  /// that many guidance arrays (one uint32+bool per vertex each) stay
  /// resident.
  explicit GuidanceCache(size_t capacity = 32);

  /// Attaches (or detaches, with nullptr) the persistent spill layer.
  /// Shared ownership: benches point several providers at one store, and
  /// the returned handle stays valid across a concurrent re-attach.
  void AttachStore(std::shared_ptr<GuidanceStore> store);
  std::shared_ptr<GuidanceStore> store() const;

  /// Hotness admission gate for the write-through path. When set, an
  /// Insert only spills to the attached store if
  /// `admission(graph_fingerprint)` returns true; cold entries stay
  /// memory-only (counted as admission_skips) and are *promoted* — saved
  /// after the fact — by the first memory hit that finds the gate now
  /// open (counted as admission_promotions), so a graph that turns hot
  /// after its first job still ends up durable. nullptr (the default)
  /// restores unconditional write-through.
  void SetStoreAdmission(std::function<bool(uint64_t graph_fingerprint)> gate);

  /// Digest helper for building keys from a concrete root vector.
  static GuidanceKey MakeKey(uint64_t graph_fingerprint,
                             const std::vector<VertexId>& roots);

  /// Returns the cached guidance and bumps it to most-recently-used, or
  /// nullptr on a miss. A memory miss with a store attached first tries a
  /// disk load (counted as store_hits and promoted into the LRU); only a
  /// miss on both levels counts as a miss and returns nullptr. When
  /// `from_store` is non-null it is set iff the hit was served by the disk
  /// load path (trace spans label those acquisitions "store").
  std::shared_ptr<const RRGuidance> Lookup(const GuidanceKey& key,
                                           bool* from_store = nullptr);

  /// Memory-only, side-effect-free probe: no store load, no LRU bump, no
  /// stats. The provider's singleflight uses this to re-check for a result
  /// published between its cache miss and its flight registration.
  std::shared_ptr<const RRGuidance> Peek(const GuidanceKey& key) const;

  /// Inserts (or replaces) the entry for `key`, evicting the
  /// least-recently-used entry when over capacity. Writes through to the
  /// attached store (an evicted entry therefore remains reloadable).
  void Insert(const GuidanceKey& key,
              std::shared_ptr<const RRGuidance> guidance);

  /// Drops every entry generated for the given graph fingerprint (e.g.
  /// after a mutation produced a new Graph with the same storage), from
  /// memory and from the attached store. The store side matches by file
  /// name, not content, so entries of every codec — including ones
  /// written by a newer build this reader rejects — go together.
  void InvalidateGraph(uint64_t graph_fingerprint);

  /// Drops every in-memory entry. Store files survive — Clear models
  /// memory pressure / restart, not data invalidation (that is
  /// InvalidateGraph's job).
  void Clear();

  size_t size() const;
  size_t capacity() const { return capacity_; }
  GuidanceCacheStats stats() const;

 private:
  struct Entry {
    GuidanceKey key;
    std::shared_ptr<const RRGuidance> guidance;
    /// True once the entry is (or was loaded) on disk — or there is no
    /// store to spill to. False marks a promotion candidate: the
    /// admission gate declined the write-through and a later hot hit
    /// should persist it.
    bool spilled = true;
  };

  using LruList = std::list<Entry>;

  /// Inserts under mu_; `spill` = false for entries that just came FROM
  /// the store (re-saving them would be a wasted write).
  void InsertLocked(const GuidanceKey& key,
                    std::shared_ptr<const RRGuidance> guidance, bool spill);

  size_t capacity_;
  mutable std::mutex mu_;
  LruList lru_;  // front = most recently used
  std::unordered_map<GuidanceKey, LruList::iterator, GuidanceKeyHash> index_;
  GuidanceCacheStats stats_;
  std::shared_ptr<GuidanceStore> store_;
  std::function<bool(uint64_t)> admission_;
};

}  // namespace slfe

#endif  // SLFE_CORE_GUIDANCE_CACHE_H_
