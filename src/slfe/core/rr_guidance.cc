#include "slfe/core/rr_guidance.h"

#include <vector>

#include "slfe/common/bitmap.h"
#include "slfe/common/direction.h"
#include "slfe/common/logging.h"
#include "slfe/common/timer.h"
#include "slfe/core/roots.h"

namespace slfe {

RRGuidance RRGuidance::Generate(const Graph& graph,
                                const std::vector<VertexId>& roots,
                                ThreadPool* pool) {
  if (roots.empty() && graph.num_vertices() > 0) {
    SLFE_LOG(Warning)
        << "RRGuidance::Generate called with an empty root set: the sweep "
           "is a no-op and disables redundancy reduction. All-vertices apps "
           "should use GenerateAllRoots or the selectors in roots.h.";
  }
  if (pool != nullptr && pool->num_threads() > 1) {
    return GenerateParallel(graph, roots, *pool);
  }
  return GenerateSerial(graph, roots);
}

RRGuidance RRGuidance::GenerateSerial(const Graph& graph,
                                      const std::vector<VertexId>& roots) {
  Timer timer;
  RRGuidance rrg;
  VertexId n = graph.num_vertices();
  rrg.guidance_.assign(n, VertexGuidance{});

  // Algorithm 1, frontier form. `frontier` holds vertices first visited in
  // the previous iteration (the "active" set); every out-edge of a frontier
  // vertex bumps the destination's last_iter to the current level, and the
  // first visit fixes the destination's unweighted distance and activates
  // it. Each edge is traversed exactly once, so the sweep is O(|E|) — the
  // "negligible overhead" property the paper claims.
  std::vector<VertexId> frontier;
  frontier.reserve(roots.size());
  for (VertexId r : roots) {
    SLFE_CHECK_LT(r, n);
    if (!rrg.guidance_[r].visited) {
      rrg.guidance_[r].visited = true;
      frontier.push_back(r);
    }
  }

  const Csr& out = graph.out();
  std::vector<VertexId> next;
  uint32_t iter = 0;
  uint32_t deepest = 0;  // last level at which any lastIter was assigned
  while (!frontier.empty()) {
    ++iter;
    next.clear();
    for (VertexId src : frontier) {
      for (EdgeId e = out.begin(src); e < out.end(src); ++e) {
        VertexId dst = out.neighbor(e);
        // Iterations increase monotonically, so assignment implements the
        // paper's `if lastIter < Iter then lastIter = Iter`.
        rrg.guidance_[dst].last_iter = iter;
        deepest = iter;
        if (!rrg.guidance_[dst].visited) {
          rrg.guidance_[dst].visited = true;
          next.push_back(dst);
        }
      }
    }
    frontier.swap(next);
  }
  rrg.depth_ = deepest;
  rrg.generation_seconds_ = timer.Seconds();
  return rrg;
}

RRGuidance RRGuidance::GenerateParallel(const Graph& graph,
                                        const std::vector<VertexId>& roots,
                                        ThreadPool& pool,
                                        double dense_fraction) {
  Timer timer;
  RRGuidance rrg;
  VertexId n = graph.num_vertices();
  rrg.guidance_.assign(n, VertexGuidance{});

  Bitmap visited(n);
  std::vector<VertexId> frontier;
  frontier.reserve(roots.size());
  for (VertexId r : roots) {
    SLFE_CHECK_LT(r, n);
    if (visited.SetBit(r)) frontier.push_back(r);
  }

  const Csr& out = graph.out();
  const Csr& in = graph.in();
  size_t workers = pool.num_threads();
  std::vector<std::vector<VertexId>> next(workers);
  std::vector<uint64_t> edge_partial(workers, 0);
  // Set when a worker traverses any frontier edge this iteration; the last
  // iteration with a set flag is the sweep depth (matches the serial
  // `deepest = iter` assignment).
  std::vector<uint8_t> touched(workers, 0);
  Bitmap frontier_bits(n);  // dense-pull frontier membership

  uint32_t iter = 0;
  uint32_t deepest = 0;
  while (!frontier.empty()) {
    ++iter;
    const uint32_t level = iter;
    for (auto& v : next) v.clear();
    std::fill(touched.begin(), touched.end(), uint8_t{0});

    // Direction choice, exactly as ShmEngine::EdgeMap: compare the
    // frontier's outgoing edge count against |E| * dense_fraction.
    std::fill(edge_partial.begin(), edge_partial.end(), 0);
    pool.ParallelFor(0, frontier.size(), [&](size_t w, size_t lo, size_t hi) {
      uint64_t sum = 0;
      for (size_t i = lo; i < hi; ++i) sum += out.degree(frontier[i]);
      edge_partial[w] = sum;
    });
    uint64_t frontier_edges = 0;
    for (uint64_t p : edge_partial) frontier_edges += p;
    bool dense = ChooseDense(frontier_edges, graph.num_edges(),
                             dense_fraction);

    if (dense) {
      // Pull: every destination checks its in-neighbors for frontier
      // membership. One frontier predecessor is enough to pin
      // last_iter = iter (all writers this level would store the same
      // value), so the scan can stop at the first hit — the classic
      // bottom-up win. Destinations are partitioned across workers, so
      // the per-dst writes need no atomics.
      frontier_bits.Clear();
      pool.ParallelFor(0, frontier.size(),
                       [&](size_t, size_t lo, size_t hi) {
                         for (size_t i = lo; i < hi; ++i) {
                           frontier_bits.SetBit(frontier[i]);
                         }
                       });
      pool.ParallelFor(0, n, [&](size_t w, size_t lo, size_t hi) {
        for (size_t dv = lo; dv < hi; ++dv) {
          VertexId dst = static_cast<VertexId>(dv);
          bool hit = false;
          for (EdgeId e = in.begin(dst); e < in.end(dst); ++e) {
            if (frontier_bits.TestBit(in.neighbor(e))) {
              hit = true;
              break;
            }
          }
          if (!hit) continue;
          rrg.guidance_[dst].last_iter = level;
          touched[w] = 1;
          if (visited.SetBit(dst)) next[w].push_back(dst);
        }
      });
    } else {
      // Push: frontier vertices scatter over their out-edges. Multiple
      // sources may race on one destination, but every writer stores the
      // same `level`, so a relaxed atomic store suffices; the visited
      // bitmap's fetch_or picks the unique worker that enqueues dst.
      pool.ParallelFor(0, frontier.size(), [&](size_t w, size_t lo,
                                               size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          VertexId src = frontier[i];
          for (EdgeId e = out.begin(src); e < out.end(src); ++e) {
            VertexId dst = out.neighbor(e);
            __atomic_store_n(&rrg.guidance_[dst].last_iter, level,
                             __ATOMIC_RELAXED);
            touched[w] = 1;
            if (visited.SetBit(dst)) next[w].push_back(dst);
          }
        }
      });
    }

    for (uint8_t t : touched) {
      if (t != 0) deepest = level;
    }
    frontier.clear();
    for (const auto& local : next) {
      frontier.insert(frontier.end(), local.begin(), local.end());
    }
  }

  // Commit the visited bitmap into the per-vertex records.
  pool.ParallelFor(0, n, [&](size_t, size_t lo, size_t hi) {
    for (size_t v = lo; v < hi; ++v) {
      rrg.guidance_[v].visited = visited.TestBit(v);
    }
  });

  rrg.depth_ = deepest;
  rrg.generation_seconds_ = timer.Seconds();
  return rrg;
}

RRGuidance RRGuidance::FromParts(std::vector<VertexGuidance> guidance,
                                 uint32_t depth) {
  RRGuidance rrg;
  rrg.guidance_ = std::move(guidance);
  rrg.depth_ = depth;
  return rrg;
}

RRGuidance RRGuidance::GenerateAllRoots(const Graph& graph,
                                        ThreadPool* pool) {
  // Natural propagation sources (zero-in-degree vertices, with the
  // cycle-bound fallback) — the same selector the provider layer uses.
  return Generate(graph, SelectSourceRoots(graph), pool);
}

}  // namespace slfe
