#include "slfe/core/rr_guidance.h"

#include <vector>

#include "slfe/common/logging.h"
#include "slfe/common/timer.h"

namespace slfe {

RRGuidance RRGuidance::Generate(const Graph& graph,
                                const std::vector<VertexId>& roots) {
  Timer timer;
  RRGuidance rrg;
  VertexId n = graph.num_vertices();
  rrg.guidance_.assign(n, VertexGuidance{});

  // Algorithm 1, frontier form. `frontier` holds vertices first visited in
  // the previous iteration (the "active" set); every out-edge of a frontier
  // vertex bumps the destination's last_iter to the current level, and the
  // first visit fixes the destination's unweighted distance and activates
  // it. Each edge is traversed exactly once, so the sweep is O(|E|) — the
  // "negligible overhead" property the paper claims.
  std::vector<VertexId> frontier;
  frontier.reserve(roots.size());
  for (VertexId r : roots) {
    SLFE_CHECK_LT(r, n);
    if (!rrg.guidance_[r].visited) {
      rrg.guidance_[r].visited = true;
      frontier.push_back(r);
    }
  }

  const Csr& out = graph.out();
  std::vector<VertexId> next;
  uint32_t iter = 0;
  uint32_t deepest = 0;  // last level at which any lastIter was assigned
  while (!frontier.empty()) {
    ++iter;
    next.clear();
    for (VertexId src : frontier) {
      for (EdgeId e = out.begin(src); e < out.end(src); ++e) {
        VertexId dst = out.neighbor(e);
        // Iterations increase monotonically, so assignment implements the
        // paper's `if lastIter < Iter then lastIter = Iter`.
        rrg.guidance_[dst].last_iter = iter;
        deepest = iter;
        if (!rrg.guidance_[dst].visited) {
          rrg.guidance_[dst].visited = true;
          next.push_back(dst);
        }
      }
    }
    frontier.swap(next);
  }
  rrg.depth_ = deepest;
  rrg.generation_seconds_ = timer.Seconds();
  return rrg;
}

RRGuidance RRGuidance::GenerateAllRoots(const Graph& graph) {
  // Natural propagation sources: vertices nothing points at. If the graph
  // is one big cycle-bound component (no such vertices), fall back to
  // vertex 0 so the sweep still measures a propagation depth.
  std::vector<VertexId> roots;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    if (graph.in_degree(v) == 0) roots.push_back(v);
  }
  if (roots.empty() && graph.num_vertices() > 0) roots.push_back(0);
  return Generate(graph, roots);
}

}  // namespace slfe
