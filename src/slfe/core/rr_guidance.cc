#include "slfe/core/rr_guidance.h"

#include <vector>

#include "slfe/common/bitmap.h"
#include "slfe/common/direction.h"
#include "slfe/common/logging.h"
#include "slfe/common/timer.h"
#include "slfe/common/work_stealing.h"
#include "slfe/core/roots.h"
#include "slfe/engine/dist_graph.h"

namespace slfe {

const char* GuidanceGenerationStrategyName(GuidanceGenerationStrategy s) {
  switch (s) {
    case GuidanceGenerationStrategy::kAuto:
      return "auto";
    case GuidanceGenerationStrategy::kSerial:
      return "serial";
    case GuidanceGenerationStrategy::kUniformParallel:
      return "uniform";
    case GuidanceGenerationStrategy::kPartitionedParallel:
      return "partitioned";
  }
  return "unknown";
}

RRGuidance RRGuidance::Generate(const Graph& graph,
                                const std::vector<VertexId>& roots,
                                ThreadPool* pool) {
  if (roots.empty() && graph.num_vertices() > 0) {
    SLFE_LOG(Warning)
        << "RRGuidance::Generate called with an empty root set: the sweep "
           "is a no-op and disables redundancy reduction. All-vertices apps "
           "should use GenerateAllRoots or the selectors in roots.h.";
  }
  if (pool != nullptr && pool->num_threads() > 1) {
    return GeneratePartitioned(graph, roots, *pool);
  }
  return GenerateSerial(graph, roots);
}

RRGuidance RRGuidance::GenerateWithStrategy(
    const Graph& graph, const std::vector<VertexId>& roots,
    GuidanceGenerationStrategy strategy, ThreadPool* pool,
    size_t mini_chunk) {
  if (pool == nullptr || pool->num_threads() <= 1 ||
      strategy == GuidanceGenerationStrategy::kSerial) {
    return GenerateSerial(graph, roots);
  }
  switch (strategy) {
    case GuidanceGenerationStrategy::kUniformParallel:
      return GenerateParallel(graph, roots, *pool);
    case GuidanceGenerationStrategy::kAuto:
    case GuidanceGenerationStrategy::kPartitionedParallel:
    default:
      return GeneratePartitioned(graph, roots, *pool, /*dense_fraction=*/0.05,
                                 mini_chunk);
  }
}

RRGuidance RRGuidance::GenerateSerial(const Graph& graph,
                                      const std::vector<VertexId>& roots) {
  Timer timer;
  RRGuidance rrg;
  VertexId n = graph.num_vertices();
  rrg.guidance_.assign(n, VertexGuidance{});
  rrg.levels_.assign(n, kUnreachableLevel);

  // Algorithm 1, frontier form. `frontier` holds vertices first visited in
  // the previous iteration (the "active" set); every out-edge of a frontier
  // vertex bumps the destination's last_iter to the current level, and the
  // first visit fixes the destination's unweighted distance and activates
  // it. Each edge is traversed exactly once, so the sweep is O(|E|) — the
  // "negligible overhead" property the paper claims.
  std::vector<VertexId> frontier;
  frontier.reserve(roots.size());
  for (VertexId r : roots) {
    SLFE_CHECK_LT(r, n);
    if (!rrg.guidance_[r].visited) {
      rrg.guidance_[r].visited = true;
      rrg.levels_[r] = 0;
      frontier.push_back(r);
    }
  }

  const Csr& out = graph.out();
  std::vector<VertexId> next;
  uint32_t iter = 0;
  uint32_t deepest = 0;  // last level at which any lastIter was assigned
  while (!frontier.empty()) {
    ++iter;
    next.clear();
    for (VertexId src : frontier) {
      for (EdgeId e = out.begin(src); e < out.end(src); ++e) {
        VertexId dst = out.neighbor(e);
        // Iterations increase monotonically, so assignment implements the
        // paper's `if lastIter < Iter then lastIter = Iter`.
        rrg.guidance_[dst].last_iter = iter;
        deepest = iter;
        if (!rrg.guidance_[dst].visited) {
          rrg.guidance_[dst].visited = true;
          // First visit fixes the BFS level — unique per vertex, which is
          // why all strategies record bit-identical levels planes.
          rrg.levels_[dst] = iter;
          next.push_back(dst);
        }
      }
    }
    frontier.swap(next);
  }
  rrg.depth_ = deepest;
  rrg.generation_seconds_ = timer.Seconds();
  return rrg;
}

RRGuidance RRGuidance::GenerateParallel(const Graph& graph,
                                        const std::vector<VertexId>& roots,
                                        ThreadPool& pool,
                                        double dense_fraction) {
  Timer timer;
  AccumTimer bookkeeping;
  RRGuidance rrg;
  VertexId n = graph.num_vertices();
  rrg.guidance_.assign(n, VertexGuidance{});
  rrg.levels_.assign(n, kUnreachableLevel);

  Bitmap visited(n);
  std::vector<VertexId> frontier;
  frontier.reserve(roots.size());
  for (VertexId r : roots) {
    SLFE_CHECK_LT(r, n);
    if (visited.SetBit(r)) {
      rrg.levels_[r] = 0;
      frontier.push_back(r);
    }
  }

  const Csr& out = graph.out();
  const Csr& in = graph.in();
  size_t workers = pool.num_threads();
  std::vector<std::vector<VertexId>> next(workers);
  std::vector<uint64_t> edge_partial(workers, 0);
  // Set when a worker traverses any frontier edge this iteration; the last
  // iteration with a set flag is the sweep depth (matches the serial
  // `deepest = iter` assignment).
  std::vector<uint8_t> touched(workers, 0);
  Bitmap frontier_bits(n);  // dense-pull frontier membership

  uint32_t iter = 0;
  uint32_t deepest = 0;
  while (!frontier.empty()) {
    ++iter;
    const uint32_t level = iter;
    for (auto& v : next) v.clear();
    std::fill(touched.begin(), touched.end(), uint8_t{0});

    // Direction choice, exactly as ShmEngine::EdgeMap: compare the
    // frontier's outgoing edge count against |E| * dense_fraction. This
    // extra counting pass is the uniform strategy's per-iteration
    // bookkeeping cost; GeneratePartitioned fuses it into the previous
    // iteration's merge instead.
    bookkeeping.Start();
    std::fill(edge_partial.begin(), edge_partial.end(), 0);
    pool.ParallelFor(0, frontier.size(), [&](size_t w, size_t lo, size_t hi) {
      uint64_t sum = 0;
      for (size_t i = lo; i < hi; ++i) sum += out.degree(frontier[i]);
      edge_partial[w] = sum;
    });
    uint64_t frontier_edges = 0;
    for (uint64_t p : edge_partial) frontier_edges += p;
    bookkeeping.Stop();
    bool dense = ChooseDense(frontier_edges, graph.num_edges(),
                             dense_fraction);

    if (dense) {
      // Pull: every destination checks its in-neighbors for frontier
      // membership. One frontier predecessor is enough to pin
      // last_iter = iter (all writers this level would store the same
      // value), so the scan can stop at the first hit — the classic
      // bottom-up win. Destinations are partitioned across workers, so
      // the per-dst writes need no atomics.
      frontier_bits.Clear();
      pool.ParallelFor(0, frontier.size(),
                       [&](size_t, size_t lo, size_t hi) {
                         for (size_t i = lo; i < hi; ++i) {
                           frontier_bits.SetBit(frontier[i]);
                         }
                       });
      pool.ParallelFor(0, n, [&](size_t w, size_t lo, size_t hi) {
        for (size_t dv = lo; dv < hi; ++dv) {
          VertexId dst = static_cast<VertexId>(dv);
          bool hit = false;
          for (EdgeId e = in.begin(dst); e < in.end(dst); ++e) {
            if (frontier_bits.TestBit(in.neighbor(e))) {
              hit = true;
              break;
            }
          }
          if (!hit) continue;
          rrg.guidance_[dst].last_iter = level;
          touched[w] = 1;
          if (visited.SetBit(dst)) {
            // SetBit's winner is the unique discoverer, so this plain
            // store has exactly one writer (and `level` is the vertex's
            // unique BFS distance — deterministic across strategies).
            rrg.levels_[dst] = level;
            next[w].push_back(dst);
          }
        }
      });
    } else {
      // Push: frontier vertices scatter over their out-edges. Multiple
      // sources may race on one destination, but every writer stores the
      // same `level`, so a relaxed atomic store suffices; the visited
      // bitmap's fetch_or picks the unique worker that enqueues dst.
      pool.ParallelFor(0, frontier.size(), [&](size_t w, size_t lo,
                                               size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          VertexId src = frontier[i];
          for (EdgeId e = out.begin(src); e < out.end(src); ++e) {
            VertexId dst = out.neighbor(e);
            __atomic_store_n(&rrg.guidance_[dst].last_iter, level,
                             __ATOMIC_RELAXED);
            touched[w] = 1;
            if (visited.SetBit(dst)) {
              rrg.levels_[dst] = level;  // unique discoverer (SetBit winner)
              next[w].push_back(dst);
            }
          }
        }
      });
    }

    bookkeeping.Start();
    for (uint8_t t : touched) {
      if (t != 0) deepest = level;
    }
    frontier.clear();
    for (const auto& local : next) {
      frontier.insert(frontier.end(), local.begin(), local.end());
    }
    bookkeeping.Stop();
  }

  // Commit the visited bitmap into the per-vertex records.
  pool.ParallelFor(0, n, [&](size_t, size_t lo, size_t hi) {
    for (size_t v = lo; v < hi; ++v) {
      rrg.guidance_[v].visited = visited.TestBit(v);
    }
  });

  rrg.depth_ = deepest;
  rrg.generation_seconds_ = timer.Seconds();
  rrg.bookkeeping_seconds_ = bookkeeping.Seconds();
  return rrg;
}

RRGuidance RRGuidance::GeneratePartitioned(const Graph& graph,
                                           const std::vector<VertexId>& roots,
                                           ThreadPool& pool,
                                           double dense_fraction,
                                           size_t mini_chunk) {
  Timer timer;
  AccumTimer bookkeeping;
  RRGuidance rrg;
  VertexId n = graph.num_vertices();
  rrg.guidance_.assign(n, VertexGuidance{});
  rrg.levels_.assign(n, kUnreachableLevel);

  // One contiguous vertex range per worker, cut exactly where
  // DistGraph::Build would cut them for a cluster of pool-size nodes
  // (edge-balanced, so the dense-pull phase is load-balanced without
  // stealing and each worker touches only the range its socket owns).
  // Setup cost, not per-iteration bookkeeping: O(V) once, outside the
  // bookkeeping accounting so the bk columns in bench_fig8b isolate the
  // per-iteration share the ROADMAP item is about.
  size_t workers = pool.num_threads();
  std::vector<VertexRange> ranges =
      DistGraph::BuildRanges(graph, static_cast<int>(workers));

  Bitmap visited(n);
  // frontier[p] holds the frontier vertices partition p owns; the merge at
  // the end of each iteration keeps this owner bucketing, so the dense
  // phase reads NUMA-local buffers and the push phase drains own-band
  // first (WorkStealingScheduler::RunBands).
  std::vector<std::vector<VertexId>> frontier(workers);
  size_t frontier_size = 0;
  // Out-edge total of the CURRENT frontier, maintained incrementally:
  // seeded from the roots, then folded into discovery (each newly visited
  // vertex adds its out-degree as it is enqueued). This replaces the
  // uniform strategy's per-iteration counting pass.
  uint64_t frontier_edges = 0;
  const Csr& out = graph.out();
  const Csr& in = graph.in();
  for (VertexId r : roots) {
    SLFE_CHECK_LT(r, n);
    if (visited.SetBit(r)) {
      rrg.levels_[r] = 0;
      frontier[ChunkPartitioner::OwnerOf(ranges, r)].push_back(r);
      frontier_edges += out.degree(r);
      ++frontier_size;
    }
  }

  // next_local[w][p]: vertices worker w discovered that partition p owns.
  std::vector<std::vector<std::vector<VertexId>>> next_local(
      workers, std::vector<std::vector<VertexId>>(workers));
  std::vector<uint64_t> edge_sum(workers, 0);  // fused frontier-edge count
  std::vector<uint8_t> touched(workers, 0);
  Bitmap frontier_bits(n);  // dense-pull frontier membership
  WorkStealingScheduler push_scheduler(/*enable_stealing=*/true, mini_chunk);
  std::vector<size_t> band_sizes(workers);

  uint32_t iter = 0;
  uint32_t deepest = 0;
  while (frontier_size > 0) {
    ++iter;
    const uint32_t level = iter;
    for (auto& per_owner : next_local) {
      for (auto& v : per_owner) v.clear();
    }
    std::fill(edge_sum.begin(), edge_sum.end(), 0);
    std::fill(touched.begin(), touched.end(), uint8_t{0});
    bool dense = ChooseDense(frontier_edges, graph.num_edges(),
                             dense_fraction);

    if (dense) {
      // Pull: worker w scans ONLY its own vertex range, so the per-dst
      // last_iter writes need no atomics and every discovered vertex is
      // already in its owner's bucket.
      bookkeeping.Start();
      frontier_bits.Clear();
      pool.ParallelRun([&](size_t w) {
        for (VertexId v : frontier[w]) frontier_bits.SetBit(v);
      });
      bookkeeping.Stop();
      pool.ParallelRun([&](size_t w) {
        uint64_t local_edges = 0;
        for (VertexId dst = ranges[w].begin; dst < ranges[w].end; ++dst) {
          bool hit = false;
          for (EdgeId e = in.begin(dst); e < in.end(dst); ++e) {
            if (frontier_bits.TestBit(in.neighbor(e))) {
              hit = true;
              break;
            }
          }
          if (!hit) continue;
          rrg.guidance_[dst].last_iter = level;
          touched[w] = 1;
          if (visited.SetBit(dst)) {
            rrg.levels_[dst] = level;  // own-range write, no races
            next_local[w][w].push_back(dst);
            local_edges += out.degree(dst);
          }
        }
        edge_sum[w] = local_edges;
      });
    } else {
      // Push: per-partition frontier bands, own band first, stealing for
      // the tail (paper §3.6). Destinations can live anywhere, so
      // last_iter needs the same-value relaxed atomic store and
      // discoveries are routed to their owner's bucket.
      for (size_t p = 0; p < workers; ++p) band_sizes[p] = frontier[p].size();
      push_scheduler.RunBands(
          pool, band_sizes, [&](size_t w, size_t band, size_t lo, size_t hi) {
            uint64_t local_edges = 0;
            const std::vector<VertexId>& band_frontier = frontier[band];
            for (size_t i = lo; i < hi; ++i) {
              VertexId src = band_frontier[i];
              for (EdgeId e = out.begin(src); e < out.end(src); ++e) {
                VertexId dst = out.neighbor(e);
                __atomic_store_n(&rrg.guidance_[dst].last_iter, level,
                                 __ATOMIC_RELAXED);
                touched[w] = 1;
                if (visited.SetBit(dst)) {
                  rrg.levels_[dst] = level;  // unique discoverer
                  next_local[w][ChunkPartitioner::OwnerOf(ranges, dst)]
                      .push_back(dst);
                  local_edges += out.degree(dst);
                }
              }
            }
            edge_sum[w] += local_edges;  // slot w is worker w's alone
          });
    }

    // Merge, with the next iteration's frontier-edge count folded in: the
    // only per-iteration bookkeeping the partitioned sweep pays.
    bookkeeping.Start();
    for (uint8_t t : touched) {
      if (t != 0) deepest = level;
    }
    frontier_size = 0;
    pool.ParallelRun([&](size_t p) {
      frontier[p].clear();
      for (size_t w = 0; w < workers; ++w) {
        frontier[p].insert(frontier[p].end(), next_local[w][p].begin(),
                           next_local[w][p].end());
      }
    });
    for (size_t p = 0; p < workers; ++p) frontier_size += frontier[p].size();
    frontier_edges = 0;
    for (uint64_t s : edge_sum) frontier_edges += s;
    bookkeeping.Stop();
  }

  // Commit the visited bitmap into the per-vertex records, each worker
  // writing its own range.
  pool.ParallelRun([&](size_t w) {
    for (VertexId v = ranges[w].begin; v < ranges[w].end; ++v) {
      rrg.guidance_[v].visited = visited.TestBit(v);
    }
  });

  rrg.depth_ = deepest;
  rrg.generation_seconds_ = timer.Seconds();
  rrg.bookkeeping_seconds_ = bookkeeping.Seconds();
  return rrg;
}

RRGuidance RRGuidance::FromParts(std::vector<VertexGuidance> guidance,
                                 uint32_t depth) {
  RRGuidance rrg;
  rrg.guidance_ = std::move(guidance);
  rrg.depth_ = depth;
  // No levels plane (pre-levels store codec): the guidance serves runs
  // but cannot seed a Repair. Keep levels_ truly empty so has_levels()
  // stays false for |V| > 0.
  if (!rrg.guidance_.empty()) rrg.levels_.clear();
  return rrg;
}

RRGuidance RRGuidance::FromParts(std::vector<VertexGuidance> guidance,
                                 uint32_t depth,
                                 std::vector<uint32_t> levels) {
  RRGuidance rrg;
  rrg.guidance_ = std::move(guidance);
  rrg.levels_ = std::move(levels);
  rrg.depth_ = depth;
  SLFE_CHECK_EQ(rrg.levels_.size(), rrg.guidance_.size());
  return rrg;
}

RRGuidance RRGuidance::GenerateAllRoots(const Graph& graph,
                                        ThreadPool* pool) {
  // Natural propagation sources (zero-in-degree vertices, with the
  // cycle-bound fallback) — the same selector the provider layer uses.
  return Generate(graph, SelectSourceRoots(graph), pool);
}

}  // namespace slfe
