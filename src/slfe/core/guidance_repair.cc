#include <deque>
#include <string>
#include <vector>

#include "slfe/common/logging.h"
#include "slfe/common/timer.h"
#include "slfe/core/rr_guidance.h"
#include "slfe/graph/delta.h"

namespace slfe {

namespace {

constexpr uint32_t kInf = RRGuidance::kUnreachableLevel;

}  // namespace

// Incremental repair (see the contract in rr_guidance.h). Everything here
// is derived from one identity the serial sweep establishes:
//
//   level(v)     = BFS distance from the root set (kInf if unreached)
//   visited(v)   = level(v) finite
//   last_iter(v) = max{ level(u) + 1 : u in in-neighbors(v), u visited }
//                  (0 when v has no visited in-neighbor)
//   depth        = max over v of last_iter(v)
//
// so repairing levels repairs everything: visited falls out of finiteness,
// last_iter is recomputed only where an in-neighbor's level (or the
// in-edge set itself) changed, and depth is one O(V) max scan.
Result<RRGuidance> RRGuidance::Repair(const Graph& new_graph,
                                      const GraphDelta& delta,
                                      const RRGuidance& old_guidance,
                                      const std::vector<VertexId>& old_roots,
                                      const std::vector<VertexId>& new_roots,
                                      double max_affected_fraction,
                                      GuidanceRepairStats* stats) {
  Timer timer;
  GuidanceRepairStats local;

  if (!old_guidance.has_levels()) {
    return Status::FailedPrecondition(
        "old guidance carries no levels plane (pre-levels store codec); "
        "repair needs BFS levels — regenerate instead");
  }
  const VertexId n_new = new_graph.num_vertices();
  const VertexId n_old = old_guidance.num_vertices();
  if (n_new < n_old) {
    return Status::FailedPrecondition(
        "new graph has fewer vertices (" + std::to_string(n_new) +
        ") than the old guidance (" + std::to_string(n_old) +
        "); deltas never shrink the vertex set");
  }

  // Working distances: old levels, extended with kInf for grown vertices.
  // Phase A discards entries into kInf; Phase B re-settles them.
  std::vector<uint32_t> dist(n_new, kInf);
  for (VertexId v = 0; v < n_old; ++v) dist[v] = old_guidance.level(v);
  // Old levels again, unmodified, for change detection (dist mutates).
  auto old_level = [&](VertexId v) -> uint32_t {
    return v < n_old ? old_guidance.level(v) : kInf;
  };

  std::vector<uint8_t> is_new_root(n_new, 0);
  for (VertexId r : new_roots) {
    SLFE_CHECK_LT(r, n_new);
    is_new_root[r] = 1;
  }

  const Csr& in = new_graph.in();
  const Csr& out = new_graph.out();

  // ---- Phase A: invalidation cascade -------------------------------------
  // A vertex's old level is *supported* in the new graph iff it is a level-0
  // vertex that is still a root, or some in-neighbor (in the NEW adjacency,
  // so inserted edges count) with an intact old level sits exactly one level
  // above it. Seeds are the only places support can have broken outright:
  // destinations of deleted edges that rode the deleted edge, and removed
  // roots. Every later loss of support is a cascade: when v's level is
  // discarded, exactly the out-neighbors whose old level was level(v)+1
  // could have been depending on it, so they re-check.
  std::vector<uint8_t> affected(n_new, 0);
  std::vector<uint8_t> in_queue(n_new, 0);
  std::deque<VertexId> queue;
  auto enqueue = [&](VertexId v) {
    if (affected[v] != 0 || in_queue[v] != 0 || dist[v] == kInf) return;
    in_queue[v] = 1;
    queue.push_back(v);
  };

  for (const auto& [u, v] : delta.erase) {
    if (u >= n_old || v >= n_old) continue;  // never carried a level
    uint32_t du = old_guidance.level(u);
    if (du != kInf && old_guidance.level(v) == du + 1) enqueue(v);
  }
  for (VertexId r : old_roots) {
    if (r < n_new && is_new_root[r] == 0) enqueue(r);
  }
  local.seeds = queue.size();

  const uint64_t affected_limit =
      max_affected_fraction >= 1.0
          ? UINT64_MAX
          : static_cast<uint64_t>(max_affected_fraction *
                                  static_cast<double>(n_new));
  std::vector<VertexId> affected_list;
  while (!queue.empty()) {
    VertexId v = queue.front();
    queue.pop_front();
    in_queue[v] = 0;
    if (affected[v] != 0) continue;
    const uint32_t d = dist[v];
    if (d == kInf) continue;
    bool supported = (d == 0 && is_new_root[v] != 0);
    if (!supported && d > 0) {
      for (EdgeId e = in.begin(v); e < in.end(v); ++e) {
        uint32_t du = dist[in.neighbor(e)];  // kInf for cascaded vertices
        if (du != kInf && du + 1 == d) {
          supported = true;
          break;
        }
      }
    }
    if (supported) continue;
    affected[v] = 1;
    affected_list.push_back(v);
    // Re-check dependents while v's old level is still visible as `d`.
    for (EdgeId e = out.begin(v); e < out.end(v); ++e) {
      VertexId x = out.neighbor(e);
      if (affected[x] == 0 && dist[x] == d + 1) enqueue(x);
    }
    dist[v] = kInf;
    if (affected_list.size() > affected_limit) {
      return Status::FailedPrecondition(
          "repair abandoned: invalidation cascade exceeded " +
          std::to_string(max_affected_fraction) + " of |V| (" +
          std::to_string(affected_list.size()) + "/" + std::to_string(n_new) +
          " vertices) — a full regeneration is cheaper");
    }
  }
  local.invalidated = affected_list.size();

  // ---- Phase B: bucketed re-settlement -----------------------------------
  // Level-synchronous BFS over the damaged region plus any improvements:
  // seeds are (a) every new root at level 0 (covers added roots and roots
  // that fell out during Phase A), (b) the unaffected fringe one step into
  // each invalidated vertex, (c) inserted edges from intact sources.
  // Monotone relaxation with ascending buckets: the first settlement of a
  // vertex is its final (minimal) level, exactly what the full sweep's
  // first-visit assignment produces — which is why the result is
  // bit-identical, not merely equivalent.
  std::vector<std::vector<VertexId>> buckets;
  auto relax = [&](VertexId v, uint32_t d) {
    if (d < dist[v]) {
      dist[v] = d;
      if (buckets.size() <= d) buckets.resize(d + 1);
      buckets[d].push_back(v);
    }
  };
  for (VertexId r : new_roots) relax(r, 0);
  for (VertexId v : affected_list) {
    for (EdgeId e = in.begin(v); e < in.end(v); ++e) {
      uint32_t du = dist[in.neighbor(e)];
      if (du != kInf) relax(v, du + 1);
    }
  }
  for (const Edge& e : delta.insert) {
    if (e.src >= n_new || e.dst >= n_new) continue;
    if (dist[e.src] != kInf) relax(e.dst, dist[e.src] + 1);
  }

  std::vector<VertexId> changed;  // final level != old level
  for (uint32_t d = 0; d < buckets.size(); ++d) {
    // Index loop: relax() may grow `buckets` (reallocating the outer
    // vector) while this level drains, so re-index on every access.
    for (size_t i = 0; i < buckets[d].size(); ++i) {
      VertexId v = buckets[d][i];
      if (dist[v] != d) continue;  // stale entry, improved since
      ++local.recomputed;
      if (d != old_level(v)) changed.push_back(v);
      for (EdgeId e = out.begin(v); e < out.end(v); ++e) {
        relax(out.neighbor(e), d + 1);
      }
    }
  }
  // Invalidated vertices the re-settlement never reached went
  // finite -> unreachable; settled ones were classified above.
  for (VertexId v : affected_list) {
    if (dist[v] == kInf && old_level(v) != kInf) changed.push_back(v);
  }
  local.level_changes = changed.size();

  // ---- Phase C: patch the derived planes ---------------------------------
  std::vector<VertexGuidance> records(n_new);
  for (VertexId v = 0; v < n_old; ++v) records[v] = old_guidance.raw()[v];
  for (VertexId v : changed) records[v].visited = dist[v] != kInf;

  // last_iter must be re-derived exactly where its inputs moved: the
  // destinations of every delta edge (their in-edge multiset changed) and
  // the out-neighbors of every level-changed vertex (an input level
  // moved). Everything else keeps its old value byte-for-byte.
  std::vector<uint8_t> in_patch(n_new, 0);
  std::vector<VertexId> patch;
  auto add_patch = [&](VertexId p) {
    if (in_patch[p] == 0) {
      in_patch[p] = 1;
      patch.push_back(p);
    }
  };
  for (const auto& [u, v] : delta.erase) {
    (void)u;
    if (v < n_new) add_patch(v);
  }
  for (const Edge& e : delta.insert) {
    if (e.dst < n_new) add_patch(e.dst);
  }
  for (VertexId v : changed) {
    for (EdgeId e = out.begin(v); e < out.end(v); ++e) {
      add_patch(out.neighbor(e));
    }
  }
  for (VertexId p : patch) {
    uint32_t li = 0;
    for (EdgeId e = in.begin(p); e < in.end(p); ++e) {
      uint32_t du = dist[in.neighbor(e)];
      if (du != kInf && du + 1 > li) li = du + 1;
    }
    records[p].last_iter = li;
  }
  local.patched = patch.size();

  uint32_t depth = 0;
  for (VertexId v = 0; v < n_new; ++v) {
    if (records[v].last_iter > depth) depth = records[v].last_iter;
  }

  local.repair_seconds = timer.Seconds();
  if (stats != nullptr) *stats = local;
  return RRGuidance::FromParts(std::move(records), depth, std::move(dist));
}

}  // namespace slfe
