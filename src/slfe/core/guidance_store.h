#ifndef SLFE_CORE_GUIDANCE_STORE_H_
#define SLFE_CORE_GUIDANCE_STORE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "slfe/common/status.h"
#include "slfe/core/guidance_cache.h"
#include "slfe/core/rr_guidance.h"

namespace slfe {

/// Persistence counters, split by direction so benches can report the
/// amortization that survives a restart (saves during the warm run, loads
/// instead of regenerations after it).
struct GuidanceStoreStats {
  uint64_t saves = 0;
  uint64_t loads = 0;        ///< successful reloads from disk
  uint64_t load_misses = 0;  ///< no file for the key (a cold store)
  uint64_t load_errors = 0;  ///< file present but rejected (see Load)
  uint64_t sweeps = 0;       ///< GC sweeps executed (construction + manual)
  uint64_t gc_removed = 0;   ///< entries removed by GC (TTL + budget)
  uint64_t gc_bytes_reclaimed = 0;
};

/// Lifecycle policy for the on-disk entries. All limits are opt-in: the
/// zero defaults keep every entry forever (the pre-GC behavior). With any
/// limit set, a sweep runs when the store is constructed over the
/// directory and whenever Sweep() is called explicitly — there is no
/// background thread, so multi-tenant deployments sweep from whatever
/// maintenance cadence they already have.
struct GuidanceStoreGcOptions {
  /// Entries whose last use is older than this are removed first.
  /// 0 = no TTL.
  double ttl_seconds = 0;
  /// After TTL expiry, oldest-first eviction until the remaining entries
  /// fit both budgets. 0 = unlimited.
  uint64_t max_bytes = 0;
  uint64_t max_entries = 0;
  /// Run a sweep from the constructor (only meaningful when some limit
  /// above is set). Disable for tests that stage files before sweeping.
  bool sweep_on_construction = true;

  bool HasLimits() const {
    return ttl_seconds > 0 || max_bytes > 0 || max_entries > 0;
  }
};

/// What one GC sweep did — returned by Sweep() so callers (and the GC
/// tests) can assert exactly which work happened.
struct GuidanceStoreSweepStats {
  uint64_t scanned = 0;         ///< *.rrg entries examined
  uint64_t ttl_removed = 0;     ///< removed because older than the TTL
  uint64_t budget_removed = 0;  ///< removed (oldest first) to fit budgets
  uint64_t bytes_reclaimed = 0;
  uint64_t remaining_entries = 0;
  uint64_t remaining_bytes = 0;
};

/// Durable spill layer for the GuidanceCache: one file per cache entry,
/// named by the full cache key (graph fingerprint + roots digest + root
/// count), living in a caller-chosen directory — typically next to the ooc
/// shard files, so a graph's preprocessing artifacts travel together. This
/// is what lets the paper's §4.4 amortization (~8.7 jobs per graph) survive
/// process restarts: the first process pays the O(|E|) sweep, every later
/// process pays one sequential file read.
///
/// ## File format (version 1, little-endian, `*.rrg`)
///
///   [StoreHeader — 56 bytes]
///     magic              u32   0x53'4C'46'47 ("SLFG")
///     version            u32   1
///     graph_fingerprint  u64   ┐
///     roots_digest       u64   ├ must equal the requested key on load
///     num_roots          u64   ┘
///     num_vertices       u32
///     depth              u32   sweep depth (RRGuidance::depth())
///     payload_bytes      u64   5 * num_vertices
///     payload_checksum   u64   FNV-1a over the 48 header bytes above AND
///                              the payload (depth etc. have no other
///                              witness, so the checksum must cover them)
///   [payload]
///     last_iter          u32 * num_vertices
///     visited            u8  * num_vertices
///
/// The two per-vertex arrays are written as separate packed planes (not the
/// in-memory VertexGuidance struct) so the on-disk layout is independent of
/// compiler padding. Load rejects — with kCorruption/kIOError, never a
/// partial object, and with the real file size validated against the
/// header BEFORE any header-derived allocation — any file with a wrong
/// magic/version, a key mismatch (hash-collision guard), a size mismatch,
/// truncation or trailing bytes, or a checksum mismatch. Writes go to a
/// uniquely-named `.tmp.<pid>.<n>` sibling first and rename into place, so
/// a crash mid-save — or two processes saving the same key into a shared
/// store directory — can only ever leave a temp file behind, never a torn
/// entry; orphaned temp files are swept by the next GuidanceStore
/// constructed over the directory.
///
/// Thread-safe: per-key operations serialize on one mutex (guidance files
/// are a few MB at most and the provider's singleflight already coalesces
/// concurrent generation, so finer-grained locking has nothing to win).
class GuidanceStore {
 public:
  static constexpr uint32_t kMagic = 0x53'4C'46'47;  // "SLFG"
  static constexpr uint32_t kFormatVersion = 1;

  /// Uses `dir` (created if needed) for all entry files. When `gc` sets
  /// any limit (and sweep_on_construction is left on), the constructor
  /// runs one Sweep() after reclaiming orphaned temp files, so a store
  /// opened over a stale multi-tenant directory starts within budget.
  explicit GuidanceStore(std::string dir, GuidanceStoreGcOptions gc = {});

  const std::string& dir() const { return dir_; }
  const GuidanceStoreGcOptions& gc_options() const { return gc_; }

  /// Garbage-collects on-disk entries per the construction-time policy:
  /// first every entry whose age (now - mtime) exceeds the TTL, then —
  /// still over max_bytes/max_entries — the least-recently-used entries,
  /// oldest mtime first, until both budgets hold. mtime approximates
  /// recency because Save rewrites the file and a successful Load
  /// refreshes the timestamp, so live entries stay young. Entries inside
  /// budget and TTL are never touched. Safe to call concurrently with
  /// Save/Load (everything serializes on the store mutex); removing an
  /// entry a cache still holds in memory is benign — the next memory miss
  /// regenerates and re-saves it.
  GuidanceStoreSweepStats Sweep();

  /// `<dir>/g<fingerprint>_r<digest>_n<num_roots>.rrg` (hex fields). The
  /// fingerprint comes first so directory scans can group a graph's
  /// entries (RemoveGraph relies on this prefix).
  std::string EntryPath(const GuidanceKey& key) const;

  /// Writes (or atomically replaces) the entry for `key`.
  Status Save(const GuidanceKey& key, const RRGuidance& guidance);

  /// Reads the entry for `key` back into a fresh RRGuidance. Returns
  /// kNotFound for an absent file, kCorruption for a failed validation
  /// (wrong magic/version/key/checksum, truncation), kIOError for read
  /// failures.
  Result<RRGuidance> Load(const GuidanceKey& key);

  /// True iff an entry file exists for `key` (no validation).
  bool Contains(const GuidanceKey& key) const;

  /// Removes the entry for `key`; OK if it did not exist.
  Status Remove(const GuidanceKey& key);

  /// Removes every entry generated for `graph_fingerprint` (the persistent
  /// counterpart of GuidanceCache::InvalidateGraph). Returns the number of
  /// files removed.
  Result<size_t> RemoveGraph(uint64_t graph_fingerprint);

  /// Removes all `*.rrg` entries (tests / cache-busting).
  Status RemoveAll();

  GuidanceStoreStats stats() const;

 private:
  GuidanceStoreSweepStats SweepLocked();

  std::string dir_;
  GuidanceStoreGcOptions gc_;
  mutable std::mutex mu_;
  GuidanceStoreStats stats_;
};

}  // namespace slfe

#endif  // SLFE_CORE_GUIDANCE_STORE_H_
