#ifndef SLFE_CORE_GUIDANCE_STORE_H_
#define SLFE_CORE_GUIDANCE_STORE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "slfe/common/status.h"
#include "slfe/core/guidance_cache.h"
#include "slfe/core/rr_guidance.h"

namespace slfe {

/// How the per-vertex payload planes are encoded in a `.rrg` file.
/// Carried in bits 16-23 of the header's version field, so a version-1
/// reader that predates the codec byte sees a nonzero "version" and
/// rejects cleanly rather than misparsing the payload.
enum class GuidanceCodec : uint8_t {
  /// last_iter as u32 per vertex (5 bytes/vertex total) — the original
  /// version-1 layout; a plain version field of 1 IS this codec.
  kRawU32 = 0,
  /// last_iter packed to u8 per vertex (2 bytes/vertex total). RR levels
  /// are bounded by the sweep depth, which is single-digit in practice
  /// (the paper sweeps to depth 3), so Save picks this whenever every
  /// level fits a byte.
  kPackedU8 = 1,
  /// kRawU32 plus a third plane of BFS levels as u32 per vertex (9
  /// bytes/vertex). Levels make the stored entry repairable (see
  /// RRGuidance::Repair); entries without them stay loadable but force a
  /// full regeneration after a mutation.
  kRawU32Levels = 2,
  /// kPackedU8 plus byte-wide BFS levels (3 bytes/vertex); 0xFF encodes
  /// "unreachable". Eligible only when depth <= 254 — every finite level
  /// is bounded by the depth, so the sentinel can never collide.
  kPackedU8Levels = 3,
};

constexpr bool CodecHasLevels(GuidanceCodec codec) {
  return codec == GuidanceCodec::kRawU32Levels ||
         codec == GuidanceCodec::kPackedU8Levels;
}

/// Persistence counters, split by direction so benches can report the
/// amortization that survives a restart (saves during the warm run, loads
/// instead of regenerations after it).
struct GuidanceStoreStats {
  uint64_t saves = 0;
  uint64_t loads = 0;        ///< successful reloads from disk
  uint64_t load_misses = 0;  ///< no file for the key (a cold store)
  uint64_t load_errors = 0;  ///< file present but rejected (see Load)
  /// Rejections (also counted in load_errors) whose specific reason is an
  /// unknown codec byte — a NEWER writer's file, not damage. Split out so
  /// operators can tell "upgrade the reader" from "disk corruption".
  uint64_t codec_errors = 0;
  uint64_t sweeps = 0;       ///< GC sweeps executed (construction + manual)
  uint64_t gc_removed = 0;   ///< entries removed by GC (TTL + budget)
  uint64_t gc_bytes_reclaimed = 0;
};

/// Per-tenant slice of the store budget (JobService wires these from its
/// configuration). Entries are attributed to tenants by graph fingerprint
/// (AssignGraphTenant); unattributed entries are only subject to the
/// global limits.
struct GuidanceTenantBudget {
  uint64_t max_bytes = 0;    ///< 0 = unlimited
  uint64_t max_entries = 0;  ///< 0 = unlimited

  bool HasLimits() const { return max_bytes > 0 || max_entries > 0; }
};

/// Lifecycle policy for the on-disk entries. All limits are opt-in: the
/// zero defaults keep every entry forever (the pre-GC behavior). With any
/// limit set, a sweep runs when the store is constructed over the
/// directory and whenever Sweep() is called explicitly — there is no
/// background thread here; the long-lived JobService drives Sweep() from
/// its maintenance loop, and one-shot processes sweep at construction.
struct GuidanceStoreGcOptions {
  /// Entries whose last use is older than this are removed first.
  /// 0 = no TTL.
  double ttl_seconds = 0;
  /// After TTL expiry, oldest-first eviction until the remaining entries
  /// fit both budgets. 0 = unlimited.
  uint64_t max_bytes = 0;
  uint64_t max_entries = 0;
  /// Per-tenant byte/entry budgets, enforced between the TTL and global
  /// phases (LRU-by-mtime within the tenant's entries). Keyed by tenant
  /// id; SetTenantBudget adds/replaces entries at runtime.
  std::map<std::string, GuidanceTenantBudget> tenant_budgets;
  /// Hotness oracle for the budget phases' eviction ORDER. When set, a
  /// sweep evicts coldest-first — ascending hotness(graph_fingerprint),
  /// with the (mtime, name) LRU order breaking hotness ties — so a
  /// stale-but-hot graph outlives a fresh-but-cold one. The JobService
  /// wires this to its request-stream sketch (HotnessTracker estimates).
  /// TTL expiry (phase 1) stays purely age-based, pinning is unchanged,
  /// and nullptr preserves the historic pure-mtime LRU. Not a limit:
  /// setting only this never causes a sweep to remove anything.
  std::function<uint64_t(uint64_t graph_fingerprint)> hotness;
  /// Run a sweep from the constructor (only meaningful when some limit
  /// above is set). Disable for tests that stage files before sweeping.
  bool sweep_on_construction = true;

  bool HasLimits() const {
    return ttl_seconds > 0 || max_bytes > 0 || max_entries > 0 ||
           !tenant_budgets.empty();
  }
};

/// What one GC sweep did — returned by Sweep() so callers (and the GC
/// tests) can assert exactly which work happened.
struct GuidanceStoreSweepStats {
  uint64_t scanned = 0;         ///< *.rrg entries examined
  uint64_t ttl_removed = 0;     ///< removed because older than the TTL
  uint64_t tenant_removed = 0;  ///< removed to fit a per-tenant budget
  uint64_t budget_removed = 0;  ///< removed (oldest first) to fit the
                                ///< global budgets
  uint64_t pinned_spared = 0;   ///< would-be victims spared because their
                                ///< graph is pinned by an in-flight job
  uint64_t bytes_reclaimed = 0;
  uint64_t remaining_entries = 0;
  uint64_t remaining_bytes = 0;
};

/// Durable spill layer for the GuidanceCache: one file per cache entry,
/// named by the full cache key (graph fingerprint + roots digest + root
/// count), living in a caller-chosen directory — typically next to the ooc
/// shard files, so a graph's preprocessing artifacts travel together. This
/// is what lets the paper's §4.4 amortization (~8.7 jobs per graph) survive
/// process restarts: the first process pays the O(|E|) sweep, every later
/// process pays one sequential file read.
///
/// ## File format (version 1, little-endian, `*.rrg`)
///
///   [StoreHeader — 56 bytes]
///     magic              u32   0x53'4C'46'47 ("SLFG")
///     version            u32   low 16 bits: format version (1);
///                              bits 16-23: GuidanceCodec byte;
///                              bits 24-31: must be 0
///     graph_fingerprint  u64   ┐
///     roots_digest       u64   ├ must equal the requested key on load
///     num_roots          u64   ┘
///     num_vertices       u32
///     depth              u32   sweep depth (RRGuidance::depth())
///     payload_bytes      u64   PayloadBytesPerVertex(codec) * num_vertices
///     payload_checksum   u64   FNV-1a over the 48 header bytes above AND
///                              the payload (depth etc. have no other
///                              witness, so the checksum must cover them)
///   [payload]  (packed planes; widths are the codec's)
///     last_iter          u32 * num_vertices   (kRawU32, kRawU32Levels)
///                     or u8  * num_vertices   (kPackedU8, kPackedU8Levels)
///     visited            u8  * num_vertices
///     levels             u32 * num_vertices   (kRawU32Levels)
///                     or u8  * num_vertices   (kPackedU8Levels,
///                                              0xFF = unreachable)
///
/// Codec negotiation: Save prefers a levels-bearing codec whenever the
/// guidance carries its levels plane (generated or repaired in-process;
/// levels are what make the entry repairable after a graph mutation), and
/// within each family packs to bytes whenever every value fits — for the
/// levels family that means depth <= 254, reserving 0xFF as the
/// unreachable sentinel. Load dispatches on the codec byte and accepts
/// all four, so pre-codec files (a plain version field of 1 == kRawU32)
/// stay loadable forever; a levels-less entry loads into a guidance with
/// has_levels() == false, which the repair path treats as "regenerate".
/// An unknown codec byte is rejected with a distinct "unsupported
/// guidance codec" reason and counted in stats().codec_errors — it means
/// a newer writer, not a damaged file, and deleting the entry would be
/// the wrong fix.
///
/// The two per-vertex arrays are written as separate packed planes (not the
/// in-memory VertexGuidance struct) so the on-disk layout is independent of
/// compiler padding. Load rejects — with kCorruption/kIOError, never a
/// partial object, and with the real file size validated against the
/// header BEFORE any header-derived allocation — any file with a wrong
/// magic/version, a key mismatch (hash-collision guard), a size mismatch,
/// truncation or trailing bytes, or a checksum mismatch. Writes go to a
/// uniquely-named `.tmp.<pid>.<n>` sibling first and rename into place, so
/// a crash mid-save — or two processes saving the same key into a shared
/// store directory — can only ever leave a temp file behind, never a torn
/// entry; orphaned temp files are swept by the next GuidanceStore
/// constructed over the directory.
///
/// Thread-safe: per-key operations serialize on one mutex (guidance files
/// are a few MB at most and the provider's singleflight already coalesces
/// concurrent generation, so finer-grained locking has nothing to win).
class GuidanceStore {
 public:
  static constexpr uint32_t kMagic = 0x53'4C'46'47;  // "SLFG"
  static constexpr uint32_t kFormatVersion = 1;
  /// kRawU32 payload bytes per vertex (the last_iter + visited planes).
  /// Accounting layers (the JobService's per-tenant guidance_bytes) meter
  /// with this codec-independent upper bound — it measures logical
  /// guidance volume, not on-disk bytes, which the codec may shrink.
  static constexpr uint64_t kPayloadBytesPerVertex =
      sizeof(uint32_t) + sizeof(uint8_t);
  /// kPackedU8 payload bytes per vertex (both planes byte-wide).
  static constexpr uint64_t kPackedPayloadBytesPerVertex =
      sizeof(uint8_t) + sizeof(uint8_t);
  /// kRawU32Levels payload bytes per vertex (u32 last_iter + u8 visited +
  /// u32 levels).
  static constexpr uint64_t kRawLevelsPayloadBytesPerVertex =
      sizeof(uint32_t) + sizeof(uint8_t) + sizeof(uint32_t);
  /// kPackedU8Levels payload bytes per vertex (all three planes byte-wide).
  static constexpr uint64_t kPackedLevelsPayloadBytesPerVertex =
      sizeof(uint8_t) + sizeof(uint8_t) + sizeof(uint8_t);

  static constexpr uint64_t PayloadBytesPerVertex(GuidanceCodec codec) {
    switch (codec) {
      case GuidanceCodec::kPackedU8:
        return kPackedPayloadBytesPerVertex;
      case GuidanceCodec::kRawU32Levels:
        return kRawLevelsPayloadBytesPerVertex;
      case GuidanceCodec::kPackedU8Levels:
        return kPackedLevelsPayloadBytesPerVertex;
      case GuidanceCodec::kRawU32:
      default:
        return kPayloadBytesPerVertex;
    }
  }

  /// Uses `dir` (created if needed) for all entry files. When `gc` sets
  /// any limit (and sweep_on_construction is left on), the constructor
  /// runs one Sweep() after reclaiming orphaned temp files, so a store
  /// opened over a stale multi-tenant directory starts within budget.
  explicit GuidanceStore(std::string dir, GuidanceStoreGcOptions gc = {});

  const std::string& dir() const { return dir_; }
  const GuidanceStoreGcOptions& gc_options() const { return gc_; }

  /// Garbage-collects on-disk entries in three phases: (1) every entry
  /// whose age (now - mtime) exceeds the TTL; (2) for each tenant with a
  /// budget, the tenant's least-recently-used entries until its byte/entry
  /// budgets hold; (3) the globally least-recently-used entries until the
  /// global budgets hold. mtime approximates recency because Save rewrites
  /// the file and a successful Load refreshes the timestamp, so live
  /// entries stay young. Entries whose graph fingerprint is pinned
  /// (PinGraph — an in-flight job is using that graph's guidance) are
  /// never removed in any phase; they still count toward usage, and each
  /// spared would-be victim is reported in pinned_spared. Entries inside
  /// budget and TTL are never touched. Safe to call concurrently with
  /// Save/Load (everything serializes on the store mutex); removing an
  /// entry a cache still holds in memory is benign — the next memory miss
  /// regenerates and re-saves it.
  GuidanceStoreSweepStats Sweep();

  /// Attributes every entry of `graph_fingerprint` to `tenant` for the
  /// per-tenant budget phase (phase 2). The JobService records this at
  /// submission time; re-assignment overwrites (last submitter owns the
  /// graph's storage). An empty tenant removes the attribution.
  void AssignGraphTenant(uint64_t graph_fingerprint, const std::string& tenant);

  /// The tenant `graph_fingerprint` is attributed to ("" = unattributed).
  std::string GraphTenant(uint64_t graph_fingerprint) const;

  /// Adds or replaces `tenant`'s budget at runtime (construction-time
  /// budgets come in via GuidanceStoreGcOptions::tenant_budgets). A budget
  /// with no limits removes the tenant's entry.
  void SetTenantBudget(const std::string& tenant,
                       const GuidanceTenantBudget& budget);

  /// Marks `graph_fingerprint`'s entries as in use by a running job:
  /// pinned graphs survive every sweep phase. Refcounted — each Pin needs
  /// a matching Unpin; the JobService pins for the duration of each
  /// guidance-using job.
  void PinGraph(uint64_t graph_fingerprint);
  void UnpinGraph(uint64_t graph_fingerprint);

  /// Number of distinct currently pinned graphs (diagnostics/tests).
  size_t pinned_graphs() const;

  /// `<dir>/g<fingerprint>_r<digest>_n<num_roots>.rrg` (hex fields). The
  /// fingerprint comes first so directory scans can group a graph's
  /// entries (RemoveGraph relies on this prefix).
  std::string EntryPath(const GuidanceKey& key) const;

  /// Writes (or atomically replaces) the entry for `key`.
  Status Save(const GuidanceKey& key, const RRGuidance& guidance);

  /// Reads the entry for `key` back into a fresh RRGuidance. Returns
  /// kNotFound for an absent file, kCorruption for a failed validation
  /// (wrong magic/version/key/checksum, truncation), kIOError for read
  /// failures.
  Result<RRGuidance> Load(const GuidanceKey& key);

  /// True iff an entry file exists for `key` (no validation).
  bool Contains(const GuidanceKey& key) const;

  /// Removes the entry for `key`; OK if it did not exist.
  Status Remove(const GuidanceKey& key);

  /// Removes every entry generated for `graph_fingerprint` (the persistent
  /// counterpart of GuidanceCache::InvalidateGraph). Returns the number of
  /// files removed. Matches by file-name prefix, never by content, so
  /// entries of EVERY codec — including unknown codec bytes written by a
  /// newer build — are invalidated together; a stale-graph purge must not
  /// leave foreign-codec leftovers behind.
  Result<size_t> RemoveGraph(uint64_t graph_fingerprint);

  /// Removes all `*.rrg` entries regardless of codec (tests /
  /// cache-busting).
  Status RemoveAll();

  GuidanceStoreStats stats() const;

 private:
  GuidanceStoreSweepStats SweepLocked();

  std::string dir_;
  GuidanceStoreGcOptions gc_;
  mutable std::mutex mu_;
  GuidanceStoreStats stats_;
  /// Graph fingerprint -> owning tenant (phase-2 attribution).
  std::unordered_map<uint64_t, std::string> graph_tenant_;
  /// Graph fingerprint -> pin refcount (in-flight jobs).
  std::unordered_map<uint64_t, uint32_t> pins_;
};

}  // namespace slfe

#endif  // SLFE_CORE_GUIDANCE_STORE_H_
