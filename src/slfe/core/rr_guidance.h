#ifndef SLFE_CORE_RR_GUIDANCE_H_
#define SLFE_CORE_RR_GUIDANCE_H_

#include <cstdint>
#include <vector>

#include "slfe/common/thread_pool.h"
#include "slfe/common/timer.h"
#include "slfe/graph/graph.h"
#include "slfe/graph/types.h"

namespace slfe {

/// Redundancy-reduction guidance for one vertex (the paper's `struct inf`):
/// `last_iter` is the last propagation level at which the vertex can
/// receive an update from an active predecessor in an unweighted
/// label-propagation sweep; `visited` marks reachability from any root.
struct VertexGuidance {
  uint32_t last_iter = 0;
  bool visited = false;
};

/// Result of the preprocessing stage (paper Algorithm 1): per-vertex
/// propagation guidance plus the cost of producing it (Fig. 8 overhead).
class RRGuidance {
 public:
  RRGuidance() = default;

  /// Generates guidance for `graph` with the given root set. All edge
  /// weights are treated as 1 so the sweep captures pure topology; the
  /// `visited` flag limits each vertex to one distance computation, which
  /// is what makes the preprocessing "extremely low overhead" (§3.2).
  ///
  /// For single-source apps (SSSP/WP) pass the query root. For apps whose
  /// propagation starts everywhere (CC/PR/TR) the root set must still name
  /// actual propagation sources — use GenerateAllRoots, or the selectors in
  /// roots.h. An empty root set makes the sweep a no-op (depth 0, nothing
  /// visited, all-zero lastIter): legal, but it disables all redundancy
  /// reduction for that run, so Generate warns when it sees one.
  ///
  /// When `pool` is non-null (and has more than one worker) the sweep runs
  /// frontier-parallel; results are bit-identical to the serial reference.
  static RRGuidance Generate(const Graph& graph,
                             const std::vector<VertexId>& roots,
                             ThreadPool* pool = nullptr);

  /// The single-threaded reference sweep (paper Algorithm 1, frontier
  /// form). Kept as the equivalence baseline for GenerateParallel.
  static RRGuidance GenerateSerial(const Graph& graph,
                                   const std::vector<VertexId>& roots);

  /// Frontier-parallel sweep over `pool`: per-iteration sparse-push /
  /// dense-pull direction switching (the Ligra heuristic ShmEngine::EdgeMap
  /// uses) with an atomic visited Bitmap. Produces exactly the serial
  /// sweep's last_iter / visited / depth.
  static RRGuidance GenerateParallel(const Graph& graph,
                                     const std::vector<VertexId>& roots,
                                     ThreadPool& pool,
                                     double dense_fraction = 0.05);

  /// Convenience: sweep from the graph's natural propagation sources
  /// (zero-in-degree vertices, falling back to vertex 0 on cycle-bound
  /// graphs) — the entry point for all-vertices apps (CC/PR-style).
  static RRGuidance GenerateAllRoots(const Graph& graph,
                                     ThreadPool* pool = nullptr);

  /// Reassembles a guidance object from previously generated parts — the
  /// deserialization entry point for GuidanceStore. `generation_seconds` is
  /// zero: a reloaded guidance paid no sweep cost (the load cost is
  /// accounted by the acquiring layer instead).
  static RRGuidance FromParts(std::vector<VertexGuidance> guidance,
                              uint32_t depth);

  bool empty() const { return guidance_.empty(); }
  VertexId num_vertices() const {
    return static_cast<VertexId>(guidance_.size());
  }

  uint32_t last_iter(VertexId v) const { return guidance_[v].last_iter; }
  bool visited(VertexId v) const { return guidance_[v].visited; }

  /// Number of label-propagation iterations the sweep took.
  uint32_t depth() const { return depth_; }

  /// Wall time spent generating the guidance (Fig. 8 numerator).
  double generation_seconds() const { return generation_seconds_; }

  /// The guidance is reusable across applications on the same graph
  /// (paper §4.4: Facebook runs ~8.7 jobs per graph); GuidanceCache /
  /// GuidanceProvider realize that amortization, keyed by
  /// (graph fingerprint, root set).
  const std::vector<VertexGuidance>& raw() const { return guidance_; }

 private:
  std::vector<VertexGuidance> guidance_;
  uint32_t depth_ = 0;
  double generation_seconds_ = 0;
};

/// Stability horizon for "finish early" (Algorithm 5): how many
/// consecutive exactly-stable rounds vertex v needs before it may freeze.
/// Shared by every arithmetic consumer (ArithRunner, OocPrGuided) so the
/// rules stay in one place:
///  * unvisited vertices (the guidance roots did not reach them) never
///    freeze;
///  * the horizon is lastIter + 1, because guidance levels are
///    propagation distances while a source's own first value change only
///    lands at iteration 1 — influence can arrive one iteration after
///    lastIter (on a chain, a vertex stable since the start would
///    otherwise freeze exactly one iteration before the update wave
///    reaches it);
///  * never below `min_rounds`, guarding small-lastIter vertices on
///    cycle-bound graphs from freezing on a coincidental stable streak.
inline uint64_t StabilityHorizon(const RRGuidance* guidance, VertexId v,
                                 uint64_t min_rounds) {
  if (guidance == nullptr || !guidance->visited(v)) return UINT64_MAX;
  uint64_t li = static_cast<uint64_t>(guidance->last_iter(v)) + 1;
  return li < min_rounds ? min_rounds : li;
}

}  // namespace slfe

#endif  // SLFE_CORE_RR_GUIDANCE_H_
