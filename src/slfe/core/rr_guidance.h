#ifndef SLFE_CORE_RR_GUIDANCE_H_
#define SLFE_CORE_RR_GUIDANCE_H_

#include <cstdint>
#include <vector>

#include "slfe/common/timer.h"
#include "slfe/graph/graph.h"
#include "slfe/graph/types.h"

namespace slfe {

/// Redundancy-reduction guidance for one vertex (the paper's `struct inf`):
/// `last_iter` is the last propagation level at which the vertex can
/// receive an update from an active predecessor in an unweighted
/// label-propagation sweep; `visited` marks reachability from any root.
struct VertexGuidance {
  uint32_t last_iter = 0;
  bool visited = false;
};

/// Result of the preprocessing stage (paper Algorithm 1): per-vertex
/// propagation guidance plus the cost of producing it (Fig. 8 overhead).
class RRGuidance {
 public:
  RRGuidance() = default;

  /// Generates guidance for `graph` with the given root set. All edge
  /// weights are treated as 1 so the sweep captures pure topology; the
  /// `visited` flag limits each vertex to one distance computation, which
  /// is what makes the preprocessing "extremely low overhead" (§3.2).
  ///
  /// For single-source apps (SSSP/WP) pass the query root. For
  /// all-vertices apps (CC/PR/TR) pass an empty vector: every vertex with
  /// no unvisited predecessor contribution starts as a root, matching the
  /// "fill_source initializes all roots" step.
  static RRGuidance Generate(const Graph& graph,
                             const std::vector<VertexId>& roots);

  /// Convenience: every vertex is a root (CC/PR-style propagation, where
  /// all vertices start active).
  static RRGuidance GenerateAllRoots(const Graph& graph);

  bool empty() const { return guidance_.empty(); }
  VertexId num_vertices() const {
    return static_cast<VertexId>(guidance_.size());
  }

  uint32_t last_iter(VertexId v) const { return guidance_[v].last_iter; }
  bool visited(VertexId v) const { return guidance_[v].visited; }

  /// Number of label-propagation iterations the sweep took.
  uint32_t depth() const { return depth_; }

  /// Wall time spent generating the guidance (Fig. 8 numerator).
  double generation_seconds() const { return generation_seconds_; }

  /// The guidance is reusable across applications on the same graph
  /// (paper §4.4: Facebook runs ~8.7 jobs per graph); callers cache it by
  /// (graph, roots) key at the application layer.
  const std::vector<VertexGuidance>& raw() const { return guidance_; }

 private:
  std::vector<VertexGuidance> guidance_;
  uint32_t depth_ = 0;
  double generation_seconds_ = 0;
};

}  // namespace slfe

#endif  // SLFE_CORE_RR_GUIDANCE_H_
