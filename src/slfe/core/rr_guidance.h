#ifndef SLFE_CORE_RR_GUIDANCE_H_
#define SLFE_CORE_RR_GUIDANCE_H_

#include <cstdint>
#include <vector>

#include "slfe/common/status.h"
#include "slfe/common/thread_pool.h"
#include "slfe/common/timer.h"
#include "slfe/graph/graph.h"
#include "slfe/graph/types.h"

namespace slfe {

struct GraphDelta;

/// Redundancy-reduction guidance for one vertex (the paper's `struct inf`):
/// `last_iter` is the last propagation level at which the vertex can
/// receive an update from an active predecessor in an unweighted
/// label-propagation sweep; `visited` marks reachability from any root.
struct VertexGuidance {
  uint32_t last_iter = 0;
  bool visited = false;
};

/// Which sweep implementation generates the guidance. All three produce
/// bit-identical last_iter / visited / depth (the differential harness in
/// tests/guidance_partition_test.cc enforces this across graph shapes), so
/// the strategy is purely a performance/placement choice.
enum class GuidanceGenerationStrategy {
  /// Partitioned-parallel with a pool, serial without one (the default).
  kAuto,
  /// The single-threaded reference sweep, always.
  kSerial,
  /// Uniform frontier slicing across workers (the pre-partitioning
  /// parallel sweep; kept as the ablation baseline).
  kUniformParallel,
  /// DistGraph-range partitioned work: each worker owns the contiguous
  /// vertex range the distributed engine would assign it, with per-
  /// partition frontier buffers and fused frontier-edge bookkeeping.
  kPartitionedParallel,
};

const char* GuidanceGenerationStrategyName(GuidanceGenerationStrategy s);

/// What RRGuidance::Repair did — how tightly the delta's damage was
/// bounded. invalidated/recomputed stay near the touched region when the
/// delta is local; a delta that severs a hub pushes them toward |V| and
/// the provider's heuristic should have regenerated instead.
struct GuidanceRepairStats {
  uint64_t seeds = 0;        ///< invalidation seeds (deleted edges + roots)
  uint64_t invalidated = 0;  ///< vertices whose old level was discarded
  uint64_t recomputed = 0;   ///< vertices re-settled by the repair BFS
  uint64_t patched = 0;      ///< vertices whose last_iter was recomputed
  uint64_t level_changes = 0;  ///< vertices whose final level differs
  double repair_seconds = 0;
};

/// Result of the preprocessing stage (paper Algorithm 1): per-vertex
/// propagation guidance plus the cost of producing it (Fig. 8 overhead).
class RRGuidance {
 public:
  RRGuidance() = default;

  /// Sentinel level for vertices the sweep never reached.
  static constexpr uint32_t kUnreachableLevel = UINT32_MAX;

  /// Generates guidance for `graph` with the given root set. All edge
  /// weights are treated as 1 so the sweep captures pure topology; the
  /// `visited` flag limits each vertex to one distance computation, which
  /// is what makes the preprocessing "extremely low overhead" (§3.2).
  ///
  /// For single-source apps (SSSP/WP) pass the query root. For apps whose
  /// propagation starts everywhere (CC/PR/TR) the root set must still name
  /// actual propagation sources — use GenerateAllRoots, or the selectors in
  /// roots.h. An empty root set makes the sweep a no-op (depth 0, nothing
  /// visited, all-zero lastIter): legal, but it disables all redundancy
  /// reduction for that run, so Generate warns when it sees one.
  ///
  /// When `pool` is non-null (and has more than one worker) the sweep runs
  /// partition-parallel; results are bit-identical to the serial reference.
  static RRGuidance Generate(const Graph& graph,
                             const std::vector<VertexId>& roots,
                             ThreadPool* pool = nullptr);

  /// Strategy-explicit entry point (the provider's path). A null pool — or
  /// a 1-worker pool — forces the serial reference regardless of strategy.
  /// `mini_chunk` is the partitioned sweep's work-stealing granularity
  /// (0 = WorkStealingScheduler::kMiniChunk); only the partitioned
  /// strategy consults it.
  static RRGuidance GenerateWithStrategy(const Graph& graph,
                                         const std::vector<VertexId>& roots,
                                         GuidanceGenerationStrategy strategy,
                                         ThreadPool* pool,
                                         size_t mini_chunk = 0);

  /// The single-threaded reference sweep (paper Algorithm 1, frontier
  /// form). Kept as the equivalence baseline for GenerateParallel.
  static RRGuidance GenerateSerial(const Graph& graph,
                                   const std::vector<VertexId>& roots);

  /// Frontier-parallel sweep over `pool`: per-iteration sparse-push /
  /// dense-pull direction switching (the Ligra heuristic ShmEngine::EdgeMap
  /// uses) with an atomic visited Bitmap. Produces exactly the serial
  /// sweep's last_iter / visited / depth.
  static RRGuidance GenerateParallel(const Graph& graph,
                                     const std::vector<VertexId>& roots,
                                     ThreadPool& pool,
                                     double dense_fraction = 0.05);

  /// Partition-aware parallel sweep: vertices are split into the same
  /// edge-balanced contiguous ranges DistGraph::Build assigns its nodes
  /// (one per pool worker), each worker keeps a frontier buffer for its
  /// own range, and the dense-pull phase touches only owned vertices (the
  /// NUMA story: one socket, one range). The sparse-push phase drains the
  /// per-partition frontiers through WorkStealingScheduler::RunBands —
  /// own band first, steal leftovers — and the frontier-edge count that
  /// drives push/pull switching is fused into the discovery path (each
  /// newly visited vertex contributes its out-degree as it is enqueued),
  /// eliminating the uniform sweep's extra per-iteration counting pass.
  /// Bit-identical to the serial reference. `mini_chunk` tunes the
  /// push-phase stealing granularity (0 = the 256-vertex default) — the
  /// ROADMAP multicore crossover knob.
  static RRGuidance GeneratePartitioned(const Graph& graph,
                                        const std::vector<VertexId>& roots,
                                        ThreadPool& pool,
                                        double dense_fraction = 0.05,
                                        size_t mini_chunk = 0);

  /// Convenience: sweep from the graph's natural propagation sources
  /// (zero-in-degree vertices, falling back to vertex 0 on cycle-bound
  /// graphs) — the entry point for all-vertices apps (CC/PR-style).
  static RRGuidance GenerateAllRoots(const Graph& graph,
                                     ThreadPool* pool = nullptr);

  /// Reassembles a guidance object from previously generated parts — the
  /// deserialization entry point for GuidanceStore. `generation_seconds` is
  /// zero: a reloaded guidance paid no sweep cost (the load cost is
  /// accounted by the acquiring layer instead). The overload without a
  /// levels plane yields has_levels() == false (pre-levels store codecs):
  /// such a guidance serves runs normally but cannot seed a Repair.
  static RRGuidance FromParts(std::vector<VertexGuidance> guidance,
                              uint32_t depth);
  static RRGuidance FromParts(std::vector<VertexGuidance> guidance,
                              uint32_t depth, std::vector<uint32_t> levels);

  /// Incrementally repairs `old_guidance` (generated on the pre-delta
  /// graph for `old_roots`) into the guidance GenerateSerial(new_graph,
  /// new_roots) would produce — bit-identical in last_iter, visited,
  /// depth, AND levels (tests/guidance_repair_test.cc is the differential
  /// proof). Two-phase incremental BFS in the Ramalingam–Reps tradition:
  ///
  ///  1. Invalidation: a bounded cascade from the delta's touched
  ///   endpoints (deleted-edge destinations whose old level rode the
  ///   deleted edge, plus removed roots) discards exactly the old levels
  ///   that lost every supporting in-edge — vertices outside the cascade
  ///   keep their levels untouched, which is what bounds the repair to the
  ///   damaged region instead of O(|E|).
  ///  2. Recomputation: a level-bucketed BFS re-settles the invalidated
  ///   region from its unaffected fringe, inserted edges, and added roots;
  ///   last_iter is then re-derived only for vertices with a touched or
  ///   level-changed in-neighbor.
  ///
  /// Requirements: old_guidance.has_levels() (kFailedPrecondition
  /// otherwise — e.g. it was loaded from a pre-levels store file), and
  /// new_graph must be the delta applied to the graph old_guidance was
  /// generated on (unverifiable here; the provider's lineage map is the
  /// keeper of that invariant). When `max_affected_fraction` < 1 and the
  /// invalidation cascade exceeds that fraction of |V|, returns
  /// kFailedPrecondition so the caller falls back to a full regeneration
  /// that would be cheaper anyway.
  static Result<RRGuidance> Repair(const Graph& new_graph,
                                   const GraphDelta& delta,
                                   const RRGuidance& old_guidance,
                                   const std::vector<VertexId>& old_roots,
                                   const std::vector<VertexId>& new_roots,
                                   double max_affected_fraction = 1.0,
                                   GuidanceRepairStats* stats = nullptr);

  bool empty() const { return guidance_.empty(); }
  VertexId num_vertices() const {
    return static_cast<VertexId>(guidance_.size());
  }

  uint32_t last_iter(VertexId v) const { return guidance_[v].last_iter; }
  bool visited(VertexId v) const { return guidance_[v].visited; }

  /// BFS level (unweighted distance from the root set) per vertex, or
  /// kUnreachableLevel for vertices the sweep never reached. Levels are a
  /// derived-deterministic plane — BFS distance is unique, so all three
  /// generation strategies record bit-identical levels — and they are what
  /// makes incremental Repair possible: last_iter(v) alone (= max over
  /// visited in-neighbors u of level(u)+1) cannot be patched without
  /// knowing the levels it was derived from. False only for guidance
  /// reloaded from a pre-levels store codec.
  bool has_levels() const { return levels_.size() == guidance_.size(); }
  uint32_t level(VertexId v) const { return levels_[v]; }
  const std::vector<uint32_t>& levels() const { return levels_; }

  /// Number of label-propagation iterations the sweep took.
  uint32_t depth() const { return depth_; }

  /// Wall time spent generating the guidance (Fig. 8 numerator).
  double generation_seconds() const { return generation_seconds_; }

  /// The share of generation_seconds spent on per-iteration parallel
  /// bookkeeping rather than edge traversal: the frontier-edge counting
  /// pass (uniform strategy only — the partitioned strategy fuses it into
  /// the merge) and the next-frontier merge. Zero for the serial sweep,
  /// which has none; one-time setup (partitioning the vertex space) is
  /// deliberately excluded. This is what makes the serial-vs-parallel
  /// crossover measurable on few-core hosts (bench_fig8b).
  double bookkeeping_seconds() const { return bookkeeping_seconds_; }

  /// The guidance is reusable across applications on the same graph
  /// (paper §4.4: Facebook runs ~8.7 jobs per graph); GuidanceCache /
  /// GuidanceProvider realize that amortization, keyed by
  /// (graph fingerprint, root set).
  const std::vector<VertexGuidance>& raw() const { return guidance_; }

 private:
  std::vector<VertexGuidance> guidance_;
  /// Per-vertex BFS level; same size as guidance_ when present, empty for
  /// pre-levels deserializations (has_levels() distinguishes, including
  /// the |V| == 0 case where empty IS a complete plane).
  std::vector<uint32_t> levels_;
  uint32_t depth_ = 0;
  double generation_seconds_ = 0;
  double bookkeeping_seconds_ = 0;
};

/// Stability horizon for "finish early" (Algorithm 5): how many
/// consecutive exactly-stable rounds vertex v needs before it may freeze.
/// Shared by every arithmetic consumer (ArithRunner, OocPrGuided) so the
/// rules stay in one place:
///  * unvisited vertices (the guidance roots did not reach them) never
///    freeze;
///  * the horizon is lastIter + 1, because guidance levels are
///    propagation distances while a source's own first value change only
///    lands at iteration 1 — influence can arrive one iteration after
///    lastIter (on a chain, a vertex stable since the start would
///    otherwise freeze exactly one iteration before the update wave
///    reaches it);
///  * never below `min_rounds`, guarding small-lastIter vertices on
///    cycle-bound graphs from freezing on a coincidental stable streak.
inline uint64_t StabilityHorizon(const RRGuidance* guidance, VertexId v,
                                 uint64_t min_rounds) {
  if (guidance == nullptr || !guidance->visited(v)) return UINT64_MAX;
  uint64_t li = static_cast<uint64_t>(guidance->last_iter(v)) + 1;
  return li < min_rounds ? min_rounds : li;
}

}  // namespace slfe

#endif  // SLFE_CORE_RR_GUIDANCE_H_
