#include "slfe/core/guidance_store.h"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <string>
#include <utility>
#include <vector>

#include "slfe/common/fnv.h"
#include "slfe/common/scoped_file.h"

namespace slfe {

namespace {

/// Fixed-width on-disk header (see the format comment in the header file).
/// Every field is an exact-width integer, so the packed size is the same on
/// every platform we build for; the static_assert guards against padding.
struct StoreHeader {
  uint32_t magic = 0;
  uint32_t version = 0;
  uint64_t graph_fingerprint = 0;
  uint64_t roots_digest = 0;
  uint64_t num_roots = 0;
  uint32_t num_vertices = 0;
  uint32_t depth = 0;
  uint64_t payload_bytes = 0;
  uint64_t payload_checksum = 0;  // must stay the last field (see Checksum)
};
static_assert(sizeof(StoreHeader) == 56, "StoreHeader must pack to 56 bytes");

/// Everything before the checksum field is covered by the checksum too —
/// magic/version/key are independently validated against expectations, but
/// num_vertices/depth/payload_bytes have no other witness, and a flipped
/// depth would otherwise load "valid" and silently change guided-run
/// iteration bounds.
constexpr size_t kChecksummedHeaderBytes =
    offsetof(StoreHeader, payload_checksum);

/// Checksum over the sealed header bytes plus the payload planes AS
/// WRITTEN (codec-width, so the checksum also witnesses the codec byte:
/// reinterpreting a packed plane as raw changes the hashed byte count).
/// Levels-less codecs pass levels_bytes == 0, reproducing the historical
/// two-plane checksum bit-for-bit — old files verify unchanged.
uint64_t Checksum(const StoreHeader& header, const void* last_iter,
                  uint64_t last_iter_bytes, const uint8_t* visited,
                  uint64_t n, const void* levels = nullptr,
                  uint64_t levels_bytes = 0) {
  uint64_t h = Fnv1aBytes(&header, kChecksummedHeaderBytes, kFnvBasis);
  h = Fnv1aBytes(last_iter, last_iter_bytes, h);
  h = Fnv1aBytes(visited, n * sizeof(uint8_t), h);
  if (levels_bytes > 0) h = Fnv1aBytes(levels, levels_bytes, h);
  return h;
}

uint32_t EncodeVersion(GuidanceCodec codec) {
  return GuidanceStore::kFormatVersion |
         (static_cast<uint32_t>(codec) << 16);
}

std::string Hex(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Recovers the graph fingerprint from an entry file name
/// (`g<16 hex>_r..._n....rrg` — see EntryPath). Returns false for names
/// that do not carry one (foreign files never reach here, but a renamed
/// entry should degrade to "unattributed", not to fingerprint 0).
bool ParseEntryFingerprint(const std::string& name, uint64_t* fingerprint) {
  if (name.size() < 18 || name[0] != 'g' || name[17] != '_') return false;
  uint64_t v = 0;
  for (size_t i = 1; i <= 16; ++i) {
    char c = name[i];
    uint64_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<uint64_t>(c - 'a') + 10;
    } else {
      return false;
    }
    v = (v << 4) | digit;
  }
  *fingerprint = v;
  return true;
}

}  // namespace

GuidanceStore::GuidanceStore(std::string dir, GuidanceStoreGcOptions gc)
    : dir_(std::move(dir)), gc_(gc) {
  ::mkdir(dir_.c_str(), 0755);
  // Sweep temp files orphaned by a crash mid-save (RemoveAll/RemoveGraph
  // only touch *.rrg, so nothing else reclaims them). Racing a live saver
  // in another process is benign: its fwrite continues into the unlinked
  // file and its rename fails cleanly into a logged, regenerable miss.
  DIR* d = ::opendir(dir_.c_str());
  if (d != nullptr) {
    while (struct dirent* entry = ::readdir(d)) {
      std::string name = entry->d_name;
      if (name.find(".rrg.tmp.") != std::string::npos) {
        std::remove((dir_ + "/" + name).c_str());
      }
    }
    ::closedir(d);
  }
  if (gc_.HasLimits() && gc_.sweep_on_construction) {
    std::lock_guard<std::mutex> lock(mu_);
    SweepLocked();
  }
}

GuidanceStoreSweepStats GuidanceStore::Sweep() {
  std::lock_guard<std::mutex> lock(mu_);
  return SweepLocked();
}

GuidanceStoreSweepStats GuidanceStore::SweepLocked() {
  GuidanceStoreSweepStats sweep;
  struct EntryInfo {
    std::string name;
    uint64_t bytes = 0;
    // Nanosecond mtime so LRU ordering is stable on filesystems with
    // sub-second timestamps; ties (coarse filesystems, batch saves within
    // one tick) break on the name for determinism.
    int64_t mtime_ns = 0;
    // In-flight protection: entries of a pinned graph survive every phase.
    bool pinned = false;
    // Phase-2 attribution ("" = no tenant, global budgets only).
    std::string tenant;
    // Estimated reuse from the hotness oracle (0 when no oracle, or for
    // names the fingerprint cannot be recovered from — those evict as
    // coldest, which is right: nothing can be observing them).
    uint64_t hotness = 0;
  };
  std::vector<EntryInfo> entries;
  {
    DIR* d = ::opendir(dir_.c_str());
    if (d == nullptr) return sweep;  // nothing to scan, nothing to do
    while (struct dirent* de = ::readdir(d)) {
      std::string name = de->d_name;
      if (name.size() < 4 || name.compare(name.size() - 4, 4, ".rrg") != 0) {
        continue;  // GC owns only the entry files, never temps or strangers
      }
      struct ::stat st;
      if (::stat((dir_ + "/" + name).c_str(), &st) != 0) continue;
      EntryInfo info{name, static_cast<uint64_t>(st.st_size),
                     static_cast<int64_t>(st.st_mtim.tv_sec) * 1000000000 +
                         st.st_mtim.tv_nsec,
                     false, std::string()};
      uint64_t fingerprint = 0;
      if (ParseEntryFingerprint(name, &fingerprint)) {
        info.pinned = pins_.find(fingerprint) != pins_.end();
        auto tenant_it = graph_tenant_.find(fingerprint);
        if (tenant_it != graph_tenant_.end()) info.tenant = tenant_it->second;
        // One oracle call per entry per sweep; several entries of one
        // graph repeat the call, but sweeps are rare and the sketch read
        // is wait-free, so memoization would buy noise.
        if (gc_.hotness != nullptr) info.hotness = gc_.hotness(fingerprint);
      }
      entries.push_back(std::move(info));
    }
    ::closedir(d);
  }
  sweep.scanned = entries.size();
  ++stats_.sweeps;

  auto remove_entry = [&](const EntryInfo& e, uint64_t* counter) {
    if (std::remove((dir_ + "/" + e.name).c_str()) != 0) return false;
    sweep.bytes_reclaimed += e.bytes;
    ++*counter;
    return true;
  };
  auto lru_order = [](const EntryInfo* a, const EntryInfo* b) {
    if (a->mtime_ns != b->mtime_ns) return a->mtime_ns < b->mtime_ns;
    return a->name < b->name;
  };
  // Budget-phase victim order: coldest-first when the hotness oracle is
  // wired (estimated reuse beats raw recency — a stale-but-hot graph's
  // guidance outlives a fresh one-shot's), pure mtime-LRU otherwise.
  // The LRU order breaks hotness ties either way, so ordering stays
  // total and deterministic.
  const bool use_hotness = gc_.hotness != nullptr;
  auto evict_order = [use_hotness, &lru_order](const EntryInfo* a,
                                               const EntryInfo* b) {
    if (use_hotness && a->hotness != b->hotness) {
      return a->hotness < b->hotness;
    }
    return lru_order(a, b);
  };

  // Phase 1: TTL. Age is measured against the wall clock because mtimes
  // are wall-clock stamps shared across processes.
  std::vector<EntryInfo> live;
  live.reserve(entries.size());
  if (gc_.ttl_seconds > 0) {
    struct ::timespec now;
    ::clock_gettime(CLOCK_REALTIME, &now);
    int64_t now_ns =
        static_cast<int64_t>(now.tv_sec) * 1000000000 + now.tv_nsec;
    // Clamp before the cast: a "keep forever" TTL like 1e10 seconds would
    // otherwise overflow the int64 nanosecond range (UB, and in practice
    // a negative TTL that deletes everything).
    double ttl_ns_d = gc_.ttl_seconds * 1e9;
    int64_t ttl_ns = ttl_ns_d >= static_cast<double>(INT64_MAX)
                         ? INT64_MAX
                         : static_cast<int64_t>(ttl_ns_d);
    for (EntryInfo& e : entries) {
      if (now_ns - e.mtime_ns > ttl_ns) {
        if (e.pinned) {
          // Expired but in use by a running job: spare it. It stays
          // eligible next sweep, once the job unpins.
          ++sweep.pinned_spared;
        } else if (remove_entry(e, &sweep.ttl_removed)) {
          continue;
        }
      }
      live.push_back(std::move(e));
    }
  } else {
    live = std::move(entries);
  }

  // Phase 2: per-tenant budgets, LRU-by-mtime inside each tenant's slice.
  // Runs before the global phase so one tenant blowing its slice is
  // charged to that tenant's entries, not to whoever's files happen to be
  // globally stalest.
  std::vector<bool> removed(live.size(), false);
  if (!gc_.tenant_budgets.empty()) {
    std::unordered_map<std::string, std::vector<size_t>> by_tenant;
    for (size_t i = 0; i < live.size(); ++i) {
      if (!live[i].tenant.empty()) by_tenant[live[i].tenant].push_back(i);
    }
    for (const auto& [tenant, budget] : gc_.tenant_budgets) {
      if (!budget.HasLimits()) continue;
      auto it = by_tenant.find(tenant);
      if (it == by_tenant.end()) continue;
      std::vector<const EntryInfo*> slice;
      slice.reserve(it->second.size());
      uint64_t t_bytes = 0;
      for (size_t i : it->second) {
        slice.push_back(&live[i]);
        t_bytes += live[i].bytes;
      }
      std::sort(slice.begin(), slice.end(), evict_order);
      uint64_t t_entries = slice.size();
      for (const EntryInfo* victim : slice) {
        bool over = (budget.max_entries > 0 && t_entries > budget.max_entries) ||
                    (budget.max_bytes > 0 && t_bytes > budget.max_bytes);
        if (!over) break;
        if (victim->pinned) {
          // Cannot free an in-flight graph's entry; it keeps counting
          // toward the tenant's usage (the budget is genuinely exceeded
          // until the job finishes), and the next-stalest is tried.
          ++sweep.pinned_spared;
          continue;
        }
        if (remove_entry(*victim, &sweep.tenant_removed)) {
          removed[victim - live.data()] = true;
          t_bytes -= victim->bytes;
          --t_entries;
        }
      }
    }
  }

  // Phase 3: global budgets over the survivors, LRU-by-mtime.
  uint64_t live_bytes = 0;
  uint64_t live_count = 0;
  for (size_t i = 0; i < live.size(); ++i) {
    if (removed[i]) continue;
    live_bytes += live[i].bytes;
    ++live_count;
  }
  if (gc_.max_bytes > 0 || gc_.max_entries > 0) {
    std::vector<const EntryInfo*> order;
    order.reserve(live_count);
    for (size_t i = 0; i < live.size(); ++i) {
      if (!removed[i]) order.push_back(&live[i]);
    }
    std::sort(order.begin(), order.end(), evict_order);
    for (const EntryInfo* victim : order) {
      bool over = (gc_.max_entries > 0 && live_count > gc_.max_entries) ||
                  (gc_.max_bytes > 0 && live_bytes > gc_.max_bytes);
      if (!over) break;
      if (victim->pinned) {
        ++sweep.pinned_spared;
        continue;
      }
      if (remove_entry(*victim, &sweep.budget_removed)) {
        live_bytes -= victim->bytes;
        --live_count;
      }
      // A failed unlink (e.g. the directory turned read-only) leaves the
      // victim counted in live_count/live_bytes, so Sweep() keeps
      // reporting the store as over budget instead of pretending the
      // budgets hold.
    }
  }
  sweep.remaining_entries = live_count;
  sweep.remaining_bytes = live_bytes;

  stats_.gc_removed +=
      sweep.ttl_removed + sweep.tenant_removed + sweep.budget_removed;
  stats_.gc_bytes_reclaimed += sweep.bytes_reclaimed;
  return sweep;
}

void GuidanceStore::AssignGraphTenant(uint64_t graph_fingerprint,
                                      const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tenant.empty()) {
    graph_tenant_.erase(graph_fingerprint);
  } else {
    graph_tenant_[graph_fingerprint] = tenant;
  }
}

std::string GuidanceStore::GraphTenant(uint64_t graph_fingerprint) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = graph_tenant_.find(graph_fingerprint);
  return it != graph_tenant_.end() ? it->second : std::string();
}

void GuidanceStore::SetTenantBudget(const std::string& tenant,
                                    const GuidanceTenantBudget& budget) {
  std::lock_guard<std::mutex> lock(mu_);
  if (budget.HasLimits()) {
    gc_.tenant_budgets[tenant] = budget;
  } else {
    gc_.tenant_budgets.erase(tenant);
  }
}

void GuidanceStore::PinGraph(uint64_t graph_fingerprint) {
  std::lock_guard<std::mutex> lock(mu_);
  ++pins_[graph_fingerprint];
}

void GuidanceStore::UnpinGraph(uint64_t graph_fingerprint) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pins_.find(graph_fingerprint);
  if (it == pins_.end()) return;  // unbalanced Unpin: ignore, don't wrap
  if (--it->second == 0) pins_.erase(it);
}

size_t GuidanceStore::pinned_graphs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pins_.size();
}

std::string GuidanceStore::EntryPath(const GuidanceKey& key) const {
  return dir_ + "/g" + Hex(key.graph_fingerprint) + "_r" +
         Hex(key.roots_digest) + "_n" + Hex(key.num_roots) + ".rrg";
}

Status GuidanceStore::Save(const GuidanceKey& key,
                           const RRGuidance& guidance) {
  const std::vector<VertexGuidance>& raw = guidance.raw();
  VertexId n = guidance.num_vertices();

  // Split the AoS records into packed on-disk planes, negotiating the
  // codec from the data. Two independent axes: byte-wide packing whenever
  // every value fits (levels are bounded by the small sweep depth, so
  // this is the overwhelmingly common case), and a third BFS-levels plane
  // whenever the guidance carries one — levels are what make the stored
  // entry repairable after a graph mutation. Packed levels reserve 0xFF
  // for "unreachable", so that family needs depth <= 254 (every finite
  // level is bounded by the depth).
  const bool with_levels = guidance.has_levels();
  bool fits_u8 = guidance.depth() <= (with_levels ? 0xFEu : 0xFFu);
  for (VertexId v = 0; fits_u8 && v < n; ++v) {
    if (raw[v].last_iter > 0xFF) fits_u8 = false;
  }
  GuidanceCodec codec =
      with_levels
          ? (fits_u8 ? GuidanceCodec::kPackedU8Levels
                     : GuidanceCodec::kRawU32Levels)
          : (fits_u8 ? GuidanceCodec::kPackedU8 : GuidanceCodec::kRawU32);
  std::vector<uint32_t> last_iter_u32;
  std::vector<uint8_t> last_iter_u8;
  std::vector<uint8_t> visited(n);
  const void* last_iter_data = nullptr;
  uint64_t last_iter_bytes = 0;
  if (fits_u8) {
    last_iter_u8.resize(n);
    for (VertexId v = 0; v < n; ++v) {
      last_iter_u8[v] = static_cast<uint8_t>(raw[v].last_iter);
    }
    last_iter_data = last_iter_u8.data();
    last_iter_bytes = n * sizeof(uint8_t);
  } else {
    last_iter_u32.resize(n);
    for (VertexId v = 0; v < n; ++v) last_iter_u32[v] = raw[v].last_iter;
    last_iter_data = last_iter_u32.data();
    last_iter_bytes = static_cast<uint64_t>(n) * sizeof(uint32_t);
  }
  for (VertexId v = 0; v < n; ++v) visited[v] = raw[v].visited ? 1 : 0;
  std::vector<uint32_t> levels_u32;
  std::vector<uint8_t> levels_u8;
  const void* levels_data = nullptr;
  uint64_t levels_bytes = 0;
  if (codec == GuidanceCodec::kPackedU8Levels) {
    levels_u8.resize(n);
    for (VertexId v = 0; v < n; ++v) {
      uint32_t level = guidance.level(v);
      levels_u8[v] = level == RRGuidance::kUnreachableLevel
                         ? 0xFF
                         : static_cast<uint8_t>(level);
    }
    levels_data = levels_u8.data();
    levels_bytes = n * sizeof(uint8_t);
  } else if (codec == GuidanceCodec::kRawU32Levels) {
    levels_u32.assign(guidance.levels().begin(), guidance.levels().end());
    levels_data = levels_u32.data();
    levels_bytes = static_cast<uint64_t>(n) * sizeof(uint32_t);
  }

  StoreHeader header;
  header.magic = kMagic;
  header.version = EncodeVersion(codec);
  header.graph_fingerprint = key.graph_fingerprint;
  header.roots_digest = key.roots_digest;
  header.num_roots = key.num_roots;
  header.num_vertices = n;
  header.depth = guidance.depth();
  header.payload_bytes = static_cast<uint64_t>(n) * PayloadBytesPerVertex(codec);
  header.payload_checksum =
      Checksum(header, last_iter_data, last_iter_bytes, visited.data(), n,
               levels_data, levels_bytes);

  // Unique temp name: mu_ only serializes savers within THIS process, but
  // the store directory is shared across processes (restart survival), so
  // a fixed ".tmp" would let two processes interleave writes into one
  // file and rename a torn result into place.
  static std::atomic<uint64_t> tmp_counter{0};
  std::string path = EntryPath(key);
  std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                    std::to_string(tmp_counter.fetch_add(1));

  std::lock_guard<std::mutex> lock(mu_);
  {
    ScopedFile f(tmp, "wb");
    if (!f.ok()) return Status::IOError("cannot create " + tmp);
    if (std::fwrite(&header, sizeof(header), 1, f.get()) != 1 ||
        (n > 0 &&
         (std::fwrite(last_iter_data, 1, last_iter_bytes, f.get()) !=
              last_iter_bytes ||
          std::fwrite(visited.data(), sizeof(uint8_t), n, f.get()) != n ||
          (levels_bytes > 0 &&
           std::fwrite(levels_data, 1, levels_bytes, f.get()) !=
               levels_bytes)))) {
      std::remove(tmp.c_str());
      return Status::IOError("short write to " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot rename " + tmp + " into place");
  }
  ++stats_.saves;
  return Status::OK();
}

Result<RRGuidance> GuidanceStore::Load(const GuidanceKey& key) {
  std::string path = EntryPath(key);
  std::lock_guard<std::mutex> lock(mu_);
  ScopedFile f(path, "rb");
  if (!f.ok()) {
    ++stats_.load_misses;
    return Status::NotFound("no store entry at " + path);
  }

  auto corrupt = [&](const std::string& why) -> Status {
    ++stats_.load_errors;
    return Status::Corruption(path + ": " + why);
  };

  StoreHeader header;
  if (std::fread(&header, sizeof(header), 1, f.get()) != 1) {
    return corrupt("truncated header");
  }
  if (header.magic != kMagic) return corrupt("bad magic");
  if ((header.version & 0xFFFFu) != kFormatVersion) {
    return corrupt("unsupported format version " +
                   std::to_string(header.version & 0xFFFFu));
  }
  uint32_t codec_byte = (header.version >> 16) & 0xFFu;
  if (codec_byte > static_cast<uint32_t>(GuidanceCodec::kPackedU8Levels) ||
      (header.version >> 24) != 0) {
    // Distinct from a checksum failure: this file is from a NEWER writer,
    // not damaged — surfaced separately so the remedy (upgrade, don't
    // delete) is visible in the stats.
    ++stats_.codec_errors;
    return corrupt("unsupported guidance codec " +
                   std::to_string(codec_byte));
  }
  GuidanceCodec codec = static_cast<GuidanceCodec>(codec_byte);
  if (header.graph_fingerprint != key.graph_fingerprint ||
      header.roots_digest != key.roots_digest ||
      header.num_roots != key.num_roots) {
    return corrupt("key mismatch (stale or colliding entry)");
  }
  uint64_t n = header.num_vertices;
  if (header.payload_bytes != n * PayloadBytesPerVertex(codec)) {
    return corrupt("payload size inconsistent with vertex count");
  }
  // Validate the real file size against the header BEFORE sizing buffers
  // from it: a corrupt-but-self-consistent header must cost a Corruption
  // status, not a multi-GB allocation. This also rejects truncation and
  // trailing garbage in one check.
  struct ::stat st;
  if (::fstat(::fileno(f.get()), &st) != 0) {
    ++stats_.load_errors;  // present but unreadable counts as rejected
    return Status::IOError("cannot stat " + path);
  }
  if (static_cast<uint64_t>(st.st_size) !=
      sizeof(StoreHeader) + header.payload_bytes) {
    return corrupt("file size does not match header");
  }

  const bool packed = codec == GuidanceCodec::kPackedU8 ||
                      codec == GuidanceCodec::kPackedU8Levels;
  const bool with_levels = CodecHasLevels(codec);
  std::vector<uint32_t> last_iter_u32;
  std::vector<uint8_t> last_iter_u8;
  std::vector<uint8_t> visited(n);
  const void* last_iter_data = nullptr;
  uint64_t last_iter_bytes = 0;
  if (packed) {
    last_iter_u8.resize(n);
    last_iter_data = last_iter_u8.data();
    last_iter_bytes = n * sizeof(uint8_t);
  } else {
    last_iter_u32.resize(n);
    last_iter_data = last_iter_u32.data();
    last_iter_bytes = n * sizeof(uint32_t);
  }
  std::vector<uint32_t> levels_u32;
  std::vector<uint8_t> levels_u8;
  void* levels_data = nullptr;
  uint64_t levels_bytes = 0;
  if (with_levels) {
    if (packed) {
      levels_u8.resize(n);
      levels_data = levels_u8.data();
      levels_bytes = n * sizeof(uint8_t);
    } else {
      levels_u32.resize(n);
      levels_data = levels_u32.data();
      levels_bytes = n * sizeof(uint32_t);
    }
  }
  if (n > 0 &&
      (std::fread(const_cast<void*>(last_iter_data), 1, last_iter_bytes,
                  f.get()) != last_iter_bytes ||
       std::fread(visited.data(), sizeof(uint8_t), n, f.get()) != n ||
       (levels_bytes > 0 &&
        std::fread(levels_data, 1, levels_bytes, f.get()) != levels_bytes))) {
    return corrupt("truncated payload");
  }

  if (Checksum(header, last_iter_data, last_iter_bytes, visited.data(), n,
               levels_data, levels_bytes) != header.payload_checksum) {
    return corrupt("checksum mismatch");
  }

  std::vector<VertexGuidance> records(n);
  for (uint64_t v = 0; v < n; ++v) {
    records[v].last_iter = packed ? last_iter_u8[v] : last_iter_u32[v];
    records[v].visited = visited[v] != 0;
  }
  // Mark the entry recently-used for the LRU-by-mtime GC: without the
  // touch, a hot entry that is only ever read would look as stale as an
  // abandoned one. Best-effort — a failed touch just ages the entry.
  ::futimens(::fileno(f.get()), nullptr);
  ++stats_.loads;
  if (!with_levels) {
    return RRGuidance::FromParts(std::move(records), header.depth);
  }
  std::vector<uint32_t> levels(n);
  if (packed) {
    for (uint64_t v = 0; v < n; ++v) {
      levels[v] = levels_u8[v] == 0xFF ? RRGuidance::kUnreachableLevel
                                       : levels_u8[v];
    }
  } else {
    levels.assign(levels_u32.begin(), levels_u32.end());
  }
  return RRGuidance::FromParts(std::move(records), header.depth,
                               std::move(levels));
}

bool GuidanceStore::Contains(const GuidanceKey& key) const {
  struct ::stat st;
  return ::stat(EntryPath(key).c_str(), &st) == 0;
}

Status GuidanceStore::Remove(const GuidanceKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  std::remove(EntryPath(key).c_str());
  return Status::OK();
}

Result<size_t> GuidanceStore::RemoveGraph(uint64_t graph_fingerprint) {
  std::string prefix = "g" + Hex(graph_fingerprint) + "_";
  std::lock_guard<std::mutex> lock(mu_);
  DIR* d = ::opendir(dir_.c_str());
  if (d == nullptr) return Status::IOError("cannot open " + dir_);
  size_t removed = 0;
  while (struct dirent* entry = ::readdir(d)) {
    std::string name = entry->d_name;
    if (name.size() < 4 || name.compare(name.size() - 4, 4, ".rrg") != 0) {
      continue;
    }
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    if (std::remove((dir_ + "/" + name).c_str()) == 0) ++removed;
  }
  ::closedir(d);
  return removed;
}

Status GuidanceStore::RemoveAll() {
  std::lock_guard<std::mutex> lock(mu_);
  DIR* d = ::opendir(dir_.c_str());
  if (d == nullptr) return Status::IOError("cannot open " + dir_);
  while (struct dirent* entry = ::readdir(d)) {
    std::string name = entry->d_name;
    if (name.size() >= 4 && name.compare(name.size() - 4, 4, ".rrg") == 0) {
      std::remove((dir_ + "/" + name).c_str());
    }
  }
  ::closedir(d);
  return Status::OK();
}

GuidanceStoreStats GuidanceStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace slfe
