#include "slfe/core/guidance_cache.h"

#include <utility>

#include "slfe/common/fnv.h"
#include "slfe/common/logging.h"
#include "slfe/core/guidance_store.h"

namespace slfe {

GuidanceCache::GuidanceCache(size_t capacity) : capacity_(capacity) {
  SLFE_CHECK_GE(capacity_, 1u);
}

void GuidanceCache::AttachStore(std::shared_ptr<GuidanceStore> store) {
  std::lock_guard<std::mutex> lock(mu_);
  store_ = std::move(store);
}

std::shared_ptr<GuidanceStore> GuidanceCache::store() const {
  std::lock_guard<std::mutex> lock(mu_);
  return store_;
}

void GuidanceCache::SetStoreAdmission(
    std::function<bool(uint64_t graph_fingerprint)> gate) {
  std::lock_guard<std::mutex> lock(mu_);
  admission_ = std::move(gate);
}

GuidanceKey GuidanceCache::MakeKey(uint64_t graph_fingerprint,
                                   const std::vector<VertexId>& roots) {
  GuidanceKey key;
  key.graph_fingerprint = graph_fingerprint;
  key.num_roots = roots.size();
  uint64_t h = kFnvBasis;
  for (VertexId r : roots) h = Fnv1aMix(h, r);
  key.roots_digest = h;
  return key;
}

std::shared_ptr<const RRGuidance> GuidanceCache::Lookup(
    const GuidanceKey& key, bool* from_store) {
  if (from_store != nullptr) *from_store = false;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second);  // bump to MRU
    Entry& entry = *it->second;
    if (!entry.spilled && store_ != nullptr &&
        (admission_ == nullptr || admission_(key.graph_fingerprint))) {
      // Promotion: the admission gate declined this entry at insert time
      // but the graph is hot now (a repeat hit proves reuse) — persist it
      // so the reuse survives eviction and restart.
      Status s = store_->Save(key, *entry.guidance);
      if (s.ok()) {
        entry.spilled = true;
        ++stats_.admission_promotions;
      } else {
        ++stats_.store_errors;
        SLFE_LOG(Warning) << "guidance store promotion failed: "
                          << s.ToString();
      }
    }
    return entry.guidance;
  }
  if (store_ != nullptr) {
    Result<RRGuidance> loaded = store_->Load(key);
    if (loaded.ok()) {
      ++stats_.store_hits;
      if (from_store != nullptr) *from_store = true;
      auto guidance = std::make_shared<const RRGuidance>(
          std::move(loaded).value());
      InsertLocked(key, guidance, /*spill=*/false);
      return guidance;
    }
    if (loaded.status().code() != StatusCode::kNotFound) {
      // Rejected file (corruption/truncation): log, count, fall through to
      // a miss — the regenerated entry's write-through replaces it.
      ++stats_.store_errors;
      SLFE_LOG(Warning) << "guidance store load failed: "
                        << loaded.status().ToString();
    }
  }
  ++stats_.misses;
  return nullptr;
}

std::shared_ptr<const RRGuidance> GuidanceCache::Peek(
    const GuidanceKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  return it != index_.end() ? it->second->guidance : nullptr;
}

void GuidanceCache::Insert(const GuidanceKey& key,
                           std::shared_ptr<const RRGuidance> guidance) {
  std::lock_guard<std::mutex> lock(mu_);
  InsertLocked(key, std::move(guidance), /*spill=*/true);
}

void GuidanceCache::InsertLocked(const GuidanceKey& key,
                                 std::shared_ptr<const RRGuidance> guidance,
                                 bool spill) {
  // Entries that came FROM the store (spill=false) are durable already;
  // entries with no store attached have nowhere to go. Both are
  // spilled=true — only a gate-declined write-through leaves false.
  bool spilled = true;
  if (spill && store_ != nullptr) {
    if (admission_ != nullptr && !admission_(key.graph_fingerprint)) {
      // Too cold to be worth disk churn: keep it memory-only. A later
      // hit re-checks the gate and promotes (see Lookup).
      ++stats_.admission_skips;
      spilled = false;
    } else {
      Status s = store_->Save(key, *guidance);
      if (!s.ok()) {
        // Persistence is an optimization: a failed spill costs a future
        // resweep, never correctness.
        SLFE_LOG(Warning) << "guidance store save failed: " << s.ToString();
      }
    }
  }
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Concurrent generators can race to insert the same key; keep the
    // newest result and bump it.
    it->second->guidance = std::move(guidance);
    it->second->spilled = spilled;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(guidance), spilled});
  index_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

void GuidanceCache::InvalidateGraph(uint64_t graph_fingerprint) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->key.graph_fingerprint == graph_fingerprint) {
      index_.erase(it->key);
      it = lru_.erase(it);
      ++stats_.invalidations;
    } else {
      ++it;
    }
  }
  if (store_ != nullptr) {
    Result<size_t> removed = store_->RemoveGraph(graph_fingerprint);
    if (!removed.ok()) {
      SLFE_LOG(Warning) << "guidance store invalidation failed: "
                        << removed.status().ToString();
    }
  }
}

void GuidanceCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.invalidations += lru_.size();
  index_.clear();
  lru_.clear();
}

size_t GuidanceCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

GuidanceCacheStats GuidanceCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace slfe
