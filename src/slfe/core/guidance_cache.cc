#include "slfe/core/guidance_cache.h"

#include <utility>

#include "slfe/common/logging.h"

namespace slfe {

GuidanceCache::GuidanceCache(size_t capacity) : capacity_(capacity) {
  SLFE_CHECK_GE(capacity_, 1u);
}

GuidanceKey GuidanceCache::MakeKey(uint64_t graph_fingerprint,
                                   const std::vector<VertexId>& roots) {
  GuidanceKey key;
  key.graph_fingerprint = graph_fingerprint;
  key.num_roots = roots.size();
  uint64_t h = 14695981039346656037ull;
  for (VertexId r : roots) {
    h ^= r;
    h *= 1099511628211ull;
  }
  key.roots_digest = h;
  return key;
}

std::shared_ptr<const RRGuidance> GuidanceCache::Lookup(
    const GuidanceKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // bump to MRU
  return it->second->guidance;
}

void GuidanceCache::Insert(const GuidanceKey& key,
                           std::shared_ptr<const RRGuidance> guidance) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Concurrent generators can race to insert the same key; keep the
    // newest result and bump it.
    it->second->guidance = std::move(guidance);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(guidance)});
  index_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

void GuidanceCache::InvalidateGraph(uint64_t graph_fingerprint) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->key.graph_fingerprint == graph_fingerprint) {
      index_.erase(it->key);
      it = lru_.erase(it);
      ++stats_.invalidations;
    } else {
      ++it;
    }
  }
}

void GuidanceCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.invalidations += lru_.size();
  index_.clear();
  lru_.clear();
}

size_t GuidanceCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

GuidanceCacheStats GuidanceCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace slfe
