#ifndef SLFE_CORE_ROOTS_H_
#define SLFE_CORE_ROOTS_H_

#include <vector>

#include "slfe/graph/graph.h"
#include "slfe/graph/types.h"

namespace slfe {

/// Root-set selection for RR guidance generation, per application class
/// (DESIGN.md: the guidance sweep must start where the application's own
/// propagation starts for the "propagation order" to be meaningful).

/// Roots for label-propagation apps whose final label is the component
/// minimum (CC): every local minimum — a vertex smaller than all of its
/// out-neighbors' ids cannot receive its final label from elsewhere at
/// level 0... Conservatively we take vertices that are smaller than ALL
/// their in-neighbors (their own label survives the first round and can
/// seed propagation). The component minimum is always included.
std::vector<VertexId> SelectLocalMinimaRoots(const Graph& graph);

/// Roots for arithmetic apps (PR/TR): zero-in-degree vertices, falling
/// back to vertex 0 for cycle-bound graphs.
std::vector<VertexId> SelectSourceRoots(const Graph& graph);

}  // namespace slfe

#endif  // SLFE_CORE_ROOTS_H_
