#include "slfe/core/guidance_provider.h"

#include <thread>
#include <utility>

#include "slfe/common/timer.h"
#include "slfe/core/roots.h"
#include "slfe/graph/delta.h"

namespace slfe {

GuidanceProvider::GuidanceProvider(GuidanceProviderOptions options)
    : options_(std::move(options)), cache_(options_.cache_capacity) {
  if (!options_.store_dir.empty()) {
    store_ = std::make_shared<GuidanceStore>(options_.store_dir,
                                             options_.store_gc);
    cache_.AttachStore(store_);
    if (options_.store_admission != nullptr) {
      cache_.SetStoreAdmission(options_.store_admission);
    }
  }
  if (options_.metrics != nullptr) {
    generation_hist_ = options_.metrics->GetHistogram(
        "slfe_guidance_generation_seconds",
        "Wall seconds per full RR-guidance sweep");
    repair_hist_ = options_.metrics->GetHistogram(
        "slfe_guidance_repair_seconds",
        "Wall seconds per successful incremental guidance repair");
    store_load_hist_ = options_.metrics->GetHistogram(
        "slfe_guidance_store_load_seconds",
        "Wall seconds per guidance load from the persistent store");
  }
}

GuidanceProvider& GuidanceProvider::Global() {
  static GuidanceProvider* provider = new GuidanceProvider();
  return *provider;
}

GuidanceProvider& ResolveProvider(GuidanceProvider* provider) {
  return provider != nullptr ? *provider : GuidanceProvider::Global();
}

std::vector<VertexId> GuidanceProvider::SelectRoots(
    const Graph& graph, const GuidanceRequest& request) {
  switch (request.policy) {
    case GuidanceRootPolicy::kSingleSource:
      return {request.root};
    case GuidanceRootPolicy::kSourceVertices:
      return SelectSourceRoots(graph);
    case GuidanceRootPolicy::kLocalMinima:
      return SelectLocalMinimaRoots(graph);
  }
  return {};
}

GuidanceAcquisition GuidanceProvider::Acquire(const Graph& graph,
                                              const GuidanceRequest& request) {
  Timer timer;
  GuidanceAcquisition result;

  NegativeKey neg_key{graph.fingerprint(), request.policy,
                      request.policy == GuidanceRootPolicy::kSingleSource
                          ? request.root
                          : 0};
  if (NegativeLookup(neg_key)) {
    // Remembered as unproducible: return baseline mode without repeating
    // the root-selection scan.
    result.acquire_seconds = timer.Seconds();
    return result;
  }

  // Root selection is an O(V..V+E) scan for the non-single-source policies
  // and repeats on every job, so it belongs in the reported acquisition
  // cost — even on the cache-hit path.
  std::vector<VertexId> roots = SelectRoots(graph, request);
  if (roots.empty()) {
    // Unproducible (empty graph, or a policy that found no propagation
    // sources): remember it so repeats skip the selection scan too.
    NegativeInsert(neg_key);
    result.acquire_seconds = timer.Seconds();
    return result;
  }
  result = AcquireInternal(graph, roots, request.use_cache, &request);
  result.acquire_seconds = timer.Seconds();
  return result;
}

GuidanceAcquisition GuidanceProvider::AcquireForRoots(
    const Graph& graph, const std::vector<VertexId>& roots, bool use_cache) {
  return AcquireInternal(graph, roots, use_cache, nullptr);
}

GuidanceAcquisition GuidanceProvider::AcquireInternal(
    const Graph& graph, const std::vector<VertexId>& roots, bool use_cache,
    const GuidanceRequest* request) {
  Timer timer;
  GuidanceAcquisition result;
  if (roots.empty()) {
    // An empty root set makes the sweep a no-op that disables all
    // redundancy reduction; hand back baseline mode instead of warning
    // and generating useless all-zero guidance.
    result.acquire_seconds = timer.Seconds();
    return result;
  }
  GuidanceKey key = GuidanceCache::MakeKey(graph.fingerprint(), roots);
  if (use_cache) {
    bool from_store = false;
    double lookup_start = timer.Seconds();
    result.guidance = cache_.Lookup(key, &from_store);
    if (result.guidance != nullptr) {
      result.cache_hit = true;
      result.store_hit = from_store;
      if (from_store && store_load_hist_ != nullptr) {
        store_load_hist_->Observe(timer.Seconds() - lookup_start);
      }
      result.acquire_seconds = timer.Seconds();
      return result;
    }
  }

  if (!use_cache) {
    // Bypass path (benches measuring per-job sweep cost): no coalescing,
    // no insertion — every call pays a full generation by design.
    result.guidance = GenerateNow(graph, roots);
    result.acquire_seconds = timer.Seconds();
    return result;
  }

  // Singleflight: exactly one generation per key, no matter how many
  // threads miss on it concurrently. The first to register the flight
  // becomes the leader; everyone else blocks on the flight and shares the
  // leader's result.
  std::shared_ptr<Flight> flight;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(flights_mu_);
    auto it = flights_.find(key);
    if (it != flights_.end()) {
      flight = it->second;
    } else {
      // A flight for this key may have just completed: its leader inserted
      // into the cache and erased the flight between our cache miss and
      // this registration. Re-probe (memory-only, side-effect-free) before
      // committing to a fresh sweep.
      result.guidance = cache_.Peek(key);
      if (result.guidance != nullptr) {
        result.cache_hit = true;
        result.acquire_seconds = timer.Seconds();
        return result;
      }
      flight = std::make_shared<Flight>();
      flights_[key] = flight;
      leader = true;
    }
  }

  if (!leader) {
    std::unique_lock<std::mutex> lock(flight->mu);
    flight->cv.wait(lock, [&] { return flight->done; });
    result.guidance = flight->result;
    result.coalesced = true;
    {
      std::lock_guard<std::mutex> slock(stats_mu_);
      ++stats_.coalesced;
    }
    result.acquire_seconds = timer.Seconds();
    return result;
  }

  // Leader. The completer publishes whatever result is set (null on an
  // unwind — e.g. bad_alloc out of the sweep) and unregisters the flight
  // from its destructor, so followers can never deadlock on a flight
  // whose leader died. Publication happens before unregistration, so a
  // thread that finds no flight is guaranteed to find the cache entry
  // (the Peek above closes the other ordering).
  struct FlightCompleter {
    GuidanceProvider* provider;
    const GuidanceKey& key;
    const std::shared_ptr<Flight>& flight;
    std::shared_ptr<const RRGuidance> result;
    ~FlightCompleter() {
      {
        std::lock_guard<std::mutex> lock(flight->mu);
        flight->result = result;
        flight->done = true;
      }
      flight->cv.notify_all();
      std::lock_guard<std::mutex> lock(provider->flights_mu_);
      provider->flights_.erase(key);
    }
  } completer{this, key, flight, nullptr};

  // Repair first: a miss immediately after a recorded mutation can patch
  // the predecessor version's guidance in time proportional to the damage
  // instead of re-sweeping O(|E|). Any failed precondition falls back to
  // the full sweep — correctness never depends on the repair succeeding.
  result.guidance = TryRepair(graph, roots, request);
  if (result.guidance != nullptr) {
    result.repaired = true;
  } else {
    result.guidance = GenerateNow(graph, roots);
  }
  cache_.Insert(key, result.guidance);
  completer.result = result.guidance;
  result.acquire_seconds = timer.Seconds();
  return result;
}

void GuidanceProvider::RecordMutation(std::shared_ptr<const Graph> old_graph,
                                      const Graph& new_graph,
                                      std::shared_ptr<const GraphDelta> delta) {
  if (!options_.repair.enabled || options_.repair.lineage_capacity == 0 ||
      old_graph == nullptr || delta == nullptr) {
    return;
  }
  uint64_t new_fp = new_graph.fingerprint();
  std::lock_guard<std::mutex> lock(lineage_mu_);
  if (lineage_.emplace(new_fp, Lineage{std::move(old_graph),
                                       std::move(delta)}).second) {
    lineage_fifo_.push_back(new_fp);
    while (lineage_fifo_.size() > options_.repair.lineage_capacity) {
      lineage_.erase(lineage_fifo_.front());
      lineage_fifo_.pop_front();
    }
  }
}

std::shared_ptr<const RRGuidance> GuidanceProvider::TryRepair(
    const Graph& graph, const std::vector<VertexId>& roots,
    const GuidanceRequest* request) {
  if (!options_.repair.enabled) return nullptr;
  Lineage lineage;
  {
    std::lock_guard<std::mutex> lock(lineage_mu_);
    auto it = lineage_.find(graph.fingerprint());
    if (it == lineage_.end()) return nullptr;  // unknown graph: no fallback
    lineage = it->second;
  }
  auto fall_back = [&]() -> std::shared_ptr<const RRGuidance> {
    std::lock_guard<std::mutex> slock(stats_mu_);
    ++stats_.repair_fallbacks;
    return nullptr;
  };

  const Graph& old_graph = *lineage.old_graph;
  // Heuristic: a delta touching a large fraction of the old edge set
  // damages too much for patching to beat the sweep it replaces.
  if (static_cast<double>(lineage.delta->size()) >
      options_.repair.max_delta_fraction *
          static_cast<double>(old_graph.num_edges())) {
    return fall_back();
  }

  // The old guidance lives under the OLD graph's key, which needs the old
  // root set. With policy context we re-derive it (policies are pure
  // functions of the topology); with explicit roots, the caller's roots
  // must already exist in the old version or the keys cannot correspond.
  std::vector<VertexId> old_roots;
  if (request != nullptr) {
    old_roots = SelectRoots(old_graph, *request);
    if (old_roots.empty()) return fall_back();
    if (request->policy == GuidanceRootPolicy::kSingleSource &&
        request->root >= old_graph.num_vertices()) {
      return fall_back();  // querying a vertex the old version lacked
    }
  } else {
    for (VertexId r : roots) {
      if (r >= old_graph.num_vertices()) return fall_back();
    }
    old_roots = roots;
  }

  // Lookup (not Peek): the store fallback makes warm-restart repair work —
  // the predecessor entry may only exist on disk.
  GuidanceKey old_key =
      GuidanceCache::MakeKey(old_graph.fingerprint(), old_roots);
  std::shared_ptr<const RRGuidance> old_guidance = cache_.Lookup(old_key);
  if (old_guidance == nullptr) return fall_back();
  if (!old_guidance->has_levels()) {
    return fall_back();  // pre-levels store entry: not repairable
  }

  Timer repair_timer;
  Result<RRGuidance> repaired = RRGuidance::Repair(
      graph, *lineage.delta, *old_guidance, old_roots, roots,
      options_.repair.max_affected_fraction);
  if (!repaired.ok()) return fall_back();  // e.g. the cascade blew its bound
  if (repair_hist_ != nullptr) repair_hist_->Observe(repair_timer.Seconds());
  {
    std::lock_guard<std::mutex> slock(stats_mu_);
    ++stats_.repairs;
  }
  return std::make_shared<const RRGuidance>(std::move(repaired).value());
}

std::shared_ptr<const RRGuidance> GuidanceProvider::GenerateNow(
    const Graph& graph, const std::vector<VertexId>& roots) {
  // The pool's ParallelRun is single-job; serialize generators on it.
  // (Concurrent misses on one key never reach here twice — singleflight
  // coalesces them — so this lock only queues sweeps for DIFFERENT keys,
  // which would otherwise fight over the workers.)
  std::lock_guard<std::mutex> lock(pool_mu_);
  Timer generation_timer;
  auto guidance =
      std::make_shared<const RRGuidance>(RRGuidance::GenerateWithStrategy(
          graph, roots, options_.generation_strategy, GenerationPool(),
          options_.generation_mini_chunk));
  if (generation_hist_ != nullptr) {
    generation_hist_->Observe(generation_timer.Seconds());
  }
  {
    std::lock_guard<std::mutex> slock(stats_mu_);
    ++stats_.generations;
  }
  return guidance;
}

bool GuidanceProvider::NegativeLookup(const NegativeKey& key) {
  std::lock_guard<std::mutex> lock(negative_mu_);
  if (negative_.find(key) == negative_.end()) return false;
  {
    std::lock_guard<std::mutex> slock(stats_mu_);
    ++stats_.negative_hits;
  }
  return true;
}

void GuidanceProvider::NegativeInsert(const NegativeKey& key) {
  if (options_.negative_cache_capacity == 0) return;
  std::lock_guard<std::mutex> lock(negative_mu_);
  if (!negative_.insert(key).second) return;
  negative_fifo_.push_back(key);
  while (negative_fifo_.size() > options_.negative_cache_capacity) {
    negative_.erase(negative_fifo_.front());
    negative_fifo_.pop_front();
  }
}

void GuidanceProvider::ClearNegativeCache() {
  std::lock_guard<std::mutex> lock(negative_mu_);
  negative_.clear();
  negative_fifo_.clear();
}

GuidanceProviderStats GuidanceProvider::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

size_t GuidanceProvider::generation_threads() const {
  size_t t = options_.generation_threads;
  if (t == 0) {
    t = std::thread::hardware_concurrency();
    if (t == 0) t = 1;
  }
  return t;
}

ThreadPool* GuidanceProvider::GenerationPool() {
  size_t t = generation_threads();
  if (t <= 1) return nullptr;  // serial reference path
  if (pool_ == nullptr) pool_ = std::make_unique<ThreadPool>(t);
  return pool_.get();
}

}  // namespace slfe
