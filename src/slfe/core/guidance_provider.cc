#include "slfe/core/guidance_provider.h"

#include <thread>
#include <utility>

#include "slfe/common/timer.h"
#include "slfe/core/roots.h"

namespace slfe {

GuidanceProvider::GuidanceProvider(GuidanceProviderOptions options)
    : options_(options), cache_(options.cache_capacity) {}

GuidanceProvider& GuidanceProvider::Global() {
  static GuidanceProvider* provider = new GuidanceProvider();
  return *provider;
}

std::vector<VertexId> GuidanceProvider::SelectRoots(
    const Graph& graph, const GuidanceRequest& request) {
  switch (request.policy) {
    case GuidanceRootPolicy::kSingleSource:
      return {request.root};
    case GuidanceRootPolicy::kSourceVertices:
      return SelectSourceRoots(graph);
    case GuidanceRootPolicy::kLocalMinima:
      return SelectLocalMinimaRoots(graph);
  }
  return {};
}

GuidanceAcquisition GuidanceProvider::Acquire(const Graph& graph,
                                              const GuidanceRequest& request) {
  // Root selection is an O(V..V+E) scan for the non-single-source policies
  // and repeats on every job, so it belongs in the reported acquisition
  // cost — even on the cache-hit path.
  Timer timer;
  GuidanceAcquisition result =
      AcquireForRoots(graph, SelectRoots(graph, request), request.use_cache);
  result.acquire_seconds = timer.Seconds();
  return result;
}

GuidanceAcquisition GuidanceProvider::AcquireForRoots(
    const Graph& graph, const std::vector<VertexId>& roots, bool use_cache) {
  Timer timer;
  GuidanceAcquisition result;
  GuidanceKey key = GuidanceCache::MakeKey(graph.fingerprint(), roots);
  if (use_cache) {
    result.guidance = cache_.Lookup(key);
    if (result.guidance != nullptr) {
      result.cache_hit = true;
      result.acquire_seconds = timer.Seconds();
      return result;
    }
  }
  {
    // The pool's ParallelRun is single-job; serialize generators on it.
    // (Concurrent misses on different keys queue here rather than fight
    // over workers — generation is the expensive, parallel-inside part.)
    std::lock_guard<std::mutex> lock(pool_mu_);
    result.guidance = std::make_shared<const RRGuidance>(
        RRGuidance::Generate(graph, roots, GenerationPool()));
  }
  if (use_cache) cache_.Insert(key, result.guidance);
  result.acquire_seconds = timer.Seconds();
  return result;
}

size_t GuidanceProvider::generation_threads() const {
  size_t t = options_.generation_threads;
  if (t == 0) {
    t = std::thread::hardware_concurrency();
    if (t == 0) t = 1;
  }
  return t;
}

ThreadPool* GuidanceProvider::GenerationPool() {
  size_t t = generation_threads();
  if (t <= 1) return nullptr;  // serial reference path
  if (pool_ == nullptr) pool_ = std::make_unique<ThreadPool>(t);
  return pool_.get();
}

}  // namespace slfe
