#include "slfe/core/roots.h"

namespace slfe {

std::vector<VertexId> SelectLocalMinimaRoots(const Graph& graph) {
  std::vector<VertexId> roots;
  const Csr& in = graph.in();
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    bool is_min = true;
    for (EdgeId e = in.begin(v); e < in.end(v) && is_min; ++e) {
      if (in.neighbor(e) < v) is_min = false;
    }
    if (is_min) roots.push_back(v);
  }
  return roots;
}

std::vector<VertexId> SelectSourceRoots(const Graph& graph) {
  std::vector<VertexId> roots;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    if (graph.in_degree(v) == 0) roots.push_back(v);
  }
  if (roots.empty() && graph.num_vertices() > 0) roots.push_back(0);
  return roots;
}

}  // namespace slfe
