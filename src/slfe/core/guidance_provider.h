#ifndef SLFE_CORE_GUIDANCE_PROVIDER_H_
#define SLFE_CORE_GUIDANCE_PROVIDER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "slfe/common/thread_pool.h"
#include "slfe/core/guidance_cache.h"
#include "slfe/obs/metrics.h"
#include "slfe/core/guidance_store.h"
#include "slfe/core/rr_guidance.h"
#include "slfe/graph/graph.h"
#include "slfe/graph/types.h"

namespace slfe {

struct GraphDelta;

/// How the provider derives the guidance root set from a request — the
/// per-application-class policies that used to be duplicated across the
/// apps (DESIGN.md: the sweep must start where the application's own
/// propagation starts).
enum class GuidanceRootPolicy {
  /// Single-source apps (SSSP/BFS/WP/NumPaths): the query root.
  kSingleSource,
  /// Arithmetic apps (PR/TR/SpMV/BP/Heat): zero-in-degree vertices, with
  /// the vertex-0 fallback on cycle-bound graphs.
  kSourceVertices,
  /// Min-label apps (CC): local-minimum vertices.
  kLocalMinima,
};

/// One guidance request: the policy plus whatever the policy needs.
struct GuidanceRequest {
  GuidanceRootPolicy policy = GuidanceRootPolicy::kSourceVertices;
  /// Query root for kSingleSource (ignored otherwise).
  VertexId root = 0;
  /// Bypass the cache (always regenerate, never insert). Benches use this
  /// to measure per-job regeneration cost.
  bool use_cache = true;
};

/// What Acquire hands back: shared ownership of the guidance (engines and
/// runners may outlive cache eviction), whether this was the paper's §4.4
/// amortized path, and the wall cost actually paid by THIS job — the
/// generation time on a miss, the (near-zero) lookup time on a hit, the
/// leader's remaining generation time when the request was coalesced onto
/// an in-flight generation. The Fig. 8 overhead accounting uses
/// acquire_seconds, so repeated jobs show the amortization directly.
struct GuidanceAcquisition {
  std::shared_ptr<const RRGuidance> guidance;
  bool cache_hit = false;
  /// True when this request waited on (and shares the result of) another
  /// thread's in-flight generation instead of sweeping itself.
  bool coalesced = false;
  /// True when the generation leader patched the previous graph version's
  /// guidance (RRGuidance::Repair) instead of sweeping from scratch.
  /// Only ever set on the leader; followers report coalesced as usual.
  bool repaired = false;
  /// True when cache_hit was served by the persistent store's disk-load
  /// path rather than the in-memory LRU (trace outcome "store").
  bool store_hit = false;
  double acquire_seconds = 0;

  const RRGuidance* get() const { return guidance.get(); }
  explicit operator bool() const { return guidance != nullptr; }
};

/// Knobs for the incremental-repair path (see RecordMutation). Repair
/// turns a post-mutation guidance miss from an O(|E|) sweep into work
/// proportional to the damaged region, but only pays off for small
/// deltas — both fractions below bound when it is attempted at all.
struct GuidanceRepairOptions {
  bool enabled = true;
  /// Deltas touching more than this fraction of the old graph's edges
  /// regenerate outright (the repair bookkeeping would cost more than the
  /// sweep it saves).
  double max_delta_fraction = 0.25;
  /// Abort a running repair (and fall back to regeneration) once the
  /// invalidation cascade exceeds this fraction of the new graph's
  /// vertices — forwarded to RRGuidance::Repair.
  double max_affected_fraction = 0.5;
  /// Remembered mutations (new-fingerprint -> predecessor lineage), FIFO
  /// evicted. 0 disables lineage tracking (and thereby repair).
  size_t lineage_capacity = 32;
};

struct GuidanceProviderOptions {
  /// Maximum cached (graph, roots) entries.
  size_t cache_capacity = 32;
  /// Workers for parallel generation; 0 = hardware concurrency. A value of
  /// 1 forces the serial reference sweep.
  size_t generation_threads = 0;
  /// Which sweep implementation misses are generated with. kAuto =
  /// partitioned-parallel when generation_threads > 1, serial otherwise;
  /// kUniformParallel keeps the pre-partitioning slicing (ablations). All
  /// strategies produce bit-identical guidance.
  GuidanceGenerationStrategy generation_strategy =
      GuidanceGenerationStrategy::kAuto;
  /// Work-stealing granularity (vertices per mini-chunk) for the
  /// partitioned sweep's push phase. 0 = the paper's 256; tune per host —
  /// the ROADMAP multicore-crossover knob, exposed as --mini-chunk.
  size_t generation_mini_chunk = 0;
  /// Non-empty = persist cache entries as fingerprint-keyed files in this
  /// directory (typically next to the ooc shard files), so the §4.4
  /// amortization survives process restarts. Empty = in-memory only.
  std::string store_dir;
  /// Lifecycle policy for the store directory (ignored when store_dir is
  /// empty): TTL + LRU-by-mtime byte/entry budgets, swept when the store
  /// is constructed and on GuidanceStore::Sweep(). Defaults keep
  /// everything forever.
  GuidanceStoreGcOptions store_gc;
  /// Maximum remembered unproducible requests (see the negative cache
  /// note on GuidanceProvider). 0 disables negative caching.
  size_t negative_cache_capacity = 64;
  /// Incremental-repair policy for mutated graphs.
  GuidanceRepairOptions repair;
  /// Hotness gate for store admission (ignored when store_dir is empty).
  /// When set, a generated entry only write-throughs to disk if
  /// `store_admission(graph_fingerprint)` returns true; cold one-shot
  /// graphs keep their guidance in memory but skip the .rrg write, and a
  /// later in-memory hit promotes the entry once the gate opens (see
  /// GuidanceCache::SetStoreAdmission). nullptr = admit everything.
  std::function<bool(uint64_t graph_fingerprint)> store_admission;
  /// Optional registry for generation/repair/store-load duration
  /// histograms. Must outlive the provider; null = no instrumentation.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Provider-level counters (the cache and store keep their own).
struct GuidanceProviderStats {
  /// Sweeps actually executed (each one paid O(|E|)).
  uint64_t generations = 0;
  /// Requests that piggybacked on another thread's in-flight sweep.
  uint64_t coalesced = 0;
  /// Requests short-circuited by the negative cache.
  uint64_t negative_hits = 0;
  /// Misses served by patching the predecessor version's guidance
  /// (RRGuidance::Repair) instead of a full sweep.
  uint64_t repairs = 0;
  /// Repair attempts that found a recorded lineage but regenerated anyway
  /// (delta too large, predecessor guidance missing or levels-less, roots
  /// incompatible, or the invalidation cascade blew its bound).
  uint64_t repair_fallbacks = 0;
};

class GuidanceProvider;

/// The one rule for resolving an optional provider argument: nullptr means
/// the process-global instance. Shared by every guided entry point
/// (app_common's AcquireGuidance, the guided GAS and ooc apps).
GuidanceProvider& ResolveProvider(GuidanceProvider* provider);

/// The single guidance entry point shared by the apps, the distributed
/// engine (via EngineOptions::guidance), and the out-of-core engine:
/// selects roots per policy, serves repeated jobs from the GuidanceCache
/// (and, when a store directory is configured, from disk across process
/// restarts), and generates misses with the frontier-parallel sweep.
///
/// Thread-safe, with two multi-tenant protections:
///
///  * **Singleflight.** Concurrent misses on one key are coalesced: the
///    first thread becomes the generation leader, every other thread
///    blocks on its flight and shares the one result (acquisitions report
///    coalesced = true). Exactly one O(|E|) sweep runs per key no matter
///    how many tenants request it simultaneously.
///
///  * **Negative cache.** Requests that cannot yield useful guidance —
///    the root policy selected an empty root set, which makes the sweep a
///    no-op that disables all redundancy reduction — are remembered, and
///    repeats return a null acquisition (baseline mode) immediately,
///    skipping both the O(V+E) root-selection rescan and the no-op sweep.
///    Eviction policy: a bounded FIFO of `negative_cache_capacity` request
///    keys (fingerprint, policy, root); when full, the oldest entry is
///    dropped. Entries are never revalidated by time — a Graph is
///    immutable, so an empty root set is a permanent property of
///    (topology, policy) — but ClearNegativeCache() resets the set (e.g.
///    for tests reusing fingerprints across synthetic graphs).
class GuidanceProvider {
 public:
  explicit GuidanceProvider(GuidanceProviderOptions options = {});

  /// Process-wide default instance, shared by all apps unless an AppConfig
  /// points at a private one — this is what amortizes guidance across the
  /// ~8.7 jobs per graph without any coordination between callers.
  static GuidanceProvider& Global();

  /// Policy-driven acquisition (the app path).
  GuidanceAcquisition Acquire(const Graph& graph,
                              const GuidanceRequest& request);

  /// Explicit-roots acquisition (benches / tests / custom apps). An empty
  /// root set returns a null acquisition (baseline mode) — see the
  /// negative cache note above.
  GuidanceAcquisition AcquireForRoots(const Graph& graph,
                                      const std::vector<VertexId>& roots,
                                      bool use_cache = true);

  /// Root selection for `request` — exposed so diagnostics can inspect
  /// what the policies produce.
  static std::vector<VertexId> SelectRoots(const Graph& graph,
                                           const GuidanceRequest& request);

  /// Remembers that `new_graph` was produced from `old_graph` by `delta`,
  /// so the NEXT guidance miss on the new graph can patch the old
  /// version's guidance (RRGuidance::Repair) instead of re-sweeping.
  /// Lineages are a bounded FIFO (repair.lineage_capacity); evicted or
  /// never-recorded mutations simply regenerate. The old graph is held
  /// alive by shared ownership only until its lineage entry is evicted.
  void RecordMutation(std::shared_ptr<const Graph> old_graph,
                      const Graph& new_graph,
                      std::shared_ptr<const GraphDelta> delta);

  GuidanceCache& cache() { return cache_; }
  GuidanceCacheStats cache_stats() const { return cache_.stats(); }
  GuidanceProviderStats stats() const;

  /// The persistent spill layer, or nullptr when store_dir was empty.
  GuidanceStore* store() const { return store_.get(); }

  /// Forgets every negatively cached request.
  void ClearNegativeCache();

  /// Number of workers generation will use (resolves the 0 = hardware
  /// default).
  size_t generation_threads() const;

 private:
  /// A negatively cached request: the graph plus the policy inputs that
  /// produced an empty root set.
  struct NegativeKey {
    uint64_t graph_fingerprint = 0;
    GuidanceRootPolicy policy = GuidanceRootPolicy::kSourceVertices;
    VertexId root = 0;

    bool operator==(const NegativeKey& o) const {
      return graph_fingerprint == o.graph_fingerprint && policy == o.policy &&
             root == o.root;
    }
  };
  struct NegativeKeyHash {
    size_t operator()(const NegativeKey& k) const {
      uint64_t h = k.graph_fingerprint;
      h ^= static_cast<uint64_t>(k.policy) + 0x9e3779b97f4a7c15ull +
           (h << 6) + (h >> 2);
      h ^= static_cast<uint64_t>(k.root) + 0x9e3779b97f4a7c15ull + (h << 6) +
           (h >> 2);
      return static_cast<size_t>(h);
    }
  };

  /// One in-flight generation; followers block on cv until the leader
  /// publishes `result` and flips `done`.
  struct Flight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    std::shared_ptr<const RRGuidance> result;
  };

  /// One recorded mutation: how `new_fingerprint`'s graph came to be.
  struct Lineage {
    std::shared_ptr<const Graph> old_graph;
    std::shared_ptr<const GraphDelta> delta;
  };

  bool NegativeLookup(const NegativeKey& key);
  void NegativeInsert(const NegativeKey& key);

  /// Shared slow path behind Acquire/AcquireForRoots. `request` is the
  /// policy context when one exists (the Acquire path) — repair needs it
  /// to re-derive the OLD graph's root set; nullptr (explicit-roots path)
  /// restricts repair to roots that exist in both versions.
  GuidanceAcquisition AcquireInternal(const Graph& graph,
                                      const std::vector<VertexId>& roots,
                                      bool use_cache,
                                      const GuidanceRequest* request);

  /// The uncached sweep (leader path); counts a generation.
  std::shared_ptr<const RRGuidance> GenerateNow(
      const Graph& graph, const std::vector<VertexId>& roots);

  /// Attempts the incremental-repair path for a miss on `graph`: finds a
  /// recorded lineage, checks the delta-size heuristic, recovers the
  /// predecessor's guidance (memory or store) and patches it. Returns
  /// null — counting a repair_fallback iff a lineage existed — when any
  /// precondition fails; the caller then regenerates.
  std::shared_ptr<const RRGuidance> TryRepair(
      const Graph& graph, const std::vector<VertexId>& roots,
      const GuidanceRequest* request);

  ThreadPool* GenerationPool();

  GuidanceProviderOptions options_;
  GuidanceCache cache_;
  std::shared_ptr<GuidanceStore> store_;  // null = in-memory only

  std::mutex pool_mu_;
  std::unique_ptr<ThreadPool> pool_;  // lazily built, serial mode = none

  std::mutex flights_mu_;
  std::unordered_map<GuidanceKey, std::shared_ptr<Flight>, GuidanceKeyHash>
      flights_;

  mutable std::mutex negative_mu_;
  std::unordered_set<NegativeKey, NegativeKeyHash> negative_;
  std::deque<NegativeKey> negative_fifo_;  // front = oldest, next to evict

  mutable std::mutex lineage_mu_;
  /// New graph fingerprint -> how it was derived (bounded FIFO).
  std::unordered_map<uint64_t, Lineage> lineage_;
  std::deque<uint64_t> lineage_fifo_;  // front = oldest, next to evict

  mutable std::mutex stats_mu_;
  GuidanceProviderStats stats_;

  /// Duration histograms (owned by options_.metrics; null when absent).
  obs::Histogram* generation_hist_ = nullptr;
  obs::Histogram* repair_hist_ = nullptr;
  obs::Histogram* store_load_hist_ = nullptr;
};

}  // namespace slfe

#endif  // SLFE_CORE_GUIDANCE_PROVIDER_H_
