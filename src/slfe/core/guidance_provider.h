#ifndef SLFE_CORE_GUIDANCE_PROVIDER_H_
#define SLFE_CORE_GUIDANCE_PROVIDER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "slfe/common/thread_pool.h"
#include "slfe/core/guidance_cache.h"
#include "slfe/core/rr_guidance.h"
#include "slfe/graph/graph.h"
#include "slfe/graph/types.h"

namespace slfe {

/// How the provider derives the guidance root set from a request — the
/// per-application-class policies that used to be duplicated across the
/// apps (DESIGN.md: the sweep must start where the application's own
/// propagation starts).
enum class GuidanceRootPolicy {
  /// Single-source apps (SSSP/BFS/WP/NumPaths): the query root.
  kSingleSource,
  /// Arithmetic apps (PR/TR/SpMV/BP/Heat): zero-in-degree vertices, with
  /// the vertex-0 fallback on cycle-bound graphs.
  kSourceVertices,
  /// Min-label apps (CC): local-minimum vertices.
  kLocalMinima,
};

/// One guidance request: the policy plus whatever the policy needs.
struct GuidanceRequest {
  GuidanceRootPolicy policy = GuidanceRootPolicy::kSourceVertices;
  /// Query root for kSingleSource (ignored otherwise).
  VertexId root = 0;
  /// Bypass the cache (always regenerate, never insert). Benches use this
  /// to measure per-job regeneration cost.
  bool use_cache = true;
};

/// What Acquire hands back: shared ownership of the guidance (engines and
/// runners may outlive cache eviction), whether this was the paper's §4.4
/// amortized path, and the wall cost actually paid by THIS job — the
/// generation time on a miss, the (near-zero) lookup time on a hit. The
/// Fig. 8 overhead accounting uses acquire_seconds, so repeated jobs show
/// the amortization directly.
struct GuidanceAcquisition {
  std::shared_ptr<const RRGuidance> guidance;
  bool cache_hit = false;
  double acquire_seconds = 0;

  const RRGuidance* get() const { return guidance.get(); }
  explicit operator bool() const { return guidance != nullptr; }
};

struct GuidanceProviderOptions {
  /// Maximum cached (graph, roots) entries.
  size_t cache_capacity = 32;
  /// Workers for parallel generation; 0 = hardware concurrency. A value of
  /// 1 forces the serial reference sweep.
  size_t generation_threads = 0;
};

/// The single guidance entry point shared by the apps, the distributed
/// engine (via EngineOptions::guidance), and the out-of-core engine:
/// selects roots per policy, serves repeated jobs from the GuidanceCache,
/// and generates misses with the frontier-parallel sweep. Thread-safe;
/// concurrent misses on the same key may generate twice, and the cache
/// keeps the newest result (generation is deterministic, so both are
/// identical).
class GuidanceProvider {
 public:
  explicit GuidanceProvider(GuidanceProviderOptions options = {});

  /// Process-wide default instance, shared by all apps unless an AppConfig
  /// points at a private one — this is what amortizes guidance across the
  /// ~8.7 jobs per graph without any coordination between callers.
  static GuidanceProvider& Global();

  /// Policy-driven acquisition (the app path).
  GuidanceAcquisition Acquire(const Graph& graph,
                              const GuidanceRequest& request);

  /// Explicit-roots acquisition (benches / tests / custom apps).
  GuidanceAcquisition AcquireForRoots(const Graph& graph,
                                      const std::vector<VertexId>& roots,
                                      bool use_cache = true);

  /// Root selection for `request` — exposed so diagnostics can inspect
  /// what the policies produce.
  static std::vector<VertexId> SelectRoots(const Graph& graph,
                                           const GuidanceRequest& request);

  GuidanceCache& cache() { return cache_; }
  GuidanceCacheStats cache_stats() const { return cache_.stats(); }

  /// Number of workers generation will use (resolves the 0 = hardware
  /// default).
  size_t generation_threads() const;

 private:
  ThreadPool* GenerationPool();

  GuidanceProviderOptions options_;
  GuidanceCache cache_;
  std::mutex pool_mu_;
  std::unique_ptr<ThreadPool> pool_;  // lazily built, serial mode = none
};

}  // namespace slfe

#endif  // SLFE_CORE_GUIDANCE_PROVIDER_H_
