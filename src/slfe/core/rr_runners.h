#ifndef SLFE_CORE_RR_RUNNERS_H_
#define SLFE_CORE_RR_RUNNERS_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "slfe/common/logging.h"
#include "slfe/core/rr_guidance.h"
#include "slfe/engine/dist_engine.h"
#include "slfe/sim/cluster.h"

namespace slfe {

/// The SLFE programming interface (paper Table 3), layered on DistEngine.
///
///   min/max: edgeProc(pushFunc, pullFunc, activeVerts, Ruler)
///     -> MinMaxRunner::Run (Ruler = iteration counter, singleRuler)
///   arith:   edgeProc(pushFunc, pullFunc) + vertexUpdate(vertexFunc)
///     -> ArithRunner::Run (RulerS = per-vertex stable counters, multiRuler)
///
/// Each runner executes in both baseline mode (guidance == nullptr: the
/// plain Gemini-style engine) and RR mode, so every benchmark's
/// "w/o RR vs w/ RR" comparison runs identical code paths modulo the
/// redundancy logic.

/// How "start late" recovers updates that were delivered while their
/// observer was still delayed. The variants are ablated in
/// bench_ablation; all three converge to the same values.
enum class RRVariant {
  /// Default: the first processed iteration of a delayed vertex gathers
  /// from ALL in-neighbors (paper §3.2: "requires vx to collect the
  /// inputs from all of them"), later iterations gather incrementally.
  /// No transition reactivation needed; cost is one full in-degree scan
  /// per vertex.
  kGatherAllAtStart,
  /// Track vertices whose update may be unseen by a delayed successor and
  /// reactivate exactly those on each pull->push transition (the precise
  /// form of Algorithm 3's rule; reproduces the small circled bump in
  /// Fig. 9a).
  kDirtyPush,
  /// Paper Algorithm 3 verbatim: reactivate every vertex on a pull->push
  /// transition (conservative, most extra work).
  kAllPush,
};

/// Runner for applications whose aggregation is a monotone min()/max()
/// comparison (SSSP, CC, WP, ...). With guidance attached it implements
/// "start late": in pull mode, destination v is skipped until the
/// iteration Ruler reaches RRG[v].lastIter (Algorithm 2,
/// pullEdge_singleRuler). Delayed updates are recovered per RRVariant,
/// and a terminal verification sweep guarantees the fixpoint regardless
/// of guidance quality (Theorem 1 made unconditional).
template <typename V>
class MinMaxRunner {
 public:
  struct RunResult {
    EngineStats stats;
    uint64_t supersteps = 0;
    uint64_t safety_sweep_updates = 0;  ///< nonzero = guidance roots missed
    /// Edge evaluations spent by terminal verification sweeps that found
    /// nothing. Excluded from stats.computations (they are a checker pass,
    /// not part of the algorithm); sweeps that DO find updates stay
    /// counted because that work was genuinely required.
    uint64_t verification_computations = 0;
  };

  /// Provider-threaded form: picks up the guidance the app routed through
  /// EngineOptions::guidance (null = baseline), so runner construction no
  /// longer repeats the guidance plumbing per app.
  explicit MinMaxRunner(DistEngine<V>* engine,
                        RRVariant variant = RRVariant::kGatherAllAtStart)
      : MinMaxRunner(engine, engine->guidance(), variant) {}

  /// `engine` must outlive the runner. `guidance` enables RR when non-null.
  MinMaxRunner(DistEngine<V>* engine, const RRGuidance* guidance,
               RRVariant variant = RRVariant::kGatherAllAtStart)
      : engine_(engine), guidance_(guidance), variant_(variant) {
    if (guidance_ != nullptr) {
      switch (variant_) {
        case RRVariant::kGatherAllAtStart:
          engine_->mutable_options().reactivation =
              TransitionReactivation::kNone;
          break;
        case RRVariant::kDirtyPush:
          engine_->mutable_options().reactivation =
              TransitionReactivation::kDirty;
          break;
        case RRVariant::kAllPush:
          engine_->mutable_options().reactivation =
              TransitionReactivation::kAll;
          break;
      }
    }
  }

  /// Collective SPMD entry point. `seeds` are activated before the loop;
  /// gather/apply/scatter define the app exactly as for DistEngine.
  /// Iterates until no vertex is active (paper: while(activeVerts)).
  ///
  /// When RR is enabled, a terminal *safety sweep* re-processes any vertex
  /// whose computation never started (Ruler stayed below lastIter for the
  /// whole run — possible when the guidance roots only approximate the
  /// app's propagation sources); the loop resumes if the sweep finds an
  /// update, so the final values always match the baseline fixpoint.
  RunResult Run(sim::NodeContext& ctx, const std::vector<VertexId>& seeds,
                V identity, const typename DistEngine<V>::GatherFn& gather,
                const typename DistEngine<V>::ApplyFn& apply,
                const typename DistEngine<V>::ScatterFn& scatter) {
    RunResult result;
    const bool rr = guidance_ != nullptr;
    engine_->BeginRun(ctx);
    if (rr) {
      if (ctx.rank == 0 && variant_ == RRVariant::kGatherAllAtStart) {
        started_.assign(engine_->dist_graph().graph().num_vertices(), 0);
      }
      if (variant_ == RRVariant::kDirtyPush) {
        InstallDirtyBookkeeping(ctx);
        SetIterationForDirtyPolicy(ctx, 0);
      }
      ctx.world->Barrier();
    }
    for (VertexId s : seeds) engine_->ActivateSeed(ctx, s);
    uint64_t active = engine_->PromoteActiveSet(ctx);

    uint32_t ruler = 0;  // the single Ruler: the iteration counter
    typename DistEngine<V>::PullFilterFn filter = nullptr;

    while (true) {
      while (active > 0) {
        ++ruler;
        if (rr) {
          if (variant_ == RRVariant::kDirtyPush) {
            SetIterationForDirtyPolicy(ctx, ruler);
          }
          // pullEdge_singleRuler: delay dst until Ruler reaches lastIter
          // ("start late").
          uint32_t current = ruler;
          if (variant_ == RRVariant::kGatherAllAtStart) {
            filter = [this, current](VertexId dst) {
              if (current < guidance_->last_iter(dst)) {
                return PullAction::kSkip;
              }
              if (started_[dst] == 0) {
                started_[dst] = 1;
                return PullAction::kGatherAll;
              }
              return PullAction::kGatherActive;
            };
          } else {
            // Push-based recovery variants gather incrementally; the
            // transition push re-delivers what delayed vertices missed
            // (paper §3.3: "SLFE leverages the push to ensure the
            // application's correctness").
            filter = [this, current](VertexId dst) {
              return current >= guidance_->last_iter(dst)
                         ? PullAction::kGatherActive
                         : PullAction::kSkip;
            };
          }
        }
        active = engine_->ProcessEdges(ctx, identity, gather, apply, scatter,
                                       filter);
        ++result.supersteps;
      }
      if (!rr) break;

      // Terminal sweep over vertices that never unlocked (the run ended
      // before the Ruler reached their lastIter, so they were never
      // computed). Every unlocked vertex already recovered its delayed
      // updates at its own unlock (gather-all) and tracked later ones
      // through active gathering or pushes, so only this residue needs a
      // gather-all pass. If it finds nothing (the common case) its cost is
      // reclassified as verification.
      EngineStats before = engine_->FinishRun(ctx);
      const Mode kForcePull = Mode::kPull;
      active = engine_->ProcessEdges(
          ctx, identity, gather, apply, scatter,
          [this](VertexId dst) {
            if (variant_ == RRVariant::kGatherAllAtStart) {
              // Sweep only vertices whose one-time unlock gather has not
              // happened — and do NOT mark them started: if the run
              // resumes, their natural unlock must still gather-all,
              // because sources may settle between this sweep and that
              // unlock while the vertex is still delayed (sweeps fire on
              // premature active-set death, ahead of the schedule).
              return started_[dst] == 0 ? PullAction::kGatherAll
                                        : PullAction::kSkip;
            }
            // Push-recovery variants gathered incrementally, so any vertex
            // may have missed a pull-delivered update; sweep them all.
            return PullAction::kGatherAll;
          },
          /*gather_all=*/true, &kForcePull);
      ++result.supersteps;
      ++ruler;
      EngineStats after = engine_->FinishRun(ctx);
      uint64_t swept = after.updates - before.updates;
      result.safety_sweep_updates += swept;
      if (swept == 0) {
        result.verification_computations +=
            after.computations - before.computations;
      }
      if (active == 0) break;  // converged; sweep confirmed the fixpoint
    }
    result.stats = engine_->FinishRun(ctx);
    result.stats.computations -= result.verification_computations;
    return result;
  }

 private:
  /// Precomputes, per vertex, the latest unlock level among its successors:
  /// an update at iteration t goes "unseen" only when t+1 is earlier than
  /// this threshold (some out-neighbor is still delayed at t+1 and will not
  /// gather the value). Rank 0 builds the table; all ranks share it.
  void InstallDirtyBookkeeping(sim::NodeContext& ctx) {
    if (ctx.rank == 0) {
      const Graph& g = engine_->dist_graph().graph();
      max_out_last_iter_.assign(g.num_vertices(), 0);
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        uint32_t worst = 0;
        g.out().ForEachNeighbor(v, [&](VertexId u, Weight) {
          uint32_t li = guidance_->last_iter(u);
          if (li > worst) worst = li;
        });
        max_out_last_iter_[v] = worst;
      }
    }
    ctx.world->Barrier();
  }

  /// Collective: points the engine's dirty policy at iteration `iter`.
  void SetIterationForDirtyPolicy(sim::NodeContext& ctx, uint32_t iter) {
    ctx.world->Barrier();
    if (ctx.rank == 0) {
      engine_->SetDirtyPolicy([this, iter](VertexId v) {
        return iter + 1 < max_out_last_iter_[v];
      });
    }
    ctx.world->Barrier();
  }

  DistEngine<V>* engine_;
  const RRGuidance* guidance_;
  RRVariant variant_;
  std::vector<uint8_t> started_;  // kGatherAllAtStart: first pull ran
  std::vector<uint32_t> max_out_last_iter_;
};

/// Runner for applications with arithmetic aggregation (PR, TR, SpMV,
/// NumPaths...). Always executes in pull mode (paper footnote 2). With
/// guidance attached it implements "finish early" via
/// pullEdge_multiRuler: per-vertex RulerS counts consecutive iterations
/// with an unchanged result; once RulerS[v] >= lastIter(v) the vertex is
/// early-converged (EC) and its further computations are bypassed, the
/// cached value standing in (Algorithm 5's vertexUpdate).
template <typename V>
class ArithRunner {
 public:
  struct RunResult {
    EngineStats stats;
    uint64_t supersteps = 0;
    uint64_t ec_vertices = 0;          ///< frozen at termination (Fig. 2)
    std::vector<uint64_t> ec_history;  ///< EC count after each iteration
  };

  /// Provider-threaded form: reads EngineOptions::guidance (see
  /// MinMaxRunner).
  explicit ArithRunner(DistEngine<V>* engine)
      : ArithRunner(engine, engine->guidance()) {}

  ArithRunner(DistEngine<V>* engine, const RRGuidance* guidance)
      : engine_(engine), guidance_(guidance) {
    engine_->mutable_options().mode_policy = ModePolicy::kAlwaysPull;
  }

  /// Floor on the per-vertex stability horizon. Arithmetic values travel
  /// around cycles, so a vertex with a very small lastIter can coincide
  /// with a few exactly-stable float rounds while upstream values are
  /// still moving; requiring at least this many stable rounds guards
  /// against premature freezing (the paper's deep full-size graphs have
  /// naturally large lastIter, masking the issue).
  void set_min_stable_rounds(uint32_t rounds) { min_stable_rounds_ = rounds; }
  uint32_t min_stable_rounds() const { return min_stable_rounds_; }

  /// One user-defined vertex function applied after each propagation
  /// superstep (the paper's vertexUpdate). Receives the vertex and the
  /// gathered accumulator; returns the vertex's new committed value.
  using VertexFn = std::function<V(VertexId, V)>;

  /// Collective SPMD entry point.
  ///
  /// Per iteration: (1) pull-gather accumulators into `accum` for every
  /// non-EC vertex; (2) vertexUpdate commits values via `vertex_fn` and
  /// maintains the stability rulers. Stops after `max_iters` iterations or
  /// when the global max |delta| falls below `epsilon`.
  ///
  /// `values` is the application's property array (shared, size |V|);
  /// `gather` reads it. EC vertices retain their cached value.
  RunResult Run(sim::NodeContext& ctx, std::vector<V>* values,
                V identity, const typename DistEngine<V>::GatherFn& gather,
                const VertexFn& vertex_fn, uint32_t max_iters,
                double epsilon) {
    RunResult result;
    VertexId n = engine_->dist_graph().graph().num_vertices();
    SLFE_CHECK_EQ(values->size(), n);
    const bool rr = guidance_ != nullptr;

    engine_->BeginRun(ctx);
    if (ctx.rank == 0) {
      accum_.assign(n, identity);
      stable_cnt_.assign(n, 0);
      stable_value_ = *values;
      frozen_.assign(n, 0);
    }
    ctx.world->Barrier();
    engine_->ActivateAll(ctx);
    uint64_t active = engine_->PromoteActiveSet(ctx);
    (void)active;

    typename DistEngine<V>::PullFilterFn filter = nullptr;
    if (rr) {
      // pullEdge_multiRuler: skip early-converged vertices outright.
      filter = [this](VertexId dst) {
        return frozen_[dst] == 0 ? PullAction::kGatherAll : PullAction::kSkip;
      };
    }

    for (uint32_t iter = 0; iter < max_iters; ++iter) {
      // Propagation phase: gather into accum (apply stores, no activation
      // semantics needed — arithmetic apps run every non-EC vertex).
      engine_->ProcessEdges(
          ctx, identity, gather,
          [this](VertexId dst, V acc) {
            accum_[dst] = acc;
            return true;  // keep the whole graph active
          },
          /*scatter=*/nullptr, filter, /*gather_all=*/true);
      ++result.supersteps;

      // vertexUpdate phase (Algorithm 5): commit values, track stability,
      // freeze early-converged vertices.
      double delta = engine_->ProcessVertices(ctx, [&](VertexId v) {
        if (rr && frozen_[v] != 0) return 0.0;  // EC: serve cached value
        V next = vertex_fn(v, accum_[v]);
        V prev = (*values)[v];
        (*values)[v] = next;
        if (rr) {
          if (next == stable_value_[v]) {
            ++stable_cnt_[v];
          } else {
            stable_cnt_[v] = 0;
            stable_value_[v] = next;
          }
          if (stable_cnt_[v] >= EffectiveLastIter(v)) frozen_[v] = 1;
        }
        double d = static_cast<double>(next) - static_cast<double>(prev);
        return d < 0 ? -d : d;
      });

      if (rr) {
        uint64_t frozen_local = 0;
        const VertexRange& r = engine_->dist_graph().range(ctx.rank);
        for (VertexId v = r.begin; v < r.end; ++v) frozen_local += frozen_[v];
        uint64_t frozen_total = ctx.world->AllReduceSum(ctx.rank, frozen_local);
        if (ctx.rank == 0) result.ec_history.push_back(frozen_total);
      }
      if (delta < epsilon) break;
    }

    result.stats = engine_->FinishRun(ctx);
    if (!result.ec_history.empty()) {
      result.ec_vertices = result.ec_history.back();
    }
    return result;
  }

 private:
  /// Stability horizon for v (see StabilityHorizon in rr_guidance.h for
  /// the rules; this just binds the runner's configured floor).
  uint64_t EffectiveLastIter(VertexId v) const {
    return StabilityHorizon(guidance_, v, min_stable_rounds_);
  }

  DistEngine<V>* engine_;
  const RRGuidance* guidance_;
  uint32_t min_stable_rounds_ = 8;
  std::vector<V> accum_;
  std::vector<uint32_t> stable_cnt_;   // the paper's RulerS
  std::vector<V> stable_value_;
  std::vector<uint8_t> frozen_;        // EC flags
};

}  // namespace slfe

#endif  // SLFE_CORE_RR_RUNNERS_H_
