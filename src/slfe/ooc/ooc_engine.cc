#include "slfe/ooc/ooc_engine.h"

#include <sys/stat.h>

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "slfe/common/logging.h"
#include "slfe/common/scoped_file.h"
#include "slfe/common/timer.h"

namespace slfe::ooc {

namespace {

/// On-disk edge record (12 bytes, packed by construction).
struct Record {
  uint32_t src;
  uint32_t dst;
  float weight;
};

}  // namespace

std::string OocEngine::ShardPath(uint32_t shard) const {
  return work_dir_ + "/shard_" + std::to_string(shard) + ".bin";
}

Result<OocEngine> OocEngine::Build(const Graph& graph,
                                   const std::string& work_dir,
                                   uint32_t num_shards) {
  if (num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  ::mkdir(work_dir.c_str(), 0755);

  OocEngine engine;
  engine.work_dir_ = work_dir;
  engine.num_shards_ = num_shards;
  engine.num_vertices_ = graph.num_vertices();
  engine.num_edges_ = graph.num_edges();

  // Interval i covers destinations [i*span, (i+1)*span). Within a shard,
  // edges are written grouped by destination with ascending sources
  // (GraphChi keeps them src-sorted for its sliding windows; here the
  // order matters only for determinism).
  VertexId span = (graph.num_vertices() + num_shards - 1) / num_shards;
  const Csr& in = graph.in();
  for (uint32_t s = 0; s < num_shards; ++s) {
    ScopedFile f(engine.ShardPath(s), "wb");
    if (!f.ok()) {
      return Status::IOError("cannot create shard " + engine.ShardPath(s));
    }
    VertexId lo = s * span;
    VertexId hi = std::min<VertexId>(lo + span, graph.num_vertices());
    for (VertexId dst = lo; dst < hi; ++dst) {
      for (EdgeId e = in.begin(dst); e < in.end(dst); ++e) {
        Record r{in.neighbor(e), dst, in.weight(e)};
        if (std::fwrite(&r, sizeof(Record), 1, f.get()) != 1) {
          return Status::IOError("shard write failed");
        }
      }
    }
  }
  return engine;
}

Status OocEngine::RunIteration(
    const std::function<void(VertexId, VertexId, Weight)>& fn,
    OocStats* stats) {
  std::vector<Record> buf(8192);
  for (uint32_t s = 0; s < num_shards_; ++s) {
    Timer io_timer;
    ScopedFile f(ShardPath(s), "rb");
    if (!f.ok()) return Status::IOError("missing shard " + ShardPath(s));
    while (true) {
      size_t got = std::fread(buf.data(), sizeof(Record), buf.size(), f.get());
      if (stats != nullptr) {
        stats->io_seconds += io_timer.Seconds();
        stats->bytes_read += got * sizeof(Record);
      }
      if (got == 0) break;
      Timer compute_timer;
      for (size_t i = 0; i < got; ++i) {
        fn(buf[i].src, buf[i].dst, buf[i].weight);
      }
      if (stats != nullptr) {
        stats->computations += got;
        stats->compute_seconds += compute_timer.Seconds();
      }
      io_timer.Reset();
    }
  }
  if (stats != nullptr) ++stats->iterations;
  return Status::OK();
}

Status OocEngine::RemoveFiles() {
  for (uint32_t s = 0; s < num_shards_; ++s) {
    std::remove(ShardPath(s).c_str());
  }
  return Status::OK();
}

OocStats OocPr(OocEngine& engine, const Graph& graph, uint32_t iterations,
               std::vector<float>* ranks) {
  OocStats stats;
  VertexId n = engine.num_vertices();
  ranks->assign(n, 1.0f);
  std::vector<float>& r = *ranks;
  std::vector<float> contrib(n), acc(n);
  for (VertexId v = 0; v < n; ++v) {
    VertexId od = graph.out_degree(v);
    contrib[v] = od > 0 ? 1.0f / static_cast<float>(od) : 1.0f;
  }
  for (uint32_t it = 0; it < iterations; ++it) {
    std::fill(acc.begin(), acc.end(), 0.0f);
    engine.RunIteration(
        [&](VertexId src, VertexId dst, Weight) { acc[dst] += contrib[src]; },
        &stats);
    for (VertexId v = 0; v < n; ++v) {
      r[v] = 0.15f + 0.85f * acc[v];
      VertexId od = graph.out_degree(v);
      contrib[v] = od > 0 ? r[v] / static_cast<float>(od) : r[v];
    }
  }
  return stats;
}

OocStats OocPrGuided(OocEngine& engine, const Graph& graph,
                     uint32_t iterations, std::vector<float>* ranks,
                     GuidanceProvider* provider) {
  GuidanceProvider& p = ResolveProvider(provider);
  GuidanceRequest request;
  request.policy = GuidanceRootPolicy::kSourceVertices;
  return OocPrGuided(engine, graph, iterations, ranks,
                     p.Acquire(graph, request));
}

OocStats OocPrGuided(OocEngine& engine, const Graph& graph,
                     uint32_t iterations, std::vector<float>* ranks,
                     const GuidanceAcquisition& acq) {
  OocStats stats;
  VertexId n = engine.num_vertices();
  SLFE_CHECK_EQ(graph.num_vertices(), n);
  SLFE_CHECK_EQ(graph.num_edges(), engine.num_edges());
  ranks->assign(n, 1.0f);
  std::vector<float>& r = *ranks;
  std::vector<float> contrib(n), acc(n);
  for (VertexId v = 0; v < n; ++v) {
    VertexId od = graph.out_degree(v);
    contrib[v] = od > 0 ? 1.0f / static_cast<float>(od) : 1.0f;
  }

  stats.guidance_seconds = acq.acquire_seconds;
  const RRGuidance* rrg = acq.get();

  // Finish early (ArithRunner's multiRuler, out-of-core form): RulerS[v]
  // counts consecutive sweeps with an exactly unchanged damped rank; once
  // it reaches v's stability horizon (StabilityHorizon in rr_guidance.h)
  // the vertex freezes and its in-edge accumulations are skipped.
  constexpr uint64_t kMinStableRounds = 8;
  std::vector<uint32_t> stable_cnt(n, 0);
  std::vector<uint8_t> frozen(n, 0);

  uint64_t skipped = 0;
  for (uint32_t it = 0; it < iterations; ++it) {
    std::fill(acc.begin(), acc.end(), 0.0f);
    engine.RunIteration(
        [&](VertexId src, VertexId dst, Weight) {
          if (frozen[dst] != 0) {
            ++skipped;
            return;
          }
          acc[dst] += contrib[src];
        },
        &stats);
    for (VertexId v = 0; v < n; ++v) {
      if (frozen[v] != 0) continue;  // EC: the cached value stands in
      float next = 0.15f + 0.85f * acc[v];
      if (next == r[v]) {
        if (++stable_cnt[v] >= StabilityHorizon(rrg, v, kMinStableRounds)) {
          frozen[v] = 1;
        }
      } else {
        stable_cnt[v] = 0;
      }
      r[v] = next;
      VertexId od = graph.out_degree(v);
      contrib[v] = od > 0 ? next / static_cast<float>(od) : next;
    }
  }
  stats.skipped = skipped;
  stats.computations -= skipped;  // bypassed evaluations are not work done
  return stats;
}

OocStats OocCc(OocEngine& engine, std::vector<uint32_t>* labels) {
  OocStats stats;
  VertexId n = engine.num_vertices();
  labels->resize(n);
  std::iota(labels->begin(), labels->end(), 0u);
  std::vector<uint32_t>& l = *labels;
  bool changed = true;
  while (changed) {
    changed = false;
    engine.RunIteration(
        [&](VertexId src, VertexId dst, Weight) {
          if (l[src] < l[dst]) {
            l[dst] = l[src];
            changed = true;
          }
        },
        &stats);
  }
  return stats;
}

OocStats OocCcGuided(OocEngine& engine, const Graph& graph,
                     std::vector<uint32_t>* labels,
                     GuidanceProvider* provider) {
  GuidanceProvider& p = ResolveProvider(provider);
  GuidanceRequest request;
  request.policy = GuidanceRootPolicy::kLocalMinima;
  return OocCcGuided(engine, graph, labels, p.Acquire(graph, request));
}

OocStats OocCcGuided(OocEngine& engine, const Graph& graph,
                     std::vector<uint32_t>* labels,
                     const GuidanceAcquisition& acq) {
  OocStats stats;
  VertexId n = engine.num_vertices();
  // The guidance is indexed by shard-streamed vertex ids, so the graph
  // must be the one the shards were built from.
  SLFE_CHECK_EQ(graph.num_vertices(), n);
  SLFE_CHECK_EQ(graph.num_edges(), engine.num_edges());
  labels->resize(n);
  std::iota(labels->begin(), labels->end(), 0u);
  std::vector<uint32_t>& l = *labels;

  const RRGuidance& rrg = *acq.guidance;
  stats.guidance_seconds = acq.acquire_seconds;

  // "Start late" over full-graph sweeps: skipping a locked destination
  // only delays its updates — once iter passes the sweep depth every
  // destination is unlocked and each further sweep re-reads all in-edges,
  // so iterating to an unchanged sweep yields OocCc's exact fixpoint. The
  // depth bound keeps the loop alive while skips can still hide progress.
  uint32_t iter = 0;
  bool changed = true;
  uint64_t skipped = 0;
  while (changed || iter < rrg.depth()) {
    ++iter;
    changed = false;
    engine.RunIteration(
        [&](VertexId src, VertexId dst, Weight) {
          if (iter < rrg.last_iter(dst)) {
            ++skipped;
            return;
          }
          if (l[src] < l[dst]) {
            l[dst] = l[src];
            changed = true;
          }
        },
        &stats);
  }
  stats.skipped = skipped;
  stats.computations -= skipped;  // bypassed evaluations are not work done
  return stats;
}

}  // namespace slfe::ooc
