#ifndef SLFE_OOC_OOC_ENGINE_H_
#define SLFE_OOC_OOC_ENGINE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "slfe/common/status.h"
#include "slfe/core/guidance_provider.h"
#include "slfe/graph/graph.h"

namespace slfe::ooc {

/// Statistics of an out-of-core run.
struct OocStats {
  uint64_t iterations = 0;
  uint64_t computations = 0;
  uint64_t skipped = 0;  ///< edge updates bypassed by RR guidance
  uint64_t bytes_read = 0;  ///< real shard-file bytes streamed from disk
  double io_seconds = 0;
  double compute_seconds = 0;
  /// Guidance acquisition cost for guided runs (0 for baselines).
  double guidance_seconds = 0;
  double RuntimeSeconds() const { return io_seconds + compute_seconds; }
};

/// A GraphChi-style interval-sharded out-of-core engine: the vertex set is
/// split into intervals; shard i holds, on disk, every edge whose
/// destination is in interval i, sorted by source. Each iteration streams
/// the shard files from storage (real file I/O — this is the bottleneck
/// the paper's Fig. 6 contrasts against), computing destination updates
/// from the in-edges while vertex values stay memory-resident.
class OocEngine {
 public:
  /// Builds shard files under `work_dir` (created if needed). The shard
  /// count follows GraphChi's rule of keeping one shard's edges in a
  /// bounded memory budget; tests use a handful.
  static Result<OocEngine> Build(const Graph& graph,
                                 const std::string& work_dir,
                                 uint32_t num_shards);

  /// One sweep over all shards: fn(src, dst, weight) is invoked for every
  /// edge (grouped by destination interval, sources in ascending order).
  Status RunIteration(const std::function<void(VertexId, VertexId, Weight)>& fn,
                      OocStats* stats);

  uint32_t num_shards() const { return num_shards_; }
  VertexId num_vertices() const { return num_vertices_; }
  EdgeId num_edges() const { return num_edges_; }
  const std::string& work_dir() const { return work_dir_; }

  /// Removes the shard files (cleanup for tests/benches).
  Status RemoveFiles();

 private:
  OocEngine() = default;

  std::string ShardPath(uint32_t shard) const;

  std::string work_dir_;
  uint32_t num_shards_ = 0;
  VertexId num_vertices_ = 0;
  EdgeId num_edges_ = 0;
};

/// GraphChi-style PageRank: `iterations` full-shard sweeps with values in
/// memory and edges streamed from disk (Fig. 6c/6d comparator).
OocStats OocPr(OocEngine& engine, const Graph& graph, uint32_t iterations,
               std::vector<float>* ranks);

/// PageRank with RR guidance applied to the shard sweeps, the arithmetic
/// counterpart of OocCcGuided. For arithmetic apps the paper's guidance
/// form is "finish early" rather than "start late" (Algorithm 5's
/// multiRuler): once a destination's damped rank has been exactly stable
/// for lastIter consecutive sweeps (with a small floor guarding short
/// cycle-bound horizons, and never for vertices the sweep did not visit),
/// it is early-converged — its in-edge accumulations are bypassed for the
/// remaining sweeps and the cached value stands in. Ranks match OocPr to
/// float precision (a frozen value is by construction the value the next
/// sweeps keep reproducing); `stats.skipped` counts the bypassed edge
/// updates. Guidance comes from `provider` (nullptr =
/// GuidanceProvider::Global()) with the kSourceVertices policy, sharing
/// the cache/store with every other engine.
OocStats OocPrGuided(OocEngine& engine, const Graph& graph,
                     uint32_t iterations, std::vector<float>* ranks,
                     GuidanceProvider* provider = nullptr);

/// As above with a pre-acquired guidance, for callers that already paid
/// the acquisition (the registry's ooc runner records hit/coalesced
/// accounting from its own Acquire) — avoids a second provider lookup.
OocStats OocPrGuided(OocEngine& engine, const Graph& graph,
                     uint32_t iterations, std::vector<float>* ranks,
                     const GuidanceAcquisition& acq);

/// GraphChi-style connected components (iterate min-label sweeps to a
/// fixpoint), Fig. 6a/6b comparator.
OocStats OocCc(OocEngine& engine, std::vector<uint32_t>* labels);

/// Connected components with RR "start late" applied to the shard sweeps:
/// a destination's label updates are skipped until the sweep counter
/// reaches its guidance lastIter. Every post-unlock sweep re-reads all of
/// a destination's in-edges, so the fixpoint matches OocCc exactly; the
/// guidance comes from `provider` (nullptr = GuidanceProvider::Global()),
/// sharing the cache with the in-memory engines.
OocStats OocCcGuided(OocEngine& engine, const Graph& graph,
                     std::vector<uint32_t>* labels,
                     GuidanceProvider* provider = nullptr);

/// Pre-acquired-guidance form (see OocPrGuided). The acquisition must
/// hold a non-null guidance.
OocStats OocCcGuided(OocEngine& engine, const Graph& graph,
                     std::vector<uint32_t>* labels,
                     const GuidanceAcquisition& acq);

}  // namespace slfe::ooc

#endif  // SLFE_OOC_OOC_ENGINE_H_
