#include "slfe/shm/shm_engine.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "slfe/common/direction.h"
#include "slfe/engine/atomic_ops.h"
#include "slfe/engine/dist_graph.h"

namespace slfe::shm {

ShmEngine::ShmEngine(const Graph& graph, size_t num_threads)
    : graph_(graph),
      pool_(num_threads),
      // One contiguous vertex range per worker, cut exactly where
      // DistGraph::Build (and the partition-aware guidance sweep) would
      // cut them — edge-balanced, so both EdgeMap directions stay
      // load-balanced and every layer pins the same slice to the same
      // worker.
      ranges_(DistGraph::BuildRanges(graph,
                                     static_cast<int>(pool_.num_threads()))) {}

Bitmap ShmEngine::EdgeMap(const Bitmap& frontier, const UpdateFn& update,
                          const CondFn& cond, ShmStats* stats) {
  VertexId n = graph_.num_vertices();
  Bitmap next(n);

  // Direction choice: count the frontier's out-edges.
  uint64_t frontier_edges = 0;
  frontier.ForEachSetBit(
      [&](size_t v) { frontier_edges += graph_.out_degree(static_cast<VertexId>(v)); });
  bool dense = ChooseDense(frontier_edges, graph_.num_edges());

  std::vector<uint64_t> comp(pool_.num_threads(), 0);
  std::vector<uint64_t> upd(pool_.num_threads(), 0);

  if (dense) {
    // Pull: for each destination still satisfying cond, scan in-edges of
    // frontier sources. Worker w owns exactly its DistGraph range.
    const Csr& in = graph_.in();
    pool_.ParallelRun([&](size_t w) {
      for (VertexId dst = ranges_[w].begin; dst < ranges_[w].end; ++dst) {
        if (cond && !cond(dst)) continue;
        for (EdgeId e = in.begin(dst); e < in.end(dst); ++e) {
          VertexId src = in.neighbor(e);
          if (!frontier.TestBit(src)) continue;
          ++comp[w];
          if (update(src, dst, in.weight(e))) {
            next.SetBit(dst);
            ++upd[w];
          }
        }
      }
    });
  } else {
    // Push: scan out-edges of frontier vertices owned by this worker.
    const Csr& out = graph_.out();
    pool_.ParallelRun([&](size_t w) {
      for (VertexId src = ranges_[w].begin; src < ranges_[w].end; ++src) {
        if (!frontier.TestBit(src)) continue;
        for (EdgeId e = out.begin(src); e < out.end(src); ++e) {
          VertexId dst = out.neighbor(e);
          if (cond && !cond(dst)) continue;
          ++comp[w];
          if (update(src, dst, out.weight(e))) {
            next.SetBit(dst);
            ++upd[w];
          }
        }
      }
    });
  }
  if (stats != nullptr) {
    ++stats->supersteps;
    for (uint64_t c : comp) stats->computations += c;
    for (uint64_t u : upd) stats->updates += u;
  }
  return next;
}

void ShmEngine::VertexMap(const Bitmap& frontier,
                          const std::function<void(VertexId)>& fn) {
  pool_.ParallelRun([&](size_t w) {
    for (VertexId v = ranges_[w].begin; v < ranges_[w].end; ++v) {
      if (frontier.TestBit(v)) fn(v);
    }
  });
}

ShmStats ShmSssp(const Graph& graph, VertexId root, size_t num_threads,
                 std::vector<float>* dist) {
  constexpr float kInf = std::numeric_limits<float>::infinity();
  ShmStats stats;
  Timer timer;
  ShmEngine engine(graph, num_threads);
  dist->assign(graph.num_vertices(), kInf);
  (*dist)[root] = 0.0f;
  std::vector<float>& d = *dist;

  Bitmap frontier(graph.num_vertices());
  frontier.SetBit(root);
  while (frontier.CountOnes() > 0) {
    frontier = engine.EdgeMap(
        frontier,
        [&d](VertexId src, VertexId dst, Weight w) {
          return AtomicMin(&d[dst], AtomicLoad(&d[src]) + w);
        },
        nullptr, &stats);
  }
  stats.seconds = timer.Seconds();
  return stats;
}

ShmStats ShmCc(const Graph& graph, size_t num_threads,
               std::vector<uint32_t>* labels) {
  ShmStats stats;
  Timer timer;
  ShmEngine engine(graph, num_threads);
  labels->resize(graph.num_vertices());
  std::iota(labels->begin(), labels->end(), 0u);
  std::vector<uint32_t>& l = *labels;

  Bitmap frontier(graph.num_vertices());
  frontier.Fill();
  while (frontier.CountOnes() > 0) {
    frontier = engine.EdgeMap(
        frontier,
        [&l](VertexId src, VertexId dst, Weight) {
          return AtomicMin(&l[dst], AtomicLoad(&l[src]));
        },
        nullptr, &stats);
  }
  stats.seconds = timer.Seconds();
  return stats;
}

ShmStats ShmPr(const Graph& graph, uint32_t iterations, size_t num_threads,
               std::vector<float>* ranks) {
  ShmStats stats;
  Timer timer;
  ShmEngine engine(graph, num_threads);
  VertexId n = graph.num_vertices();
  ranks->assign(n, 1.0f);
  std::vector<float>& r = *ranks;
  std::vector<float> contrib(n), acc(n);
  for (VertexId v = 0; v < n; ++v) {
    VertexId od = graph.out_degree(v);
    contrib[v] = od > 0 ? 1.0f / static_cast<float>(od) : 1.0f;
  }

  Bitmap all(n);
  all.Fill();
  for (uint32_t it = 0; it < iterations; ++it) {
    std::fill(acc.begin(), acc.end(), 0.0f);
    engine.EdgeMap(
        all,
        [&](VertexId src, VertexId dst, Weight) {
          AtomicAdd(&acc[dst], contrib[src]);
          return false;  // frontier handled by `all`
        },
        nullptr, &stats);
    engine.VertexMap(all, [&](VertexId v) {
      r[v] = 0.15f + 0.85f * acc[v];
      VertexId od = graph.out_degree(v);
      contrib[v] = od > 0 ? r[v] / static_cast<float>(od) : r[v];
    });
  }
  stats.seconds = timer.Seconds();
  return stats;
}

}  // namespace slfe::shm
