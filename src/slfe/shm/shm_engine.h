#ifndef SLFE_SHM_SHM_ENGINE_H_
#define SLFE_SHM_SHM_ENGINE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "slfe/common/bitmap.h"
#include "slfe/common/thread_pool.h"
#include "slfe/common/timer.h"
#include "slfe/graph/graph.h"
#include "slfe/graph/partitioner.h"

namespace slfe::shm {

/// Statistics of a shared-memory engine run.
struct ShmStats {
  uint64_t supersteps = 0;
  uint64_t computations = 0;
  uint64_t updates = 0;
  double seconds = 0;
};

/// A Ligra-style shared-memory frontier engine: edgeMap with
/// direction optimization (sparse push over the frontier's out-edges vs
/// dense pull over all vertices when the frontier is large) and vertexMap.
/// This is the single-node comparator of the paper's Fig. 6 — full
/// parallelism, whole graph in memory, no redundancy reduction.
class ShmEngine {
 public:
  /// update(src, dst, weight) -> dst changed (push direction; must be
  /// thread-safe: use atomic helpers).
  using UpdateFn = std::function<bool(VertexId, VertexId, Weight)>;
  /// cond(dst) -> still worth updating (Ligra's C function; enables BFS's
  /// "not yet visited" shortcut).
  using CondFn = std::function<bool(VertexId)>;

  /// Per-thread vertex ownership uses the same edge-balanced contiguous
  /// ranges DistGraph::Build cuts for a cluster of num_threads nodes, so
  /// engine execution and the partition-aware guidance sweep
  /// (RRGuidance::GeneratePartitioned) pin identical slices — a worker
  /// that preprocessed a range also executes it.
  ShmEngine(const Graph& graph, size_t num_threads);

  /// One edgeMap step: applies `update` across the frontier's edges and
  /// returns the next frontier. Chooses pull when the frontier's out-edge
  /// count exceeds |E|/20 (Ligra's threshold).
  Bitmap EdgeMap(const Bitmap& frontier, const UpdateFn& update,
                 const CondFn& cond, ShmStats* stats);

  /// vertexMap: applies fn to every vertex in the frontier.
  void VertexMap(const Bitmap& frontier,
                 const std::function<void(VertexId)>& fn);

  const Graph& graph() const { return graph_; }
  ThreadPool& pool() { return pool_; }

  /// The per-worker vertex ranges (one per pool thread) — exactly
  /// DistGraph::BuildRanges(graph, num_threads), exported so callers can
  /// assert the engine and the guidance generator slice identically.
  const std::vector<VertexRange>& ranges() const { return ranges_; }

 private:
  const Graph& graph_;
  ThreadPool pool_;
  std::vector<VertexRange> ranges_;
};

/// Ligra-style application runs (Fig. 6 comparisons).
ShmStats ShmSssp(const Graph& graph, VertexId root, size_t num_threads,
                 std::vector<float>* dist);
ShmStats ShmCc(const Graph& graph, size_t num_threads,
               std::vector<uint32_t>* labels);
ShmStats ShmPr(const Graph& graph, uint32_t iterations, size_t num_threads,
               std::vector<float>* ranks);

}  // namespace slfe::shm

#endif  // SLFE_SHM_SHM_ENGINE_H_
