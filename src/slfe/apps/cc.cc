#include "slfe/apps/cc.h"

#include <numeric>
#include <set>

#include "slfe/api/engine_adapters.h"
#include "slfe/core/rr_runners.h"
#include "slfe/gas/gas_apps.h"
#include "slfe/engine/atomic_ops.h"
#include "slfe/sim/cluster.h"

namespace slfe {

CcResult RunCc(const Graph& graph, const AppConfig& config) {
  CcResult result;
  result.labels.resize(graph.num_vertices());
  std::iota(result.labels.begin(), result.labels.end(), 0u);

  DistGraph dg = DistGraph::Build(graph, config.num_nodes);

  std::vector<VertexId> seeds(graph.num_vertices());
  std::iota(seeds.begin(), seeds.end(), 0u);
  GuidanceAcquisition guidance =
      AcquireGuidance(graph, config, GuidanceRootPolicy::kLocalMinima);
  RecordGuidance(guidance, &result.info);

  DistEngine<uint32_t> engine(dg, MakeEngineOptions(config, guidance));
  MinMaxRunner<uint32_t> runner(&engine);

  std::vector<uint32_t>& labels = result.labels;
  auto gather = [&labels](uint32_t acc, VertexId src, Weight) {
    uint32_t candidate = AtomicLoad(&labels[src]);
    return candidate < acc ? candidate : acc;
  };
  auto apply = [&labels](VertexId dst, uint32_t acc) {
    if (acc < labels[dst]) {
      labels[dst] = acc;
      return true;
    }
    return false;
  };
  auto scatter = [&labels](VertexId src, VertexId dst, Weight) {
    return AtomicMin(&labels[dst], AtomicLoad(&labels[src]));
  };

  sim::Cluster cluster(config.num_nodes, config.threads_per_node);
  cluster.Run([&](sim::NodeContext& ctx) {
    auto run = runner.Run(ctx, seeds, UINT32_MAX, gather, apply, scatter);
    if (ctx.rank == 0) {
      result.info.stats = run.stats;
      result.info.supersteps = run.supersteps;
      result.info.safety_sweep_updates = run.safety_sweep_updates;
    }
  });
  return result;
}

// Self-registration (see api/app_registry.h). CC runs on every engine in
// the tree: the dist cluster, the Ligra-style shm engine, the GAS
// comparator, and the out-of-core shard sweeps.
namespace {

api::AppOutcome CcOutcome(AppRunInfo info,
                          const std::vector<uint32_t>& labels) {
  api::AppOutcome out;
  out.info = info;
  out.values = api::ToValues(labels);
  std::set<uint32_t> components(labels.begin(), labels.end());
  out.summary = components.size();
  out.summary_text = "components=" + std::to_string(components.size());
  return out;
}

api::AppRegistrar register_cc([] {
  api::AppDescriptor d;
  d.name = "cc";
  d.summary = "weakly connected components (min-label propagation)";
  d.root_policy = GuidanceRootPolicy::kLocalMinima;
  d.needs_symmetric = true;
  d.runners[api::Engine::kDist] = [](const api::RunContext& ctx) {
    CcResult r = RunCc(ctx.graph, ctx.config);
    return CcOutcome(r.info, r.labels);
  };
  d.runners[api::Engine::kGas] = [](const api::RunContext& ctx) {
    GuidanceAcquisition acq = AcquireGuidance(
        ctx.graph, ctx.config, GuidanceRootPolicy::kLocalMinima);
    gas::GasOptions opt;
    opt.num_nodes = ctx.config.num_nodes;
    opt.guidance = acq.guidance;  // "start late" gathers (monotone min)
    gas::GasCcResult r = gas::RunGasCc(ctx.graph, opt);
    api::AppOutcome out = CcOutcome(api::FromGasStats(r.stats), r.labels);
    RecordGuidance(acq, &out.info);
    return out;
  };
  d.runners[api::Engine::kShm] = [](const api::RunContext& ctx) {
    std::vector<uint32_t> labels;
    shm::ShmStats stats =
        shm::ShmCc(ctx.graph, api::ShmThreads(ctx.config), &labels);
    return CcOutcome(api::FromShmStats(stats), labels);
  };
  d.runners[api::Engine::kOoc] = [](const api::RunContext& ctx) {
    Result<ooc::OocEngine> built =
        ooc::OocEngine::Build(ctx.graph, ctx.OocDir(), ctx.ooc_shards);
    if (!built.ok()) {
      api::AppOutcome out;
      out.status = built.status();
      return out;
    }
    ooc::OocEngine engine = std::move(built).value();
    std::vector<uint32_t> labels;
    ooc::OocStats stats;
    api::AppOutcome out;
    GuidanceAcquisition acq = AcquireGuidance(
        ctx.graph, ctx.config, GuidanceRootPolicy::kLocalMinima);
    if (acq) {
      // One acquisition per run: the runner's Acquire carries the
      // hit/coalesced accounting AND feeds the sweep.
      stats = ooc::OocCcGuided(engine, ctx.graph, &labels, acq);
      out = CcOutcome(api::FromOocStats(stats), labels);
      RecordGuidance(acq, &out.info);
    } else {
      stats = ooc::OocCc(engine, &labels);
      out = CcOutcome(api::FromOocStats(stats), labels);
    }
    engine.RemoveFiles();
    return out;
  };
  return d;
}());

}  // namespace

}  // namespace slfe
