#include "slfe/apps/cc.h"

#include <numeric>

#include "slfe/core/rr_runners.h"
#include "slfe/engine/atomic_ops.h"
#include "slfe/sim/cluster.h"

namespace slfe {

CcResult RunCc(const Graph& graph, const AppConfig& config) {
  CcResult result;
  result.labels.resize(graph.num_vertices());
  std::iota(result.labels.begin(), result.labels.end(), 0u);

  DistGraph dg = DistGraph::Build(graph, config.num_nodes);

  std::vector<VertexId> seeds(graph.num_vertices());
  std::iota(seeds.begin(), seeds.end(), 0u);
  GuidanceAcquisition guidance =
      AcquireGuidance(graph, config, GuidanceRootPolicy::kLocalMinima);
  RecordGuidance(guidance, &result.info);

  DistEngine<uint32_t> engine(dg, MakeEngineOptions(config, guidance));
  MinMaxRunner<uint32_t> runner(&engine);

  std::vector<uint32_t>& labels = result.labels;
  auto gather = [&labels](uint32_t acc, VertexId src, Weight) {
    uint32_t candidate = AtomicLoad(&labels[src]);
    return candidate < acc ? candidate : acc;
  };
  auto apply = [&labels](VertexId dst, uint32_t acc) {
    if (acc < labels[dst]) {
      labels[dst] = acc;
      return true;
    }
    return false;
  };
  auto scatter = [&labels](VertexId src, VertexId dst, Weight) {
    return AtomicMin(&labels[dst], AtomicLoad(&labels[src]));
  };

  sim::Cluster cluster(config.num_nodes, config.threads_per_node);
  cluster.Run([&](sim::NodeContext& ctx) {
    auto run = runner.Run(ctx, seeds, UINT32_MAX, gather, apply, scatter);
    if (ctx.rank == 0) {
      result.info.stats = run.stats;
      result.info.supersteps = run.supersteps;
      result.info.safety_sweep_updates = run.safety_sweep_updates;
    }
  });
  return result;
}

}  // namespace slfe
