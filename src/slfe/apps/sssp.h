#ifndef SLFE_APPS_SSSP_H_
#define SLFE_APPS_SSSP_H_

#include <vector>

#include "slfe/apps/app_common.h"
#include "slfe/graph/graph.h"

namespace slfe {

/// Single-Source Shortest Path result: dist[v] is the minimum path weight
/// from the root (infinity when unreachable).
struct SsspResult {
  std::vector<float> dist;
  AppRunInfo info;
};

/// Runs SSSP (paper Algorithm 4) on the simulated cluster described by
/// `config`. With config.enable_rr the "start late" single-Ruler schedule
/// is applied; otherwise this is the Gemini-style baseline.
SsspResult RunSssp(const Graph& graph, const AppConfig& config);

}  // namespace slfe

#endif  // SLFE_APPS_SSSP_H_
