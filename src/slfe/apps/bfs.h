#ifndef SLFE_APPS_BFS_H_
#define SLFE_APPS_BFS_H_

#include <vector>

#include "slfe/apps/app_common.h"
#include "slfe/graph/graph.h"

namespace slfe {

/// Breadth-first search: levels[v] is the minimum hop count from the root
/// (UINT32_MAX when unreachable). A min() aggregation app; functionally
/// SSSP with unit weights, kept separate because its guidance equals its
/// own answer (the adversarial best case for "start late").
struct BfsResult {
  std::vector<uint32_t> levels;
  AppRunInfo info;
};

BfsResult RunBfs(const Graph& graph, const AppConfig& config);

}  // namespace slfe

#endif  // SLFE_APPS_BFS_H_
