#include "slfe/apps/mst.h"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <tuple>

#include "slfe/api/app_registry.h"
#include "slfe/common/timer.h"
#include "slfe/common/work_stealing.h"
#include "slfe/engine/dist_graph.h"
#include "slfe/sim/cluster.h"

namespace slfe {

namespace {

/// Candidate edge for a component's minimum selection; ordered by
/// (weight, src, dst) for deterministic tie-breaking.
struct Candidate {
  Weight weight = 0;
  VertexId src = kInvalidVertex;
  VertexId dst = kInvalidVertex;

  bool Valid() const { return src != kInvalidVertex; }
  bool operator<(const Candidate& o) const {
    return std::tie(weight, src, dst) < std::tie(o.weight, o.src, o.dst);
  }
};

/// Mutating find with path halving — serial phases only.
VertexId FindRoot(std::vector<VertexId>& parent, VertexId v) {
  while (parent[v] != v) {
    parent[v] = parent[parent[v]];  // path halving
    v = parent[v];
  }
  return v;
}

/// Read-only find for the parallel phase (no compression, no writes, so
/// concurrent lookups are race-free; the serial contraction phase keeps
/// paths short).
VertexId FindRootConst(const std::vector<VertexId>& parent, VertexId v) {
  while (parent[v] != v) v = parent[v];
  return v;
}

}  // namespace

MstResult RunMst(const Graph& graph, const AppConfig& config) {
  MstResult result;
  Timer timer;
  VertexId n = graph.num_vertices();
  if (n == 0) return result;

  DistGraph dg = DistGraph::Build(graph, config.num_nodes);
  std::vector<VertexId> parent(n);
  std::iota(parent.begin(), parent.end(), 0u);

  sim::Cluster cluster(config.num_nodes, config.threads_per_node);
  WorkStealingScheduler scheduler(config.enable_stealing);

  // Per-round scratch: the minimum outgoing candidate of each component,
  // reduced first per node (lock-free by rank-disjoint vertex ranges,
  // then a short serial merge by rank 0 — components are shared state).
  std::vector<Candidate> best(n);
  std::vector<std::vector<Candidate>> node_best(
      config.num_nodes, std::vector<Candidate>(n));
  uint64_t work = 0;

  bool merged = true;
  while (merged) {
    merged = false;
    ++result.rounds;
    for (auto& nb : node_best) {
      std::fill(nb.begin(), nb.end(), Candidate{});
    }
    std::fill(best.begin(), best.end(), Candidate{});

    // Phase 1 (parallel, min-aggregation): each vertex scans its out-edges
    // and offers the lightest edge leaving its component.
    cluster.Run([&](sim::NodeContext& ctx) {
      const VertexRange& r = dg.range(ctx.rank);
      auto& nb = node_best[ctx.rank];
      scheduler.Run(*ctx.pool, r.begin, r.end,
                    [&](size_t, size_t lo, size_t hi) {
                      for (size_t sv = lo; sv < hi; ++sv) {
                        VertexId v = static_cast<VertexId>(sv);
                        VertexId cv = FindRootConst(parent, v);
                        graph.out().ForEachNeighbor(
                            v, [&](VertexId u, Weight w) {
                              VertexId cu = FindRootConst(parent, u);
                              if (cu == cv) return;
                              Candidate c{w, v, u};
                              if (!nb[cv].Valid() || c < nb[cv]) nb[cv] = c;
                            });
                      }
                    });
      ctx.world->Barrier();
    });
    work += graph.num_edges();

    // Phase 2 (serial): merge per-node minima, then contract components.
    for (int p = 0; p < config.num_nodes; ++p) {
      for (VertexId c = 0; c < n; ++c) {
        const Candidate& cand = node_best[p][c];
        if (cand.Valid() && (!best[c].Valid() || cand < best[c])) {
          best[c] = cand;
        }
      }
    }
    for (VertexId c = 0; c < n; ++c) {
      const Candidate& cand = best[c];
      if (!cand.Valid()) continue;
      VertexId a = FindRoot(parent, cand.src);
      VertexId b = FindRoot(parent, cand.dst);
      if (a == b) continue;  // both endpoints already merged this round
      parent[std::max(a, b)] = std::min(a, b);
      result.total_weight += cand.weight;
      ++result.tree_edges;
      merged = true;
    }
  }

  result.info.stats.computations = work;
  result.info.stats.pull_seconds = timer.Seconds();
  result.info.supersteps = result.rounds;
  return result;
}

// Self-registration (see api/app_registry.h).
namespace {

api::AppRegistrar register_mst([] {
  api::AppDescriptor d;
  d.name = "mst";
  d.summary = "minimum spanning forest (parallel Boruvka)";
  d.needs_symmetric = true;
  d.needs_weights = true;
  d.runners[api::Engine::kDist] = [](const api::RunContext& ctx) {
    MstResult r = RunMst(ctx.graph, ctx.config);
    api::AppOutcome out;
    out.info = r.info;
    out.summary = r.tree_edges;
    char text[96];
    std::snprintf(text, sizeof(text),
                  "forest weight=%.0f edges=%llu rounds=%u", r.total_weight,
                  static_cast<unsigned long long>(r.tree_edges), r.rounds);
    out.summary_text = text;
    return out;
  };
  return d;
}());

}  // namespace

}  // namespace slfe
