#ifndef SLFE_APPS_MST_H_
#define SLFE_APPS_MST_H_

#include <cstdint>
#include <vector>

#include "slfe/apps/app_common.h"
#include "slfe/graph/graph.h"

namespace slfe {

/// Minimum spanning tree / forest via parallel Boruvka rounds (paper
/// Table 1, min/max category): each round every component selects its
/// minimum-weight outgoing edge (a min() aggregation over component
/// boundaries) and components merge along the selected edges. The input
/// must be symmetric (undirected); ties are broken by (weight, src, dst)
/// so the forest is unique.
struct MstResult {
  /// Total weight of the spanning forest.
  double total_weight = 0;
  /// Number of edges selected (|V| - #components).
  uint64_t tree_edges = 0;
  /// Boruvka rounds executed.
  uint32_t rounds = 0;
  AppRunInfo info;
};

MstResult RunMst(const Graph& graph, const AppConfig& config);

}  // namespace slfe

#endif  // SLFE_APPS_MST_H_
