#include "slfe/apps/triangle_count.h"

#include <algorithm>
#include <vector>

#include "slfe/api/app_registry.h"
#include "slfe/common/timer.h"
#include "slfe/common/work_stealing.h"
#include "slfe/engine/dist_graph.h"
#include "slfe/sim/cluster.h"

namespace slfe {

namespace {

/// Undirected adjacency with each edge kept only toward the
/// higher-(degree, id) endpoint — every triangle is then discovered
/// exactly once as an intersection of two such lists.
std::vector<std::vector<VertexId>> BuildOrientedAdjacency(const Graph& g) {
  VertexId n = g.num_vertices();
  std::vector<VertexId> degree(n, 0);
  std::vector<std::vector<VertexId>> undirected(n);
  auto add = [&](VertexId a, VertexId b) {
    if (a == b) return;
    undirected[a].push_back(b);
  };
  for (VertexId v = 0; v < n; ++v) {
    g.out().ForEachNeighbor(v, [&](VertexId u, Weight) {
      add(v, u);
      add(u, v);
    });
  }
  for (VertexId v = 0; v < n; ++v) {
    auto& adj = undirected[v];
    std::sort(adj.begin(), adj.end());
    adj.erase(std::unique(adj.begin(), adj.end()), adj.end());
    degree[v] = static_cast<VertexId>(adj.size());
  }
  // Orient each undirected edge toward the (degree, id)-larger endpoint.
  auto precedes = [&](VertexId a, VertexId b) {
    if (degree[a] != degree[b]) return degree[a] < degree[b];
    return a < b;
  };
  std::vector<std::vector<VertexId>> oriented(n);
  for (VertexId v = 0; v < n; ++v) {
    for (VertexId u : undirected[v]) {
      if (precedes(v, u)) oriented[v].push_back(u);
    }
    std::sort(oriented[v].begin(), oriented[v].end());
  }
  return oriented;
}

uint64_t IntersectCount(const std::vector<VertexId>& a,
                        const std::vector<VertexId>& b) {
  uint64_t count = 0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

}  // namespace

TriangleCountResult RunTriangleCount(const Graph& graph,
                                     const AppConfig& config) {
  TriangleCountResult result;
  Timer timer;
  auto oriented = BuildOrientedAdjacency(graph);
  DistGraph dg = DistGraph::Build(graph, config.num_nodes);

  std::vector<uint64_t> node_counts(config.num_nodes, 0);
  std::vector<uint64_t> node_work(config.num_nodes, 0);
  sim::Cluster cluster(config.num_nodes, config.threads_per_node);
  WorkStealingScheduler scheduler(config.enable_stealing);
  cluster.Run([&](sim::NodeContext& ctx) {
    const VertexRange& r = dg.range(ctx.rank);
    std::vector<uint64_t> per_thread(ctx.pool->num_threads(), 0);
    std::vector<uint64_t> per_thread_work(ctx.pool->num_threads(), 0);
    scheduler.Run(*ctx.pool, r.begin, r.end,
                  [&](size_t worker, size_t lo, size_t hi) {
                    for (size_t sv = lo; sv < hi; ++sv) {
                      const auto& adj = oriented[sv];
                      for (VertexId u : adj) {
                        per_thread[worker] +=
                            IntersectCount(adj, oriented[u]);
                        per_thread_work[worker] +=
                            adj.size() + oriented[u].size();
                      }
                    }
                  });
    uint64_t local = 0, work = 0;
    for (size_t w = 0; w < per_thread.size(); ++w) {
      local += per_thread[w];
      work += per_thread_work[w];
    }
    node_counts[ctx.rank] = local;
    node_work[ctx.rank] = work;
    ctx.world->Barrier();
  });
  for (int p = 0; p < config.num_nodes; ++p) {
    result.triangles += node_counts[p];
    result.info.stats.computations += node_work[p];
  }
  result.info.stats.pull_seconds = timer.Seconds();
  result.info.supersteps = 1;
  return result;
}

// Self-registration (see api/app_registry.h).
namespace {

api::AppRegistrar register_tc([] {
  api::AppDescriptor d;
  d.name = "tc";
  d.summary = "triangle count (degree-ordered intersection)";
  d.runners[api::Engine::kDist] = [](const api::RunContext& ctx) {
    TriangleCountResult r = RunTriangleCount(ctx.graph, ctx.config);
    api::AppOutcome out;
    out.info = r.info;
    out.summary = r.triangles;
    out.summary_text = "triangles=" + std::to_string(r.triangles);
    return out;
  };
  return d;
}());

}  // namespace

}  // namespace slfe
