#ifndef SLFE_APPS_SPMV_H_
#define SLFE_APPS_SPMV_H_

#include <vector>

#include "slfe/apps/app_common.h"
#include "slfe/graph/graph.h"

namespace slfe {

/// Sparse matrix-vector multiply chain: y = (A^T)^k x where A is the
/// weighted adjacency matrix (entry w for edge src->dst) and x the input
/// vector. One of the arithmetic-aggregation apps in paper Table 1.
struct SpmvResult {
  std::vector<float> y;
  AppRunInfo info;
};

/// `iterations` chains k multiplies (values renormalized each round to
/// avoid overflow on long chains).
SpmvResult RunSpmv(const Graph& graph, const std::vector<float>& x,
                   const AppConfig& config, uint32_t iterations = 1);

}  // namespace slfe

#endif  // SLFE_APPS_SPMV_H_
