#ifndef SLFE_APPS_BELIEF_PROPAGATION_H_
#define SLFE_APPS_BELIEF_PROPAGATION_H_

#include <vector>

#include "slfe/apps/app_common.h"
#include "slfe/graph/graph.h"

namespace slfe {

/// Loopy belief propagation for a binary pairwise Markov random field
/// (paper Table 1, arithmetic category), in the damped mean-field form
/// commonly used for vertex-centric engines: each vertex holds the
/// log-odds b(v) of being in state 1 and iterates
///   b'(v) = prior(v) + coupling * sum_in tanh(b(src))
/// with damping. Arithmetic app: always pull; RR freezes vertices whose
/// belief stabilized.
struct BeliefPropagationResult {
  /// Final log-odds per vertex; sign gives the MAP state.
  std::vector<float> belief;
  AppRunInfo info;
};

/// `prior` must have |V| entries (log-odds evidence; 0 = no evidence).
BeliefPropagationResult RunBeliefPropagation(
    const Graph& graph, const std::vector<float>& prior,
    const AppConfig& config, float coupling = 0.2f, float damping = 0.5f);

}  // namespace slfe

#endif  // SLFE_APPS_BELIEF_PROPAGATION_H_
