#ifndef SLFE_APPS_TR_H_
#define SLFE_APPS_TR_H_

#include <vector>

#include "slfe/apps/app_common.h"
#include "slfe/graph/graph.h"

namespace slfe {

/// TunkRank (Twitter-style influence): the influence of v aggregates
/// (1 + p * influence(u)) / following(u) over v's followers u, where an
/// edge u -> v means "u follows v". p is the retweet probability. An
/// arithmetic-aggregation app like PageRank (paper Table 1).
struct TrResult {
  std::vector<float> influence;
  AppRunInfo info;
};

TrResult RunTr(const Graph& graph, const AppConfig& config,
               float retweet_probability = 0.5f);

}  // namespace slfe

#endif  // SLFE_APPS_TR_H_
