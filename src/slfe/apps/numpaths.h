#ifndef SLFE_APPS_NUMPATHS_H_
#define SLFE_APPS_NUMPATHS_H_

#include <vector>

#include "slfe/apps/app_common.h"
#include "slfe/graph/graph.h"

namespace slfe {

/// NumPaths: counts walks of length <= k from the root to every vertex
/// (on DAGs with large k this converges to the number of distinct paths).
/// An arithmetic sum() aggregation app (paper Table 1). Counts are stored
/// as double to tolerate combinatorial growth.
struct NumPathsResult {
  std::vector<double> paths;
  AppRunInfo info;
};

NumPathsResult RunNumPaths(const Graph& graph, const AppConfig& config,
                           uint32_t max_length = 16);

}  // namespace slfe

#endif  // SLFE_APPS_NUMPATHS_H_
