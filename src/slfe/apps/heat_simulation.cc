#include "slfe/apps/heat_simulation.h"

#include "slfe/api/engine_adapters.h"
#include "slfe/common/logging.h"
#include "slfe/core/rr_runners.h"
#include "slfe/sim/cluster.h"

namespace slfe {

HeatSimulationResult RunHeatSimulation(const Graph& graph,
                                       const std::vector<float>& initial,
                                       const AppConfig& config, float alpha) {
  VertexId n = graph.num_vertices();
  SLFE_CHECK_EQ(initial.size(), n);
  HeatSimulationResult result;
  result.heat = initial;

  DistGraph dg = DistGraph::Build(graph, config.num_nodes);

  GuidanceAcquisition guidance =
      AcquireGuidance(graph, config, GuidanceRootPolicy::kSourceVertices);
  RecordGuidance(guidance, &result.info);

  DistEngine<float> engine(dg, MakeEngineOptions(config, guidance));
  ArithRunner<float> runner(&engine);

  std::vector<float>& heat = result.heat;
  auto gather = [&heat](float acc, VertexId src, Weight) {
    return acc + heat[src];
  };
  // The runner commits the returned value into `heat` itself; the vertex
  // function only derives it (heat[v] still holds the previous-iteration
  // temperature at this point).
  auto commit = [&graph, &heat, alpha](VertexId v, float acc) {
    VertexId in_deg = graph.in_degree(v);
    if (in_deg == 0) return heat[v];  // boundary source holds temperature
    float avg = acc / static_cast<float>(in_deg);
    return (1.0f - alpha) * heat[v] + alpha * avg;
  };

  sim::Cluster cluster(config.num_nodes, config.threads_per_node);
  cluster.Run([&](sim::NodeContext& ctx) {
    auto run = runner.Run(ctx, &heat, 0.0f, gather, commit, config.max_iters,
                          config.epsilon);
    if (ctx.rank == 0) {
      result.info.stats = run.stats;
      result.info.supersteps = run.supersteps;
      result.info.ec_vertices = run.ec_vertices;
    }
  });
  return result;
}

// Self-registration (see api/app_registry.h). Canonical input: a single
// 100-degree hot spot at the request root, everything else cold.
namespace {

api::AppRegistrar register_heat([] {
  api::AppDescriptor d;
  d.name = "heat";
  d.summary = "Jacobi heat diffusion from a hot spot";
  d.root_policy = GuidanceRootPolicy::kSourceVertices;
  d.runners[api::Engine::kDist] = [](const api::RunContext& ctx) {
    std::vector<float> initial(ctx.graph.num_vertices(), 0.0f);
    if (!initial.empty()) {
      initial[ctx.config.root % initial.size()] = 100.0f;
    }
    HeatSimulationResult r = RunHeatSimulation(ctx.graph, initial,
                                               ctx.config, ctx.request.alpha);
    api::AppOutcome out;
    out.info = r.info;
    out.values = api::ToValues(r.heat);
    uint64_t warmed = 0;
    for (float h : r.heat) {
      if (h > 0) ++warmed;
    }
    out.summary = warmed;
    out.summary_text = "warmed=" + std::to_string(warmed);
    return out;
  };
  return d;
}());

}  // namespace

}  // namespace slfe
