#ifndef SLFE_APPS_HEAT_SIMULATION_H_
#define SLFE_APPS_HEAT_SIMULATION_H_

#include <vector>

#include "slfe/apps/app_common.h"
#include "slfe/graph/graph.h"

namespace slfe {

/// Heat simulation (paper Table 1, arithmetic category): Jacobi-style
/// diffusion where each vertex relaxes toward the mean of its
/// in-neighbors,
///   heat'(v) = (1 - alpha) * heat(v) + alpha * avg_in(heat)
/// Vertices with no in-edges hold their temperature (heat sources at the
/// boundary). An arithmetic app: always pull; with RR, vertices whose
/// temperature stabilized freeze early ("finish early").
struct HeatSimulationResult {
  std::vector<float> heat;
  AppRunInfo info;
};

/// `initial` must have |V| entries (e.g., hot spots at sources, 0
/// elsewhere). alpha in (0, 1].
HeatSimulationResult RunHeatSimulation(const Graph& graph,
                                       const std::vector<float>& initial,
                                       const AppConfig& config,
                                       float alpha = 0.5f);

}  // namespace slfe

#endif  // SLFE_APPS_HEAT_SIMULATION_H_
