#include "slfe/apps/pr.h"

#include "slfe/core/rr_runners.h"
#include "slfe/sim/cluster.h"

namespace slfe {

PrResult RunPr(const Graph& graph, const AppConfig& config) {
  VertexId n = graph.num_vertices();
  PrResult result;
  result.ranks.assign(n, 1.0f);

  DistGraph dg = DistGraph::Build(graph, config.num_nodes);

  GuidanceAcquisition guidance =
      AcquireGuidance(graph, config, GuidanceRootPolicy::kSourceVertices);
  RecordGuidance(guidance, &result.info);

  DistEngine<float> engine(dg, MakeEngineOptions(config, guidance));
  ArithRunner<float> runner(&engine);

  // The propagated property is the out-contribution rank/out_degree (what a
  // successor gathers); `ranks` keeps the displayed damped rank.
  std::vector<float> contrib(n);
  for (VertexId v = 0; v < n; ++v) {
    VertexId od = graph.out_degree(v);
    contrib[v] = od > 0 ? 1.0f / static_cast<float>(od) : 1.0f;
  }
  std::vector<float>& ranks = result.ranks;

  auto gather = [&contrib](float acc, VertexId src, Weight) {
    return acc + contrib[src];
  };
  // vertexUpdate (the paper's vOp): damp, record the rank, and commit the
  // next out-contribution as the propagated value.
  auto vertex_fn = [&graph, &ranks](VertexId v, float acc) {
    float rank = 0.15f + 0.85f * acc;
    ranks[v] = rank;
    VertexId od = graph.out_degree(v);
    return od > 0 ? rank / static_cast<float>(od) : rank;
  };

  sim::Cluster cluster(config.num_nodes, config.threads_per_node);
  cluster.Run([&](sim::NodeContext& ctx) {
    auto run = runner.Run(ctx, &contrib, 0.0f, gather, vertex_fn,
                          config.max_iters, config.epsilon);
    if (ctx.rank == 0) {
      result.info.stats = run.stats;
      result.info.supersteps = run.supersteps;
      result.info.ec_vertices = run.ec_vertices;
    }
  });
  return result;
}

}  // namespace slfe
