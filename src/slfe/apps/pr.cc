#include "slfe/apps/pr.h"

#include "slfe/api/engine_adapters.h"
#include "slfe/core/rr_runners.h"
#include "slfe/gas/gas_apps.h"
#include "slfe/sim/cluster.h"

namespace slfe {

PrResult RunPr(const Graph& graph, const AppConfig& config) {
  VertexId n = graph.num_vertices();
  PrResult result;
  result.ranks.assign(n, 1.0f);

  DistGraph dg = DistGraph::Build(graph, config.num_nodes);

  GuidanceAcquisition guidance =
      AcquireGuidance(graph, config, GuidanceRootPolicy::kSourceVertices);
  RecordGuidance(guidance, &result.info);

  DistEngine<float> engine(dg, MakeEngineOptions(config, guidance));
  ArithRunner<float> runner(&engine);

  // The propagated property is the out-contribution rank/out_degree (what a
  // successor gathers); `ranks` keeps the displayed damped rank.
  std::vector<float> contrib(n);
  for (VertexId v = 0; v < n; ++v) {
    VertexId od = graph.out_degree(v);
    contrib[v] = od > 0 ? 1.0f / static_cast<float>(od) : 1.0f;
  }
  std::vector<float>& ranks = result.ranks;

  auto gather = [&contrib](float acc, VertexId src, Weight) {
    return acc + contrib[src];
  };
  // vertexUpdate (the paper's vOp): damp, record the rank, and commit the
  // next out-contribution as the propagated value.
  auto vertex_fn = [&graph, &ranks](VertexId v, float acc) {
    float rank = 0.15f + 0.85f * acc;
    ranks[v] = rank;
    VertexId od = graph.out_degree(v);
    return od > 0 ? rank / static_cast<float>(od) : rank;
  };

  sim::Cluster cluster(config.num_nodes, config.threads_per_node);
  cluster.Run([&](sim::NodeContext& ctx) {
    auto run = runner.Run(ctx, &contrib, 0.0f, gather, vertex_fn,
                          config.max_iters, config.epsilon);
    if (ctx.rank == 0) {
      result.info.stats = run.stats;
      result.info.supersteps = run.supersteps;
      result.info.ec_vertices = run.ec_vertices;
    }
  });
  return result;
}

// Self-registration (see api/app_registry.h). PR runs everywhere: dist
// ("finish early" multi-Ruler), shm, GAS (baseline only — delaying
// gathers of a fixed-iteration arithmetic app would change the result),
// and out-of-core (finish-early shard sweeps).
namespace {

api::AppOutcome PrOutcome(AppRunInfo info, const std::vector<float>& ranks) {
  api::AppOutcome out;
  out.info = info;
  out.values = api::ToValues(ranks);
  out.summary = info.ec_vertices;
  out.summary_text =
      "EC vertices=" + std::to_string(info.ec_vertices);
  return out;
}

api::AppRegistrar register_pr([] {
  api::AppDescriptor d;
  d.name = "pr";
  d.summary = "PageRank, damping 0.85 (finish-early RR)";
  d.root_policy = GuidanceRootPolicy::kSourceVertices;
  d.runners[api::Engine::kDist] = [](const api::RunContext& ctx) {
    PrResult r = RunPr(ctx.graph, ctx.config);
    return PrOutcome(r.info, r.ranks);
  };
  d.runners[api::Engine::kShm] = [](const api::RunContext& ctx) {
    std::vector<float> ranks;
    shm::ShmStats stats = shm::ShmPr(ctx.graph, ctx.config.max_iters,
                                     api::ShmThreads(ctx.config), &ranks);
    return PrOutcome(api::FromShmStats(stats), ranks);
  };
  d.runners[api::Engine::kGas] = [](const api::RunContext& ctx) {
    gas::GasOptions opt;
    opt.num_nodes = ctx.config.num_nodes;
    gas::GasPrResult r = gas::RunGasPr(ctx.graph, ctx.config.max_iters, opt);
    return PrOutcome(api::FromGasStats(r.stats), r.ranks);
  };
  d.runners[api::Engine::kOoc] = [](const api::RunContext& ctx) {
    Result<ooc::OocEngine> built =
        ooc::OocEngine::Build(ctx.graph, ctx.OocDir(), ctx.ooc_shards);
    if (!built.ok()) {
      api::AppOutcome out;
      out.status = built.status();
      return out;
    }
    ooc::OocEngine engine = std::move(built).value();
    std::vector<float> ranks;
    api::AppOutcome out;
    GuidanceAcquisition acq = AcquireGuidance(
        ctx.graph, ctx.config, GuidanceRootPolicy::kSourceVertices);
    if (acq) {
      // One acquisition per run: the runner's Acquire carries the
      // hit/coalesced accounting AND feeds the sweep.
      ooc::OocStats stats = ooc::OocPrGuided(engine, ctx.graph,
                                             ctx.config.max_iters, &ranks, acq);
      out = PrOutcome(api::FromOocStats(stats), ranks);
      RecordGuidance(acq, &out.info);
    } else {
      ooc::OocStats stats =
          ooc::OocPr(engine, ctx.graph, ctx.config.max_iters, &ranks);
      out = PrOutcome(api::FromOocStats(stats), ranks);
    }
    engine.RemoveFiles();
    return out;
  };
  return d;
}());

}  // namespace

}  // namespace slfe
