#ifndef SLFE_APPS_APP_COMMON_H_
#define SLFE_APPS_APP_COMMON_H_

#include <cstdint>

#include "slfe/core/guidance_provider.h"
#include "slfe/core/rr_guidance.h"
#include "slfe/engine/dist_engine.h"
#include "slfe/graph/types.h"
#include "slfe/obs/trace.h"
#include "slfe/sim/comm.h"

namespace slfe {

/// Shared configuration for all applications: how large the simulated
/// cluster is, whether SLFE's redundancy reduction is active, and the
/// knobs the paper's ablations toggle.
struct AppConfig {
  int num_nodes = 1;
  int threads_per_node = 1;
  /// false = the Gemini baseline (same engine, no guidance).
  bool enable_rr = false;
  bool enable_stealing = true;
  sim::CostModel cost_model;
  /// Arithmetic apps: iteration cap and L1 convergence threshold.
  uint32_t max_iters = 100;
  double epsilon = 1e-9;
  /// Single-source apps: query root.
  VertexId root = 0;
  /// Overrides the engine's dense/sparse switch threshold.
  double dense_fraction = 0.05;
  /// Serve guidance from the provider's cache (paper §4.4 multi-job
  /// amortization). Disable to force regeneration every run.
  bool use_guidance_cache = true;
  /// Provider to acquire guidance from; nullptr = the process-wide
  /// GuidanceProvider::Global(), which all apps share by default.
  GuidanceProvider* guidance_provider = nullptr;
  /// Optional per-job span trace (guidance_acquire.* spans are recorded
  /// against it). Null = tracing disabled; must outlive the run.
  obs::JobTrace* trace = nullptr;
};

/// Common result bundle: engine statistics plus preprocessing cost.
struct AppRunInfo {
  EngineStats stats;
  uint64_t supersteps = 0;
  /// Guidance acquisition wall time actually paid by this run: the sweep
  /// cost on a cache miss, the near-zero lookup cost on a hit (Fig. 8
  /// numerator, amortized form).
  double guidance_seconds = 0;
  /// Guidance sweep depth (diagnostics).
  uint32_t guidance_depth = 0;
  /// True when a (non-null) guidance was actually acquired for this run.
  bool guidance_acquired = false;
  /// True when guidance came from the cache instead of a fresh sweep.
  bool guidance_cache_hit = false;
  /// True when this run piggybacked on another job's in-flight sweep
  /// (provider singleflight) — the JobService counts hit = cache_hit ||
  /// coalesced for its per-tenant amortization accounting.
  bool guidance_coalesced = false;
  /// True when the miss was served by patching the previous graph
  /// version's guidance (RRGuidance::Repair) instead of a full sweep.
  bool guidance_repaired = false;
  /// Safety-sweep updates (min/max apps; 0 means guidance was exact).
  uint64_t safety_sweep_updates = 0;
  /// Early-converged vertices at termination (arith apps, Fig. 2).
  uint64_t ec_vertices = 0;
};

/// Acquires RR guidance for an app run through the provider layer: root
/// selection per `policy`, cache lookup, parallel generation on miss.
/// Returns an empty acquisition (null guidance) when RR is disabled.
inline GuidanceAcquisition AcquireGuidance(const Graph& graph,
                                           const AppConfig& config,
                                           GuidanceRootPolicy policy) {
  if (!config.enable_rr) return {};
  GuidanceProvider& provider = ResolveProvider(config.guidance_provider);
  GuidanceRequest request;
  request.policy = policy;
  request.root = config.root;
  request.use_cache = config.use_guidance_cache;
  if (config.trace == nullptr) return provider.Acquire(graph, request);
  double start = config.trace->Now();
  GuidanceAcquisition acquisition = provider.Acquire(graph, request);
  const char* outcome = !acquisition          ? "none"
                        : acquisition.store_hit ? "store"
                        : acquisition.cache_hit ? "cache"
                        : acquisition.coalesced ? "coalesced"
                        : acquisition.repaired  ? "repair"
                                                : "generate";
  config.trace->AddSpanSince(std::string("guidance_acquire.") + outcome,
                             start);
  return acquisition;
}

/// Copies the acquisition's accounting into the run info.
inline void RecordGuidance(const GuidanceAcquisition& acquisition,
                           AppRunInfo* info) {
  if (!acquisition) return;
  info->guidance_acquired = true;
  info->guidance_seconds = acquisition.acquire_seconds;
  info->guidance_depth = acquisition.guidance->depth();
  info->guidance_cache_hit = acquisition.cache_hit;
  info->guidance_coalesced = acquisition.coalesced;
  info->guidance_repaired = acquisition.repaired;
}

/// Builds EngineOptions from an AppConfig (mode policy is set per app).
inline EngineOptions MakeEngineOptions(const AppConfig& config) {
  EngineOptions opt;
  opt.enable_work_stealing = config.enable_stealing;
  opt.cost_model = config.cost_model;
  opt.dense_fraction = config.dense_fraction;
  return opt;
}

/// As above, additionally threading acquired guidance into the engine so
/// runners constructed from the engine pick it up (null guidance = the
/// Gemini baseline).
inline EngineOptions MakeEngineOptions(const AppConfig& config,
                                       const GuidanceAcquisition& guidance) {
  EngineOptions opt = MakeEngineOptions(config);
  opt.guidance = guidance.guidance;
  return opt;
}

}  // namespace slfe

#endif  // SLFE_APPS_APP_COMMON_H_
