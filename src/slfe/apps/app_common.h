#ifndef SLFE_APPS_APP_COMMON_H_
#define SLFE_APPS_APP_COMMON_H_

#include <cstdint>

#include "slfe/core/rr_guidance.h"
#include "slfe/engine/dist_engine.h"
#include "slfe/graph/types.h"
#include "slfe/sim/comm.h"

namespace slfe {

/// Shared configuration for all applications: how large the simulated
/// cluster is, whether SLFE's redundancy reduction is active, and the
/// knobs the paper's ablations toggle.
struct AppConfig {
  int num_nodes = 1;
  int threads_per_node = 1;
  /// false = the Gemini baseline (same engine, no guidance).
  bool enable_rr = false;
  bool enable_stealing = true;
  sim::CostModel cost_model;
  /// Arithmetic apps: iteration cap and L1 convergence threshold.
  uint32_t max_iters = 100;
  double epsilon = 1e-9;
  /// Single-source apps: query root.
  VertexId root = 0;
  /// Overrides the engine's dense/sparse switch threshold.
  double dense_fraction = 0.05;
};

/// Builds EngineOptions from an AppConfig (mode policy is set per app).
inline EngineOptions MakeEngineOptions(const AppConfig& config) {
  EngineOptions opt;
  opt.enable_work_stealing = config.enable_stealing;
  opt.cost_model = config.cost_model;
  opt.dense_fraction = config.dense_fraction;
  return opt;
}

/// Common result bundle: engine statistics plus preprocessing cost.
struct AppRunInfo {
  EngineStats stats;
  uint64_t supersteps = 0;
  /// RRG generation wall time; 0 in baseline mode (Fig. 8 numerator).
  double guidance_seconds = 0;
  /// Guidance sweep depth (diagnostics).
  uint32_t guidance_depth = 0;
  /// Safety-sweep updates (min/max apps; 0 means guidance was exact).
  uint64_t safety_sweep_updates = 0;
  /// Early-converged vertices at termination (arith apps, Fig. 2).
  uint64_t ec_vertices = 0;
};

}  // namespace slfe

#endif  // SLFE_APPS_APP_COMMON_H_
