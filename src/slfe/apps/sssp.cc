#include "slfe/apps/sssp.h"

#include <limits>

#include "slfe/core/rr_runners.h"
#include "slfe/engine/atomic_ops.h"
#include "slfe/sim/cluster.h"

namespace slfe {

SsspResult RunSssp(const Graph& graph, const AppConfig& config) {
  constexpr float kInf = std::numeric_limits<float>::infinity();
  SsspResult result;
  result.dist.assign(graph.num_vertices(), kInf);
  result.dist[config.root] = 0.0f;

  DistGraph dg = DistGraph::Build(graph, config.num_nodes);

  GuidanceAcquisition guidance =
      AcquireGuidance(graph, config, GuidanceRootPolicy::kSingleSource);
  RecordGuidance(guidance, &result.info);

  DistEngine<float> engine(dg, MakeEngineOptions(config, guidance));
  MinMaxRunner<float> runner(&engine);

  std::vector<float>& dist = result.dist;
  auto gather = [&dist](float acc, VertexId src, Weight w) {
    float candidate = AtomicLoad(&dist[src]) + w;
    return candidate < acc ? candidate : acc;
  };
  auto apply = [&dist](VertexId dst, float acc) {
    if (acc < dist[dst]) {
      dist[dst] = acc;  // dst is rank-local; no atomics needed in pull
      return true;
    }
    return false;
  };
  auto scatter = [&dist](VertexId src, VertexId dst, Weight w) {
    float candidate = AtomicLoad(&dist[src]) + w;
    return AtomicMin(&dist[dst], candidate);
  };

  sim::Cluster cluster(config.num_nodes, config.threads_per_node);
  cluster.Run([&](sim::NodeContext& ctx) {
    auto run = runner.Run(ctx, {config.root}, kInf, gather, apply, scatter);
    if (ctx.rank == 0) {
      result.info.stats = run.stats;
      result.info.supersteps = run.supersteps;
      result.info.safety_sweep_updates = run.safety_sweep_updates;
    }
  });
  return result;
}

}  // namespace slfe
