#include "slfe/apps/sssp.h"

#include <limits>

#include "slfe/api/engine_adapters.h"
#include "slfe/core/rr_runners.h"
#include "slfe/engine/atomic_ops.h"
#include "slfe/gas/gas_apps.h"
#include "slfe/sim/cluster.h"

namespace slfe {

SsspResult RunSssp(const Graph& graph, const AppConfig& config) {
  constexpr float kInf = std::numeric_limits<float>::infinity();
  SsspResult result;
  result.dist.assign(graph.num_vertices(), kInf);
  result.dist[config.root] = 0.0f;

  DistGraph dg = DistGraph::Build(graph, config.num_nodes);

  GuidanceAcquisition guidance =
      AcquireGuidance(graph, config, GuidanceRootPolicy::kSingleSource);
  RecordGuidance(guidance, &result.info);

  DistEngine<float> engine(dg, MakeEngineOptions(config, guidance));
  MinMaxRunner<float> runner(&engine);

  std::vector<float>& dist = result.dist;
  auto gather = [&dist](float acc, VertexId src, Weight w) {
    float candidate = AtomicLoad(&dist[src]) + w;
    return candidate < acc ? candidate : acc;
  };
  auto apply = [&dist](VertexId dst, float acc) {
    if (acc < dist[dst]) {
      dist[dst] = acc;  // dst is rank-local; no atomics needed in pull
      return true;
    }
    return false;
  };
  auto scatter = [&dist](VertexId src, VertexId dst, Weight w) {
    float candidate = AtomicLoad(&dist[src]) + w;
    return AtomicMin(&dist[dst], candidate);
  };

  sim::Cluster cluster(config.num_nodes, config.threads_per_node);
  cluster.Run([&](sim::NodeContext& ctx) {
    auto run = runner.Run(ctx, {config.root}, kInf, gather, apply, scatter);
    if (ctx.rank == 0) {
      result.info.stats = run.stats;
      result.info.supersteps = run.supersteps;
      result.info.safety_sweep_updates = run.safety_sweep_updates;
    }
  });
  return result;
}

// Self-registration: this file is the ONE place that declares what sssp
// is — which engines run it, its guidance policy, its graph needs — and
// every surface (CLI, daemon, line protocol, benches) derives dispatch
// and validation from this descriptor.
namespace {

api::AppOutcome SsspOutcome(AppRunInfo info, const std::vector<float>& dist) {
  api::AppOutcome out;
  out.info = info;
  out.values = api::ToValues(dist);
  uint64_t reached = 0;
  for (float d : dist) {
    if (d < std::numeric_limits<float>::infinity()) ++reached;
  }
  out.summary = reached;
  out.summary_text = "reached=" + std::to_string(reached) + " of " +
                     std::to_string(dist.size());
  return out;
}

api::AppRegistrar register_sssp([] {
  api::AppDescriptor d;
  d.name = "sssp";
  d.summary = "single-source shortest paths (start-late RR)";
  d.root_policy = GuidanceRootPolicy::kSingleSource;
  d.needs_weights = true;
  d.single_source = true;
  d.runners[api::Engine::kDist] = [](const api::RunContext& ctx) {
    SsspResult r = RunSssp(ctx.graph, ctx.config);
    return SsspOutcome(r.info, r.dist);
  };
  d.runners[api::Engine::kGas] = [](const api::RunContext& ctx) {
    GuidanceAcquisition acq = AcquireGuidance(
        ctx.graph, ctx.config, GuidanceRootPolicy::kSingleSource);
    gas::GasOptions opt;
    opt.num_nodes = ctx.config.num_nodes;
    opt.guidance = acq.guidance;  // "start late" gathers (monotone min)
    gas::GasSsspResult r = gas::RunGasSssp(ctx.graph, ctx.config.root, opt);
    api::AppOutcome out = SsspOutcome(api::FromGasStats(r.stats), r.dist);
    RecordGuidance(acq, &out.info);
    return out;
  };
  d.runners[api::Engine::kShm] = [](const api::RunContext& ctx) {
    std::vector<float> dist;
    shm::ShmStats stats = shm::ShmSssp(ctx.graph, ctx.config.root,
                                       api::ShmThreads(ctx.config), &dist);
    return SsspOutcome(api::FromShmStats(stats), dist);
  };
  return d;
}());

}  // namespace

}  // namespace slfe
