#ifndef SLFE_APPS_TRIANGLE_COUNT_H_
#define SLFE_APPS_TRIANGLE_COUNT_H_

#include <cstdint>

#include "slfe/apps/app_common.h"
#include "slfe/graph/graph.h"

namespace slfe {

/// Triangle counting (paper Table 1, arithmetic category). The input is
/// treated as undirected: an unordered pair {u, v} is adjacent if either
/// direction is present. Counting uses the standard degree-ordered
/// intersection algorithm parallelized over the cluster's vertex ranges.
struct TriangleCountResult {
  uint64_t triangles = 0;
  AppRunInfo info;
};

TriangleCountResult RunTriangleCount(const Graph& graph,
                                     const AppConfig& config);

}  // namespace slfe

#endif  // SLFE_APPS_TRIANGLE_COUNT_H_
