#include "slfe/apps/belief_propagation.h"

#include <cmath>

#include "slfe/api/engine_adapters.h"
#include "slfe/common/logging.h"
#include "slfe/core/rr_runners.h"
#include "slfe/sim/cluster.h"

namespace slfe {

BeliefPropagationResult RunBeliefPropagation(const Graph& graph,
                                             const std::vector<float>& prior,
                                             const AppConfig& config,
                                             float coupling, float damping) {
  VertexId n = graph.num_vertices();
  SLFE_CHECK_EQ(prior.size(), n);
  BeliefPropagationResult result;
  result.belief = prior;

  DistGraph dg = DistGraph::Build(graph, config.num_nodes);

  GuidanceAcquisition guidance =
      AcquireGuidance(graph, config, GuidanceRootPolicy::kSourceVertices);
  RecordGuidance(guidance, &result.info);

  DistEngine<float> engine(dg, MakeEngineOptions(config, guidance));
  ArithRunner<float> runner(&engine);

  std::vector<float>& belief = result.belief;
  auto gather = [&belief](float acc, VertexId src, Weight) {
    return acc + std::tanh(belief[src]);
  };
  auto commit = [&prior, &belief, coupling, damping](VertexId v, float acc) {
    float target = prior[v] + coupling * acc;
    return (1.0f - damping) * belief[v] + damping * target;
  };

  sim::Cluster cluster(config.num_nodes, config.threads_per_node);
  cluster.Run([&](sim::NodeContext& ctx) {
    auto run = runner.Run(ctx, &belief, 0.0f, gather, commit,
                          config.max_iters, config.epsilon);
    if (ctx.rank == 0) {
      result.info.stats = run.stats;
      result.info.supersteps = run.supersteps;
      result.info.ec_vertices = run.ec_vertices;
    }
  });
  return result;
}

// Self-registration (see api/app_registry.h). Canonical input: positive
// log-odds evidence (+2) at the request root, no evidence elsewhere.
namespace {

api::AppRegistrar register_bp([] {
  api::AppDescriptor d;
  d.name = "bp";
  d.summary = "loopy belief propagation (damped mean-field MRF)";
  d.root_policy = GuidanceRootPolicy::kSourceVertices;
  d.runners[api::Engine::kDist] = [](const api::RunContext& ctx) {
    std::vector<float> prior(ctx.graph.num_vertices(), 0.0f);
    if (!prior.empty()) {
      prior[ctx.config.root % prior.size()] = 2.0f;
    }
    BeliefPropagationResult r =
        RunBeliefPropagation(ctx.graph, prior, ctx.config,
                             ctx.request.coupling, ctx.request.damping);
    api::AppOutcome out;
    out.info = r.info;
    out.values = api::ToValues(r.belief);
    uint64_t positive = 0;
    for (float b : r.belief) {
      if (b > 0) ++positive;
    }
    out.summary = positive;
    out.summary_text = "MAP-positive=" + std::to_string(positive);
    return out;
  };
  return d;
}());

}  // namespace

}  // namespace slfe
