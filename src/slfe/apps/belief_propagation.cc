#include "slfe/apps/belief_propagation.h"

#include <cmath>

#include "slfe/common/logging.h"
#include "slfe/core/rr_runners.h"
#include "slfe/sim/cluster.h"

namespace slfe {

BeliefPropagationResult RunBeliefPropagation(const Graph& graph,
                                             const std::vector<float>& prior,
                                             const AppConfig& config,
                                             float coupling, float damping) {
  VertexId n = graph.num_vertices();
  SLFE_CHECK_EQ(prior.size(), n);
  BeliefPropagationResult result;
  result.belief = prior;

  DistGraph dg = DistGraph::Build(graph, config.num_nodes);

  GuidanceAcquisition guidance =
      AcquireGuidance(graph, config, GuidanceRootPolicy::kSourceVertices);
  RecordGuidance(guidance, &result.info);

  DistEngine<float> engine(dg, MakeEngineOptions(config, guidance));
  ArithRunner<float> runner(&engine);

  std::vector<float>& belief = result.belief;
  auto gather = [&belief](float acc, VertexId src, Weight) {
    return acc + std::tanh(belief[src]);
  };
  auto commit = [&prior, &belief, coupling, damping](VertexId v, float acc) {
    float target = prior[v] + coupling * acc;
    return (1.0f - damping) * belief[v] + damping * target;
  };

  sim::Cluster cluster(config.num_nodes, config.threads_per_node);
  cluster.Run([&](sim::NodeContext& ctx) {
    auto run = runner.Run(ctx, &belief, 0.0f, gather, commit,
                          config.max_iters, config.epsilon);
    if (ctx.rank == 0) {
      result.info.stats = run.stats;
      result.info.supersteps = run.supersteps;
      result.info.ec_vertices = run.ec_vertices;
    }
  });
  return result;
}

}  // namespace slfe
