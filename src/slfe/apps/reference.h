#ifndef SLFE_APPS_REFERENCE_H_
#define SLFE_APPS_REFERENCE_H_

#include <cstdint>
#include <vector>

#include "slfe/graph/graph.h"
#include "slfe/graph/types.h"

namespace slfe {

/// Sequential, textbook reference implementations used as ground truth by
/// the test suite (paper Theorem 1: every engine mode must converge to the
/// same values these produce).

/// Dijkstra from `root`; infinity for unreachable vertices.
std::vector<float> ReferenceSssp(const Graph& graph, VertexId root);

/// BFS hop counts from `root`; UINT32_MAX for unreachable vertices.
std::vector<uint32_t> ReferenceBfs(const Graph& graph, VertexId root);

/// Weakly connected components as minimum-vertex-id labels. The graph is
/// treated as undirected (both adjacency directions scanned).
std::vector<uint32_t> ReferenceCc(const Graph& graph);

/// Maximum-bottleneck (widest) path widths from `root`; +infinity at the
/// root, 0 for unreachable vertices.
std::vector<float> ReferenceWp(const Graph& graph, VertexId root);

/// Damped PageRank, `iterations` synchronous power iterations starting
/// from rank 1 (contribution model identical to RunPr).
std::vector<float> ReferencePr(const Graph& graph, uint32_t iterations);

/// TunkRank reference matching RunTr.
std::vector<float> ReferenceTr(const Graph& graph, uint32_t iterations,
                               float retweet_probability = 0.5f);

/// y = (A^T)^k x reference matching RunSpmv.
std::vector<float> ReferenceSpmv(const Graph& graph,
                                 const std::vector<float>& x, uint32_t k);

/// Walk counts of length <= k from root, matching RunNumPaths.
std::vector<double> ReferenceNumPaths(const Graph& graph, VertexId root,
                                      uint32_t k);

/// Brute-force triangle count over the undirected closure (O(V * d^2));
/// use small graphs only.
uint64_t ReferenceTriangleCount(const Graph& graph);

/// Jacobi heat diffusion matching RunHeatSimulation, `iterations` rounds.
std::vector<float> ReferenceHeatSimulation(const Graph& graph,
                                           const std::vector<float>& initial,
                                           uint32_t iterations, float alpha);

/// Damped mean-field BP matching RunBeliefPropagation.
std::vector<float> ReferenceBeliefPropagation(const Graph& graph,
                                              const std::vector<float>& prior,
                                              uint32_t iterations,
                                              float coupling, float damping);

/// Kruskal MST/forest weight over the undirected closure with
/// (weight, src, dst) tie-breaking, matching RunMst's selection.
double ReferenceMstWeight(const Graph& graph);

}  // namespace slfe

#endif  // SLFE_APPS_REFERENCE_H_
