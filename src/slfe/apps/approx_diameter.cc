#include "slfe/apps/approx_diameter.h"

#include <algorithm>

#include "slfe/api/app_registry.h"
#include "slfe/apps/bfs.h"
#include "slfe/common/random.h"

namespace slfe {

ApproxDiameterResult RunApproxDiameter(const Graph& graph,
                                       const AppConfig& config,
                                       uint32_t num_probes, uint64_t seed) {
  ApproxDiameterResult result;
  if (graph.num_vertices() == 0) return result;
  Random rng(seed);
  for (uint32_t probe = 0; probe < num_probes; ++probe) {
    AppConfig probe_config = config;
    // Probe from a random vertex with outgoing edges so the BFS can expand.
    VertexId root = static_cast<VertexId>(rng.Uniform(graph.num_vertices()));
    for (VertexId tries = 0;
         graph.out_degree(root) == 0 && tries < graph.num_vertices();
         ++tries) {
      root = (root + 1) % graph.num_vertices();
    }
    probe_config.root = root;
    BfsResult bfs = RunBfs(graph, probe_config);
    for (uint32_t level : bfs.levels) {
      if (level != UINT32_MAX) {
        result.diameter_lower_bound =
            std::max(result.diameter_lower_bound, level);
      }
    }
    // Aggregate run info across probes.
    result.info.supersteps += bfs.info.supersteps;
    result.info.guidance_seconds += bfs.info.guidance_seconds;
    result.info.safety_sweep_updates += bfs.info.safety_sweep_updates;
    result.info.stats.computations += bfs.info.stats.computations;
    result.info.stats.updates += bfs.info.stats.updates;
    result.info.stats.skipped += bfs.info.stats.skipped;
    result.info.stats.pull_seconds += bfs.info.stats.pull_seconds;
    result.info.stats.push_seconds += bfs.info.stats.push_seconds;
    result.info.stats.comm_seconds += bfs.info.stats.comm_seconds;
  }
  return result;
}

// Self-registration (see api/app_registry.h).
namespace {

api::AppRegistrar register_diameter([] {
  api::AppDescriptor d;
  d.name = "diameter";
  d.summary = "approximate diameter lower bound (multi-probe BFS)";
  d.root_policy = GuidanceRootPolicy::kSingleSource;
  d.runners[api::Engine::kDist] = [](const api::RunContext& ctx) {
    ApproxDiameterResult r =
        RunApproxDiameter(ctx.graph, ctx.config, ctx.request.num_probes);
    api::AppOutcome out;
    out.info = r.info;
    out.summary = r.diameter_lower_bound;
    out.summary_text =
        "diameter>=" + std::to_string(r.diameter_lower_bound) + " (" +
        std::to_string(ctx.request.num_probes) + " probes)";
    return out;
  };
  return d;
}());

}  // namespace

}  // namespace slfe
