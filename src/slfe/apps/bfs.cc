#include "slfe/apps/bfs.h"

#include <algorithm>
#include <cstdint>

#include "slfe/api/engine_adapters.h"
#include "slfe/core/rr_runners.h"
#include "slfe/engine/atomic_ops.h"
#include "slfe/sim/cluster.h"

namespace slfe {

BfsResult RunBfs(const Graph& graph, const AppConfig& config) {
  BfsResult result;
  result.levels.assign(graph.num_vertices(), UINT32_MAX);
  result.levels[config.root] = 0;

  DistGraph dg = DistGraph::Build(graph, config.num_nodes);

  GuidanceAcquisition guidance =
      AcquireGuidance(graph, config, GuidanceRootPolicy::kSingleSource);
  RecordGuidance(guidance, &result.info);

  DistEngine<uint32_t> engine(dg, MakeEngineOptions(config, guidance));
  MinMaxRunner<uint32_t> runner(&engine);

  std::vector<uint32_t>& levels = result.levels;
  auto gather = [&levels](uint32_t acc, VertexId src, Weight) {
    uint32_t lv = AtomicLoad(&levels[src]);
    uint32_t candidate = lv == UINT32_MAX ? UINT32_MAX : lv + 1;
    return candidate < acc ? candidate : acc;
  };
  auto apply = [&levels](VertexId dst, uint32_t acc) {
    if (acc < levels[dst]) {
      levels[dst] = acc;
      return true;
    }
    return false;
  };
  auto scatter = [&levels](VertexId src, VertexId dst, Weight) {
    uint32_t lv = AtomicLoad(&levels[src]);
    if (lv == UINT32_MAX) return false;
    return AtomicMin(&levels[dst], lv + 1);
  };

  sim::Cluster cluster(config.num_nodes, config.threads_per_node);
  cluster.Run([&](sim::NodeContext& ctx) {
    auto run =
        runner.Run(ctx, {config.root}, UINT32_MAX, gather, apply, scatter);
    if (ctx.rank == 0) {
      result.info.stats = run.stats;
      result.info.supersteps = run.supersteps;
      result.info.safety_sweep_updates = run.safety_sweep_updates;
    }
  });
  return result;
}

// Self-registration (see api/app_registry.h).
namespace {

api::AppRegistrar register_bfs([] {
  api::AppDescriptor d;
  d.name = "bfs";
  d.summary = "breadth-first search hop counts";
  d.root_policy = GuidanceRootPolicy::kSingleSource;
  d.single_source = true;
  d.runners[api::Engine::kDist] = [](const api::RunContext& ctx) {
    BfsResult r = RunBfs(ctx.graph, ctx.config);
    api::AppOutcome out;
    out.info = r.info;
    out.values = api::ToValues(r.levels);
    uint32_t depth = 0;
    for (uint32_t l : r.levels) {
      if (l != UINT32_MAX) depth = std::max(depth, l);
    }
    out.summary = depth;
    out.summary_text = "max level=" + std::to_string(depth);
    return out;
  };
  return d;
}());

}  // namespace

}  // namespace slfe
