#include "slfe/apps/bfs.h"

#include <cstdint>

#include "slfe/core/rr_runners.h"
#include "slfe/engine/atomic_ops.h"
#include "slfe/sim/cluster.h"

namespace slfe {

BfsResult RunBfs(const Graph& graph, const AppConfig& config) {
  BfsResult result;
  result.levels.assign(graph.num_vertices(), UINT32_MAX);
  result.levels[config.root] = 0;

  DistGraph dg = DistGraph::Build(graph, config.num_nodes);

  GuidanceAcquisition guidance =
      AcquireGuidance(graph, config, GuidanceRootPolicy::kSingleSource);
  RecordGuidance(guidance, &result.info);

  DistEngine<uint32_t> engine(dg, MakeEngineOptions(config, guidance));
  MinMaxRunner<uint32_t> runner(&engine);

  std::vector<uint32_t>& levels = result.levels;
  auto gather = [&levels](uint32_t acc, VertexId src, Weight) {
    uint32_t lv = AtomicLoad(&levels[src]);
    uint32_t candidate = lv == UINT32_MAX ? UINT32_MAX : lv + 1;
    return candidate < acc ? candidate : acc;
  };
  auto apply = [&levels](VertexId dst, uint32_t acc) {
    if (acc < levels[dst]) {
      levels[dst] = acc;
      return true;
    }
    return false;
  };
  auto scatter = [&levels](VertexId src, VertexId dst, Weight) {
    uint32_t lv = AtomicLoad(&levels[src]);
    if (lv == UINT32_MAX) return false;
    return AtomicMin(&levels[dst], lv + 1);
  };

  sim::Cluster cluster(config.num_nodes, config.threads_per_node);
  cluster.Run([&](sim::NodeContext& ctx) {
    auto run =
        runner.Run(ctx, {config.root}, UINT32_MAX, gather, apply, scatter);
    if (ctx.rank == 0) {
      result.info.stats = run.stats;
      result.info.supersteps = run.supersteps;
      result.info.safety_sweep_updates = run.safety_sweep_updates;
    }
  });
  return result;
}

}  // namespace slfe
