#include "slfe/apps/reference.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>
#include <tuple>
#include <limits>
#include <queue>

namespace slfe {

std::vector<float> ReferenceSssp(const Graph& graph, VertexId root) {
  constexpr float kInf = std::numeric_limits<float>::infinity();
  std::vector<float> dist(graph.num_vertices(), kInf);
  dist[root] = 0.0f;
  using Entry = std::pair<float, VertexId>;  // (distance, vertex)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> pq;
  pq.push({0.0f, root});
  while (!pq.empty()) {
    auto [d, v] = pq.top();
    pq.pop();
    if (d > dist[v]) continue;
    graph.out().ForEachNeighbor(v, [&](VertexId u, Weight w) {
      float nd = d + w;
      if (nd < dist[u]) {
        dist[u] = nd;
        pq.push({nd, u});
      }
    });
  }
  return dist;
}

std::vector<uint32_t> ReferenceBfs(const Graph& graph, VertexId root) {
  std::vector<uint32_t> level(graph.num_vertices(), UINT32_MAX);
  level[root] = 0;
  std::queue<VertexId> q;
  q.push(root);
  while (!q.empty()) {
    VertexId v = q.front();
    q.pop();
    graph.out().ForEachNeighbor(v, [&](VertexId u, Weight) {
      if (level[u] == UINT32_MAX) {
        level[u] = level[v] + 1;
        q.push(u);
      }
    });
  }
  return level;
}

std::vector<uint32_t> ReferenceCc(const Graph& graph) {
  VertexId n = graph.num_vertices();
  std::vector<uint32_t> label(n, UINT32_MAX);
  for (VertexId s = 0; s < n; ++s) {
    if (label[s] != UINT32_MAX) continue;
    // BFS over the undirected closure; s is the smallest unvisited id, so
    // it is its component's minimum label.
    label[s] = s;
    std::queue<VertexId> q;
    q.push(s);
    while (!q.empty()) {
      VertexId v = q.front();
      q.pop();
      auto visit = [&](VertexId u, Weight) {
        if (label[u] == UINT32_MAX) {
          label[u] = s;
          q.push(u);
        }
      };
      graph.out().ForEachNeighbor(v, visit);
      graph.in().ForEachNeighbor(v, visit);
    }
  }
  return label;
}

std::vector<float> ReferenceWp(const Graph& graph, VertexId root) {
  constexpr float kInf = std::numeric_limits<float>::infinity();
  std::vector<float> width(graph.num_vertices(), 0.0f);
  width[root] = kInf;
  using Entry = std::pair<float, VertexId>;  // (width, vertex), max-first
  std::priority_queue<Entry> pq;
  pq.push({kInf, root});
  while (!pq.empty()) {
    auto [wd, v] = pq.top();
    pq.pop();
    if (wd < width[v]) continue;
    graph.out().ForEachNeighbor(v, [&](VertexId u, Weight w) {
      float nw = std::min(wd, w);
      if (nw > width[u]) {
        width[u] = nw;
        pq.push({nw, u});
      }
    });
  }
  return width;
}

std::vector<float> ReferencePr(const Graph& graph, uint32_t iterations) {
  VertexId n = graph.num_vertices();
  std::vector<float> rank(n, 1.0f);
  std::vector<float> contrib(n);
  for (VertexId v = 0; v < n; ++v) {
    VertexId od = graph.out_degree(v);
    contrib[v] = od > 0 ? 1.0f / static_cast<float>(od) : 1.0f;
  }
  for (uint32_t it = 0; it < iterations; ++it) {
    for (VertexId v = 0; v < n; ++v) {
      float acc = 0.0f;
      graph.in().ForEachNeighbor(
          v, [&](VertexId u, Weight) { acc += contrib[u]; });
      rank[v] = 0.15f + 0.85f * acc;
    }
    for (VertexId v = 0; v < n; ++v) {
      VertexId od = graph.out_degree(v);
      contrib[v] = od > 0 ? rank[v] / static_cast<float>(od) : rank[v];
    }
  }
  return rank;
}

std::vector<float> ReferenceTr(const Graph& graph, uint32_t iterations,
                               float p) {
  VertexId n = graph.num_vertices();
  std::vector<float> influence(n, 1.0f);
  std::vector<float> contrib(n);
  auto refresh = [&] {
    for (VertexId v = 0; v < n; ++v) {
      VertexId od = graph.out_degree(v);
      contrib[v] =
          od > 0 ? (1.0f + p * influence[v]) / static_cast<float>(od) : 0.0f;
    }
  };
  refresh();
  for (uint32_t it = 0; it < iterations; ++it) {
    for (VertexId v = 0; v < n; ++v) {
      float acc = 0.0f;
      graph.in().ForEachNeighbor(
          v, [&](VertexId u, Weight) { acc += contrib[u]; });
      influence[v] = acc;
    }
    refresh();
  }
  return influence;
}

std::vector<float> ReferenceSpmv(const Graph& graph,
                                 const std::vector<float>& x, uint32_t k) {
  VertexId n = graph.num_vertices();
  std::vector<float> cur = x;
  std::vector<float> next(n);
  for (uint32_t it = 0; it < k; ++it) {
    for (VertexId v = 0; v < n; ++v) {
      float acc = 0.0f;
      graph.in().ForEachNeighbor(
          v, [&](VertexId u, Weight w) { acc += cur[u] * w; });
      next[v] = acc;
    }
    cur.swap(next);
  }
  return cur;
}

std::vector<double> ReferenceNumPaths(const Graph& graph, VertexId root,
                                      uint32_t k) {
  VertexId n = graph.num_vertices();
  std::vector<double> walks(n, 0.0), frontier(n, 0.0), next(n, 0.0);
  frontier[root] = 1.0;
  walks[root] = 1.0;
  for (uint32_t it = 0; it < k; ++it) {
    std::fill(next.begin(), next.end(), 0.0);
    for (VertexId v = 0; v < n; ++v) {
      double acc = 0.0;
      graph.in().ForEachNeighbor(
          v, [&](VertexId u, Weight) { acc += frontier[u]; });
      next[v] = acc;
      walks[v] += acc;
    }
    frontier.swap(next);
  }
  return walks;
}

}  // namespace slfe

namespace slfe {

uint64_t ReferenceTriangleCount(const Graph& graph) {
  VertexId n = graph.num_vertices();
  // Undirected adjacency as sorted unique neighbor sets.
  std::vector<std::vector<VertexId>> adj(n);
  for (VertexId v = 0; v < n; ++v) {
    graph.out().ForEachNeighbor(v, [&](VertexId u, Weight) {
      if (u != v) {
        adj[v].push_back(u);
        adj[u].push_back(v);
      }
    });
  }
  for (auto& a : adj) {
    std::sort(a.begin(), a.end());
    a.erase(std::unique(a.begin(), a.end()), a.end());
  }
  auto connected = [&](VertexId a, VertexId b) {
    return std::binary_search(adj[a].begin(), adj[a].end(), b);
  };
  uint64_t count = 0;
  for (VertexId v = 0; v < n; ++v) {
    for (size_t i = 0; i < adj[v].size(); ++i) {
      VertexId u = adj[v][i];
      if (u < v) continue;
      for (size_t j = i + 1; j < adj[v].size(); ++j) {
        VertexId w = adj[v][j];
        if (w < v) continue;
        if (connected(u, w)) ++count;
      }
    }
  }
  return count;
}

std::vector<float> ReferenceHeatSimulation(const Graph& graph,
                                           const std::vector<float>& initial,
                                           uint32_t iterations, float alpha) {
  VertexId n = graph.num_vertices();
  std::vector<float> cur = initial, next(n);
  for (uint32_t it = 0; it < iterations; ++it) {
    for (VertexId v = 0; v < n; ++v) {
      VertexId in_deg = graph.in_degree(v);
      if (in_deg == 0) {
        next[v] = cur[v];
        continue;
      }
      float sum = 0;
      graph.in().ForEachNeighbor(v,
                                 [&](VertexId u, Weight) { sum += cur[u]; });
      float avg = sum / static_cast<float>(in_deg);
      next[v] = (1.0f - alpha) * cur[v] + alpha * avg;
    }
    cur.swap(next);
  }
  return cur;
}

std::vector<float> ReferenceBeliefPropagation(const Graph& graph,
                                              const std::vector<float>& prior,
                                              uint32_t iterations,
                                              float coupling, float damping) {
  VertexId n = graph.num_vertices();
  std::vector<float> cur = prior, next(n);
  for (uint32_t it = 0; it < iterations; ++it) {
    for (VertexId v = 0; v < n; ++v) {
      float sum = 0;
      graph.in().ForEachNeighbor(
          v, [&](VertexId u, Weight) { sum += std::tanh(cur[u]); });
      float target = prior[v] + coupling * sum;
      next[v] = (1.0f - damping) * cur[v] + damping * target;
    }
    cur.swap(next);
  }
  return cur;
}

double ReferenceMstWeight(const Graph& graph) {
  struct KEdge {
    float w;
    VertexId s, d;
  };
  std::vector<KEdge> edges;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    graph.out().ForEachNeighbor(v, [&](VertexId u, Weight w) {
      if (u != v) edges.push_back({w, v, u});
    });
  }
  std::sort(edges.begin(), edges.end(), [](const KEdge& a, const KEdge& b) {
    return std::tie(a.w, a.s, a.d) < std::tie(b.w, b.s, b.d);
  });
  std::vector<VertexId> parent(graph.num_vertices());
  std::iota(parent.begin(), parent.end(), 0u);
  std::function<VertexId(VertexId)> find = [&](VertexId v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];
      v = parent[v];
    }
    return v;
  };
  double total = 0;
  for (const KEdge& e : edges) {
    VertexId a = find(e.s), b = find(e.d);
    if (a == b) continue;
    parent[a] = b;
    total += e.w;
  }
  return total;
}

}  // namespace slfe
