#ifndef SLFE_APPS_APPROX_DIAMETER_H_
#define SLFE_APPS_APPROX_DIAMETER_H_

#include <cstdint>

#include "slfe/apps/app_common.h"
#include "slfe/graph/graph.h"

namespace slfe {

/// Approximate diameter via multi-probe BFS: runs BFS from `num_probes`
/// sampled vertices and reports the largest finite eccentricity seen — a
/// lower bound on the true diameter. A min/max-class app (paper Table 1).
struct ApproxDiameterResult {
  uint32_t diameter_lower_bound = 0;
  AppRunInfo info;  ///< aggregated over all probes
};

ApproxDiameterResult RunApproxDiameter(const Graph& graph,
                                       const AppConfig& config,
                                       uint32_t num_probes = 4,
                                       uint64_t seed = 42);

}  // namespace slfe

#endif  // SLFE_APPS_APPROX_DIAMETER_H_
