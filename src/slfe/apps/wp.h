#ifndef SLFE_APPS_WP_H_
#define SLFE_APPS_WP_H_

#include <vector>

#include "slfe/apps/app_common.h"
#include "slfe/graph/graph.h"

namespace slfe {

/// Widest Path (maximum-bottleneck path): width[v] is the maximum over all
/// root->v paths of the minimum edge weight along the path. A max()
/// aggregation app (paper Table 1). width[root] = +inf, unreachable = 0.
struct WpResult {
  std::vector<float> width;
  AppRunInfo info;
};

WpResult RunWp(const Graph& graph, const AppConfig& config);

}  // namespace slfe

#endif  // SLFE_APPS_WP_H_
