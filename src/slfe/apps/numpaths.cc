#include "slfe/apps/numpaths.h"

#include "slfe/api/engine_adapters.h"
#include "slfe/core/rr_runners.h"
#include "slfe/sim/cluster.h"

namespace slfe {

NumPathsResult RunNumPaths(const Graph& graph, const AppConfig& config,
                           uint32_t max_length) {
  VertexId n = graph.num_vertices();
  NumPathsResult result;

  DistGraph dg = DistGraph::Build(graph, config.num_nodes);

  GuidanceAcquisition guidance =
      AcquireGuidance(graph, config, GuidanceRootPolicy::kSingleSource);
  RecordGuidance(guidance, &result.info);

  DistEngine<double> engine(dg, MakeEngineOptions(config, guidance));
  ArithRunner<double> runner(&engine);

  // walks[v] accumulates the number of root->v walks found so far;
  // `frontier_count` holds walks of exactly the current length.
  std::vector<double> walks(n, 0.0);
  std::vector<double> frontier_count(n, 0.0);
  frontier_count[config.root] = 1.0;
  walks[config.root] = 1.0;

  auto gather = [&frontier_count](double acc, VertexId src, Weight) {
    return acc + frontier_count[src];
  };
  auto vertex_fn = [&walks](VertexId v, double acc) {
    walks[v] += acc;
    return acc;  // becomes the next frontier count for v
  };

  sim::Cluster cluster(config.num_nodes, config.threads_per_node);
  cluster.Run([&](sim::NodeContext& ctx) {
    auto run = runner.Run(ctx, &frontier_count, 0.0, gather, vertex_fn,
                          max_length, /*epsilon=*/1e-12);
    if (ctx.rank == 0) {
      result.info.stats = run.stats;
      result.info.supersteps = run.supersteps;
      result.info.ec_vertices = run.ec_vertices;
    }
  });
  result.paths = walks;
  return result;
}

// Self-registration (see api/app_registry.h).
namespace {

api::AppRegistrar register_numpaths([] {
  api::AppDescriptor d;
  d.name = "numpaths";
  d.summary = "walk counts of length <= k from a root";
  d.root_policy = GuidanceRootPolicy::kSingleSource;
  d.single_source = true;
  d.runners[api::Engine::kDist] = [](const api::RunContext& ctx) {
    NumPathsResult r =
        RunNumPaths(ctx.graph, ctx.config, ctx.config.max_iters);
    api::AppOutcome out;
    out.info = r.info;
    out.values = r.paths;
    uint64_t reached = 0;
    for (double p : r.paths) {
      if (p > 0) ++reached;
    }
    out.summary = reached;
    out.summary_text = "reached=" + std::to_string(reached);
    return out;
  };
  return d;
}());

}  // namespace

}  // namespace slfe
