#include "slfe/apps/spmv.h"

#include "slfe/api/engine_adapters.h"
#include "slfe/common/logging.h"
#include "slfe/core/rr_runners.h"
#include "slfe/sim/cluster.h"

namespace slfe {

SpmvResult RunSpmv(const Graph& graph, const std::vector<float>& x,
                   const AppConfig& config, uint32_t iterations) {
  VertexId n = graph.num_vertices();
  SLFE_CHECK_EQ(x.size(), n);
  SpmvResult result;

  DistGraph dg = DistGraph::Build(graph, config.num_nodes);

  GuidanceAcquisition guidance =
      AcquireGuidance(graph, config, GuidanceRootPolicy::kSourceVertices);
  RecordGuidance(guidance, &result.info);

  DistEngine<float> engine(dg, MakeEngineOptions(config, guidance));
  ArithRunner<float> runner(&engine);

  std::vector<float> values = x;  // the propagated vector
  auto gather = [&values](float acc, VertexId src, Weight w) {
    return acc + values[src] * w;
  };
  auto vertex_fn = [](VertexId, float acc) { return acc; };

  sim::Cluster cluster(config.num_nodes, config.threads_per_node);
  cluster.Run([&](sim::NodeContext& ctx) {
    auto run = runner.Run(ctx, &values, 0.0f, gather, vertex_fn, iterations,
                          /*epsilon=*/0.0);
    if (ctx.rank == 0) {
      result.info.stats = run.stats;
      result.info.supersteps = run.supersteps;
      result.info.ec_vertices = run.ec_vertices;
    }
  });
  result.y = values;
  return result;
}

// Self-registration (see api/app_registry.h). The uniform entry point
// uses the canonical input x = all-ones (the registry's contract: every
// declared pair is runnable with nothing but a name); embedders with a
// real vector call RunSpmv directly.
namespace {

api::AppRegistrar register_spmv([] {
  api::AppDescriptor d;
  d.name = "spmv";
  d.summary = "sparse matrix-vector multiply chain y=(A^T)^k x";
  d.root_policy = GuidanceRootPolicy::kSourceVertices;
  d.runners[api::Engine::kDist] = [](const api::RunContext& ctx) {
    std::vector<float> x(ctx.graph.num_vertices(), 1.0f);
    SpmvResult r = RunSpmv(ctx.graph, x, ctx.config, ctx.config.max_iters);
    api::AppOutcome out;
    out.info = r.info;
    out.values = api::ToValues(r.y);
    uint64_t nonzero = 0;
    for (float v : r.y) {
      if (v != 0.0f) ++nonzero;
    }
    out.summary = nonzero;
    out.summary_text = "nonzero=" + std::to_string(nonzero);
    return out;
  };
  return d;
}());

}  // namespace

}  // namespace slfe
