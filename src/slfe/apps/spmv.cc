#include "slfe/apps/spmv.h"

#include "slfe/common/logging.h"
#include "slfe/core/rr_runners.h"
#include "slfe/sim/cluster.h"

namespace slfe {

SpmvResult RunSpmv(const Graph& graph, const std::vector<float>& x,
                   const AppConfig& config, uint32_t iterations) {
  VertexId n = graph.num_vertices();
  SLFE_CHECK_EQ(x.size(), n);
  SpmvResult result;

  DistGraph dg = DistGraph::Build(graph, config.num_nodes);

  GuidanceAcquisition guidance =
      AcquireGuidance(graph, config, GuidanceRootPolicy::kSourceVertices);
  RecordGuidance(guidance, &result.info);

  DistEngine<float> engine(dg, MakeEngineOptions(config, guidance));
  ArithRunner<float> runner(&engine);

  std::vector<float> values = x;  // the propagated vector
  auto gather = [&values](float acc, VertexId src, Weight w) {
    return acc + values[src] * w;
  };
  auto vertex_fn = [](VertexId, float acc) { return acc; };

  sim::Cluster cluster(config.num_nodes, config.threads_per_node);
  cluster.Run([&](sim::NodeContext& ctx) {
    auto run = runner.Run(ctx, &values, 0.0f, gather, vertex_fn, iterations,
                          /*epsilon=*/0.0);
    if (ctx.rank == 0) {
      result.info.stats = run.stats;
      result.info.supersteps = run.supersteps;
      result.info.ec_vertices = run.ec_vertices;
    }
  });
  result.y = values;
  return result;
}

}  // namespace slfe
