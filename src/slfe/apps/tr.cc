#include "slfe/apps/tr.h"

#include "slfe/api/engine_adapters.h"
#include "slfe/core/rr_runners.h"
#include "slfe/gas/gas_apps.h"
#include "slfe/sim/cluster.h"

namespace slfe {

TrResult RunTr(const Graph& graph, const AppConfig& config,
               float retweet_probability) {
  VertexId n = graph.num_vertices();
  TrResult result;
  result.influence.assign(n, 1.0f);

  DistGraph dg = DistGraph::Build(graph, config.num_nodes);

  GuidanceAcquisition guidance =
      AcquireGuidance(graph, config, GuidanceRootPolicy::kSourceVertices);
  RecordGuidance(guidance, &result.info);

  DistEngine<float> engine(dg, MakeEngineOptions(config, guidance));
  ArithRunner<float> runner(&engine);

  // Propagated value: (1 + p*influence(u)) / following(u), precomputed per
  // follower u so the gather is a plain sum.
  std::vector<float> contrib(n);
  std::vector<float>& influence = result.influence;
  const float p = retweet_probability;
  for (VertexId v = 0; v < n; ++v) {
    VertexId od = graph.out_degree(v);
    contrib[v] = od > 0 ? (1.0f + p * influence[v]) / static_cast<float>(od)
                        : 0.0f;
  }

  auto gather = [&contrib](float acc, VertexId src, Weight) {
    return acc + contrib[src];
  };
  auto vertex_fn = [&graph, &influence, p](VertexId v, float acc) {
    influence[v] = acc;
    VertexId od = graph.out_degree(v);
    return od > 0 ? (1.0f + p * acc) / static_cast<float>(od) : 0.0f;
  };

  sim::Cluster cluster(config.num_nodes, config.threads_per_node);
  cluster.Run([&](sim::NodeContext& ctx) {
    auto run = runner.Run(ctx, &contrib, 0.0f, gather, vertex_fn,
                          config.max_iters, config.epsilon);
    if (ctx.rank == 0) {
      result.info.stats = run.stats;
      result.info.supersteps = run.supersteps;
      result.info.ec_vertices = run.ec_vertices;
    }
  });
  return result;
}

// Self-registration (see api/app_registry.h).
namespace {

api::AppOutcome TrOutcome(AppRunInfo info,
                          const std::vector<float>& influence) {
  api::AppOutcome out;
  out.info = info;
  out.values = api::ToValues(influence);
  out.summary = info.ec_vertices;
  out.summary_text = "EC vertices=" + std::to_string(info.ec_vertices);
  return out;
}

api::AppRegistrar register_tr([] {
  api::AppDescriptor d;
  d.name = "tr";
  d.summary = "TunkRank influence scores (finish-early RR)";
  d.root_policy = GuidanceRootPolicy::kSourceVertices;
  d.runners[api::Engine::kDist] = [](const api::RunContext& ctx) {
    TrResult r = RunTr(ctx.graph, ctx.config, ctx.request.retweet_probability);
    return TrOutcome(r.info, r.influence);
  };
  d.runners[api::Engine::kGas] = [](const api::RunContext& ctx) {
    // Baseline only: fixed-iteration arithmetic (see the pr descriptor).
    gas::GasOptions opt;
    opt.num_nodes = ctx.config.num_nodes;
    gas::GasTrResult r = gas::RunGasTr(ctx.graph, ctx.config.max_iters, opt,
                                       ctx.request.retweet_probability);
    return TrOutcome(api::FromGasStats(r.stats), r.influence);
  };
  return d;
}());

}  // namespace

}  // namespace slfe
