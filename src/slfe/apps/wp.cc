#include "slfe/apps/wp.h"

#include <algorithm>
#include <limits>

#include "slfe/api/engine_adapters.h"
#include "slfe/core/rr_runners.h"
#include "slfe/gas/gas_apps.h"
#include "slfe/engine/atomic_ops.h"
#include "slfe/sim/cluster.h"

namespace slfe {

WpResult RunWp(const Graph& graph, const AppConfig& config) {
  constexpr float kInf = std::numeric_limits<float>::infinity();
  WpResult result;
  result.width.assign(graph.num_vertices(), 0.0f);
  result.width[config.root] = kInf;

  DistGraph dg = DistGraph::Build(graph, config.num_nodes);

  GuidanceAcquisition guidance =
      AcquireGuidance(graph, config, GuidanceRootPolicy::kSingleSource);
  RecordGuidance(guidance, &result.info);

  DistEngine<float> engine(dg, MakeEngineOptions(config, guidance));
  MinMaxRunner<float> runner(&engine);

  std::vector<float>& width = result.width;
  auto gather = [&width](float acc, VertexId src, Weight w) {
    float candidate = std::min(AtomicLoad(&width[src]), w);
    return candidate > acc ? candidate : acc;
  };
  auto apply = [&width](VertexId dst, float acc) {
    if (acc > width[dst]) {
      width[dst] = acc;
      return true;
    }
    return false;
  };
  auto scatter = [&width](VertexId src, VertexId dst, Weight w) {
    float candidate = std::min(AtomicLoad(&width[src]), w);
    return AtomicMax(&width[dst], candidate);
  };

  sim::Cluster cluster(config.num_nodes, config.threads_per_node);
  cluster.Run([&](sim::NodeContext& ctx) {
    auto run = runner.Run(ctx, {config.root}, 0.0f, gather, apply, scatter);
    if (ctx.rank == 0) {
      result.info.stats = run.stats;
      result.info.supersteps = run.supersteps;
      result.info.safety_sweep_updates = run.safety_sweep_updates;
    }
  });
  return result;
}

// Self-registration (see api/app_registry.h).
namespace {

api::AppOutcome WpOutcome(AppRunInfo info, const std::vector<float>& width) {
  api::AppOutcome out;
  out.info = info;
  out.values = api::ToValues(width);
  uint64_t reachable = 0;
  for (float w : width) {
    if (w > 0) ++reachable;
  }
  out.summary = reachable;
  out.summary_text = "reachable=" + std::to_string(reachable);
  return out;
}

api::AppRegistrar register_wp([] {
  api::AppDescriptor d;
  d.name = "wp";
  d.summary = "widest (maximum-bottleneck) paths from a root";
  d.root_policy = GuidanceRootPolicy::kSingleSource;
  d.needs_weights = true;
  d.single_source = true;
  d.runners[api::Engine::kDist] = [](const api::RunContext& ctx) {
    WpResult r = RunWp(ctx.graph, ctx.config);
    return WpOutcome(r.info, r.width);
  };
  d.runners[api::Engine::kGas] = [](const api::RunContext& ctx) {
    GuidanceAcquisition acq = AcquireGuidance(
        ctx.graph, ctx.config, GuidanceRootPolicy::kSingleSource);
    gas::GasOptions opt;
    opt.num_nodes = ctx.config.num_nodes;
    // Monotone max aggregation: "start late" reaches the exact baseline
    // fixpoint (see GasOptions::guidance).
    opt.guidance = acq.guidance;
    gas::GasWpResult r = gas::RunGasWp(ctx.graph, ctx.config.root, opt);
    api::AppOutcome out = WpOutcome(api::FromGasStats(r.stats), r.width);
    RecordGuidance(acq, &out.info);
    return out;
  };
  return d;
}());

}  // namespace

}  // namespace slfe
