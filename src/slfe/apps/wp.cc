#include "slfe/apps/wp.h"

#include <algorithm>
#include <limits>

#include "slfe/core/rr_runners.h"
#include "slfe/engine/atomic_ops.h"
#include "slfe/sim/cluster.h"

namespace slfe {

WpResult RunWp(const Graph& graph, const AppConfig& config) {
  constexpr float kInf = std::numeric_limits<float>::infinity();
  WpResult result;
  result.width.assign(graph.num_vertices(), 0.0f);
  result.width[config.root] = kInf;

  DistGraph dg = DistGraph::Build(graph, config.num_nodes);

  GuidanceAcquisition guidance =
      AcquireGuidance(graph, config, GuidanceRootPolicy::kSingleSource);
  RecordGuidance(guidance, &result.info);

  DistEngine<float> engine(dg, MakeEngineOptions(config, guidance));
  MinMaxRunner<float> runner(&engine);

  std::vector<float>& width = result.width;
  auto gather = [&width](float acc, VertexId src, Weight w) {
    float candidate = std::min(AtomicLoad(&width[src]), w);
    return candidate > acc ? candidate : acc;
  };
  auto apply = [&width](VertexId dst, float acc) {
    if (acc > width[dst]) {
      width[dst] = acc;
      return true;
    }
    return false;
  };
  auto scatter = [&width](VertexId src, VertexId dst, Weight w) {
    float candidate = std::min(AtomicLoad(&width[src]), w);
    return AtomicMax(&width[dst], candidate);
  };

  sim::Cluster cluster(config.num_nodes, config.threads_per_node);
  cluster.Run([&](sim::NodeContext& ctx) {
    auto run = runner.Run(ctx, {config.root}, 0.0f, gather, apply, scatter);
    if (ctx.rank == 0) {
      result.info.stats = run.stats;
      result.info.supersteps = run.supersteps;
      result.info.safety_sweep_updates = run.safety_sweep_updates;
    }
  });
  return result;
}

}  // namespace slfe
