#ifndef SLFE_APPS_PR_H_
#define SLFE_APPS_PR_H_

#include <vector>

#include "slfe/apps/app_common.h"
#include "slfe/graph/graph.h"

namespace slfe {

/// PageRank with damping 0.85 (paper Algorithm 5). ranks[v] is the damped
/// rank after the run; sums of contributions propagate along in-edges each
/// iteration. An arithmetic-aggregation app: always pull mode; with RR the
/// "finish early" multi-Ruler freezes early-converged vertices.
struct PrResult {
  std::vector<float> ranks;
  AppRunInfo info;
};

PrResult RunPr(const Graph& graph, const AppConfig& config);

}  // namespace slfe

#endif  // SLFE_APPS_PR_H_
