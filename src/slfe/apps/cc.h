#ifndef SLFE_APPS_CC_H_
#define SLFE_APPS_CC_H_

#include <vector>

#include "slfe/apps/app_common.h"
#include "slfe/graph/graph.h"

namespace slfe {

/// Connected Components via minimum-label propagation. labels[v] is the
/// smallest vertex id in v's (weakly) connected component. The input graph
/// must be symmetric (EdgeList::Symmetrize before building) for the labels
/// to mean weak connectivity.
struct CcResult {
  std::vector<uint32_t> labels;
  AppRunInfo info;
};

/// Runs CC. With RR enabled, guidance is generated from the graph's local
/// label minima (SelectLocalMinimaRoots) and the "start late" schedule
/// skips a vertex until its last propagation level.
CcResult RunCc(const Graph& graph, const AppConfig& config);

}  // namespace slfe

#endif  // SLFE_APPS_CC_H_
