#include "slfe/api/app_registry.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <utility>

namespace slfe::api {

namespace {

constexpr Engine kAllEngines[] = {Engine::kDist, Engine::kShm, Engine::kGas,
                                  Engine::kOoc};

const char* RootPolicyName(GuidanceRootPolicy policy) {
  switch (policy) {
    case GuidanceRootPolicy::kSingleSource:
      return "single-source";
    case GuidanceRootPolicy::kSourceVertices:
      return "source-vertices";
    case GuidanceRootPolicy::kLocalMinima:
      return "local-minima";
  }
  return "?";
}

}  // namespace

const char* EngineName(Engine engine) {
  switch (engine) {
    case Engine::kDist:
      return "dist";
    case Engine::kShm:
      return "shm";
    case Engine::kGas:
      return "gas";
    case Engine::kOoc:
      return "ooc";
  }
  return "?";
}

Result<Engine> ParseEngine(const std::string& name) {
  for (Engine engine : kAllEngines) {
    if (name == EngineName(engine)) return engine;
  }
  std::string message = "unknown engine: ";
  message += name;
  message += " (one of: ";
  message += AllEngineNames();
  message += ")";
  return Status::InvalidArgument(std::move(message));
}

std::string AllEngineNames() {
  std::string out;
  for (Engine engine : kAllEngines) {
    if (!out.empty()) out += '|';
    out += EngineName(engine);
  }
  return out;
}

std::string RunContext::OocDir() const {
  // Per-run-unique: concurrent jobs on one graph must not share shard
  // files mid-build.
  static std::atomic<uint64_t> counter{0};
  return scratch_dir + "/ooc_" + std::to_string(graph.fingerprint()) + "_" +
         std::to_string(counter.fetch_add(1));
}

std::vector<Engine> AppDescriptor::engines() const {
  std::vector<Engine> out;
  for (Engine engine : kAllEngines) {
    if (Supports(engine)) out.push_back(engine);
  }
  return out;
}

std::string AppDescriptor::EngineList() const {
  std::string out;
  for (Engine engine : engines()) {
    if (!out.empty()) out += ',';
    out += EngineName(engine);
  }
  return out;
}

AppRegistry& AppRegistry::Global() {
  static AppRegistry* instance = new AppRegistry;
  return *instance;
}

Status AppRegistry::Register(AppDescriptor descriptor) {
  if (descriptor.name.empty()) {
    return Status::InvalidArgument("app descriptor has no name");
  }
  if (descriptor.runners.empty()) {
    return Status::InvalidArgument("app " + descriptor.name +
                                   " declares no engine runners");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = apps_.emplace(descriptor.name, std::move(descriptor));
  if (!inserted) {
    return Status::FailedPrecondition("app already registered: " + it->first);
  }
  return Status::OK();
}

const AppDescriptor* AppRegistry::Find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = apps_.find(name);
  return it == apps_.end() ? nullptr : &it->second;
}

std::vector<const AppDescriptor*> AppRegistry::Apps() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const AppDescriptor*> out;
  out.reserve(apps_.size());
  for (const auto& [name, descriptor] : apps_) out.push_back(&descriptor);
  return out;  // std::map iteration order = sorted by name
}

std::vector<std::string> AppRegistry::AppNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(apps_.size());
  for (const auto& [name, descriptor] : apps_) out.push_back(name);
  return out;
}

std::string AppRegistry::UsageList() const {
  std::string out;
  for (const std::string& name : AppNames()) {
    if (!out.empty()) out += '|';
    out += name;
  }
  return out;
}

std::string AppRegistry::ListApps() const {
  std::ostringstream out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-10s %-18s %-16s %-18s %s\n", "app",
                "engines", "guidance", "needs", "description");
  out << line;
  for (const AppDescriptor* app : Apps()) {
    std::string needs;
    auto add_need = [&needs](const char* need) {
      if (!needs.empty()) needs += ',';
      needs.append(need);
    };
    if (app->needs_symmetric) add_need("symmetric");
    if (app->needs_weights) add_need("weights");
    if (app->single_source) add_need("root");
    std::snprintf(line, sizeof(line), "%-10s %-18s %-16s %-18s %s\n",
                  app->name.c_str(), app->EngineList().c_str(),
                  RootPolicyName(app->root_policy),
                  needs.empty() ? "-" : needs.c_str(),
                  app->summary.c_str());
    out << line;
  }
  return out.str();
}

AppRegistrar::AppRegistrar(AppDescriptor descriptor) {
  std::string name = descriptor.name;
  Status status = AppRegistry::Global().Register(std::move(descriptor));
  if (!status.ok()) {
    std::fprintf(stderr, "fatal: app registration failed for '%s': %s\n",
                 name.c_str(), status.ToString().c_str());
    std::abort();
  }
}

}  // namespace slfe::api
