#ifndef SLFE_API_APP_REGISTRY_H_
#define SLFE_API_APP_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "slfe/apps/app_common.h"
#include "slfe/common/status.h"
#include "slfe/graph/graph.h"
#include "slfe/graph/types.h"

namespace slfe::api {

/// The execution back ends an application can declare support for. The
/// registry is the ONE place that maps engine names to engines; every
/// surface (CLI, daemon, line protocol, benches) parses through here.
enum class Engine {
  kDist,  ///< the simulated-cluster SLFE/Gemini engine (apps/ + engine/)
  kShm,   ///< the Ligra-style single-node shared-memory engine (shm/)
  kGas,   ///< the PowerGraph-style GAS comparator (gas/)
  kOoc,   ///< the GraphChi-style out-of-core engine (ooc/)
};

const char* EngineName(Engine engine);
Result<Engine> ParseEngine(const std::string& name);
/// "dist|shm|gas|ooc" — for usage strings.
std::string AllEngineNames();

/// One uniform execution request, the only argument shape any surface
/// needs: which app on which engine over which Session graph, plus the
/// cross-app knobs. App-specific extras (probe counts, damping, ...) have
/// canonical defaults so every declared (app, engine) pair is runnable
/// from every surface with nothing but a name.
struct AppRequest {
  std::string app = "sssp";
  std::string engine = "dist";
  /// Name previously passed to Session::AddGraph.
  std::string graph;
  /// Query root for single-source apps; seed vertex for the synthesized
  /// inputs of heat/bp.
  VertexId root = 0;
  /// Iteration cap for the arithmetic apps.
  uint32_t max_iters = 50;
  /// false = baseline run (no guidance acquisition, no RR).
  bool enable_rr = true;
  bool enable_stealing = true;
  /// Arithmetic convergence threshold (dist engine).
  double epsilon = 1e-9;
  /// App-specific extras (defaults match the app entry points).
  float retweet_probability = 0.5f;  ///< tr
  uint32_t num_probes = 4;           ///< diameter
  float alpha = 0.5f;                ///< heat
  float coupling = 0.2f;             ///< bp
  float damping = 0.5f;              ///< bp
};

/// One uniform execution result: per-vertex values (empty for the
/// scalar-only apps), an app-specific summary scalar with a printable
/// rendering, and the full run accounting.
struct AppOutcome {
  Status status;
  AppRunInfo info;
  /// Per-vertex result values (dist/labels/ranks/... widened to double);
  /// empty for apps whose result is a scalar (tc, mst, diameter).
  std::vector<double> values;
  /// App-specific scalar: reached vertices (sssp/wp), max level (bfs),
  /// distinct components (cc), EC vertices (pr/tr), triangles (tc),
  /// forest edges (mst), diameter bound, finite-value count otherwise.
  uint64_t summary = 0;
  /// Human-readable one-line summary ("reached=184 of 200").
  std::string summary_text;
};

/// Everything a runner needs: the resolved graph (already symmetrized if
/// the descriptor requires it), the request, and an AppConfig prefilled
/// with the session's cluster shape, the request knobs, and the session's
/// guidance provider.
struct RunContext {
  const Graph& graph;
  const AppRequest& request;
  AppConfig config;
  /// Scratch directory for engines with on-disk state (ooc shards). The
  /// session guarantees a usable, per-run-unique subpath via OocDir().
  std::string scratch_dir;
  uint32_t ooc_shards = 4;

  /// A collision-free shard directory for one ooc run.
  std::string OocDir() const;
};

/// Type-erased execution of one (app, engine) pair.
using AppRunner = std::function<AppOutcome(const RunContext&)>;

/// Everything the system knows about one application, declared by the
/// app's own translation unit (self-registration): capability knowledge
/// that used to live in per-surface string switches.
struct AppDescriptor {
  std::string name;
  /// One-line description for --list-apps / help text.
  std::string summary;
  /// Root-set policy its guidance sweeps use.
  GuidanceRootPolicy root_policy = GuidanceRootPolicy::kSourceVertices;
  /// Requires the undirected closure (cc/mst); the Session auto-derives a
  /// symmetrized variant or rejects, per its options.
  bool needs_symmetric = false;
  /// Result is only meaningful with real edge weights (sssp/wp/mst).
  /// Strict sessions (the JobService) reject unit-weight graphs up front.
  bool needs_weights = false;
  /// Takes a query root that must be a valid vertex id.
  bool single_source = false;
  std::map<Engine, AppRunner> runners;

  std::vector<Engine> engines() const;
  bool Supports(Engine engine) const { return runners.count(engine) > 0; }
  /// "dist,gas,shm" — declared engines, registry order.
  std::string EngineList() const;
};

/// The process-wide application catalog. Apps self-register from static
/// initializers in their own .cc files (AppRegistrar below); every surface
/// derives its app/engine validation, dispatch, listing, and help text
/// from this one table, so a new app is submittable from the CLI, the
/// daemon, the line protocol, and the benches the moment its descriptor
/// exists — no per-surface wiring.
class AppRegistry {
 public:
  static AppRegistry& Global();

  /// Rejects duplicate names and descriptors with no runners.
  Status Register(AppDescriptor descriptor);

  /// nullptr when unknown. Pointers are stable for the process lifetime.
  const AppDescriptor* Find(const std::string& name) const;

  /// All descriptors, sorted by name.
  std::vector<const AppDescriptor*> Apps() const;
  std::vector<std::string> AppNames() const;

  /// "bfs|bp|cc|..." — for usage strings.
  std::string UsageList() const;

  /// The canonical --list-apps rendering (one line per app: name,
  /// engines, guidance policy, graph needs, description). Both CLIs print
  /// exactly this, and CI diffs it against docs/APPS.txt, so a
  /// registered-but-unlisted app (or a stale listing) fails the build.
  std::string ListApps() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, AppDescriptor> apps_;
};

/// Static-initializer helper: `AppRegistrar reg(MakeDescriptor());` at the
/// bottom of an app's .cc registers it into AppRegistry::Global(). A bad
/// descriptor (duplicate name, no runners) aborts at startup — a
/// registration bug should never survive to serving traffic.
struct AppRegistrar {
  explicit AppRegistrar(AppDescriptor descriptor);
};

}  // namespace slfe::api

#endif  // SLFE_API_APP_REGISTRY_H_
