#ifndef SLFE_API_SESSION_H_
#define SLFE_API_SESSION_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "slfe/api/app_registry.h"
#include "slfe/common/status.h"
#include "slfe/core/guidance_provider.h"
#include "slfe/graph/arena.h"
#include "slfe/graph/delta.h"
#include "slfe/graph/graph.h"
#include "slfe/obs/trace.h"

namespace slfe::api {

/// What the session knows about a registered graph beyond its topology —
/// the inputs to the registry's graph-requirement checks.
struct GraphTraits {
  /// Already holds the undirected closure (both directions of every
  /// edge). Declared by the caller; when false, needs_symmetric apps get
  /// the session's lazily built symmetrized variant (or a rejection, per
  /// SessionOptions::auto_symmetrize).
  bool symmetric = false;
  /// Carries at least one non-unit edge weight. Detected automatically by
  /// AddGraph unless declared.
  bool weighted = false;
};

/// What one MutateGraph call did. Versions are per-name and monotonically
/// increasing, starting at 1 for the graph as registered; a no-op delta
/// (every insert was a duplicate, every delete was already absent) leaves
/// the version — and the served Graph object — untouched.
struct GraphMutationResult {
  uint64_t version = 0;  ///< version now being served under the name
  uint64_t old_fingerprint = 0;
  uint64_t new_fingerprint = 0;  ///< == old_fingerprint on a no-op
  bool changed = false;
  GraphDeltaStats delta_stats;
  VertexId num_vertices = 0;  ///< of the served version
  EdgeId num_edges = 0;
};

/// One row of a graph's version history (GraphVersions).
struct GraphVersionInfo {
  uint64_t version = 0;
  uint64_t fingerprint = 0;
  /// Some reference (the session itself, an in-flight job, the provider's
  /// repair lineage) still holds this version's Graph alive.
  bool alive = false;
  /// This is the version new requests resolve to.
  bool current = false;
};

struct SessionOptions {
  /// Simulated cluster shape for dist-engine runs (and the gas node
  /// count); shm uses num_nodes * threads_per_node worker threads.
  int num_nodes = 1;
  int threads_per_node = 1;
  /// When a needs_symmetric app runs on a graph not registered as
  /// symmetric: true = lazily build (and cache) the undirected closure;
  /// false = reject the request up front.
  bool auto_symmetrize = true;
  /// Reject needs_weights apps on unit-weight graphs. The multi-tenant
  /// JobService runs strict (a meaningless job should bounce at submit,
  /// not burn a worker); the interactive CLI stays permissive (sssp on an
  /// unweighted graph is hop counts — odd, but the user asked).
  bool strict_weights = false;
  /// Configuration for the session-owned guidance provider (ignored when
  /// external_provider is set).
  GuidanceProviderOptions provider;
  /// Borrow an existing provider instead of owning one (embedding into a
  /// larger system that already shares a provider). Not owned; must
  /// outlive the session.
  GuidanceProvider* external_provider = nullptr;
  /// Scratch directory for engines with on-disk state (ooc shards).
  /// Empty = /tmp/slfe_session.<pid>.
  std::string scratch_dir;
  uint32_t ooc_shards = 4;
  /// Directory of `*.sga` graph arenas for warm restarts. Empty =
  /// disabled. When set, the directory is created on construction and
  /// ArenaPath names where a graph's arena lives; callers decide when to
  /// map (AddGraphFromArena) and when to write back (SaveGraphArena).
  std::string arena_dir;
};

/// The one front door to running applications: a Session owns graph
/// handles (plus their requirement traits and derived symmetrized
/// variants), a GuidanceProvider (so every run amortizes guidance with
/// every other run in the session — the paper's §4.4 economics), and the
/// execution configuration. Session::Run(AppRequest) is the single
/// execution path every surface uses — the CLI, the JobService workers,
/// the benches, and the examples all converge here, so an (app, engine)
/// pair declared in the registry is reachable from all of them.
///
/// Thread-safe: concurrent Run calls are the JobService worker-pool case.
class Session {
 public:
  explicit Session(SessionOptions options = {});

  /// Makes `graph` runnable under `name`. Graphs are immutable and shared
  /// by reference across runs; duplicate names are rejected (replacing
  /// would swap data under concurrent runs). The overload without traits
  /// detects weights (O(|E|) scan) and assumes not-symmetric.
  Status AddGraph(const std::string& name, Graph graph);
  Status AddGraph(const std::string& name, Graph graph, GraphTraits traits);

  /// Warm-restart registration: maps the arena at `path` (read-only mmap,
  /// no parse, no re-partition) and registers its graph under `name` with
  /// the traits recorded in the arena header. The mapping is co-owned by
  /// the served Graph, so the arena file's pages stay valid for as long
  /// as any run references the graph. Counted in graphs_mapped().
  Status AddGraphFromArena(const std::string& name, const std::string& path);

  /// Serializes the registered graph `name` (topology + weights +
  /// fingerprint + this session's num_nodes partition) into an arena file
  /// at `path`, atomically. The codec trades adjacency bytes for decode
  /// work on the next Open (kRaw maps in place; kDeltaVarint decodes into
  /// heap vectors).
  Status SaveGraphArena(const std::string& name, const std::string& path,
                        ArenaCodec codec = ArenaCodec::kRaw);

  /// Where graph `stem` lives under options().arena_dir
  /// (`<arena_dir>/<stem>.sga`), or "" when no arena_dir is configured.
  std::string ArenaPath(const std::string& stem) const;

  /// Restart observability: how many graphs entered this session via the
  /// text/binary parse path vs. the arena mmap path. The service-smoke CI
  /// job asserts a second server start over a populated arena_dir shows
  /// mapped > 0, parsed == 0.
  uint64_t graphs_parsed() const { return graphs_parsed_.load(); }
  uint64_t graphs_mapped() const { return graphs_mapped_.load(); }

  bool HasGraph(const std::string& name) const;
  /// nullptr when unknown.
  std::shared_ptr<const Graph> GetGraph(const std::string& name) const;

  /// Applies `delta` to the graph registered under `name`, atomically
  /// publishing the result as the next version served under that name.
  /// Graphs stay immutable: the old version's Graph object is untouched,
  /// so views held by in-flight jobs (JobService pins the resolved graph
  /// at submit time) keep executing on the version they were submitted
  /// against until they drain. The mutation is recorded with the guidance
  /// provider, so the next guidance miss on the new version can repair
  /// the old version's guidance instead of re-sweeping. Weight traits are
  /// re-detected; a symmetrized variant is dropped (rebuilt lazily);
  /// symmetric reverts to false — a delta on a symmetric graph is only
  /// symmetric if the caller mirrors every edge, which the session cannot
  /// assume. Concurrent mutations of one name serialize (optimistic
  /// retry: a lost race reapplies the delta on the winner's version).
  /// kNotFound for an unknown name; kInvalidArgument from ApplyDelta.
  Result<GraphMutationResult> MutateGraph(const std::string& name,
                                          const GraphDelta& delta);

  /// The version history of `name`, oldest first (always ends with the
  /// current version). Unknown name returns an empty vector.
  std::vector<GraphVersionInfo> GraphVersions(const std::string& name) const;

  /// Total successful non-no-op MutateGraph calls on this session.
  uint64_t graphs_mutated() const { return graphs_mutated_.load(); }

  /// Full up-front validation with registry-derived messages: unknown
  /// app/engine, an (app, engine) pair the descriptor does not declare,
  /// an unregistered graph, requirement violations (symmetric/weighted),
  /// and an out-of-range root for single-source apps. kInvalidArgument
  /// for all of those except the unregistered graph (kNotFound).
  Status Validate(const AppRequest& request) const;

  /// The exact graph Run(request) will execute on: the registered graph,
  /// or its (lazily built, cached) symmetrized variant when the app needs
  /// the undirected closure. Callers that meter or pin per-graph state
  /// (the JobService) must use this, not GetGraph.
  Result<std::shared_ptr<const Graph>> ResolveGraph(const AppRequest& request);

  /// THE execution path: validate, resolve the graph, dispatch to the
  /// registry's runner for (request.app, request.engine). Failures are
  /// reported in AppOutcome::status, never thrown.
  AppOutcome Run(const AppRequest& request);

  /// Run on an explicit, already-resolved graph instead of re-resolving
  /// request.graph by name. This is the version-pinned path: the
  /// JobService resolves at submit time and executes here, so a job
  /// submitted against version N runs on version N even if the name now
  /// serves N+1. Validates app/engine/root against `graph`; the caller
  /// vouches for graph-requirement traits (it validated at resolve time).
  /// A non-null `trace` collects guidance_acquire/engine_execute spans for
  /// this run (near-zero cost when null) and must outlive the call.
  AppOutcome RunOn(const AppRequest& request,
                   std::shared_ptr<const Graph> graph,
                   obs::JobTrace* trace = nullptr);

  GuidanceProvider& provider() { return *provider_; }
  const SessionOptions& options() const { return options_; }

 private:
  /// One superseded-or-current version in a GraphEntry's history. The
  /// graph is held weakly: aliveness tracks whoever still pins it (the
  /// entry itself for the current version, in-flight jobs or the repair
  /// lineage for old ones) without the history extending any lifetime.
  struct VersionRecord {
    uint64_t version = 0;
    uint64_t fingerprint = 0;
    std::weak_ptr<const Graph> graph;
  };

  struct GraphEntry {
    std::shared_ptr<const Graph> graph;
    GraphTraits traits;
    /// Lazily built undirected closure for needs_symmetric apps.
    std::shared_ptr<const Graph> symmetrized;
    /// Serving version, starting at 1; bumped by every effective mutation.
    uint64_t version = 1;
    /// All versions ever served under this name (filled from the first
    /// mutation on; a never-mutated graph has an empty history).
    std::vector<VersionRecord> history;
  };

  /// Internal: descriptor lookup + requirement checks shared by
  /// Validate/Run (returns the descriptor and parsed engine on success).
  Status Check(const AppRequest& request, const AppDescriptor** descriptor,
               Engine* engine) const;

  /// Internal registration shared by the parse and arena paths (so each
  /// public entry point bumps exactly one provenance counter).
  Status AddGraphEntry(const std::string& name,
                       std::shared_ptr<const Graph> graph, GraphTraits traits);

  /// Internal resolution after a successful Check: the registered graph,
  /// or its symmetrized variant (built outside graphs_mu_ so a large
  /// closure rebuild cannot stall concurrent Validate/Run calls).
  std::shared_ptr<const Graph> ResolveChecked(const std::string& name,
                                              const AppDescriptor& app);

  /// Shared execution tail of Run/RunOn: scratch-dir setup for on-disk
  /// engines, AppConfig assembly, dispatch to the registry runner.
  AppOutcome RunWith(const AppRequest& request, const AppDescriptor& app,
                     Engine engine, std::shared_ptr<const Graph> graph,
                     obs::JobTrace* trace = nullptr);

  SessionOptions options_;
  std::unique_ptr<GuidanceProvider> owned_provider_;
  GuidanceProvider* provider_;  // owned_provider_ or the external one

  mutable std::mutex graphs_mu_;
  std::map<std::string, GraphEntry> graphs_;

  std::atomic<uint64_t> graphs_parsed_{0};
  std::atomic<uint64_t> graphs_mapped_{0};
  std::atomic<uint64_t> graphs_mutated_{0};
};

}  // namespace slfe::api

#endif  // SLFE_API_SESSION_H_
