#ifndef SLFE_API_ENGINE_ADAPTERS_H_
#define SLFE_API_ENGINE_ADAPTERS_H_

#include <cstdint>
#include <vector>

#include "slfe/api/app_registry.h"
#include "slfe/gas/gas_engine.h"
#include "slfe/ooc/ooc_engine.h"
#include "slfe/shm/shm_engine.h"

namespace slfe::api {

/// Helpers for the non-dist runners an app registers: fold each engine's
/// native stats into the uniform AppRunInfo (so AppOutcome accounting —
/// runtime, computations, skipped — means the same thing on every
/// engine), and widen native value vectors into AppOutcome::values.

inline AppRunInfo FromGasStats(const gas::GasStats& stats) {
  AppRunInfo info;
  info.supersteps = stats.supersteps;
  info.stats.iterations = stats.supersteps;
  info.stats.computations = stats.computations;
  info.stats.updates = stats.updates;
  info.stats.skipped = stats.skipped;
  info.stats.messages = stats.messages;
  info.stats.bytes = stats.bytes;
  info.stats.push_seconds = stats.compute_seconds;
  info.stats.comm_seconds = stats.comm_seconds;
  return info;
}

inline AppRunInfo FromOocStats(const ooc::OocStats& stats) {
  AppRunInfo info;
  info.supersteps = stats.iterations;
  info.stats.iterations = stats.iterations;
  info.stats.computations = stats.computations;
  info.stats.skipped = stats.skipped;
  info.stats.bytes = stats.bytes_read;
  info.stats.pull_seconds = stats.io_seconds;
  info.stats.push_seconds = stats.compute_seconds;
  return info;
}

inline AppRunInfo FromShmStats(const shm::ShmStats& stats) {
  AppRunInfo info;
  info.supersteps = stats.supersteps;
  info.stats.iterations = stats.supersteps;
  info.stats.computations = stats.computations;
  info.stats.updates = stats.updates;
  info.stats.push_seconds = stats.seconds;
  return info;
}

template <typename T>
std::vector<double> ToValues(const std::vector<T>& values) {
  return std::vector<double>(values.begin(), values.end());
}

/// The shm engine is single-node: it gets the session's total parallelism
/// (nodes x threads) as its worker-thread count.
inline size_t ShmThreads(const AppConfig& config) {
  return static_cast<size_t>(config.num_nodes) *
         static_cast<size_t>(config.threads_per_node);
}

}  // namespace slfe::api

#endif  // SLFE_API_ENGINE_ADAPTERS_H_
