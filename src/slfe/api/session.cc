#include "slfe/api/session.h"

#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "slfe/graph/edge_list.h"

namespace slfe::api {

namespace {

/// Unit weights carry no path-cost information; one non-unit weight makes
/// the graph "weighted" for the requirement checks.
bool HasNonUnitWeights(const Graph& graph) {
  for (Weight w : graph.out().weights()) {
    if (w != 1.0f) return true;
  }
  return false;
}

/// Rebuilds the undirected closure from the out-adjacency. Matches the
/// EdgeList::Symmetrize + Deduplicate preparation the CLI used to do by
/// hand: both directions of every edge, first-seen weight per (src, dst).
Graph Symmetrized(const Graph& graph) {
  EdgeList edges(graph.num_vertices());
  edges.Reserve(graph.num_edges());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    graph.out().ForEachNeighbor(
        v, [&](VertexId dst, Weight w) { edges.Add(v, dst, w); });
  }
  edges.Symmetrize();
  edges.Deduplicate();
  return Graph::FromEdges(edges);
}

}  // namespace

Session::Session(SessionOptions options) : options_(std::move(options)) {
  if (options_.num_nodes < 1) options_.num_nodes = 1;
  if (options_.threads_per_node < 1) options_.threads_per_node = 1;
  if (options_.ooc_shards < 1) options_.ooc_shards = 1;
  if (options_.scratch_dir.empty()) {
    options_.scratch_dir =
        "/tmp/slfe_session." + std::to_string(::getpid());
  }
  if (options_.external_provider != nullptr) {
    provider_ = options_.external_provider;
  } else {
    owned_provider_ = std::make_unique<GuidanceProvider>(options_.provider);
    provider_ = owned_provider_.get();
  }
  if (!options_.arena_dir.empty()) {
    ::mkdir(options_.arena_dir.c_str(), 0755);  // EEXIST is the happy path
  }
}

Status Session::AddGraph(const std::string& name, Graph graph) {
  GraphTraits traits;
  traits.weighted = HasNonUnitWeights(graph);
  return AddGraph(name, std::move(graph), traits);
}

Status Session::AddGraph(const std::string& name, Graph graph,
                         GraphTraits traits) {
  SLFE_RETURN_IF_ERROR(AddGraphEntry(
      name, std::make_shared<const Graph>(std::move(graph)), traits));
  ++graphs_parsed_;
  return Status::OK();
}

Status Session::AddGraphFromArena(const std::string& name,
                                  const std::string& path) {
  Result<std::shared_ptr<GraphArena>> arena = GraphArena::Open(path);
  if (!arena.ok()) return arena.status();
  GraphTraits traits;
  traits.symmetric = arena.value()->symmetric();
  traits.weighted = arena.value()->weighted();
  // graph() co-owns the arena, so the shared_ptr<GraphArena> going out of
  // scope here does not unmap anything while the entry lives.
  SLFE_RETURN_IF_ERROR(AddGraphEntry(
      name, std::make_shared<const Graph>(arena.value()->graph()), traits));
  ++graphs_mapped_;
  return Status::OK();
}

Status Session::SaveGraphArena(const std::string& name,
                               const std::string& path, ArenaCodec codec) {
  std::shared_ptr<const Graph> graph;
  GraphTraits traits;
  {
    std::lock_guard<std::mutex> lock(graphs_mu_);
    auto it = graphs_.find(name);
    if (it == graphs_.end()) {
      return Status::NotFound("graph not registered: " + name);
    }
    graph = it->second.graph;
    traits = it->second.traits;
  }
  ArenaBuildOptions build;
  build.num_nodes = options_.num_nodes;
  build.codec = codec;
  build.symmetric = traits.symmetric;
  build.weighted = traits.weighted;
  return GraphArena::Build(*graph, path, build);
}

std::string Session::ArenaPath(const std::string& stem) const {
  if (options_.arena_dir.empty()) return std::string();
  return options_.arena_dir + "/" + stem + ".sga";
}

Status Session::AddGraphEntry(const std::string& name,
                              std::shared_ptr<const Graph> graph,
                              GraphTraits traits) {
  if (name.empty()) return Status::InvalidArgument("graph name is empty");
  std::lock_guard<std::mutex> lock(graphs_mu_);
  if (graphs_.find(name) != graphs_.end()) {
    return Status::FailedPrecondition("graph already registered: " + name);
  }
  graphs_.emplace(name, GraphEntry{std::move(graph), traits, nullptr, 1, {}});
  return Status::OK();
}

bool Session::HasGraph(const std::string& name) const {
  std::lock_guard<std::mutex> lock(graphs_mu_);
  return graphs_.find(name) != graphs_.end();
}

std::shared_ptr<const Graph> Session::GetGraph(const std::string& name) const {
  std::lock_guard<std::mutex> lock(graphs_mu_);
  auto it = graphs_.find(name);
  return it == graphs_.end() ? nullptr : it->second.graph;
}

Result<GraphMutationResult> Session::MutateGraph(const std::string& name,
                                                 const GraphDelta& delta) {
  // The delta outlives this call inside the provider's repair lineage.
  auto delta_ptr = std::make_shared<const GraphDelta>(delta);
  for (;;) {
    std::shared_ptr<const Graph> base;
    uint64_t base_version = 0;
    {
      std::lock_guard<std::mutex> lock(graphs_mu_);
      auto it = graphs_.find(name);
      if (it == graphs_.end()) {
        return Status::NotFound("graph not registered: " + name);
      }
      base = it->second.graph;
      base_version = it->second.version;
    }

    GraphMutationResult result;
    result.old_fingerprint = base->fingerprint();
    Result<Graph> next = ApplyDelta(*base, *delta_ptr, &result.delta_stats);
    if (!next.ok()) return next.status();

    if (result.delta_stats.edges_inserted == 0 &&
        result.delta_stats.edges_deleted == 0) {
      // Every insert was a duplicate and every delete was absent: the
      // topology is unchanged, so keep serving the SAME Graph object
      // (same fingerprint, same cached guidance) under the same version.
      result.version = base_version;
      result.new_fingerprint = result.old_fingerprint;
      result.changed = false;
      result.num_vertices = base->num_vertices();
      result.num_edges = base->num_edges();
      return result;
    }

    auto fresh = std::make_shared<const Graph>(std::move(next).value());
    GraphTraits traits;
    traits.weighted = HasNonUnitWeights(*fresh);
    // A delta on a symmetric graph only preserves symmetry if the caller
    // mirrored every edge; the session cannot assume that.
    traits.symmetric = false;
    // Force both fingerprints outside graphs_mu_ (lazy O(V+E) memo).
    result.new_fingerprint = fresh->fingerprint();

    {
      std::lock_guard<std::mutex> lock(graphs_mu_);
      auto it = graphs_.find(name);
      if (it == graphs_.end()) {
        return Status::NotFound("graph not registered: " + name);
      }
      GraphEntry& entry = it->second;
      if (entry.graph != base) continue;  // lost the race: reapply on winner
      if (entry.history.empty()) {
        entry.history.push_back(
            {entry.version, result.old_fingerprint, entry.graph});
      }
      entry.graph = fresh;
      entry.traits = traits;
      entry.symmetrized.reset();
      ++entry.version;
      entry.history.push_back({entry.version, result.new_fingerprint, fresh});
      result.version = entry.version;
    }
    provider_->RecordMutation(std::move(base), *fresh, std::move(delta_ptr));
    ++graphs_mutated_;
    result.changed = true;
    result.num_vertices = fresh->num_vertices();
    result.num_edges = fresh->num_edges();
    return result;
  }
}

std::vector<GraphVersionInfo> Session::GraphVersions(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(graphs_mu_);
  auto it = graphs_.find(name);
  if (it == graphs_.end()) return {};
  const GraphEntry& entry = it->second;
  std::vector<GraphVersionInfo> out;
  if (entry.history.empty()) {
    // Never mutated: one synthetic row for the graph as registered.
    out.push_back({entry.version, entry.graph->fingerprint(), true, true});
    return out;
  }
  for (const VersionRecord& record : entry.history) {
    out.push_back({record.version, record.fingerprint,
                   !record.graph.expired(), record.version == entry.version});
  }
  return out;
}

Status Session::Check(const AppRequest& request,
                      const AppDescriptor** descriptor, Engine* engine) const {
  const AppRegistry& registry = AppRegistry::Global();
  const AppDescriptor* app = registry.Find(request.app);
  if (app == nullptr) {
    return Status::InvalidArgument("unknown app: " + request.app +
                                   " (one of: " + registry.UsageList() + ")");
  }
  Result<Engine> parsed = ParseEngine(request.engine);
  if (!parsed.ok()) return parsed.status();
  if (!app->Supports(parsed.value())) {
    return Status::InvalidArgument(
        "app " + app->name + " not available on engine " + request.engine +
        " (declared: " + app->EngineList() + ")");
  }

  GraphTraits traits;
  VertexId num_vertices = 0;
  {
    std::lock_guard<std::mutex> lock(graphs_mu_);
    auto it = graphs_.find(request.graph);
    if (it == graphs_.end()) {
      return Status::NotFound("graph not registered: " + request.graph);
    }
    traits = it->second.traits;
    num_vertices = it->second.graph->num_vertices();
  }
  if (app->needs_symmetric && !traits.symmetric && !options_.auto_symmetrize) {
    return Status::InvalidArgument(
        "app " + app->name + " requires a symmetric graph; '" +
        request.graph +
        "' is not registered as symmetric (and auto-symmetrize is off)");
  }
  if (app->needs_weights && !traits.weighted && options_.strict_weights) {
    return Status::InvalidArgument(
        "app " + app->name + " requires weighted edges; graph '" +
        request.graph + "' has unit weights only");
  }
  if (app->single_source && request.root >= num_vertices) {
    return Status::InvalidArgument(
        "root " + std::to_string(request.root) + " out of range for graph " +
        request.graph + " (|V|=" + std::to_string(num_vertices) + ")");
  }
  if (descriptor != nullptr) *descriptor = app;
  if (engine != nullptr) *engine = parsed.value();
  return Status::OK();
}

Status Session::Validate(const AppRequest& request) const {
  return Check(request, nullptr, nullptr);
}

std::shared_ptr<const Graph> Session::ResolveChecked(
    const std::string& name, const AppDescriptor& app) {
  std::shared_ptr<const Graph> base;
  {
    std::lock_guard<std::mutex> lock(graphs_mu_);
    GraphEntry& entry = graphs_.at(name);
    if (!app.needs_symmetric || entry.traits.symmetric) return entry.graph;
    if (entry.symmetrized != nullptr) return entry.symmetrized;
    base = entry.graph;
  }
  // Build the O(V+E) closure OUTSIDE graphs_mu_: a multi-tenant service
  // validates submissions under that mutex, and a seconds-long rebuild of
  // a large graph must not stall every other tenant's Submit. Racing
  // first resolvers may build duplicates; the first to publish wins and
  // the rest are dropped (rare one-off cost, bounded by the race width).
  auto built = std::make_shared<const Graph>(Symmetrized(*base));
  std::lock_guard<std::mutex> lock(graphs_mu_);
  GraphEntry& entry = graphs_.at(name);
  if (entry.symmetrized == nullptr) entry.symmetrized = std::move(built);
  return entry.symmetrized;
}

Result<std::shared_ptr<const Graph>> Session::ResolveGraph(
    const AppRequest& request) {
  const AppDescriptor* app = nullptr;
  Status status = Check(request, &app, nullptr);
  if (!status.ok()) return status;
  return ResolveChecked(request.graph, *app);
}

AppOutcome Session::Run(const AppRequest& request) {
  AppOutcome outcome;
  const AppDescriptor* app = nullptr;
  Engine engine;
  outcome.status = Check(request, &app, &engine);
  if (!outcome.status.ok()) return outcome;
  return RunWith(request, *app, engine,
                 ResolveChecked(request.graph, *app));
}

AppOutcome Session::RunOn(const AppRequest& request,
                          std::shared_ptr<const Graph> graph,
                          obs::JobTrace* trace) {
  AppOutcome outcome;
  if (graph == nullptr) {
    outcome.status = Status::InvalidArgument("RunOn: null graph");
    return outcome;
  }
  // Registry checks repeat (they are cheap and request-local); the
  // by-name graph lookup and trait checks do NOT — the pinned graph is
  // the resolution, validated when the caller resolved it.
  const AppRegistry& registry = AppRegistry::Global();
  const AppDescriptor* app = registry.Find(request.app);
  if (app == nullptr) {
    outcome.status =
        Status::InvalidArgument("unknown app: " + request.app + " (one of: " +
                                registry.UsageList() + ")");
    return outcome;
  }
  Result<Engine> engine = ParseEngine(request.engine);
  if (!engine.ok()) {
    outcome.status = engine.status();
    return outcome;
  }
  if (!app->Supports(engine.value())) {
    outcome.status = Status::InvalidArgument(
        "app " + app->name + " not available on engine " + request.engine +
        " (declared: " + app->EngineList() + ")");
    return outcome;
  }
  if (app->single_source && request.root >= graph->num_vertices()) {
    outcome.status = Status::InvalidArgument(
        "root " + std::to_string(request.root) +
        " out of range for the pinned graph (|V|=" +
        std::to_string(graph->num_vertices()) + ")");
    return outcome;
  }
  return RunWith(request, *app, engine.value(), std::move(graph), trace);
}

AppOutcome Session::RunWith(const AppRequest& request, const AppDescriptor& app,
                            Engine engine,
                            std::shared_ptr<const Graph> graph,
                            obs::JobTrace* trace) {
  AppOutcome outcome;
  if (engine == Engine::kOoc) {
    // Lazily create the scratch root only when an engine with on-disk
    // state runs (OocEngine::Build mkdirs just the leaf under it), and
    // fail HERE with a clear message instead of a confusing shard error.
    if (::mkdir(options_.scratch_dir.c_str(), 0755) != 0 &&
        errno != EEXIST) {
      outcome.status = Status::IOError("cannot create session scratch dir " +
                                       options_.scratch_dir);
      return outcome;
    }
  }

  AppConfig config;
  config.num_nodes = options_.num_nodes;
  config.threads_per_node = options_.threads_per_node;
  config.enable_rr = request.enable_rr;
  config.enable_stealing = request.enable_stealing;
  config.max_iters = request.max_iters;
  config.epsilon = request.epsilon;
  config.root = request.root;
  config.guidance_provider = provider_;
  config.trace = trace;

  RunContext context{*graph, request, std::move(config),
                     options_.scratch_dir, options_.ooc_shards};
  if (trace == nullptr) return app.runners.at(engine)(context);

  // Report the runner's wall time minus whatever guidance_acquire spans it
  // recorded as engine_execute, so a trace's spans tile the job's timeline
  // instead of double-counting the acquisition.
  double runner_start = trace->Now();
  AppOutcome run_outcome = app.runners.at(engine)(context);
  double wall = trace->Now() - runner_start;
  double guidance = trace->SpanSecondsWithPrefix("guidance_acquire");
  double engine_seconds = wall - guidance;
  if (engine_seconds < 0.0) engine_seconds = 0.0;
  trace->AddSpan("engine_execute", runner_start + guidance, engine_seconds);
  return run_outcome;
}

}  // namespace slfe::api
