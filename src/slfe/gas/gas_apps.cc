#include "slfe/gas/gas_apps.h"

#include <algorithm>
#include <limits>
#include <numeric>

namespace slfe::gas {

namespace {

/// Acquires guidance for a guided GAS run and threads it into a copy of
/// `options` (the provider default is the process-global instance, so GAS
/// jobs participate in the same §4.4 cross-engine amortization as the
/// SLFE and ooc paths). Returns the acquisition for stats accounting.
GuidanceAcquisition AcquireIntoOptions(const Graph& graph,
                                       const GuidanceRequest& request,
                                       GuidanceProvider* provider,
                                       GasOptions* options) {
  GuidanceAcquisition acq = ResolveProvider(provider).Acquire(graph, request);
  options->guidance = acq.guidance;
  return acq;
}

}  // namespace

GasSsspResult RunGasSssp(const Graph& graph, VertexId root,
                         const GasOptions& options) {
  constexpr float kInf = std::numeric_limits<float>::infinity();
  GasSsspResult result;
  result.dist.assign(graph.num_vertices(), kInf);
  result.dist[root] = 0.0f;

  GasEngine<float> engine(graph, options);
  std::vector<float>& dist = result.dist;
  // Seed with the root's out-neighborhood (the root itself has no
  // improving gather; its scatter is emulated by activating successors).
  std::vector<VertexId> seeds;
  graph.out().ForEachNeighbor(root,
                              [&](VertexId u, Weight) { seeds.push_back(u); });
  result.stats = engine.Run(
      seeds, kInf,
      [&dist](float acc, VertexId src, Weight w) {
        return std::min(acc, dist[src] + w);
      },
      [&dist](VertexId v, float acc) {
        if (acc < dist[v]) {
          dist[v] = acc;
          return true;
        }
        return false;
      });
  return result;
}

GasSsspResult RunGasSsspGuided(const Graph& graph, VertexId root,
                               const GasOptions& options,
                               GuidanceProvider* provider) {
  GasOptions guided = options;
  GuidanceRequest request;
  request.policy = GuidanceRootPolicy::kSingleSource;
  request.root = root;
  GuidanceAcquisition acq =
      AcquireIntoOptions(graph, request, provider, &guided);
  GasSsspResult result = RunGasSssp(graph, root, guided);
  result.stats.guidance_seconds = acq.acquire_seconds;
  return result;
}

GasCcResult RunGasCc(const Graph& graph, const GasOptions& options) {
  GasCcResult result;
  result.labels.resize(graph.num_vertices());
  std::iota(result.labels.begin(), result.labels.end(), 0u);

  GasEngine<uint32_t> engine(graph, options);
  std::vector<uint32_t>& labels = result.labels;
  std::vector<VertexId> seeds(graph.num_vertices());
  std::iota(seeds.begin(), seeds.end(), 0u);
  result.stats = engine.Run(
      seeds, UINT32_MAX,
      [&labels](uint32_t acc, VertexId src, Weight) {
        return std::min(acc, labels[src]);
      },
      [&labels](VertexId v, uint32_t acc) {
        if (acc < labels[v]) {
          labels[v] = acc;
          return true;
        }
        return false;
      });
  return result;
}

GasCcResult RunGasCcGuided(const Graph& graph, const GasOptions& options,
                           GuidanceProvider* provider) {
  GasOptions guided = options;
  GuidanceRequest request;
  request.policy = GuidanceRootPolicy::kLocalMinima;
  GuidanceAcquisition acq =
      AcquireIntoOptions(graph, request, provider, &guided);
  GasCcResult result = RunGasCc(graph, guided);
  result.stats.guidance_seconds = acq.acquire_seconds;
  return result;
}

GasWpResult RunGasWp(const Graph& graph, VertexId root,
                     const GasOptions& options) {
  constexpr float kInf = std::numeric_limits<float>::infinity();
  GasWpResult result;
  result.width.assign(graph.num_vertices(), 0.0f);
  result.width[root] = kInf;

  GasEngine<float> engine(graph, options);
  std::vector<float>& width = result.width;
  std::vector<VertexId> seeds;
  graph.out().ForEachNeighbor(root,
                              [&](VertexId u, Weight) { seeds.push_back(u); });
  result.stats = engine.Run(
      seeds, 0.0f,
      [&width](float acc, VertexId src, Weight w) {
        return std::max(acc, std::min(width[src], w));
      },
      [&width](VertexId v, float acc) {
        if (acc > width[v]) {
          width[v] = acc;
          return true;
        }
        return false;
      });
  return result;
}

GasPrResult RunGasPr(const Graph& graph, uint32_t iterations,
                     const GasOptions& options) {
  VertexId n = graph.num_vertices();
  GasPrResult result;
  result.ranks.assign(n, 1.0f);

  GasEngine<float> engine(graph, options);
  std::vector<float> contrib(n);
  std::vector<float>& ranks = result.ranks;
  auto refresh = [&](VertexId v) {
    VertexId od = graph.out_degree(v);
    contrib[v] = od > 0 ? ranks[v] / static_cast<float>(od) : ranks[v];
  };
  for (VertexId v = 0; v < n; ++v) refresh(v);

  // Double-buffered contributions keep the superstep synchronous even
  // though GasEngine interleaves gather and apply per vertex: gathers read
  // the previous superstep's snapshot, applies write ranks only, and the
  // end-of-superstep hook refreshes the snapshot.
  std::vector<VertexId> seeds(n);
  std::iota(seeds.begin(), seeds.end(), 0u);
  result.stats = engine.Run(
      seeds, 0.0f,
      [&contrib](float acc, VertexId src, Weight) {
        return acc + contrib[src];
      },
      [&ranks](VertexId v, float acc) {
        ranks[v] = 0.15f + 0.85f * acc;
        return true;  // static PageRank: stay active the full run
      },
      iterations,
      [&](uint32_t) {
        for (VertexId v = 0; v < n; ++v) refresh(v);
      });
  return result;
}

GasTrResult RunGasTr(const Graph& graph, uint32_t iterations,
                     const GasOptions& options, float retweet_probability) {
  VertexId n = graph.num_vertices();
  GasTrResult result;
  result.influence.assign(n, 1.0f);

  GasEngine<float> engine(graph, options);
  std::vector<float> contrib(n);
  std::vector<float>& influence = result.influence;
  const float p = retweet_probability;
  for (VertexId v = 0; v < n; ++v) {
    VertexId od = graph.out_degree(v);
    contrib[v] =
        od > 0 ? (1.0f + p * influence[v]) / static_cast<float>(od) : 0.0f;
  }
  auto refresh_all = [&] {
    for (VertexId v = 0; v < n; ++v) {
      VertexId od = graph.out_degree(v);
      contrib[v] =
          od > 0 ? (1.0f + p * influence[v]) / static_cast<float>(od) : 0.0f;
    }
  };
  std::vector<VertexId> seeds(n);
  std::iota(seeds.begin(), seeds.end(), 0u);
  result.stats = engine.Run(
      seeds, 0.0f,
      [&contrib](float acc, VertexId src, Weight) {
        return acc + contrib[src];
      },
      [&influence](VertexId v, float acc) {
        influence[v] = acc;
        return true;
      },
      iterations, [&](uint32_t) { refresh_all(); });
  return result;
}

}  // namespace slfe::gas
