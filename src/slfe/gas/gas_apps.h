#ifndef SLFE_GAS_GAS_APPS_H_
#define SLFE_GAS_GAS_APPS_H_

#include <vector>

#include "slfe/core/guidance_provider.h"
#include "slfe/gas/gas_engine.h"
#include "slfe/graph/graph.h"

namespace slfe::gas {

/// The five evaluation applications (paper Table 5) expressed as GAS
/// vertex programs, used as the PowerGraph/PowerLyra comparison points.
/// Each returns the final values plus the engine statistics.

struct GasSsspResult {
  std::vector<float> dist;
  GasStats stats;
};
GasSsspResult RunGasSssp(const Graph& graph, VertexId root,
                         const GasOptions& options);

/// SSSP with RR "start late" (kSingleSource guidance from `provider`,
/// nullptr = the global one); distances equal RunGasSssp exactly. See
/// RunGasCcGuided.
GasSsspResult RunGasSsspGuided(const Graph& graph, VertexId root,
                               const GasOptions& options,
                               GuidanceProvider* provider = nullptr);

struct GasCcResult {
  std::vector<uint32_t> labels;
  GasStats stats;
};
GasCcResult RunGasCc(const Graph& graph, const GasOptions& options);

/// CC with RR "start late" applied to the GAS gather phase: guidance is
/// acquired through `provider` (nullptr = GuidanceProvider::Global(), so
/// GAS runs share the cache/store with the SLFE and ooc engines) with the
/// kLocalMinima policy, and locked vertices defer their gathers to their
/// unlock superstep. Labels equal RunGasCc exactly (see
/// GasOptions::guidance for the argument); stats.skipped counts the
/// bypassed gather evaluations and stats.guidance_seconds the acquisition
/// cost actually paid.
GasCcResult RunGasCcGuided(const Graph& graph, const GasOptions& options,
                           GuidanceProvider* provider = nullptr);

struct GasWpResult {
  std::vector<float> width;
  GasStats stats;
};
GasWpResult RunGasWp(const Graph& graph, VertexId root,
                     const GasOptions& options);

struct GasPrResult {
  std::vector<float> ranks;
  GasStats stats;
};
GasPrResult RunGasPr(const Graph& graph, uint32_t iterations,
                     const GasOptions& options);

struct GasTrResult {
  std::vector<float> influence;
  GasStats stats;
};
GasTrResult RunGasTr(const Graph& graph, uint32_t iterations,
                     const GasOptions& options,
                     float retweet_probability = 0.5f);

}  // namespace slfe::gas

#endif  // SLFE_GAS_GAS_APPS_H_
