#ifndef SLFE_GAS_GAS_ENGINE_H_
#define SLFE_GAS_GAS_ENGINE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include <memory>

#include "slfe/common/bitmap.h"
#include "slfe/common/counters.h"
#include "slfe/common/timer.h"
#include "slfe/core/rr_guidance.h"
#include "slfe/engine/dist_engine.h"
#include "slfe/graph/graph.h"
#include "slfe/sim/comm.h"

namespace slfe::gas {

/// Vertex placement strategy, which determines mirror replication — the
/// dominant communication term in GAS systems.
enum class Placement {
  /// PowerGraph-style random (hash) edge placement: an edge lives on
  /// hash(src, dst) % p; a vertex is replicated on every node touching one
  /// of its edges. Replication grows with degree and p.
  kRandomVertexCut,
  /// PowerLyra-style hybrid cut: low-degree vertices keep all their
  /// in-edges at their hash home (one gather site); only high-degree
  /// vertices are cut like PowerGraph.
  kHybridCut,
};

struct GasOptions {
  int num_nodes = 8;
  Placement placement = Placement::kRandomVertexCut;
  /// Hybrid-cut high-degree threshold (PowerLyra defaults to ~100).
  uint32_t high_degree_threshold = 100;
  sim::CostModel cost_model;
  /// RR guidance threaded into the engine, mirroring
  /// EngineOptions::guidance: non-null enables "start late" — vertex v is
  /// not gathered before superstep last_iter(v), it just stays active
  /// until unlocked. Because GasEngine's gather phase always scans ALL
  /// in-edges of a processed vertex, an unlocked vertex sees every
  /// predecessor's current value, so monotone min/max apps (SSSP/CC/WP)
  /// reach exactly the baseline fixpoint with fewer edge evaluations.
  /// Do NOT set this for non-monotone apps driven by a fixed iteration
  /// count (PR/TR): delaying their gathers changes the result. Typically
  /// acquired through the GuidanceProvider (see RunGasCcGuided).
  std::shared_ptr<const RRGuidance> guidance;
};

/// Run statistics mirroring EngineStats where meaningful.
struct GasStats {
  uint64_t supersteps = 0;
  uint64_t computations = 0;  ///< gather edge evaluations
  uint64_t updates = 0;       ///< apply() value changes
  uint64_t skipped = 0;       ///< gather evaluations bypassed by RR guidance
  uint64_t messages = 0;
  uint64_t bytes = 0;
  double compute_seconds = 0;
  double comm_seconds = 0;  ///< simulated (BSP max over nodes per step)
  /// Guidance acquisition cost for guided runs (0 for baselines).
  double guidance_seconds = 0;
  double RuntimeSeconds() const { return compute_seconds + comm_seconds; }
};

/// A faithful-in-spirit synchronous Gather-Apply-Scatter engine, built as
/// the PowerGraph/PowerLyra comparator of the paper's Table 5. It executes
/// the classic three phases per superstep for every active vertex:
///
///   gather:  acc = sum over in-edges of gather(src, dst, w)
///   apply:   new value from (old value, acc); returns changed?
///   scatter: activate out-neighbors of changed vertices
///
/// Differences from the SLFE/Gemini engine that this class deliberately
/// preserves (they are why GAS baselines lose):
///   * no push/pull direction switching — gather always scans all in-edges
///     of every active vertex;
///   * mirror synchronization twice per superstep (gather aggregation to
///     the master, then apply result broadcast back to mirrors), with
///     fine-grained per-mirror messages;
///   * hash placement (vertex-cut) replication factors instead of
///     chunking locality.
///
/// The graph itself is shared in memory (DESIGN.md §2): replication
/// factors drive the simulated communication cost, not actual copies.
template <typename V>
class GasEngine {
 public:
  using GatherFn = std::function<V(V, VertexId, Weight)>;
  /// apply(v, acc) -> changed?
  using ApplyFn = std::function<bool(VertexId, V)>;
  /// Invoked after every superstep (barrier point). Arithmetic apps use it
  /// to refresh the propagated contribution snapshot synchronously.
  using SuperstepFn = std::function<void(uint32_t)>;

  GasEngine(const Graph& graph, GasOptions options)
      : graph_(graph), options_(options) {
    BuildReplication();
  }

  const GasOptions& options() const { return options_; }

  /// Mirror count of v under the configured placement (diagnostics).
  uint32_t replication(VertexId v) const { return replication_[v]; }

  /// Runs supersteps until no vertex is active or `max_iters` is reached.
  /// `initially_active`: seed set. Gather uses identity + gather over all
  /// in-edges; apply commits; scatter activates all out-neighbors of
  /// changed vertices (PowerGraph's signal()).
  GasStats Run(const std::vector<VertexId>& initially_active, V identity,
               const GatherFn& gather, const ApplyFn& apply,
               uint32_t max_iters = UINT32_MAX,
               const SuperstepFn& end_superstep = nullptr) {
    GasStats stats;
    VertexId n = graph_.num_vertices();
    Bitmap active(n), next(n);
    for (VertexId v : initially_active) active.SetBit(v);

    const Csr& in = graph_.in();
    const Csr& out = graph_.out();
    const RRGuidance* rrg = options_.guidance.get();
    for (uint32_t iter = 0; iter < max_iters; ++iter) {
      uint64_t active_count = active.CountOnes();
      if (active_count == 0) break;
      ++stats.supersteps;

      Timer step;
      // Per-node traffic for the BSP max; node of a master = hash home.
      std::vector<uint64_t> node_msgs(options_.num_nodes, 0);
      std::vector<uint64_t> node_bytes(options_.num_nodes, 0);
      uint64_t changed_this_step = 0;

      active.ForEachSetBit([&](size_t sv) {
        VertexId v = static_cast<VertexId>(sv);
        // "Start late" (guided runs): a locked vertex neither gathers nor
        // scatters this superstep — it only stays active, so its deferred
        // gather happens at its unlock level (supersteps here are 0-based,
        // guidance levels 1-based, hence iter + 1). No update is lost:
        // the unlock gather scans all in-edges, and any later predecessor
        // change re-signals v through the scatter phase.
        if (rrg != nullptr && iter + 1 < rrg->last_iter(v)) {
          stats.skipped += in.degree(v);
          next.SetBit(v);
          return;
        }
        // Gather phase: every in-edge contributes; partial sums travel
        // from each mirror to the master (one message per mirror).
        V acc = identity;
        for (EdgeId e = in.begin(v); e < in.end(v); ++e) {
          acc = gather(acc, in.neighbor(e), in.weight(e));
          ++stats.computations;
        }
        int home = static_cast<int>(v) % options_.num_nodes;
        uint64_t mirrors = replication_[v] > 0 ? replication_[v] - 1 : 0;
        node_msgs[home] += mirrors;
        node_bytes[home] += mirrors * (sizeof(VertexId) + sizeof(V));

        // Apply phase on the master; broadcast to mirrors if changed.
        if (apply(v, acc)) {
          ++stats.updates;
          ++changed_this_step;
          node_msgs[home] += mirrors;
          node_bytes[home] += mirrors * (sizeof(VertexId) + sizeof(V));
          // Scatter phase: signal out-neighbors.
          for (EdgeId e = out.begin(v); e < out.end(v); ++e) {
            next.SetBit(out.neighbor(e));
          }
        }
      });
      stats.compute_seconds += step.Seconds();

      double worst = 0;
      for (int p = 0; p < options_.num_nodes; ++p) {
        worst = std::max(worst,
                         options_.cost_model.Cost(node_msgs[p], node_bytes[p]));
        stats.messages += node_msgs[p];
        stats.bytes += node_bytes[p];
      }
      stats.comm_seconds += worst;
      if (end_superstep) end_superstep(iter);

      active = next;
      next.Clear();
    }
    return stats;
  }

 private:
  void BuildReplication() {
    VertexId n = graph_.num_vertices();
    replication_.assign(n, 1);
    int p = options_.num_nodes;
    if (p <= 1) return;
    // Mark, per vertex, the set of nodes hosting at least one of its
    // edges under hash placement. Hybrid cut pins all in-edges of
    // low-degree vertices to the vertex's home node first.
    std::vector<uint8_t> mask(static_cast<size_t>(n) * p, 0);
    auto edge_node = [p](VertexId s, VertexId d) {
      uint64_t h = (static_cast<uint64_t>(s) << 32) | d;
      h ^= h >> 33;
      h *= 0xff51afd7ed558ccdULL;
      h ^= h >> 33;
      return static_cast<int>(h % p);
    };
    const Csr& in = graph_.in();
    for (VertexId v = 0; v < n; ++v) {
      bool low_degree = options_.placement == Placement::kHybridCut &&
                        in.degree(v) < options_.high_degree_threshold;
      int home = static_cast<int>(v) % p;
      for (EdgeId e = in.begin(v); e < in.end(v); ++e) {
        VertexId src = in.neighbor(e);
        int node = low_degree ? home : edge_node(src, v);
        mask[static_cast<size_t>(v) * p + node] = 1;       // dst side
        mask[static_cast<size_t>(src) * p + node] = 1;     // src side
      }
    }
    for (VertexId v = 0; v < n; ++v) {
      uint32_t count = 0;
      for (int q = 0; q < p; ++q) count += mask[static_cast<size_t>(v) * p + q];
      replication_[v] = count > 0 ? count : 1;
    }
  }

  const Graph& graph_;
  GasOptions options_;
  std::vector<uint32_t> replication_;
};

}  // namespace slfe::gas

#endif  // SLFE_GAS_GAS_ENGINE_H_
