#pragma once

// Per-job span tracing. A JobTrace is allocated at submit time (only when
// tracing is enabled), carried by shared_ptr through the worker, session,
// and net layers, and lands in the flight recorder at completion. Span
// timestamps are offsets in seconds from the trace's epoch (construction,
// i.e. job submit), so spans from different threads share one timeline.

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace slfe {
namespace obs {

struct TraceSpan {
  std::string name;
  double start_seconds = 0.0;  // offset from trace epoch
  double duration_seconds = 0.0;
};

class JobTrace {
 public:
  JobTrace();

  // Metadata is written once at submit, before the trace is shared.
  uint64_t job_id = 0;
  std::string tenant;
  std::string app;
  std::string engine;
  std::string graph;

  // Seconds elapsed since the trace epoch.
  double Now() const;

  void AddSpan(const std::string& name, double start_seconds,
               double duration_seconds);
  // Convenience: span from `start_seconds` (a prior Now() reading) to now.
  void AddSpanSince(const std::string& name, double start_seconds);

  // Called once when the job finishes executing; result_stream spans are
  // appended after this point by the net layer.
  void MarkCompleted(bool ok);
  bool completed() const;
  bool ok() const;
  // Offset of MarkCompleted, or -1 if still running.
  double completed_at() const;

  std::vector<TraceSpan> Snapshot() const;
  // Total duration of spans whose name starts with `prefix`.
  double SpanSecondsWithPrefix(const std::string& prefix) const;
  // Single-line JSON object: metadata, status, end_to_end_ms, spans array.
  std::string ToJson() const;
  // Compact `name=ms name=ms ...` breakdown for log lines.
  std::string SpanSummary() const;

 private:
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<TraceSpan> spans_;
  double completed_at_ = -1.0;
  bool ok_ = false;
};

}  // namespace obs
}  // namespace slfe
