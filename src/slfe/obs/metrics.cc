#include "slfe/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>

namespace slfe {
namespace obs {

namespace {

void Appendf(std::string* out, const char* fmt, ...) {
  char stack_buf[256];
  va_list args;
  va_start(args, fmt);
  int n = std::vsnprintf(stack_buf, sizeof(stack_buf), fmt, args);
  va_end(args);
  if (n < 0) return;
  if (static_cast<size_t>(n) < sizeof(stack_buf)) {
    out->append(stack_buf, static_cast<size_t>(n));
    return;
  }
  std::vector<char> heap_buf(static_cast<size_t>(n) + 1);
  va_start(args, fmt);
  std::vsnprintf(heap_buf.data(), heap_buf.size(), fmt, args);
  va_end(args);
  out->append(heap_buf.data(), static_cast<size_t>(n));
}

void AppendJsonEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\n': out->append("\\n"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          Appendf(out, "\\u%04x", c);
        } else {
          out->push_back(c);
        }
    }
  }
}

}  // namespace

std::string FormatLabels(const MetricLabels& labels) {
  if (labels.empty()) return std::string();
  std::string out = "{";
  bool first = true;
  for (const auto& kv : labels) {
    if (!first) out.push_back(',');
    first = false;
    out += kv.first;
    out += "=\"";
    out += kv.second;
    out += "\"";
  }
  out.push_back('}');
  return out;
}

Histogram::Histogram(double first_bound) {
  if (!(first_bound > 0.0)) first_bound = 1e-6;
  const double sqrt2 = std::sqrt(2.0);
  double bound = first_bound;
  for (size_t i = 0; i < kFiniteBounds; ++i) {
    bounds_[i] = bound;
    bound *= sqrt2;
  }
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

size_t Histogram::BucketIndex(double value) const {
  // Binary search over the precomputed bounds table: the recording path and
  // the rendering path agree exactly on boundary values, no float-log slop.
  const double* begin = bounds_.data();
  const double* end = begin + kFiniteBounds;
  const double* it = std::lower_bound(begin, end, value);  // first bound >= value
  return static_cast<size_t>(it - begin);  // == kFiniteBounds -> +Inf bucket
}

void Histogram::Observe(double value) {
  if (std::isnan(value)) return;
  if (value < 0.0) value = 0.0;
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + value,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::Sum() const { return sum_.load(std::memory_order_relaxed); }

double Histogram::Quantile(double q) const {
  uint64_t counts[kNumBuckets];
  uint64_t total = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  // 1-based rank of the sample the quantile falls on.
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * static_cast<double>(total)));
  if (rank == 0) rank = 1;
  uint64_t cum = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (counts[i] == 0) continue;
    if (cum + counts[i] >= rank) {
      double lower = (i == 0) ? 0.0 : bounds_[i - 1];
      double upper = (i < kFiniteBounds) ? bounds_[i] : bounds_[kFiniteBounds - 1];
      if (upper <= lower) return upper;
      double frac = static_cast<double>(rank - cum) / static_cast<double>(counts[i]);
      return lower + (upper - lower) * frac;
    }
    cum += counts[i];
  }
  return bounds_[kFiniteBounds - 1];
}

MetricsRegistry::Instance* MetricsRegistry::GetInstance(
    const std::string& name, const std::string& help, Kind kind,
    const MetricLabels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& family = families_[name];
  if (family.instances.empty()) {
    family.help = help;
    family.kind = kind;
  }
  return &family.instances[FormatLabels(labels)];
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help,
                                     const MetricLabels& labels) {
  Instance* inst = GetInstance(name, help, Kind::kCounter, labels);
  std::lock_guard<std::mutex> lock(mu_);
  if (!inst->counter) {
    inst->labels = labels;
    inst->counter = std::make_unique<Counter>();
  }
  return inst->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help,
                                 const MetricLabels& labels) {
  Instance* inst = GetInstance(name, help, Kind::kGauge, labels);
  std::lock_guard<std::mutex> lock(mu_);
  if (!inst->gauge) {
    inst->labels = labels;
    inst->gauge = std::make_unique<Gauge>();
  }
  return inst->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help,
                                         double first_bound,
                                         const MetricLabels& labels) {
  Instance* inst = GetInstance(name, help, Kind::kHistogram, labels);
  std::lock_guard<std::mutex> lock(mu_);
  if (!inst->histogram) {
    inst->labels = labels;
    inst->histogram = std::make_unique<Histogram>(first_bound);
  }
  return inst->histogram.get();
}

std::string MetricsRegistry::RenderPrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& fam : families_) {
    const std::string& name = fam.first;
    const Family& family = fam.second;
    const char* type = family.kind == Kind::kCounter   ? "counter"
                       : family.kind == Kind::kGauge   ? "gauge"
                                                       : "histogram";
    Appendf(&out, "# HELP %s %s\n", name.c_str(), family.help.c_str());
    Appendf(&out, "# TYPE %s %s\n", name.c_str(), type);
    for (const auto& entry : family.instances) {
      const std::string& label_str = entry.first;
      const Instance& inst = entry.second;
      if (inst.counter) {
        Appendf(&out, "%s%s %llu\n", name.c_str(), label_str.c_str(),
                static_cast<unsigned long long>(inst.counter->Value()));
      } else if (inst.gauge) {
        Appendf(&out, "%s%s %.9g\n", name.c_str(), label_str.c_str(),
                inst.gauge->Value());
      } else if (inst.histogram) {
        const Histogram& h = *inst.histogram;
        // Cumulative le-buckets; merge the le label into existing labels.
        std::string prefix = label_str.empty()
                                 ? "{"
                                 : label_str.substr(0, label_str.size() - 1) + ",";
        uint64_t cum = 0;
        for (size_t i = 0; i < Histogram::kFiniteBounds; ++i) {
          cum += h.BucketCount(i);
          Appendf(&out, "%s_bucket%sle=\"%.9g\"} %llu\n", name.c_str(),
                  prefix.c_str(), h.Bound(i),
                  static_cast<unsigned long long>(cum));
        }
        cum += h.BucketCount(Histogram::kNumBuckets - 1);
        Appendf(&out, "%s_bucket%sle=\"+Inf\"} %llu\n", name.c_str(),
                prefix.c_str(), static_cast<unsigned long long>(cum));
        Appendf(&out, "%s_sum%s %.9g\n", name.c_str(), label_str.c_str(),
                h.Sum());
        Appendf(&out, "%s_count%s %llu\n", name.c_str(), label_str.c_str(),
                static_cast<unsigned long long>(h.Count()));
      }
    }
  }
  out.append("# EOF\n");
  return out;
}

std::string MetricsRegistry::RenderJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& fam : families_) {
    for (const auto& entry : fam.second.instances) {
      if (!entry.second.counter) continue;
      if (!first) out.push_back(',');
      first = false;
      out.push_back('"');
      AppendJsonEscaped(&out, fam.first + entry.first);
      Appendf(&out, "\":%llu",
              static_cast<unsigned long long>(entry.second.counter->Value()));
    }
  }
  out.append("},\"gauges\":{");
  first = true;
  for (const auto& fam : families_) {
    for (const auto& entry : fam.second.instances) {
      if (!entry.second.gauge) continue;
      if (!first) out.push_back(',');
      first = false;
      out.push_back('"');
      AppendJsonEscaped(&out, fam.first + entry.first);
      Appendf(&out, "\":%.9g", entry.second.gauge->Value());
    }
  }
  out.append("},\"histograms\":{");
  first = true;
  for (const auto& fam : families_) {
    for (const auto& entry : fam.second.instances) {
      if (!entry.second.histogram) continue;
      const Histogram& h = *entry.second.histogram;
      if (!first) out.push_back(',');
      first = false;
      out.push_back('"');
      AppendJsonEscaped(&out, fam.first + entry.first);
      Appendf(&out,
              "\":{\"count\":%llu,\"sum\":%.9g,\"p50\":%.9g,\"p90\":%.9g,"
              "\"p99\":%.9g}",
              static_cast<unsigned long long>(h.Count()), h.Sum(),
              h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99));
    }
  }
  out.append("}}");
  return out;
}

}  // namespace obs
}  // namespace slfe
