#pragma once

// In-process metrics registry for the serving daemon: named counters,
// gauges, and log-bucketed latency histograms with Prometheus-text and
// JSON renderers. Recording is lock-free (atomic adds); registration and
// rendering take a registry mutex.

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace slfe {
namespace obs {

// Sorted label set; rendered as {k1="v1",k2="v2"}.
using MetricLabels = std::map<std::string, std::string>;

class Counter {
 public:
  void Inc(uint64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  // Collectors that mirror externally-maintained totals overwrite the value.
  void Set(uint64_t value) { value_.store(value, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed-layout log histogram: 63 finite upper bounds growing by powers of
// sqrt(2) from `first_bound`, plus a +Inf overflow bucket. Bucket i holds
// values v with bound[i-1] < v <= bound[i] (le-semantics), so quantiles
// reconstructed from bucket counts are exact to within a factor of sqrt(2)
// and no samples are stored.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 64;
  static constexpr size_t kFiniteBounds = kNumBuckets - 1;

  explicit Histogram(double first_bound = 1e-6);

  void Observe(double value);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const;
  // Upper bound of bucket i; Bound(kFiniteBounds-1) is the largest finite
  // bound, the last bucket is +Inf.
  double Bound(size_t i) const { return bounds_[i]; }
  uint64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  // Index of the bucket Observe(value) records into.
  size_t BucketIndex(double value) const;
  // Rank-based quantile (q in [0,1]) with linear interpolation inside the
  // selected bucket. Returns 0 when empty; values in the +Inf bucket report
  // the largest finite bound.
  double Quantile(double q) const;

 private:
  std::array<double, kFiniteBounds> bounds_;
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// Named metric families with optional labels. Get* registers on first use
// and returns a stable pointer; the same (name, labels) pair always maps to
// the same instance. A name must keep one type for the registry's lifetime.
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name, const std::string& help,
                      const MetricLabels& labels = {});
  Gauge* GetGauge(const std::string& name, const std::string& help,
                  const MetricLabels& labels = {});
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          double first_bound = 1e-6,
                          const MetricLabels& labels = {});

  // Prometheus text exposition: # HELP / # TYPE per family, cumulative
  // _bucket{le=...} series per histogram, terminated by "# EOF\n" so TCP
  // scrapers have an unambiguous end marker.
  std::string RenderPrometheusText() const;
  // Single-line JSON document with computed p50/p90/p99 per histogram.
  std::string RenderJson() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Instance {
    MetricLabels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    std::string help;
    Kind kind = Kind::kCounter;
    // Keyed by serialized labels for deterministic rendering order.
    std::map<std::string, Instance> instances;
  };

  Instance* GetInstance(const std::string& name, const std::string& help,
                        Kind kind, const MetricLabels& labels);

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
};

// Serialize labels as {k1="v1",k2="v2"}, or "" when empty.
std::string FormatLabels(const MetricLabels& labels);

}  // namespace obs
}  // namespace slfe
