#include "slfe/obs/trace.h"

#include <cstdio>

namespace slfe {
namespace obs {

namespace {

void AppendJsonEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\n': out->append("\\n"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
}

void AppendDouble(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  out->append(buf);
}

}  // namespace

JobTrace::JobTrace() : epoch_(std::chrono::steady_clock::now()) {}

double JobTrace::Now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

void JobTrace::AddSpan(const std::string& name, double start_seconds,
                       double duration_seconds) {
  if (duration_seconds < 0.0) duration_seconds = 0.0;
  std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(TraceSpan{name, start_seconds, duration_seconds});
}

void JobTrace::AddSpanSince(const std::string& name, double start_seconds) {
  AddSpan(name, start_seconds, Now() - start_seconds);
}

void JobTrace::MarkCompleted(bool ok) {
  double at = Now();
  std::lock_guard<std::mutex> lock(mu_);
  if (completed_at_ < 0.0) {
    completed_at_ = at;
    ok_ = ok;
  }
}

bool JobTrace::completed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return completed_at_ >= 0.0;
}

bool JobTrace::ok() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ok_;
}

double JobTrace::completed_at() const {
  std::lock_guard<std::mutex> lock(mu_);
  return completed_at_;
}

std::vector<TraceSpan> JobTrace::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

double JobTrace::SpanSecondsWithPrefix(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  double total = 0.0;
  for (const auto& span : spans_) {
    if (span.name.compare(0, prefix.size(), prefix) == 0) {
      total += span.duration_seconds;
    }
  }
  return total;
}

std::string JobTrace::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"job\":";
  out += std::to_string(job_id);
  out += ",\"tenant\":\"";
  AppendJsonEscaped(&out, tenant);
  out += "\",\"app\":\"";
  AppendJsonEscaped(&out, app);
  out += "\",\"engine\":\"";
  AppendJsonEscaped(&out, engine);
  out += "\",\"graph\":\"";
  AppendJsonEscaped(&out, graph);
  out += "\",\"status\":\"";
  out += completed_at_ < 0.0 ? "running" : (ok_ ? "ok" : "error");
  out += "\",\"end_to_end_ms\":";
  AppendDouble(&out, (completed_at_ < 0.0 ? 0.0 : completed_at_) * 1e3);
  out += ",\"spans\":[";
  bool first = true;
  for (const auto& span : spans_) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":\"";
    AppendJsonEscaped(&out, span.name);
    out += "\",\"start_ms\":";
    AppendDouble(&out, span.start_seconds * 1e3);
    out += ",\"ms\":";
    AppendDouble(&out, span.duration_seconds * 1e3);
    out += "}";
  }
  out += "]}";
  return out;
}

std::string JobTrace::SpanSummary() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& span : spans_) {
    if (!out.empty()) out.push_back(' ');
    out += span.name;
    out.push_back('=');
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2fms", span.duration_seconds * 1e3);
    out += buf;
  }
  return out;
}

}  // namespace obs
}  // namespace slfe
