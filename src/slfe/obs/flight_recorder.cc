#include "slfe/obs/flight_recorder.h"

#include <algorithm>

namespace slfe {
namespace obs {

FlightRecorder::FlightRecorder(size_t capacity, size_t slow_capacity)
    : capacity_(std::max<size_t>(1, capacity)) {
  recent_.slots.resize(capacity_);
  slow_.slots.resize(std::max<size_t>(1, slow_capacity));
}

void FlightRecorder::Ring::Push(std::shared_ptr<JobTrace> trace) {
  slots[next] = std::move(trace);
  next = (next + 1) % slots.size();
  ++total;
}

std::vector<std::shared_ptr<JobTrace>> FlightRecorder::Ring::InOrder() const {
  std::vector<std::shared_ptr<JobTrace>> out;
  out.reserve(slots.size());
  for (size_t i = 0; i < slots.size(); ++i) {
    const auto& slot = slots[(next + i) % slots.size()];
    if (slot) out.push_back(slot);
  }
  return out;
}

void FlightRecorder::Record(std::shared_ptr<JobTrace> trace, bool slow) {
  if (!trace) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (slow) slow_.Push(trace);
  recent_.Push(std::move(trace));
}

std::vector<std::shared_ptr<JobTrace>> FlightRecorder::Recent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recent_.InOrder();
}

std::vector<std::shared_ptr<JobTrace>> FlightRecorder::Slow() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slow_.InOrder();
}

std::shared_ptr<JobTrace> FlightRecorder::Find(uint64_t job_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& slot : recent_.slots) {
    if (slot && slot->job_id == job_id) return slot;
  }
  for (const auto& slot : slow_.slots) {
    if (slot && slot->job_id == job_id) return slot;
  }
  return nullptr;
}

uint64_t FlightRecorder::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recent_.total;
}

uint64_t FlightRecorder::slow_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slow_.total;
}

}  // namespace obs
}  // namespace slfe
