#pragma once

// Bounded flight recorder: a fixed-capacity ring of the most recently
// completed job traces, plus a second ring that pins slow jobs so a burst
// of fast jobs cannot evict the interesting ones. Dumpable on demand
// (`trace recent` / `trace slow`) and on SIGUSR1.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "slfe/obs/trace.h"

namespace slfe {
namespace obs {

class FlightRecorder {
 public:
  explicit FlightRecorder(size_t capacity = 64, size_t slow_capacity = 32);

  void Record(std::shared_ptr<JobTrace> trace, bool slow);

  // Oldest-to-newest snapshots of the rings.
  std::vector<std::shared_ptr<JobTrace>> Recent() const;
  std::vector<std::shared_ptr<JobTrace>> Slow() const;
  // Searches both rings by job id; nullptr if evicted or never recorded.
  std::shared_ptr<JobTrace> Find(uint64_t job_id) const;

  uint64_t recorded() const;
  uint64_t slow_recorded() const;
  size_t capacity() const { return capacity_; }

 private:
  struct Ring {
    std::vector<std::shared_ptr<JobTrace>> slots;
    size_t next = 0;
    uint64_t total = 0;

    void Push(std::shared_ptr<JobTrace> trace);
    std::vector<std::shared_ptr<JobTrace>> InOrder() const;
  };

  const size_t capacity_;
  mutable std::mutex mu_;
  Ring recent_;
  Ring slow_;
};

}  // namespace obs
}  // namespace slfe
