#include "slfe/engine/dist_graph.h"

#include "slfe/common/logging.h"

namespace slfe {

std::vector<VertexRange> DistGraph::BuildRanges(const Graph& graph,
                                                int num_nodes) {
  SLFE_CHECK_GE(num_nodes, 1);
  ChunkPartitioner partitioner;
  return partitioner.Partition(graph, static_cast<size_t>(num_nodes));
}

DistGraph DistGraph::Build(const Graph& graph, int num_nodes) {
  SLFE_CHECK_GE(num_nodes, 1);
  return BuildWithRanges(graph, BuildRanges(graph, num_nodes));
}

DistGraph DistGraph::BuildWithRanges(const Graph& graph,
                                     std::vector<VertexRange> ranges) {
  SLFE_CHECK_GE(ranges.size(), 1u);
  SLFE_CHECK(ChunkPartitioner::ValidatePartition(ranges, graph.num_vertices())
                 .ok());
  int num_nodes = static_cast<int>(ranges.size());
  DistGraph dg;
  dg.graph_ = &graph;
  dg.ranges_ = std::move(ranges);

  VertexId n = graph.num_vertices();
  dg.mirror_count_.assign(n, 0);
  dg.node_out_edges_.assign(num_nodes, 0);
  dg.node_in_edges_.assign(num_nodes, 0);

  // Mirror index: for each master v, count distinct non-owner nodes that
  // own at least one out-neighbor. Out-neighbors are not sorted by owner,
  // so mark nodes in a small stamp array (num_nodes <= 255).
  std::vector<uint32_t> stamp(num_nodes, UINT32_MAX);
  for (VertexId v = 0; v < n; ++v) {
    int owner = dg.OwnerOf(v);
    int mirrors = 0;
    graph.out().ForEachNeighbor(v, [&](VertexId u, Weight) {
      int uo = dg.OwnerOf(u);
      if (uo != owner && stamp[uo] != v) {
        stamp[uo] = v;
        ++mirrors;
      }
    });
    dg.mirror_count_[v] = static_cast<uint8_t>(mirrors);
  }

  for (int p = 0; p < num_nodes; ++p) {
    const VertexRange& r = dg.ranges_[p];
    for (VertexId v = r.begin; v < r.end; ++v) {
      dg.node_out_edges_[p] += graph.out_degree(v);
      dg.node_in_edges_[p] += graph.in_degree(v);
    }
  }
  return dg;
}

}  // namespace slfe
