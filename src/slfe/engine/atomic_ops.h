#ifndef SLFE_ENGINE_ATOMIC_OPS_H_
#define SLFE_ENGINE_ATOMIC_OPS_H_

#include <atomic>
#include <cstdint>
#include <type_traits>

namespace slfe {

/// Lock-free read-modify-write helpers for vertex property arrays. Push
/// mode lets many source vertices race on one destination, so all
/// destination writes in push mode go through these CAS loops.

/// Atomically sets *target = min(*target, value). Returns true iff the
/// stored value decreased (i.e., this call won the update).
template <typename T>
bool AtomicMin(T* target, T value) {
  std::atomic_ref<T> ref(*target);
  T cur = ref.load(std::memory_order_relaxed);
  while (value < cur) {
    if (ref.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

/// Atomically sets *target = max(*target, value). Returns true iff the
/// stored value increased.
template <typename T>
bool AtomicMax(T* target, T value) {
  std::atomic_ref<T> ref(*target);
  T cur = ref.load(std::memory_order_relaxed);
  while (value > cur) {
    if (ref.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

/// Atomically adds `value` to *target (works for floating point, where
/// fetch_add is not available pre-C++20 on all targets).
template <typename T>
void AtomicAdd(T* target, T value) {
  std::atomic_ref<T> ref(*target);
  if constexpr (std::is_integral_v<T>) {
    ref.fetch_add(value, std::memory_order_relaxed);
  } else {
    T cur = ref.load(std::memory_order_relaxed);
    while (!ref.compare_exchange_weak(cur, cur + value,
                                      std::memory_order_relaxed)) {
    }
  }
}

/// Atomic compare-and-swap convenience wrapper.
template <typename T>
bool AtomicCas(T* target, T expected, T desired) {
  std::atomic_ref<T> ref(*target);
  return ref.compare_exchange_strong(expected, desired,
                                     std::memory_order_relaxed);
}

/// Plain atomic load/store with relaxed ordering.
template <typename T>
T AtomicLoad(const T* target) {
  std::atomic_ref<const T> ref(*target);
  return ref.load(std::memory_order_relaxed);
}

template <typename T>
void AtomicStore(T* target, T value) {
  std::atomic_ref<T> ref(*target);
  ref.store(value, std::memory_order_relaxed);
}

}  // namespace slfe

#endif  // SLFE_ENGINE_ATOMIC_OPS_H_
