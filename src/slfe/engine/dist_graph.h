#ifndef SLFE_ENGINE_DIST_GRAPH_H_
#define SLFE_ENGINE_DIST_GRAPH_H_

#include <cstdint>
#include <vector>

#include "slfe/graph/graph.h"
#include "slfe/graph/partitioner.h"
#include "slfe/graph/types.h"

namespace slfe {

/// The per-cluster view of a graph: chunk-partitioned vertex ownership plus
/// the mirror index needed to account for inter-node value traffic.
///
/// Memory layout note: because the cluster is simulated in one address
/// space, adjacency stays in the shared Graph (no duplicated per-node CSR).
/// What is genuinely per-node on a real cluster — who owns each vertex, and
/// which remote nodes hold mirrors of it — is materialized here, and the
/// engine charges communication costs from it (DESIGN.md §2).
class DistGraph {
 public:
  /// Builds ownership ranges (edge-balanced chunking, Gemini-style) and the
  /// mirror index for `num_nodes` nodes.
  static DistGraph Build(const Graph& graph, int num_nodes);

  /// Build over pre-computed ownership ranges — the warm-restart path: a
  /// GraphArena persists the ranges Build would derive, so a restarted
  /// daemon reuses them instead of re-running the partitioner. The ranges
  /// must form a valid partition of [0, |V|) (checked).
  static DistGraph BuildWithRanges(const Graph& graph,
                                   std::vector<VertexRange> ranges);

  /// Just the ownership ranges Build would produce — exported so other
  /// range-partitioned work (the partition-aware guidance generator) slices
  /// vertices exactly the way the distributed engine does, keeping each
  /// worker/socket on the vertex range it would own at execution time.
  static std::vector<VertexRange> BuildRanges(const Graph& graph,
                                              int num_nodes);

  const Graph& graph() const { return *graph_; }
  int num_nodes() const { return static_cast<int>(ranges_.size()); }
  const std::vector<VertexRange>& ranges() const { return ranges_; }
  const VertexRange& range(int node) const { return ranges_[node]; }

  /// Owner node of vertex v.
  int OwnerOf(VertexId v) const {
    return static_cast<int>(ChunkPartitioner::OwnerOf(ranges_, v));
  }

  /// Number of remote nodes holding a mirror of master vertex v (nodes that
  /// own at least one of v's out-neighbors, excluding v's own node). When
  /// v's value changes, it must travel to exactly these nodes — in push
  /// mode as an update message, in pull mode as a mirror refresh.
  int MirrorNodeCount(VertexId v) const { return mirror_count_[v]; }

  /// Sum of out-degrees of vertices in `node`'s range (work volume).
  EdgeId NodeOutEdges(int node) const { return node_out_edges_[node]; }
  /// Sum of in-degrees of vertices in `node`'s range (pull-mode work).
  EdgeId NodeInEdges(int node) const { return node_in_edges_[node]; }

 private:
  const Graph* graph_ = nullptr;
  std::vector<VertexRange> ranges_;
  std::vector<uint8_t> mirror_count_;  // capped at num_nodes-1 <= 255
  std::vector<EdgeId> node_out_edges_;
  std::vector<EdgeId> node_in_edges_;
};

}  // namespace slfe

#endif  // SLFE_ENGINE_DIST_GRAPH_H_
