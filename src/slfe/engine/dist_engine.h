#ifndef SLFE_ENGINE_DIST_ENGINE_H_
#define SLFE_ENGINE_DIST_ENGINE_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "slfe/common/bitmap.h"
#include "slfe/common/counters.h"
#include "slfe/common/logging.h"
#include "slfe/common/timer.h"
#include "slfe/common/work_stealing.h"
#include "slfe/core/rr_guidance.h"
#include "slfe/engine/atomic_ops.h"
#include "slfe/engine/dist_graph.h"
#include "slfe/sim/cluster.h"

namespace slfe {

/// Which propagation direction a superstep ran in (paper §3.3).
enum class Mode { kPush, kPull };

/// Per-destination decision returned by a pull filter (the RR hook).
enum class PullAction {
  kSkip,          ///< bypass this vertex entirely ("start late" delay)
  kGatherActive,  ///< aggregate contributions of active in-neighbors only
  kGatherAll,     ///< aggregate ALL in-neighbors (first unlocked iteration,
                  ///< arithmetic apps, safety sweep)
};

/// How ProcessEdges chooses the direction each superstep.
enum class ModePolicy {
  kAdaptive,    ///< Gemini rule: pull (dense) when active out-edges > |E|*f
  kAlwaysPull,  ///< arithmetic apps always pull (paper footnote 2)
  kAlwaysPush,
};

/// What to reactivate when the engine transitions pull -> push. RR may
/// deactivate vertices whose latest value was never observed by skipped
/// successors, so the transition push must re-deliver values (paper
/// Algorithm 3's activateAllVertices). `kDirty` is the precise variant:
/// only vertices whose value changed since their last push are revived —
/// it produces the "small amount of immediate computations" bump the paper
/// circles in Fig. 9a. `kAll` is the paper's literal (conservative) rule.
enum class TransitionReactivation { kNone, kDirty, kAll };

struct EngineOptions {
  ModePolicy mode_policy = ModePolicy::kAdaptive;
  /// Active-out-edge fraction above which the engine runs dense/pull
  /// (Gemini uses |E|/20).
  double dense_fraction = 0.05;
  /// Mini-chunk work stealing inside a node (paper §3.6). Disable for the
  /// Fig. 10a ablation.
  bool enable_work_stealing = true;
  /// Pull->push correctness rule; kNone for the non-RR baseline.
  TransitionReactivation reactivation = TransitionReactivation::kNone;
  /// Virtual network cost model for the simulated cluster.
  sim::CostModel cost_model;
  /// RR guidance for this engine's runs, typically acquired through the
  /// GuidanceProvider (apps thread it here via MakeEngineOptions). Runners
  /// constructed without explicit guidance read it off the engine; null =
  /// the Gemini baseline. Shared ownership keeps the guidance alive even
  /// if the provider's cache evicts it mid-run.
  std::shared_ptr<const RRGuidance> guidance;
};

/// Aggregate statistics of one engine run. Counter definitions follow the
/// paper: `computations` = edge aggregation evaluations (Fig. 9),
/// `updates` = vertex property overwrites (Table 2), `skipped` =
/// evaluations bypassed by redundancy reduction.
struct EngineStats {
  uint64_t iterations = 0;
  double pull_seconds = 0;
  double push_seconds = 0;
  double comm_seconds = 0;  ///< simulated network time (BSP max per step)
  uint64_t computations = 0;
  uint64_t updates = 0;
  uint64_t skipped = 0;
  uint64_t messages = 0;
  uint64_t bytes = 0;
  std::vector<uint64_t> per_iter_computations;  ///< Fig. 9 series
  std::vector<Mode> per_iter_mode;
  std::vector<double> node_compute_seconds;   ///< per-rank wall time
  std::vector<uint64_t> node_computations;    ///< per-rank work, Fig. 10b
  std::vector<uint64_t> per_thread_chunks;    ///< stealing diag, Fig. 10a

  /// Wall compute time plus simulated communication time — the quantity
  /// reported as "runtime" in the distributed benchmarks.
  double RuntimeSeconds() const {
    return pull_seconds + push_seconds + comm_seconds;
  }
  /// (max - min) / max of per-node computation counts (Fig. 10b y-axis).
  /// Work-based rather than wall-clock: simulated ranks timeshare the
  /// host's cores, so per-rank wall time does not reflect node balance.
  double InterNodeImbalance() const {
    if (node_computations.empty()) return 0;
    uint64_t lo = node_computations[0], hi = node_computations[0];
    for (uint64_t c : node_computations) {
      lo = std::min(lo, c);
      hi = std::max(hi, c);
    }
    return hi > 0 ? static_cast<double>(hi - lo) / static_cast<double>(hi)
                  : 0;
  }
};

/// Vertex-centric BSP engine over a DistGraph: the reproduction of Gemini's
/// push/pull dual-mode runtime that SLFE builds on. All methods marked
/// *collective* must be called by every rank of the cluster in the same
/// order (SPMD style); they contain the necessary barriers.
///
/// The accumulator type V parameterizes pull-mode gathering. Vertex
/// property arrays are owned by the application and captured in the
/// gather/apply/scatter lambdas; cross-node writes (push mode) must go
/// through the AtomicMin/AtomicMax/AtomicAdd helpers.
template <typename V>
class DistEngine {
 public:
  /// gather(acc, src, weight) -> new accumulator (pull mode, per in-edge)
  using GatherFn = std::function<V(V, VertexId, Weight)>;
  /// apply(dst, acc) -> true iff dst's property changed (pull mode commit)
  using ApplyFn = std::function<bool(VertexId, V)>;
  /// scatter(src, dst, weight) -> true iff dst's property changed (push)
  using ScatterFn = std::function<bool(VertexId, VertexId, Weight)>;
  /// pull_filter(dst) -> what to do with dst this superstep (RR hook).
  /// Called exactly once per destination per pull superstep, from the one
  /// worker thread owning dst's mini-chunk, so it may update per-vertex
  /// bookkeeping without synchronization.
  using PullFilterFn = std::function<PullAction(VertexId)>;

  DistEngine(const DistGraph& dist_graph, EngineOptions options)
      : dg_(dist_graph),
        options_(options),
        scheduler_(options.enable_work_stealing) {
    VertexId n = dg_.graph().num_vertices();
    bitmap_a_.Resize(n);
    bitmap_b_.Resize(n);
    dirty_.Resize(n);
    active_cur_ = &bitmap_a_;
    active_next_ = &bitmap_b_;
  }

  const DistGraph& dist_graph() const { return dg_; }
  const EngineOptions& options() const { return options_; }
  EngineOptions& mutable_options() { return options_; }

  /// Guidance threaded in through EngineOptions (nullptr = baseline mode).
  const RRGuidance* guidance() const { return options_.guidance.get(); }

  /// Collective: clears all run state (active sets, counters, timers).
  void BeginRun(sim::NodeContext& ctx) {
    if (ctx.rank == 0) {
      active_cur_->Clear();
      active_next_->Clear();
      dirty_.Clear();
      stats_ = EngineStats{};
      stats_.node_compute_seconds.assign(dg_.num_nodes(), 0.0);
      stats_.node_computations.assign(dg_.num_nodes(), 0);
      stats_.per_thread_chunks.assign(
          static_cast<size_t>(dg_.num_nodes()) * ctx.pool->num_threads(), 0);
      last_mode_ = Mode::kPull;  // first push after a pull reactivates
      metrics_.Reset();
    }
    ctx.world->Barrier();
  }

  /// Collective: activates a single seed vertex (owner rank performs it).
  /// Seeds carry initial values nobody has observed yet, so they start
  /// dirty for the transition-reactivation bookkeeping.
  void ActivateSeed(sim::NodeContext& ctx, VertexId v) {
    if (dg_.range(ctx.rank).Contains(v)) {
      active_next_->SetBit(v);
      MarkDirty(v);
    }
    ctx.world->Barrier();
  }

  /// Collective: activates every vertex (all initial values unobserved).
  void ActivateAll(sim::NodeContext& ctx) {
    const VertexRange& r = dg_.range(ctx.rank);
    for (VertexId v = r.begin; v < r.end; ++v) {
      active_next_->SetBit(v);
      MarkDirty(v);
    }
    ctx.world->Barrier();
  }

  /// Explicit activation from inside apply/scatter lambdas (rarely needed —
  /// returning true activates automatically).
  void Activate(VertexId v) { active_next_->SetBit(v); }

  /// Installs the predicate deciding whether an updated vertex becomes
  /// "dirty" (its new value may go unseen by a delayed successor, so the
  /// next pull->push transition must re-deliver it). Without a policy every
  /// update is dirty — the conservative rule. The RR runner installs
  /// `iter + 1 < max(lastIter of out-neighbors)` each superstep: if all
  /// successors are already unlocked they gather the value next iteration
  /// and nothing is unseen. Call before seeding and per superstep; not
  /// thread-safe against a running ProcessEdges.
  void SetDirtyPolicy(std::function<bool(VertexId)> policy) {
    dirty_policy_ = std::move(policy);
  }

  /// True iff v was active in the superstep being processed.
  bool IsActive(VertexId v) const { return active_cur_->TestBit(v); }

  /// Collective: promotes the "next" active set to "current" and returns
  /// the global number of active vertices. Apps call this once before the
  /// iteration loop (after seeding) and ProcessEdges does it implicitly
  /// for subsequent supersteps.
  uint64_t PromoteActiveSet(sim::NodeContext& ctx) {
    ctx.world->Barrier();
    const VertexRange& r = dg_.range(ctx.rank);
    uint64_t local = 0;
    if (ctx.rank == 0) {
      std::swap(active_cur_, active_next_);
    }
    ctx.world->Barrier();
    for (VertexId v = r.begin; v < r.end; ++v) {
      if (active_cur_->TestBit(v)) ++local;
    }
    if (ctx.rank == 0) active_next_->Clear();
    uint64_t total = ctx.world->AllReduceSum(ctx.rank, local);
    return total;
  }

  /// Collective: one superstep. Picks push or pull per the mode policy,
  /// runs the user functions over the graph, applies RR filtering in pull
  /// mode, charges simulated communication, then promotes the active set
  /// and returns the number of globally active vertices for the next
  /// superstep.
  ///
  /// `gather_all`: when true, pull mode aggregates over ALL in-neighbors of
  /// a processed destination rather than only active ones. Required by
  /// "start late" (a delayed vertex must see every predecessor, paper §3.2)
  /// and by arithmetic apps (which have no meaningful active sources).
  /// `forced_mode` overrides the mode policy for this superstep (the RR
  /// verification sweep must pull even with an empty active set).
  uint64_t ProcessEdges(sim::NodeContext& ctx, V identity,
                        const GatherFn& gather, const ApplyFn& apply,
                        const ScatterFn& scatter,
                        const PullFilterFn& pull_filter = nullptr,
                        bool gather_all = false,
                        const Mode* forced_mode = nullptr) {
    Mode mode = forced_mode != nullptr ? *forced_mode : DecideMode(ctx);

    // Pull->push transition: RR may have deactivated vertices whose values
    // were never observed by their successors; reactivate them so push
    // delivers the "unseen" updates (paper Algorithm 3, lines 2-4). kDirty
    // revives only vertices whose value changed since their last push.
    if (options_.reactivation != TransitionReactivation::kNone &&
        mode == Mode::kPush && last_mode_ == Mode::kPull) {
      const VertexRange& r = dg_.range(ctx.rank);
      for (VertexId v = r.begin; v < r.end; ++v) {
        if (options_.reactivation == TransitionReactivation::kAll ||
            dirty_.TestBit(v)) {
          active_cur_->SetBit(v);
        }
      }
      ctx.world->Barrier();
    }

    Timer step_timer;
    uint64_t local_comp = 0, local_upd = 0, local_skip = 0;
    uint64_t local_msgs = 0, local_bytes = 0;

    if (mode == Mode::kPull) {
      RunPull(ctx, identity, gather, apply, pull_filter, gather_all,
              &local_comp, &local_upd, &local_skip, &local_msgs,
              &local_bytes);
    } else {
      RunPush(ctx, scatter, &local_comp, &local_upd, &local_msgs,
              &local_bytes);
    }
    double compute_seconds = step_timer.Seconds();

    // Commit counters and charge the BSP communication cost for this step.
    metrics_.computations.Add(local_comp);
    metrics_.updates.Add(local_upd);
    metrics_.skipped.Add(local_skip);
    metrics_.messages.Add(local_msgs);
    metrics_.bytes.Add(local_bytes);
    AtomicAdd(&stats_.node_compute_seconds[ctx.rank], compute_seconds);
    AtomicAdd(&stats_.node_computations[ctx.rank], local_comp);

    double comm_cost = options_.cost_model.Cost(local_msgs, local_bytes);
    double max_comm = ctx.world->AllReduce(
        ctx.rank, comm_cost, [](double a, double b) { return std::max(a, b); });
    uint64_t step_comp = ctx.world->AllReduceSum(ctx.rank, local_comp);

    if (ctx.rank == 0) {
      ++stats_.iterations;
      stats_.comm_seconds += max_comm;
      stats_.per_iter_computations.push_back(step_comp);
      stats_.per_iter_mode.push_back(mode);
      double wall = step_timer.Seconds();
      if (mode == Mode::kPull) {
        stats_.pull_seconds += wall;
      } else {
        stats_.push_seconds += wall;
      }
      last_mode_ = mode;
    }
    return PromoteActiveSet(ctx);
  }

  /// Collective: applies fn to every master vertex and returns the
  /// all-reduced sum of its return values (e.g., rank delta in PageRank).
  double ProcessVertices(sim::NodeContext& ctx,
                         const std::function<double(VertexId)>& fn) {
    const VertexRange& r = dg_.range(ctx.rank);
    std::vector<double> partial(ctx.pool->num_threads(), 0.0);
    scheduler_.Run(*ctx.pool, r.begin, r.end,
                   [&](size_t worker, size_t lo, size_t hi) {
                     double acc = 0;
                     for (size_t v = lo; v < hi; ++v) {
                       acc += fn(static_cast<VertexId>(v));
                     }
                     partial[worker] += acc;
                   });
    double local = 0;
    for (double p : partial) local += p;
    return ctx.world->AllReduce(ctx.rank, local,
                                [](double a, double b) { return a + b; });
  }

  /// Collective: finalizes per-run stats. Call once after the loop; the
  /// returned reference is valid until the next BeginRun.
  const EngineStats& FinishRun(sim::NodeContext& ctx) {
    ctx.world->Barrier();
    if (ctx.rank == 0) {
      stats_.computations = metrics_.computations.Get();
      stats_.updates = metrics_.updates.Get();
      stats_.skipped = metrics_.skipped.Get();
      stats_.messages = metrics_.messages.Get();
      stats_.bytes = metrics_.bytes.Get();
    }
    ctx.world->Barrier();
    return stats_;
  }

  const EngineStats& stats() const { return stats_; }

 private:
  void MarkDirty(VertexId v) {
    if (!dirty_policy_ || dirty_policy_(v)) dirty_.SetBit(v);
  }

  Mode DecideMode(sim::NodeContext& ctx) {
    switch (options_.mode_policy) {
      case ModePolicy::kAlwaysPull:
        return Mode::kPull;
      case ModePolicy::kAlwaysPush:
        return Mode::kPush;
      case ModePolicy::kAdaptive:
        break;
    }
    const VertexRange& r = dg_.range(ctx.rank);
    uint64_t local_active_edges = 0;
    for (VertexId v = r.begin; v < r.end; ++v) {
      if (active_cur_->TestBit(v)) local_active_edges += dg_.graph().out_degree(v);
    }
    uint64_t active_edges = ctx.world->AllReduceSum(ctx.rank, local_active_edges);
    double threshold =
        options_.dense_fraction * static_cast<double>(dg_.graph().num_edges());
    return active_edges > threshold ? Mode::kPull : Mode::kPush;
  }

  void RunPull(sim::NodeContext& ctx, V identity, const GatherFn& gather,
               const ApplyFn& apply, const PullFilterFn& pull_filter,
               bool gather_all, uint64_t* comp, uint64_t* upd,
               uint64_t* skip, uint64_t* msgs, uint64_t* bytes) {
    const Csr& in = dg_.graph().in();
    const VertexRange& r = dg_.range(ctx.rank);
    size_t nthreads = ctx.pool->num_threads();
    struct ThreadCounters {
      uint64_t comp = 0, upd = 0, skip = 0;
    };
    std::vector<ThreadCounters> tc(nthreads);

    auto chunks = scheduler_.Run(
        *ctx.pool, r.begin, r.end, [&](size_t worker, size_t lo, size_t hi) {
          ThreadCounters& c = tc[worker];
          for (size_t dv = lo; dv < hi; ++dv) {
            VertexId dst = static_cast<VertexId>(dv);
            PullAction action = pull_filter
                                    ? pull_filter(dst)
                                    : (gather_all ? PullAction::kGatherAll
                                                  : PullAction::kGatherActive);
            if (action == PullAction::kSkip) {
              c.skip += in.degree(dst);
              continue;
            }
            bool all = action == PullAction::kGatherAll;
            V acc = identity;
            bool any = false;
            for (EdgeId e = in.begin(dst); e < in.end(dst); ++e) {
              VertexId src = in.neighbor(e);
              if (!all && !active_cur_->TestBit(src)) continue;
              acc = gather(acc, src, in.weight(e));
              ++c.comp;
              any = true;
            }
            if (any && apply(dst, acc)) {
              active_next_->SetBit(dst);
              MarkDirty(dst);
              ++c.upd;
            }
          }
        });
    for (size_t w = 0; w < nthreads; ++w) {
      *comp += tc[w].comp;
      *upd += tc[w].upd;
      *skip += tc[w].skip;
      AtomicAdd(&stats_.per_thread_chunks[static_cast<size_t>(ctx.rank) *
                                              nthreads + w],
                chunks[w]);
    }
    // Mirror refresh traffic: every master whose value changed last step
    // (i.e., is active now) must ship its value to each node holding a
    // mirror, so that remote pull-mode gathers see it.
    uint64_t refresh_values = 0;
    for (VertexId v = r.begin; v < r.end; ++v) {
      if (active_cur_->TestBit(v)) refresh_values += dg_.MirrorNodeCount(v);
    }
    *bytes += refresh_values * (sizeof(VertexId) + sizeof(V));
    if (refresh_values > 0) {
      *msgs += static_cast<uint64_t>(dg_.num_nodes() - 1);  // batched
    }
  }

  void RunPush(sim::NodeContext& ctx, const ScatterFn& scatter,
               uint64_t* comp, uint64_t* upd, uint64_t* msgs,
               uint64_t* bytes) {
    const Csr& out = dg_.graph().out();
    const VertexRange& r = dg_.range(ctx.rank);
    size_t nthreads = ctx.pool->num_threads();
    struct ThreadCounters {
      uint64_t comp = 0, upd = 0, vals = 0;
    };
    std::vector<ThreadCounters> tc(nthreads);

    auto chunks = scheduler_.Run(
        *ctx.pool, r.begin, r.end, [&](size_t worker, size_t lo, size_t hi) {
          ThreadCounters& c = tc[worker];
          for (size_t sv = lo; sv < hi; ++sv) {
            VertexId src = static_cast<VertexId>(sv);
            if (!active_cur_->TestBit(src)) continue;
            // Pushing delivers src's current value to every out-neighbor,
            // so src is no longer "dirty" (unseen) afterwards.
            dirty_.ResetBit(src);
            if (out.degree(src) == 0) continue;
            c.vals += dg_.MirrorNodeCount(src);
            for (EdgeId e = out.begin(src); e < out.end(src); ++e) {
              VertexId dst = out.neighbor(e);
              ++c.comp;
              if (scatter(src, dst, out.weight(e))) {
                active_next_->SetBit(dst);
                MarkDirty(dst);
                ++c.upd;
              }
            }
          }
        });
    uint64_t vals = 0;
    for (size_t w = 0; w < nthreads; ++w) {
      *comp += tc[w].comp;
      *upd += tc[w].upd;
      vals += tc[w].vals;
      AtomicAdd(&stats_.per_thread_chunks[static_cast<size_t>(ctx.rank) *
                                              nthreads + w],
                chunks[w]);
    }
    *bytes += vals * (sizeof(VertexId) + sizeof(V));
    if (vals > 0) {
      // Gemini batches sparse updates into one MPI message per node pair
      // per superstep (unlike PowerGraph's fine-grained signals, which the
      // GAS baseline models as per-mirror messages).
      *msgs += static_cast<uint64_t>(dg_.num_nodes() - 1);
    }
  }

  const DistGraph& dg_;
  EngineOptions options_;
  WorkStealingScheduler scheduler_;

  Bitmap bitmap_a_;
  Bitmap bitmap_b_;
  Bitmap dirty_;  ///< value changed since last pushed (unseen by some)
  std::function<bool(VertexId)> dirty_policy_;
  Bitmap* active_cur_ = nullptr;
  Bitmap* active_next_ = nullptr;
  Mode last_mode_ = Mode::kPull;
  WorkMetrics metrics_;
  EngineStats stats_;
};

}  // namespace slfe

#endif  // SLFE_ENGINE_DIST_ENGINE_H_
